#include "tce/simnet/network.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "tce/common/json.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/obs/trace.hpp"
#include "tce/simnet/maxmin.hpp"

namespace tce {

namespace {

/// Trace lanes on the simulated-time track (pid 2): phases on one row,
/// compute on another, individual flows fanned out below.
constexpr int kPhaseTid = 1;
constexpr int kComputeTid = 2;
constexpr int kFlowTidBase = 10;

/// Name of a resource id in run_flows' layout ([0,n) NIC out, [n,2n)
/// NIC in, [2n,3n) memory engines, then the optional bisection cap).
std::string resource_name(std::size_t r, std::uint32_t n) {
  if (r < n) return "nic_out:" + std::to_string(r);
  if (r < 2ull * n) return "nic_in:" + std::to_string(r - n);
  if (r < 3ull * n) return "mem:" + std::to_string(r - 2ull * n);
  return "bisection";
}

}  // namespace

Network::Network(ClusterSpec spec) : spec_(spec) { spec_.validate(); }

Network::RunResult Network::run_flows(const std::vector<Flow>& flows) const {
  const std::uint32_t procs = spec_.procs();
  RunResult result;
  result.finish_s.assign(flows.size(), 0.0);

  // Resource layout: [0, nodes) node NIC out, [nodes, 2*nodes) node NIC in,
  // [2*nodes, 3*nodes) node memory engines, then (optionally) bisection.
  const std::uint32_t n = spec_.nodes;
  std::vector<double> capacities(3 * n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    capacities[i] = spec_.nic_bw;
    capacities[n + i] = spec_.nic_bw;
    capacities[2 * n + i] = spec_.mem_bw;
  }
  std::uint32_t bisection_id = 0;
  if (spec_.bisection_bw > 0) {
    bisection_id = static_cast<std::uint32_t>(capacities.size());
    capacities.push_back(spec_.bisection_bw);
  }

  // Active flow bookkeeping.  Zero-byte and self-referential flows finish
  // at latency; others enter the fluid simulation.
  struct Active {
    std::size_t id;  // index into `flows`
    double remaining;
    ResourcePath path;
  };
  std::vector<Active> active;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    TCE_EXPECTS(flows[f].src < procs && flows[f].dst < procs);
    if (flows[f].bytes == 0) {
      result.finish_s[f] = spec_.latency_s;
      continue;
    }
    Active a;
    a.id = f;
    a.remaining = static_cast<double>(flows[f].bytes);
    const std::uint32_t sn = spec_.node_of(flows[f].src);
    const std::uint32_t dn = spec_.node_of(flows[f].dst);
    if (sn == dn) {
      a.path = {2 * n + sn};
    } else {
      a.path = {sn, n + dn};
      if (spec_.bisection_bw > 0) a.path.push_back(bisection_id);
    }
    active.push_back(std::move(a));
  }

  // Tracing: per-flow first-round fair rate (the allocated bandwidth
  // while all flows contend) and bottleneck link — the most loaded
  // resource on the flow's path in that round.
  const bool tracing = obs::trace_enabled();
  std::vector<double> first_rate;
  std::vector<std::string> bottleneck;
  if (tracing && !active.empty()) {
    first_rate.assign(flows.size(), 0.0);
    bottleneck.assign(flows.size(), std::string());
    std::vector<double> load(capacities.size(), 0.0);
    for (const auto& a : active) {
      for (std::uint32_t r : a.path) load[r] += 1.0;
    }
    for (const auto& a : active) {
      std::size_t worst = a.path[0];
      for (std::uint32_t r : a.path) {
        if (load[r] / capacities[r] > load[worst] / capacities[worst]) {
          worst = r;
        }
      }
      bottleneck[a.id] = resource_name(worst, n);
    }
  }

  // Per-link busy time: a resource is busy for a round's dt when at
  // least one active flow crosses it that round (stamps keep a shared
  // link from being counted once per flow).  Summed over rounds this is
  // the fluid-model utilization each link sees; observed as one
  // histogram sample per busy link below.
  const bool metrics = obs::metrics_enabled();
  std::vector<double> busy;
  std::vector<std::size_t> busy_stamp;
  std::size_t round = 0;
  if (metrics) {
    busy.assign(capacities.size(), 0.0);
    busy_stamp.assign(capacities.size(), 0);
  }

  double now = 0.0;
  bool first_round = true;
  while (!active.empty()) {
    std::vector<ResourcePath> paths;
    paths.reserve(active.size());
    for (const auto& a : active) paths.push_back(a.path);
    const std::vector<double> rates = maxmin_fair_rates(paths, capacities);
    if (tracing && first_round) {
      for (std::size_t i = 0; i < active.size(); ++i) {
        first_rate[active[i].id] = rates[i];
      }
      first_round = false;
    }

    // Time until the earliest active flow drains.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i) {
      dt = std::min(dt, active[i].remaining / rates[i]);
    }
    TCE_ENSURES(dt > 0 && dt < std::numeric_limits<double>::infinity());
    now += dt;
    if (metrics) {
      ++round;
      for (const auto& a : active) {
        for (std::uint32_t r : a.path) {
          if (busy_stamp[r] != round) {
            busy_stamp[r] = round;
            busy[r] += dt;
          }
        }
      }
    }

    std::vector<Active> still;
    still.reserve(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      const double left = active[i].remaining - rates[i] * dt;
      if (left <= 1e-6) {  // bytes; sub-byte residue counts as done
        result.finish_s[active[i].id] = spec_.latency_s + now;
      } else {
        active[i].remaining = left;
        still.push_back(std::move(active[i]));
      }
    }
    active = std::move(still);
  }

  for (double f : result.finish_s) {
    result.makespan_s = std::max(result.makespan_s, f);
  }

  if (metrics) {
    std::uint64_t bytes = 0;
    for (const Flow& f : flows) bytes += f.bytes;
    obs::count("simnet.flows", flows.size());
    obs::count("simnet.bytes", bytes);
    for (const double b : busy) {
      if (b > 0) obs::observe("simnet.link_busy_s", b);
    }
  }
  if (tracing && !flows.empty()) {
    const double base = obs::sim_now_s();
    for (std::size_t f = 0; f < flows.size(); ++f) {
      json::ObjectWriter args;
      args.field("src", flows[f].src)
          .field("dst", flows[f].dst)
          .field("bytes", flows[f].bytes)
          .field("allocated_bw", flows[f].bytes != 0
                                     ? first_rate[f]
                                     : 0.0);
      if (flows[f].bytes != 0 && !bottleneck[f].empty()) {
        args.field("bottleneck", bottleneck[f]);
      }
      obs::trace_sim_complete(
          "flow " + std::to_string(flows[f].src) + "->" +
              std::to_string(flows[f].dst),
          "simnet", kFlowTidBase + static_cast<int>(f), base,
          result.finish_s[f], args.str());
    }
  }
  return result;
}

PhaseResult Network::run_phase(const Phase& phase) const {
  PhaseResult r;
  for (const auto& c : phase.compute) {
    TCE_EXPECTS(c.rank < spec_.procs());
    r.compute_s = std::max(
        r.compute_s, static_cast<double>(c.flops) / spec_.flops_per_proc);
  }
  // Trace layout: ranks compute, then the flows are exchanged, so
  // compute occupies [base, base+compute) on the simulated clock and
  // the flows (emitted by run_flows at the advanced cursor) follow.
  const bool tracing = obs::trace_enabled();
  const double base = tracing ? obs::sim_now_s() : 0.0;
  if (tracing) {
    if (r.compute_s > 0) {
      obs::trace_sim_complete("compute", "simnet", kComputeTid, base,
                              r.compute_s);
    }
    obs::sim_advance(r.compute_s);
  }
  r.comm_s = run_flows(phase.flows).makespan_s;
  if (tracing) {
    obs::sim_advance(r.comm_s);
    obs::trace_sim_complete(
        phase.label.empty() ? "phase" : phase.label, "simnet", kPhaseTid,
        base, r.total_s(),
        json::ObjectWriter()
            .field("flows", phase.flows.size())
            .field("comm_s", r.comm_s)
            .field("compute_s", r.compute_s)
            .str());
  }
  obs::count("simnet.phases");
  return r;
}

PhaseResult Network::run_phases(const std::vector<Phase>& phases) const {
  PhaseResult total;
  for (const auto& p : phases) {
    const PhaseResult r = run_phase(p);
    total.comm_s += r.comm_s;
    total.compute_s += r.compute_s;
  }
  return total;
}

}  // namespace tce
