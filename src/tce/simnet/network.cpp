#include "tce/simnet/network.hpp"

#include <algorithm>
#include <limits>

#include "tce/simnet/maxmin.hpp"

namespace tce {

Network::Network(ClusterSpec spec) : spec_(spec) { spec_.validate(); }

Network::RunResult Network::run_flows(const std::vector<Flow>& flows) const {
  const std::uint32_t procs = spec_.procs();
  RunResult result;
  result.finish_s.assign(flows.size(), 0.0);

  // Resource layout: [0, nodes) node NIC out, [nodes, 2*nodes) node NIC in,
  // [2*nodes, 3*nodes) node memory engines, then (optionally) bisection.
  const std::uint32_t n = spec_.nodes;
  std::vector<double> capacities(3 * n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    capacities[i] = spec_.nic_bw;
    capacities[n + i] = spec_.nic_bw;
    capacities[2 * n + i] = spec_.mem_bw;
  }
  std::uint32_t bisection_id = 0;
  if (spec_.bisection_bw > 0) {
    bisection_id = static_cast<std::uint32_t>(capacities.size());
    capacities.push_back(spec_.bisection_bw);
  }

  // Active flow bookkeeping.  Zero-byte and self-referential flows finish
  // at latency; others enter the fluid simulation.
  struct Active {
    std::size_t id;  // index into `flows`
    double remaining;
    ResourcePath path;
  };
  std::vector<Active> active;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    TCE_EXPECTS(flows[f].src < procs && flows[f].dst < procs);
    if (flows[f].bytes == 0) {
      result.finish_s[f] = spec_.latency_s;
      continue;
    }
    Active a;
    a.id = f;
    a.remaining = static_cast<double>(flows[f].bytes);
    const std::uint32_t sn = spec_.node_of(flows[f].src);
    const std::uint32_t dn = spec_.node_of(flows[f].dst);
    if (sn == dn) {
      a.path = {2 * n + sn};
    } else {
      a.path = {sn, n + dn};
      if (spec_.bisection_bw > 0) a.path.push_back(bisection_id);
    }
    active.push_back(std::move(a));
  }

  double now = 0.0;
  while (!active.empty()) {
    std::vector<ResourcePath> paths;
    paths.reserve(active.size());
    for (const auto& a : active) paths.push_back(a.path);
    const std::vector<double> rates = maxmin_fair_rates(paths, capacities);

    // Time until the earliest active flow drains.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i) {
      dt = std::min(dt, active[i].remaining / rates[i]);
    }
    TCE_ENSURES(dt > 0 && dt < std::numeric_limits<double>::infinity());
    now += dt;

    std::vector<Active> still;
    still.reserve(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      const double left = active[i].remaining - rates[i] * dt;
      if (left <= 1e-6) {  // bytes; sub-byte residue counts as done
        result.finish_s[active[i].id] = spec_.latency_s + now;
      } else {
        active[i].remaining = left;
        still.push_back(std::move(active[i]));
      }
    }
    active = std::move(still);
  }

  for (double f : result.finish_s) {
    result.makespan_s = std::max(result.makespan_s, f);
  }
  return result;
}

PhaseResult Network::run_phase(const Phase& phase) const {
  PhaseResult r;
  r.comm_s = run_flows(phase.flows).makespan_s;
  for (const auto& c : phase.compute) {
    TCE_EXPECTS(c.rank < spec_.procs());
    r.compute_s = std::max(
        r.compute_s, static_cast<double>(c.flops) / spec_.flops_per_proc);
  }
  return r;
}

PhaseResult Network::run_phases(const std::vector<Phase>& phases) const {
  PhaseResult total;
  for (const auto& p : phases) {
    const PhaseResult r = run_phase(p);
    total.comm_s += r.comm_s;
    total.compute_s += r.compute_s;
  }
  return total;
}

}  // namespace tce
