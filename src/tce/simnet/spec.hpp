#pragma once
/// \file spec.hpp
/// Cluster hardware description for the simulated machine.
///
/// The paper evaluates on an Intel Itanium cluster (2 processors/node,
/// 4 GB/node) whose communication behaviour enters the algorithm only
/// through an empirically measured characterization table.  We stand up a
/// simulated cluster with the same structure: nodes with full-duplex NICs
/// behind a switch, several processors per node sharing their NIC, a
/// per-flow start-up latency, and optional finite switch bisection.  The
/// itanium2003() preset is calibrated so that rotation measurements taken
/// on the simulated machine land near the costs published in Tables 1–2
/// (per-processor effective rotation bandwidth ≈ 13.5 MB/s, per-message
/// start-up ≈ 60 ms, ≈ 615 MFLOP/s per processor — all back-derived from
/// the paper's own numbers).

#include <cstdint>

#include "tce/common/assert.hpp"

namespace tce {

/// How ranks map onto nodes.
enum class RankLayout {
  /// Rank r lives on node r mod nodes.  Both grid dimensions of a
  /// √P×√P rank grid see the same NIC contention (the paper's measured
  /// costs show no row/column asymmetry, so this is the default).
  kCyclic,
  /// Rank r lives on node r / procs_per_node.  Consecutive ranks share
  /// a node, so ring shifts along grid dimension 2 (adjacent ranks) are
  /// partly intra-node and cheaper than shifts along dimension 1 — an
  /// asymmetric machine the optimizer can exploit through its choice of
  /// rotation dimensions.
  kBlocked,
};

/// Static description of the simulated cluster.
struct ClusterSpec {
  std::uint32_t nodes = 1;
  std::uint32_t procs_per_node = 1;
  RankLayout layout = RankLayout::kCyclic;

  /// NIC bandwidth per node, bytes/s, independently in each direction.
  double nic_bw = 100e6;
  /// Intra-node (shared-memory) transfer bandwidth per node, bytes/s.
  double mem_bw = 500e6;
  /// Fixed start-up charged to every flow (software + wire latency), s.
  double latency_s = 50e-6;
  /// Total switch bisection bandwidth, bytes/s; 0 disables the cap.
  double bisection_bw = 0.0;
  /// Sustained floating-point rate per processor, FLOP/s.
  double flops_per_proc = 1e9;

  std::uint32_t procs() const { return nodes * procs_per_node; }

  /// Node housing a rank, per the configured layout.
  std::uint32_t node_of(std::uint32_t rank) const {
    TCE_EXPECTS(rank < procs());
    return layout == RankLayout::kCyclic ? rank % nodes
                                         : rank / procs_per_node;
  }

  /// The calibrated stand-in for the paper's Itanium cluster; see file
  /// comment.  \p nodes is 32 for the Table 1 setting, 8 for Table 2.
  static ClusterSpec itanium2003(std::uint32_t nodes) {
    ClusterSpec s;
    s.nodes = nodes;
    s.procs_per_node = 2;
    // Two processors per node share the NIC during a rotation, so the
    // per-processor effective bandwidth is nic_bw / 2 = 13.5 MB/s.
    s.nic_bw = 27.0e6;
    s.mem_bw = 400e6;
    s.latency_s = 0.060;
    s.bisection_bw = 0.0;
    s.flops_per_proc = 615e6;
    return s;
  }

  /// Validates field sanity; throws on nonsense.
  void validate() const {
    TCE_EXPECTS(nodes >= 1);
    TCE_EXPECTS(procs_per_node >= 1);
    TCE_EXPECTS(nic_bw > 0);
    TCE_EXPECTS(mem_bw > 0);
    TCE_EXPECTS(latency_s >= 0);
    TCE_EXPECTS(bisection_bw >= 0);
    TCE_EXPECTS(flops_per_proc > 0);
  }
};

}  // namespace tce
