#pragma once
/// \file maxmin.hpp
/// Max–min fair rate allocation by progressive filling.
///
/// Given a set of flows, each traversing a subset of capacitated
/// resources, the max–min fair allocation raises all unfrozen flows'
/// rates uniformly until some resource saturates, freezes the flows
/// crossing it, and repeats.  This is the standard fluid model for
/// TCP-like fair sharing and is what the flow-level network simulator
/// uses to compute instantaneous transfer rates.

#include <cstdint>
#include <vector>

namespace tce {

/// One flow's resource usage: the ids of every resource it crosses.
using ResourcePath = std::vector<std::uint32_t>;

/// Computes max–min fair rates.
///
/// \param paths       per-flow resource id lists (ids < capacities.size());
///                    a flow with an empty path gets an infinite rate and
///                    is reported as `unbounded`.
/// \param capacities  per-resource capacity (must be > 0).
/// \returns per-flow rates; rates for unbounded flows are set to
///          `unbounded_rate`.
std::vector<double> maxmin_fair_rates(
    const std::vector<ResourcePath>& paths,
    const std::vector<double>& capacities,
    double unbounded_rate = 1e30);

}  // namespace tce
