#pragma once
/// \file network.hpp
/// Flow-level discrete-event simulation of the cluster network.
///
/// A *flow* is one point-to-point transfer between ranks.  Flows started
/// together share the machine under max–min fairness over per-node NIC
/// capacities (in and out directions separately), per-node memory
/// bandwidth for intra-node transfers, and an optional switch bisection
/// cap.  The simulation advances from flow completion to flow completion,
/// re-solving the fair allocation each time — the standard fluid model.
///
/// A *phase* is one synchronized step of a parallel algorithm: every rank
/// computes for some time, then the phase's flows are exchanged.  Phase
/// cost = max compute time + communication makespan, matching the paper's
/// additive accounting of computation and communication.

#include <cstdint>
#include <string>
#include <vector>

#include "tce/simnet/spec.hpp"

namespace tce {

/// One point-to-point transfer.
struct Flow {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;
};

/// Per-rank compute load in floating-point operations.
struct ComputeLoad {
  std::uint32_t rank = 0;
  std::uint64_t flops = 0;
};

/// One synchronized algorithm step.
struct Phase {
  std::vector<Flow> flows;
  std::vector<ComputeLoad> compute;
  /// Display name on the trace timeline (e.g. "T1 rotate step 3");
  /// empty renders as "phase".  No effect on simulation results.
  std::string label;
};

/// Outcome of one phase.
struct PhaseResult {
  double comm_s = 0.0;     ///< Communication makespan.
  double compute_s = 0.0;  ///< Max per-rank compute time.
  double total_s() const { return comm_s + compute_s; }
};

/// The simulated cluster network.
class Network {
 public:
  explicit Network(ClusterSpec spec);

  const ClusterSpec& spec() const noexcept { return spec_; }

  /// Result of running a set of simultaneous flows.
  struct RunResult {
    std::vector<double> finish_s;  ///< Per-flow completion time.
    double makespan_s = 0.0;       ///< Max over flows (0 when empty).
  };

  /// Simulates flows that all start at time 0.  Self-flows (src == dst)
  /// complete at latency only.  Throws on out-of-range ranks.
  RunResult run_flows(const std::vector<Flow>& flows) const;

  /// Runs one synchronized phase (see file comment).
  PhaseResult run_phase(const Phase& phase) const;

  /// Runs a sequence of phases, summing their costs.
  PhaseResult run_phases(const std::vector<Phase>& phases) const;

 private:
  ClusterSpec spec_;
};

}  // namespace tce
