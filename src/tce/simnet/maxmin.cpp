#include "tce/simnet/maxmin.hpp"

#include <limits>

#include "tce/common/assert.hpp"

namespace tce {

std::vector<double> maxmin_fair_rates(
    const std::vector<ResourcePath>& paths,
    const std::vector<double>& capacities, double unbounded_rate) {
  const std::size_t nf = paths.size();
  const std::size_t nr = capacities.size();
  for (double c : capacities) TCE_EXPECTS(c > 0);
  for (const auto& p : paths) {
    for (std::uint32_t r : p) TCE_EXPECTS(r < nr);
  }

  std::vector<double> rate(nf, 0.0);
  std::vector<bool> frozen(nf, false);
  std::vector<double> remaining(capacities);
  // Number of unfrozen flows on each resource.
  std::vector<std::uint32_t> load(nr, 0);
  for (const auto& p : paths) {
    for (std::uint32_t r : p) ++load[r];
  }

  std::size_t active = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (paths[f].empty()) {
      rate[f] = unbounded_rate;
      frozen[f] = true;
    } else {
      ++active;
    }
  }

  double level = 0.0;  // current uniform rate of all unfrozen flows
  while (active > 0) {
    // The next saturation point: the resource minimizing
    // level + remaining / load over resources with unfrozen flows.
    double next_level = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < nr; ++r) {
      if (load[r] == 0) continue;
      next_level = std::min(next_level, level + remaining[r] / load[r]);
    }
    TCE_ENSURES(next_level < std::numeric_limits<double>::infinity());

    const double delta = next_level - level;
    // Charge the uniform increase to every resource.
    for (std::size_t r = 0; r < nr; ++r) {
      if (load[r] != 0) remaining[r] -= delta * load[r];
    }
    level = next_level;

    // Freeze flows crossing any saturated resource.  A small epsilon
    // absorbs floating-point residue.
    const double eps = 1e-9 * level + 1e-18;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool saturated = false;
      for (std::uint32_t r : paths[f]) {
        if (remaining[r] <= eps * load[r] + 1e-30) {
          saturated = true;
          break;
        }
      }
      if (saturated) {
        frozen[f] = true;
        rate[f] = level;
        --active;
        for (std::uint32_t r : paths[f]) --load[r];
      }
    }
  }
  return rate;
}

}  // namespace tce
