#include "tce/common/units.hpp"

#include "tce/common/strings.hpp"

namespace tce {

std::string format_bytes_si(std::uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= 1'000'000'000'000ULL) return fixed(b / 1e12, 2) + " TB";
  if (bytes >= 1'000'000'000ULL) return fixed(b / 1e9, 2) + " GB";
  if (bytes >= 1'000'000ULL) return fixed(b / 1e6, 2) + " MB";
  if (bytes >= 1'000ULL) return fixed(b / 1e3, 2) + " KB";
  return std::to_string(bytes) + " B";
}

std::string format_bytes_paper(std::uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= kPaperGB) {
    return fixed(b / static_cast<double>(kPaperGB), 3) + "GB";
  }
  if (bytes >= kPaperMB / 10) {
    return fixed(b / static_cast<double>(kPaperMB), 1) + "MB";
  }
  // Below the paper's table range; fall back to readable small units.
  if (bytes >= 1024) return fixed(b / 1024.0, 1) + "KB";
  return std::to_string(bytes) + "B";
}

std::string format_seconds_paper(double seconds) {
  return fixed(seconds, 1) + " sec.";
}

}  // namespace tce
