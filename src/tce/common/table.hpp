#pragma once
/// \file table.hpp
/// Column-aligned plain-text table printer used by the benchmark harnesses
/// to render the paper's Tables 1–2 (and the ablation tables) legibly.

#include <string>
#include <vector>

namespace tce {

/// Accumulates rows of strings and renders them with aligned columns.
/// Left-aligns by default; columns can be marked right-aligned (numbers).
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Marks a 0-based column as right-aligned.
  void set_right_aligned(std::size_t col);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the full table, including a header underline, ending in '\n'.
  std::string str() const;

  /// Number of data rows added so far.
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> right_;
};

}  // namespace tce
