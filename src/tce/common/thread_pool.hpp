#pragma once
/// \file thread_pool.hpp
/// A shared work-claiming thread pool for the planner.
///
/// The pool exists so the optimizer can fan independent pieces of the DP
/// search across cores without ever changing the result: callers split
/// their work into *chunks with stable indices*, workers (plus the
/// calling thread) claim chunk indices from a shared atomic cursor —
/// dynamic load balancing with no per-chunk ownership — and the caller
/// combines the per-chunk outputs in index order afterwards.  Which
/// thread executed which chunk is invisible to the merged result.
///
/// Two primitives:
///  * parallel_for(n, threads, fn) — run fn(i) for i in [0, n).  The
///    calling thread always participates, so the call makes progress
///    even when every worker is busy (nested use from inside a pool
///    task is fine and cannot deadlock).  The first exception, by
///    lowest chunk index, is rethrown — deterministically, regardless
///    of which chunks ran concurrently.
///  * TaskGroup — irregular graphs (tree-node scheduling): tasks may
///    submit further tasks as dependencies resolve; wait() drains the
///    group's own queue on the calling thread while waiting, so a
///    group blocked in wait() never starves its own tasks.
///
/// `threads <= 1` bypasses the pool entirely and runs inline on the
/// caller — the exact sequential path, no threads touched.

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "tce/common/annotations.hpp"

namespace tce {

class ThreadPool {
 public:
  /// Upper bound on pool workers; requests beyond it are clamped.
  static constexpr unsigned kMaxThreads = 64;

  /// The process-wide pool.  Workers are spawned lazily, on first use,
  /// and grown on demand up to kMaxThreads - 1; they are joined at
  /// process exit.
  static ThreadPool& shared();

  /// Resolves a thread-count knob: 0 means hardware concurrency (at
  /// least 1), anything else is clamped to [1, kMaxThreads].
  static unsigned resolve_threads(unsigned requested) noexcept;

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n) using at most \p threads threads
  /// including the caller.  Blocks until every index has finished.  If
  /// any invocation throws, the exception of the lowest-index failing
  /// chunk is rethrown after all claimed chunks settle (unclaimed
  /// chunks are skipped once a failure is seen).
  void parallel_for(std::size_t n, unsigned threads,
                    const std::function<void(std::size_t)>& fn);

  /// A group of dynamically submitted tasks; see file comment.
  class TaskGroup {
   public:
    TaskGroup(ThreadPool& pool, unsigned threads);
    ~TaskGroup();
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Adds a task.  Safe to call from inside a running task of the
    /// same group.  After a task has thrown, queued tasks are drained
    /// without being executed.
    void submit(std::function<void()> task);

    /// Runs queued tasks on the calling thread until the group is
    /// empty and all in-flight tasks have finished, then rethrows the
    /// first captured exception (if any).
    void wait();

   private:
    /// Heap-held so pool stubs can outlive the TaskGroup object.
    struct State;

    ThreadPool& pool_;
    unsigned helpers_ = 0;
    std::shared_ptr<State> state_;
  };

 private:
  ThreadPool() = default;
  void ensure_workers(unsigned want);
  void enqueue(std::function<void()> job);
  void worker_loop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> jobs_ TCE_GUARDED_BY(mu_);
  /// Grown only under mu_; the destructor joins without the lock, which
  /// the analysis permits (destructors run single-threaded by contract).
  std::vector<std::thread> workers_ TCE_GUARDED_BY(mu_);
  bool stop_ TCE_GUARDED_BY(mu_) = false;
};

}  // namespace tce
