#pragma once
/// \file assert.hpp
/// Contract-checking macros in the spirit of the C++ Core Guidelines
/// (I.6/I.8: Expects/Ensures).  Violations throw tce::ContractViolation so
/// that tests can assert on misuse; they are never compiled out, since the
/// optimizer runs at compile time of the *user's* program and correctness
/// of the search dominates raw speed.

#include <stdexcept>
#include <string>

namespace tce {

/// Thrown when a precondition, postcondition or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* cond, const char* file,
                    int line, const std::string& msg = {})
      : std::logic_error(std::string(kind) + " failed: " + cond + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg))) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line,
                                       const std::string& msg = {}) {
  throw ContractViolation(kind, cond, file, line, msg);
}
}  // namespace detail

}  // namespace tce

/// Precondition check: argument validation at public API boundaries.
#define TCE_EXPECTS(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::tce::detail::contract_fail("Precondition", #cond, __FILE__,         \
                                   __LINE__);                               \
  } while (false)

/// Precondition check with an explanatory message.
#define TCE_EXPECTS_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond))                                                            \
      ::tce::detail::contract_fail("Precondition", #cond, __FILE__,         \
                                   __LINE__, (msg));                        \
  } while (false)

/// Postcondition / invariant check.
#define TCE_ENSURES(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::tce::detail::contract_fail("Postcondition", #cond, __FILE__,        \
                                   __LINE__);                               \
  } while (false)

/// Marks unreachable code paths.
#define TCE_UNREACHABLE(msg)                                                \
  ::tce::detail::contract_fail("Unreachable", (msg), __FILE__, __LINE__)
