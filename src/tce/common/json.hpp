#pragma once
/// \file json.hpp
/// Minimal JSON value, parser and writing helpers shared by every
/// machine-readable surface of the project: the plan codec
/// (tce/core/plan_json.hpp), the trace-event emitter (tce/obs/trace.hpp)
/// and the benchmark `--json` output (bench/bench_common.hpp).
///
/// The parser is a strict recursive-descent reader over all of JSON:
/// every escape in RFC 8259 §7 is accepted, including \uXXXX (with
/// surrogate pairs combined and encoded as UTF-8).  Integers keep their
/// exact uint64 representation alongside the double so byte counts
/// round-trip losslessly.  The writer helpers render escaped strings and
/// shortest-lossless doubles; ObjectWriter/ArrayWriter compose nested
/// documents without an intermediate DOM.

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace tce::json {

/// A parsed JSON value.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::uint64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;
  /// Object member lookup; throws tce::Error when absent.
  const Value& at(const std::string& key) const;
};

/// Parses one JSON document; throws tce::Error on malformed input or
/// trailing characters.
Value parse(const std::string& text);

/// Renders \p s as a quoted, escaped JSON string literal.
std::string quote(const std::string& s);

/// Appends the UTF-8 encoding of codepoint \p cp (≤ 0x10FFFF) to \p out.
void append_utf8(std::string& out, std::uint32_t cp);

/// Renders a double with 17 significant digits (lossless round trip);
/// non-finite values render as null.
std::string number(double v);

/// Builds one JSON object incrementally.  Values are rendered on
/// insertion, so the writer holds only the growing text.
class ObjectWriter {
 public:
  /// Arithmetic fields: integrals render exactly, floating point via
  /// number(), bool as true/false.
  template <typename T>
    requires std::is_arithmetic_v<T>
  ObjectWriter& field(std::string_view key, T v) {
    if constexpr (std::is_same_v<T, bool>) {
      return raw(key, v ? "true" : "false");
    } else if constexpr (std::is_integral_v<T>) {
      return raw(key, std::to_string(v));
    } else {
      return raw(key, number(static_cast<double>(v)));
    }
  }
  ObjectWriter& field(std::string_view key, const std::string& v) {
    return raw(key, quote(v));
  }
  ObjectWriter& field(std::string_view key, const char* v) {
    return raw(key, quote(v));
  }
  /// Inserts \p json verbatim (a pre-rendered value).
  ObjectWriter& raw(std::string_view key, std::string_view json);

  /// The rendered object, e.g. {"a":1,"b":"x"}.
  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Builds one JSON array of pre-rendered elements.
class ArrayWriter {
 public:
  ArrayWriter& element(std::string_view json);
  std::string str() const { return "[" + body_ + "]"; }

 private:
  std::string body_;
};

}  // namespace tce::json
