#include "tce/common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "tce/common/error.hpp"
#include "tce/common/parse.hpp"

namespace tce::json {

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw Error("JSON: missing key '" + key + "'");
  return *v;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  // 17 significant digits: doubles survive the round trip exactly.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

ObjectWriter& ObjectWriter::raw(std::string_view key,
                                std::string_view json) {
  if (!body_.empty()) body_ += ",";
  body_ += quote(std::string(key)) + ":";
  body_ += json;
  return *this;
}

ArrayWriter& ArrayWriter::element(std::string_view json) {
  if (!body_.empty()) body_ += ",";
  body_ += json;
  return *this;
}

namespace {

/// Recursive-descent parser (see file comment in json.hpp).
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw Error("JSON: trailing characters at offset " +
                  std::to_string(pos_));
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw Error("JSON: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw Error(std::string("JSON: expected '") + c + "' at offset " +
                  std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Value{};
      default:
        return number();
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        throw Error("JSON: bad literal at offset " + std::to_string(pos_));
      }
      ++pos_;
    }
  }

  Value boolean() {
    Value v;
    v.kind = Value::Kind::kBool;
    if (text_[pos_] == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  Value number() {
    const std::size_t start = pos_;
    bool floating = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                 c == '-') {
        floating = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      throw Error("JSON: bad number at offset " + std::to_string(start));
    }
    const std::string tok = text_.substr(start, pos_ - start);
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(tok.c_str(), nullptr);
    if (!floating && tok[0] != '-') {
      // A strict overflow-checked parse: a literal beyond uint64 range
      // is a document error, not a silent clamp to UINT64_MAX.
      const std::optional<std::uint64_t> parsed = parse_u64(tok);
      if (!parsed.has_value()) {
        throw Error("JSON: integer out of range at offset " +
                    std::to_string(start));
      }
      v.is_integer = true;
      v.integer = *parsed;
    }
    return v;
  }

  /// Reads exactly four hex digits (the payload of a \uXXXX escape).
  std::uint32_t hex4() {
    if (pos_ + 4 > text_.size()) {
      throw Error("JSON: bad \\u escape at offset " + std::to_string(pos_));
    }
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        throw Error("JSON: bad \\u escape at offset " + std::to_string(pos_));
      }
      cp = (cp << 4) | digit;
    }
    pos_ += 4;
    return cp;
  }

  Value string_value() {
    expect('"');
    Value v;
    v.kind = Value::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) {
        throw Error("JSON: unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          throw Error("JSON: unterminated escape");
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            v.string += '"';
            break;
          case '\\':
            v.string += '\\';
            break;
          case '/':
            v.string += '/';
            break;
          case 'b':
            v.string += '\b';
            break;
          case 'f':
            v.string += '\f';
            break;
          case 'n':
            v.string += '\n';
            break;
          case 'r':
            v.string += '\r';
            break;
          case 't':
            v.string += '\t';
            break;
          case 'u': {
            std::uint32_t cp = hex4();
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                throw Error("JSON: unpaired surrogate at offset " +
                            std::to_string(pos_));
              }
              pos_ += 2;
              const std::uint32_t lo = hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) {
                throw Error("JSON: bad low surrogate at offset " +
                            std::to_string(pos_));
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              throw Error("JSON: unpaired surrogate at offset " +
                          std::to_string(pos_));
            }
            append_utf8(v.string, cp);
            break;
          }
          default:
            throw Error("JSON: unsupported escape");
        }
      } else {
        v.string += c;
      }
    }
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      if (consume(']')) break;
      expect(',');
    }
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    if (consume('}')) return v;
    while (true) {
      Value key = string_value();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      if (consume('}')) break;
      expect(',');
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Reader(text).parse(); }

}  // namespace tce::json
