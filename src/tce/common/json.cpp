#include "tce/common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tce/common/error.hpp"

namespace tce::json {

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw Error("JSON: missing key '" + key + "'");
  return *v;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  // 17 significant digits: doubles survive the round trip exactly.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

ObjectWriter& ObjectWriter::raw(std::string_view key,
                                std::string_view json) {
  if (!body_.empty()) body_ += ",";
  body_ += quote(std::string(key)) + ":";
  body_ += json;
  return *this;
}

ArrayWriter& ArrayWriter::element(std::string_view json) {
  if (!body_.empty()) body_ += ",";
  body_ += json;
  return *this;
}

namespace {

/// Recursive-descent parser (see file comment in json.hpp).
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw Error("JSON: trailing characters at offset " +
                  std::to_string(pos_));
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw Error("JSON: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw Error(std::string("JSON: expected '") + c + "' at offset " +
                  std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Value{};
      default:
        return number();
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        throw Error("JSON: bad literal at offset " + std::to_string(pos_));
      }
      ++pos_;
    }
  }

  Value boolean() {
    Value v;
    v.kind = Value::Kind::kBool;
    if (text_[pos_] == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  Value number() {
    const std::size_t start = pos_;
    bool floating = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                 c == '-') {
        floating = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      throw Error("JSON: bad number at offset " + std::to_string(start));
    }
    const std::string tok = text_.substr(start, pos_ - start);
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(tok.c_str(), nullptr);
    if (!floating && tok[0] != '-') {
      v.is_integer = true;
      v.integer = std::strtoull(tok.c_str(), nullptr, 10);
    }
    return v;
  }

  Value string_value() {
    expect('"');
    Value v;
    v.kind = Value::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) {
        throw Error("JSON: unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          throw Error("JSON: unterminated escape");
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            v.string += '"';
            break;
          case '\\':
            v.string += '\\';
            break;
          case 'n':
            v.string += '\n';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw Error("JSON: bad \\u escape");
            }
            const unsigned long cp =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            v.string += static_cast<char>(cp);  // writers emit < 0x20 only
            break;
          }
          default:
            throw Error("JSON: unsupported escape");
        }
      } else {
        v.string += c;
      }
    }
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      if (consume(']')) break;
      expect(',');
    }
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    if (consume('}')) return v;
    while (true) {
      Value key = string_value();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      if (consume('}')) break;
      expect(',');
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Reader(text).parse(); }

}  // namespace tce::json
