#pragma once
/// \file strings.hpp
/// Small string utilities shared by the DSL parser, the characterization
/// file reader and the report printers.

#include <string>
#include <string_view>
#include <vector>

namespace tce {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits \p s on \p sep, trimming each piece; empty pieces are kept so that
/// positional formats stay positional.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on \p sep and drops pieces that are empty after trimming.
std::vector<std::string> split_nonempty(std::string_view s, char sep);

/// True when \p s consists only of [A-Za-z_][A-Za-z0-9_]* — the lexical
/// shape of index and tensor names in the DSL.
bool is_identifier(std::string_view s);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// printf-style double formatting with a fixed number of decimals.
std::string fixed(double v, int decimals);

}  // namespace tce
