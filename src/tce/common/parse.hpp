#pragma once
/// \file parse.hpp
/// Checked decimal-number parsing shared by every surface that consumes
/// user-controlled numbers: CLI options (tce/cli), TCE_* environment
/// knobs (tce/tensor/kernel.cpp, tce/serve), bench-driver arguments
/// (bench/bench_common.hpp) and the fuzz shrinker's generated-name
/// suffixes (tce/fuzz/shrink.cpp).
///
/// The C library parsers these call sites used to reach for
/// (std::strtoul with a null end pointer, std::atoi) silently return 0
/// or a clamped value on garbage and overflow, which turned typos like
/// `--threads garbage` into "use every hardware thread" and tainted
/// recorded benchmark rows.  parse_u64 is strict instead: the whole
/// text must be ASCII digits and the value must fit in uint64, or the
/// parse reports failure and the caller decides how loudly to fail.

#include <cstdint>
#include <optional>
#include <string_view>

namespace tce {

/// Strict decimal parse of the *entire* string: one or more ASCII
/// digits, no sign, no whitespace, no trailing characters, no overflow.
/// Returns std::nullopt otherwise.  Leading zeros are accepted
/// ("007" == 7).
std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept;

/// parse_u64 restricted to [\p min, \p max]; nullopt when the text is
/// malformed or the value falls outside the range.
std::optional<std::uint64_t> parse_u64_in(std::string_view text,
                                          std::uint64_t min,
                                          std::uint64_t max) noexcept;

}  // namespace tce
