#include "tce/common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace tce {

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& piece : split(s, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace tce
