#include "tce/common/thread_pool.hpp"

#include <algorithm>

namespace tce {

namespace {

/// Shared state of one parallel_for call.  Chunk indices are claimed
/// from `next`; `done` counts settled chunks (executed or skipped after
/// a failure).  Per-chunk exceptions are kept by index so the rethrow
/// is deterministic no matter which thread hit which chunk.
struct ForState {
  explicit ForState(std::size_t n_) : n(n_), errors(n_) {}

  const std::size_t n;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  /// errors[i] is written by exactly one thread (the claimer of chunk i)
  /// and read only after every chunk settled, so it needs no guard.
  std::vector<std::exception_ptr> errors;
  Mutex mu;
  CondVar cv;
  std::size_t done TCE_GUARDED_BY(mu) = 0;

  void drain(const std::function<void(std::size_t)>& fn) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      const MutexLock lock(mu);
      if (++done == n) cv.notify_all();
    }
  }
};

}  // namespace

/// Group bookkeeping, heap-held: pull stubs enqueued on the pool keep a
/// shared_ptr, so a stub that fires after the TaskGroup object is gone
/// still touches live memory (and finds an empty queue).
struct ThreadPool::TaskGroup::State {
  Mutex mu;
  CondVar cv;
  std::deque<std::function<void()>> queue TCE_GUARDED_BY(mu);
  std::size_t in_flight TCE_GUARDED_BY(mu) = 0;  ///< Queued + running.
  std::exception_ptr error TCE_GUARDED_BY(mu);
  bool failed TCE_GUARDED_BY(mu) = false;

  /// Pops and runs one queued task; returns false when none queued.
  bool run_one() {
    std::function<void()> task;
    bool skip = false;
    {
      const MutexLock lock(mu);
      if (queue.empty()) return false;
      task = std::move(queue.front());
      queue.pop_front();
      skip = failed;
    }
    if (!skip) {
      try {
        task();
      } catch (...) {
        const MutexLock lock(mu);
        if (!failed) {
          failed = true;
          error = std::current_exception();
        }
      }
    }
    {
      const MutexLock lock(mu);
      if (--in_flight == 0) cv.notify_all();
    }
    return true;
  }
};

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

unsigned ThreadPool::resolve_threads(unsigned requested) noexcept {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : std::min(hw, kMaxThreads);
  }
  return std::min(requested, kMaxThreads);
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ensure_workers(unsigned want) {
  const MutexLock lock(mu_);
  while (workers_.size() < want && workers_.size() < kMaxThreads - 1) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const MutexLock lock(mu_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      const MutexLock lock(mu_);
      while (!stop_ && jobs_.empty()) cv_.wait(mu_);
      if (jobs_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n, unsigned threads,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    // Exact sequential path: no pool, no state, in index order.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned helpers = static_cast<unsigned>(
      std::min<std::size_t>(n - 1, std::min(threads, kMaxThreads) - 1));
  ensure_workers(helpers);
  auto state = std::make_shared<ForState>(n);
  for (unsigned h = 0; h < helpers; ++h) {
    enqueue([state, fn] { state->drain(fn); });
  }
  state->drain(fn);  // the caller participates — guaranteed progress
  {
    const MutexLock lock(state->mu);
    while (state->done != state->n) state->cv.wait(state->mu);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (state->errors[i]) std::rethrow_exception(state->errors[i]);
  }
}

ThreadPool::TaskGroup::TaskGroup(ThreadPool& pool, unsigned threads)
    : pool_(pool),
      helpers_(threads <= 1 ? 0 : std::min(threads, kMaxThreads) - 1),
      state_(std::make_shared<State>()) {
  if (helpers_ > 0) pool_.ensure_workers(helpers_);
}

ThreadPool::TaskGroup::~TaskGroup() {
  // Settle stragglers so queued lambdas never outlive their captures;
  // wait() is the normal path and already did this.
  try {
    wait();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // wait() already surfaced this exception once; nothing actionable.
  }
}

void ThreadPool::TaskGroup::submit(std::function<void()> task) {
  {
    const MutexLock lock(state_->mu);
    ++state_->in_flight;
    state_->queue.push_back(std::move(task));
    state_->cv.notify_all();  // a wait()er drains new work immediately
  }
  // Post a pull stub: whichever worker gets it runs *one* task of this
  // group (possibly none, if the caller drained the queue first).
  if (helpers_ > 0) {
    pool_.enqueue([st = state_] { st->run_one(); });
  }
}

void ThreadPool::TaskGroup::wait() {
  State& st = *state_;
  for (;;) {
    if (!st.run_one()) {
      const MutexLock lock(st.mu);
      if (st.in_flight == 0) break;
      // Tasks are in flight on other threads; they may submit more, so
      // wake on every completion and retry the local drain.
      while (st.in_flight != 0 && st.queue.empty()) st.cv.wait(st.mu);
      if (st.in_flight == 0) break;
    }
  }
  std::exception_ptr err;
  {
    const MutexLock lock(st.mu);
    std::swap(err, st.error);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace tce
