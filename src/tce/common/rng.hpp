#pragma once
/// \file rng.hpp
/// Deterministic random number generation.  All stochastic pieces of the
/// library (workload generators, random test shapes, tensor fills) take an
/// explicit Rng so that every test and benchmark is reproducible bit for
/// bit across runs and machines.

#include <cstdint>
#include <random>

namespace tce {

/// Thin wrapper over a fixed-engine PRNG with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal sample.
  double normal() {
    std::normal_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  /// Underlying engine, for std::shuffle and friends.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tce
