#pragma once
/// \file checked.hpp
/// Overflow-checked arithmetic on 64-bit sizes.  Tensor extents like 480^4
/// multiply out quickly; a silent wrap would corrupt every downstream cost
/// and memory computation, so all size products in the library go through
/// these helpers.

#include <cstdint>
#include <limits>

#include "tce/common/assert.hpp"

namespace tce {

/// Multiplies two unsigned sizes, throwing ContractViolation on overflow.
inline std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    TCE_UNREACHABLE("checked_mul overflow");
  }
  return a * b;
}

/// Adds two unsigned sizes, throwing ContractViolation on overflow.
inline std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  if (b > std::numeric_limits<std::uint64_t>::max() - a) {
    TCE_UNREACHABLE("checked_add overflow");
  }
  return a + b;
}

/// Multiplies, clamping to the maximum representable value instead of
/// wrapping.  Use for *cost estimates* (flop counts of deliberately bad
/// evaluation orders can exceed 2^64); never for sizes that are actually
/// allocated or compared exactly.
inline std::uint64_t saturating_mul(std::uint64_t a,
                                    std::uint64_t b) noexcept {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

/// Adds with clamping; see saturating_mul.
inline std::uint64_t saturating_add(std::uint64_t a,
                                    std::uint64_t b) noexcept {
  if (b > std::numeric_limits<std::uint64_t>::max() - a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a + b;
}

/// Exact integer square root of a perfect square; throws otherwise.
/// Used to derive the √P×√P logical grid edge from the processor count.
inline std::uint32_t exact_isqrt(std::uint64_t n) {
  std::uint64_t r = 0;
  std::uint64_t bit = std::uint64_t{1} << 62;
  while (bit > n) bit >>= 2;
  std::uint64_t x = n;
  while (bit != 0) {
    if (x >= r + bit) {
      x -= r + bit;
      r = (r >> 1) + bit;
    } else {
      r >>= 1;
    }
    bit >>= 2;
  }
  TCE_EXPECTS_MSG(r * r == n, "processor count must be a perfect square");
  return static_cast<std::uint32_t>(r);
}

/// Ceiling division for positive integers.
inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  TCE_EXPECTS(b != 0);
  return (a + b - 1) / b;
}

}  // namespace tce
