#pragma once
/// \file error.hpp
/// User-facing error type for recoverable failures (bad input expressions,
/// infeasible optimization problems, malformed characterization files).
/// Distinct from ContractViolation, which signals programmer error.

#include <stdexcept>
#include <string>

namespace tce {

/// Recoverable, user-reportable error.  All library entry points that can
/// fail on valid-typed but semantically bad input throw this.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the optimizer when no plan fits the memory limit.
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// Raised when a file cannot be opened, read or written.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Raised by the DSL parser on malformed input, with location info baked in.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t pos)
      : Error(what + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  /// Byte offset into the source string where the error was detected.
  std::size_t pos() const noexcept { return pos_; }

 private:
  std::size_t pos_;
};

}  // namespace tce
