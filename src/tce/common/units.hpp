#pragma once
/// \file units.hpp
/// Byte-quantity formatting.  Two conventions are provided:
///  * format_bytes_si   — ordinary SI units (1 MB = 10^6 B), used in logs;
///  * format_bytes_paper — the convention the IPPS'03 paper uses in
///    Tables 1–2, where 1 MB = 1,024,000 bytes and 1 GB = 1,024,000,000
///    bytes (back-derived from the published table entries; e.g. array D on
///    32 nodes is 117,964,800 B/node and is printed as "115.2MB").
///    Reproducing it verbatim lets our benchmark tables match the paper's
///    memory columns digit for digit.

#include <cstdint>
#include <string>

namespace tce {

/// Bytes per "paper megabyte" (see file comment).
inline constexpr std::uint64_t kPaperMB = 1'024'000;
/// Bytes per "paper gigabyte".
inline constexpr std::uint64_t kPaperGB = 1'024'000'000;

/// Formats with SI decimal units, choosing KB/MB/GB/TB automatically.
std::string format_bytes_si(std::uint64_t bytes);

/// Formats with the paper's table convention (MB below 1 paper-GB,
/// GB above), one decimal for MB and three for GB — matching the paper's
/// "115.2MB" / "1.728GB" style.
std::string format_bytes_paper(std::uint64_t bytes);

/// Formats a duration in seconds in the paper's "98.0 sec." style.
std::string format_seconds_paper(double seconds);

}  // namespace tce
