#include "tce/common/parse.hpp"

namespace tce {

std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    v = v * 10 + digit;
  }
  return v;
}

std::optional<std::uint64_t> parse_u64_in(std::string_view text,
                                          std::uint64_t min,
                                          std::uint64_t max) noexcept {
  const std::optional<std::uint64_t> v = parse_u64(text);
  if (!v.has_value() || *v < min || *v > max) return std::nullopt;
  return v;
}

}  // namespace tce
