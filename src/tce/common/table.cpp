#include "tce/common/table.hpp"

#include <algorithm>

#include "tce/common/assert.hpp"

namespace tce {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), right_(headers_.size(), false) {
  TCE_EXPECTS(!headers_.empty());
}

void TextTable::set_right_aligned(std::size_t col) {
  TCE_EXPECTS(col < headers_.size());
  right_[col] = true;
}

void TextTable::add_row(std::vector<std::string> cells) {
  TCE_EXPECTS_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row,
                      std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (c != 0) out += "  ";
      if (right_[c]) out.append(pad, ' ');
      out += row[c];
      if (!right_[c] && c + 1 != row.size()) out.append(pad, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    out.append(width[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace tce
