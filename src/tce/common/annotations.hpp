#pragma once
/// \file annotations.hpp
/// Clang thread-safety (capability) annotations, plus annotated mutex
/// primitives the codebase locks with.
///
/// The macros expand to clang's `capability` attribute family when
/// compiling under clang and to nothing everywhere else, so annotated
/// code builds identically under GCC/MSVC while a clang CI job compiles
/// with `-Wthread-safety -Werror` and rejects lock-discipline bugs at
/// compile time (a guarded member touched without its mutex, a lock
/// released twice, a REQUIRES function called unlocked, ...).
///
/// std::mutex itself carries no capability annotations, so the analysis
/// cannot see through it; Mutex / MutexLock / CondVar below are thin
/// annotated wrappers with zero behavioral difference:
///   * Mutex      — std::mutex as a CAPABILITY("mutex")
///   * MutexLock  — std::lock_guard as a SCOPED_CAPABILITY
///   * CondVar    — std::condition_variable_any waiting directly on a
///                  Mutex (any BasicLockable); wait() REQUIRES the mutex
///
/// Condition predicates should be written as explicit while-loops around
/// CondVar::wait() rather than passed as lambdas: the analysis does not
/// propagate capabilities into lambda bodies, but it fully checks a
/// predicate spelled inline in the locked region.

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define TCE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TCE_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability (lockable).
#define TCE_CAPABILITY(x) TCE_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define TCE_SCOPED_CAPABILITY TCE_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the capability.
#define TCE_GUARDED_BY(x) TCE_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is guarded by the capability.
#define TCE_PT_GUARDED_BY(x) TCE_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function callable only while holding the capability.
#define TCE_REQUIRES(...) \
  TCE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that acquires the capability and does not release it.
#define TCE_ACQUIRE(...) \
  TCE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases a held capability.
#define TCE_RELEASE(...) \
  TCE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that acquires the capability when returning \p result.
#define TCE_TRY_ACQUIRE(...) \
  TCE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function that must NOT be called while holding the capability.
#define TCE_EXCLUDES(...) TCE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Return value is a reference to the named capability.
#define TCE_RETURN_CAPABILITY(x) TCE_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables the analysis for one function.
#define TCE_NO_THREAD_SAFETY_ANALYSIS \
  TCE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tce {

/// std::mutex annotated as a capability.
class TCE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TCE_ACQUIRE() { mu_.lock(); }
  void unlock() TCE_RELEASE() { mu_.unlock(); }
  bool try_lock() TCE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock of a Mutex (std::lock_guard with annotations).
class TCE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TCE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TCE_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on a Mutex.  Built on
/// std::condition_variable_any, which waits on any BasicLockable — the
/// annotated Mutex qualifies directly, so no unique_lock adaptor (and no
/// annotation blind spot) sits in between.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases \p mu, blocks, and reacquires before returning.
  /// Spurious wakeups happen; call in a while-loop over the predicate.
  void wait(Mutex& mu) TCE_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace tce
