#pragma once
/// \file timer.hpp
/// Wall-clock stopwatch for reporting optimizer search times in the
/// benchmark harnesses.

#include <chrono>

namespace tce {

/// Starts on construction; elapsed_s() reads without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tce
