#pragma once
/// \file formula.hpp
/// Formula sequences — the paper's §2 input language.
///
/// A computation is a list of formulas, each producing one intermediate
/// array; the last produces the final result.  A formula is one of
///   * a multiplication  Tr(...) = X(...) × Y(...)          (kMult),
///   * a summation       Tr(...) = Σ_i X(...)               (kSum), or
///   * a contraction     Tr(...) = Σ_i X(...) × Y(...)      (kContract).
/// §2 formally defines only the first two, but the paper's own Fig. 2(a)
/// writes contractions in the combined kContract form (the product is
/// accumulated, never materialized), and the parallel algorithm of §3
/// operates on such combined nodes; we support all three.
/// Well-formedness: for kMult, ITr = IX ∪ IY; for kSum,
/// ITr = IX − {sum indices}; for kContract, ITr = (IX ∪ IY) − {sum
/// indices} with the sum indices contained in IX ∪ IY.  The paper allows
/// one summation index per kSum formula; we allow a set (a chain of
/// single-index summations collapses to one node with the same
/// semantics).

#include <optional>
#include <string>
#include <vector>

#include "tce/expr/tensor_ref.hpp"

namespace tce {

/// One formula in a sequence.
struct Formula {
  enum class Kind { kMult, kSum, kContract };

  Kind kind = Kind::kMult;
  TensorRef result;
  TensorRef lhs;                 ///< X operand.
  std::optional<TensorRef> rhs;  ///< Y operand; present iff kMult/kContract.
  IndexSet sum_indices;          ///< Summed indices; empty iff kMult.

  /// Builds a multiplication formula.
  static Formula mult(TensorRef result, TensorRef x, TensorRef y);
  /// Builds a summation formula.
  static Formula sum(TensorRef result, TensorRef x, IndexSet indices);
  /// Builds a combined contraction formula.
  static Formula contract(TensorRef result, TensorRef x, TensorRef y,
                          IndexSet indices);

  /// Renders as e.g. "T1[b,c,d,f] = sum{e,l} B[b,e,f,l] * D[c,d,e,l]".
  std::string str(const IndexSpace& space) const;
};

/// An ordered list of formulas with validation and lookup.
///
/// Invariants established by validate():
///  * every formula is well-formed per §2;
///  * result names are unique and distinct from input names;
///  * every operand is either an input or the result of an *earlier*
///    formula;
///  * every intermediate result is consumed exactly once (tree property —
///    the optimization algorithms operate on expression *trees*);
///  * no tensor repeats an index within itself.
class FormulaSequence {
 public:
  FormulaSequence() = default;
  FormulaSequence(IndexSpace space, std::vector<Formula> formulas)
      : space_(std::move(space)), formulas_(std::move(formulas)) {}

  const IndexSpace& space() const noexcept { return space_; }
  IndexSpace& mutable_space() noexcept { return space_; }
  const std::vector<Formula>& formulas() const noexcept { return formulas_; }

  /// Appends a formula (validation is deferred to validate()).
  void push_back(Formula f) { formulas_.push_back(std::move(f)); }

  /// Checks all invariants; throws tce::Error with a precise message on
  /// the first violation.  With \p allow_forest, more than one result may
  /// be left unconsumed (a multi-output program — a forest of trees);
  /// the default requires exactly one root, produced by the last formula.
  void validate(bool allow_forest = false) const;

  /// Result names never consumed by a later formula — the program's
  /// outputs (the forest's roots), in production order.
  std::vector<std::string> root_names() const;

  /// Distinct input tensors (operands never produced by a formula), in
  /// first-use order.
  std::vector<TensorRef> inputs() const;

  /// The final result tensor (result of the last formula).
  const TensorRef& output() const;

  /// Multi-line rendering of the whole sequence.
  std::string str() const;

 private:
  IndexSpace space_;
  std::vector<Formula> formulas_;
};

}  // namespace tce
