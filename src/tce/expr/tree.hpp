#pragma once
/// \file tree.hpp
/// Binary expression trees — the paper's Fig. 1(b) representation.
///
/// Leaves are input arrays; internal nodes are multiplication (two
/// children) or summation (one child) formulas, with the final formula at
/// the root.  Nodes live in a pool inside ExprTree and are referred to by
/// integer NodeId, which keeps the structure trivially copyable and lets
/// search algorithms attach side tables indexed by node.

#include <string>
#include <vector>

#include "tce/expr/formula.hpp"

namespace tce {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;

/// One node of an ExprTree.
struct ExprNode {
  enum class Kind { kLeaf, kMult, kSum, kContract };

  Kind kind = Kind::kLeaf;
  TensorRef tensor;      ///< Array produced at (or stored in) this node.
  IndexSet sum_indices;  ///< Non-empty only for kSum / kContract.
  NodeId left = kNoNode;
  NodeId right = kNoNode;  ///< kNoNode except for kMult / kContract.
  NodeId parent = kNoNode;
};

/// An expression tree over an IndexSpace, built from a validated
/// FormulaSequence.
class ExprTree {
 public:
  /// Builds the tree for \p seq; calls seq.validate() first.
  static ExprTree from_sequence(const FormulaSequence& seq);

  const IndexSpace& space() const noexcept { return space_; }
  NodeId root() const noexcept { return root_; }
  const ExprNode& node(NodeId id) const {
    TCE_EXPECTS(id >= 0 && id < static_cast<NodeId>(nodes_.size()));
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Node ids in post order (children before parents); the root is last.
  std::vector<NodeId> post_order() const;

  /// ASCII rendering of the tree, one node per line with indentation.
  std::string str() const;

 private:
  IndexSpace space_;
  std::vector<ExprNode> nodes_;
  NodeId root_ = kNoNode;

  NodeId add_node(ExprNode n);
  void render(NodeId id, int depth, std::string& out) const;
};

}  // namespace tce
