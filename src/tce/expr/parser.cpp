#include "tce/expr/parser.hpp"

#include <cctype>

#include "tce/common/error.hpp"
#include "tce/common/strings.hpp"

namespace tce {

namespace {

/// Character-level cursor with position tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool at_end() const { return pos_ >= text_.size(); }
  std::size_t pos() const { return pos_; }

  /// Skips spaces and tabs (not newlines — those separate statements).
  void skip_blanks() {
    while (!at_end() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }

  char peek() const { return at_end() ? '\0' : text_[pos_]; }

  bool consume(char c) {
    skip_blanks();
    if (!at_end() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  /// Consumes an identifier or fails.
  std::string identifier() {
    skip_blanks();
    const std::size_t start = pos_;
    if (!at_end()) {
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
        while (!at_end()) {
          c = text_[pos_];
          if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
            ++pos_;
          } else {
            break;
          }
        }
      }
    }
    if (pos_ == start) fail("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Consumes a positive integer or fails.
  std::uint64_t integer() {
    skip_blanks();
    const std::size_t start = pos_;
    std::uint64_t value = 0;
    while (!at_end() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    if (value == 0) fail("index extent must be positive");
    return value;
  }

  /// True if the next token (after blanks) is the given keyword, consuming
  /// it when it matches.
  bool consume_keyword(std::string_view kw) {
    skip_blanks();
    if (text_.substr(pos_, kw.size()) != kw) return false;
    const std::size_t after = pos_ + kw.size();
    if (after < text_.size()) {
      const char c = text_[after];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        return false;  // identifier that merely starts with the keyword
      }
    }
    pos_ = after;
    return true;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, pos_);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parses "[a,b,c]" into names; "[]" yields an empty list (scalar).
std::vector<std::string> bracketed_names(Cursor& cur) {
  cur.expect('[');
  std::vector<std::string> names;
  if (cur.consume(']')) return names;
  names.push_back(cur.identifier());
  while (cur.consume(',')) names.push_back(cur.identifier());
  cur.expect(']');
  return names;
}

TensorRef tensor_ref(Cursor& cur, const IndexSpace& space) {
  TensorRef t;
  t.name = cur.identifier();
  for (const auto& n : bracketed_names(cur)) {
    t.dims.push_back(space.id(n));  // throws tce::Error on unknown index
  }
  return t;
}

IndexSet to_index_set(const std::vector<std::string>& names,
                      const IndexSpace& space) {
  IndexSet s;
  for (const auto& n : names) s.insert(space.id(n));
  return s;
}

}  // namespace

ParsedProgram parse_program(std::string_view text) {
  ParsedProgram program;

  // Split into statements on newlines and semicolons, stripping comments.
  std::vector<std::pair<std::string, std::size_t>> lines;  // text, offset
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n' || text[i] == ';') {
      std::string_view raw = text.substr(start, i - start);
      const std::size_t hash = raw.find('#');
      if (hash != std::string_view::npos) raw = raw.substr(0, hash);
      if (!trim(raw).empty()) {
        lines.emplace_back(std::string(raw), start);
      }
      start = i + 1;
    }
  }

  for (const auto& [line, offset] : lines) {
    Cursor cur(line);
    try {
      if (cur.consume_keyword("index")) {
        std::vector<std::string> names;
        names.push_back(cur.identifier());
        while (cur.consume(',')) names.push_back(cur.identifier());
        cur.expect('=');
        const std::uint64_t extent = cur.integer();
        cur.skip_blanks();
        if (!cur.at_end()) cur.fail("trailing characters");
        for (auto& n : names) program.space.add(std::move(n), extent);
        continue;
      }

      ParsedStatement stmt;
      stmt.result = tensor_ref(cur, program.space);
      cur.expect('=');
      if (cur.consume_keyword("sum")) {
        const auto names = bracketed_names(cur);
        if (names.empty()) cur.fail("empty summation index list");
        stmt.sum_indices = to_index_set(names, program.space);
      }
      stmt.factors.push_back(tensor_ref(cur, program.space));
      while (cur.consume('*')) {
        stmt.factors.push_back(tensor_ref(cur, program.space));
      }
      cur.skip_blanks();
      if (!cur.at_end()) cur.fail("trailing characters");
      program.statements.push_back(std::move(stmt));
    } catch (const ParseError& e) {
      // Re-throw with the offset relative to the whole program text.
      throw ParseError(std::string(e.what()).substr(
                           0, std::string(e.what()).rfind(" (at offset")),
                       offset + e.pos());
    }
  }

  if (program.statements.empty()) {
    throw ParseError("program contains no statements", 0);
  }
  return program;
}

FormulaSequence to_formula_sequence(const ParsedProgram& program,
                                    bool allow_forest) {
  FormulaSequence seq(program.space, {});
  for (const auto& stmt : program.statements) {
    if (stmt.factors.size() == 1) {
      if (stmt.sum_indices.empty()) {
        throw Error("statement producing " + stmt.result.name +
                    " is a plain copy; not a formula");
      }
      seq.push_back(
          Formula::sum(stmt.result, stmt.factors[0], stmt.sum_indices));
    } else if (stmt.factors.size() == 2) {
      if (stmt.sum_indices.empty()) {
        seq.push_back(
            Formula::mult(stmt.result, stmt.factors[0], stmt.factors[1]));
      } else {
        seq.push_back(Formula::contract(stmt.result, stmt.factors[0],
                                        stmt.factors[1], stmt.sum_indices));
      }
    } else {
      throw Error(
          "statement producing " + stmt.result.name + " has " +
          std::to_string(stmt.factors.size()) +
          " factors; binarize it with the operation-minimization search "
          "(tce/opmin) before building a formula sequence");
    }
  }
  seq.validate(allow_forest);
  return seq;
}

FormulaSequence parse_formula_sequence(std::string_view text) {
  return to_formula_sequence(parse_program(text));
}

}  // namespace tce
