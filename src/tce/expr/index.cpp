#include "tce/expr/index.hpp"

#include "tce/common/error.hpp"
#include "tce/common/strings.hpp"

namespace tce {

IndexId IndexSpace::add(std::string name, std::uint64_t extent) {
  TCE_EXPECTS_MSG(is_identifier(name), "index name must be an identifier");
  TCE_EXPECTS(extent > 0);
  if (contains(name)) {
    throw Error("index '" + name + "' already declared");
  }
  if (names_.size() >= kMaxIndices) {
    throw Error("too many index variables (max 64)");
  }
  names_.push_back(std::move(name));
  extents_.push_back(extent);
  return static_cast<IndexId>(names_.size() - 1);
}

bool IndexSpace::contains(std::string_view name) const {
  for (const auto& n : names_) {
    if (n == name) return true;
  }
  return false;
}

IndexId IndexSpace::id(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<IndexId>(i);
  }
  throw Error("unknown index '" + std::string(name) + "'");
}

std::string IndexSet::str(const IndexSpace& space) const {
  std::string out = "{";
  bool first = true;
  for (IndexId id : *this) {
    if (!first) out += ",";
    out += space.name(id);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace tce
