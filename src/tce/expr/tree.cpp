#include "tce/expr/tree.hpp"

#include <map>
#include <set>

#include "tce/common/error.hpp"

namespace tce {

NodeId ExprTree::add_node(ExprNode n) {
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

ExprTree ExprTree::from_sequence(const FormulaSequence& seq) {
  seq.validate();

  ExprTree tree;
  tree.space_ = seq.space();

  // Maps a *result* tensor name to the node that produced it.  Input
  // operands always get a fresh leaf, so a product that uses the same
  // input twice (e.g. quadratic T·T terms in coupled cluster) still
  // yields a tree rather than a DAG; the duplicate is modeled as a
  // separate array.
  std::set<std::string> result_names;
  for (const auto& f : seq.formulas()) result_names.insert(f.result.name);
  std::map<std::string, NodeId> by_name;

  auto operand_node = [&](const TensorRef& t) -> NodeId {
    if (result_names.contains(t.name)) {
      return by_name.at(t.name);
    }
    ExprNode leaf;
    leaf.kind = ExprNode::Kind::kLeaf;
    leaf.tensor = t;
    return tree.add_node(std::move(leaf));
  };

  for (const auto& f : seq.formulas()) {
    ExprNode n;
    n.tensor = f.result;
    switch (f.kind) {
      case Formula::Kind::kMult:
        n.kind = ExprNode::Kind::kMult;
        n.left = operand_node(f.lhs);
        n.right = operand_node(*f.rhs);
        break;
      case Formula::Kind::kContract:
        n.kind = ExprNode::Kind::kContract;
        n.left = operand_node(f.lhs);
        n.right = operand_node(*f.rhs);
        n.sum_indices = f.sum_indices;
        break;
      case Formula::Kind::kSum:
        n.kind = ExprNode::Kind::kSum;
        n.left = operand_node(f.lhs);
        n.sum_indices = f.sum_indices;
        break;
    }
    NodeId id = tree.add_node(std::move(n));
    tree.nodes_[static_cast<std::size_t>(tree.nodes_[id].left)].parent = id;
    if (tree.nodes_[id].right != kNoNode) {
      tree.nodes_[static_cast<std::size_t>(tree.nodes_[id].right)].parent =
          id;
    }
    by_name[f.result.name] = id;
    tree.root_ = id;
  }

  TCE_ENSURES(tree.root_ != kNoNode);
  return tree;
}

std::vector<NodeId> ExprTree::post_order() const {
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  // Iterative post-order over an immutable tree.
  std::vector<std::pair<NodeId, bool>> stack;
  stack.emplace_back(root_, false);
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (id == kNoNode) continue;
    if (expanded) {
      order.push_back(id);
      continue;
    }
    stack.emplace_back(id, true);
    const ExprNode& n = node(id);
    stack.emplace_back(n.right, false);
    stack.emplace_back(n.left, false);
  }
  TCE_ENSURES(order.size() == nodes_.size());
  return order;
}

void ExprTree::render(NodeId id, int depth, std::string& out) const {
  const ExprNode& n = node(id);
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  switch (n.kind) {
    case ExprNode::Kind::kLeaf:
      out += "leaf " + n.tensor.str(space_);
      break;
    case ExprNode::Kind::kMult:
      out += "mult " + n.tensor.str(space_);
      break;
    case ExprNode::Kind::kSum:
      out += "sum" + n.sum_indices.str(space_) + " " + n.tensor.str(space_);
      break;
    case ExprNode::Kind::kContract:
      out += "contract" + n.sum_indices.str(space_) + " " +
             n.tensor.str(space_);
      break;
  }
  out += '\n';
  if (n.left != kNoNode) render(n.left, depth + 1, out);
  if (n.right != kNoNode) render(n.right, depth + 1, out);
}

std::string ExprTree::str() const {
  std::string out;
  render(root_, 0, out);
  return out;
}

}  // namespace tce
