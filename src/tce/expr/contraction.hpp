#pragma once
/// \file contraction.hpp
/// Normalized contraction trees.
///
/// §3.1 observes that every tensor contraction is a generalized matrix
/// multiplication C(I,J) += A(I,K) · B(K,J): the result indices split into
/// the set I appearing only in the left operand and J appearing only in
/// the right operand, while the summation indices K appear in both
/// operands.  ContractionTree is the ExprTree with
///   * chains of kSum nodes merged into the kMult below them (the paper's
///     Fig. 2(a) combined form — the unsummed product is accumulated, not
///     materialized), and
///   * each binary node decomposed into (I, J, K) plus a residual "batch"
///     set H of indices shared by both operands *and* the result.  H is
///     empty for true contractions; the Cannon planner rejects nodes with
///     H ≠ ∅ (e.g. the elementwise product in Fig. 1), matching the
///     paper's restriction.
///
/// Terminology from §3.2 carried on each node:
///   * loop_indices  = v.indices — all loops of the node's loop nest
///     (result indices plus summation indices);
///   * dimens        = v.dimens  — the node's *array* dimensions, i.e.
///     loop_indices minus the summation indices.

#include <cstdint>
#include <string>
#include <vector>

#include "tce/expr/tree.hpp"

namespace tce {

/// One node of a ContractionTree.
struct ContractionNode {
  enum class Kind {
    kInput,        ///< Leaf: an input array.
    kContraction,  ///< Binary: C(I,J,H) += A(I,K,H) · B(K,J,H).
    kReduce,       ///< Unary: pure summation with no multiplication below.
  };

  Kind kind = Kind::kInput;
  TensorRef tensor;  ///< Array produced at this node.

  IndexSet sum_indices;    ///< K (kContraction) or the reduce set.
  IndexSet left_indices;   ///< I: in left operand and result only.
  IndexSet right_indices;  ///< J: in right operand and result only.
  IndexSet batch_indices;  ///< H: in both operands and the result.

  NodeId left = kNoNode;
  NodeId right = kNoNode;
  NodeId parent = kNoNode;

  /// v.dimens — the array dimension index set.
  IndexSet dimens() const { return tensor.index_set(); }
  /// v.indices — all loop indices of the node's loop nest.
  IndexSet loop_indices() const { return dimens() | sum_indices; }
  /// True when this node is representable by the generalized Cannon
  /// algorithm (a true contraction: no batch indices).
  bool cannon_representable() const {
    return kind == Kind::kContraction && batch_indices.empty();
  }
};

/// A tree of contraction/reduce nodes over an IndexSpace.
class ContractionTree {
 public:
  /// Normalizes an ExprTree (merging kSum chains into the kMult below).
  static ContractionTree from_expr(const ExprTree& tree);
  /// Convenience: sequence -> ExprTree -> ContractionTree.
  static ContractionTree from_sequence(const FormulaSequence& seq);

  const IndexSpace& space() const noexcept { return space_; }
  IndexSpace& mutable_space() noexcept { return space_; }
  NodeId root() const noexcept { return root_; }
  const ContractionNode& node(NodeId id) const {
    TCE_EXPECTS(id >= 0 && id < static_cast<NodeId>(nodes_.size()));
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Node ids in post order (children before parents); the root is last.
  std::vector<NodeId> post_order() const;

  /// Leaf node ids in left-to-right order.
  std::vector<NodeId> leaves() const;

  /// Floating point operations executed at node \p id: 2·Π N over the full
  /// loop space for a contraction (multiply + add), Π N over the child's
  /// loop space for a reduce, 0 for an input.
  std::uint64_t flops(NodeId id) const;

  /// Total operation count of the whole tree.
  std::uint64_t total_flops() const;

  /// Sum of unfused, undistributed array sizes in bytes over all non-input
  /// nodes plus all inputs — the paper's "total memory requirement"
  /// (§4 computes ≈65.3 GB for the example this way).
  std::uint64_t total_bytes_unfused() const;

  /// ASCII rendering, one node per line with (I|J|K|H) annotations.
  std::string str() const;

 private:
  IndexSpace space_;
  std::vector<ContractionNode> nodes_;
  NodeId root_ = kNoNode;

  NodeId add_node(ContractionNode n);
  void render(NodeId id, int depth, std::string& out) const;
};

}  // namespace tce
