#include "tce/expr/tensor_ref.hpp"

namespace tce {

std::string TensorRef::str(const IndexSpace& space) const {
  std::string out = name + "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i != 0) out += ",";
    out += space.name(dims[i]);
  }
  out += "]";
  return out;
}

}  // namespace tce
