#include "tce/expr/contraction.hpp"

#include <map>

#include "tce/common/error.hpp"

namespace tce {

NodeId ContractionTree::add_node(ContractionNode n) {
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

namespace {

/// Fills the (I, J, K, H) decomposition of a binary node from its operand
/// index sets; throws on inconsistency.
void decompose(ContractionNode& n, IndexSet left_set, IndexSet right_set,
               const IndexSpace& space) {
  const IndexSet result = n.tensor.index_set();
  const IndexSet shared = left_set & right_set;
  if (!n.sum_indices.subset_of(shared)) {
    throw Error("summation indices " + n.sum_indices.str(space) +
                " of " + n.tensor.str(space) +
                " must appear in both operands");
  }
  n.left_indices = (left_set - right_set) & result;
  n.right_indices = (right_set - left_set) & result;
  n.batch_indices = shared & result;
  const IndexSet covered =
      n.left_indices | n.right_indices | n.batch_indices;
  if (covered != result) {
    throw Error("result indices of " + n.tensor.str(space) +
                " not covered by operands");
  }
  // Shared indices must be either summed or kept (batch); anything else
  // (a shared index that vanishes without summation) is ill-formed and
  // already rejected by FormulaSequence::validate().
  TCE_ENSURES((shared - n.sum_indices) == n.batch_indices);
}

}  // namespace

ContractionTree ContractionTree::from_expr(const ExprTree& tree) {
  ContractionTree out;
  out.space_ = tree.space();

  // Maps ExprTree node id -> ContractionTree node id.  Sum chains collapse:
  // a kSum whose child maps to a contraction node that is not yet consumed
  // folds its indices into that node and maps to the same id.
  std::map<NodeId, NodeId> to_out;

  for (NodeId id : tree.post_order()) {
    const ExprNode& e = tree.node(id);
    switch (e.kind) {
      case ExprNode::Kind::kLeaf: {
        ContractionNode n;
        n.kind = ContractionNode::Kind::kInput;
        n.tensor = e.tensor;
        to_out[id] = out.add_node(std::move(n));
        break;
      }
      case ExprNode::Kind::kMult:
      case ExprNode::Kind::kContract: {
        ContractionNode n;
        n.kind = ContractionNode::Kind::kContraction;
        n.tensor = e.tensor;
        n.sum_indices = e.sum_indices;  // empty for kMult
        n.left = to_out.at(e.left);
        n.right = to_out.at(e.right);
        const IndexSet ls =
            out.nodes_[static_cast<std::size_t>(n.left)].tensor.index_set();
        const IndexSet rs =
            out.nodes_[static_cast<std::size_t>(n.right)].tensor.index_set();
        decompose(n, ls, rs, out.space_);
        NodeId nid = out.add_node(std::move(n));
        out.nodes_[static_cast<std::size_t>(out.nodes_[nid].left)].parent =
            nid;
        out.nodes_[static_cast<std::size_t>(out.nodes_[nid].right)].parent =
            nid;
        to_out[id] = nid;
        break;
      }
      case ExprNode::Kind::kSum: {
        // Summations commute, so a chain of kSum nodes above a kMult can
        // be re-associated freely: every summed index shared by both
        // operands of the multiplication folds into the contraction's K
        // (the product is accumulated, never materialized); the remaining
        // indices stay in (at most one) kReduce node above it.
        const NodeId m = to_out.at(e.left);
        const bool m_is_reduce =
            out.nodes_[static_cast<std::size_t>(m)].kind ==
            ContractionNode::Kind::kReduce;
        const NodeId c =
            m_is_reduce ? out.nodes_[static_cast<std::size_t>(m)].left : m;

        IndexSet rest = e.sum_indices;
        ContractionNode& cn = out.nodes_[static_cast<std::size_t>(c)];
        if (cn.kind == ContractionNode::Kind::kContraction) {
          const IndexSet ls =
              out.nodes_[static_cast<std::size_t>(cn.left)]
                  .tensor.index_set();
          const IndexSet rs =
              out.nodes_[static_cast<std::size_t>(cn.right)]
                  .tensor.index_set();
          const IndexSet fold = rest & ls & rs;
          if (!fold.empty()) {
            rest = rest - fold;
            cn.sum_indices = cn.sum_indices | fold;
            // Shrink the contraction's result array by the folded dims.
            TensorRef shrunk;
            shrunk.name = cn.tensor.name;
            for (IndexId d : cn.tensor.dims) {
              if (!fold.contains(d)) shrunk.dims.push_back(d);
            }
            cn.tensor = std::move(shrunk);
            decompose(cn, ls, rs, out.space_);
          }
        }

        if (m_is_reduce) {
          ContractionNode& rn = out.nodes_[static_cast<std::size_t>(m)];
          rn.sum_indices = rn.sum_indices | rest;
          rn.tensor = e.tensor;
          to_out[id] = m;
        } else if (rest.empty()) {
          out.nodes_[static_cast<std::size_t>(m)].tensor = e.tensor;
          to_out[id] = m;
        } else {
          ContractionNode n;
          n.kind = ContractionNode::Kind::kReduce;
          n.tensor = e.tensor;
          n.sum_indices = rest;
          n.left = m;
          NodeId nid = out.add_node(std::move(n));
          out.nodes_[static_cast<std::size_t>(m)].parent = nid;
          to_out[id] = nid;
        }
        break;
      }
    }
  }

  out.root_ = to_out.at(tree.root());
  return out;
}

ContractionTree ContractionTree::from_sequence(const FormulaSequence& seq) {
  return from_expr(ExprTree::from_sequence(seq));
}

std::vector<NodeId> ContractionTree::post_order() const {
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<std::pair<NodeId, bool>> stack;
  stack.emplace_back(root_, false);
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (id == kNoNode) continue;
    if (expanded) {
      order.push_back(id);
      continue;
    }
    stack.emplace_back(id, true);
    const ContractionNode& n = node(id);
    stack.emplace_back(n.right, false);
    stack.emplace_back(n.left, false);
  }
  TCE_ENSURES(order.size() == nodes_.size());
  return order;
}

std::vector<NodeId> ContractionTree::leaves() const {
  std::vector<NodeId> out;
  for (NodeId id : post_order()) {
    if (node(id).kind == ContractionNode::Kind::kInput) out.push_back(id);
  }
  return out;
}

std::uint64_t ContractionTree::flops(NodeId id) const {
  const ContractionNode& n = node(id);
  switch (n.kind) {
    case ContractionNode::Kind::kInput:
      return 0;
    case ContractionNode::Kind::kContraction:
      return checked_mul(2, n.loop_indices().extent_product(space_));
    case ContractionNode::Kind::kReduce:
      return node(n.left).tensor.index_set().extent_product(space_);
  }
  TCE_UNREACHABLE("bad node kind");
}

std::uint64_t ContractionTree::total_flops() const {
  std::uint64_t total = 0;
  for (NodeId id : post_order()) total = checked_add(total, flops(id));
  return total;
}

std::uint64_t ContractionTree::total_bytes_unfused() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) {
    total = checked_add(total, tensor_bytes(n.tensor, space_));
  }
  return total;
}

void ContractionTree::render(NodeId id, int depth, std::string& out) const {
  const ContractionNode& n = node(id);
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  switch (n.kind) {
    case ContractionNode::Kind::kInput:
      out += "input " + n.tensor.str(space_);
      break;
    case ContractionNode::Kind::kContraction:
      out += "contract " + n.tensor.str(space_) + "  I=" +
             n.left_indices.str(space_) + " J=" +
             n.right_indices.str(space_) + " K=" +
             n.sum_indices.str(space_);
      if (!n.batch_indices.empty()) {
        out += " H=" + n.batch_indices.str(space_);
      }
      break;
    case ContractionNode::Kind::kReduce:
      out += "reduce" + n.sum_indices.str(space_) + " " +
             n.tensor.str(space_);
      break;
  }
  out += '\n';
  if (n.left != kNoNode) render(n.left, depth + 1, out);
  if (n.right != kNoNode) render(n.right, depth + 1, out);
}

std::string ContractionTree::str() const {
  std::string out;
  render(root_, 0, out);
  return out;
}

}  // namespace tce
