#include "tce/expr/formula.hpp"

#include <map>
#include <set>

#include "tce/common/error.hpp"

namespace tce {

Formula Formula::mult(TensorRef result, TensorRef x, TensorRef y) {
  Formula f;
  f.kind = Kind::kMult;
  f.result = std::move(result);
  f.lhs = std::move(x);
  f.rhs = std::move(y);
  return f;
}

Formula Formula::sum(TensorRef result, TensorRef x, IndexSet indices) {
  Formula f;
  f.kind = Kind::kSum;
  f.result = std::move(result);
  f.lhs = std::move(x);
  f.sum_indices = indices;
  return f;
}

Formula Formula::contract(TensorRef result, TensorRef x, TensorRef y,
                          IndexSet indices) {
  Formula f;
  f.kind = Kind::kContract;
  f.result = std::move(result);
  f.lhs = std::move(x);
  f.rhs = std::move(y);
  f.sum_indices = indices;
  return f;
}

std::string Formula::str(const IndexSpace& space) const {
  std::string out = result.str(space) + " = ";
  switch (kind) {
    case Kind::kSum:
      out += "sum" + sum_indices.str(space) + " " + lhs.str(space);
      break;
    case Kind::kMult:
      out += lhs.str(space) + " * " + rhs->str(space);
      break;
    case Kind::kContract:
      out += "sum" + sum_indices.str(space) + " " + lhs.str(space) + " * " +
             rhs->str(space);
      break;
  }
  return out;
}

namespace {

void check_no_repeated_index(const TensorRef& t, const IndexSpace& space) {
  if (t.index_set().count() != t.dims.size()) {
    throw Error("tensor " + t.str(space) + " repeats an index");
  }
}

}  // namespace

void FormulaSequence::validate(bool allow_forest) const {
  if (formulas_.empty()) throw Error("empty formula sequence");

  // Pass 1: which names are produced, and are result names unique?
  std::set<std::string> all_results;
  for (const auto& f : formulas_) {
    if (!all_results.insert(f.result.name).second) {
      throw Error("tensor '" + f.result.name + "' produced twice");
    }
  }

  // Pass 2: per-formula well-formedness, def-before-use, shape consistency.
  std::map<std::string, std::vector<IndexId>> shapes;  // name -> dims
  std::set<std::string> defined;  // results of earlier formulas
  std::map<std::string, int> consumed;

  auto note_use = [&](const TensorRef& t) {
    check_no_repeated_index(t, space_);
    if (all_results.contains(t.name) && !defined.contains(t.name)) {
      throw Error("tensor '" + t.name + "' used before definition");
    }
    auto [it, inserted] = shapes.emplace(t.name, t.dims);
    if (!inserted && it->second != t.dims) {
      throw Error("tensor '" + t.name +
                  "' used with inconsistent index lists");
    }
    consumed[t.name] += 1;
  };

  for (const auto& f : formulas_) {
    note_use(f.lhs);
    if (f.kind == Formula::Kind::kMult ||
        f.kind == Formula::Kind::kContract) {
      if (!f.rhs) throw Error("binary formula missing rhs operand");
      note_use(*f.rhs);
      if (f.kind == Formula::Kind::kMult && !f.sum_indices.empty()) {
        throw Error("multiplication formula cannot carry summation indices");
      }
      if (f.kind == Formula::Kind::kContract && f.sum_indices.empty()) {
        throw Error("contraction formula with empty summation set: " +
                    f.str(space_));
      }
      const IndexSet operand_union =
          f.lhs.index_set() | f.rhs->index_set();
      if (!f.sum_indices.subset_of(operand_union)) {
        throw Error("summation over indices absent from operands: " +
                    f.str(space_));
      }
      const IndexSet want = operand_union - f.sum_indices;
      if (f.result.index_set() != want) {
        throw Error("ill-formed formula: " + f.str(space_) +
                    " — result indices must be " + want.str(space_));
      }
    } else {
      if (f.rhs) throw Error("summation formula cannot have two operands");
      if (f.sum_indices.empty()) {
        throw Error("summation formula with empty index set: " +
                    f.str(space_));
      }
      if (!f.sum_indices.subset_of(f.lhs.index_set())) {
        throw Error("summation over indices absent from operand: " +
                    f.str(space_));
      }
      const IndexSet want = f.lhs.index_set() - f.sum_indices;
      if (f.result.index_set() != want) {
        throw Error("ill-formed summation: " + f.str(space_) +
                    " — result indices must be " + want.str(space_));
      }
    }

    check_no_repeated_index(f.result, space_);
    auto [it, inserted] = shapes.emplace(f.result.name, f.result.dims);
    if (!inserted && it->second != f.result.dims) {
      throw Error("tensor '" + f.result.name +
                  "' used with inconsistent index lists");
    }
    defined.insert(f.result.name);
  }

  // Tree/forest property: every result is consumed at most once; roots
  // (consumed zero times) form the outputs.
  std::size_t roots = 0;
  for (const auto& f : formulas_) {
    const int uses = consumed.count(f.result.name)
                         ? consumed.at(f.result.name)
                         : 0;
    if (uses == 0) {
      ++roots;
    } else if (uses != 1) {
      throw Error("intermediate '" + f.result.name + "' consumed " +
                  std::to_string(uses) +
                  " times; expression must form a tree (exactly one use)");
    }
  }
  TCE_ENSURES(roots >= 1);
  if (!allow_forest) {
    if (roots != 1) {
      throw Error("program produces " + std::to_string(roots) +
                  " unconsumed results; a single-tree sequence must have "
                  "exactly one (use the forest APIs for multi-output "
                  "programs)");
    }
    const auto rn = root_names();
    if (rn.front() != formulas_.back().result.name) {
      throw Error("final formula must produce the root result");
    }
  }
}

std::vector<std::string> FormulaSequence::root_names() const {
  std::set<std::string> consumed;
  for (const auto& f : formulas_) {
    consumed.insert(f.lhs.name);
    if (f.rhs) consumed.insert(f.rhs->name);
  }
  std::vector<std::string> roots;
  for (const auto& f : formulas_) {
    if (!consumed.contains(f.result.name)) {
      roots.push_back(f.result.name);
    }
  }
  return roots;
}

std::vector<TensorRef> FormulaSequence::inputs() const {
  std::set<std::string> produced;
  for (const auto& f : formulas_) produced.insert(f.result.name);

  std::vector<TensorRef> ins;
  std::set<std::string> seen;
  auto consider = [&](const TensorRef& t) {
    if (!produced.contains(t.name) && seen.insert(t.name).second) {
      ins.push_back(t);
    }
  };
  for (const auto& f : formulas_) {
    consider(f.lhs);
    if (f.rhs) consider(*f.rhs);
  }
  return ins;
}

const TensorRef& FormulaSequence::output() const {
  TCE_EXPECTS(!formulas_.empty());
  return formulas_.back().result;
}

std::string FormulaSequence::str() const {
  std::string out;
  for (const auto& f : formulas_) {
    out += f.str(space_);
    out += '\n';
  }
  return out;
}

}  // namespace tce
