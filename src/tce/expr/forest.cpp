#include "tce/expr/forest.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "tce/common/error.hpp"

namespace tce {

ContractionForest ContractionForest::from_sequence(
    const FormulaSequence& seq) {
  seq.validate(/*allow_forest=*/true);

  // Assign each formula to the root whose subtree it belongs to: walk
  // backwards, propagating membership from consumers to producers (each
  // result has exactly one consumer).
  const std::vector<std::string> roots = seq.root_names();
  std::map<std::string, std::size_t> owner;  // result name -> tree index
  for (std::size_t r = 0; r < roots.size(); ++r) owner[roots[r]] = r;

  const auto& formulas = seq.formulas();
  std::vector<std::vector<Formula>> groups(roots.size());
  for (std::size_t i = formulas.size(); i-- > 0;) {
    const Formula& f = formulas[i];
    auto it = owner.find(f.result.name);
    TCE_ENSURES(it != owner.end());  // consumers are later formulas
    const std::size_t tree = it->second;
    owner[f.lhs.name] = tree;
    if (f.rhs) owner[f.rhs->name] = tree;
    groups[tree].push_back(f);
  }

  ContractionForest forest;
  forest.space = seq.space();
  for (auto& g : groups) {
    std::reverse(g.begin(), g.end());  // restore program order
    FormulaSequence sub(seq.space(), std::move(g));
    forest.trees.push_back(ContractionTree::from_sequence(sub));
  }
  return forest;
}

}  // namespace tce
