#pragma once
/// \file parser.hpp
/// A small text format for tensor contraction programs.
///
/// Example (the paper's §4 input):
///
///     index a, b, c, d = 480
///     index e, f = 64
///     index i, j, k, l = 32
///     T1[b,c,d,f] = sum[e,l] B[b,e,f,l] * D[c,d,e,l]
///     T2[b,c,j,k] = sum[d,f] T1[b,c,d,f] * C[d,f,j,k]
///     S[a,b,i,j]  = sum[c,k] T2[b,c,j,k] * A[a,c,i,k]
///
/// Statements are separated by newlines or ';'.  '#' starts a comment.
/// A statement's right-hand side may have any number of factors; programs
/// where every statement has at most two factors convert directly to a
/// FormulaSequence, while multi-factor statements are the input form of
/// the operation-minimization search (tce/opmin), which binarizes them.

#include <string>
#include <vector>

#include "tce/expr/formula.hpp"

namespace tce {

/// One parsed statement: result = sum[...] factor * factor * ...
struct ParsedStatement {
  TensorRef result;
  IndexSet sum_indices;            ///< Empty when no sum[...] was written.
  std::vector<TensorRef> factors;  ///< At least one.
};

/// A parsed program: declared index space plus statements in order.
struct ParsedProgram {
  IndexSpace space;
  std::vector<ParsedStatement> statements;
};

/// Parses the text format; throws ParseError with an offset on bad input.
ParsedProgram parse_program(std::string_view text);

/// Converts a parsed program whose statements all have one or two factors
/// into a validated FormulaSequence; throws tce::Error for statements that
/// need binarization (use tce/opmin for those).  With \p allow_forest the
/// program may produce several outputs (validated with the forest rule).
FormulaSequence to_formula_sequence(const ParsedProgram& program,
                                    bool allow_forest = false);

/// parse + convert + validate in one call — the common entry point.
FormulaSequence parse_formula_sequence(std::string_view text);

}  // namespace tce
