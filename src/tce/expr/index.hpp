#pragma once
/// \file index.hpp
/// Index variables and index sets.
///
/// A tensor contraction expression is written over a small universe of
/// *index variables* (the paper's a..l), each with an integer extent
/// (N_a = 480, ...).  IndexSpace is the registry mapping names to compact
/// ids and extents; IndexSet is a bitmask set over those ids, giving O(1)
/// unions/intersections during the search, which enumerates very many
/// fusion/distribution combinations.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tce/common/assert.hpp"
#include "tce/common/checked.hpp"

namespace tce {

/// Compact id of an index variable within an IndexSpace.  At most 64
/// variables are supported (far beyond the handful practical inputs use —
/// the paper notes "the number of index variables in practical applications
/// is usually small").
using IndexId = std::uint8_t;

inline constexpr std::size_t kMaxIndices = 64;

/// Registry of index variables: name <-> id <-> extent.
class IndexSpace {
 public:
  /// Registers a new index variable; names must be unique identifiers.
  IndexId add(std::string name, std::uint64_t extent);

  /// Number of registered variables.
  std::size_t size() const noexcept { return names_.size(); }

  /// True if \p name is registered.
  bool contains(std::string_view name) const;

  /// Id of a registered name; throws if absent.
  IndexId id(std::string_view name) const;

  /// Name of a registered id.
  const std::string& name(IndexId id) const {
    TCE_EXPECTS(id < names_.size());
    return names_[id];
  }

  /// Extent N_i of a registered id.
  std::uint64_t extent(IndexId id) const {
    TCE_EXPECTS(id < extents_.size());
    return extents_[id];
  }

  /// Replaces the extent of an existing index (used by parameter sweeps).
  void set_extent(IndexId id, std::uint64_t extent) {
    TCE_EXPECTS(id < extents_.size());
    TCE_EXPECTS(extent > 0);
    extents_[id] = extent;
  }

 private:
  std::vector<std::string> names_;
  std::vector<std::uint64_t> extents_;
};

/// Set of index variables as a 64-bit mask.  Value type; cheap to copy.
class IndexSet {
 public:
  constexpr IndexSet() = default;
  constexpr explicit IndexSet(std::uint64_t bits) : bits_(bits) {}

  /// Singleton set {id}.
  static constexpr IndexSet single(IndexId id) {
    return IndexSet(std::uint64_t{1} << id);
  }

  /// Builds a set from a list of ids.
  static IndexSet of(std::initializer_list<IndexId> ids) {
    IndexSet s;
    for (IndexId id : ids) s.insert(id);
    return s;
  }

  constexpr bool empty() const noexcept { return bits_ == 0; }
  constexpr std::size_t count() const noexcept {
    return static_cast<std::size_t>(__builtin_popcountll(bits_));
  }
  /// False for out-of-range ids — in particular kNoIndex, which callers
  /// routinely pass for unassigned distribution positions.
  constexpr bool contains(IndexId id) const noexcept {
    return id < kMaxIndices && ((bits_ >> id) & 1u) != 0;
  }

  void insert(IndexId id) {
    TCE_EXPECTS(id < kMaxIndices);
    bits_ |= std::uint64_t{1} << id;
  }
  void erase(IndexId id) noexcept {
    if (id < kMaxIndices) bits_ &= ~(std::uint64_t{1} << id);
  }

  constexpr std::uint64_t bits() const noexcept { return bits_; }

  constexpr bool subset_of(IndexSet other) const noexcept {
    return (bits_ & ~other.bits_) == 0;
  }

  friend constexpr IndexSet operator|(IndexSet a, IndexSet b) {
    return IndexSet(a.bits_ | b.bits_);
  }
  friend constexpr IndexSet operator&(IndexSet a, IndexSet b) {
    return IndexSet(a.bits_ & b.bits_);
  }
  /// Set difference a − b.
  friend constexpr IndexSet operator-(IndexSet a, IndexSet b) {
    return IndexSet(a.bits_ & ~b.bits_);
  }
  friend constexpr bool operator==(IndexSet a, IndexSet b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(IndexSet a, IndexSet b) {
    return a.bits_ != b.bits_;
  }
  /// Arbitrary strict ordering, for use as map keys.
  friend constexpr bool operator<(IndexSet a, IndexSet b) {
    return a.bits_ < b.bits_;
  }

  /// Iterates over members in increasing id order.
  class iterator {
   public:
    explicit constexpr iterator(std::uint64_t bits) : bits_(bits) {}
    IndexId operator*() const {
      return static_cast<IndexId>(__builtin_ctzll(bits_));
    }
    iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    constexpr bool operator!=(const iterator& o) const {
      return bits_ != o.bits_;
    }

   private:
    std::uint64_t bits_;
  };
  iterator begin() const { return iterator(bits_); }
  iterator end() const { return iterator(0); }

  /// Members as a vector, in increasing id order.
  std::vector<IndexId> to_vector() const {
    std::vector<IndexId> v;
    v.reserve(count());
    for (IndexId id : *this) v.push_back(id);
    return v;
  }

  /// Product of extents of all members (1 for the empty set).
  std::uint64_t extent_product(const IndexSpace& space) const {
    std::uint64_t p = 1;
    for (IndexId id : *this) p = checked_mul(p, space.extent(id));
    return p;
  }

  /// Renders as "{a,c,k}" using names from \p space.
  std::string str(const IndexSpace& space) const;

 private:
  std::uint64_t bits_ = 0;
};

/// Enumerates all subsets of \p s (including empty and s itself), invoking
/// \p fn on each.  Used by the fusion search, which considers every subset
/// of fusable indices.
template <typename Fn>
void for_each_subset(IndexSet s, Fn&& fn) {
  const std::uint64_t m = s.bits();
  std::uint64_t sub = m;
  while (true) {
    fn(IndexSet(sub));
    if (sub == 0) break;
    sub = (sub - 1) & m;
  }
}

}  // namespace tce
