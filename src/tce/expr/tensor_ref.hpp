#pragma once
/// \file tensor_ref.hpp
/// Symbolic tensor references: a name plus an ordered list of index
/// variables, e.g. B[b,e,f,l].  The *order* matters for dense layout and
/// code generation; the *set* view (IndexSet) drives all the search math.

#include <cstdint>
#include <string>
#include <vector>

#include "tce/expr/index.hpp"

namespace tce {

/// A named tensor with ordered dimensions.
struct TensorRef {
  std::string name;
  std::vector<IndexId> dims;

  /// The unordered set of this tensor's indices.  Repeated indices within
  /// one tensor (diagonals) are not supported and rejected at validation.
  IndexSet index_set() const {
    IndexSet s;
    for (IndexId d : dims) s.insert(d);
    return s;
  }

  /// Number of dimensions (0 for a scalar).
  std::size_t rank() const noexcept { return dims.size(); }

  /// Total element count Π N_i.
  std::uint64_t num_elements(const IndexSpace& space) const {
    std::uint64_t n = 1;
    for (IndexId d : dims) n = checked_mul(n, space.extent(d));
    return n;
  }

  /// Renders as "B[b,e,f,l]" (or "S[]" for a scalar).
  std::string str(const IndexSpace& space) const;

  friend bool operator==(const TensorRef& a, const TensorRef& b) {
    return a.name == b.name && a.dims == b.dims;
  }
};

/// Size in bytes of a double-precision tensor.
inline std::uint64_t tensor_bytes(const TensorRef& t,
                                  const IndexSpace& space) {
  return checked_mul(t.num_elements(space), sizeof(double));
}

}  // namespace tce
