#pragma once
/// \file forest.hpp
/// Multi-output programs: a *forest* of contraction trees.
///
/// Real coupled-cluster computations produce many result tensors (the
/// singles/doubles residuals, energy pieces, ...).  The paper optimizes
/// one expression tree; this extension splits a multi-output formula
/// sequence into its trees (every intermediate still has exactly one
/// consumer, so the split is unique) so that the forest optimizer in
/// tce/core/forest.hpp can plan them jointly under a shared memory
/// limit.

#include "tce/expr/contraction.hpp"

namespace tce {

/// A forest of contraction trees over one shared IndexSpace.
struct ContractionForest {
  IndexSpace space;
  /// One tree per program output, in production order of their roots.
  std::vector<ContractionTree> trees;

  /// Splits a (possibly multi-output) formula sequence.  Validates with
  /// the forest rule; a single-root sequence yields a one-tree forest.
  static ContractionForest from_sequence(const FormulaSequence& seq);

  /// Total operation count across all trees.
  std::uint64_t total_flops() const {
    std::uint64_t total = 0;
    for (const auto& t : trees) total = checked_add(total, t.total_flops());
    return total;
  }
};

}  // namespace tce
