#pragma once
/// \file machine_model.hpp
/// The abstract communication/computation cost oracle consumed by the
/// optimizer.
///
/// §3.3: "We empirically measure RCost for each distribution α and each
/// position of the index i, and for several different localsizes on the
/// target parallel computer."  The optimizer only ever asks three
/// questions of the target machine, captured by this interface:
///   * the cost of one full Cannon rotation (√P ring-shift steps) of an
///     array with a given per-processor block size, along a given grid
///     dimension;
///   * the cost of redistributing an array between two block
///     distributions;
///   * the time to execute a number of floating-point operations on one
///     processor.
/// Implementations: AnalyticModel (closed-form α–β) and
/// CharacterizedModel (interpolates a measured table, which we generate
/// by running measurement kernels on the simulated cluster — the
/// substitute for the paper's Itanium runs).

#include <cstdint>

#include "tce/dist/grid.hpp"

namespace tce {

/// Cost oracle for one (machine, grid) pairing.
class MachineModel {
 public:
  virtual ~MachineModel() = default;

  /// Seconds for one full rotation (√P synchronized ring-shift steps, all
  /// processors participating) of an array with \p local_bytes per
  /// processor, moving along grid dimension \p rot_dim (1 or 2).
  virtual double rotate_cost(std::uint64_t local_bytes,
                             int rot_dim) const = 0;

  /// Seconds to redistribute an array with \p local_bytes per processor
  /// between two block distributions (data reshuffles within rows or
  /// columns of the grid).
  virtual double redistribute_cost(std::uint64_t local_bytes) const = 0;

  /// Seconds for every processor to obtain a full copy of an array of
  /// \p total_bytes currently block-distributed over all P processors
  /// (MPI_Allgather-style; recursive doubling on power-of-two machines).
  /// Used by the replicate–compute–reduce template extension.
  virtual double allgather_cost(std::uint64_t total_bytes) const = 0;

  /// Seconds for the √P processors of one grid line (along \p dim) to
  /// combine their \p partial_bytes partial-sum arrays and leave each
  /// with its 1/√P share (MPI_Reduce_scatter-style butterfly).  Used by
  /// the replicate–compute–reduce template extension.
  virtual double reduce_scatter_cost(std::uint64_t partial_bytes,
                                     int dim) const = 0;

  /// Seconds for \p flops floating-point operations on one processor.
  virtual double compute_time(std::uint64_t flops) const = 0;

  /// The logical processor grid this model is calibrated for.
  virtual const ProcGrid& grid() const = 0;
};

}  // namespace tce
