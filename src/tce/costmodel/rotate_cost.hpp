#pragma once
/// \file rotate_cost.hpp
/// The paper's §3.3 communication cost formula:
///
///   RotateCost(v, α, i, f) = MsgFactor(v, α, f) ·
///                            RCost(DistSize(v, α, f), α, i)
///
/// DistSize shrinks the per-message block by the fused dimensions;
/// MsgFactor multiplies by the number of times the collective executes
/// inside the fused loops.  RCost is the machine oracle; on our models it
/// is keyed by the local block size and the grid dimension the rotation
/// moves along (which is what the paper's (α, position-of-i) key resolves
/// to).

#include "tce/costmodel/machine_model.hpp"
#include "tce/dist/distribution.hpp"

namespace tce {

/// RotateCost — seconds to rotate array \p v (distributed \p alpha, fused
/// \p fused with its parent) along grid dimension \p rot_dim, for the
/// whole fused loop nest.
double rotate_cost(const MachineModel& model, const TensorRef& v,
                   const Distribution& alpha, int rot_dim, IndexSet fused,
                   const IndexSpace& space);

/// Redistribution cost for array \p v moving between two distributions at
/// the given fusion (0 when the distributions are equal).
double redistribute_cost(const MachineModel& model, const TensorRef& v,
                         const Distribution& from, const Distribution& to,
                         IndexSet fused, const IndexSpace& space);

}  // namespace tce
