#pragma once
/// \file characterization.hpp
/// The empirical characterization table and the model that interpolates
/// it.
///
/// §3.3: "Although generating the characterization is somewhat laborious,
/// once a characterization file is completed, it can be used to predict,
/// by interpolation or extrapolation, the communication times for
/// arbitrary array distributions and sizes."  This file implements that
/// artifact: a table of measured (block size → seconds) samples per
/// communication pattern, log–log linear interpolation between samples,
/// slope-preserving extrapolation beyond them, and a text serialization
/// so a characterization can be generated once and reused.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tce/costmodel/machine_model.hpp"

namespace tce {

/// Running totals of CostCurve evaluations on this thread.  Always
/// counted (two increments per eval — far below measurement noise);
/// the optimizer snapshots deltas into OptimizerStats and the metrics
/// registry.
struct CurveCounters {
  std::uint64_t lookups = 0;
  std::uint64_t extrapolations = 0;  ///< Queries outside the sampled range.
};

/// This thread's counters since start (monotone; take deltas).
CurveCounters curve_counters() noexcept;

/// A monotone size→seconds curve with log–log interpolation.
class CostCurve {
 public:
  /// Adds a sample; sizes must be added strictly increasing.
  void add_sample(std::uint64_t bytes, double seconds);

  /// Number of samples.
  std::size_t size() const noexcept { return bytes_.size(); }
  bool empty() const noexcept { return bytes_.empty(); }

  /// Evaluates the curve: exact at samples, log–log linear between,
  /// end-slope extrapolated outside.  Needs at least one sample (two for
  /// meaningful extrapolation).  A query of 0 bytes returns the first
  /// sample's value (pure start-up).
  double eval(std::uint64_t bytes) const;

  /// Same evaluation, but without touching the thread's CurveCounters.
  /// Compute-time queries use this: the lookup/extrapolation totals feed
  /// the optimizer's *communication*-model telemetry (and its
  /// extrapolation-based tolerance loosening), which a compute-curve
  /// query must not perturb.
  double eval_quiet(std::uint64_t bytes) const;

  /// Samples, for serialization and tests.
  const std::vector<std::uint64_t>& sample_bytes() const { return bytes_; }
  const std::vector<double>& sample_seconds() const { return seconds_; }

 private:
  std::vector<std::uint64_t> bytes_;
  std::vector<double> seconds_;
};

/// The full characterization of one (machine, grid) pairing.
struct CharacterizationTable {
  ProcGrid grid;
  CostCurve rotate_dim1;  ///< Full-rotation cost along grid dimension 1.
  CostCurve rotate_dim2;  ///< Along grid dimension 2.
  CostCurve redistribute;
  /// Allgather over all P ranks, keyed by *total* array bytes.
  CostCurve allgather;
  /// Reduce-scatter within one grid line, keyed by per-rank partial
  /// bytes.
  CostCurve reduce_dim1;
  CostCurve reduce_dim2;
  /// Local-contraction curve (v3), keyed by *flops* rather than bytes:
  /// measured/modeled seconds for one rank to execute a GEMM of that
  /// many flops.  Captures the size-dependent efficiency of the tiled
  /// kernel (small products never reach peak).  When absent (v1/v2
  /// files), compute_time falls back to the flat flops_per_proc rate.
  CostCurve compute;
  double flops_per_proc = 1e9;

  /// Serializes to the characterization-file text format.
  void save(std::ostream& os) const;
  std::string save_string() const;

  /// Parses a characterization file; throws tce::Error on malformed
  /// input.
  static CharacterizationTable load(std::istream& is);
  static CharacterizationTable load_string(const std::string& text);
};

/// MachineModel backed by a CharacterizationTable.
class CharacterizedModel final : public MachineModel {
 public:
  explicit CharacterizedModel(CharacterizationTable table);

  double rotate_cost(std::uint64_t local_bytes, int rot_dim) const override;
  double redistribute_cost(std::uint64_t local_bytes) const override;
  double allgather_cost(std::uint64_t total_bytes) const override;
  double reduce_scatter_cost(std::uint64_t partial_bytes,
                             int dim) const override;
  double compute_time(std::uint64_t flops) const override;
  const ProcGrid& grid() const override { return table_.grid; }

  const CharacterizationTable& table() const { return table_; }

 private:
  CharacterizationTable table_;
};

}  // namespace tce
