#include "tce/costmodel/rotate_cost.hpp"

namespace tce {

double rotate_cost(const MachineModel& model, const TensorRef& v,
                   const Distribution& alpha, int rot_dim, IndexSet fused,
                   const IndexSpace& space) {
  const ProcGrid& grid = model.grid();
  const std::uint64_t factor = msg_factor(v, alpha, fused, space, grid);
  const std::uint64_t block = dist_bytes(v, alpha, fused, space, grid);
  return static_cast<double>(factor) * model.rotate_cost(block, rot_dim);
}

double redistribute_cost(const MachineModel& model, const TensorRef& v,
                         const Distribution& from, const Distribution& to,
                         IndexSet fused, const IndexSpace& space) {
  if (from == to) return 0.0;
  const ProcGrid& grid = model.grid();
  // The block size being reshuffled is the producer-side local block; the
  // collective executes once per fused iteration, like a rotation.
  const std::uint64_t factor = msg_factor(v, from, fused, space, grid);
  const std::uint64_t block = dist_bytes(v, from, fused, space, grid);
  return static_cast<double>(factor) * model.redistribute_cost(block);
}

}  // namespace tce
