#pragma once
/// \file characterize.hpp
/// Generates a CharacterizationTable by running measurement kernels on a
/// simulated cluster — the stand-in for the paper's empirical Itanium
/// measurements.
///
/// For each grid dimension, the kernel performs a full Cannon rotation
/// (√P synchronized ring-shift steps in which *every* rank forwards its
/// block to its ring neighbor) for a ladder of block sizes, and records
/// the simulated wall time.  The redistribution kernel scatters each
/// rank's block across its grid row.  Measurements therefore include all
/// NIC/memory contention effects the simulated machine models, exactly as
/// real measurements would include the real machine's.

#include <vector>

#include "tce/costmodel/characterization.hpp"
#include "tce/simnet/network.hpp"

namespace tce {

/// Options for the measurement sweep.
struct CharacterizeOptions {
  /// Block sizes (bytes per processor) to sample.  Empty selects a
  /// default log-spaced ladder from 1 KB to 512 MB.
  std::vector<std::uint64_t> sizes;
};

/// Measures \p net (whose spec must match \p grid in processor count) and
/// returns the filled table.
CharacterizationTable characterize(const Network& net, const ProcGrid& grid,
                                   const CharacterizeOptions& options = {});

/// Convenience: simulated-Itanium characterization for a given processor
/// count (paper settings: 64 or 16, 2 procs/node).
CharacterizationTable characterize_itanium(std::uint32_t procs);

}  // namespace tce
