#pragma once
/// \file analytic.hpp
/// Closed-form α–β machine model.
///
/// One rotation step costs latency + bytes / bw; a full rotation is √P
/// such steps.  Useful as a fast oracle in tests and as a sanity baseline
/// for the characterized model (on a contention-symmetric machine the two
/// agree closely).

#include "tce/costmodel/machine_model.hpp"

namespace tce {

/// α–β cost model parameters.
struct AnalyticParams {
  double step_latency_s = 0.060;  ///< Per ring-shift step start-up.
  double proc_bw = 13.5e6;        ///< Effective per-processor bytes/s.
  double flops_per_proc = 615e6;  ///< FLOP/s per processor.
  /// Redistribution moves each block once across the machine; modeled as
  /// bytes / proc_bw plus √P start-ups (pairwise exchanges in a row).
  double redist_bw_factor = 1.0;
};

/// MachineModel with closed-form costs (grid-dimension symmetric).
class AnalyticModel final : public MachineModel {
 public:
  AnalyticModel(ProcGrid grid, AnalyticParams params)
      : grid_(grid), p_(params) {
    TCE_EXPECTS(p_.proc_bw > 0);
    TCE_EXPECTS(p_.flops_per_proc > 0);
    TCE_EXPECTS(p_.step_latency_s >= 0);
  }

  double rotate_cost(std::uint64_t local_bytes,
                     int rot_dim) const override {
    TCE_EXPECTS(rot_dim == 1 || rot_dim == 2);
    const double per_step =
        p_.step_latency_s + static_cast<double>(local_bytes) / p_.proc_bw;
    return static_cast<double>(grid_.edge) * per_step;
  }

  double redistribute_cost(std::uint64_t local_bytes) const override {
    return static_cast<double>(grid_.edge) * p_.step_latency_s +
           p_.redist_bw_factor * static_cast<double>(local_bytes) /
               p_.proc_bw;
  }

  double allgather_cost(std::uint64_t total_bytes) const override {
    // Recursive doubling: ceil(log2 P) start-ups; every rank receives
    // total·(P−1)/P bytes.
    const double p = static_cast<double>(grid_.procs);
    double steps = 0;
    for (std::uint32_t n = 1; n < grid_.procs; n *= 2) steps += 1;
    return steps * p_.step_latency_s +
           static_cast<double>(total_bytes) * (p - 1) / p / p_.proc_bw;
  }

  double reduce_scatter_cost(std::uint64_t partial_bytes,
                             int dim) const override {
    TCE_EXPECTS(dim == 1 || dim == 2);
    // Butterfly over the √P ranks of one line: halving exchanges, each
    // rank moving partial·(1−1/√P) bytes in total.
    const double e = static_cast<double>(grid_.edge);
    double steps = 0;
    for (std::uint32_t n = 1; n < grid_.edge; n *= 2) steps += 1;
    return steps * p_.step_latency_s +
           static_cast<double>(partial_bytes) * (e - 1) / e / p_.proc_bw;
  }

  double compute_time(std::uint64_t flops) const override {
    return static_cast<double>(flops) / p_.flops_per_proc;
  }

  const ProcGrid& grid() const override { return grid_; }

 private:
  ProcGrid grid_;
  AnalyticParams p_;
};

}  // namespace tce
