#include "tce/costmodel/characterization.hpp"

#include <cmath>
#include <sstream>

#include "tce/common/error.hpp"
#include "tce/common/strings.hpp"

namespace tce {

namespace {
thread_local CurveCounters g_curve_counters;
}  // namespace

CurveCounters curve_counters() noexcept { return g_curve_counters; }

void CostCurve::add_sample(std::uint64_t bytes, double seconds) {
  TCE_EXPECTS(seconds > 0);
  TCE_EXPECTS_MSG(bytes_.empty() || bytes > bytes_.back(),
                  "samples must be added in strictly increasing size");
  bytes_.push_back(bytes);
  seconds_.push_back(seconds);
}

double CostCurve::eval(std::uint64_t bytes) const {
  TCE_EXPECTS_MSG(!bytes_.empty(), "empty cost curve");
  ++g_curve_counters.lookups;
  if (bytes_.size() > 1 && bytes != 0 &&
      (bytes < bytes_.front() || bytes > bytes_.back())) {
    ++g_curve_counters.extrapolations;
  }
  return eval_quiet(bytes);
}

double CostCurve::eval_quiet(std::uint64_t bytes) const {
  TCE_EXPECTS_MSG(!bytes_.empty(), "empty cost curve");
  if (bytes_.size() == 1) return seconds_[0];
  if (bytes == 0) return seconds_[0];

  const double x = std::log(static_cast<double>(bytes));
  auto lx = [&](std::size_t i) {
    return std::log(static_cast<double>(bytes_[i]));
  };
  auto ly = [&](std::size_t i) { return std::log(seconds_[i]); };

  // Pick the bracketing segment, clamping to the end segments for
  // extrapolation.
  std::size_t hi = 1;
  while (hi + 1 < bytes_.size() && bytes > bytes_[hi]) ++hi;
  const std::size_t lo = hi - 1;

  const double t = (x - lx(lo)) / (lx(hi) - lx(lo));
  return std::exp(ly(lo) + t * (ly(hi) - ly(lo)));
}

namespace {

void save_curve(std::ostream& os, const std::string& name,
                const CostCurve& curve) {
  os << name << " " << curve.size() << "\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    os << curve.sample_bytes()[i] << " " << curve.sample_seconds()[i]
       << "\n";
  }
}

CostCurve load_curve(std::istream& is, const std::string& want) {
  std::string name;
  std::size_t count = 0;
  if (!(is >> name >> count) || name != want) {
    throw Error("characterization file: expected section '" + want + "'");
  }
  CostCurve curve;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bytes = 0;
    double seconds = 0;
    if (!(is >> bytes >> seconds)) {
      throw Error("characterization file: truncated section '" + want +
                  "'");
    }
    curve.add_sample(bytes, seconds);
  }
  return curve;
}

}  // namespace

void CharacterizationTable::save(std::ostream& os) const {
  os << "tce-characterization 3\n";
  os << "grid " << grid.procs << " " << grid.procs_per_node << "\n";
  os << "flops_per_proc " << flops_per_proc << "\n";
  save_curve(os, "rotate_dim1", rotate_dim1);
  save_curve(os, "rotate_dim2", rotate_dim2);
  save_curve(os, "redistribute", redistribute);
  save_curve(os, "allgather", allgather);
  save_curve(os, "reduce_dim1", reduce_dim1);
  save_curve(os, "reduce_dim2", reduce_dim2);
  save_curve(os, "compute", compute);  // sample key is flops, not bytes
}

std::string CharacterizationTable::save_string() const {
  std::ostringstream os;
  os.precision(17);
  save(os);
  return os.str();
}

CharacterizationTable CharacterizationTable::load(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "tce-characterization" ||
      version < 1 || version > 3) {
    throw Error("not a tce characterization file (v1/v2/v3)");
  }

  CharacterizationTable t;
  std::string key;
  std::uint32_t procs = 0, per_node = 0;
  if (!(is >> key >> procs >> per_node) || key != "grid") {
    throw Error("characterization file: missing grid line");
  }
  t.grid = ProcGrid::make(procs, per_node);
  if (!(is >> key >> t.flops_per_proc) || key != "flops_per_proc" ||
      t.flops_per_proc <= 0) {
    throw Error("characterization file: missing flops_per_proc line");
  }
  t.rotate_dim1 = load_curve(is, "rotate_dim1");
  t.rotate_dim2 = load_curve(is, "rotate_dim2");
  t.redistribute = load_curve(is, "redistribute");
  if (version >= 2) {
    t.allgather = load_curve(is, "allgather");
    t.reduce_dim1 = load_curve(is, "reduce_dim1");
    t.reduce_dim2 = load_curve(is, "reduce_dim2");
  }
  if (version >= 3) {
    t.compute = load_curve(is, "compute");
  }
  return t;
}

CharacterizationTable CharacterizationTable::load_string(
    const std::string& text) {
  std::istringstream is(text);
  return load(is);
}

CharacterizedModel::CharacterizedModel(CharacterizationTable table)
    : table_(std::move(table)) {
  TCE_EXPECTS_MSG(!table_.rotate_dim1.empty() &&
                      !table_.rotate_dim2.empty() &&
                      !table_.redistribute.empty(),
                  "characterization table has empty sections");
  // The collective curves (v2) may be absent when loading a v1 file;
  // allgather_cost / reduce_scatter_cost then throw on use.
}

double CharacterizedModel::rotate_cost(std::uint64_t local_bytes,
                                       int rot_dim) const {
  TCE_EXPECTS(rot_dim == 1 || rot_dim == 2);
  return (rot_dim == 1 ? table_.rotate_dim1 : table_.rotate_dim2)
      .eval(local_bytes);
}

double CharacterizedModel::redistribute_cost(
    std::uint64_t local_bytes) const {
  return table_.redistribute.eval(local_bytes);
}

double CharacterizedModel::allgather_cost(std::uint64_t total_bytes) const {
  TCE_EXPECTS_MSG(!table_.allgather.empty(),
                  "characterization lacks the allgather curve (v1 file?)");
  return table_.allgather.eval(total_bytes);
}

double CharacterizedModel::reduce_scatter_cost(std::uint64_t partial_bytes,
                                               int dim) const {
  TCE_EXPECTS(dim == 1 || dim == 2);
  const CostCurve& curve =
      dim == 1 ? table_.reduce_dim1 : table_.reduce_dim2;
  TCE_EXPECTS_MSG(!curve.empty(),
                  "characterization lacks the reduce curve (v1 file?)");
  return curve.eval(partial_bytes);
}

double CharacterizedModel::compute_time(std::uint64_t flops) const {
  if (flops == 0) return 0.0;
  // v1/v2 characterizations lack the compute curve: flat peak rate.
  if (table_.compute.empty()) {
    return static_cast<double>(flops) / table_.flops_per_proc;
  }
  // Quiet eval: the extrapolation counters drive the *communication*
  // model's telemetry and tolerance decisions; see eval_quiet.
  return table_.compute.eval_quiet(flops);
}

}  // namespace tce
