#include "tce/costmodel/characterize.hpp"

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/tensor/kernel.hpp"

namespace tce {

namespace {

std::vector<std::uint64_t> default_sizes() {
  // Log-spaced ladder, 1 KB .. 512 MB, two points per octave.
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t base = 1024; base <= 512ull * 1024 * 1024; base *= 2) {
    sizes.push_back(base);
    const std::uint64_t mid = base + base / 2;
    if (mid < 512ull * 1024 * 1024) sizes.push_back(mid);
  }
  return sizes;
}

/// One full rotation along \p dim: edge synchronized steps, every rank
/// sending its whole block to its ring neighbor.
double measure_rotation(const Network& net, const ProcGrid& grid, int dim,
                        std::uint64_t block_bytes) {
  std::vector<Phase> phases;
  Phase step;
  for (std::uint32_t z1 = 0; z1 < grid.edge; ++z1) {
    for (std::uint32_t z2 = 0; z2 < grid.edge; ++z2) {
      const std::uint32_t src = grid.rank(z1, z2);
      const std::uint32_t dst =
          dim == 1 ? grid.rank((z1 + 1) % grid.edge, z2)
                   : grid.rank(z1, (z2 + 1) % grid.edge);
      step.flows.push_back({src, dst, block_bytes});
    }
  }
  phases.assign(grid.edge, step);
  return net.run_phases(phases).comm_s;
}

/// Row-scatter redistribution: each rank splits its block equally among
/// the other ranks of its grid row.
double measure_redistribute(const Network& net, const ProcGrid& grid,
                            std::uint64_t block_bytes) {
  Phase phase;
  const std::uint64_t piece =
      block_bytes / std::max<std::uint32_t>(grid.edge - 1, 1);
  for (std::uint32_t z1 = 0; z1 < grid.edge; ++z1) {
    for (std::uint32_t z2 = 0; z2 < grid.edge; ++z2) {
      for (std::uint32_t p = 0; p < grid.edge; ++p) {
        if (p == z2) continue;
        phase.flows.push_back({grid.rank(z1, z2), grid.rank(z1, p), piece});
      }
    }
  }
  return net.run_phase(phase).comm_s;
}

/// Allgather of an array of \p total_bytes block-distributed over all P
/// ranks: recursive doubling when P is a power of two (log2 P exchange
/// phases with doubling payloads), ring otherwise (P−1 shift phases).
double measure_allgather(const Network& net, const ProcGrid& grid,
                         std::uint64_t total_bytes) {
  const std::uint32_t p = grid.procs;
  const std::uint64_t block = std::max<std::uint64_t>(total_bytes / p, 1);
  std::vector<Phase> phases;
  if ((p & (p - 1)) == 0) {
    for (std::uint32_t dist = 1; dist < p; dist *= 2) {
      Phase phase;
      for (std::uint32_t r = 0; r < p; ++r) {
        phase.flows.push_back({r, r ^ dist, checked_mul(block, dist)});
      }
      phases.push_back(std::move(phase));
    }
  } else {
    Phase step;
    for (std::uint32_t r = 0; r < p; ++r) {
      step.flows.push_back({r, (r + 1) % p, block});
    }
    phases.assign(p - 1, step);
  }
  return net.run_phases(phases).comm_s;
}

/// Reduce-scatter within each grid line along \p dim: butterfly with
/// halving payloads over the √P ranks of a line (√P is a power of two
/// for the machines we simulate; a ring fallback covers the rest).
double measure_reduce_scatter(const Network& net, const ProcGrid& grid,
                              int dim, std::uint64_t partial_bytes) {
  const std::uint32_t e = grid.edge;
  std::vector<Phase> phases;
  auto rank_in_line = [&](std::uint32_t line, std::uint32_t pos) {
    return dim == 1 ? grid.rank(pos, line) : grid.rank(line, pos);
  };
  if ((e & (e - 1)) == 0 && e > 1) {
    std::uint64_t payload = partial_bytes / 2;
    for (std::uint32_t dist = e / 2; dist >= 1; dist /= 2) {
      Phase phase;
      for (std::uint32_t line = 0; line < e; ++line) {
        for (std::uint32_t pos = 0; pos < e; ++pos) {
          phase.flows.push_back({rank_in_line(line, pos),
                                 rank_in_line(line, pos ^ dist),
                                 std::max<std::uint64_t>(payload, 1)});
        }
      }
      phases.push_back(std::move(phase));
      payload /= 2;
    }
  } else if (e > 1) {
    Phase step;
    const std::uint64_t chunk =
        std::max<std::uint64_t>(partial_bytes / e, 1);
    for (std::uint32_t line = 0; line < e; ++line) {
      for (std::uint32_t pos = 0; pos < e; ++pos) {
        step.flows.push_back({rank_in_line(line, pos),
                              rank_in_line(line, (pos + 1) % e), chunk});
      }
    }
    phases.assign(e - 1, step);
  }
  if (phases.empty()) return 1e-9;  // single-rank line: no communication
  return net.run_phases(phases).comm_s;
}

/// Local-compute curve: seconds for a square n×n×n GEMM as a function
/// of flops, derated from the peak rate by the tiled kernel's
/// *structural* efficiency model (pack traffic + microtile padding —
/// deterministic, never wall-clock, so characterizations are
/// reproducible across hosts).  The ladder spans 2·8³ ≈ 1e3 up to
/// 2·16384³ ≈ 8.8e12 flops, which covers the per-processor work of the
/// paper-scale problems without extrapolating.
void fill_compute_curve(CostCurve& curve, double flops_per_proc) {
  for (std::uint64_t n = 8; n <= 16384; n *= 2) {
    const std::uint64_t flops = checked_mul(checked_mul(2 * n, n), n);
    const double eff = gemm_model_efficiency(n, n, n);
    curve.add_sample(flops,
                     static_cast<double>(flops) / (flops_per_proc * eff));
  }
}

}  // namespace

CharacterizationTable characterize(const Network& net, const ProcGrid& grid,
                                   const CharacterizeOptions& options) {
  if (net.spec().procs() != grid.procs) {
    throw Error("characterize: network and grid processor counts differ");
  }
  const std::vector<std::uint64_t> sizes =
      options.sizes.empty() ? default_sizes() : options.sizes;

  CharacterizationTable t;
  t.grid = grid;
  t.flops_per_proc = net.spec().flops_per_proc;
  for (std::uint64_t s : sizes) {
    t.rotate_dim1.add_sample(s, measure_rotation(net, grid, 1, s));
    t.rotate_dim2.add_sample(s, measure_rotation(net, grid, 2, s));
    t.redistribute.add_sample(s, measure_redistribute(net, grid, s));
    t.allgather.add_sample(s, measure_allgather(net, grid, s));
    t.reduce_dim1.add_sample(s, measure_reduce_scatter(net, grid, 1, s));
    t.reduce_dim2.add_sample(s, measure_reduce_scatter(net, grid, 2, s));
  }
  fill_compute_curve(t.compute, t.flops_per_proc);
  return t;
}

CharacterizationTable characterize_itanium(std::uint32_t procs) {
  const ProcGrid grid = ProcGrid::make(procs, 2);
  Network net(ClusterSpec::itanium2003(grid.nodes()));
  return characterize(net, grid);
}

}  // namespace tce
