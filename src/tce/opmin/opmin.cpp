#include "tce/opmin/opmin.hpp"

#include <algorithm>
#include <set>

#include "tce/common/error.hpp"

namespace tce {

namespace {

using Mask = std::uint32_t;

/// Extent product with saturation: flop counts of deliberately bad
/// orders (the naive baseline) can exceed 2^64.
std::uint64_t sat_extent_product(IndexSet s, const IndexSpace& space) {
  std::uint64_t p = 1;
  for (IndexId id : s) p = saturating_mul(p, space.extent(id));
  return p;
}

/// Shared context of one search.
struct Ctx {
  const OpMinInput& input;
  const IndexSpace& space;
  std::vector<IndexSet> fidx;  ///< Index set of each factor.
  IndexSet result_set;
  int n = 0;

  IndexSet union_of(Mask s) const {
    IndexSet u;
    for (int t = 0; t < n; ++t) {
      if (s & (Mask{1} << t)) u = u | fidx[static_cast<std::size_t>(t)];
    }
    return u;
  }

  /// Indices the subtree over \p s must still carry: needed by the final
  /// result or by a factor outside s.
  IndexSet keep(Mask s) const {
    const Mask full = (Mask{1} << n) - 1;
    return union_of(s) & (result_set | union_of(full & ~s));
  }
};

struct Entry {
  std::uint64_t flops = 0;
  std::uint64_t largest = 0;  ///< Largest intermediate in the subtree.
  Mask split = 0;             ///< Left half (0 for singletons).
};

bool better(const Entry& a, const Entry& b) {
  if (a.flops != b.flops) return a.flops < b.flops;
  return a.largest < b.largest;
}

/// Emits formulas for the optimal tree over \p s, returning the tensor
/// holding its value.
TensorRef emit(const Ctx& ctx, const std::vector<Entry>& dp, Mask s,
               std::vector<Formula>& out, int& counter,
               const std::string& prefix,
               const std::set<std::string>& taken) {
  auto fresh_name = [&] {
    std::string name;
    do {
      name = prefix + std::to_string(++counter);
    } while (taken.contains(name));
    return name;
  };
  auto ordered_dims = [&](const TensorRef& a, const TensorRef* b,
                          IndexSet want) {
    std::vector<IndexId> dims;
    IndexSet seen;
    auto push = [&](IndexId d) {
      if (want.contains(d) && !seen.contains(d)) {
        dims.push_back(d);
        seen.insert(d);
      }
    };
    for (IndexId d : a.dims) push(d);
    if (b != nullptr) {
      for (IndexId d : b->dims) push(d);
    }
    return dims;
  };

  const Mask full = (Mask{1} << ctx.n) - 1;
  if (__builtin_popcount(s) == 1) {
    const int t = __builtin_ctz(s);
    const TensorRef& f = ctx.input.factors[static_cast<std::size_t>(t)];
    const IndexSet k = ctx.keep(s);
    if (k == ctx.fidx[static_cast<std::size_t>(t)]) return f;
    // Pre-reduce indices private to this factor.
    TensorRef r;
    r.name = s == full ? ctx.input.result.name : fresh_name();
    r.dims = s == full ? ctx.input.result.dims : ordered_dims(f, nullptr, k);
    out.push_back(
        Formula::sum(r, f, ctx.fidx[static_cast<std::size_t>(t)] - k));
    return r;
  }

  const Entry& e = dp[s];
  const Mask s1 = e.split;
  const Mask s2 = s & ~s1;
  TensorRef left = emit(ctx, dp, s1, out, counter, prefix, taken);
  TensorRef right = emit(ctx, dp, s2, out, counter, prefix, taken);

  const IndexSet k = ctx.keep(s);
  const IndexSet summed = (ctx.keep(s1) | ctx.keep(s2)) - k;
  TensorRef r;
  if (s == full) {
    r = ctx.input.result;
  } else {
    r.name = fresh_name();
    r.dims = ordered_dims(left, &right, k);
  }
  if (summed.empty()) {
    out.push_back(Formula::mult(r, left, right));
  } else {
    out.push_back(Formula::contract(r, left, right, summed));
  }
  return r;
}

}  // namespace

OpMinResult minimize_operations(const OpMinInput& input,
                                const IndexSpace& space,
                                const std::string& temp_prefix) {
  const int n = static_cast<int>(input.factors.size());
  if (n < 1) throw Error("opmin: no factors");
  if (n > 20) throw Error("opmin: more than 20 factors is unsupported");

  Ctx ctx{input, space, {}, input.result.index_set(), n};
  IndexSet all;
  for (const TensorRef& f : input.factors) {
    const IndexSet s = f.index_set();
    if (s.count() != f.dims.size()) {
      throw Error("opmin: factor " + f.str(space) + " repeats an index");
    }
    ctx.fidx.push_back(s);
    all = all | s;
  }
  if (!input.sum_indices.subset_of(all)) {
    throw Error("opmin: summation over indices absent from all factors");
  }
  if (ctx.result_set != all - input.sum_indices) {
    throw Error("opmin: result indices must be the unsummed factor union");
  }

  const Mask full = (Mask{1} << n) - 1;
  OpMinResult out;
  out.naive_flops = saturating_mul(
      static_cast<std::uint64_t>(input.sum_indices.empty() ? n - 1 : n),
      sat_extent_product(all, space));

  if (n == 1) {
    if (input.sum_indices.empty()) {
      throw Error("opmin: single factor with no summation is a plain copy");
    }
    std::vector<Formula> fs;
    fs.push_back(
        Formula::sum(input.result, input.factors[0], input.sum_indices));
    out.flops = sat_extent_product(ctx.fidx[0], space);
    out.sequence = FormulaSequence(space, std::move(fs));
    out.sequence.validate();
    return out;
  }

  // Subset DP.
  std::vector<Entry> dp(static_cast<std::size_t>(full) + 1);
  for (int t = 0; t < n; ++t) {
    const Mask s = Mask{1} << t;
    Entry e;
    const IndexSet k = ctx.keep(s);
    if (k != ctx.fidx[static_cast<std::size_t>(t)]) {
      // Pre-reduction: one add per input element.
      e.flops = sat_extent_product(ctx.fidx[static_cast<std::size_t>(t)], space);
      e.largest = sat_extent_product(k, space);
    }
    dp[s] = e;
  }
  for (Mask s = 1; s <= full; ++s) {
    if (__builtin_popcount(s) < 2) continue;
    Entry best;
    bool have = false;
    // Enumerate splits where s1 contains the lowest set bit (canonical).
    const Mask low = s & (~s + 1);
    for (Mask s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
      if (!(s1 & low)) continue;
      if (s1 == s) continue;
      const Mask s2 = s & ~s1;
      const IndexSet loop = ctx.keep(s1) | ctx.keep(s2);
      const std::uint64_t contract_flops =
          saturating_mul(2, sat_extent_product(loop, space));
      Entry e;
      e.flops = saturating_add(saturating_add(dp[s1].flops, dp[s2].flops),
                               contract_flops);
      e.split = s1;
      const std::uint64_t here =
          s == full ? 0 : sat_extent_product(ctx.keep(s), space);
      e.largest = std::max({dp[s1].largest, dp[s2].largest, here});
      if (!have || better(e, best)) {
        best = e;
        have = true;
      }
    }
    TCE_ENSURES(have);
    dp[s] = best;
  }

  out.flops = dp[full].flops;
  out.largest_intermediate = dp[full].largest;

  std::set<std::string> taken;
  taken.insert(input.result.name);
  for (const TensorRef& f : input.factors) taken.insert(f.name);
  std::vector<Formula> formulas;
  int counter = 0;
  emit(ctx, dp, full, formulas, counter, temp_prefix, taken);
  out.sequence = FormulaSequence(space, std::move(formulas));
  out.sequence.validate();
  return out;
}

FormulaSequence binarize_program(const ParsedProgram& program,
                                 const std::string& temp_prefix,
                                 bool allow_forest) {
  std::vector<Formula> formulas;
  int stmt_no = 0;
  for (const ParsedStatement& stmt : program.statements) {
    ++stmt_no;
    if (stmt.factors.size() == 1 && stmt.sum_indices.empty()) {
      throw Error("statement producing " + stmt.result.name +
                  " is a plain copy; not a formula");
    }
    if (stmt.factors.size() == 1) {
      formulas.push_back(
          Formula::sum(stmt.result, stmt.factors[0], stmt.sum_indices));
      continue;
    }
    if (stmt.factors.size() == 2) {
      if (stmt.sum_indices.empty()) {
        formulas.push_back(
            Formula::mult(stmt.result, stmt.factors[0], stmt.factors[1]));
      } else {
        formulas.push_back(Formula::contract(
            stmt.result, stmt.factors[0], stmt.factors[1],
            stmt.sum_indices));
      }
      continue;
    }
    OpMinResult r = minimize_operations(
        OpMinInput::from_statement(stmt), program.space,
        temp_prefix + std::to_string(stmt_no) + "_");
    for (const Formula& f : r.sequence.formulas()) formulas.push_back(f);
  }
  FormulaSequence seq(program.space, std::move(formulas));
  seq.validate(allow_forest);
  return seq;
}

}  // namespace tce
