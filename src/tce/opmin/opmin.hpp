#pragma once
/// \file opmin.hpp
/// Operation minimization: choosing the cheapest binary contraction order
/// for a multi-term tensor product.
///
/// §2's motivating example: S_abij = Σ_cdefkl A·B·C·D costs 4N¹⁰ when
/// evaluated as one ten-deep loop nest, but only 6N⁶ when factored into
/// three two-tensor contractions with intermediates T1 and T2.  The
/// underlying problem (the paper's reference [13]) is NP-complete in
/// general; for the factor counts that arise in practice an exact
/// dynamic program over factor subsets is fast: each subset's optimal
/// cost is the best way to split it into two contracted halves, where an
/// index can be summed away as soon as no factor outside the subset and
/// no result dimension still needs it.

#include "tce/expr/formula.hpp"
#include "tce/expr/parser.hpp"

namespace tce {

/// A multi-term product to binarize.
struct OpMinInput {
  TensorRef result;
  IndexSet sum_indices;
  std::vector<TensorRef> factors;

  /// Adapts a parsed multi-factor statement.
  static OpMinInput from_statement(const ParsedStatement& stmt) {
    return {stmt.result, stmt.sum_indices, stmt.factors};
  }
};

/// Outcome of the search.
struct OpMinResult {
  /// Operation count of the optimal binary order.
  std::uint64_t flops = 0;
  /// Operation count of direct evaluation (one loop nest over all
  /// indices; (#factors−1) multiplies + 1 add per point — §2's 4N¹⁰).
  std::uint64_t naive_flops = 0;
  /// Largest intermediate array (elements) in the optimal order.
  std::uint64_t largest_intermediate = 0;
  /// The optimal order as a validated formula sequence (kContract /
  /// kMult / kSum formulas producing temporaries, final formula producing
  /// the requested result).
  FormulaSequence sequence;
};

/// Runs the exact subset DP.  \p temp_prefix names generated
/// intermediates (prefix1, prefix2, ...), avoiding collisions with
/// factor names.  Throws tce::Error on ill-formed input (summation
/// indices absent from factors, result indices not covered, more than 20
/// factors).
OpMinResult minimize_operations(const OpMinInput& input,
                                const IndexSpace& space,
                                const std::string& temp_prefix = "tmp");

/// Convenience: parse a whole program and binarize every multi-factor
/// statement (single- and two-factor statements pass through), returning
/// one validated FormulaSequence.  With \p allow_forest the program may
/// have several outputs.
FormulaSequence binarize_program(const ParsedProgram& program,
                                 const std::string& temp_prefix = "tmp",
                                 bool allow_forest = false);

}  // namespace tce
