#pragma once
/// \file matmul.hpp
/// The fast path for local block contractions.
///
/// A true contraction C(I,J) += A(I,K)·B(K,J) maps to a matrix product
/// after packing the I dimensions into rows and the K (resp. J)
/// dimensions into columns.  pack_matrix performs the permutation;
/// matmul_acc is a cache-blocked kernel; contract_blocks composes them
/// and accumulates into a labeled result tensor.  This is what each
/// simulated rank executes during a Cannon step.

#include "tce/tensor/dense.hpp"

namespace tce {

/// C (m×n, row-major) += A (m×k, row-major) · B (k×n, row-major).
/// Dispatches to the tiled packing GEMM or the reference cache-blocked
/// loops per the process-wide kernel config (tce/tensor/kernel.hpp).
void matmul_acc(std::span<const double> a, std::span<const double> b,
                std::span<double> c, std::size_t m, std::size_t k,
                std::size_t n);

/// Packs tensor \p t into a row-major (row_dims × col_dims) matrix.  The
/// two groups together must cover every dimension of \p t exactly once.
/// Returns the matrix in \p out (resized); row and column element counts
/// via the out-parameters.
void pack_matrix(const DenseTensor& t, const std::vector<IndexId>& row_dims,
                 const std::vector<IndexId>& col_dims,
                 std::vector<double>& out, std::uint64_t& rows,
                 std::uint64_t& cols);

/// Scatters a packed (row_dims × col_dims) matrix back into tensor \p t,
/// accumulating (+=).
void unpack_matrix_acc(std::span<const double> m,
                       const std::vector<IndexId>& row_dims,
                       const std::vector<IndexId>& col_dims,
                       DenseTensor& t);

/// c += contraction of blocks a and b over the labels in
/// \p sum_indices, via the TTGT lowering (tce/tensor/ttgt.hpp): pack →
/// batched GEMM → unpack.  The result tensor \p c must carry exactly
/// the non-summed labels of a and b; labels shared by all three become
/// batch dimensions, and a summed label present in only one operand is
/// pre-reduced before the product.
void contract_blocks_acc(const DenseTensor& a, const DenseTensor& b,
                         IndexSet sum_indices, DenseTensor& c);

}  // namespace tce
