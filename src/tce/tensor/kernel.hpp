#pragma once
/// \file kernel.hpp
/// Local GEMM kernels and the process-wide kernel-selection layer.
///
/// Two kernels implement C (m×n) += A (m×k) · B (k×n) over row-major
/// dense buffers:
///
///  * `gemm_ref`   — the historical cache-blocked i-k-j loop nest.  Its
///    blocking constants are the same TileConfig the tiled kernel uses
///    (satellite of the old hardcoded `kBlock = 64`).
///  * `gemm_tiled` — a BLIS-style packing GEMM: A is packed into
///    MC×KC panels of MR-row micro-panels, B into KC×NC panels of
///    NR-column micro-panels, and an 8×6 register-blocked FMA
///    microkernel (AVX2+FMA when the CPU has it, a portable unrolled
///    fallback otherwise) walks the panels.  The MC loop runs on the
///    shared thread pool; every thread writes a disjoint row-block of C
///    and the KC accumulation order is fixed, so results are bitwise
///    identical at every thread count.
///
/// Which kernel runs is decided at *execution* time by the process-wide
/// KernelConfig (`TCE_KERNEL` / `--kernel`, auto by default with a size
/// cutoff).  Planning never consults it: plans are byte-identical under
/// every kernel setting — only execution timings and floating-point
/// rounding differ (docs/KERNELS.md).

#include <cstdint>
#include <span>
#include <string>

#include "tce/common/error.hpp"

namespace tce {

/// Thrown on malformed TCE_KERNEL / TCE_TILE_* / --kernel settings; the
/// CLI maps it to the usage exit code (1) like its own UsageError.
class KernelUsageError : public Error {
 public:
  explicit KernelUsageError(const std::string& what) : Error(what) {}
};

/// Kernel selection: kAuto picks per block by size cutoff.
enum class KernelKind { kAuto, kReference, kTiled };

/// Register microkernel footprint: an MR×NR tile of C held in
/// accumulators (8×6 doubles = 12 AVX2 registers, leaving 4 for A/B).
inline constexpr std::size_t kMicroM = 8;
inline constexpr std::size_t kMicroN = 6;

/// Cache-blocking parameters shared by both kernels.  Defaults target a
/// ~32 KB L1 / ~1 MB L2 / shared L3 machine: an MC×KC packed A panel is
/// MC·KC·8 = 256 KB (L2-resident), a KC×NC packed B panel 6 MB
/// (L3-resident), and each microkernel step streams KC·(MR+NR)·8 =
/// 28 KB through L1.  Overridable via TCE_TILE_MC/KC/NC.
struct TileConfig {
  std::size_t mc = 128;
  std::size_t kc = 256;
  std::size_t nc = 3072;
};

/// Auto-dispatch cutoff: blocks with fewer than this many multiply
/// sites (m·n·k) stay on the reference kernel — pack/unpack overhead
/// dominates tiny blocks.  32³ elements ≈ 64 KB of operands.
inline constexpr std::uint64_t kAutoCutoffElems = 32768;

/// The process-wide kernel configuration (see kernel_config()).
struct KernelConfig {
  KernelKind kind = KernelKind::kAuto;
  TileConfig tiles;
  /// Worker threads for the tiled GEMM's MC loop; 0 = hardware
  /// concurrency.  The result is bitwise identical at every setting.
  unsigned threads = 0;
};

/// "auto" | "ref" | "tiled".
const char* kernel_kind_name(KernelKind kind) noexcept;

/// Parses a kernel name ("auto", "ref"/"reference", "tiled"); throws
/// KernelUsageError on anything else.
KernelKind parse_kernel_kind(const std::string& name);

/// The current process-wide configuration.  First use parses the
/// environment: TCE_KERNEL (kernel name), TCE_TILE_MC/KC/NC (positive
/// integers in [8, 2^20]) and TCE_KERNEL_THREADS — throwing
/// KernelUsageError on malformed or out-of-range values.
const KernelConfig& kernel_config();

/// Replaces the process-wide configuration (CLI --kernel, tests).
void set_kernel_config(const KernelConfig& cfg);

/// Discards any cached/overridden configuration and re-reads the
/// environment on next use (tests that mutate TCE_* variables).
void reset_kernel_config_from_env();

/// RAII kernel-config override; restores the previous config on exit.
class ScopedKernelConfig {
 public:
  explicit ScopedKernelConfig(const KernelConfig& cfg)
      : saved_(kernel_config()) {
    set_kernel_config(cfg);
  }
  explicit ScopedKernelConfig(KernelKind kind) : saved_(kernel_config()) {
    KernelConfig cfg = saved_;
    cfg.kind = kind;
    set_kernel_config(cfg);
  }
  ~ScopedKernelConfig() { set_kernel_config(saved_); }
  ScopedKernelConfig(const ScopedKernelConfig&) = delete;
  ScopedKernelConfig& operator=(const ScopedKernelConfig&) = delete;

 private:
  KernelConfig saved_;
};

/// Resolves kAuto for a block with \p mnk = m·n·k multiply sites; never
/// returns kAuto.
KernelKind select_kernel(KernelKind kind, std::uint64_t mnk) noexcept;

/// Reference kernel: cache-blocked i-k-j loops with TileConfig blocks.
void gemm_ref(std::span<const double> a, std::span<const double> b,
              std::span<double> c, std::size_t m, std::size_t k,
              std::size_t n, const TileConfig& tiles);

/// Tiled kernel: packing GEMM with the MR×NR microkernel; MC row-blocks
/// run on the shared thread pool (\p threads, 0 = hardware).  Bitwise
/// deterministic across thread counts.
void gemm_tiled(std::span<const double> a, std::span<const double> b,
                std::span<double> c, std::size_t m, std::size_t k,
                std::size_t n, const TileConfig& tiles,
                unsigned threads = 0);

/// The SIMD variant the microkernel dispatch picked at startup
/// ("avx2" or "generic") — for bench/diagnostic output.
const char* gemm_microkernel_isa() noexcept;

/// Deterministic structural efficiency model of gemm_tiled at the
/// *default* TileConfig, in (0, 1]: useful flops divided by useful
/// flops plus modeled overhead (partial-tile padding, A/B pack and C
/// update traffic, per-call setup).  This is what the characterization
/// compute curve is generated from — a structural model, not a
/// wall-clock measurement, so plans stay reproducible across machines
/// (docs/KERNELS.md).
double gemm_model_efficiency(std::uint64_t m, std::uint64_t n,
                             std::uint64_t k) noexcept;

}  // namespace tce
