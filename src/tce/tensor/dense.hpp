#pragma once
/// \file dense.hpp
/// Dense in-memory tensors with symbolic dimension labels.
///
/// DenseTensor is the numeric counterpart of the symbolic TensorRef: a
/// row-major array whose dimensions are labeled with IndexIds.  Labels
/// let the einsum evaluator and the distributed-block machinery match
/// dimensions structurally instead of positionally.  Extents are carried
/// per tensor (not taken from the IndexSpace) because distributed *blocks*
/// are themselves DenseTensors with reduced extents.

#include <cstdint>
#include <span>
#include <vector>

#include "tce/common/rng.hpp"
#include "tce/expr/index.hpp"

namespace tce {

/// A labeled dense row-major tensor of doubles.
class DenseTensor {
 public:
  /// Rank-0 scalar (one element, value 0).
  DenseTensor() : data_(1, 0.0) {}

  /// Zero-initialized tensor; \p dims and \p extents run parallel.
  DenseTensor(std::vector<IndexId> dims, std::vector<std::uint64_t> extents);

  std::size_t rank() const noexcept { return dims_.size(); }
  const std::vector<IndexId>& dims() const noexcept { return dims_; }
  const std::vector<std::uint64_t>& extents() const noexcept {
    return extents_;
  }

  /// Extent of the dimension labeled \p id; throws if absent.
  std::uint64_t extent_of(IndexId id) const;
  /// Position of the dimension labeled \p id; throws if absent.
  std::size_t pos_of(IndexId id) const;
  /// True when a dimension labeled \p id exists.
  bool has_dim(IndexId id) const;

  /// Total element count.
  std::uint64_t size() const noexcept { return data_.size(); }

  /// Element access by multi-index (one entry per dimension, in dims()
  /// order).
  double& at(std::span<const std::uint64_t> idx);
  double at(std::span<const std::uint64_t> idx) const;

  /// Flat storage.
  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  /// Row-major stride of dimension \p pos.
  std::uint64_t stride(std::size_t pos) const {
    TCE_EXPECTS(pos < strides_.size());
    return strides_[pos];
  }

  /// Fills with uniform [-1, 1) values.
  void fill_random(Rng& rng);
  /// Sets every element to \p v.
  void fill(double v);

  /// Max |a-b| over elements; requires identical dims and extents.
  double max_abs_diff(const DenseTensor& other) const;

 private:
  std::vector<IndexId> dims_;
  std::vector<std::uint64_t> extents_;
  std::vector<std::uint64_t> strides_;
  std::vector<double> data_;
};

/// Odometer over a multi-dimensional index space.  advance() steps the
/// last dimension fastest and returns false after the final position.
class MultiIndex {
 public:
  explicit MultiIndex(std::span<const std::uint64_t> extents)
      : extents_(extents.begin(), extents.end()),
        idx_(extents.size(), 0) {}

  std::span<const std::uint64_t> values() const noexcept { return idx_; }
  std::uint64_t operator[](std::size_t i) const { return idx_[i]; }

  /// Total positions (product of extents; 1 for rank 0).
  std::uint64_t count() const {
    std::uint64_t c = 1;
    for (std::uint64_t e : extents_) c = checked_mul(c, e);
    return c;
  }

  bool advance() {
    for (std::size_t i = idx_.size(); i-- > 0;) {
      if (++idx_[i] < extents_[i]) return true;
      idx_[i] = 0;
    }
    return false;
  }

 private:
  std::vector<std::uint64_t> extents_;
  std::vector<std::uint64_t> idx_;
};

}  // namespace tce
