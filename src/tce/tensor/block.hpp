#pragma once
/// \file block.hpp
/// Distributed block geometry: which slice of a full array lives on grid
/// position (z1, z2) under a distribution ⟨i,j⟩, and copying between full
/// arrays and per-rank blocks.
///
/// §3.1: a processor P_{z1,z2} owns
/// v(myrange(z1, N_{α[1]}, √P), ..., myrange(z2, N_{α[2]}, √P), ...)
/// with myrange(z, N, p) = [(z−1)·N/p, z·N/p) (0-based here).  Dimensions
/// absent from α are owned whole (replicated across that grid dimension).

#include "tce/dist/distribution.hpp"
#include "tce/tensor/dense.hpp"

namespace tce {

/// Half-open per-dimension ranges of one block, parallel to the tensor's
/// dims order.
struct BlockRange {
  std::vector<std::uint64_t> lo;
  std::vector<std::uint64_t> hi;

  std::size_t rank() const { return lo.size(); }
  std::uint64_t extent(std::size_t d) const { return hi[d] - lo[d]; }
  std::uint64_t size() const {
    std::uint64_t s = 1;
    for (std::size_t d = 0; d < lo.size(); ++d) {
      s = checked_mul(s, extent(d));
    }
    return s;
  }
};

/// The block of \p v owned by grid position (z1, z2) under \p alpha.
/// Distributed extents must divide the grid edge evenly (the paper's
/// setting); throws otherwise.
BlockRange block_range(const TensorRef& v, const Distribution& alpha,
                       const IndexSpace& space, const ProcGrid& grid,
                       std::uint32_t z1, std::uint32_t z2);

/// Copies the slice \p r out of \p full into a fresh block tensor with
/// the same dimension labels.
DenseTensor extract_block(const DenseTensor& full, const BlockRange& r);

/// Writes \p block (shaped like \p r) into \p full at \p r.
void place_block(const DenseTensor& block, const BlockRange& r,
                 DenseTensor& full);

/// Accumulates (+=) \p block into \p full at \p r — used when assembling
/// results replicated across a grid dimension.
void accumulate_block(const DenseTensor& block, const BlockRange& r,
                      DenseTensor& full);

}  // namespace tce
