#pragma once
/// \file einsum.hpp
/// Reference tensor algebra: straightforward loop-nest evaluation of
/// contractions, reductions, and whole ContractionTrees.  This is the
/// ground truth the distributed Cannon executor is validated against —
/// clarity over speed (use the matmul fast path in tce/tensor/matmul.hpp
/// for performance-sensitive block products).

#include <map>
#include <string>

#include "tce/expr/contraction.hpp"
#include "tce/tensor/dense.hpp"

namespace tce {

/// C[result_dims] = Σ_{sum} A · B, matching dimensions by label.  Labels
/// shared by A and B must have equal extents; every result label must
/// appear in A or B; summed labels must not appear in the result.
DenseTensor einsum_pair(const DenseTensor& a, const DenseTensor& b,
                        const std::vector<IndexId>& result_dims,
                        IndexSet sum_indices);

/// C[result_dims] = Σ over A's labels absent from result_dims.
DenseTensor einsum_reduce(const DenseTensor& a,
                          const std::vector<IndexId>& result_dims);

/// Evaluates a whole ContractionTree with concrete inputs keyed by input
/// tensor name; extents are taken from the tree's IndexSpace and each
/// input must match its declared shape.  Returns the root's value.
DenseTensor evaluate_tree(const ContractionTree& tree,
                          const std::map<std::string, DenseTensor>& inputs);

/// Builds a full-extent DenseTensor for a symbolic tensor reference.
DenseTensor make_tensor(const TensorRef& ref, const IndexSpace& space);

/// Builds and randomly fills inputs for every leaf of \p tree.
std::map<std::string, DenseTensor> make_random_inputs(
    const ContractionTree& tree, Rng& rng);

}  // namespace tce
