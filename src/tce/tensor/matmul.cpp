#include "tce/tensor/matmul.hpp"

#include <algorithm>

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/tensor/kernel.hpp"
#include "tce/tensor/ttgt.hpp"

namespace tce {

void matmul_acc(std::span<const double> a, std::span<const double> b,
                std::span<double> c, std::size_t m, std::size_t k,
                std::size_t n) {
  TCE_EXPECTS(a.size() == m * k);
  TCE_EXPECTS(b.size() == k * n);
  TCE_EXPECTS(c.size() == m * n);

  const KernelConfig& cfg = kernel_config();
  const std::uint64_t mnk =
      checked_mul(checked_mul(static_cast<std::uint64_t>(m), k), n);
  if (select_kernel(cfg.kind, mnk) == KernelKind::kTiled) {
    gemm_tiled(a, b, c, m, k, n, cfg.tiles, cfg.threads);
  } else {
    gemm_ref(a, b, c, m, k, n, cfg.tiles);
  }
}

namespace {

/// Strides of \p t for the loop order row_dims ++ col_dims, plus the
/// extent product of each group.
struct PackPlan {
  std::vector<std::uint64_t> extents;  // loop extents, rows then cols
  std::vector<std::uint64_t> strides;  // matching tensor strides
  std::uint64_t rows = 1;
  std::uint64_t cols = 1;
};

PackPlan make_plan(const DenseTensor& t, const std::vector<IndexId>& rows,
                   const std::vector<IndexId>& cols) {
  if (rows.size() + cols.size() != t.rank()) {
    throw Error("pack_matrix: dimension groups must cover the tensor");
  }
  PackPlan p;
  for (IndexId id : rows) {
    p.extents.push_back(t.extent_of(id));
    p.strides.push_back(t.stride(t.pos_of(id)));
    p.rows = checked_mul(p.rows, p.extents.back());
  }
  for (IndexId id : cols) {
    p.extents.push_back(t.extent_of(id));
    p.strides.push_back(t.stride(t.pos_of(id)));
    p.cols = checked_mul(p.cols, p.extents.back());
  }
  return p;
}

}  // namespace

void pack_matrix(const DenseTensor& t, const std::vector<IndexId>& row_dims,
                 const std::vector<IndexId>& col_dims,
                 std::vector<double>& out, std::uint64_t& rows,
                 std::uint64_t& cols) {
  const PackPlan p = make_plan(t, row_dims, col_dims);
  rows = p.rows;
  cols = p.cols;
  out.resize(p.rows * p.cols);

  std::span<const double> src = t.data();
  MultiIndex mi(p.extents);
  std::uint64_t flat = 0;
  do {
    std::uint64_t off = 0;
    const auto idx = mi.values();
    for (std::size_t i = 0; i < idx.size(); ++i) {
      off += idx[i] * p.strides[i];
    }
    out[flat++] = src[off];
  } while (mi.advance());
}

void unpack_matrix_acc(std::span<const double> m,
                       const std::vector<IndexId>& row_dims,
                       const std::vector<IndexId>& col_dims,
                       DenseTensor& t) {
  const PackPlan p = make_plan(t, row_dims, col_dims);
  TCE_EXPECTS(m.size() == p.rows * p.cols);

  std::span<double> dst = t.data();
  MultiIndex mi(p.extents);
  std::uint64_t flat = 0;
  do {
    std::uint64_t off = 0;
    const auto idx = mi.values();
    for (std::size_t i = 0; i < idx.size(); ++i) {
      off += idx[i] * p.strides[i];
    }
    dst[off] += m[flat++];
  } while (mi.advance());
}

void contract_blocks_acc(const DenseTensor& a, const DenseTensor& b,
                         IndexSet sum_indices, DenseTensor& c) {
  // The TTGT lowering classifies labels into (batch, M, N, K) from the
  // result's dims, pre-reduces one-operand summed labels, and runs the
  // per-batch GEMMs through the dispatching matmul_acc above — the
  // executor's local multiplies pick up the kernel-selection layer here.
  ttgt_contract_acc(a, b, sum_indices, c);
}

}  // namespace tce
