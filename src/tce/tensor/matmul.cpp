#include "tce/tensor/matmul.hpp"

#include <algorithm>

#include "tce/common/error.hpp"

namespace tce {

void matmul_acc(std::span<const double> a, std::span<const double> b,
                std::span<double> c, std::size_t m, std::size_t k,
                std::size_t n) {
  TCE_EXPECTS(a.size() == m * k);
  TCE_EXPECTS(b.size() == k * n);
  TCE_EXPECTS(c.size() == m * n);

  constexpr std::size_t kBlock = 64;
  for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::size_t i1 = std::min(i0 + kBlock, m);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlock) {
      const std::size_t k1 = std::min(k0 + kBlock, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
        const std::size_t j1 = std::min(j0 + kBlock, n);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const double av = a[i * k + kk];
            const double* brow = &b[kk * n];
            double* crow = &c[i * n];
            for (std::size_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

namespace {

/// Strides of \p t for the loop order row_dims ++ col_dims, plus the
/// extent product of each group.
struct PackPlan {
  std::vector<std::uint64_t> extents;  // loop extents, rows then cols
  std::vector<std::uint64_t> strides;  // matching tensor strides
  std::uint64_t rows = 1;
  std::uint64_t cols = 1;
};

PackPlan make_plan(const DenseTensor& t, const std::vector<IndexId>& rows,
                   const std::vector<IndexId>& cols) {
  if (rows.size() + cols.size() != t.rank()) {
    throw Error("pack_matrix: dimension groups must cover the tensor");
  }
  PackPlan p;
  for (IndexId id : rows) {
    p.extents.push_back(t.extent_of(id));
    p.strides.push_back(t.stride(t.pos_of(id)));
    p.rows = checked_mul(p.rows, p.extents.back());
  }
  for (IndexId id : cols) {
    p.extents.push_back(t.extent_of(id));
    p.strides.push_back(t.stride(t.pos_of(id)));
    p.cols = checked_mul(p.cols, p.extents.back());
  }
  return p;
}

}  // namespace

void pack_matrix(const DenseTensor& t, const std::vector<IndexId>& row_dims,
                 const std::vector<IndexId>& col_dims,
                 std::vector<double>& out, std::uint64_t& rows,
                 std::uint64_t& cols) {
  const PackPlan p = make_plan(t, row_dims, col_dims);
  rows = p.rows;
  cols = p.cols;
  out.resize(p.rows * p.cols);

  std::span<const double> src = t.data();
  MultiIndex mi(p.extents);
  std::uint64_t flat = 0;
  do {
    std::uint64_t off = 0;
    const auto idx = mi.values();
    for (std::size_t i = 0; i < idx.size(); ++i) {
      off += idx[i] * p.strides[i];
    }
    out[flat++] = src[off];
  } while (mi.advance());
}

void unpack_matrix_acc(std::span<const double> m,
                       const std::vector<IndexId>& row_dims,
                       const std::vector<IndexId>& col_dims,
                       DenseTensor& t) {
  const PackPlan p = make_plan(t, row_dims, col_dims);
  TCE_EXPECTS(m.size() == p.rows * p.cols);

  std::span<double> dst = t.data();
  MultiIndex mi(p.extents);
  std::uint64_t flat = 0;
  do {
    std::uint64_t off = 0;
    const auto idx = mi.values();
    for (std::size_t i = 0; i < idx.size(); ++i) {
      off += idx[i] * p.strides[i];
    }
    dst[off] += m[flat++];
  } while (mi.advance());
}

void contract_blocks_acc(const DenseTensor& a, const DenseTensor& b,
                         IndexSet sum_indices, DenseTensor& c) {
  // Split labels: I = a-only, J = b-only, K = summed (must be in both).
  std::vector<IndexId> idims, jdims, kdims;
  for (IndexId d : a.dims()) {
    if (sum_indices.contains(d)) {
      if (!b.has_dim(d)) {
        throw Error("contract_blocks: summed label missing from b");
      }
      kdims.push_back(d);
    } else {
      idims.push_back(d);
      if (b.has_dim(d)) {
        throw Error(
            "contract_blocks: batch labels are not supported by the "
            "matmul fast path");
      }
    }
  }
  for (IndexId d : b.dims()) {
    if (!sum_indices.contains(d)) jdims.push_back(d);
  }
  for (IndexId d : kdims) {
    if (a.extent_of(d) != b.extent_of(d)) {
      throw Error("contract_blocks: operands disagree on a summed extent");
    }
  }

  std::vector<double> am, bm;
  std::uint64_t m = 0, k = 0, k2 = 0, n = 0;
  pack_matrix(a, idims, kdims, am, m, k);
  pack_matrix(b, kdims, jdims, bm, k2, n);
  TCE_ENSURES(k == k2);

  std::vector<double> cm(m * n, 0.0);
  matmul_acc(am, bm, cm, m, k, n);
  unpack_matrix_acc(cm, idims, jdims, c);
}

}  // namespace tce
