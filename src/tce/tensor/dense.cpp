#include "tce/tensor/dense.hpp"

#include "tce/common/error.hpp"

namespace tce {

DenseTensor::DenseTensor(std::vector<IndexId> dims,
                         std::vector<std::uint64_t> extents)
    : dims_(std::move(dims)), extents_(std::move(extents)) {
  TCE_EXPECTS(dims_.size() == extents_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    TCE_EXPECTS(extents_[i] > 0);
    for (std::size_t j = i + 1; j < dims_.size(); ++j) {
      TCE_EXPECTS_MSG(dims_[i] != dims_[j],
                      "tensor repeats a dimension label");
    }
  }
  strides_.assign(dims_.size(), 1);
  std::uint64_t total = 1;
  for (std::size_t i = dims_.size(); i-- > 0;) {
    strides_[i] = total;
    total = checked_mul(total, extents_[i]);
  }
  data_.assign(total, 0.0);
}

std::uint64_t DenseTensor::extent_of(IndexId id) const {
  return extents_[pos_of(id)];
}

std::size_t DenseTensor::pos_of(IndexId id) const {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i] == id) return i;
  }
  throw Error("tensor has no dimension with the requested label");
}

bool DenseTensor::has_dim(IndexId id) const {
  for (IndexId d : dims_) {
    if (d == id) return true;
  }
  return false;
}

double& DenseTensor::at(std::span<const std::uint64_t> idx) {
  TCE_EXPECTS(idx.size() == dims_.size());
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    TCE_EXPECTS(idx[i] < extents_[i]);
    off += idx[i] * strides_[i];
  }
  return data_[off];
}

double DenseTensor::at(std::span<const std::uint64_t> idx) const {
  return const_cast<DenseTensor*>(this)->at(idx);
}

void DenseTensor::fill_random(Rng& rng) {
  for (double& v : data_) v = rng.uniform_real(-1.0, 1.0);
}

void DenseTensor::fill(double v) {
  for (double& x : data_) x = v;
}

double DenseTensor::max_abs_diff(const DenseTensor& other) const {
  TCE_EXPECTS_MSG(dims_ == other.dims_ && extents_ == other.extents_,
                  "max_abs_diff requires identical shapes");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

}  // namespace tce
