#include "tce/tensor/block.hpp"

#include "tce/common/error.hpp"

namespace tce {

BlockRange block_range(const TensorRef& v, const Distribution& alpha,
                       const IndexSpace& space, const ProcGrid& grid,
                       std::uint32_t z1, std::uint32_t z2) {
  TCE_EXPECTS(z1 < grid.edge && z2 < grid.edge);
  TCE_EXPECTS(distribution_valid_for(alpha, v));

  BlockRange r;
  r.lo.reserve(v.dims.size());
  r.hi.reserve(v.dims.size());
  for (IndexId d : v.dims) {
    const std::uint64_t n = space.extent(d);
    const int dim = alpha.dim_of(d);
    if (dim == 0) {
      r.lo.push_back(0);
      r.hi.push_back(n);
    } else {
      if (n % grid.edge != 0) {
        throw Error("block_range: extent " + std::to_string(n) +
                    " of index '" + space.name(d) +
                    "' does not divide the grid edge " +
                    std::to_string(grid.edge));
      }
      const std::uint64_t chunk = n / grid.edge;
      const std::uint64_t z = (dim == 1) ? z1 : z2;
      r.lo.push_back(z * chunk);
      r.hi.push_back((z + 1) * chunk);
    }
  }
  return r;
}

namespace {

/// Runs fn(block_idx, full_idx_offsets) over all positions of \p r.
template <typename Fn>
void for_each_position(const DenseTensor& full, const BlockRange& r,
                       Fn&& fn) {
  TCE_EXPECTS(full.rank() == r.rank());
  std::vector<std::uint64_t> extents;
  extents.reserve(r.rank());
  for (std::size_t d = 0; d < r.rank(); ++d) {
    TCE_EXPECTS(r.hi[d] <= full.extents()[d]);
    extents.push_back(r.extent(d));
  }
  MultiIndex mi(extents);
  std::vector<std::uint64_t> full_idx(r.rank());
  std::uint64_t flat = 0;
  do {
    const auto idx = mi.values();
    for (std::size_t d = 0; d < r.rank(); ++d) {
      full_idx[d] = r.lo[d] + idx[d];
    }
    fn(flat++, full_idx);
  } while (mi.advance());
}

}  // namespace

DenseTensor extract_block(const DenseTensor& full, const BlockRange& r) {
  std::vector<std::uint64_t> extents;
  for (std::size_t d = 0; d < r.rank(); ++d) extents.push_back(r.extent(d));
  DenseTensor block(full.dims(), std::move(extents));
  std::span<double> out = block.data();
  for_each_position(full, r,
                    [&](std::uint64_t flat,
                        const std::vector<std::uint64_t>& idx) {
                      out[flat] = full.at(idx);
                    });
  return block;
}

void place_block(const DenseTensor& block, const BlockRange& r,
                 DenseTensor& full) {
  std::span<const double> in = block.data();
  TCE_EXPECTS(block.size() == r.size());
  for_each_position(full, r,
                    [&](std::uint64_t flat,
                        const std::vector<std::uint64_t>& idx) {
                      full.at(idx) = in[flat];
                    });
}

void accumulate_block(const DenseTensor& block, const BlockRange& r,
                      DenseTensor& full) {
  std::span<const double> in = block.data();
  TCE_EXPECTS(block.size() == r.size());
  for_each_position(full, r,
                    [&](std::uint64_t flat,
                        const std::vector<std::uint64_t>& idx) {
                      full.at(idx) += in[flat];
                    });
}

}  // namespace tce
