#include "tce/tensor/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <vector>

#include "tce/common/annotations.hpp"
#include "tce/common/checked.hpp"
#include "tce/common/parse.hpp"
#include "tce/common/thread_pool.hpp"
#include "tce/common/timer.hpp"
#include "tce/obs/metrics.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TCE_KERNEL_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace tce {

namespace {

constexpr std::size_t kTileMin = 8;
constexpr std::size_t kTileMax = std::size_t{1} << 20;

std::size_t round_up(std::size_t v, std::size_t unit) {
  return (v + unit - 1) / unit * unit;
}

/// Parses one TCE_TILE_* variable; absent keeps the default.
std::size_t env_tile(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const auto v = parse_u64_in(raw, kTileMin, kTileMax);
  if (!v.has_value()) {
    throw KernelUsageError(std::string(name) + "='" + raw +
                           "' must be an integer in [" +
                           std::to_string(kTileMin) + ", " +
                           std::to_string(kTileMax) + "]");
  }
  return static_cast<std::size_t>(*v);
}

unsigned env_threads(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return 0;
  const auto v = parse_u64_in(raw, 0, ThreadPool::kMaxThreads);
  if (!v.has_value()) {
    throw KernelUsageError(std::string(name) + "='" + raw +
                           "' must be an integer in [0, " +
                           std::to_string(ThreadPool::kMaxThreads) + "]");
  }
  return static_cast<unsigned>(*v);
}

KernelConfig config_from_env() {
  KernelConfig cfg;
  if (const char* raw = std::getenv("TCE_KERNEL");
      raw != nullptr && *raw != '\0') {
    cfg.kind = parse_kernel_kind(raw);
  }
  cfg.tiles.mc = env_tile("TCE_TILE_MC", cfg.tiles.mc);
  cfg.tiles.kc = env_tile("TCE_TILE_KC", cfg.tiles.kc);
  cfg.tiles.nc = env_tile("TCE_TILE_NC", cfg.tiles.nc);
  cfg.threads = env_threads("TCE_KERNEL_THREADS");
  return cfg;
}

/// The process-wide config.  Guarded by a mutex only for the rare
/// writes (CLI/tests); GEMM entry points read it once on the calling
/// thread and pass values down, so pool workers never touch it.
Mutex g_config_mutex;
std::optional<KernelConfig> g_config TCE_GUARDED_BY(
    g_config_mutex);  // NOLINT(cert-err58-cpp)

// ---------------------------------------------------------------------
// Microkernel: C (MR×NR, row stride ldc) += Ap · Bp over kc steps,
// where Ap is an MR-wide packed column-major micro-panel (Ap[p*MR + i])
// and Bp an NR-wide packed row-major micro-panel (Bp[p*NR + j]).

using MicroKernelFn = void (*)(std::size_t kc, const double* ap,
                               const double* bp, double* c,
                               std::size_t ldc);

void micro_generic(std::size_t kc, const double* ap, const double* bp,
                   double* c, std::size_t ldc) {
  double acc[kMicroM][kMicroN] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const double* a = ap + p * kMicroM;
    const double* b = bp + p * kMicroN;
    for (std::size_t i = 0; i < kMicroM; ++i) {
      for (std::size_t j = 0; j < kMicroN; ++j) {
        acc[i][j] += a[i] * b[j];
      }
    }
  }
  for (std::size_t i = 0; i < kMicroM; ++i) {
    for (std::size_t j = 0; j < kMicroN; ++j) {
      c[i * ldc + j] += acc[i][j];
    }
  }
}

#if TCE_KERNEL_X86_DISPATCH
/// AVX2+FMA variant: 12 ymm accumulators (two 4-double halves per C
/// column), one broadcast of B and two loads of A per k step.  Compiled
/// with a target attribute so the TU itself needs no -mavx2; the
/// dispatcher only selects it when the CPU reports both features.
__attribute__((target("avx2,fma"))) void micro_avx2(std::size_t kc,
                                                    const double* ap,
                                                    const double* bp,
                                                    double* c,
                                                    std::size_t ldc) {
  // Explicit accumulators so the compiler keeps all 12 in ymm registers
  // (an array sometimes spills at -O2): cLjH = C columns 0..5, rows
  // 0..3 (lo) / 4..7 (hi).
  __m256d c0l = _mm256_setzero_pd(), c0h = _mm256_setzero_pd();
  __m256d c1l = _mm256_setzero_pd(), c1h = _mm256_setzero_pd();
  __m256d c2l = _mm256_setzero_pd(), c2h = _mm256_setzero_pd();
  __m256d c3l = _mm256_setzero_pd(), c3h = _mm256_setzero_pd();
  __m256d c4l = _mm256_setzero_pd(), c4h = _mm256_setzero_pd();
  __m256d c5l = _mm256_setzero_pd(), c5h = _mm256_setzero_pd();

  const double* a = ap;
  const double* b = bp;
// A lambda would not inherit the target attribute (GCC rejects the
// intrinsics inside it), so the k-step is a macro.
#define TCE_MICRO_STEP()                        \
  do {                                          \
    const __m256d a0 = _mm256_loadu_pd(a);      \
    const __m256d a1 = _mm256_loadu_pd(a + 4);  \
    __m256d bj = _mm256_broadcast_sd(b + 0);    \
    c0l = _mm256_fmadd_pd(a0, bj, c0l);         \
    c0h = _mm256_fmadd_pd(a1, bj, c0h);         \
    bj = _mm256_broadcast_sd(b + 1);            \
    c1l = _mm256_fmadd_pd(a0, bj, c1l);         \
    c1h = _mm256_fmadd_pd(a1, bj, c1h);         \
    bj = _mm256_broadcast_sd(b + 2);            \
    c2l = _mm256_fmadd_pd(a0, bj, c2l);         \
    c2h = _mm256_fmadd_pd(a1, bj, c2h);         \
    bj = _mm256_broadcast_sd(b + 3);            \
    c3l = _mm256_fmadd_pd(a0, bj, c3l);         \
    c3h = _mm256_fmadd_pd(a1, bj, c3h);         \
    bj = _mm256_broadcast_sd(b + 4);            \
    c4l = _mm256_fmadd_pd(a0, bj, c4l);         \
    c4h = _mm256_fmadd_pd(a1, bj, c4h);         \
    bj = _mm256_broadcast_sd(b + 5);            \
    c5l = _mm256_fmadd_pd(a0, bj, c5l);         \
    c5h = _mm256_fmadd_pd(a1, bj, c5h);         \
    a += kMicroM;                               \
    b += kMicroN;                               \
  } while (false)

  std::size_t p = 0;
  for (; p + 4 <= kc; p += 4) {
    TCE_MICRO_STEP();
    TCE_MICRO_STEP();
    TCE_MICRO_STEP();
    TCE_MICRO_STEP();
  }
  for (; p < kc; ++p) TCE_MICRO_STEP();
#undef TCE_MICRO_STEP

  alignas(32) double t[kMicroM];
  const __m256d* lo[kMicroN] = {&c0l, &c1l, &c2l, &c3l, &c4l, &c5l};
  const __m256d* hi[kMicroN] = {&c0h, &c1h, &c2h, &c3h, &c4h, &c5h};
  for (std::size_t j = 0; j < kMicroN; ++j) {
    _mm256_store_pd(t, *lo[j]);
    _mm256_store_pd(t + 4, *hi[j]);
    for (std::size_t i = 0; i < kMicroM; ++i) {
      c[i * ldc + j] += t[i];
    }
  }
}
#endif  // TCE_KERNEL_X86_DISPATCH

struct MicroDispatch {
  MicroKernelFn fn = micro_generic;
  const char* isa = "generic";
};

MicroDispatch pick_micro() {
#if TCE_KERNEL_X86_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {micro_avx2, "avx2"};
  }
#endif
  return {micro_generic, "generic"};
}

const MicroDispatch& micro_dispatch() {
  static const MicroDispatch d = pick_micro();
  return d;
}

/// Packs A[ic.., pc..] (row-major lda = k) into MR-row micro-panels,
/// zero-padding rows past mc_eff.  Layout: panel ir, then k step, then
/// row within the panel.
void pack_a_panel(const double* a, std::size_t lda, std::size_t ic,
                  std::size_t pc, std::size_t mc_eff, std::size_t kc_eff,
                  double* out) {
  for (std::size_t ir = 0; ir < mc_eff; ir += kMicroM) {
    const std::size_t rows = std::min(kMicroM, mc_eff - ir);
    double* panel = out + ir * kc_eff;
    for (std::size_t p = 0; p < kc_eff; ++p) {
      const double* col = a + (ic + ir) * lda + pc + p;
      double* dst = panel + p * kMicroM;
      for (std::size_t i = 0; i < rows; ++i) dst[i] = col[i * lda];
      for (std::size_t i = rows; i < kMicroM; ++i) dst[i] = 0.0;
    }
  }
}

/// Packs B[pc.., jc..] (row-major ldb = n) into NR-column micro-panels,
/// zero-padding columns past nc_eff.
void pack_b_panel(const double* b, std::size_t ldb, std::size_t pc,
                  std::size_t jc, std::size_t kc_eff, std::size_t nc_eff,
                  double* out) {
  for (std::size_t jr = 0; jr < nc_eff; jr += kMicroN) {
    const std::size_t cols = std::min(kMicroN, nc_eff - jr);
    double* panel = out + jr * kc_eff;
    for (std::size_t p = 0; p < kc_eff; ++p) {
      const double* row = b + (pc + p) * ldb + jc + jr;
      double* dst = panel + p * kMicroN;
      for (std::size_t j = 0; j < cols; ++j) dst[j] = row[j];
      for (std::size_t j = cols; j < kMicroN; ++j) dst[j] = 0.0;
    }
  }
}

}  // namespace

const char* kernel_kind_name(KernelKind kind) noexcept {
  switch (kind) {
    case KernelKind::kAuto:
      return "auto";
    case KernelKind::kReference:
      return "ref";
    case KernelKind::kTiled:
      return "tiled";
  }
  return "auto";
}

KernelKind parse_kernel_kind(const std::string& name) {
  if (name == "auto") return KernelKind::kAuto;
  if (name == "ref" || name == "reference") return KernelKind::kReference;
  if (name == "tiled") return KernelKind::kTiled;
  throw KernelUsageError("unknown kernel '" + name +
                         "' (expected auto, ref, or tiled)");
}

const KernelConfig& kernel_config() {
  MutexLock lock(g_config_mutex);
  if (!g_config.has_value()) g_config = config_from_env();
  return *g_config;
}

void set_kernel_config(const KernelConfig& cfg) {
  MutexLock lock(g_config_mutex);
  g_config = cfg;
}

void reset_kernel_config_from_env() {
  MutexLock lock(g_config_mutex);
  g_config.reset();
}

KernelKind select_kernel(KernelKind kind, std::uint64_t mnk) noexcept {
  if (kind != KernelKind::kAuto) return kind;
  return mnk >= kAutoCutoffElems ? KernelKind::kTiled
                                 : KernelKind::kReference;
}

const char* gemm_microkernel_isa() noexcept { return micro_dispatch().isa; }

void gemm_ref(std::span<const double> a, std::span<const double> b,
              std::span<double> c, std::size_t m, std::size_t k,
              std::size_t n, const TileConfig& tiles) {
  TCE_EXPECTS(a.size() == m * k);
  TCE_EXPECTS(b.size() == k * n);
  TCE_EXPECTS(c.size() == m * n);

  for (std::size_t i0 = 0; i0 < m; i0 += tiles.mc) {
    const std::size_t i1 = std::min(i0 + tiles.mc, m);
    for (std::size_t k0 = 0; k0 < k; k0 += tiles.kc) {
      const std::size_t k1 = std::min(k0 + tiles.kc, k);
      for (std::size_t j0 = 0; j0 < n; j0 += tiles.nc) {
        const std::size_t j1 = std::min(j0 + tiles.nc, n);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const double av = a[i * k + kk];
            const double* brow = &b[kk * n];
            double* crow = &c[i * n];
            for (std::size_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

void gemm_tiled(std::span<const double> a, std::span<const double> b,
                std::span<double> c, std::size_t m, std::size_t k,
                std::size_t n, const TileConfig& tiles, unsigned threads) {
  TCE_EXPECTS(a.size() == m * k);
  TCE_EXPECTS(b.size() == k * n);
  TCE_EXPECTS(c.size() == m * n);
  if (m == 0 || n == 0 || k == 0) return;  // C += 0: nothing to do

  const bool recording = obs::metrics_enabled();
  const Stopwatch sw;

  const std::size_t mc = round_up(tiles.mc, kMicroM);
  const std::size_t kc = tiles.kc;
  const std::size_t nc = round_up(tiles.nc, kMicroN);
  const MicroKernelFn micro = micro_dispatch().fn;

  const std::size_t m_blocks = (m + mc - 1) / mc;
  const unsigned use_threads = std::min<std::size_t>(
      ThreadPool::resolve_threads(threads), m_blocks);

  std::uint64_t pack_bytes = 0;
  std::vector<double> bpack;
  for (std::size_t jc = 0; jc < n; jc += nc) {
    const std::size_t nc_eff = std::min(nc, n - jc);
    const std::size_t nc_pad = round_up(nc_eff, kMicroN);
    for (std::size_t pc = 0; pc < k; pc += kc) {
      const std::size_t kc_eff = std::min(kc, k - pc);
      bpack.resize(nc_pad * kc_eff);
      pack_b_panel(b.data(), n, pc, jc, kc_eff, nc_eff, bpack.data());
      pack_bytes += nc_pad * kc_eff * sizeof(double);
      pack_bytes += round_up(m, kMicroM) * kc_eff * sizeof(double);

      // MC row-blocks in parallel: disjoint C rows per block and a
      // sequential pc loop keep the accumulation order fixed, so the
      // result is bitwise identical at every thread count.
      ThreadPool::shared().parallel_for(
          m_blocks, use_threads, [&](std::size_t bi) {
            const std::size_t ic = bi * mc;
            const std::size_t mc_eff = std::min(mc, m - ic);
            const std::size_t mc_pad = round_up(mc_eff, kMicroM);
            thread_local std::vector<double> apack;
            apack.resize(mc_pad * kc_eff);
            pack_a_panel(a.data(), k, ic, pc, mc_eff, kc_eff,
                         apack.data());

            for (std::size_t jr = 0; jr < nc_eff; jr += kMicroN) {
              const std::size_t nr = std::min(kMicroN, nc_eff - jr);
              const double* bp = bpack.data() + jr * kc_eff;
              for (std::size_t ir = 0; ir < mc_eff; ir += kMicroM) {
                const std::size_t mr = std::min(kMicroM, mc_eff - ir);
                const double* ap = apack.data() + ir * kc_eff;
                double* cp = c.data() + (ic + ir) * n + jc + jr;
                if (mr == kMicroM && nr == kMicroN) {
                  micro(kc_eff, ap, bp, cp, n);
                } else {
                  // Edge tile: run the full microkernel into a bounce
                  // buffer, accumulate only the valid mr×nr corner.
                  double tmp[kMicroM * kMicroN] = {};
                  micro(kc_eff, ap, bp, tmp, kMicroN);
                  for (std::size_t i = 0; i < mr; ++i) {
                    for (std::size_t j = 0; j < nr; ++j) {
                      cp[i * n + j] += tmp[i * kMicroN + j];
                    }
                  }
                }
              }
            }
          });
    }
  }

  if (recording) {
    obs::observe("kernel.gemm_s", sw.elapsed_s());
    obs::count("kernel.pack_bytes", pack_bytes);
    obs::count("kernel.tiled_calls");
  }
}

double gemm_model_efficiency(std::uint64_t m, std::uint64_t n,
                             std::uint64_t k) noexcept {
  if (m == 0 || n == 0 || k == 0) return 1.0;
  const TileConfig tiles;  // model the production kernel at defaults
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  const double m_pad =
      static_cast<double>(round_up(m, kMicroM));
  const double n_pad =
      static_cast<double>(round_up(n, kMicroN));
  const double jc_blocks =
      std::ceil(nd / static_cast<double>(tiles.nc));
  const double pc_blocks =
      std::ceil(kd / static_cast<double>(tiles.kc));

  const double useful = 2.0 * md * nd * kd;
  // Partial MR/NR tiles burn full microkernel work on padding.
  const double padded = 2.0 * m_pad * n_pad * kd;
  // Memory traffic in moved elements: A repacked once per NC column
  // block, B packed once, C read+updated once per KC depth block.
  const double moves = m_pad * kd * jc_blocks + kd * n_pad +
                       2.0 * md * nd * pc_blocks;
  // One moved element costs ~4 flop-times; a call costs ~4096 flops of
  // setup (dispatch, buffer sizing, loop prologue).
  const double overhead = 4.0 * moves + 4096.0;
  return useful / (padded + overhead);
}

}  // namespace tce
