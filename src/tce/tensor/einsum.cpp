#include "tce/tensor/einsum.hpp"

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/tensor/kernel.hpp"
#include "tce/tensor/ttgt.hpp"

namespace tce {

namespace {

/// Per-operand gather plan: for each loop variable, the operand stride it
/// moves by (0 when the operand lacks the dimension).
std::vector<std::uint64_t> loop_strides(
    const DenseTensor& t, const std::vector<IndexId>& loop_dims) {
  std::vector<std::uint64_t> s(loop_dims.size(), 0);
  for (std::size_t i = 0; i < loop_dims.size(); ++i) {
    if (t.has_dim(loop_dims[i])) {
      s[i] = t.stride(t.pos_of(loop_dims[i]));
    }
  }
  return s;
}

std::uint64_t offset_for(std::span<const std::uint64_t> idx,
                         std::span<const std::uint64_t> strides) {
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < idx.size(); ++i) off += idx[i] * strides[i];
  return off;
}

/// Extent of loop label \p id, cross-checked across operands.
std::uint64_t loop_extent(IndexId id, const DenseTensor* a,
                          const DenseTensor* b) {
  std::uint64_t e = 0;
  for (const DenseTensor* t : {a, b}) {
    if (t != nullptr && t->has_dim(id)) {
      const std::uint64_t te = t->extent_of(id);
      if (e != 0 && te != e) {
        throw Error("einsum: operands disagree on an extent");
      }
      e = te;
    }
  }
  if (e == 0) throw Error("einsum: loop label missing from all operands");
  return e;
}

}  // namespace

DenseTensor einsum_pair(const DenseTensor& a, const DenseTensor& b,
                        const std::vector<IndexId>& result_dims,
                        IndexSet sum_indices) {
  // Loop order: result dims first, then summation dims.
  std::vector<IndexId> loops = result_dims;
  for (IndexId s : sum_indices) {
    for (IndexId r : result_dims) {
      if (r == s) throw Error("einsum: summed label appears in result");
    }
    loops.push_back(s);
  }

  std::vector<std::uint64_t> extents;
  extents.reserve(loops.size());
  for (IndexId id : loops) extents.push_back(loop_extent(id, &a, &b));

  DenseTensor c(result_dims,
                {extents.begin(),
                 extents.begin() + static_cast<std::ptrdiff_t>(
                                       result_dims.size())});

  // Kernel dispatch: large contractions lower to TTGT + tiled GEMM;
  // the reference loop nest below remains the ground truth (and the
  // only path when the operands carry dims outside the loop labels,
  // which the reference semantics pin to index 0).
  {
    std::uint64_t total = 1;
    for (std::uint64_t e : extents) total = checked_mul(total, e);
    if (select_kernel(kernel_config().kind, total) == KernelKind::kTiled &&
        classify_ttgt(a, b, result_dims, sum_indices).covered) {
      ttgt_contract_acc(a, b, sum_indices, c);
      return c;
    }
  }

  const auto sa = loop_strides(a, loops);
  const auto sb = loop_strides(b, loops);
  const auto sc = loop_strides(c, loops);

  MultiIndex mi(extents);
  std::span<const double> da = a.data();
  std::span<const double> db = b.data();
  std::span<double> dc = c.data();
  do {
    const auto idx = mi.values();
    dc[offset_for(idx, sc)] +=
        da[offset_for(idx, sa)] * db[offset_for(idx, sb)];
  } while (mi.advance());
  return c;
}

DenseTensor einsum_reduce(const DenseTensor& a,
                          const std::vector<IndexId>& result_dims) {
  std::vector<IndexId> loops = result_dims;
  for (IndexId d : a.dims()) {
    bool kept = false;
    for (IndexId r : result_dims) kept = kept || (r == d);
    if (!kept) loops.push_back(d);
  }

  std::vector<std::uint64_t> extents;
  for (IndexId id : loops) extents.push_back(loop_extent(id, &a, nullptr));

  DenseTensor c(result_dims,
                {extents.begin(),
                 extents.begin() + static_cast<std::ptrdiff_t>(
                                       result_dims.size())});
  const auto sa = loop_strides(a, loops);
  const auto sc = loop_strides(c, loops);

  MultiIndex mi(extents);
  std::span<const double> da = a.data();
  std::span<double> dc = c.data();
  do {
    const auto idx = mi.values();
    dc[offset_for(idx, sc)] += da[offset_for(idx, sa)];
  } while (mi.advance());
  return c;
}

DenseTensor make_tensor(const TensorRef& ref, const IndexSpace& space) {
  std::vector<std::uint64_t> extents;
  extents.reserve(ref.dims.size());
  for (IndexId d : ref.dims) extents.push_back(space.extent(d));
  return DenseTensor(ref.dims, std::move(extents));
}

std::map<std::string, DenseTensor> make_random_inputs(
    const ContractionTree& tree, Rng& rng) {
  std::map<std::string, DenseTensor> inputs;
  for (NodeId id : tree.leaves()) {
    const TensorRef& ref = tree.node(id).tensor;
    DenseTensor t = make_tensor(ref, tree.space());
    t.fill_random(rng);
    inputs.emplace(ref.name, std::move(t));
  }
  return inputs;
}

DenseTensor evaluate_tree(const ContractionTree& tree,
                          const std::map<std::string, DenseTensor>& inputs) {
  std::map<NodeId, DenseTensor> values;
  for (NodeId id : tree.post_order()) {
    const ContractionNode& n = tree.node(id);
    switch (n.kind) {
      case ContractionNode::Kind::kInput: {
        auto it = inputs.find(n.tensor.name);
        if (it == inputs.end()) {
          throw Error("evaluate_tree: missing input '" + n.tensor.name +
                      "'");
        }
        const DenseTensor& given = it->second;
        if (given.dims() != n.tensor.dims) {
          throw Error("evaluate_tree: input '" + n.tensor.name +
                      "' has mismatched dimension labels");
        }
        for (std::size_t i = 0; i < given.rank(); ++i) {
          if (given.extents()[i] != tree.space().extent(given.dims()[i])) {
            throw Error("evaluate_tree: input '" + n.tensor.name +
                        "' has mismatched extents");
          }
        }
        values.emplace(id, given);
        break;
      }
      case ContractionNode::Kind::kContraction:
        values.emplace(id, einsum_pair(values.at(n.left),
                                       values.at(n.right), n.tensor.dims,
                                       n.sum_indices));
        break;
      case ContractionNode::Kind::kReduce:
        values.emplace(id, einsum_reduce(values.at(n.left), n.tensor.dims));
        break;
    }
    // Free children eagerly; each is consumed exactly once (tree).
    if (n.left != kNoNode) values.erase(n.left);
    if (n.right != kNoNode) values.erase(n.right);
  }
  return std::move(values.at(tree.root()));
}

}  // namespace tce
