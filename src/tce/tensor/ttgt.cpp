#include "tce/tensor/ttgt.hpp"

#include <algorithm>

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/tensor/einsum.hpp"
#include "tce/tensor/matmul.hpp"

namespace tce {

namespace {

bool in_group(const std::vector<IndexId>& group, IndexId d) {
  return std::find(group.begin(), group.end(), d) != group.end();
}

/// Strides of \p t for the loop order batch ++ rows ++ cols — the
/// three-group generalization of matmul.cpp's two-group PackPlan.  The
/// groups must cover every dimension of \p t exactly once.
struct GroupPlan {
  std::vector<std::uint64_t> extents;
  std::vector<std::uint64_t> strides;
  std::uint64_t batch = 1;
  std::uint64_t rows = 1;
  std::uint64_t cols = 1;
};

GroupPlan make_group_plan(const DenseTensor& t,
                          const std::vector<IndexId>& batch_dims,
                          const std::vector<IndexId>& row_dims,
                          const std::vector<IndexId>& col_dims) {
  if (batch_dims.size() + row_dims.size() + col_dims.size() != t.rank()) {
    throw Error("ttgt: dimension groups must cover the tensor");
  }
  GroupPlan p;
  auto add = [&](const std::vector<IndexId>& dims, std::uint64_t& product) {
    for (IndexId id : dims) {
      p.extents.push_back(t.extent_of(id));
      p.strides.push_back(t.stride(t.pos_of(id)));
      product = checked_mul(product, p.extents.back());
    }
  };
  add(batch_dims, p.batch);
  add(row_dims, p.rows);
  add(col_dims, p.cols);
  return p;
}

/// Gathers \p t into a contiguous [batch][rows][cols] buffer.  The
/// innermost dimension runs in a tight strided loop; outer dimensions
/// advance by odometer.
void pack_grouped(const DenseTensor& t, const GroupPlan& p,
                  std::vector<double>& out) {
  out.resize(checked_mul(checked_mul(p.batch, p.rows), p.cols));
  std::span<const double> src = t.data();
  if (p.extents.empty()) {
    out[0] = src[0];
    return;
  }
  const std::size_t nd = p.extents.size();
  const std::uint64_t inner_n = p.extents[nd - 1];
  const std::uint64_t inner_s = p.strides[nd - 1];
  MultiIndex mi(std::span<const std::uint64_t>(p.extents.data(), nd - 1));
  std::uint64_t flat = 0;
  do {
    const auto idx = mi.values();
    std::uint64_t off = 0;
    for (std::size_t i = 0; i + 1 < nd; ++i) off += idx[i] * p.strides[i];
    const double* s = src.data() + off;
    double* d = out.data() + flat;
    if (inner_s == 1) {
      for (std::uint64_t j = 0; j < inner_n; ++j) d[j] = s[j];
    } else {
      for (std::uint64_t j = 0; j < inner_n; ++j) d[j] = s[j * inner_s];
    }
    flat += inner_n;
  } while (mi.advance());
}

/// Scatters a packed [batch][rows][cols] buffer back into \p t,
/// accumulating (+=).
void unpack_grouped_acc(std::span<const double> buf, const GroupPlan& p,
                        DenseTensor& t) {
  TCE_EXPECTS(buf.size() == p.batch * p.rows * p.cols);
  std::span<double> dst = t.data();
  if (p.extents.empty()) {
    dst[0] += buf[0];
    return;
  }
  const std::size_t nd = p.extents.size();
  const std::uint64_t inner_n = p.extents[nd - 1];
  const std::uint64_t inner_s = p.strides[nd - 1];
  MultiIndex mi(std::span<const std::uint64_t>(p.extents.data(), nd - 1));
  std::uint64_t flat = 0;
  do {
    const auto idx = mi.values();
    std::uint64_t off = 0;
    for (std::size_t i = 0; i + 1 < nd; ++i) off += idx[i] * p.strides[i];
    double* d = dst.data() + off;
    const double* s = buf.data() + flat;
    if (inner_s == 1) {
      for (std::uint64_t j = 0; j < inner_n; ++j) d[j] += s[j];
    } else {
      for (std::uint64_t j = 0; j < inner_n; ++j) d[j * inner_s] += s[j];
    }
    flat += inner_n;
  } while (mi.advance());
}

}  // namespace

TtgtGroups classify_ttgt(const DenseTensor& a, const DenseTensor& b,
                         const std::vector<IndexId>& result_dims,
                         IndexSet sum_indices) {
  TtgtGroups g;
  for (IndexId d : result_dims) {
    if (sum_indices.contains(d)) {
      throw Error("einsum: summed label appears in result");
    }
    const bool in_a = a.has_dim(d);
    const bool in_b = b.has_dim(d);
    if (in_a && in_b) {
      g.batch.push_back(d);
    } else if (in_a) {
      g.m.push_back(d);
    } else if (in_b) {
      g.n.push_back(d);
    } else {
      throw Error("einsum: loop label missing from all operands");
    }
  }
  for (IndexId s : sum_indices) {
    const bool in_a = a.has_dim(s);
    const bool in_b = b.has_dim(s);
    if (in_a && in_b) {
      g.k.push_back(s);
    } else if (in_a) {
      g.a_only_sum.push_back(s);
    } else if (in_b) {
      g.b_only_sum.push_back(s);
    } else {
      throw Error("einsum: loop label missing from all operands");
    }
  }
  for (const std::vector<IndexId>* shared : {&g.batch, &g.k}) {
    for (IndexId d : *shared) {
      if (a.extent_of(d) != b.extent_of(d)) {
        throw Error("einsum: operands disagree on an extent");
      }
    }
  }
  for (IndexId d : a.dims()) {
    if (!in_group(g.batch, d) && !in_group(g.m, d) && !in_group(g.k, d) &&
        !in_group(g.a_only_sum, d)) {
      g.covered = false;
    }
  }
  for (IndexId d : b.dims()) {
    if (!in_group(g.batch, d) && !in_group(g.n, d) && !in_group(g.k, d) &&
        !in_group(g.b_only_sum, d)) {
      g.covered = false;
    }
  }
  for (IndexId d : g.batch) {
    g.batch_elems = checked_mul(g.batch_elems, a.extent_of(d));
  }
  for (IndexId d : g.m) g.m_elems = checked_mul(g.m_elems, a.extent_of(d));
  for (IndexId d : g.n) g.n_elems = checked_mul(g.n_elems, b.extent_of(d));
  for (IndexId d : g.k) g.k_elems = checked_mul(g.k_elems, a.extent_of(d));
  return g;
}

void ttgt_contract_acc(const DenseTensor& a, const DenseTensor& b,
                       IndexSet sum_indices, DenseTensor& c) {
  const TtgtGroups g = classify_ttgt(a, b, c.dims(), sum_indices);
  TCE_EXPECTS_MSG(g.covered,
                  "ttgt: operand dimension outside result and sum labels");

  // A summed label found in only one operand contributes a plain
  // reduction of that operand before the matrix product.
  const DenseTensor* pa = &a;
  const DenseTensor* pb = &b;
  DenseTensor a_red;
  DenseTensor b_red;
  if (!g.a_only_sum.empty()) {
    std::vector<IndexId> keep;
    for (IndexId d : a.dims()) {
      if (!in_group(g.a_only_sum, d)) keep.push_back(d);
    }
    a_red = einsum_reduce(a, keep);
    pa = &a_red;
  }
  if (!g.b_only_sum.empty()) {
    std::vector<IndexId> keep;
    for (IndexId d : b.dims()) {
      if (!in_group(g.b_only_sum, d)) keep.push_back(d);
    }
    b_red = einsum_reduce(b, keep);
    pb = &b_red;
  }

  // K packing order: A's layout order, shared by both operand packs.
  std::vector<IndexId> kdims;
  for (IndexId d : pa->dims()) {
    if (in_group(g.k, d)) kdims.push_back(d);
  }

  const GroupPlan ap = make_group_plan(*pa, g.batch, g.m, kdims);
  const GroupPlan bp = make_group_plan(*pb, g.batch, kdims, g.n);
  const GroupPlan cp = make_group_plan(c, g.batch, g.m, g.n);

  std::vector<double> am;
  std::vector<double> bm;
  pack_grouped(*pa, ap, am);
  pack_grouped(*pb, bp, bm);
  std::vector<double> cm(
      checked_mul(checked_mul(g.batch_elems, g.m_elems), g.n_elems), 0.0);

  const std::size_t a_slice = g.m_elems * g.k_elems;
  const std::size_t b_slice = g.k_elems * g.n_elems;
  const std::size_t c_slice = g.m_elems * g.n_elems;
  for (std::uint64_t bi = 0; bi < g.batch_elems; ++bi) {
    matmul_acc(std::span<const double>(am).subspan(bi * a_slice, a_slice),
               std::span<const double>(bm).subspan(bi * b_slice, b_slice),
               std::span<double>(cm).subspan(bi * c_slice, c_slice),
               g.m_elems, g.k_elems, g.n_elems);
  }
  unpack_grouped_acc(cm, cp, c);

  if (obs::metrics_enabled()) {
    // Pack traffic of the lowering itself: both operand gathers plus
    // the zero-init and scatter of the result buffer.
    obs::count("kernel.pack_bytes",
               (am.size() + bm.size() + 2 * cm.size()) * sizeof(double));
  }
}

}  // namespace tce
