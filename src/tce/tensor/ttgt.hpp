#pragma once
/// \file ttgt.hpp
/// TTGT lowering of pairwise einsum contractions.
///
/// A contraction C[result] += Σ_sum A·B is reduced to a batched matrix
/// product by classifying every index into one of four groups:
///
///   batch — in A, B, and the result        (outer loop)
///   M     — in A and the result only       (GEMM rows)
///   N     — in B and the result only       (GEMM columns)
///   K     — summed, in both A and B        (GEMM depth)
///
/// A summed index present in only one operand is handled by
/// pre-reducing that operand (einsum_reduce) before the lowering; K may
/// be empty (pure outer product, GEMM with k = 1).  Operands are packed
/// into contiguous [batch][rows][cols] buffers by a generalized
/// PackPlan (three dimension groups instead of matmul.hpp's two), the
/// per-batch slices go through the dispatching matmul_acc, and the
/// result buffer is scattered back with accumulation (docs/KERNELS.md).

#include "tce/expr/index.hpp"
#include "tce/tensor/dense.hpp"

namespace tce {

/// The index classification of one pairwise contraction.
struct TtgtGroups {
  std::vector<IndexId> batch;  ///< In both operands and the result.
  std::vector<IndexId> m;      ///< A ∩ result, not in B.
  std::vector<IndexId> n;      ///< B ∩ result, not in A.
  std::vector<IndexId> k;      ///< Summed, in both operands.
  /// Summed indices found in only one operand — that operand is
  /// pre-reduced over them before the GEMM.
  std::vector<IndexId> a_only_sum;
  std::vector<IndexId> b_only_sum;
  /// False when an operand carries a dimension outside result ∪ sum;
  /// the reference loop nest silently pins such dims to index 0, so
  /// callers must fall back to it to preserve semantics.
  bool covered = true;

  std::uint64_t batch_elems = 1;
  std::uint64_t m_elems = 1;
  std::uint64_t n_elems = 1;
  std::uint64_t k_elems = 1;
};

/// Classifies \p result_dims / \p sum_indices against the operands.
/// Throws tce::Error on label/extent inconsistencies (same conditions
/// and messages as the reference einsum).
TtgtGroups classify_ttgt(const DenseTensor& a, const DenseTensor& b,
                         const std::vector<IndexId>& result_dims,
                         IndexSet sum_indices);

/// c[c.dims()] += Σ_sum a·b via pack → GEMM → unpack.  \p c must carry
/// exactly the non-summed labels (the classification is derived from
/// it); requires classify_ttgt(...).covered.  The per-batch GEMMs go
/// through matmul_acc, so the kernel-selection layer applies.
void ttgt_contract_acc(const DenseTensor& a, const DenseTensor& b,
                       IndexSet sum_indices, DenseTensor& c);

}  // namespace tce
