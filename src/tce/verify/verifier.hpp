#pragma once
/// \file verifier.hpp
/// Independent plan-invariant checking.
///
/// The optimizer (§3.3) enforces every legality rule of the paper
/// *inside* its search: fusion legality and the no-recomputation nesting
/// rule (§2, §3.2(iii)), agreement of fused-index ranges between producer
/// and consumer, Cannon triplet/orientation consistency (§3.1), and the
/// per-node memory bound (§4).  A bug there silently yields
/// plausible-but-illegal plans and corrupted Table 1/2 numbers.  This
/// module is the defense: PlanVerifier takes a finished OptimizedPlan and
/// re-derives every invariant from scratch — sharing only the leaf cost
/// and bookkeeping formulas (dist_bytes, fused_ref, rotate/redistribute
/// curves), none of the search code — and reports violations as
/// structured diagnostics instead of aborting on the first failure.
///
/// Deliberately, this header depends only on data-type headers
/// (tce/core/plan.hpp is a plain struct) so the verify library sits
/// *below* tce_core in the link graph and the optimizer itself can call
/// it (the TCE_VERIFY_PLANS debug mode) without a dependency cycle.
///
/// Rule identifiers (stable; used by tests and tooling):
///   structure.steps             one PlanStep per contraction node, in
///                               valid post-order
///   structure.result-name       step result names match the tree and are
///                               unique
///   structure.array-rows        array table rows cover consumed leaves +
///                               internal nodes and agree with the steps
///   cannon.triplet              {i,j,k} drawn from the node's I/J/K sets
///   cannon.rotation             rotation index is an assigned triplet
///                               member
///   cannon.orientation          recorded α/β/γ equal the triplet's
///                               distributions (with orientation)
///   repl.layout                 replicated operand consumed as ⟨·,·⟩;
///                               stationary distribution drawn from the
///                               proper index sets
///   repl.reduce-dim             reduce_dim names the grid dimension
///                               splitting the summation index (0 = none)
///   fusion.subset               step fusion ⊆ fusable_indices(node)
///   fusion.nesting              no-recomputation rule on every
///                               producer/consumer edge
///   fusion.effective-closure    effective_fused = fusion ∪ children's
///                               fusions
///   dist.fused-undistributed    fused indices never grid-distributed
///   dist.operand-agreement      fused operands consumed in their produced
///                               distribution; redistribution only for
///                               materialized intermediates
///   reduce.result-dist          reduce-node distribution drops exactly
///                               the reduced indices
///   cost.rotation               per-step rotation/allgather/reduce comm
///                               matches the cost model
///   cost.redistribution         per-step redistribution comm matches
///   cost.reduce                 reduce-node partial-sum comm matches
///   cost.total                  total_comm_s matches the recomputed sum
///   cost.compute                total_compute_s matches flops/P/rate
///   mem.array-row               per-array bytes match the recomputed
///                               block sizes
///   mem.array-total             array_bytes_per_proc matches the sum
///   mem.peak-live               peak_live_bytes_per_proc matches the
///                               recomputed liveness peak
///   mem.max-message             max_msg_bytes_per_proc matches the
///                               largest recomputed transfer
///   mem.limit                   the per-node memory bound holds

#include <cstdint>
#include <string>
#include <vector>

#include "tce/core/plan.hpp"
#include "tce/costmodel/machine_model.hpp"
#include "tce/expr/contraction.hpp"

namespace tce {

/// How bad a finding is.  Everything the verifier currently checks is a
/// hard legality or accounting rule, so most findings are errors;
/// warnings are reserved for recomputations that are within an order of
/// magnitude but outside tolerance.
enum class Severity {
  kError,
  kWarning,
};

/// One verification finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  NodeId node = kNoNode;  ///< Offending tree node; kNoNode = plan-level.
  std::string rule;       ///< Stable rule id (see file comment).
  std::string message;    ///< Human-readable explanation with values.
};

/// Verification knobs.
struct VerifyOptions {
  /// Per-node memory limit the plan must respect (0 = skip mem.limit).
  std::uint64_t mem_limit_node_bytes = 0;
  /// Relative tolerance for floating-point cost comparisons.  The
  /// verifier evaluates the very same model curves the optimizer did, so
  /// recomputed values normally agree to the last bit; the tolerance only
  /// absorbs benign re-association of sums.
  double rel_tol = 1e-6;
};

/// The verifier's verdict: every violation found, plus how many rule
/// evaluations ran (so "zero diagnostics" is distinguishable from "zero
/// checks").
struct VerifyReport {
  std::vector<Diagnostic> diagnostics;
  std::uint64_t rules_checked = 0;

  bool ok() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kError) return false;
    }
    return true;
  }
  /// Renders one line per diagnostic ("error node=T1 rule=cannon.triplet:
  /// ...") followed by a summary line.
  std::string str(const ContractionTree& tree) const;
};

/// Re-derives every invariant of \p plan against \p tree and \p model
/// from scratch.  Never throws on a bad plan — all violations are
/// collected in the report; throws tce::Error only when the plan is too
/// malformed to even index into the tree (wrong tree entirely).
VerifyReport verify_plan(const ContractionTree& tree,
                         const MachineModel& model,
                         const OptimizedPlan& plan,
                         const VerifyOptions& opts = {});

/// True when the TCE_VERIFY_PLANS environment variable enables the debug
/// mode in which the optimizer verifies every plan it emits before
/// returning ("", "0" and unset mean off).
bool verify_plans_enabled();

}  // namespace tce
