#include "tce/verify/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "tce/common/error.hpp"
#include "tce/common/json.hpp"
#include "tce/common/strings.hpp"
#include "tce/fusion/fused.hpp"
#include "tce/obs/log.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/obs/trace.hpp"

namespace tce {

namespace {

/// Everything the verifier re-derives for one tree node, bottom-up.  The
/// fields mirror the optimizer's per-solution accounting exactly (see
/// Sol in optimizer.cpp) so the recomputed totals are comparable to the
/// plan's recorded ones bit for bit.
struct NodeAccount {
  Distribution dist;      ///< Produced (internal) or stored (leaf) layout.
  IndexSet fusion;        ///< Fusion with the parent (∅ for leaves/root).
  double cost = 0;        ///< Subtree communication cost (incl. penalty).
  std::uint64_t mem = 0;  ///< Σ per-processor array bytes, subtree.
  std::uint64_t max_msg = 0;
  std::uint64_t peak = 0;     ///< Peak live intermediate bytes, subtree.
  std::uint64_t working = 0;  ///< Bytes live while the parent executes.
  std::uint64_t input_bytes = 0;
};

class PlanVerifier {
 public:
  PlanVerifier(const ContractionTree& tree, const MachineModel& model,
               const OptimizedPlan& plan, const VerifyOptions& opts)
      : tree_(tree),
        model_(model),
        plan_(plan),
        opts_(opts),
        grid_(model.grid()),
        space_(tree.space()) {}

  VerifyReport run() {
    if (!check_structure()) return std::move(report_);
    index_rows();
    for (NodeId id : tree_.post_order()) {
      const ContractionNode& n = tree_.node(id);
      switch (n.kind) {
        case ContractionNode::Kind::kInput:
          break;  // accounted while visiting the consumer
        case ContractionNode::Kind::kContraction:
          check_contraction(id);
          break;
        case ContractionNode::Kind::kReduce:
          check_reduce(id);
          break;
      }
    }
    check_rows();
    check_totals();
    return std::move(report_);
  }

 private:
  // ----------------------------------------------------------- reporting

  void fail(NodeId node, const std::string& rule,
            const std::string& message,
            Severity sev = Severity::kError) {
    obs::count("verify.diagnostics");
    report_.diagnostics.push_back({sev, node, rule, message});
  }

  /// Accounts one evaluated rule, both on the report and (when the
  /// registry is live) on a per-rule-id counter.
  void count_rule(const std::string& id) {
    ++report_.rules_checked;
    if (obs::metrics_enabled()) obs::count("verify.rule." + id);
  }

  /// Evaluates one rule; returns \p ok so callers can chain.
  bool rule(bool ok, NodeId node, const std::string& id,
            const std::string& message) {
    count_rule(id);
    if (!ok) fail(node, id, message);
    return ok;
  }

  bool close(double a, double b) const {
    const double tol =
        opts_.rel_tol * std::max({std::fabs(a), std::fabs(b), 1e-300});
    return std::fabs(a - b) <= std::max(tol, 1e-12);
  }

  /// Checks a recomputed-vs-recorded cost pair under one rule id,
  /// downgrading near misses (within 1%) to warnings.
  void check_cost(NodeId node, const std::string& id, const std::string& what,
                  double recorded, double recomputed) {
    count_rule(id);
    if (close(recorded, recomputed)) return;
    const double big = std::max(std::fabs(recorded), std::fabs(recomputed));
    const bool near = std::fabs(recorded - recomputed) <= 0.01 * big;
    fail(node, id,
         what + ": recorded " + fixed(recorded, 6) + " s, recomputed " +
             fixed(recomputed, 6) + " s",
         near ? Severity::kWarning : Severity::kError);
  }

  std::string node_name(NodeId id) const {
    return tree_.node(id).tensor.name;
  }

  // ----------------------------------------------------------- structure

  /// One PlanStep per contraction node, in the tree's post order, with
  /// matching unique result names.  Returns false when the steps cannot
  /// even be mapped onto the tree (further checks would throw).
  bool check_structure() {
    std::vector<NodeId> want;
    for (NodeId id : tree_.post_order()) {
      if (tree_.node(id).kind == ContractionNode::Kind::kContraction) {
        want.push_back(id);
      }
    }
    std::vector<NodeId> got;
    for (const PlanStep& s : plan_.steps) got.push_back(s.node);
    if (!rule(got == want, kNoNode, "structure.steps",
              "plan has " + std::to_string(got.size()) +
                  " steps but the tree has " + std::to_string(want.size()) +
                  " contraction nodes (or the post-order differs)")) {
      return false;
    }
    std::set<std::string> seen;
    for (const PlanStep& s : plan_.steps) {
      rule(s.result_name == node_name(s.node), s.node,
           "structure.result-name",
           "step result '" + s.result_name + "' does not match node '" +
               node_name(s.node) + "'");
      rule(seen.insert(s.result_name).second, s.node,
           "structure.result-name",
           "duplicate step result name '" + s.result_name + "'");
      step_of_[s.node] = &s;
    }
    return true;
  }

  /// Maps array-table rows to nodes: consumed leaves in tree order, then
  /// internal nodes in post order (the layout extract_plan produces).
  void index_rows() {
    std::vector<NodeId> want;
    for (NodeId id : tree_.leaves()) want.push_back(id);
    for (NodeId id : tree_.post_order()) {
      if (tree_.node(id).kind != ContractionNode::Kind::kInput) {
        want.push_back(id);
      }
    }
    if (!rule(plan_.arrays.size() == want.size(), kNoNode,
              "structure.array-rows",
              "plan has " + std::to_string(plan_.arrays.size()) +
                  " array rows; expected " + std::to_string(want.size()) +
                  " (consumed leaves + internal nodes)")) {
      return;
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      const ArrayReport& row = plan_.arrays[i];
      const ContractionNode& n = tree_.node(want[i]);
      if (!rule(row.full == n.tensor, want[i], "structure.array-rows",
                "array row " + std::to_string(i) + " is '" + row.full.name +
                    "'; expected '" + n.tensor.name + "'")) {
        continue;
      }
      row_of_[want[i]] = &row;
    }
  }

  const ArrayReport* row(NodeId id) const {
    auto it = row_of_.find(id);
    return it == row_of_.end() ? nullptr : it->second;
  }

  // ------------------------------------------------------------- helpers

  /// Fusion of a child with this node, as recorded in the plan: a
  /// contraction child's step fusion, a reduce child's fusion inferred
  /// from its reduced array row, ∅ for input leaves.
  IndexSet child_fusion(NodeId child) const {
    const ContractionNode& cn = tree_.node(child);
    if (cn.kind == ContractionNode::Kind::kInput) return IndexSet();
    if (auto it = step_of_.find(child); it != step_of_.end()) {
      return it->second->fusion;
    }
    const ArrayReport* r = row(child);
    if (r == nullptr) return IndexSet();
    return cn.tensor.index_set() - r->reduced.index_set();
  }

  /// Produced distribution of a child as recorded in the plan (a leaf has
  /// none; callers handle leaves separately).
  Distribution child_dist(NodeId child) const {
    if (auto it = step_of_.find(child); it != step_of_.end()) {
      return it->second->result_dist;
    }
    const ArrayReport* r = row(child);
    if (r != nullptr && r->initial_dist) return *r->initial_dist;
    return Distribution();
  }

  /// Π of full extents over \p f — the optimizer's repeat_factor: fused
  /// indices are never grid-distributed, so every fused loop contributes
  /// its whole extent to the collective's repetition count.
  double repeat_factor(IndexSet f) const {
    double r = 1.0;
    for (IndexId j : f) r *= static_cast<double>(space_.extent(j));
    return r;
  }

  /// The optimizer's compact storage layout for a replicated-side leaf:
  /// split the first (up to) two dimensions.
  Distribution compact_dist(const TensorRef& ref) const {
    const IndexId d1 = !ref.dims.empty() ? ref.dims[0] : kNoIndex;
    const IndexId d2 = ref.dims.size() > 1 ? ref.dims[1] : kNoIndex;
    return Distribution(d1, d2);
  }

  /// The redundant-compute penalty for configurations that leave grid
  /// dimensions unsplit (mirrors Search::duplication_penalty).
  double duplication_penalty(NodeId id, int split_dims) const {
    double dup = 1.0;
    for (int d = std::max(split_dims, 0); d < 2; ++d) {
      dup *= static_cast<double>(grid_.edge);
    }
    if (dup == 1.0) return 0.0;
    const double share = static_cast<double>(tree_.flops(id)) /
                         static_cast<double>(grid_.procs);
    return model_.compute_time(
        static_cast<std::uint64_t>((dup - 1.0) * share));
  }

  /// Accounts one operand edge: fusion legality, distribution agreement,
  /// redistribution cost, and the child-side contributions to the
  /// subtree accounting.  \p consumed is the distribution the step says
  /// it reads the operand in; \p stored overrides the leaf storage layout
  /// (replicated operands are stored compactly, gathered transiently).
  struct Edge {
    NodeAccount acc;   ///< Child subtree account (leaf: storage only).
    double redist_expected = 0;  ///< Recomputed redistribution cost.
  };
  Edge check_operand(NodeId parent, NodeId child, IndexSet parent_fusion,
                     const Distribution& consumed,
                     const Distribution& stored, double recorded_redist,
                     bool any_dist) {
    const ContractionNode& cn = tree_.node(child);
    Edge e;
    if (cn.kind == ContractionNode::Kind::kInput) {
      // Inputs take any initial distribution at zero cost; they stay
      // resident for the whole program.
      leaf_stored_[child] = stored;
      e.acc.dist = stored;
      e.acc.input_bytes =
          dist_bytes(cn.tensor, stored, IndexSet(), space_, grid_);
      e.acc.mem = e.acc.input_bytes;
      rule(recorded_redist == 0.0, parent, "cost.redistribution",
           "input operand '" + cn.tensor.name +
               "' carries a redistribution cost");
      return e;
    }

    e.acc = accounts_.at(child);
    const IndexSet f_c = e.acc.fusion;
    rule(fusion_nesting_ok(parent_fusion, f_c, cn.loop_indices()), parent,
         "fusion.nesting",
         "operand '" + cn.tensor.name + "' fused over " +
             f_c.str(space_) + " violates the no-recomputation rule "
             "against parent fusion " + parent_fusion.str(space_));

    if (any_dist) {
      // Replicated operand: the allgather collects the array from
      // whatever layout it is in; no redistribution is ever paid.
      rule(recorded_redist == 0.0, parent, "cost.redistribution",
           "replicated operand '" + cn.tensor.name +
               "' carries a redistribution cost");
      return e;
    }
    if (e.acc.dist == consumed) {
      rule(recorded_redist == 0.0, parent, "cost.redistribution",
           "operand '" + cn.tensor.name +
               "' is consumed in its produced distribution but carries a "
               "redistribution cost of " + fixed(recorded_redist, 6) +
               " s");
      return e;
    }
    // Distributions differ: only a fully materialized intermediate may be
    // reshuffled, and the fused-range agreement rule (§3.2(iii)) forbids
    // changing a fused operand's layout at all.
    if (!rule(f_c.empty(), parent, "dist.operand-agreement",
              "fused operand '" + cn.tensor.name + "' produced as " +
                  e.acc.dist.str(space_) + " but consumed as " +
                  consumed.str(space_))) {
      return e;
    }
    e.redist_expected = redistribute_cost_of(cn.tensor, e.acc.dist,
                                             consumed);
    check_cost(parent, "cost.redistribution",
               "redistribution of '" + cn.tensor.name + "'",
               recorded_redist, e.redist_expected);
    e.acc.max_msg = std::max(
        e.acc.max_msg,
        dist_bytes(cn.tensor, e.acc.dist, IndexSet(), space_, grid_));
    return e;
  }

  /// The redistribution cost the optimizer charges (see rotate_cost.cpp):
  /// producer-side block, hoisted outside fused loops.
  double redistribute_cost_of(const TensorRef& v, const Distribution& from,
                              const Distribution& to) const {
    if (from == to) return 0.0;
    const std::uint64_t block =
        dist_bytes(v, from, IndexSet(), space_, grid_);
    return model_.redistribute_cost(block);
  }

  /// Folds two operand accounts and the node's own array into the
  /// subtree account, mirroring the optimizer's memory/liveness math.
  NodeAccount combine(const NodeAccount& lo, const NodeAccount& ro,
                      std::uint64_t own_mem, const Distribution& dist,
                      IndexSet fusion) const {
    NodeAccount s;
    s.dist = dist;
    s.fusion = fusion;
    s.mem = checked_add(checked_add(lo.mem, ro.mem), own_mem);
    s.max_msg = std::max(lo.max_msg, ro.max_msg);
    s.input_bytes = checked_add(lo.input_bytes, ro.input_bytes);
    s.peak = std::max(
        {lo.peak, checked_add(lo.working, ro.peak),
         checked_add(checked_add(lo.working, ro.working), own_mem)});
    s.working = own_mem;
    if (!fusion.empty()) {
      s.working =
          checked_add(s.working, checked_add(lo.working, ro.working));
    }
    return s;
  }

  // ---------------------------------------------------------- contraction

  void check_contraction(NodeId id) {
    const ContractionNode& n = tree_.node(id);
    const PlanStep* sp = step_of_.contains(id) ? step_of_.at(id) : nullptr;
    if (sp == nullptr) return;  // structure.steps already fired
    const PlanStep& s = *sp;

    rule(s.fusion.subset_of(fusable_indices(tree_, id)), id,
         "fusion.subset",
         "fusion " + s.fusion.str(space_) + " is not a subset of the "
             "fusable indices " + fusable_indices(tree_, id).str(space_));

    const IndexSet f_eff_want =
        s.fusion | child_fusion(n.left) | child_fusion(n.right);
    rule(s.effective_fused == f_eff_want, id, "fusion.effective-closure",
         "effective_fused " + s.effective_fused.str(space_) +
             " != fusion ∪ child fusions " + f_eff_want.str(space_));
    const IndexSet f_eff = f_eff_want;  // verify against the *recomputed*
                                        // closure, not the recorded one

    if (s.tmpl == StepTemplate::kCannon) {
      check_cannon_step(id, s, f_eff);
    } else {
      check_replicated_step(id, s, f_eff);
    }
  }

  void check_cannon_step(NodeId id, const PlanStep& s, IndexSet f_eff) {
    const ContractionNode& n = tree_.node(id);
    const CannonChoice& c = s.choice;

    // §3.1: the triplet is drawn from the node's I/J/K sets; the rotation
    // index is one of the assigned members.
    IndexSet triplet;
    bool triplet_ok = true;
    auto pick = [&](IndexId v, IndexSet from, const char* what) {
      if (v == kNoIndex) return;
      if (!from.contains(v)) {
        triplet_ok = false;
        fail(id, "cannon.triplet",
             std::string(what) + " index '" + space_.name(v) +
                 "' is not drawn from " + from.str(space_));
      }
      triplet.insert(v);
    };
    count_rule("cannon.triplet");
    pick(c.i, n.left_indices, "triplet i");
    pick(c.j, n.right_indices, "triplet j");
    pick(c.k, n.sum_indices, "triplet k");
    if (triplet_ok && triplet.empty()) {
      fail(id, "cannon.triplet", "no triplet index assigned");
    }
    rule(c.rot != kNoIndex && (c.rot == c.i || c.rot == c.j || c.rot == c.k),
         id, "cannon.rotation",
         "rotation index is not an assigned triplet member");

    // The recorded distributions must be exactly the ones the triplet
    // and orientation dictate.
    rule(s.result_dist == c.result_dist() && s.left_dist == c.left_dist() &&
             s.right_dist == c.right_dist(),
         id, "cannon.orientation",
         "recorded α/β/γ do not match the triplet's distributions "
         "α=" + c.result_dist().str(space_) +
             " β=" + c.left_dist().str(space_) +
             " γ=" + c.right_dist().str(space_));

    // Fused indices are never grid-distributed (§3.2(iii) reduces to
    // this in the library's search space).
    rule((s.fusion & triplet).empty() &&
             (s.effective_fused &
              (s.result_dist.index_set() | s.left_dist.index_set() |
               s.right_dist.index_set()))
                 .empty(),
         id, "dist.fused-undistributed",
         "a fused index is grid-distributed at this step");

    // Operand edges.
    const TensorRef& lref = tree_.node(n.left).tensor;
    const TensorRef& rref = tree_.node(n.right).tensor;
    Edge le = check_operand(id, n.left, s.fusion, s.left_dist, s.left_dist,
                            s.redist_left_s, /*any_dist=*/false);
    Edge re = check_operand(id, n.right, s.fusion, s.right_dist,
                            s.right_dist, s.redist_right_s,
                            /*any_dist=*/false);

    // Rotation costs, recomputed from the cost model exactly as the
    // optimizer prices them (see optimizer.hpp: the repeat factor spans
    // *all* effective fused loops).
    const double repeat = repeat_factor(f_eff);
    double rot_left = 0, rot_right = 0, rot_result = 0;
    std::uint64_t msg = std::max(le.acc.max_msg, re.acc.max_msg);
    if (c.rotates_left()) {
      const std::uint64_t block =
          dist_bytes(lref, s.left_dist, f_eff, space_, grid_);
      rot_left = repeat * model_.rotate_cost(block, c.left_rot_dim());
      msg = std::max(msg, block);
    }
    if (c.rotates_right()) {
      const std::uint64_t block =
          dist_bytes(rref, s.right_dist, f_eff, space_, grid_);
      rot_right = repeat * model_.rotate_cost(block, c.right_rot_dim());
      msg = std::max(msg, block);
    }
    if (c.rotates_result()) {
      const std::uint64_t block =
          dist_bytes(n.tensor, s.result_dist, f_eff, space_, grid_);
      rot_result = repeat * model_.rotate_cost(block, c.result_rot_dim());
      msg = std::max(msg, block);
    }
    check_cost(id, "cost.rotation", "left-operand rotation", s.rot_left_s,
               rot_left);
    check_cost(id, "cost.rotation", "right-operand rotation",
               s.rot_right_s, rot_right);
    check_cost(id, "cost.rotation", "result rotation", s.rot_result_s,
               rot_result);

    // Fold the subtree account.
    const std::uint64_t own_mem =
        dist_bytes(n.tensor, s.result_dist, s.fusion, space_, grid_);
    NodeAccount acc =
        combine(le.acc, re.acc, own_mem, s.result_dist, s.fusion);
    acc.max_msg = std::max(acc.max_msg, msg);
    const double dup = duplication_penalty(
        id, static_cast<int>((c.i != kNoIndex) + (c.j != kNoIndex) +
                             (c.k != kNoIndex)) -
                1);
    acc.cost = le.acc.cost + re.acc.cost + le.redist_expected +
               re.redist_expected + rot_left + rot_right + rot_result +
               dup;
    accounts_[id] = acc;
  }

  void check_replicated_step(NodeId id, const PlanStep& s,
                             IndexSet f_eff) {
    const ContractionNode& n = tree_.node(id);
    const NodeId stat_id = s.replicate_right ? n.left : n.right;
    const NodeId repl_id = s.replicate_right ? n.right : n.left;
    const TensorRef& repl_ref = tree_.node(repl_id).tensor;
    const Distribution delta =
        s.replicate_right ? s.left_dist : s.right_dist;
    const Distribution repl_consumed =
        s.replicate_right ? s.right_dist : s.left_dist;
    const IndexSet stat_side =
        s.replicate_right ? n.left_indices : n.right_indices;
    const IndexSet repl_side =
        s.replicate_right ? n.right_indices : n.left_indices;

    // The replicated operand is consumed whole on every rank: ⟨·,·⟩.
    rule(repl_consumed.undistributed(), id, "repl.layout",
         "replicated operand '" + repl_ref.name +
             "' is consumed as " + repl_consumed.str(space_) +
             " instead of replicated ⟨·,·⟩");

    // Recover (s_r, s_k, transposed, j_pick) from the recorded
    // distributions and validate their membership.
    IndexId s_r = kNoIndex, s_k = kNoIndex;
    bool layout_ok = true;
    for (int d : {1, 2}) {
      const IndexId v = delta.at(d);
      if (v == kNoIndex) continue;
      if (n.sum_indices.contains(v)) {
        s_k = v;
      } else if (stat_side.contains(v)) {
        s_r = v;
      } else {
        layout_ok = false;
        fail(id, "repl.layout",
             "stationary distribution " + delta.str(space_) +
                 " names '" + space_.name(v) +
                 "', which is neither a stationary-side nor a summation "
                 "index");
      }
    }
    count_rule("repl.layout");
    bool tr = false;
    if (s_r != kNoIndex) {
      tr = delta.dim_of(s_r) == 2;
    } else if (s_k != kNoIndex) {
      tr = delta.dim_of(s_k) == 1;
    }
    // j_pick: the result-side index of α on the replicated side.
    IndexId j_pick = kNoIndex;
    for (int d : {1, 2}) {
      const IndexId v = s.result_dist.at(d);
      if (v == kNoIndex || v == s_r) continue;
      if (repl_side.contains(v)) {
        j_pick = v;
      } else {
        layout_ok = false;
        fail(id, "repl.layout",
             "result distribution " + s.result_dist.str(space_) +
                 " names '" + space_.name(v) +
                 "', which is neither the stationary split index nor a "
                 "replicated-side index");
      }
    }
    Distribution alpha_want(s_r, j_pick);
    if (tr) alpha_want = alpha_want.transposed();
    rule(layout_ok && s.result_dist == alpha_want, id, "repl.layout",
         "result distribution " + s.result_dist.str(space_) +
             " does not match the stationary/replicated split " +
             alpha_want.str(space_));

    const int reduce_dim_want = delta.dim_of(s_k);
    rule(s.reduce_dim == reduce_dim_want, id, "repl.reduce-dim",
         "reduce_dim " + std::to_string(s.reduce_dim) +
             " does not match the grid dimension of the split summation "
             "index (" + std::to_string(reduce_dim_want) + ")");

    // Fused indices undistributed.
    IndexSet triplet;
    for (IndexId v : {s_r, s_k, j_pick}) {
      if (v != kNoIndex) triplet.insert(v);
    }
    rule((s.fusion & triplet).empty() &&
             (s.effective_fused &
              (delta.index_set() | s.result_dist.index_set()))
                 .empty(),
         id, "dist.fused-undistributed",
         "a fused index is grid-distributed at this replicated step");

    // Operand edges: stationary side needs δ; replicated side is
    // gathered from any layout (stored compactly when it is a leaf).
    Edge se = check_operand(
        id, stat_id, s.fusion, delta, delta,
        s.replicate_right ? s.redist_left_s : s.redist_right_s,
        /*any_dist=*/false);
    Edge re = check_operand(
        id, repl_id, s.fusion, repl_consumed, compact_dist(repl_ref),
        s.replicate_right ? s.redist_right_s : s.redist_left_s,
        /*any_dist=*/true);

    // Allgather of the replicated operand: once per iteration of the
    // fused loops that slice it.
    double ag_repeat = 1.0;
    for (IndexId j : f_eff & repl_ref.index_set()) {
      ag_repeat *= static_cast<double>(space_.extent(j));
    }
    const std::uint64_t slice_total =
        fused_bytes(repl_ref, f_eff, space_);
    const double ag = ag_repeat * model_.allgather_cost(slice_total);

    // Reduce-scatter of the result partials.
    const IndexSet f_red = f_eff & n.tensor.index_set();
    double red_repeat = 1.0;
    for (IndexId j : f_red) {
      red_repeat *= static_cast<double>(space_.extent(j));
    }
    Distribution partial(s_r, kNoIndex);
    if (tr) partial = partial.transposed();
    const std::uint64_t partial_bytes =
        dist_bytes(n.tensor, partial, f_red, space_, grid_);
    double rs = 0;
    if (reduce_dim_want != 0) {
      rs = red_repeat *
           model_.reduce_scatter_cost(partial_bytes, reduce_dim_want);
      if (j_pick == kNoIndex) rs *= 2.0;  // allreduce: stay replicated
    }
    check_cost(id, "cost.rotation", "replicated-operand allgather",
               s.replicate_right ? s.rot_right_s : s.rot_left_s, ag);
    check_cost(id, "cost.rotation", "stationary-operand comm",
               s.replicate_right ? s.rot_left_s : s.rot_right_s, 0.0);
    check_cost(id, "cost.rotation", "partial-sum reduction",
               s.rot_result_s, rs);

    // Transient: gathered slice + oversized partial coexist per rank.
    const std::uint64_t own_block =
        dist_bytes(n.tensor, s.result_dist, f_eff, space_, grid_);
    const std::uint64_t transient = checked_add(
        slice_total,
        partial_bytes > own_block ? partial_bytes - own_block : 0);

    const std::uint64_t own_mem =
        dist_bytes(n.tensor, s.result_dist, s.fusion, space_, grid_);
    NodeAccount acc =
        combine(se.acc, re.acc, own_mem, s.result_dist, s.fusion);
    acc.max_msg = std::max(acc.max_msg, transient);
    const double dup = duplication_penalty(
        id, (s_r != kNoIndex ? 1 : 0) + (s_k != kNoIndex ? 1 : 0));
    acc.cost = se.acc.cost + re.acc.cost + se.redist_expected +
               re.redist_expected + ag + rs + dup;
    accounts_[id] = acc;
  }

  // --------------------------------------------------------------- reduce

  /// A reduce node has no PlanStep; its decisions live in its array row
  /// (initial_dist, reduced dims, comm_initial_s).
  void check_reduce(NodeId id) {
    const ContractionNode& n = tree_.node(id);
    const NodeId child = n.left;
    const ContractionNode& cn = tree_.node(child);
    const ArrayReport* r = row(id);
    if (!rule(r != nullptr && r->initial_dist.has_value(), id,
              "reduce.result-dist",
              "reduce node '" + n.tensor.name +
                  "' has no array row with an initial distribution")) {
      accounts_[id] = NodeAccount{};
      return;
    }
    const Distribution rdist = *r->initial_dist;
    const IndexSet f_u = n.tensor.index_set() - r->reduced.index_set();

    rule(f_u.subset_of(fusable_indices(tree_, id)), id, "fusion.subset",
         "fusion " + f_u.str(space_) + " is not a subset of the fusable "
             "indices " + fusable_indices(tree_, id).str(space_));
    rule((f_u & rdist.index_set()).empty(), id, "dist.fused-undistributed",
         "a fused index is grid-distributed at this reduce node");

    // Child: a reduce consumes a fully materialized operand in place.
    NodeAccount co;
    Distribution cdist;
    if (cn.kind == ContractionNode::Kind::kInput) {
      const ArrayReport* cr = row(child);
      cdist = (cr != nullptr && cr->final_dist) ? *cr->final_dist
                                                : Distribution();
      leaf_stored_[child] = cdist;
      co.dist = cdist;
      co.input_bytes =
          dist_bytes(cn.tensor, cdist, IndexSet(), space_, grid_);
      co.mem = co.input_bytes;
    } else {
      co = accounts_.at(child);
      cdist = co.dist;
      rule(co.fusion.empty(), id, "dist.operand-agreement",
           "reduce node '" + n.tensor.name +
               "' consumes a fused (unmaterialized) operand");
    }

    // The result distribution drops exactly the reduced indices from the
    // child's pair and keeps everything else in place.
    auto position = [&](int d) {
      const IndexId i = cdist.at(d);
      return (i != kNoIndex && n.sum_indices.contains(i)) ? kNoIndex : i;
    };
    const Distribution rdist_want(position(1), position(2));
    rule(rdist == rdist_want, id, "reduce.result-dist",
         "reduce-node distribution " + rdist.str(space_) +
             " does not drop exactly the reduced indices from the "
             "operand's " + cdist.str(space_));

    // Partial-sum combination cost (modeled with the redistribution
    // curve; see Search::solve_reduce).
    const bool needs_allreduce = rdist != cdist;
    const std::uint64_t own_mem =
        dist_bytes(n.tensor, rdist, f_u, space_, grid_);
    double comm = 0;
    std::uint64_t msg = co.max_msg;
    if (needs_allreduce) {
      comm = repeat_factor(f_u) * model_.redistribute_cost(own_mem);
      msg = std::max(msg, own_mem);
    }
    check_cost(id, "cost.reduce",
               "partial-sum combination at '" + n.tensor.name + "'",
               r->comm_initial_s.value_or(0.0), comm);

    NodeAccount acc;
    acc.dist = rdist;
    acc.fusion = f_u;
    acc.cost = co.cost + comm;
    acc.mem = checked_add(co.mem, own_mem);
    acc.max_msg = msg;
    acc.input_bytes = co.input_bytes;
    acc.peak = std::max(co.peak, checked_add(co.working, own_mem));
    acc.working = own_mem;
    if (!f_u.empty()) acc.working = checked_add(acc.working, co.working);
    accounts_[id] = acc;
  }

  // ----------------------------------------------------------- array rows

  /// Per-row accounting: the recorded per-node bytes must equal the
  /// recomputed block size of the array in its stored layout, and the
  /// row's distributions must agree with the steps.
  void check_rows() {
    for (const auto& [id, r] : row_of_) {
      const ContractionNode& n = tree_.node(id);
      IndexSet fusion;
      Distribution stored;
      if (n.kind == ContractionNode::Kind::kInput) {
        stored = leaf_stored_.contains(id) ? leaf_stored_.at(id)
                                           : Distribution();
      } else {
        auto it = accounts_.find(id);
        if (it == accounts_.end()) continue;
        fusion = it->second.fusion;
        stored = it->second.dist;
        rule(r->initial_dist.has_value() && *r->initial_dist == stored,
             id, "structure.array-rows",
             "array row for '" + n.tensor.name +
                 "' records initial distribution " +
                 (r->initial_dist ? r->initial_dist->str(space_)
                                  : std::string("(none)")) +
                 "; the plan produces it as " + stored.str(space_));
      }
      rule(r->reduced == fused_ref(n.tensor, fusion), id,
           "structure.array-rows",
           "array row for '" + n.tensor.name +
               "' records a reduced shape inconsistent with its fusion " +
               fusion.str(space_));
      const std::uint64_t want = checked_mul(
          dist_bytes(n.tensor, stored, fusion, space_, grid_),
          grid_.procs_per_node);
      rule(r->mem_per_node_bytes == want, id, "mem.array-row",
           "array row for '" + n.tensor.name + "' records " +
               std::to_string(r->mem_per_node_bytes) +
               " B/node; recomputed " + std::to_string(want) + " B/node");
    }
  }

  // --------------------------------------------------------------- totals

  void check_totals() {
    const NodeId root = tree_.root();
    auto it = accounts_.find(root);
    if (it == accounts_.end()) return;  // structure failure upstream
    const NodeAccount& acc = it->second;

    check_cost(kNoNode, "cost.total", "total communication",
               plan_.total_comm_s, acc.cost);
    check_cost(kNoNode, "cost.compute", "total compute",
               plan_.total_compute_s,
               model_.compute_time(tree_.total_flops() / grid_.procs));

    rule(plan_.array_bytes_per_proc == acc.mem, kNoNode, "mem.array-total",
         "array_bytes_per_proc is " +
             std::to_string(plan_.array_bytes_per_proc) +
             "; recomputed " + std::to_string(acc.mem));
    const std::uint64_t peak_live =
        checked_add(acc.input_bytes, acc.peak);
    rule(plan_.peak_live_bytes_per_proc == peak_live, kNoNode,
         "mem.peak-live",
         "peak_live_bytes_per_proc is " +
             std::to_string(plan_.peak_live_bytes_per_proc) +
             "; recomputed " + std::to_string(peak_live));
    rule(plan_.max_msg_bytes_per_proc == acc.max_msg, kNoNode,
         "mem.max-message",
         "max_msg_bytes_per_proc is " +
             std::to_string(plan_.max_msg_bytes_per_proc) +
             "; recomputed " + std::to_string(acc.max_msg));

    if (opts_.mem_limit_node_bytes != 0) {
      const std::uint64_t metric =
          plan_.liveness_aware ? peak_live : acc.mem;
      const std::uint64_t per_node = checked_mul(
          checked_add(metric, acc.max_msg), grid_.procs_per_node);
      rule(per_node <= opts_.mem_limit_node_bytes, kNoNode, "mem.limit",
           "plan needs " + std::to_string(per_node) +
               " B/node; the limit is " +
               std::to_string(opts_.mem_limit_node_bytes) + " B/node");
    }
  }

  const ContractionTree& tree_;
  const MachineModel& model_;
  const OptimizedPlan& plan_;
  const VerifyOptions& opts_;
  const ProcGrid& grid_;
  const IndexSpace& space_;

  VerifyReport report_;
  std::map<NodeId, const PlanStep*> step_of_;
  std::map<NodeId, const ArrayReport*> row_of_;
  std::map<NodeId, NodeAccount> accounts_;
  std::map<NodeId, Distribution> leaf_stored_;
};

}  // namespace

std::string VerifyReport::str(const ContractionTree& tree) const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.severity == Severity::kError ? "error" : "warning";
    if (d.node != kNoNode) {
      out += " node=" + tree.node(d.node).tensor.name;
    }
    out += " rule=" + d.rule + ": " + d.message + "\n";
  }
  out += std::to_string(rules_checked) + " rules checked, " +
         std::to_string(diagnostics.size()) + " diagnostic" +
         (diagnostics.size() == 1 ? "" : "s") + "\n";
  return out;
}

VerifyReport verify_plan(const ContractionTree& tree,
                         const MachineModel& model,
                         const OptimizedPlan& plan,
                         const VerifyOptions& opts) {
  const obs::TraceSpan span("verify", "verify");
  obs::count("verify.runs");
  PlanVerifier verifier(tree, model, plan, opts);
  VerifyReport report = verifier.run();
  if (!report.ok() && obs::log_enabled(obs::LogLevel::kError)) {
    obs::log_event(obs::LogLevel::kError, "verify", "plan.failed",
                   json::ObjectWriter()
                       .field("diagnostics", report.diagnostics.size())
                       .field("rules_checked", report.rules_checked)
                       .str());
  }
  return report;
}

bool verify_plans_enabled() {
  const char* v = std::getenv("TCE_VERIFY_PLANS");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

}  // namespace tce
