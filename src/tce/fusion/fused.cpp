#include "tce/fusion/fused.hpp"

namespace tce {

TensorRef fused_ref(const TensorRef& ref, IndexSet fused) {
  TensorRef out;
  out.name = ref.name;
  for (IndexId d : ref.dims) {
    if (!fused.contains(d)) out.dims.push_back(d);
  }
  return out;
}

std::uint64_t fused_bytes(const TensorRef& ref, IndexSet fused,
                          const IndexSpace& space) {
  return tensor_bytes(fused_ref(ref, fused), space);
}

IndexSet fusable_indices(const ContractionTree& tree, NodeId v) {
  const ContractionNode& n = tree.node(v);
  if (n.parent == kNoNode) return IndexSet();
  if (n.kind == ContractionNode::Kind::kInput) return IndexSet();
  return n.dimens() & tree.node(n.parent).loop_indices();
}

bool fusion_nesting_ok(IndexSet parent_fusion, IndexSet child_fusion,
                       IndexSet child_loop_indices) {
  if (child_fusion.empty()) return true;  // materialized + hoisted
  return (parent_fusion & child_loop_indices).subset_of(child_fusion);
}

}  // namespace tce
