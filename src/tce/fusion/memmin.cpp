#include "tce/fusion/memmin.hpp"

#include <limits>

namespace tce {

namespace {

struct Entry {
  std::uint64_t bytes = std::numeric_limits<std::uint64_t>::max();
  // Chosen fusions for each child edge below this node, given this
  // node's own fusion-with-parent.
  std::map<NodeId, IndexSet> sub_fusions;
};

class Solver {
 public:
  explicit Solver(const ContractionTree& tree) : tree_(tree) {}

  /// Minimum subtree bytes when node \p v is fused with its parent by
  /// \p f (f must already be legal for v).
  const Entry& solve(NodeId v, IndexSet f) {
    auto key = std::make_pair(v, f);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    const ContractionNode& n = tree_.node(v);
    Entry e;
    e.bytes = fused_bytes(n.tensor, f, tree_.space());
    e.sub_fusions[v] = f;

    for (NodeId c : {n.left, n.right}) {
      if (c == kNoNode) continue;
      const ContractionNode& cn = tree_.node(c);
      if (cn.kind == ContractionNode::Kind::kInput) {
        e.bytes = checked_add(e.bytes,
                              tensor_bytes(cn.tensor, tree_.space()));
        continue;
      }
      // Pick the child fusion minimizing its subtree, respecting the
      // nesting rule against this node's fusion f.
      const Entry* best = nullptr;
      for_each_subset(fusable_indices(tree_, c), [&](IndexSet fc) {
        if (!fusion_nesting_ok(f, fc, cn.loop_indices())) return;
        const Entry& sub = solve(c, fc);
        if (best == nullptr || sub.bytes < best->bytes) best = &sub;
      });
      TCE_ENSURES(best != nullptr);  // fc = empty set is always legal
      e.bytes = checked_add(e.bytes, best->bytes);
      for (const auto& [node, fu] : best->sub_fusions) {
        e.sub_fusions[node] = fu;
      }
    }

    return memo_.emplace(key, std::move(e)).first->second;
  }

 private:
  const ContractionTree& tree_;
  std::map<std::pair<NodeId, IndexSet>, Entry> memo_;
};

}  // namespace

MemMinResult minimize_memory(const ContractionTree& tree) {
  Solver solver(tree);
  const Entry& root = solver.solve(tree.root(), IndexSet());

  MemMinResult out;
  out.total_bytes = root.bytes;
  out.fusions = root.sub_fusions;
  return out;
}

}  // namespace tce
