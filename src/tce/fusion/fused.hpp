#pragma once
/// \file fused.hpp
/// Loop-fusion helpers: reduced array shapes and fusion legality.
///
/// Fusing a loop with index t between a node and its parent eliminates
/// the t-dimension of the node's array (§2).  A fused set f between node
/// v and its parent is legal when
///   * f ⊆ v.dimens (only array dimensions can be fused away), and
///   * every index of f appears in the parent's loop nest (automatic for
///     contraction operands: the parent's loops are the union of its
///     children's indices), and
///   * the per-processor range of each fused loop agrees at both nodes
///     (§3.2(iii)); in this library's search space fused indices are
///     never grid-distributed (distributions name only the Cannon triplet
///     indices), so the ranges are always the full extents and agree.

#include "tce/expr/contraction.hpp"

namespace tce {

/// The reduced ("fused") array: \p ref with the dims in \p fused removed.
/// The name is preserved; Table 1/2's "Reduced array" column.
TensorRef fused_ref(const TensorRef& ref, IndexSet fused);

/// Bytes of the reduced array, undistributed (sequential setting).
std::uint64_t fused_bytes(const TensorRef& ref, IndexSet fused,
                          const IndexSpace& space);

/// Indices fusable between node \p v and its parent in \p tree: the
/// node's array dimensions that also appear in the parent's loop nest.
/// Returns the empty set for the root and for input leaves (an input
/// array is stored in full regardless of fusion, so fusing it away is
/// meaningless).
IndexSet fusable_indices(const ContractionTree& tree, NodeId v);

/// The no-recomputation nesting rule between a node's fusion with its
/// parent (\p parent_fusion, at the consumer) and a fused child's fusion
/// (\p child_fusion): every parent-fused loop that also spans the child's
/// loop nest must be fused through the child as well — otherwise the
/// child's slices would have to be recomputed per iteration, and this
/// library (like the paper) never trades memory for recomputation.
/// Children with an empty fusion are fully materialized and hoisted, so
/// the rule is vacuous for them.
bool fusion_nesting_ok(IndexSet parent_fusion, IndexSet child_fusion,
                       IndexSet child_loop_indices);

}  // namespace tce
