#pragma once
/// \file memmin.hpp
/// Sequential memory-minimization by loop fusion — the prior-work
/// baseline ([14], [15] in the paper).
///
/// Given an expression tree, choose a fused index set for every
/// intermediate array (the edge to its consumer) minimizing the summed
/// storage of all arrays (inputs are stored in full regardless), subject
/// to the no-recomputation nesting rule.  Used by the benchmark
/// comparisons as the "fuse first, then distribute" strategy the paper
/// argues against: its fusion choices ignore communication entirely.

#include <map>

#include "tce/fusion/fused.hpp"

namespace tce {

/// Result of the memory-minimization search.
struct MemMinResult {
  /// Total bytes of all arrays (undistributed, sequential model).
  std::uint64_t total_bytes = 0;
  /// Chosen fusion per node (empty set when a node keeps all dims).
  std::map<NodeId, IndexSet> fusions;
};

/// Exhaustive DP over per-edge fusion subsets.  Optimal under the summed
/// storage model.
MemMinResult minimize_memory(const ContractionTree& tree);

}  // namespace tce
