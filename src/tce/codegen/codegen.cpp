#include "tce/codegen/codegen.hpp"

#include <map>

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/common/units.hpp"
#include "tce/fusion/fused.hpp"
#include "tce/tensor/kernel.hpp"

namespace tce {

namespace {

class Renderer {
 public:
  Renderer(const ContractionTree& tree, const OptimizedPlan& plan,
           std::uint32_t grid_edge)
      : tree_(tree), plan_(plan), space_(tree.space()),
        edge_(grid_edge) {
    for (const PlanStep& s : plan.steps) steps_[s.node] = &s;
    for (const ArrayReport& a : plan.arrays) {
      // Rows are unique by name except duplicated-input leaves, for
      // which any row is representative.
      arrays_[a.full.name] = &a;
    }
  }

  std::string render() {
    out_ += "# " + std::to_string(plan_.procs_per_node) +
            " processors/node; logical grid view of §3.1\n";
    out_ += "# arrays are blocks on each processor; <x,y> = grid "
            "distribution, '·' = replicated\n";
    if (edge_ != 0) {
      out_ += "# local multiplies dispatch per block size: kern=tiled "
              "above " +
              std::to_string(kAutoCutoffElems) +
              " loop elements per rank, kern=ref below\n";
    }
    declare_arrays();
    out_ += "\n";
    render_cluster(tree_.root(), 0);
    return std::move(out_);
  }

 private:
  void line(int indent, const std::string& text) {
    out_.append(static_cast<std::size_t>(indent) * 2, ' ');
    out_ += text;
    out_ += '\n';
  }

  void declare_arrays() {
    for (const ArrayReport& a : plan_.arrays) {
      std::string d;
      if (a.is_input) {
        d = "input  " + a.full.str(space_) + " dist " +
            a.final_dist->str(space_);
      } else {
        d = (a.is_output ? "output " : "local  ") + a.reduced.str(space_);
        if (a.reduced.dims != a.full.dims) {
          d += " (fused from " + a.full.str(space_) + ")";
        }
        d += " dist " + a.initial_dist->str(space_);
      }
      d += "   # " + format_bytes_paper(a.mem_per_node_bytes) + "/node";
      line(0, d);
    }
  }

  /// True when the edge from \p child to its parent is fused.
  bool edge_fused(NodeId child) const {
    auto it = steps_.find(child);
    return it != steps_.end() && !it->second->fusion.empty();
  }

  /// Collects the fused cluster rooted at \p u (nodes joined by fused
  /// edges), in post order.
  void collect_cluster(NodeId u, std::vector<NodeId>& members,
                       IndexSet& loops) const {
    const ContractionNode& n = tree_.node(u);
    for (NodeId c : {n.left, n.right}) {
      if (c == kNoNode) continue;
      if (tree_.node(c).kind == ContractionNode::Kind::kInput) continue;
      if (edge_fused(c)) {
        loops = loops | steps_.at(c)->fusion;
        collect_cluster(c, members, loops);
      }
    }
    members.push_back(u);
  }

  /// Renders the full computation of node \p u (its hoisted dependencies
  /// first, then its fused cluster).
  void render_cluster(NodeId u, int indent) {
    std::vector<NodeId> members;
    IndexSet loops;
    collect_cluster(u, members, loops);

    // Hoisted dependencies: unfused internal children of any member.
    for (NodeId m : members) {
      const ContractionNode& n = tree_.node(m);
      for (NodeId c : {n.left, n.right}) {
        if (c == kNoNode) continue;
        if (tree_.node(c).kind == ContractionNode::Kind::kInput) continue;
        if (!edge_fused(c)) render_cluster(c, indent);
      }
    }

    // Accumulators that live across the fused loops.
    const ContractionNode& root_node = tree_.node(u);
    line(indent, reduced_name(u) + " = 0");
    (void)root_node;

    int body = indent;
    for (IndexId j : loops) {
      line(body, "for " + space_.name(j) + " = 0 .. " +
                     std::to_string(space_.extent(j) - 1) + ":");
      ++body;
    }
    for (NodeId m : members) {
      if (m != u) line(body, reduced_name(m) + " = 0");
      emit_contraction(m, body);
    }
  }

  std::string reduced_name(NodeId id) const {
    const ContractionNode& n = tree_.node(id);
    auto it = arrays_.find(n.tensor.name);
    if (it != arrays_.end()) return it->second->reduced.str(space_);
    return n.tensor.str(space_);
  }

  std::string operand_name(NodeId id, IndexSet eff) const {
    // Operand as seen inside the fused loops: fused dims are pinned.
    const ContractionNode& n = tree_.node(id);
    std::string s = n.tensor.name + "[";
    for (std::size_t i = 0; i < n.tensor.dims.size(); ++i) {
      if (i != 0) s += ",";
      const IndexId d = n.tensor.dims[i];
      s += eff.contains(d) ? (space_.name(d) + "=fixed") : space_.name(d);
    }
    s += "]";
    return s;
  }

  /// Kernel-dispatch annotation for step \p s: mirrors the runtime
  /// auto-selection (select_kernel with the default cutoff) on the
  /// per-rank local block shapes.  A loop label's local extent is its
  /// global extent divided by the grid edge when some side of the step
  /// distributes it; fused labels are pinned (extent 1) and skipped.
  std::string kernel_note(const ContractionNode& n,
                          const PlanStep& s) const {
    if (edge_ == 0) return "";
    std::uint64_t local = 1;
    auto fold = [&](IndexId l, bool split) {
      std::uint64_t e = space_.extent(l);
      if (split) e = std::max<std::uint64_t>(e / edge_, 1);
      local = saturating_mul(local, e);
    };
    for (IndexId l : n.tensor.dims) {
      if (s.effective_fused.contains(l)) continue;
      fold(l, s.result_dist.contains(l));
    }
    for (IndexId l : n.sum_indices) {
      if (s.effective_fused.contains(l)) continue;
      fold(l, s.left_dist.contains(l) || s.right_dist.contains(l));
    }
    const KernelKind k = select_kernel(KernelKind::kAuto, local);
    return std::string(", kern=") +
           (k == KernelKind::kTiled ? "tiled" : "ref");
  }

  void emit_contraction(NodeId id, int indent) {
    const ContractionNode& n = tree_.node(id);
    if (n.kind == ContractionNode::Kind::kReduce) {
      line(indent, reduced_name(id) + " += reduce" +
                       n.sum_indices.str(space_) + " " +
                       operand_name(n.left, IndexSet()));
      return;
    }
    auto it = steps_.find(id);
    if (it == steps_.end()) {
      throw Error("codegen: plan has no step for node '" + n.tensor.name +
                  "'");
    }
    const PlanStep& s = *it->second;
    if (s.tmpl == StepTemplate::kReplicated) {
      const NodeId repl = s.replicate_right ? n.right : n.left;
      const NodeId stat = s.replicate_right ? n.left : n.right;
      const Distribution& stat_dist =
          s.replicate_right ? s.left_dist : s.right_dist;
      std::string note = "allgather " + tree_.node(repl).tensor.name +
                         " everywhere; " + tree_.node(stat).tensor.name +
                         " stationary " + stat_dist.str(space_);
      if (s.reduce_dim != 0) {
        note += "; reduce-scatter partials along dim " +
                std::to_string(s.reduce_dim);
      }
      line(indent, "replicated " + reduced_name(id) + " += " +
                       operand_name(n.left, s.effective_fused) + " * " +
                       operand_name(n.right, s.effective_fused) +
                       "   # " + note + " → " +
                       s.result_dist.str(space_) + kernel_note(n, s));
      return;
    }
    std::string rotated;
    auto add_rot = [&](bool rotates, const std::string& name) {
      if (!rotates) return;
      if (!rotated.empty()) rotated += ", ";
      rotated += name;
    };
    add_rot(s.choice.rotates_left(), tree_.node(n.left).tensor.name);
    add_rot(s.choice.rotates_right(), tree_.node(n.right).tensor.name);
    add_rot(s.choice.rotates_result(), n.tensor.name);

    line(indent, "cannon " + reduced_name(id) + " += " +
                     operand_name(n.left, s.effective_fused) + " * " +
                     operand_name(n.right, s.effective_fused) +
                     "   # rot=" + space_.name(s.choice.rot) +
                     ", rotate {" + rotated + "}, dists " +
                     s.left_dist.str(space_) + "·" +
                     s.right_dist.str(space_) + "→" +
                     s.result_dist.str(space_) + kernel_note(n, s));
  }

  const ContractionTree& tree_;
  const OptimizedPlan& plan_;
  const IndexSpace& space_;
  std::uint32_t edge_;  ///< Grid edge for kernel notes; 0 = omit them.
  std::map<NodeId, const PlanStep*> steps_;
  std::map<std::string, const ArrayReport*> arrays_;
  std::string out_;
};

}  // namespace

std::string generate_pseudocode(const ContractionTree& tree,
                                const OptimizedPlan& plan) {
  return Renderer(tree, plan, 0).render();
}

std::string generate_pseudocode(const ContractionTree& tree,
                                const OptimizedPlan& plan,
                                std::uint32_t grid_edge) {
  return Renderer(tree, plan, grid_edge).render();
}

}  // namespace tce
