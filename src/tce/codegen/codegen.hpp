#pragma once
/// \file codegen.hpp
/// Pseudocode generation for optimized plans.
///
/// The program synthesis system the paper belongs to ultimately emits
/// parallel Fortran/C; this module renders the same structure as
/// readable pseudocode so a user can inspect exactly what the optimizer
/// decided: array allocations with their reduced (fused) shapes and
/// block distributions, the fused loop nests (Fig. 2(c)), and one
/// generalized-Cannon contraction line per tree node annotated with the
/// rotation index and the arrays being rotated.
///
/// Structure: every maximal chain of fused edges forms a *cluster* that
/// executes inside the union of its fused loops; intermediates on
/// unfused edges are fully materialized and hoisted before the loops.

#include "tce/core/plan.hpp"
#include "tce/expr/contraction.hpp"

namespace tce {

/// Renders the plan for \p tree as pseudocode.  The plan must have been
/// produced by optimize() on the same tree.
std::string generate_pseudocode(const ContractionTree& tree,
                                const OptimizedPlan& plan);

/// Same, annotating every contraction line with the local GEMM kernel
/// (`kern=tiled` / `kern=ref`) that auto-dispatch selects for its
/// per-rank blocks on a √P×√P grid of edge \p grid_edge.  The decision
/// is *structural* — recomputed from block shapes and the fixed size
/// cutoff, never from TCE_KERNEL or tile overrides — so the rendered
/// text is identical across kernel environment settings.
std::string generate_pseudocode(const ContractionTree& tree,
                                const OptimizedPlan& plan,
                                std::uint32_t grid_edge);

}  // namespace tce
