#pragma once
/// \file executor.hpp
/// Distributed execution of generalized Cannon contractions on the
/// simulated cluster.
///
/// The executor is an SPMD simulation: every rank owns real double-
/// precision blocks, local block contractions run through the matmul fast
/// path, and each synchronized rotation step emits its point-to-point
/// flows to the flow-level network simulator, which prices them under
/// contention.  The result is therefore both a *numerically correct*
/// output tensor (validated against the reference einsum in tests) and a
/// *simulated wall time* decomposed into communication and computation.
///
/// Block schedule (canonical orientation; the transposed orientation
/// swaps the grid dimensions): with e = √P, processor (z1, z2) at step s
/// works on the block triple
///   rot = k:  (bi, bj, bk) = (z1, z2, (z1+z2+s) mod e)
///   rot = i:  (bi, bj, bk) = ((z1+z2+s) mod e, z2, z1)
///   rot = j:  (bi, bj, bk) = (z1, (z1+z2+s) mod e, z2)
/// so that the blocks meeting at a processor always agree on the shared
/// coordinates.  The two rotating arrays ring-shift along opposite grid
/// dimensions after each step; the full contraction is e compute steps
/// and e shift phases, matching the paper's "fully rotated ... in √P
/// rotation steps" accounting.  Alignment skews are constant-offset
/// relabelings of equally-shaped blocks and are free, consistent with the
/// paper's zero cost for non-rotated arrays and free initial
/// distributions.

#include "tce/costmodel/machine_model.hpp"
#include "tce/dist/cannon_space.hpp"
#include "tce/simnet/network.hpp"
#include "tce/tensor/block.hpp"
#include "tce/tensor/einsum.hpp"

namespace tce {

/// Result of one distributed contraction.
struct CannonRunResult {
  DenseTensor result;        ///< Gathered full result array.
  PhaseResult timing;        ///< Simulated comm/compute time.
  std::uint64_t peak_rank_bytes = 0;  ///< Max bytes resident on any rank.
};

/// Executes one contraction node with the given Cannon choice.  The
/// operand tensors are full arrays (the executor scatters them into the
/// schedule's block placement; initial distribution is free per §3.3).
/// Requires a full triplet (i, j, k all assigned) and extents divisible
/// by the grid edge.
CannonRunResult run_cannon(const Network& net, const ProcGrid& grid,
                           const IndexSpace& space,
                           const ContractionNode& node,
                           const CannonChoice& choice,
                           const DenseTensor& left_full,
                           const DenseTensor& right_full);

/// Execution parameters of a replicate–compute–reduce contraction: one
/// operand is gathered whole onto every rank, the other stays blocked by
/// \p stationary_dist, each rank contracts its block against the full
/// copy, and the partial results are combined along \p reduce_dim
/// (0 = no reduction needed) into \p result_dist.
struct ReplicatedSpec {
  bool replicate_right = true;
  Distribution stationary_dist;
  Distribution result_dist;
  int reduce_dim = 0;
};

/// Executes one contraction with the replicated template: allgather
/// timing + per-rank block×full contraction + reduce-scatter timing,
/// with real numerics throughout.
CannonRunResult run_replicated(const Network& net, const ProcGrid& grid,
                               const IndexSpace& space,
                               const ContractionNode& node,
                               const ReplicatedSpec& spec,
                               const DenseTensor& left_full,
                               const DenseTensor& right_full);

/// How one tree node executes in run_tree.
struct ExecChoice {
  bool replicated = false;
  CannonChoice cannon{};    ///< Used when !replicated.
  ReplicatedSpec repl{};    ///< Used when replicated.
};

/// Per-tree execution: runs every contraction node of \p tree through
/// run_cannon / run_replicated with the given per-node choices (keyed by
/// NodeId), chaining results; kReduce nodes are evaluated with the
/// reference reducer (their cost is a local sum when the reduced
/// dimensions are unsplit under the chosen distributions, which the
/// full-triplet requirement guarantees for the chained value).  Returns
/// the final tensor and the summed contraction timings.
struct TreeRunResult {
  DenseTensor result;
  PhaseResult timing;
};
TreeRunResult run_tree(const Network& net, const ProcGrid& grid,
                       const ContractionTree& tree,
                       const std::map<NodeId, ExecChoice>& choices,
                       const std::map<std::string, DenseTensor>& inputs);

/// Convenience overload: Cannon choices only.
TreeRunResult run_tree(const Network& net, const ProcGrid& grid,
                       const ContractionTree& tree,
                       const std::map<NodeId, CannonChoice>& choices,
                       const std::map<std::string, DenseTensor>& inputs);

}  // namespace tce
