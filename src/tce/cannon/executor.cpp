#include "tce/cannon/executor.hpp"

#include <algorithm>

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/common/json.hpp"
#include "tce/obs/log.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/obs/trace.hpp"
#include "tce/tensor/kernel.hpp"
#include "tce/tensor/matmul.hpp"

namespace tce {

namespace {

/// Logs the failure (with the active local-kernel configuration, so a
/// flight-recorder dump answers "which GEMM path and tiles were live
/// when the executor died?") and throws.
[[noreturn]] void fail_executor(const std::string& what) {
  if (obs::log_enabled(obs::LogLevel::kError)) {
    const KernelConfig cfg = kernel_config();
    obs::log_event(obs::LogLevel::kError, "cannon", "executor.fail",
                   json::ObjectWriter()
                       .field("error", what)
                       .field("kernel", kernel_kind_name(cfg.kind))
                       .field("kernel_isa", gemm_microkernel_isa())
                       .field("tile_mc", cfg.tiles.mc)
                       .field("tile_kc", cfg.tiles.kc)
                       .field("tile_nc", cfg.tiles.nc)
                       .str());
  }
  throw Error(what);
}

/// Per-dimension block coordinate assignment: index -> block coordinate,
/// where the index's extent is split `edge` ways.
struct SplitSpec {
  IndexId index;
  std::uint32_t block;  // in [0, edge)
};

/// Block range of \p ref where the dims named in \p splits take the given
/// block, all other dims whole.
BlockRange range_for(const TensorRef& ref, const IndexSpace& space,
                     std::uint32_t edge,
                     const std::vector<SplitSpec>& splits) {
  BlockRange r;
  for (IndexId d : ref.dims) {
    const std::uint64_t n = space.extent(d);
    const SplitSpec* split = nullptr;
    for (const auto& s : splits) {
      if (s.index == d) split = &s;
    }
    if (split == nullptr) {
      r.lo.push_back(0);
      r.hi.push_back(n);
    } else {
      if (n % edge != 0) {
        fail_executor("run_cannon: extent of index '" + space.name(d) +
                      "' (" + std::to_string(n) +
                      ") must divide the grid edge " +
                      std::to_string(edge));
      }
      const std::uint64_t chunk = n / edge;
      r.lo.push_back(split->block * chunk);
      r.hi.push_back((split->block + 1) * chunk);
    }
  }
  return r;
}

/// The block triple (bi, bj, bk) processed by logical processor (w1, w2)
/// at step s — see the file comment in executor.hpp.
struct Triple {
  std::uint32_t bi, bj, bk;
};

Triple triple_at(const CannonChoice& c, std::uint32_t e, std::uint32_t w1,
                 std::uint32_t w2, std::uint32_t s) {
  const std::uint32_t moving = (w1 + w2 + s) % e;
  if (c.rot == c.k) return {w1, w2, moving};
  if (c.rot == c.i) return {moving, w2, w1};
  return {w1, moving, w2};  // rot == j
}

/// Network::run_phases, plus a histogram sample per phase duration
/// ("cannon.phase_s") when the registry is recording — per-phase
/// spread is what the p50/p99 of an execution's rotation steps read.
PhaseResult run_phases_observed(const Network& net,
                                const std::vector<Phase>& phases) {
  if (!obs::metrics_enabled()) return net.run_phases(phases);
  PhaseResult total;
  for (const Phase& p : phases) {
    const PhaseResult r = net.run_phase(p);
    obs::observe("cannon.phase_s", r.total_s());
    total.comm_s += r.comm_s;
    total.compute_s += r.compute_s;
  }
  return total;
}

}  // namespace

CannonRunResult run_cannon(const Network& net, const ProcGrid& grid,
                           const IndexSpace& space,
                           const ContractionNode& node,
                           const CannonChoice& choice,
                           const DenseTensor& left_full,
                           const DenseTensor& right_full) {
  if (node.kind != ContractionNode::Kind::kContraction ||
      !node.batch_indices.empty()) {
    fail_executor(
        "run_cannon: node is not a Cannon-representable contraction");
  }
  if (choice.i == kNoIndex || choice.j == kNoIndex ||
      choice.k == kNoIndex) {
    fail_executor(
        "run_cannon: the numeric executor requires a full (i,j,k) triplet");
  }
  TCE_EXPECTS(net.spec().procs() == grid.procs);

  const std::uint32_t e = grid.edge;
  const obs::TraceSpan run_span(
      obs::trace_enabled() ? "cannon.run " + node.tensor.name
                           : std::string(),
      "cannon");
  obs::count("cannon.runs");
  obs::count("cannon.steps", e);
  if (obs::trace_enabled()) {
    // The initial skewed alignment (blocks are extracted pre-aligned to
    // their step-0 triple — Cannon's skew).
    obs::trace_instant(
        "cannon.skew " + node.tensor.name, "cannon",
        json::ObjectWriter()
            .field("rotation_index", space.name(choice.rot))
            .field("transposed", choice.transposed)
            .str());
  }
  // Physical rank of logical processor (w1, w2): the transposed
  // orientation swaps the grid dimensions.
  auto phys = [&](std::uint32_t w1, std::uint32_t w2) {
    return choice.transposed ? grid.rank(w2, w1) : grid.rank(w1, w2);
  };

  // Reconstruct symbolic refs for the operands from their labeled dims.
  TensorRef a_ref{"left", left_full.dims()};
  TensorRef b_ref{"right", right_full.dims()};
  const TensorRef& c_ref = node.tensor;

  // Sanity: triplet indices belong to the right arrays.
  TCE_EXPECTS(node.left_indices.contains(choice.i));
  TCE_EXPECTS(node.right_indices.contains(choice.j));
  TCE_EXPECTS(node.sum_indices.contains(choice.k));

  // Per-logical-processor block state, flattened w1 * e + w2.
  const std::size_t np = static_cast<std::size_t>(e) * e;
  std::vector<DenseTensor> a_blk(np), b_blk(np), c_blk(np);
  std::vector<Triple> coords(np);

  for (std::uint32_t w1 = 0; w1 < e; ++w1) {
    for (std::uint32_t w2 = 0; w2 < e; ++w2) {
      const Triple t = triple_at(choice, e, w1, w2, 0);
      const std::size_t p = static_cast<std::size_t>(w1) * e + w2;
      coords[p] = t;
      a_blk[p] = extract_block(
          left_full, range_for(a_ref, space, e,
                               {{choice.i, t.bi}, {choice.k, t.bk}}));
      b_blk[p] = extract_block(
          right_full, range_for(b_ref, space, e,
                                {{choice.k, t.bk}, {choice.j, t.bj}}));
      const BlockRange cr = range_for(
          c_ref, space, e, {{choice.i, t.bi}, {choice.j, t.bj}});
      std::vector<std::uint64_t> cext;
      for (std::size_t d = 0; d < cr.rank(); ++d) {
        cext.push_back(cr.extent(d));
      }
      c_blk[p] = DenseTensor(c_ref.dims, std::move(cext));
    }
  }

  // Per-step per-rank compute: one block triple of the full loop space.
  const std::uint64_t loop_total =
      node.loop_indices().extent_product(space);
  const std::uint64_t flops_per_block =
      checked_mul(2, loop_total / (static_cast<std::uint64_t>(e) * e * e));

  // Which arrays shift, and along which logical dimension (1 → w1−1,
  // 2 → w2−1).  Canonical: left shifts along dim 2, right along dim 1,
  // result along dim 1 (rot=i) or dim 2 (rot=j).
  const bool a_rot = choice.rotates_left();
  const bool b_rot = choice.rotates_right();
  const bool c_rot = choice.rotates_result();

  auto shifted = [&](std::uint32_t w1, std::uint32_t w2,
                     int logical_dim) -> std::size_t {
    if (logical_dim == 1) w1 = (w1 + e - 1) % e;
    if (logical_dim == 2) w2 = (w2 + e - 1) % e;
    return static_cast<std::size_t>(w1) * e + w2;
  };

  std::vector<Phase> phases;
  phases.reserve(e);
  std::uint64_t peak = 0;

  for (std::uint32_t s = 0; s < e; ++s) {
    Phase phase;
    if (obs::trace_enabled()) {
      phase.label = node.tensor.name + " rotate step " +
                    std::to_string(s) + " (rot " +
                    space.name(choice.rot) + ")";
    }
    for (std::uint32_t w1 = 0; w1 < e; ++w1) {
      for (std::uint32_t w2 = 0; w2 < e; ++w2) {
        const std::size_t p = static_cast<std::size_t>(w1) * e + w2;
        contract_blocks_acc(a_blk[p], b_blk[p], node.sum_indices, c_blk[p]);
        phase.compute.push_back({phys(w1, w2), flops_per_block});

        std::uint64_t resident = (a_blk[p].size() + b_blk[p].size() +
                                  c_blk[p].size()) *
                                 sizeof(double);
        std::uint64_t largest_moving = 0;
        if (a_rot) largest_moving = std::max(largest_moving, a_blk[p].size());
        if (b_rot) largest_moving = std::max(largest_moving, b_blk[p].size());
        if (c_rot) largest_moving = std::max(largest_moving, c_blk[p].size());
        peak = std::max(peak, resident + largest_moving * sizeof(double));

        // Emit the shift flows for this step (every step shifts; the last
        // shift returns blocks to their aligned start — the √P-step
        // rotation accounting of §3.2).
        auto emit = [&](const DenseTensor& blk, int logical_dim) {
          const std::size_t q = shifted(w1, w2, logical_dim);
          const std::uint32_t src = phys(w1, w2);
          const std::uint32_t dst =
              phys(static_cast<std::uint32_t>(q / e),
                   static_cast<std::uint32_t>(q % e));
          if (src != dst) {
            phase.flows.push_back({src, dst, blk.size() * sizeof(double)});
          }
        };
        if (a_rot) emit(a_blk[p], 2);
        if (b_rot) emit(b_blk[p], 1);
        if (c_rot) emit(c_blk[p], choice.rot == choice.i ? 1 : 2);
      }
    }
    phases.push_back(std::move(phase));

    // Apply the shifts to the block state.
    auto apply_shift = [&](std::vector<DenseTensor>& blocks,
                           int logical_dim) {
      std::vector<DenseTensor> next(np);
      for (std::uint32_t w1 = 0; w1 < e; ++w1) {
        for (std::uint32_t w2 = 0; w2 < e; ++w2) {
          const std::size_t p = static_cast<std::size_t>(w1) * e + w2;
          next[shifted(w1, w2, logical_dim)] = std::move(blocks[p]);
        }
      }
      blocks = std::move(next);
    };
    if (a_rot) apply_shift(a_blk, 2);
    if (b_rot) apply_shift(b_blk, 1);
    if (c_rot) apply_shift(c_blk, choice.rot == choice.i ? 1 : 2);
    // Track the result blocks' coordinates through their shifts.
    if (c_rot) {
      std::vector<Triple> next(np);
      const int dim = choice.rot == choice.i ? 1 : 2;
      for (std::uint32_t w1 = 0; w1 < e; ++w1) {
        for (std::uint32_t w2 = 0; w2 < e; ++w2) {
          const std::size_t p = static_cast<std::size_t>(w1) * e + w2;
          next[shifted(w1, w2, dim)] = coords[p];
        }
      }
      coords = std::move(next);
    }
  }

  // Gather the result by tracked block coordinates.
  CannonRunResult out;
  out.result = make_tensor(c_ref, space);
  for (std::uint32_t w1 = 0; w1 < e; ++w1) {
    for (std::uint32_t w2 = 0; w2 < e; ++w2) {
      const std::size_t p = static_cast<std::size_t>(w1) * e + w2;
      const BlockRange cr =
          range_for(c_ref, space, e,
                    {{choice.i, coords[p].bi}, {choice.j, coords[p].bj}});
      place_block(c_blk[p], cr, out.result);
    }
  }
  out.timing = run_phases_observed(net, phases);
  out.peak_rank_bytes = peak;
  return out;
}


CannonRunResult run_replicated(const Network& net, const ProcGrid& grid,
                               const IndexSpace& space,
                               const ContractionNode& node,
                               const ReplicatedSpec& spec,
                               const DenseTensor& left_full,
                               const DenseTensor& right_full) {
  if (node.kind != ContractionNode::Kind::kContraction ||
      !node.batch_indices.empty()) {
    fail_executor(
        "run_replicated: node is not a Cannon-representable contraction");
  }
  TCE_EXPECTS(net.spec().procs() == grid.procs);
  const std::uint32_t e = grid.edge;
  const obs::TraceSpan run_span(
      obs::trace_enabled() ? "replicated.run " + node.tensor.name
                           : std::string(),
      "cannon");
  obs::count("cannon.replicated_runs");

  const DenseTensor& stat_full =
      spec.replicate_right ? left_full : right_full;
  const DenseTensor& repl_full =
      spec.replicate_right ? right_full : left_full;
  TensorRef stat_ref{"stationary", stat_full.dims()};
  TCE_EXPECTS_MSG(distribution_valid_for(spec.stationary_dist, stat_ref),
                  "stationary distribution names a missing dimension");
  TCE_EXPECTS_MSG(distribution_valid_for(spec.result_dist, node.tensor),
                  "result distribution names a missing dimension");

  // The partial result before the reduction is split only by the
  // stationary operand's result-side index (the position where the
  // result and stationary distributions agree); the scatter position is
  // a zero-cost relabel applied at gather time.
  auto partial_pos = [&](int d) {
    const IndexId r = spec.result_dist.at(d);
    return (r != kNoIndex && spec.stationary_dist.at(d) == r) ? r
                                                              : kNoIndex;
  };
  const Distribution partial_dist(partial_pos(1), partial_pos(2));

  std::vector<Phase> phases;

  // Allgather of the replicated operand (timing; numerically every rank
  // simply reads repl_full).
  {
    const std::uint64_t total = checked_mul(repl_full.size(), sizeof(double));
    const std::uint64_t block =
        std::max<std::uint64_t>(total / grid.procs, 1);
    for (std::uint32_t dist = 1; dist < grid.procs; dist *= 2) {
      Phase phase;
      if (obs::trace_enabled()) {
        phase.label = node.tensor.name + " allgather (distance " +
                      std::to_string(dist) + ")";
      }
      for (std::uint32_t r = 0; r < grid.procs; ++r) {
        if ((r ^ dist) < grid.procs) {
          phase.flows.push_back({r, r ^ dist, checked_mul(block, dist)});
        }
      }
      phases.push_back(std::move(phase));
    }
  }

  // Local compute: each rank contracts its stationary block against the
  // replicated operand (every rank holds it whole; the contraction reads
  // the k-slice matching the stationary block's summation range).
  TensorRef repl_ref{"replicated", repl_full.dims()};
  const IndexSet repl_dims = repl_ref.index_set();
  const Distribution repl_slice_dist(
      repl_dims.contains(spec.stationary_dist.at(1))
          ? spec.stationary_dist.at(1)
          : kNoIndex,
      repl_dims.contains(spec.stationary_dist.at(2))
          ? spec.stationary_dist.at(2)
          : kNoIndex);

  CannonRunResult out;
  out.result = make_tensor(node.tensor, space);
  std::uint64_t peak = 0;
  Phase compute_phase;
  if (obs::trace_enabled()) {
    compute_phase.label = node.tensor.name + " compute";
  }
  const int split_dims =
      (spec.stationary_dist.at(1) != kNoIndex ? 1 : 0) +
      (spec.stationary_dist.at(2) != kNoIndex ? 1 : 0);
  std::uint64_t per_rank_flops =
      checked_mul(2, node.loop_indices().extent_product(space));
  for (int d = 0; d < split_dims; ++d) per_rank_flops /= e;

  for (std::uint32_t z1 = 0; z1 < e; ++z1) {
    for (std::uint32_t z2 = 0; z2 < e; ++z2) {
      const BlockRange sr = block_range(stat_ref, spec.stationary_dist,
                                        space, grid, z1, z2);
      DenseTensor stat_blk = extract_block(stat_full, sr);
      DenseTensor repl_blk = extract_block(
          repl_full,
          block_range(repl_ref, repl_slice_dist, space, grid, z1, z2));
      const BlockRange pr = block_range(node.tensor, partial_dist, space,
                                        grid, z1, z2);
      std::vector<std::uint64_t> pext;
      for (std::size_t d = 0; d < pr.rank(); ++d) {
        pext.push_back(pr.extent(d));
      }
      DenseTensor partial(node.tensor.dims, std::move(pext));
      if (spec.replicate_right) {
        contract_blocks_acc(stat_blk, repl_blk, node.sum_indices,
                            partial);
      } else {
        contract_blocks_acc(repl_blk, stat_blk, node.sum_indices,
                            partial);
      }
      compute_phase.compute.push_back({grid.rank(z1, z2),
                                       per_rank_flops});
      peak = std::max(peak, (stat_blk.size() + repl_full.size() +
                             partial.size()) *
                                sizeof(double));

      // Accumulate into the full result; replicas (grid dims that split
      // nothing of the stationary operand and carry no reduction) only
      // contribute once.
      bool contribute = true;
      if (spec.stationary_dist.at(1) == kNoIndex && z1 != 0) {
        contribute = false;
      }
      if (spec.stationary_dist.at(2) == kNoIndex && z2 != 0) {
        contribute = false;
      }
      if (contribute) accumulate_block(partial, pr, out.result);
    }
  }
  phases.push_back(std::move(compute_phase));

  // Reduce-scatter of the partials (timing; the numeric sum happened in
  // the accumulation above).
  if (spec.reduce_dim != 0) {
    TensorRef res_ref = node.tensor;
    const std::uint64_t partial_bytes =
        dist_size(res_ref, partial_dist, IndexSet(), space, grid) *
        sizeof(double);
    std::uint64_t payload = partial_bytes / 2;
    auto rank_in_line = [&](std::uint32_t line, std::uint32_t pos) {
      return spec.reduce_dim == 1 ? grid.rank(pos, line)
                                  : grid.rank(line, pos);
    };
    for (std::uint32_t dist = e / 2; dist >= 1; dist /= 2) {
      Phase phase;
      if (obs::trace_enabled()) {
        phase.label = node.tensor.name + " reduce-scatter (distance " +
                      std::to_string(dist) + ")";
      }
      for (std::uint32_t line = 0; line < e; ++line) {
        for (std::uint32_t pos = 0; pos < e; ++pos) {
          phase.flows.push_back({rank_in_line(line, pos),
                                 rank_in_line(line, pos ^ dist),
                                 std::max<std::uint64_t>(payload, 1)});
        }
      }
      phases.push_back(std::move(phase));
      payload /= 2;
      if (dist == 1) break;
    }
  }

  out.timing = run_phases_observed(net, phases);
  out.peak_rank_bytes = peak;
  return out;
}

TreeRunResult run_tree(const Network& net, const ProcGrid& grid,
                       const ContractionTree& tree,
                       const std::map<NodeId, ExecChoice>& choices,
                       const std::map<std::string, DenseTensor>& inputs) {
  std::map<NodeId, DenseTensor> values;
  TreeRunResult out;

  for (NodeId id : tree.post_order()) {
    const ContractionNode& n = tree.node(id);
    switch (n.kind) {
      case ContractionNode::Kind::kInput: {
        auto it = inputs.find(n.tensor.name);
        if (it == inputs.end()) {
          fail_executor("run_tree: missing input '" + n.tensor.name +
                        "'");
        }
        values.emplace(id, it->second);
        break;
      }
      case ContractionNode::Kind::kContraction: {
        ExecChoice choice;
        auto it = choices.find(id);
        if (it != choices.end()) {
          choice = it->second;
        } else {
          // Default: the first fully-assigned Cannon triplet.
          bool found = false;
          for (const auto& c : enumerate_cannon_choices(n)) {
            if (c.i != kNoIndex && c.j != kNoIndex && c.k != kNoIndex) {
              choice.cannon = c;
              found = true;
              break;
            }
          }
          if (!found) {
            fail_executor("run_tree: node '" + n.tensor.name +
                          "' admits no fully-assigned Cannon triplet");
          }
        }
        CannonRunResult r =
            choice.replicated
                ? run_replicated(net, grid, tree.space(), n, choice.repl,
                                 values.at(n.left), values.at(n.right))
                : run_cannon(net, grid, tree.space(), n, choice.cannon,
                             values.at(n.left), values.at(n.right));
        out.timing.comm_s += r.timing.comm_s;
        out.timing.compute_s += r.timing.compute_s;
        values.emplace(id, std::move(r.result));
        break;
      }
      case ContractionNode::Kind::kReduce: {
        // A pure reduction over locally complete data: modeled as local
        // compute (one add per input element per processor share).
        values.emplace(id, einsum_reduce(values.at(n.left), n.tensor.dims));
        out.timing.compute_s +=
            static_cast<double>(tree.flops(id) / grid.procs) /
            net.spec().flops_per_proc;
        break;
      }
    }
    if (n.left != kNoNode) values.erase(n.left);
    if (n.right != kNoNode) values.erase(n.right);
  }
  out.result = std::move(values.at(tree.root()));
  return out;
}

TreeRunResult run_tree(const Network& net, const ProcGrid& grid,
                       const ContractionTree& tree,
                       const std::map<NodeId, CannonChoice>& choices,
                       const std::map<std::string, DenseTensor>& inputs) {
  std::map<NodeId, ExecChoice> exec;
  for (const auto& [id, c] : choices) {
    ExecChoice e;
    e.cannon = c;
    exec.emplace(id, e);
  }
  return run_tree(net, grid, tree, exec, inputs);
}

}  // namespace tce
