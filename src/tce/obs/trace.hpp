#pragma once
/// \file trace.hpp
/// Chrome/Perfetto trace-event emitter (the `trace_event` JSON format:
/// chrome://tracing, https://ui.perfetto.dev).  Off by default; every
/// entry point checks one relaxed atomic flag first, so instrumented
/// hot loops cost a predicted branch when tracing is disabled.
///
/// Two process tracks keep wall time and simulated time apart:
///  - pid 1 "tcemin (wall clock)" — real elapsed time: DP node spans,
///    characterization, verification.  Timestamps come from a steady
///    clock, zeroed at trace_start().
///  - pid 2 "simnet (simulated time)" — the network simulator's fluid
///    clock: phases (tid 1), compute (tid 2), individual flows
///    (tid 10+i).  The emitter keeps a cursor (sim_now_s/sim_advance)
///    that instrumented simulations move forward, so consecutive
///    phases lay out end to end on the timeline.
///
/// Capture paths: `tcemin plan --trace out.json`, or set
/// `TCE_TRACE=<path>` in the environment — any binary linking tce_obs
/// then records from startup and writes the file at exit.
/// Schema and how-to: docs/OBSERVABILITY.md.

#include <cstdint>
#include <string>
#include <string_view>

namespace tce::obs {

/// True while the emitter is recording.  Call sites must check this
/// before building dynamic event names or args strings so the disabled
/// path allocates nothing.
bool trace_enabled() noexcept;

/// Starts recording; the trace is written to \p path by trace_stop()
/// (or at process exit for the TCE_TRACE env path).  Clears any
/// previously buffered events and re-zeroes both clocks.
void trace_start(const std::string& path);

/// Stops recording and writes the buffered trace to the path given to
/// trace_start().  No-op when not recording.
void trace_stop();

/// The full trace document rendered from the current buffer (without
/// stopping).  Mainly for tests.
std::string trace_json();

/// Microseconds of wall time since trace_start() (0 when disabled).
std::uint64_t trace_now_us() noexcept;

// --- wall-clock track (pid 1) -----------------------------------------

/// Opens a duration span ("ph":"B"); pair with trace_end().  Prefer
/// TraceSpan, which cannot unbalance the stream.
void trace_begin(std::string_view name, std::string_view cat,
                 const std::string& args_json = std::string());

/// Closes the innermost open span ("ph":"E").
void trace_end();

/// One complete event ("ph":"X") with explicit start and duration.
void trace_complete(std::string_view name, std::string_view cat,
                    std::uint64_t ts_us, std::uint64_t dur_us,
                    const std::string& args_json = std::string());

/// One instant event ("ph":"i") at the current wall time.
void trace_instant(std::string_view name, std::string_view cat,
                   const std::string& args_json = std::string());

// --- simulated-time track (pid 2) -------------------------------------

/// Current position of the simulated-time cursor, in seconds.
double sim_now_s() noexcept;

/// Moves the simulated-time cursor forward by \p s seconds (no event).
void sim_advance(double s) noexcept;

/// One complete event on the simulated track; \p start_s is absolute
/// simulated seconds (use sim_now_s() + offset).
void trace_sim_complete(std::string_view name, std::string_view cat,
                        int tid, double start_s, double dur_s,
                        const std::string& args_json = std::string());

/// One instant event on the simulated track at \p at_s.
void trace_sim_instant(std::string_view name, std::string_view cat,
                       int tid, double at_s,
                       const std::string& args_json = std::string());

/// RAII wall-clock span: emits "B" on construction and "E" on
/// destruction when tracing is enabled, nothing otherwise.
class TraceSpan {
 public:
  TraceSpan(std::string_view name, std::string_view cat,
            const std::string& args_json = std::string());
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
};

}  // namespace tce::obs
