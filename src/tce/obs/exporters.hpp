#pragma once
/// \file exporters.hpp
/// Renders the metrics registry for machines: Prometheus/OpenMetrics
/// text exposition and the `tce-metrics/1` JSON snapshot schema
/// (docs/FORMATS.md).  Both read metrics_snapshot(), so they inherit
/// its guarantees (sorted names, exact histogram merge).
///
/// Surfaces: `tcemin plan --metrics <file>`, `--metrics <file>` on the
/// bench drivers, and `TCE_METRICS=<path>` in the environment — the
/// env path enables the registry at startup for any binary linking
/// tce_obs and writes the file at exit.  The file format follows the
/// extension: a path ending in `.json` gets the tce-metrics/1
/// snapshot, anything else the Prometheus text form.

#include <string>

namespace tce::obs {

/// Prometheus text exposition of every recorded metric.  Names are
/// sanitized (`opt.search_wall_s` → `tce_opt_search_wall_s`, counters
/// get a `_total` suffix) and each `# HELP` line carries the original
/// dotted registry name.  Histograms render cumulatively: one
/// `_bucket{le="..."}` line per non-empty log2 bucket (upper bound,
/// exact powers of two), a `+Inf` bucket, `_sum` and `_count`.
std::string metrics_prometheus();

/// The tce-metrics/1 JSON document:
///   {"schema":"tce-metrics/1","metrics":{...}}
/// where "metrics" is exactly metrics_json() — counters as integers,
/// gauges as numbers, histograms as objects with quantiles and the
/// sparse bucket list.
std::string metrics_snapshot_json();

/// Writes the registry to \p path — tce-metrics/1 when the path ends
/// in ".json", Prometheus text otherwise.  Returns false (and sets
/// \p error when non-null) if the file cannot be written.
bool write_metrics_file(const std::string& path,
                        std::string* error = nullptr);

}  // namespace tce::obs
