#include "tce/obs/log.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "tce/common/annotations.hpp"
#include "tce/common/json.hpp"

namespace tce::obs {

namespace {

/// Gate value meaning "no sink wants anything" — above every LogLevel.
constexpr int kGateOff = 100;

/// The lowest level any sink records, or kGateOff.  log_enabled() is
/// one relaxed load of this; it is recomputed under the logger mutex
/// whenever a sink opens, closes, or the recorder toggles.
std::atomic<int> g_gate{kGateOff};

struct Logger {
  Mutex mu;
  std::ofstream sink TCE_GUARDED_BY(mu);
  bool sink_open TCE_GUARDED_BY(mu) = false;
  LogLevel sink_level TCE_GUARDED_BY(mu) = LogLevel::kInfo;
  bool recorder_on TCE_GUARDED_BY(mu) = false;
  std::array<std::string, kFlightRecorderCapacity> ring TCE_GUARDED_BY(mu);
  std::size_t ring_size TCE_GUARDED_BY(mu) = 0;
  std::size_t ring_next TCE_GUARDED_BY(mu) = 0;

  void recompute_gate() TCE_REQUIRES(mu) {
    int gate = kGateOff;
    if (sink_open) gate = static_cast<int>(sink_level);
    if (recorder_on) gate = static_cast<int>(LogLevel::kDebug);
    g_gate.store(gate, std::memory_order_relaxed);
  }
};

Logger& logger() {
  static Logger l;
  return l;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Opens the file sink at startup when TCE_LOG names a path
/// (TCE_LOG_LEVEL filters it) and closes it at exit — zero-code-change
/// capture for any binary linking tce_obs.  The constructor touches
/// logger() first so the function-local static outlives this object.
struct EnvLog {
  EnvLog() {
    logger();
    const char* path = std::getenv("TCE_LOG");
    if (path == nullptr || path[0] == '\0') return;
    const char* level = std::getenv("TCE_LOG_LEVEL");
    log_open(path, parse_log_level(level == nullptr ? "" : level,
                                   LogLevel::kInfo));
  }
  ~EnvLog() { log_close(); }
};
const EnvLog g_env_log;

}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

LogLevel parse_log_level(std::string_view name,
                         LogLevel fallback) noexcept {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return fallback;
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         g_gate.load(std::memory_order_relaxed);
}

void log_event(LogLevel level, std::string_view component,
               std::string_view event, const std::string& fields_json) {
  if (!log_enabled(level)) return;
  json::ObjectWriter line;
  line.field("schema", "tce-log/1")
      .field("ts_us", now_us())
      .field("level", log_level_name(level))
      .field("component", std::string(component))
      .field("event", std::string(event));
  if (!fields_json.empty()) line.raw("fields", fields_json);
  std::string rendered = line.str();

  Logger& l = logger();
  const MutexLock lock(l.mu);
  if (l.recorder_on) {
    l.ring[l.ring_next] = rendered;
    l.ring_next = (l.ring_next + 1) % kFlightRecorderCapacity;
    if (l.ring_size < kFlightRecorderCapacity) ++l.ring_size;
  }
  if (l.sink_open && level >= l.sink_level) {
    l.sink << rendered << "\n";
    l.sink.flush();
  }
}

void log_open(const std::string& path, LogLevel min_level) {
  Logger& l = logger();
  const MutexLock lock(l.mu);
  if (l.sink_open) l.sink.close();
  l.sink.clear();
  l.sink.open(path, std::ios::app);
  l.sink_open = l.sink.is_open();
  l.sink_level = min_level;
  l.recompute_gate();
}

void log_close() {
  Logger& l = logger();
  const MutexLock lock(l.mu);
  if (l.sink_open) l.sink.close();
  l.sink_open = false;
  l.recompute_gate();
}

void flight_recorder_enable(bool on) noexcept {
  Logger& l = logger();
  const MutexLock lock(l.mu);
  l.recorder_on = on;
  l.recompute_gate();
}

void flight_recorder_clear() noexcept {
  Logger& l = logger();
  const MutexLock lock(l.mu);
  for (std::string& line : l.ring) line.clear();
  l.ring_size = 0;
  l.ring_next = 0;
}

std::string flight_recorder_dump() {
  Logger& l = logger();
  const MutexLock lock(l.mu);
  std::string out;
  const std::size_t first =
      (l.ring_next + kFlightRecorderCapacity - l.ring_size) %
      kFlightRecorderCapacity;
  for (std::size_t i = 0; i < l.ring_size; ++i) {
    out += l.ring[(first + i) % kFlightRecorderCapacity];
    out += "\n";
  }
  return out;
}

}  // namespace tce::obs
