#include "tce/obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "tce/common/annotations.hpp"
#include "tce/common/json.hpp"

namespace tce::obs {

namespace {

constexpr int kWallPid = 1;
constexpr int kSimPid = 2;
constexpr int kWallTid = 1;

std::atomic<bool> g_enabled{false};

struct Tracer {
  Mutex mu;
  std::vector<std::string> events TCE_GUARDED_BY(mu);
  std::string path TCE_GUARDED_BY(mu);
  std::chrono::steady_clock::time_point start TCE_GUARDED_BY(mu);
  double sim_cursor_s TCE_GUARDED_BY(mu) = 0;

  void push(std::string event) TCE_REQUIRES(mu) {
    events.push_back(std::move(event));
  }
};

Tracer& tracer() {
  static Tracer t;
  return t;
}

std::uint64_t wall_us_locked(const Tracer& t) TCE_REQUIRES(t.mu) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t.start)
          .count());
}

/// Renders one trace event.  \p ts_json is the pre-rendered "ts" value
/// (integer µs on the wall track, fractional µs on the sim track).
std::string render(std::string_view name, std::string_view cat,
                   const char* ph, const std::string& ts_json, int pid,
                   int tid, const std::string& args_json,
                   std::uint64_t dur_us = 0, bool has_dur = false,
                   const std::string& dur_json = std::string()) {
  json::ObjectWriter ev;
  if (!name.empty()) ev.field("name", std::string(name));
  if (!cat.empty()) ev.field("cat", std::string(cat));
  ev.field("ph", ph);
  ev.raw("ts", ts_json);
  if (has_dur) {
    ev.raw("dur", dur_json.empty() ? std::to_string(dur_us) : dur_json);
  }
  ev.field("pid", pid);
  ev.field("tid", tid);
  if (ph[0] == 'i') ev.field("s", "t");  // instant scope: thread
  if (!args_json.empty()) ev.raw("args", args_json);
  return ev.str();
}

void push_metadata(Tracer& t, int pid, const char* process_name)
    TCE_REQUIRES(t.mu) {
  t.push(json::ObjectWriter()
             .field("name", "process_name")
             .field("ph", "M")
             .field("pid", pid)
             .field("tid", 0)
             .raw("args", json::ObjectWriter()
                              .field("name", process_name)
                              .str())
             .str());
}

/// Converts simulated seconds to a fractional-microsecond "ts" value.
std::string sim_ts(double s) { return json::number(s * 1e6); }

/// Starts tracing at process startup when TCE_TRACE names a file, and
/// flushes it at exit — zero-code-change capture for tests and tools.
struct EnvTrace {
  EnvTrace() {
    const char* path = std::getenv("TCE_TRACE");
    if (path != nullptr && path[0] != '\0') trace_start(path);
  }
  ~EnvTrace() { trace_stop(); }
};
const EnvTrace g_env_trace;

}  // namespace

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void trace_start(const std::string& path) {
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  t.events.clear();
  t.path = path;
  t.start = std::chrono::steady_clock::now();
  t.sim_cursor_s = 0;
  push_metadata(t, kWallPid, "tcemin (wall clock)");
  push_metadata(t, kSimPid, "simnet (simulated time)");
  g_enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  if (!trace_enabled()) return;
  const std::string doc = trace_json();
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  g_enabled.store(false, std::memory_order_relaxed);
  if (!t.path.empty()) {
    std::ofstream out(t.path);
    out << doc << "\n";
  }
  t.events.clear();
}

std::string trace_json() {
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  json::ArrayWriter events;
  for (const std::string& e : t.events) events.element(e);
  return json::ObjectWriter()
      .field("displayTimeUnit", "ms")
      .raw("traceEvents", events.str())
      .str();
}

std::uint64_t trace_now_us() noexcept {
  if (!trace_enabled()) return 0;
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  return wall_us_locked(t);
}

void trace_begin(std::string_view name, std::string_view cat,
                 const std::string& args_json) {
  if (!trace_enabled()) return;
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  t.push(render(name, cat, "B", std::to_string(wall_us_locked(t)),
                kWallPid, kWallTid, args_json));
}

void trace_end() {
  if (!trace_enabled()) return;
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  t.push(render({}, {}, "E", std::to_string(wall_us_locked(t)), kWallPid,
                kWallTid, std::string()));
}

void trace_complete(std::string_view name, std::string_view cat,
                    std::uint64_t ts_us, std::uint64_t dur_us,
                    const std::string& args_json) {
  if (!trace_enabled()) return;
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  t.push(render(name, cat, "X", std::to_string(ts_us), kWallPid,
                kWallTid, args_json, dur_us, /*has_dur=*/true));
}

void trace_instant(std::string_view name, std::string_view cat,
                   const std::string& args_json) {
  if (!trace_enabled()) return;
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  t.push(render(name, cat, "i", std::to_string(wall_us_locked(t)),
                kWallPid, kWallTid, args_json));
}

double sim_now_s() noexcept {
  if (!trace_enabled()) return 0;
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  return t.sim_cursor_s;
}

void sim_advance(double s) noexcept {
  if (!trace_enabled()) return;
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  t.sim_cursor_s += s;
}

void trace_sim_complete(std::string_view name, std::string_view cat,
                        int tid, double start_s, double dur_s,
                        const std::string& args_json) {
  if (!trace_enabled()) return;
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  t.push(render(name, cat, "X", sim_ts(start_s), kSimPid, tid,
                args_json, 0, /*has_dur=*/true, sim_ts(dur_s)));
}

void trace_sim_instant(std::string_view name, std::string_view cat,
                       int tid, double at_s,
                       const std::string& args_json) {
  if (!trace_enabled()) return;
  Tracer& t = tracer();
  MutexLock lock(t.mu);
  t.push(render(name, cat, "i", sim_ts(at_s), kSimPid, tid, args_json));
}

TraceSpan::TraceSpan(std::string_view name, std::string_view cat,
                     const std::string& args_json)
    : active_(trace_enabled()) {
  if (active_) trace_begin(name, cat, args_json);
}

TraceSpan::~TraceSpan() {
  if (active_) trace_end();
}

}  // namespace tce::obs
