#pragma once
/// \file metrics.hpp
/// Process-wide metrics registry: named counters, gauges and
/// histograms, off by default.  The design goal is a no-op mode cheap
/// enough to leave the instrumentation compiled into hot loops — every
/// entry point checks one relaxed atomic flag and returns before
/// touching a string, a lock, or the heap.
///
/// Names form a dotted hierarchy documented in docs/OBSERVABILITY.md,
/// e.g. `opt.candidates`, `simnet.flows`, `cannon.rotations`,
/// `verify.rule.cost.total`.  Counters accumulate, gauges keep the last
/// value, histograms keep count/sum/min/max (enough for means and
/// ranges without binning).
///
/// Enable with `metrics_enable(true)` (the CLI's `--stats`, the bench
/// drivers' `--json`) or scoped via ScopedMetrics in tests.
///
/// Thread safety: every entry point may be called from any thread.
/// The registry is sharded by name hash (16 shards, each its own mutex
/// and map), so concurrent recorders — e.g. the optimizer's worker
/// threads emitting per-node counts — contend only when hitting the
/// same shard.  Counter totals are exact under concurrency; a snapshot
/// is per-shard consistent but not an atomic cut across shards.  The
/// disabled path is unchanged: one relaxed atomic load, no locks, no
/// allocation.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tce::obs {

/// True when the registry is recording.  Call sites that must build a
/// dynamic name (e.g. "verify.rule." + id) should check this first so
/// the disabled path allocates nothing.
bool metrics_enabled() noexcept;

/// Turns recording on or off.  Counts recorded while enabled persist
/// until metrics_reset().
void metrics_enable(bool on) noexcept;

/// Drops every recorded value (enabled state is unchanged).
void metrics_reset() noexcept;

/// Adds \p delta to the counter \p name (creating it at zero).
void count(std::string_view name, std::uint64_t delta = 1) noexcept;

/// Sets the gauge \p name to \p value.
void gauge(std::string_view name, double value) noexcept;

/// Records one observation into the histogram \p name.
void observe(std::string_view name, double value) noexcept;

/// One recorded metric.  `kind` discriminates which fields are
/// meaningful: counters use `total`, gauges `last`, histograms
/// `count/sum/min/max`.
struct Metric {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::uint64_t total = 0;  // counters
  double last = 0;          // gauges
  std::uint64_t count = 0;  // histograms
  double sum = 0;
  double min = 0;
  double max = 0;
};

/// Snapshot of every metric recorded so far, sorted by name.
std::map<std::string, Metric> metrics_snapshot();

/// Value of one counter (0 when absent or not a counter).
std::uint64_t counter_value(std::string_view name);

/// All metrics rendered as a JSON object: counters as integers, gauges
/// as numbers, histograms as {"count":..,"sum":..,"min":..,"max":..}.
std::string metrics_json();

/// Human-readable table of all metrics, one `name  value` line each.
std::string metrics_table();

/// Enables the registry for a scope; restores the previous enabled
/// state on destruction.  Resets recorded values on entry by default.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(bool reset = true);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  bool prev_;
};

}  // namespace tce::obs
