#pragma once
/// \file metrics.hpp
/// Process-wide metrics registry: named counters, gauges and
/// histograms, off by default.  The design goal is a no-op mode cheap
/// enough to leave the instrumentation compiled into hot loops — every
/// entry point checks one relaxed atomic flag and returns before
/// touching a string, a lock, or the heap.
///
/// Names form a dotted hierarchy documented in docs/OBSERVABILITY.md,
/// e.g. `opt.candidates`, `simnet.flows`, `cannon.rotations`,
/// `verify.rule.cost.total`.  Counters accumulate, gauges keep the last
/// value; histograms are log2-bucketed (64 fixed buckets) and keep
/// exact count/sum/min/max alongside the bucket counts, so quantile
/// estimates (`Metric::quantile`) come out with a documented error of
/// at most one bucket boundary (a factor of two), clamped into the
/// exact observed [min, max].
///
/// Enable with `metrics_enable(true)` (the CLI's `--stats`/`--metrics`,
/// the bench drivers' `--json`/`--metrics`, the `TCE_METRICS` env
/// capture) or scoped via ScopedMetrics in tests.
///
/// Thread safety: every entry point may be called from any thread.
/// The registry is sharded by name hash (16 shards, each its own mutex
/// and map), so concurrent recorders — e.g. the optimizer's worker
/// threads emitting per-node counts — contend only when hitting the
/// same shard.  Histograms are additionally striped internally (8
/// stripes picked by thread id), so concurrent `observe` calls on the
/// same name do not serialize on one mutex; `metrics_snapshot()` merges
/// the stripes exactly — the merged `count` always equals the sum of
/// the merged bucket counts.  Counter totals are exact under
/// concurrency; a snapshot is per-shard consistent but not an atomic
/// cut across shards.  The disabled path is unchanged: one relaxed
/// atomic load, no locks, no allocation.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tce::obs {

/// True when the registry is recording.  Call sites that must build a
/// dynamic name (e.g. "verify.rule." + id) should check this first so
/// the disabled path allocates nothing.
bool metrics_enabled() noexcept;

/// Turns recording on or off.  Counts recorded while enabled persist
/// until metrics_reset().
void metrics_enable(bool on) noexcept;

/// Drops every recorded value (enabled state is unchanged).
void metrics_reset() noexcept;

/// Adds \p delta to the counter \p name (creating it at zero).
void count(std::string_view name, std::uint64_t delta = 1) noexcept;

/// Sets the gauge \p name to \p value.
void gauge(std::string_view name, double value) noexcept;

/// Records one observation into the histogram \p name.
void observe(std::string_view name, double value) noexcept;

/// One recorded metric.  `kind` discriminates which fields are
/// meaningful: counters use `total`, gauges `last`, histograms
/// `count/sum/min/max/buckets`.
struct Metric {
  enum class Kind { kCounter, kGauge, kHistogram };

  /// Histogram geometry: 64 fixed log2 buckets.  Bucket i covers the
  /// half-open value range [2^(i-33), 2^(i-32)) — about 1.2e-10 up to
  /// 2^31 — with everything below (including zero, negatives and NaN)
  /// clamped into bucket 0 and everything at or above 2^31 clamped
  /// into bucket 63.  One bucket per power of two is the quantile
  /// error bound: an estimate is off by at most one bucket boundary.
  static constexpr int kBuckets = 64;
  static constexpr int kBucketBias = 32;

  Kind kind = Kind::kCounter;
  std::uint64_t total = 0;  // counters
  double last = 0;          // gauges
  std::uint64_t count = 0;  // histograms: exact observation count
  double sum = 0;
  double min = 0;
  double max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// The bucket index \p value lands in (see the geometry above).
  static int bucket_index(double value) noexcept;
  /// Inclusive lower / exclusive upper bound of bucket \p i.
  static double bucket_lower(int i) noexcept;
  static double bucket_upper(int i) noexcept;

  /// Quantile estimate for q in [0, 1] (0.5 = p50, 0.99 = p99): the
  /// upper bound of the bucket holding the rank-⌈q·count⌉ observation,
  /// clamped into [min, max].  Exact for point-mass distributions
  /// (the clamp pins it); otherwise within one log2 bucket boundary —
  /// never more than 2x off, and never outside the observed range.
  /// Returns 0 when the histogram is empty.
  double quantile(double q) const noexcept;
};

/// Snapshot of every metric recorded so far, sorted by name.
/// Histogram stripes are merged exactly: for every histogram in the
/// result, `count` equals the sum of `buckets`, even when N threads
/// were observing concurrently (tests/test_obs.cpp pins this).
std::map<std::string, Metric> metrics_snapshot();

/// Value of one counter (0 when absent or not a counter).
std::uint64_t counter_value(std::string_view name);

/// All metrics rendered as a JSON object: counters as integers, gauges
/// as numbers, histograms as {"count","sum","min","max","p50","p90",
/// "p99","buckets"} where buckets is a sparse [[index,count],...] list.
std::string metrics_json();

/// Human-readable table of all metrics, one `name  value` line each.
std::string metrics_table();

/// Enables the registry for a scope; restores the previous enabled
/// state on destruction.  Resets recorded values on entry by default.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(bool reset = true);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  bool prev_;
};

}  // namespace tce::obs
