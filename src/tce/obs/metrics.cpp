#include "tce/obs/metrics.hpp"

#include <array>
#include <atomic>
#include <functional>
#include <utility>

#include "tce/common/annotations.hpp"
#include "tce/common/json.hpp"

namespace tce::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// One shard of the registry.  A transparent comparator lets the hot
/// path look up by string_view without materialising a std::string for
/// names that already exist.
struct Shard {
  Mutex mu;
  std::map<std::string, Metric, std::less<>> entries TCE_GUARDED_BY(mu);

  Metric& entry(std::string_view name, Metric::Kind kind)
      TCE_REQUIRES(mu) {
    auto it = entries.find(name);
    if (it == entries.end()) {
      it = entries.emplace(std::string(name), Metric{}).first;
      it->second.kind = kind;
    }
    return it->second;
  }
};

/// The registry is sharded by name hash so concurrent recorders — the
/// parallel DP search emits per-node counts from worker threads — only
/// contend when they touch the same few names, not on one global lock.
/// A name always maps to the same shard, so totals never split and a
/// merged snapshot needs no deduplication.
struct Registry {
  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards;

  Shard& shard(std::string_view name) {
    return shards[std::hash<std::string_view>{}(name) % kShards];
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void metrics_enable(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void metrics_reset() noexcept {
  for (Shard& s : registry().shards) {
    const MutexLock lock(s.mu);
    s.entries.clear();
  }
}

void count(std::string_view name, std::uint64_t delta) noexcept {
  if (!metrics_enabled()) return;
  Shard& s = registry().shard(name);
  const MutexLock lock(s.mu);
  s.entry(name, Metric::Kind::kCounter).total += delta;
}

void gauge(std::string_view name, double value) noexcept {
  if (!metrics_enabled()) return;
  Shard& s = registry().shard(name);
  const MutexLock lock(s.mu);
  s.entry(name, Metric::Kind::kGauge).last = value;
}

void observe(std::string_view name, double value) noexcept {
  if (!metrics_enabled()) return;
  Shard& s = registry().shard(name);
  const MutexLock lock(s.mu);
  Metric& m = s.entry(name, Metric::Kind::kHistogram);
  if (m.count == 0 || value < m.min) m.min = value;
  if (m.count == 0 || value > m.max) m.max = value;
  ++m.count;
  m.sum += value;
}

std::map<std::string, Metric> metrics_snapshot() {
  // The merged map is sorted by name (std::map), as documented; each
  // shard is copied under its own lock.  The snapshot is not a single
  // atomic cut across shards — fine for reporting, which only runs
  // after the recording phase has quiesced.
  std::map<std::string, Metric> out;
  for (Shard& s : registry().shards) {
    const MutexLock lock(s.mu);
    out.insert(s.entries.begin(), s.entries.end());
  }
  return out;
}

std::uint64_t counter_value(std::string_view name) {
  Shard& s = registry().shard(name);
  const MutexLock lock(s.mu);
  auto it = s.entries.find(name);
  if (it == s.entries.end() || it->second.kind != Metric::Kind::kCounter) {
    return 0;
  }
  return it->second.total;
}

std::string metrics_json() {
  json::ObjectWriter out;
  for (const auto& [name, m] : metrics_snapshot()) {
    switch (m.kind) {
      case Metric::Kind::kCounter:
        out.field(name, m.total);
        break;
      case Metric::Kind::kGauge:
        out.field(name, m.last);
        break;
      case Metric::Kind::kHistogram:
        out.raw(name, json::ObjectWriter()
                          .field("count", m.count)
                          .field("sum", m.sum)
                          .field("min", m.min)
                          .field("max", m.max)
                          .str());
        break;
    }
  }
  return out.str();
}

std::string metrics_table() {
  std::string out;
  for (const auto& [name, m] : metrics_snapshot()) {
    out += "  " + name;
    out.append(name.size() < 40 ? 40 - name.size() : 1, ' ');
    switch (m.kind) {
      case Metric::Kind::kCounter:
        out += std::to_string(m.total);
        break;
      case Metric::Kind::kGauge:
        out += json::number(m.last);
        break;
      case Metric::Kind::kHistogram:
        out += "n=" + std::to_string(m.count) +
               " sum=" + json::number(m.sum) +
               " min=" + json::number(m.min) +
               " max=" + json::number(m.max);
        break;
    }
    out += "\n";
  }
  return out;
}

ScopedMetrics::ScopedMetrics(bool reset) : prev_(metrics_enabled()) {
  if (reset) metrics_reset();
  metrics_enable(true);
}

ScopedMetrics::~ScopedMetrics() { metrics_enable(prev_); }

}  // namespace tce::obs
