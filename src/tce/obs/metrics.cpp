#include "tce/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "tce/common/annotations.hpp"
#include "tce/common/json.hpp"

namespace tce::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// One histogram, striped so concurrent observers of the *same* name do
/// not serialize on a single mutex.  Each stripe keeps its own exact
/// count/sum/min/max and bucket counts; a snapshot merges them, and
/// because every observation lands in exactly one stripe (and bumps
/// both that stripe's count and one bucket under the same lock), the
/// merged count always equals the merged bucket sum.
struct Hist {
  static constexpr std::size_t kStripes = 8;

  struct Stripe {
    mutable Mutex mu;
    std::uint64_t count TCE_GUARDED_BY(mu) = 0;
    double sum TCE_GUARDED_BY(mu) = 0;
    double min TCE_GUARDED_BY(mu) = 0;
    double max TCE_GUARDED_BY(mu) = 0;
    std::array<std::uint64_t, Metric::kBuckets> buckets
        TCE_GUARDED_BY(mu){};
  };

  std::array<Stripe, kStripes> stripes;

  /// Stripe for the calling thread (cached per thread; the hash call
  /// allocates nothing).
  static std::size_t stripe_of_thread() noexcept {
    static thread_local const std::size_t idx =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return idx % kStripes;
  }

  void observe(double value) noexcept {
    Stripe& s = stripes[stripe_of_thread()];
    const MutexLock lock(s.mu);
    if (s.count == 0 || value < s.min) s.min = value;
    if (s.count == 0 || value > s.max) s.max = value;
    ++s.count;
    s.sum += value;
    ++s.buckets[static_cast<std::size_t>(Metric::bucket_index(value))];
  }

  /// Exact-count merge of every stripe into \p m.
  void merge_into(Metric& m) const {
    for (const Stripe& s : stripes) {
      const MutexLock lock(s.mu);
      if (s.count == 0) continue;
      if (m.count == 0 || s.min < m.min) m.min = s.min;
      if (m.count == 0 || s.max > m.max) m.max = s.max;
      m.count += s.count;
      m.sum += s.sum;
      for (int i = 0; i < Metric::kBuckets; ++i) {
        m.buckets[static_cast<std::size_t>(i)] +=
            s.buckets[static_cast<std::size_t>(i)];
      }
    }
  }
};

/// One registry slot.  Counters and gauges mutate under the owning
/// shard's mutex; a histogram lives behind a stable pointer so the
/// shard lock is only held for the name lookup, and the striped
/// histogram synchronizes its own updates.
struct Entry {
  Metric::Kind kind = Metric::Kind::kCounter;
  std::uint64_t total = 0;
  double last = 0;
  std::unique_ptr<Hist> hist;
};

/// One shard of the registry.  A transparent comparator lets the hot
/// path look up by string_view without materialising a std::string for
/// names that already exist.
struct Shard {
  Mutex mu;
  std::map<std::string, Entry, std::less<>> entries TCE_GUARDED_BY(mu);

  Entry& entry(std::string_view name, Metric::Kind kind)
      TCE_REQUIRES(mu) {
    auto it = entries.find(name);
    if (it == entries.end()) {
      it = entries.emplace(std::string(name), Entry{}).first;
      it->second.kind = kind;
    }
    return it->second;
  }
};

/// The registry is sharded by name hash so concurrent recorders — the
/// parallel DP search emits per-node counts from worker threads — only
/// contend when they touch the same few names, not on one global lock.
/// A name always maps to the same shard, so totals never split and a
/// merged snapshot needs no deduplication.
struct Registry {
  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards;

  Shard& shard(std::string_view name) {
    return shards[std::hash<std::string_view>{}(name) % kShards];
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

int Metric::bucket_index(double value) noexcept {
  if (!(value > 0)) return 0;  // zero, negatives and NaN underflow
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp with m in [0.5, 1)
  const int i = exp + kBucketBias;
  return i < 0 ? 0 : i >= kBuckets ? kBuckets - 1 : i;
}

double Metric::bucket_lower(int i) noexcept {
  return std::ldexp(1.0, i - kBucketBias - 1);
}

double Metric::bucket_upper(int i) noexcept {
  return std::ldexp(1.0, i - kBucketBias);
}

double Metric::quantile(double q) const noexcept {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  int hit = kBuckets - 1;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets[static_cast<std::size_t>(i)];
    if (cum >= rank) {
      hit = i;
      break;
    }
  }
  return std::clamp(bucket_upper(hit), min, max);
}

bool metrics_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void metrics_enable(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void metrics_reset() noexcept {
  for (Shard& s : registry().shards) {
    const MutexLock lock(s.mu);
    s.entries.clear();
  }
}

void count(std::string_view name, std::uint64_t delta) noexcept {
  if (!metrics_enabled()) return;
  Shard& s = registry().shard(name);
  const MutexLock lock(s.mu);
  s.entry(name, Metric::Kind::kCounter).total += delta;
}

void gauge(std::string_view name, double value) noexcept {
  if (!metrics_enabled()) return;
  Shard& s = registry().shard(name);
  const MutexLock lock(s.mu);
  s.entry(name, Metric::Kind::kGauge).last = value;
}

void observe(std::string_view name, double value) noexcept {
  if (!metrics_enabled()) return;
  Shard& s = registry().shard(name);
  Hist* h = nullptr;
  {
    // The shard lock covers only the name lookup; the update itself
    // lands on the histogram's per-thread stripe.  Map nodes are
    // pointer-stable, so the Hist outlives the lock (histograms are
    // only destroyed by metrics_reset, which reporting-phase callers
    // never overlap with recording).
    const MutexLock lock(s.mu);
    Entry& e = s.entry(name, Metric::Kind::kHistogram);
    if (!e.hist) e.hist = std::make_unique<Hist>();
    h = e.hist.get();
  }
  h->observe(value);
}

std::map<std::string, Metric> metrics_snapshot() {
  // The merged map is sorted by name (std::map), as documented; each
  // shard is copied under its own lock, and histogram stripes are
  // merged exactly (count == sum of buckets).  The snapshot is not a
  // single atomic cut across shards — fine for reporting, which only
  // runs after the recording phase has quiesced.
  std::map<std::string, Metric> out;
  for (Shard& s : registry().shards) {
    const MutexLock lock(s.mu);
    for (const auto& [name, e] : s.entries) {
      Metric m;
      m.kind = e.kind;
      m.total = e.total;
      m.last = e.last;
      if (e.hist) e.hist->merge_into(m);
      out.emplace(name, m);
    }
  }
  return out;
}

std::uint64_t counter_value(std::string_view name) {
  Shard& s = registry().shard(name);
  const MutexLock lock(s.mu);
  auto it = s.entries.find(name);
  if (it == s.entries.end() || it->second.kind != Metric::Kind::kCounter) {
    return 0;
  }
  return it->second.total;
}

std::string metrics_json() {
  json::ObjectWriter out;
  for (const auto& [name, m] : metrics_snapshot()) {
    switch (m.kind) {
      case Metric::Kind::kCounter:
        out.field(name, m.total);
        break;
      case Metric::Kind::kGauge:
        out.field(name, m.last);
        break;
      case Metric::Kind::kHistogram: {
        json::ArrayWriter buckets;
        for (int i = 0; i < Metric::kBuckets; ++i) {
          const std::uint64_t c = m.buckets[static_cast<std::size_t>(i)];
          if (c == 0) continue;
          buckets.element(json::ArrayWriter()
                              .element(std::to_string(i))
                              .element(std::to_string(c))
                              .str());
        }
        out.raw(name, json::ObjectWriter()
                          .field("count", m.count)
                          .field("sum", m.sum)
                          .field("min", m.min)
                          .field("max", m.max)
                          .field("p50", m.quantile(0.5))
                          .field("p90", m.quantile(0.9))
                          .field("p99", m.quantile(0.99))
                          .raw("buckets", buckets.str())
                          .str());
        break;
      }
    }
  }
  return out.str();
}

std::string metrics_table() {
  std::string out;
  for (const auto& [name, m] : metrics_snapshot()) {
    out += "  " + name;
    out.append(name.size() < 40 ? 40 - name.size() : 1, ' ');
    switch (m.kind) {
      case Metric::Kind::kCounter:
        out += std::to_string(m.total);
        break;
      case Metric::Kind::kGauge:
        out += json::number(m.last);
        break;
      case Metric::Kind::kHistogram:
        out += "n=" + std::to_string(m.count) +
               " sum=" + json::number(m.sum) +
               " min=" + json::number(m.min) +
               " max=" + json::number(m.max) +
               " p50=" + json::number(m.quantile(0.5)) +
               " p99=" + json::number(m.quantile(0.99));
        break;
    }
    out += "\n";
  }
  return out;
}

ScopedMetrics::ScopedMetrics(bool reset) : prev_(metrics_enabled()) {
  if (reset) metrics_reset();
  metrics_enable(true);
}

ScopedMetrics::~ScopedMetrics() { metrics_enable(prev_); }

}  // namespace tce::obs
