#include "tce/obs/exporters.hpp"

#include <cstdlib>
#include <fstream>

#include "tce/common/json.hpp"
#include "tce/obs/metrics.hpp"

namespace tce::obs {

namespace {

/// Prometheus metric name: `tce_` prefix, every character outside
/// [a-zA-Z0-9_] replaced by '_'.
std::string sanitize(std::string_view name) {
  std::string out = "tce_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void render_histogram(std::string& out, const std::string& pname,
                      const Metric& m) {
  std::uint64_t cum = 0;
  for (int i = 0; i < Metric::kBuckets; ++i) {
    const std::uint64_t c = m.buckets[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    cum += c;
    out += pname + "_bucket{le=\"" + json::number(Metric::bucket_upper(i)) +
           "\"} " + std::to_string(cum) + "\n";
  }
  out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(m.count) + "\n";
  out += pname + "_sum " + json::number(m.sum) + "\n";
  out += pname + "_count " + std::to_string(m.count) + "\n";
}

/// Captures the registry for the whole process when TCE_METRICS names
/// a file: enables recording at startup, writes the file at exit.  The
/// constructor takes a snapshot first so the registry's function-local
/// static is constructed before (and therefore destroyed after) this
/// object.
struct EnvMetrics {
  std::string path;
  EnvMetrics() {
    const char* p = std::getenv("TCE_METRICS");
    if (p == nullptr || p[0] == '\0') return;
    metrics_snapshot();
    metrics_enable(true);
    path = p;
  }
  ~EnvMetrics() {
    if (!path.empty()) write_metrics_file(path);
  }
};
const EnvMetrics g_env_metrics;

}  // namespace

std::string metrics_prometheus() {
  std::string out;
  for (const auto& [name, m] : metrics_snapshot()) {
    const bool counter = m.kind == Metric::Kind::kCounter;
    const std::string pname =
        sanitize(name) + (counter ? "_total" : "");
    out += "# HELP " + pname + " " + name + "\n";
    switch (m.kind) {
      case Metric::Kind::kCounter:
        out += "# TYPE " + pname + " counter\n";
        out += pname + " " + std::to_string(m.total) + "\n";
        break;
      case Metric::Kind::kGauge:
        out += "# TYPE " + pname + " gauge\n";
        out += pname + " " + json::number(m.last) + "\n";
        break;
      case Metric::Kind::kHistogram:
        out += "# TYPE " + pname + " histogram\n";
        render_histogram(out, pname, m);
        break;
    }
  }
  return out;
}

std::string metrics_snapshot_json() {
  return json::ObjectWriter()
      .field("schema", "tce-metrics/1")
      .raw("metrics", metrics_json())
      .str();
}

bool write_metrics_file(const std::string& path, std::string* error) {
  const bool as_json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << (as_json ? metrics_snapshot_json() : metrics_prometheus());
  if (as_json) out << "\n";
  if (!out) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace tce::obs
