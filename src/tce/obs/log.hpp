#pragma once
/// \file log.hpp
/// Leveled structured event log (JSON lines, `tce-log/1` schema) plus
/// an in-memory flight recorder.  Like the rest of tce::obs it is off
/// by default: `log_event` checks one relaxed atomic gate and returns
/// before building a string, taking a lock, or touching the heap.
///
/// Each event is one line:
///   {"schema":"tce-log/1","ts_us":...,"level":"error",
///    "component":"lint","event":"mem.infeasible","fields":{...}}
/// `ts_us` is wall-clock microseconds since the Unix epoch; `fields`
/// is an optional JSON object of typed values built by the caller
/// (json::ObjectWriter) and is omitted when empty.  Component/event
/// names follow the dotted hierarchy in docs/OBSERVABILITY.md.
///
/// Two sinks share the gate:
///  - a file sink, opened with log_open() or `TCE_LOG=<path>` in the
///    environment (`TCE_LOG_LEVEL=debug|info|warn|error` filters it,
///    default info) — any binary linking tce_obs then records from
///    startup and closes the file at exit;
///  - the flight recorder, a fixed ring of the last
///    kFlightRecorderCapacity events at every level.  The CLI enables
///    it for each run and dumps it to stderr on any nonzero exit, so
///    infeasible/verify/fuzz/internal failures carry their event tail
///    (see run_cli in cli.cpp).
///
/// Thread safety: all entry points may be called from any thread; one
/// mutex guards both sinks (event volume is low — failures and
/// lifecycle, not per-node hot loops).  The disabled path is lock-free.

#include <cstddef>
#include <string>
#include <string_view>

namespace tce::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug", "info", "warn" or "error".
const char* log_level_name(LogLevel level) noexcept;

/// Parses a level name (as accepted in TCE_LOG_LEVEL); \p fallback when
/// the name is unknown or empty.
LogLevel parse_log_level(std::string_view name, LogLevel fallback) noexcept;

/// True when an event at \p level would be recorded by at least one
/// sink.  Call sites that build dynamic fields should check this first
/// so the disabled path allocates nothing.
bool log_enabled(LogLevel level) noexcept;

/// Records one event.  \p fields_json, when non-empty, must be a JSON
/// object (use json::ObjectWriter).
void log_event(LogLevel level, std::string_view component,
               std::string_view event,
               const std::string& fields_json = std::string());

/// Opens the file sink: events at \p min_level and above are appended
/// to \p path as tce-log/1 lines, flushed per line.  Replaces any sink
/// already open.
void log_open(const std::string& path, LogLevel min_level = LogLevel::kInfo);

/// Flushes and closes the file sink (no-op when none is open).
void log_close();

/// Flight-recorder depth: the dump holds at most this many events, the
/// most recent ones, oldest first.
inline constexpr std::size_t kFlightRecorderCapacity = 64;

/// Turns the flight recorder on or off.  While on, every event (any
/// level) also lands in the ring.  Turning it off keeps the buffer.
void flight_recorder_enable(bool on) noexcept;

/// Empties the ring (enabled state is unchanged).
void flight_recorder_clear() noexcept;

/// The buffered events, oldest first, one tce-log/1 line each
/// (newline-terminated).  Empty string when nothing was recorded.
std::string flight_recorder_dump();

}  // namespace tce::obs
