#include "tce/lint/comm_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/core/plan.hpp"
#include "tce/dist/distribution.hpp"
#include "tce/fusion/fused.hpp"

namespace tce::lint {

namespace {

/// Full logical word count of an array: Π of its dimension extents.
std::uint64_t words_of(const TensorRef& t, const IndexSpace& space) {
  std::uint64_t w = 1;
  for (IndexId i : t.dims) w = checked_mul(w, space.extent(i));
  return w;
}

/// Trip count of the fused loops in \p f (fused indices are never
/// grid-distributed, so each contributes its full extent).
std::uint64_t trip_count(IndexSet f, const IndexSpace& space) {
  std::uint64_t r = 1;
  for (IndexId i : f) r = checked_mul(r, space.extent(i));
  return r;
}

/// The memory-constrained term at a node whose operands are both input
/// leaves (see the header derivation).  \p mults is the node's
/// multiplication count, \p m_words the per-processor memory budget.
std::uint64_t mem_term(std::uint64_t mults, std::uint64_t procs,
                       std::uint64_t m_words, bool materialized) {
  if (m_words == 0) return 0;  // no budget at all: the memory prover
                               // certifies infeasibility instead.
  const double f = static_cast<double>(mults);
  const double p = static_cast<double>(procs);
  const double m = static_cast<double>(m_words);
  // Pair-counting segment bound: ≤ 4M² multiplications per M received
  // words, regardless of how the result is consumed.
  double best = f / (4.0 * p * m) - m;
  if (materialized) {
    // Surface-to-volume (Loomis–Whitney) form; needs the result
    // footprint bounded per segment, i.e. a materialized result.
    best = std::max(best, f / (4.0 * std::sqrt(2.0) * p * std::sqrt(m)) - m);
  }
  if (best <= 0.0) return 0;
  return static_cast<std::uint64_t>(best);  // floor: words are integral
}

}  // namespace

std::string CommBoundResult::str() const {
  std::string out = "certificate rule=comm.lb-certificate root=" + root +
                    " comm_lb_words=" + std::to_string(root_lb_words) + "\n";
  for (const NodeCommBound& nb : nodes) {
    out += "  node=" + nb.node +
           " lb_words=" + std::to_string(nb.lb_words) +
           " lb_struct_words=" + std::to_string(nb.lb_struct_words) +
           " lb_mem_words=" + std::to_string(nb.lb_mem_words);
    if (nb.limit_dominated) out += " limit-dominated";
    out += "\n";
  }
  return out;
}

CommBoundResult prove_comm(const ContractionTree& tree, const ProcGrid& grid,
                           const CommBoundConfig& cfg) {
  CommBoundResult res;
  const IndexSpace& space = tree.space();
  res.root = tree.node(tree.root()).tensor.name;
  const std::uint64_t procs = grid.procs;
  const std::uint64_t edge = grid.edge;

  for (NodeId id : tree.post_order()) {
    const ContractionNode& n = tree.node(id);
    if (n.kind != ContractionNode::Kind::kContraction) continue;
    NodeCommBound nb;
    nb.node = n.tensor.name;

    if (n.batch_indices.empty()) {
      const std::uint64_t wl = words_of(tree.node(n.left).tensor, space);
      const std::uint64_t wr = words_of(tree.node(n.right).tensor, space);
      const std::uint64_t wc = words_of(n.tensor, space);

      // min over the rotation pairs the index classes admit: rot = k
      // rotates (A, B), rot = i rotates (A, C), rot = j rotates (B, C).
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      const auto rot_pair = [&](std::uint64_t wx, std::uint64_t wy) {
        best = std::min(
            best, checked_mul(edge - 1, checked_add(wx, wy)) / procs);
      };
      if (!n.sum_indices.empty()) rot_pair(wl, wr);
      if (!n.left_indices.empty()) rot_pair(wl, wc);
      if (!n.right_indices.empty()) rot_pair(wr, wc);
      if (cfg.enable_replication) {
        best = std::min(
            best, checked_mul(procs - 1, std::min(wl, wr)) / procs);
      }
      if (best != std::numeric_limits<std::uint64_t>::max()) {
        nb.lb_struct_words = best;
      }

      // Memory-constrained term: only where every operand element must
      // arrive through this node's own collectives (both children are
      // input leaves; an intermediate operand can be produced locally).
      const bool leaf_operands =
          tree.node(n.left).kind == ContractionNode::Kind::kInput &&
          tree.node(n.right).kind == ContractionNode::Kind::kInput;
      if (cfg.mem_limit_node_bytes != 0 && leaf_operands) {
        const std::uint64_t m_words =
            cfg.mem_limit_node_bytes / (8ull * grid.procs_per_node);
        const bool materialized = id == tree.root() ||
                                  !cfg.enable_fusion ||
                                  fusable_indices(tree, id).empty();
        nb.lb_mem_words =
            mem_term(tree.flops(id) / 2, procs, m_words, materialized);
      }
    }

    nb.lb_words = std::max(nb.lb_struct_words, nb.lb_mem_words);
    nb.limit_dominated = nb.lb_mem_words > nb.lb_struct_words;
    res.root_lb_words = checked_add(res.root_lb_words, nb.lb_words);
    res.nodes.push_back(std::move(nb));
  }
  return res;
}

std::uint64_t plan_comm_words(const ContractionTree& tree,
                              const OptimizedPlan& plan,
                              const ProcGrid& grid) {
  const IndexSpace& space = tree.space();
  const std::uint64_t procs = grid.procs;
  const std::uint64_t edge = grid.edge;

  // Recover which array-table row belongs to which tree node by
  // replaying the table's construction order (leaves in tree order,
  // then internal nodes in post order — see Search::extract_plan).
  constexpr std::size_t kNoRow = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> row_of(tree.size(), kNoRow);
  std::size_t idx = 0;
  for (NodeId id : tree.leaves()) row_of[static_cast<std::size_t>(id)] = idx++;
  for (NodeId id : tree.post_order()) {
    if (tree.node(id).kind != ContractionNode::Kind::kInput) {
      row_of[static_cast<std::size_t>(id)] = idx++;
    }
  }
  if (idx != plan.arrays.size()) {
    throw Error("plan_comm_words: array table does not match the tree (" +
                std::to_string(plan.arrays.size()) + " rows, expected " +
                std::to_string(idx) + ")");
  }
  const auto row = [&](NodeId id) -> const ArrayReport& {
    const std::size_t r = row_of[static_cast<std::size_t>(id)];
    if (r == kNoRow ||
        plan.arrays[r].full.name != tree.node(id).tensor.name) {
      throw Error("plan_comm_words: array table row mismatch at node '" +
                  tree.node(id).tensor.name + "'");
    }
    return plan.arrays[r];
  };

  std::uint64_t total = 0;
  const auto add = [&](std::uint64_t w) { total = checked_add(total, w); };

  for (const PlanStep& st : plan.steps) {
    const ContractionNode& n = tree.node(st.node);
    const IndexSet f_eff = st.effective_fused;
    const std::uint64_t rep = trip_count(f_eff, space);

    if (st.tmpl == StepTemplate::kCannon) {
      const CannonChoice& c = st.choice;
      const auto rotated = [&](const TensorRef& ref, const Distribution& d) {
        const std::uint64_t block = dist_size(ref, d, f_eff, space, grid);
        add(checked_mul(rep, checked_mul(edge - 1, block)));
      };
      if (c.rotates_left()) rotated(tree.node(n.left).tensor, st.left_dist);
      if (c.rotates_right()) {
        rotated(tree.node(n.right).tensor, st.right_dist);
      }
      if (c.rotates_result()) rotated(n.tensor, st.result_dist);
    } else {
      // Replicated step: allgather of the gathered operand's fused
      // slice, then (when a summation index splits the stationary
      // side) a reduce-scatter — or allreduce — of the partials.
      const NodeId repl_id = st.replicate_right ? n.right : n.left;
      const TensorRef& rref = tree.node(repl_id).tensor;
      const std::uint64_t slice =
          fused_bytes(rref, f_eff, space) / 8;
      const std::uint64_t ag_rep =
          trip_count(f_eff & rref.index_set(), space);
      add(checked_mul(ag_rep, slice - slice / procs));

      if (st.reduce_dim != 0) {
        // The canonical orientation puts the reduced grid line in dim 2
        // (see eval_replicated); the partial keeps only the stationary
        // index of the result distribution, the other slot is j_pick.
        const bool canonical = st.reduce_dim == 2;
        const Distribution& alpha = st.result_dist;
        const Distribution partial =
            canonical ? Distribution(alpha.at(1), kNoIndex)
                      : Distribution(kNoIndex, alpha.at(2));
        const IndexId j_pick = canonical ? alpha.at(2) : alpha.at(1);
        const IndexSet f_red = f_eff & n.tensor.index_set();
        const std::uint64_t pw =
            dist_size(n.tensor, partial, f_red, space, grid);
        std::uint64_t rs = checked_mul(trip_count(f_red, space),
                                       pw - pw / edge);
        // Without a scatter index the line stays replicated: allreduce
        // moves each partial word twice.
        if (j_pick == kNoIndex) rs = checked_mul(rs, 2ull);
        add(rs);
      }
    }

    // Operand redistributions: a materialized internal child consumed
    // in a distribution other than the one it was produced in was
    // reshuffled once, moving its source block.  The gathered side of a
    // replicated step accepts any stored layout without reshuffling.
    const bool replicated = st.tmpl == StepTemplate::kReplicated;
    const auto redistributed = [&](NodeId child,
                                   const Distribution& consumed_dist) {
      if (tree.node(child).kind == ContractionNode::Kind::kInput) return;
      const ArrayReport& r = row(child);
      if (!r.initial_dist.has_value()) {
        throw Error("plan_comm_words: internal array '" + r.full.name +
                    "' has no producing distribution");
      }
      if (*r.initial_dist != consumed_dist) {
        add(dist_size(tree.node(child).tensor, *r.initial_dist, IndexSet(),
                      space, grid));
      }
    };
    if (!(replicated && !st.replicate_right)) {
      redistributed(n.left, st.left_dist);
    }
    if (!(replicated && st.replicate_right)) {
      redistributed(n.right, st.right_dist);
    }
  }

  // Reduce nodes (not in the step list): an allreduce combines partials
  // whenever the child distribution splits a summed index.
  for (NodeId id : tree.post_order()) {
    const ContractionNode& n = tree.node(id);
    if (n.kind != ContractionNode::Kind::kReduce) continue;
    const ArrayReport& r = row(id);
    if (!r.initial_dist.has_value()) {
      throw Error("plan_comm_words: reduce array '" + r.full.name +
                  "' has no producing distribution");
    }
    const ArrayReport& cr = row(n.left);
    const std::optional<Distribution>& cdist =
        cr.is_input ? cr.final_dist : cr.initial_dist;
    if (!cdist.has_value()) {
      throw Error("plan_comm_words: reduce child '" + cr.full.name +
                  "' has no distribution");
    }
    if (*cdist != *r.initial_dist) {
      const IndexSet f_u = r.full.index_set() - r.reduced.index_set();
      const std::uint64_t block =
          dist_size(n.tensor, *r.initial_dist, f_u, space, grid);
      add(checked_mul(trip_count(f_u, space), block));
    }
  }
  return total;
}

}  // namespace tce::lint
