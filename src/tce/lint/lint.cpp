#include "tce/lint/lint.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tce/common/checked.hpp"
#include "tce/common/json.hpp"
#include "tce/dist/distribution.hpp"
#include "tce/expr/forest.hpp"
#include "tce/fusion/fused.hpp"
#include "tce/obs/log.hpp"

namespace tce::lint {

namespace {

void emit(LintReport& rep, Severity sev, std::string node, std::string rule,
          std::string message) {
  rep.diagnostics.push_back(
      {sev, std::move(node), std::move(rule), std::move(message)});
}

/// minbytes(u): the smallest per-processor footprint any distribution can
/// give array \p t under fusion \p fmax — the prover's per-array term.
std::uint64_t min_bytes(const TensorRef& t, IndexSet fmax,
                        const IndexSpace& space, const ProcGrid& grid) {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (const Distribution& d : enumerate_distributions(t)) {
    best = std::min(best, dist_bytes(t, d, fmax, space, grid));
  }
  if (best == std::numeric_limits<std::uint64_t>::max()) {
    best = dist_bytes(t, Distribution(), IndexSet(), space, grid);
  }
  return best;
}

/// True when \p ref names some dimension twice (diagonal access).
bool has_repeated_dim(const TensorRef& ref) {
  for (std::size_t a = 0; a < ref.dims.size(); ++a) {
    for (std::size_t b = a + 1; b < ref.dims.size(); ++b) {
      if (ref.dims[a] == ref.dims[b]) return true;
    }
  }
  return false;
}

/// Statement-scoped and program-scoped structural rules (the expr.*
/// family).  Shared by structural_errors() (errors only) and
/// lint_program() (errors + warnings).
void check_statements(const ParsedProgram& program, bool warnings,
                      LintReport& rep) {
  const IndexSpace& space = program.space;

  // Per-statement rules, in program order.
  for (const ParsedStatement& st : program.statements) {
    const std::string& name = st.result.name;

    // expr.repeated-dim — result first, then factors left to right.
    std::vector<const TensorRef*> occurrences{&st.result};
    for (const TensorRef& f : st.factors) occurrences.push_back(&f);
    for (const TensorRef* ref : occurrences) {
      ++rep.rules_checked;
      if (has_repeated_dim(*ref)) {
        emit(rep, Severity::kError, ref->name, "expr.repeated-dim",
             "tensor " + ref->str(space) +
                 " repeats an index; diagonal access is unsupported");
      }
    }

    // expr.result-indices — the result must carry exactly the unsummed
    // factor indices.
    ++rep.rules_checked;
    IndexSet factor_union;
    for (const TensorRef& f : st.factors) factor_union = factor_union | f.index_set();
    const IndexSet expected = factor_union - st.sum_indices;
    if (st.result.index_set() != expected) {
      emit(rep, Severity::kError, name, "expr.result-indices",
           "result " + st.result.str(space) + " has indices " +
               st.result.index_set().str(space) +
               " but the unsummed factor indices are " +
               expected.str(space));
    }

    // expr.sum-not-in-factors.
    ++rep.rules_checked;
    const IndexSet dead_sums = st.sum_indices - factor_union;
    if (!dead_sums.empty()) {
      emit(rep, Severity::kError, name, "expr.sum-not-in-factors",
           "summation indices " + dead_sums.str(space) +
               " appear in no factor of '" + name + "'");
    }

    // expr.needs-binarization.
    if (warnings) {
      ++rep.rules_checked;
      if (st.factors.size() > 2) {
        emit(rep, Severity::kWarning, name, "expr.needs-binarization",
             "statement for '" + name + "' has " +
                 std::to_string(st.factors.size()) +
                 " factors; the planner needs a binarized form (run with "
                 "operation minimization)");
      }
    }
  }

  // expr.inconsistent-arity — every occurrence must match the first.
  {
    std::map<std::string, const TensorRef*> first_use;
    std::set<std::string> reported;
    for (const ParsedStatement& st : program.statements) {
      std::vector<const TensorRef*> occurrences{&st.result};
      for (const TensorRef& f : st.factors) occurrences.push_back(&f);
      for (const TensorRef* ref : occurrences) {
        ++rep.rules_checked;
        auto [it, inserted] = first_use.try_emplace(ref->name, ref);
        if (!inserted && it->second->dims != ref->dims &&
            reported.insert(ref->name).second) {
          emit(rep, Severity::kError, ref->name, "expr.inconsistent-arity",
               "tensor '" + ref->name + "' is used as " + ref->str(space) +
                   " but earlier as " + it->second->str(space));
        }
      }
    }
  }

  // expr.redefinition — one producing statement per tensor.
  std::set<std::string> defined;
  for (const ParsedStatement& st : program.statements) {
    ++rep.rules_checked;
    if (!defined.insert(st.result.name).second) {
      emit(rep, Severity::kError, st.result.name, "expr.redefinition",
           "tensor '" + st.result.name +
               "' is produced by more than one statement");
    }
  }

  // expr.reconsumed — intermediates must have a single consumer.
  {
    std::map<std::string, int> uses;
    for (const ParsedStatement& st : program.statements) {
      for (const TensorRef& f : st.factors) {
        if (!defined.contains(f.name)) continue;  // plain input
        ++rep.rules_checked;
        if (++uses[f.name] == 2) {
          emit(rep, Severity::kError, f.name, "expr.reconsumed",
               "intermediate '" + f.name +
                   "' is consumed more than once; programs must form a "
                   "tree or forest (single consumer per intermediate)");
        }
      }
    }
  }
}

/// Program hygiene warnings (unused/extent-1 indices, shadowed names).
void check_hygiene(const ParsedProgram& program, LintReport& rep) {
  const IndexSpace& space = program.space;

  IndexSet used;
  for (const ParsedStatement& st : program.statements) {
    used = used | st.result.index_set() | st.sum_indices;
    for (const TensorRef& f : st.factors) used = used | f.index_set();
  }
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto id = static_cast<IndexId>(i);
    ++rep.rules_checked;
    if (!used.contains(id)) {
      emit(rep, Severity::kWarning, "", "expr.unused-index",
           "index '" + space.name(id) + "' (extent " +
               std::to_string(space.extent(id)) + ") is never used");
    }
    ++rep.rules_checked;
    if (space.extent(id) == 1) {
      emit(rep, Severity::kWarning, "", "expr.extent-one-index",
           "index '" + space.name(id) +
               "' has extent 1; it contributes no work and no "
               "distribution choice");
    }
  }

  std::vector<std::string> tensor_names;  // first-occurrence order
  std::set<std::string> seen;
  for (const ParsedStatement& st : program.statements) {
    if (seen.insert(st.result.name).second) {
      tensor_names.push_back(st.result.name);
    }
    for (const TensorRef& f : st.factors) {
      if (seen.insert(f.name).second) tensor_names.push_back(f.name);
    }
  }
  for (const std::string& name : tensor_names) {
    ++rep.rules_checked;
    if (space.contains(name)) {
      emit(rep, Severity::kWarning, name, "expr.name-shadowing",
           "tensor '" + name + "' shadows the index variable of the "
                               "same name");
    }
  }
}

/// Tree anti-pattern rules over one contraction tree, post order.
void check_tree(const ContractionTree& tree, LintReport& rep) {
  const IndexSpace& space = tree.space();
  for (NodeId id : tree.post_order()) {
    const ContractionNode& nd = tree.node(id);
    if (nd.kind == ContractionNode::Kind::kInput) continue;

    ++rep.rules_checked;
    if (!nd.batch_indices.empty()) {
      emit(rep, Severity::kError, nd.tensor.name, "tree.batch-indices",
           "node '" + nd.tensor.name + "' has batch indices " +
               nd.batch_indices.str(space) +
               " shared by both operands and the result; not "
               "representable by the generalized Cannon template");
    }

    if (nd.kind == ContractionNode::Kind::kContraction) {
      ++rep.rules_checked;
      const std::size_t lrank = tree.node(nd.left).tensor.rank();
      const std::size_t rrank = tree.node(nd.right).tensor.rank();
      if (nd.tensor.rank() > std::max(lrank, rrank)) {
        emit(rep, Severity::kWarning, nd.tensor.name, "tree.rank-inflation",
             "intermediate " + nd.tensor.str(space) + " has rank " +
                 std::to_string(nd.tensor.rank()) +
                 ", above both operand ranks (" + std::to_string(lrank) +
                 ", " + std::to_string(rrank) +
                 "); consider a different parenthesization");
      }
    }

    ++rep.rules_checked;
    for (IndexId i : nd.sum_indices) {
      if (space.extent(i) == 1) {
        emit(rep, Severity::kWarning, nd.tensor.name,
             "tree.degenerate-sum-index",
             "node '" + nd.tensor.name + "' sums over index '" +
                 space.name(i) + "' of extent 1 (degenerate "
                                 "contraction dimension)");
      }
    }
  }
}

/// Model-interaction lints: arrays no distribution can tile, and
/// characterization curves every candidate block size falls outside of.
void check_model(const ContractionForest& forest, const ProcGrid& grid,
                 const CharacterizationTable& table, const LintConfig& cfg,
                 LintReport& rep) {
  const IndexSpace& space = forest.space;

  // model.grid-untileable, deduplicated by array name across the forest.
  std::set<std::string> reported;
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t hi = 0;
  for (const ContractionTree& tree : forest.trees) {
    for (NodeId id : tree.post_order()) {
      const ContractionNode& nd = tree.node(id);
      const TensorRef& t = nd.tensor;

      if (t.rank() >= 1) {
        ++rep.rules_checked;
        std::uint64_t max_extent = 0;
        for (IndexId i : t.dims) {
          max_extent = std::max(max_extent, space.extent(i));
        }
        if (max_extent < grid.edge && reported.insert(t.name).second) {
          emit(rep, Severity::kWarning, t.name, "model.grid-untileable",
               "no dimension of " + t.str(space) + " (max extent " +
                   std::to_string(max_extent) + ") reaches the grid edge " +
                   std::to_string(grid.edge) +
                   "; every distribution leaves processors idle");
        }
      }

      // Achievable block-size envelope for the extrapolation check: the
      // smallest fused+distributed block and the full undistributed
      // array bound every candidate query from below and above.
      IndexSet fmax;
      if (cfg.enable_fusion && nd.kind != ContractionNode::Kind::kInput) {
        fmax = fusable_indices(tree, id);
      }
      lo = std::min(lo, min_bytes(t, fmax, space, grid));
      hi = std::max(hi, dist_bytes(t, Distribution(), IndexSet(), space,
                                   grid));
    }
  }

  // model.curve-extrapolation: if the achievable envelope is disjoint
  // from a curve's sampled range, every query to that curve
  // extrapolates.
  const std::pair<const char*, const CostCurve*> curves[] = {
      {"rotate_dim1", &table.rotate_dim1},
      {"rotate_dim2", &table.rotate_dim2},
      {"redistribute", &table.redistribute},
  };
  for (const auto& [name, curve] : curves) {
    ++rep.rules_checked;
    if (curve->empty() || hi == 0) continue;
    const std::uint64_t s_lo = curve->sample_bytes().front();
    const std::uint64_t s_hi = curve->sample_bytes().back();
    if (hi < s_lo || lo > s_hi) {
      emit(rep, Severity::kWarning, "", "model.curve-extrapolation",
           "every achievable block size (in [" + std::to_string(lo) + ", " +
               std::to_string(hi) + "] bytes) lies outside the sampled "
                                   "range [" +
               std::to_string(s_lo) + ", " + std::to_string(s_hi) +
               "] of characterization curve '" + std::string(name) +
               "'; all its cost queries extrapolate");
    }
  }
}

}  // namespace

std::string InfeasibilityCertificate::str() const {
  return "certificate rule=mem.infeasible node=" + node +
         " lower_bound_node_bytes=" + std::to_string(lower_bound_node_bytes) +
         " mem_limit_node_bytes=" + std::to_string(mem_limit_node_bytes);
}

std::string LintReport::str() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case Severity::kError: out += "error"; break;
      case Severity::kWarning: out += "warning"; break;
      case Severity::kInfo: out += "info"; break;
    }
    if (!d.node.empty()) out += " node=" + d.node;
    out += " rule=" + d.rule + ": " + d.message + "\n";
  }
  if (certificate) out += certificate->str() + "\n";
  for (const CommBoundResult& cb : comm_certificates) out += cb.str();
  out += std::to_string(rules_checked) + " rules checked, " +
         std::to_string(diagnostics.size()) + " diagnostics\n";
  return out;
}

ProverResult prove_memory(const ContractionTree& tree, const ProcGrid& grid,
                          const LintConfig& cfg) {
  ProverResult res;
  const IndexSpace& space = tree.space();
  const std::size_t n = tree.size();
  // Per-node accumulators, indexed by NodeId: lb = summed-accounting
  // bound, leaf_lb = leaf-only part, max_own = largest single internal
  // array bound in the subtree (the liveness peak's floor).
  std::vector<std::uint64_t> lb(n, 0);
  std::vector<std::uint64_t> leaf_lb(n, 0);
  std::vector<std::uint64_t> max_own(n, 0);

  for (NodeId id : tree.post_order()) {
    const ContractionNode& nd = tree.node(id);
    const auto u = static_cast<std::size_t>(id);
    if (nd.kind == ContractionNode::Kind::kInput) {
      // Inputs are stored in full regardless of fusion (f = ∅).
      const std::uint64_t own = min_bytes(nd.tensor, IndexSet(), space, grid);
      lb[u] = own;
      leaf_lb[u] = own;
      max_own[u] = 0;
    } else {
      IndexSet fmax;
      if (cfg.enable_fusion) fmax = fusable_indices(tree, id);
      const std::uint64_t own = min_bytes(nd.tensor, fmax, space, grid);
      std::uint64_t sum = own;
      std::uint64_t leaves = 0;
      std::uint64_t mo = own;
      for (NodeId c : {nd.left, nd.right}) {
        if (c == kNoNode) continue;
        const auto cu = static_cast<std::size_t>(c);
        sum = checked_add(sum, lb[cu]);
        leaves = checked_add(leaves, leaf_lb[cu]);
        mo = std::max(mo, max_own[cu]);
      }
      lb[u] = sum;
      leaf_lb[u] = leaves;
      max_own[u] = mo;
    }

    // The optimizer's memory metric for any state at this node is
    // ≥ metric_lb: each array term was minimized independently and the
    // transfer-buffer term (max_msg) was dropped to zero.
    const std::uint64_t metric_lb =
        cfg.liveness_aware ? checked_add(leaf_lb[u], max_own[u]) : lb[u];
    const std::uint64_t node_bytes =
        checked_mul(metric_lb, grid.procs_per_node);
    if (id == tree.root()) res.root_lower_bound_node_bytes = node_bytes;
    if (cfg.mem_limit_node_bytes != 0 && !res.certificate &&
        node_bytes > cfg.mem_limit_node_bytes) {
      res.certificate = InfeasibilityCertificate{
          nd.tensor.name, node_bytes, cfg.mem_limit_node_bytes};
    }
  }
  return res;
}

std::optional<InfeasibilityCertificate> prove_infeasible(
    const ContractionTree& tree, const ProcGrid& grid,
    const LintConfig& cfg) {
  if (cfg.mem_limit_node_bytes == 0) return std::nullopt;
  return prove_memory(tree, grid, cfg).certificate;
}

std::vector<Diagnostic> structural_errors(const ParsedProgram& program) {
  LintReport rep;
  check_statements(program, /*warnings=*/false, rep);
  return std::move(rep.diagnostics);
}

LintReport lint_program(const ParsedProgram& program, const ProcGrid& grid,
                        const CharacterizationTable* table,
                        const LintConfig& cfg) {
  LintReport rep;
  check_statements(program, /*warnings=*/true, rep);
  check_hygiene(program, rep);

  bool needs_binarization = false;
  for (const ParsedStatement& st : program.statements) {
    if (st.factors.size() > 2) needs_binarization = true;
  }
  // Tree-, model- and memory-stage analyses need the contraction forest,
  // which only exists for structurally clean, binarized programs.
  if (!rep.ok() || needs_binarization || program.statements.empty()) {
    return rep;
  }

  ContractionForest forest;
  try {
    forest = ContractionForest::from_sequence(
        to_formula_sequence(program, /*allow_forest=*/true));
  } catch (const std::exception& e) {
    // A validation failure the rules above did not pin down.
    ++rep.rules_checked;
    emit(rep, Severity::kError, "", "expr.invalid", e.what());
    return rep;
  }

  for (const ContractionTree& tree : forest.trees) check_tree(tree, rep);

  if (table != nullptr) check_model(forest, grid, *table, cfg, rep);

  if (cfg.mem_limit_node_bytes != 0 && rep.ok()) {
    for (const ContractionTree& tree : forest.trees) {
      ++rep.rules_checked;
      const ProverResult pr = prove_memory(tree, grid, cfg);
      if (pr.certificate) {
        emit(rep, Severity::kError, pr.certificate->node, "mem.infeasible",
             "no plan can satisfy the memory limit: certified lower bound " +
                 std::to_string(pr.certificate->lower_bound_node_bytes) +
                 " bytes/node exceeds the limit " +
                 std::to_string(pr.certificate->mem_limit_node_bytes) +
                 " (binding node '" + pr.certificate->node + "')");
        if (obs::log_enabled(obs::LogLevel::kError)) {
          obs::log_event(
              obs::LogLevel::kError, "lint", "mem.infeasible",
              json::ObjectWriter()
                  .field("node", pr.certificate->node)
                  .field("lower_bound_node_bytes",
                         pr.certificate->lower_bound_node_bytes)
                  .field("mem_limit_node_bytes",
                         pr.certificate->mem_limit_node_bytes)
                  .str());
        }
        if (!rep.certificate) rep.certificate = pr.certificate;
      }
    }
  }

  if (cfg.comm_bounds) {
    CommBoundConfig ccfg;
    ccfg.mem_limit_node_bytes = cfg.mem_limit_node_bytes;
    ccfg.enable_fusion = cfg.enable_fusion;
    ccfg.enable_replication = cfg.enable_replication;
    for (const ContractionTree& tree : forest.trees) {
      ++rep.rules_checked;  // comm.lb-certificate
      CommBoundResult cb = prove_comm(tree, grid, ccfg);
      std::uint64_t contractions = cb.nodes.size();
      emit(rep, Severity::kInfo, cb.root, "comm.lb-certificate",
           "certified communication lower bound " +
               std::to_string(cb.root_lb_words) +
               " words/processor across " + std::to_string(contractions) +
               " contraction step" + (contractions == 1 ? "" : "s"));
      ++rep.rules_checked;  // comm.limit-dominated
      for (const NodeCommBound& nb : cb.nodes) {
        if (nb.limit_dominated) {
          emit(rep, Severity::kWarning, nb.node, "comm.limit-dominated",
               "the memory limit forces the communication bound at '" +
                   nb.node + "' to " + std::to_string(nb.lb_mem_words) +
                   " words/processor, above the unconstrained structural "
                   "bound " +
                   std::to_string(nb.lb_struct_words) +
                   " (the cap, not the template geometry, dominates)");
        }
      }
      rep.comm_certificates.push_back(std::move(cb));
    }
  }
  return rep;
}

}  // namespace tce::lint
