#pragma once
/// \file lint.hpp
/// Static analysis of a planner problem *before* the DP search.
///
/// The verifier (tce/verify) checks a finished plan post-hoc; this
/// module is its compile-time counterpart: it examines the parsed
/// problem — expression program, index universe, processor grid, machine
/// characterization and memory limit — and reports everything that is
/// provably wrong or suspicious without running the search.  Diagnostics
/// carry stable rule ids in the verifier's style, batched (every
/// independent finding in one run, deterministic order), never
/// first-error-wins.
///
/// Rule identifiers (stable; used by tests and tooling):
///
///   expr.result-indices         result indices ≠ (∪ factors) − sum set
///   expr.sum-not-in-factors     a summation index in no factor
///   expr.repeated-dim           an index repeated within one tensor
///                               (diagonals are unsupported)
///   expr.inconsistent-arity     a tensor name used with two different
///                               index lists
///   expr.redefinition           two statements produce the same tensor
///   expr.reconsumed             an intermediate consumed more than once
///                               (programs must be trees / forests)
///   expr.needs-binarization     a statement with three or more factors
///                               (requires opmin / --opmin)
///   expr.invalid                residual validation failure not covered
///                               by a more specific rule
///   expr.unused-index           a declared index never used
///   expr.extent-one-index       a declared index of extent 1
///   expr.name-shadowing         a tensor named like a declared index
///   tree.batch-indices          a contraction with batch indices H ≠ ∅
///                               (not representable by generalized
///                               Cannon; the optimizer will reject it)
///   tree.rank-inflation         an intermediate of higher rank than
///                               either child (memory anti-pattern)
///   tree.degenerate-sum-index   a contraction/reduction summing over an
///                               extent-1 index (dead contraction dim)
///   model.grid-untileable       an array none of whose dimensions
///                               reaches the grid edge √P (every
///                               distribution leaves processors idle)
///   model.curve-extrapolation   every achievable block size falls
///                               outside a characterization curve's
///                               sampled range (all queries extrapolate)
///   mem.infeasible              the memory-infeasibility prover
///                               certifies that no plan can satisfy the
///                               per-node limit (see below)
///   comm.lb-certificate         informational: the communication
///                               prover's certified per-processor lower
///                               bound for a tree (comm_bounds.hpp);
///                               the per-node table is carried in
///                               LintReport::comm_certificates
///   comm.limit-dominated        the memory cap forces a node's
///                               communication bound above the
///                               unconstrained structural bound
///
/// The memory-infeasibility prover (`prove_memory`) computes, for every
/// tree node v, a lower bound on the per-processor resident bytes any
/// plan must spend while v's subtree executes:
///
///   minbytes(u) = min over all distributions ⟨i,j⟩ of
///                 DistBytes(u, ⟨i,j⟩, f_max(u))
///
/// with f_max(u) the full fusable set of u (the most memory any fusion
/// can save; ∅ for leaves, the root, and when fusion is disabled).
/// Under the paper's summed accounting LB(v) = Σ_{u ∈ subtree(v)}
/// minbytes(u); under liveness accounting LB(v) = Σ leaf minbytes +
/// max internal minbytes.  Every term relaxes the search independently
/// (free distribution choice per array, maximal fusion, zero transfer
/// buffers), so LB(v) ≤ the memory metric of *every* solution the DP —
/// or exhaustive enumeration — can construct at v.  If
/// LB(v) · procs_per_node exceeds the limit at any node, no plan exists
/// and the prover returns a machine-readable certificate naming the
/// binding node and the bound.  The converse does not hold: a silent
/// prover promises nothing (the search may still be infeasible).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tce/costmodel/characterization.hpp"
#include "tce/dist/grid.hpp"
#include "tce/expr/contraction.hpp"
#include "tce/expr/parser.hpp"
#include "tce/lint/comm_bounds.hpp"

namespace tce::lint {

/// How bad a finding is: errors mean the problem cannot be planned as
/// stated (the planner would reject it or provably fail); warnings are
/// suspicious but plannable; info findings carry certificates and
/// measurements, not complaints.
enum class Severity {
  kError,
  kWarning,
  kInfo,
};

/// One lint finding.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string node;     ///< Offending tensor/statement name; empty =
                        ///< program-level.
  std::string rule;     ///< Stable rule id (see file comment).
  std::string message;  ///< Human-readable explanation with values.
};

/// Machine-readable outcome of the memory-infeasibility prover.
struct InfeasibilityCertificate {
  std::string node;  ///< Binding node: first (post-order) tree node
                     ///< whose lower bound exceeds the limit.
  std::uint64_t lower_bound_node_bytes = 0;  ///< LB(v) · procs_per_node.
  std::uint64_t mem_limit_node_bytes = 0;    ///< The limit it exceeds.

  /// One parseable line:
  /// "certificate rule=mem.infeasible node=<name>
  ///  lower_bound_node_bytes=<n> mem_limit_node_bytes=<n>".
  std::string str() const;
};

/// Knobs mirrored from OptimizerConfig (the subset the analyses need).
struct LintConfig {
  std::uint64_t mem_limit_node_bytes = 0;  ///< 0 = unlimited (prover off).
  bool enable_fusion = true;   ///< Mirrors OptimizerConfig::enable_fusion.
  bool liveness_aware = false; ///< Mirrors OptimizerConfig::liveness_aware.
  /// Run the communication lower-bound prover (rules comm.lb-certificate
  /// and comm.limit-dominated).
  bool comm_bounds = false;
  /// Mirrors OptimizerConfig::enable_replication_template (shrinks the
  /// communication bound — the allgather escape hatch).
  bool enable_replication = false;
};

/// The lint verdict: every finding, plus how many rule evaluations ran
/// (so "zero diagnostics" is distinguishable from "zero checks").
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  std::uint64_t rules_checked = 0;
  /// Set iff a mem.infeasible diagnostic was emitted.
  std::optional<InfeasibilityCertificate> certificate;
  /// One communication certificate per tree, in forest order (filled
  /// iff LintConfig::comm_bounds is set and the forest was buildable).
  std::vector<CommBoundResult> comm_certificates;

  bool ok() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kError) return false;
    }
    return true;
  }
  /// Renders one line per diagnostic ("error node=T1 rule=...: ...") in
  /// emission order, the certificate line (if any), then a summary line
  /// "<N> rules checked, <M> diagnostics".
  std::string str() const;
};

/// Result of the memory prover on one tree.
struct ProverResult {
  /// The root's lower bound · procs_per_node — a certified minimum on
  /// the per-node memory any plan needs.  Deterministic; surfaced via
  /// OptimizerStats::prover_lb_node_bytes.
  std::uint64_t root_lower_bound_node_bytes = 0;
  /// Present iff some node's bound exceeds the configured limit.
  std::optional<InfeasibilityCertificate> certificate;
};

/// Runs the memory-infeasibility prover over one contraction tree (see
/// the file comment for the math).  Never claims infeasibility for an
/// instance any plan — DP or exhaustive — could satisfy (soundness; the
/// fuzz "lint" oracle cross-checks this against brute force).
ProverResult prove_memory(const ContractionTree& tree, const ProcGrid& grid,
                          const LintConfig& cfg);

/// Convenience: just the certificate (empty when the limit is 0 or no
/// bound exceeds it).
std::optional<InfeasibilityCertificate> prove_infeasible(
    const ContractionTree& tree, const ProcGrid& grid,
    const LintConfig& cfg);

/// Statement-level structural errors only (rules expr.* with error
/// severity), batched across the whole program.  Used by `tcemin plan`
/// to upgrade a first-error-wins validation failure into the full list.
std::vector<Diagnostic> structural_errors(const ParsedProgram& program);

/// The full analysis: structural rules, program hygiene warnings, tree
/// anti-patterns, model-interaction lints (skipped when \p table is
/// null), the memory-infeasibility prover (skipped when the limit is
/// 0) and the communication prover (skipped unless
/// LintConfig::comm_bounds).  Diagnostics are emitted in a
/// deterministic order: per-statement rules in program order,
/// program-level rules, tree rules in post order per tree, model rules,
/// memory rule, comm rules.
LintReport lint_program(const ParsedProgram& program, const ProcGrid& grid,
                        const CharacterizationTable* table,
                        const LintConfig& cfg);

}  // namespace tce::lint
