#pragma once
/// \file comm_bounds.hpp
/// Static per-processor communication-volume lower bounds.
///
/// The memory prover (lint.hpp) answers "can any plan fit?"; this module
/// answers "how little can any plan *communicate*?".  For every
/// contraction node v of a tree it certifies a lower bound lb(v), in
/// 8-byte words per processor, on the communication volume any plan the
/// DP or the exhaustive enumerator can construct must spend executing v;
/// the whole-tree bound CommLB(root) = Σ_v lb(v) is sound because the
/// tree shape is fixed — every plan executes every contraction node
/// exactly once, and the per-node collectives are attributed to exactly
/// one node by the canonical word accounting (plan_comm_words below).
///
/// lb(v) = max(lb_struct(v), lb_mem(v)), with each term relaxing the
/// search independently:
///
/// * lb_struct(v) — structural bound from the template geometry.  Every
///   generalized-Cannon choice picks a rotation index from an assigned
///   position of {i,j,k} and rotates the two arrays containing it
///   (√P − 1) hops around the √P×√P grid; under any distribution and any
///   fusion the per-sweep rotated volume of array X satisfies
///   repeat(f)·DistSize(X,d,f) ≥ words(X)/P (fused dims trade a factor
///   into the repeat count, distributed dims contribute ⌈N/√P⌉ ≥ N/√P),
///   so a choice rotating X and Y moves ≥ (√P−1)·(wX + wY)/P words per
///   processor.  Minimizing over the rotation pairs the node's index
///   classes admit relaxes the distribution choice completely.  When the
///   replicate-compute-reduce template is enabled a plan may instead
///   allgather the smaller operand, receiving ≥ (P−1)·min(wA,wB)/P
///   words; the bound takes the minimum over both templates.  Zero-cost
///   redistribution and free operand acquisition only add words.
///
/// * lb_mem(v) — memory-constrained bound (Hong–Kung segmenting in the
///   style of the Loomis–Whitney / bilinear-algorithm literature),
///   active only when a per-node memory limit is set AND both operands
///   of v are input leaves, so every operand element a processor
///   multiplies must be initially resident (≤ M words, enforced by the
///   limit) or received through v's own collectives (the counted
///   words; template semantics give every leaf instance its own
///   buffers, so no other node's traffic can supply them).  Split the
///   busiest processor's ≥ mults/P multiplications into segments of M
///   received words: per segment ≤ 2M distinct elements of each operand
///   are available, and each (a, b) element pair multiplies at most
///   once, so a segment executes ≤ 4M² multiplications — giving
///   received ≥ mults/(4·P·M) − M.  When the result array is provably
///   materialized (root node, fusion disabled, or nothing fusable) the
///   result footprint per segment is also ≤ 2M and the sharper
///   surface-to-volume form applies: ≤ √(2M·2M·2M) multiplications per
///   segment, i.e. received ≥ mults/(4√2·P·√M) − M (halved from the
///   send+receive form because the canonical accounting counts each
///   rotated block once, not at both endpoints).  The materialization
///   guard is essential: a fused result is consumed in place at zero
///   communication, which breaks the segment footprint hypothesis.
///
/// `comm.limit-dominated` reports nodes where lb_mem(v) > lb_struct(v):
/// the memory cap — not the template geometry — is what forces the
/// communication up.  In this plan space blocks stay resident, so the
/// condition typically co-occurs with (near-)infeasible limits.
///
/// The companion plan_comm_words() computes the canonical achieved
/// word count of a finished plan; the fuzz oracle `commlb` asserts
/// CommLB(root) ≤ achieved for every DP and brute-force plan.

#include <cstdint>
#include <string>
#include <vector>

#include "tce/dist/grid.hpp"
#include "tce/expr/contraction.hpp"

namespace tce {
struct OptimizedPlan;  // tce/core/plan.hpp (header-only plan types)
}

namespace tce::lint {

/// Knobs the communication prover needs (subset of OptimizerConfig).
struct CommBoundConfig {
  /// Per-node memory limit; 0 disables the memory-constrained term.
  std::uint64_t mem_limit_node_bytes = 0;
  /// Mirrors OptimizerConfig::enable_fusion (or fixed fusions): when
  /// clear, every result is materialized and the sharper lb_mem form
  /// applies everywhere.
  bool enable_fusion = true;
  /// Mirrors OptimizerConfig::enable_replication_template: adds the
  /// allgather escape hatch to lb_struct.
  bool enable_replication = false;
};

/// Certified bound at one contraction node.
struct NodeCommBound {
  std::string node;                   ///< Result tensor name.
  std::uint64_t lb_struct_words = 0;  ///< Template-geometry bound.
  std::uint64_t lb_mem_words = 0;     ///< Memory-constrained bound.
  std::uint64_t lb_words = 0;         ///< max of the two.
  /// True when the memory cap forces the bound above the structural one
  /// (the comm.limit-dominated condition).
  bool limit_dominated = false;
};

/// Whole-tree certificate: per-node table plus the aggregated bound.
struct CommBoundResult {
  std::string root;  ///< Root tensor name of the certified tree.
  /// CommLB(root) = Σ lb(v) over contraction nodes, words/processor.
  std::uint64_t root_lb_words = 0;
  std::vector<NodeCommBound> nodes;  ///< Contraction nodes, post order.

  /// Parseable rendering: a header line
  /// "certificate rule=comm.lb-certificate root=<name>
  ///  comm_lb_words=<n>" followed by one indented line per node.
  std::string str() const;
};

/// Certifies the communication lower bound of one tree (see the file
/// comment for the math).  Deterministic; never claims more than any
/// DP or exhaustive plan must spend (soundness; cross-checked by the
/// fuzz `commlb` oracle).  Nodes outside the Cannon-representable space
/// (batch indices) contribute 0.
CommBoundResult prove_comm(const ContractionTree& tree, const ProcGrid& grid,
                           const CommBoundConfig& cfg);

/// The canonical achieved communication volume of \p plan, in words per
/// processor: Cannon rotations count (√P−1) received blocks per sweep,
/// an allgathered slice counts s − ⌊s/P⌋ received words per iteration,
/// a reduce-scatter of a partial counts p − ⌊p/√P⌋ (doubled for an
/// allreduce), an operand redistribution counts the source block, and a
/// reduce node's allreduce counts its result block — each scaled by the
/// enclosing fused-loop trip counts, mirroring the optimizer's cost
/// attribution term by term.  The same accounting is reproduced
/// independently by the brute-force enumerator, and `optimize()` stamps
/// the value into OptimizerStats::achieved_comm_words.
std::uint64_t plan_comm_words(const ContractionTree& tree,
                              const OptimizedPlan& plan,
                              const ProcGrid& grid);

}  // namespace tce::lint
