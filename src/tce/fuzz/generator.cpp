#include "tce/fuzz/generator.hpp"

#include <algorithm>
#include <cmath>

#include "tce/common/assert.hpp"
#include "tce/expr/parser.hpp"

namespace tce::fuzz {

namespace {

/// Index names: a, b, ..., z, a1, b1, ...
std::string index_name(std::size_t i) {
  std::string name(1, static_cast<char>('a' + i % 26));
  if (i >= 26) name += std::to_string(i / 26);
  return name;
}

std::string render_dims(const std::vector<std::string>& dims) {
  std::string out = "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i != 0) out += ",";
    out += dims[i];
  }
  return out + "]";
}

/// Mutable generation state: the index pool plus naming counters.
struct Gen {
  Rng& rng;
  FuzzInstance& inst;
  const GenOptions& opts;
  std::uint32_t edge;
  std::size_t inputs = 0;
  std::size_t temps = 0;

  std::uint64_t sample_extent() {
    if (opts.exec_friendly) {
      // The executor requires extents divisible by the grid edge.
      return edge * static_cast<std::uint64_t>(rng.uniform_int(1, 3));
    }
    static constexpr std::uint64_t kExtents[] = {1, 2, 3, 4, 6, 8, 12, 16};
    return kExtents[rng.uniform_int(0, 7)];
  }

  std::string new_index() {
    const std::string name = index_name(inst.indices.size());
    inst.indices.emplace_back(name, sample_extent());
    return name;
  }

  std::vector<std::string> new_indices(int n) {
    std::vector<std::string> v;
    for (int i = 0; i < n; ++i) v.push_back(new_index());
    return v;
  }

  std::string new_input() { return "X" + std::to_string(inputs++); }
  std::string new_temp() { return "T" + std::to_string(++temps); }

  std::vector<std::string> concat(std::vector<std::string> a,
                                  const std::vector<std::string>& b) {
    a.insert(a.end(), b.begin(), b.end());
    std::shuffle(a.begin(), a.end(), rng.engine());
    return a;
  }

  /// Random nonempty subset of \p pool with at most \p max_size members.
  std::vector<std::string> pick_subset(const std::vector<std::string>& pool,
                                       std::size_t max_size) {
    TCE_EXPECTS(!pool.empty());
    std::vector<std::string> shuffled = pool;
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(std::min(max_size, shuffled.size()))));
    shuffled.resize(n);
    return shuffled;
  }

  /// A fresh 2-leaf contraction over brand-new indices; returns the
  /// statement (already appended).
  const FuzzStmt& fresh_contraction() {
    int ni = static_cast<int>(rng.uniform_int(0, 2));
    int nj = static_cast<int>(rng.uniform_int(0, 2));
    const int nk = static_cast<int>(rng.uniform_int(1, 2));
    if (opts.exec_friendly) {
      // Full Cannon triplets need a pick from each of I, J and K.
      ni = std::max(ni, 1);
      nj = std::max(nj, 1);
    } else if (ni == 0 && nj == 0) {
      ni = 1;  // avoid scalar results mid-chain
    }
    const auto I = new_indices(ni);
    const auto J = new_indices(nj);
    const auto K = new_indices(nk);
    FuzzStmt s;
    s.result = new_temp();
    s.result_dims = concat(I, J);
    s.sum_dims = K;
    s.left = new_input();
    s.left_dims = concat(I, K);
    s.right = new_input();
    s.right_dims = concat(K, J);
    inst.stmts.push_back(std::move(s));
    return inst.stmts.back();
  }

  /// Contracts the running intermediate with a fresh input.  Fails
  /// (returns false) when the chain value has too few dimensions.
  bool extend_chain() {
    const FuzzStmt& prev = inst.stmts.back();
    const std::vector<std::string>& d = prev.result_dims;
    const std::size_t min_dims = opts.exec_friendly ? 2 : 1;
    if (d.size() < min_dims) return false;
    // Sum over a subset of the chain dims; exec-friendly keeps at least
    // one unsummed (the contraction's I side must be nonempty).
    const std::size_t max_k =
        opts.exec_friendly ? d.size() - 1 : d.size();
    const auto K = pick_subset(d, std::min<std::size_t>(max_k, 2));
    std::vector<std::string> I;
    for (const std::string& n : d) {
      if (std::find(K.begin(), K.end(), n) == K.end()) I.push_back(n);
    }
    const int min_j = opts.exec_friendly ? 1 : 0;
    const auto J = new_indices(static_cast<int>(rng.uniform_int(min_j, 2)));
    FuzzStmt s;
    s.result = new_temp();
    s.result_dims = concat(I, J);
    s.sum_dims = K;
    s.left = prev.result;
    s.left_dims = prev.result_dims;
    s.right = new_input();
    s.right_dims = concat(K, J);
    inst.stmts.push_back(std::move(s));
    return true;
  }

  /// Reduces a subset of the chain value's dimensions (kReduce node).
  /// \p is_last allows reducing to a scalar.
  bool reduce_chain(bool is_last) {
    const FuzzStmt& prev = inst.stmts.back();
    const std::vector<std::string>& d = prev.result_dims;
    if (d.empty() || (!is_last && d.size() < 2)) return false;
    const std::size_t max_s = is_last ? d.size() : d.size() - 1;
    const auto S = pick_subset(d, max_s);
    FuzzStmt s;
    s.result = new_temp();
    for (const std::string& n : d) {
      if (std::find(S.begin(), S.end(), n) == S.end()) {
        s.result_dims.push_back(n);
      }
    }
    s.sum_dims = S;
    s.left = prev.result;
    s.left_dims = prev.result_dims;
    inst.stmts.push_back(std::move(s));
    return true;
  }

  /// Generates an independent side contraction whose result overlaps the
  /// chain value, then joins the two (two statements).
  bool join_side() {
    const FuzzStmt chain = inst.stmts.back();
    const std::vector<std::string>& d = chain.result_dims;
    if (d.size() < (opts.exec_friendly ? 2u : 1u)) return false;
    // Shared dims become the join's summation set; exec-friendly leaves
    // at least one chain dim unsummed.
    const std::size_t max_shared =
        opts.exec_friendly ? d.size() - 1 : d.size();
    const auto shared = pick_subset(d, std::min<std::size_t>(max_shared, 2));

    // Side result = shared ∪ J_side (fresh); the side contraction splits
    // its result dims into left-only and right-only halves.
    const int min_side_j = opts.exec_friendly ? 1 : 0;
    const auto j_side =
        new_indices(static_cast<int>(rng.uniform_int(min_side_j, 1)));
    std::vector<std::string> side_dims = shared;
    side_dims.insert(side_dims.end(), j_side.begin(), j_side.end());
    std::shuffle(side_dims.begin(), side_dims.end(), rng.engine());
    std::size_t split =
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(side_dims.size())));
    if (opts.exec_friendly) {
      // Both halves nonempty so the side contraction has a full triplet.
      if (side_dims.size() < 2) return false;
      split = std::max<std::size_t>(
          1, std::min(split, side_dims.size() - 1));
    }
    const std::vector<std::string> I_s(side_dims.begin(),
                                       side_dims.begin() +
                                           static_cast<std::ptrdiff_t>(split));
    const std::vector<std::string> J_s(
        side_dims.begin() + static_cast<std::ptrdiff_t>(split),
        side_dims.end());
    const auto K_s = new_indices(static_cast<int>(rng.uniform_int(1, 2)));

    FuzzStmt side;
    side.result = new_temp();
    side.result_dims = side_dims;
    side.sum_dims = K_s;
    side.left = new_input();
    side.left_dims = concat(I_s, K_s);
    side.right = new_input();
    side.right_dims = concat(K_s, J_s);
    inst.stmts.push_back(side);

    FuzzStmt join;
    join.result = new_temp();
    for (const std::string& n : d) {
      if (std::find(shared.begin(), shared.end(), n) == shared.end()) {
        join.result_dims.push_back(n);
      }
    }
    join.result_dims.insert(join.result_dims.end(), j_side.begin(),
                            j_side.end());
    join.sum_dims = shared;
    join.left = chain.result;
    join.left_dims = chain.result_dims;
    join.right = side.result;
    join.right_dims = side.result_dims;
    inst.stmts.push_back(std::move(join));
    return true;
  }
};

}  // namespace

std::string FuzzInstance::program() const {
  std::string out;
  for (const auto& [name, extent] : indices) {
    out += "index " + name + " = " + std::to_string(extent) + "\n";
  }
  for (const FuzzStmt& s : stmts) {
    out += s.result + render_dims(s.result_dims) + " = sum" +
           render_dims(s.sum_dims) + " " + s.left + render_dims(s.left_dims);
    if (!s.is_reduce()) {
      out += " * " + s.right + render_dims(s.right_dims);
    }
    out += "\n";
  }
  return out;
}

std::string FuzzInstance::describe() const {
  std::string out = "seed=" + std::to_string(seed) +
                    " procs=" + std::to_string(procs) +
                    " per-node=" + std::to_string(procs_per_node) +
                    " mem-limit=" + std::to_string(mem_limit_node_bytes);
  out += characterized ? " model=characterized" : " model=analytic";
  if (!enable_fusion) out += " no-fusion";
  if (!enable_redistribution) out += " no-redistribution";
  if (replication) out += " replication";
  if (liveness) out += " liveness";
  return out;
}

FuzzInstance generate_instance(std::uint64_t seed, const GenOptions& opts) {
  Rng rng(seed);
  FuzzInstance inst;
  inst.seed = seed;

  // Grid: perfect-square processor counts with 1 or 2 procs per node.
  static constexpr std::uint32_t kProcs[] = {1, 4, 4, 16};
  inst.procs = opts.exec_friendly
                   ? (rng.uniform_int(0, 3) == 0 ? 16u : 4u)
                   : kProcs[rng.uniform_int(0, 3)];
  inst.procs_per_node =
      inst.procs == 1 ? 1 : (rng.uniform_int(0, 2) == 0 ? 1 : 2);
  const auto edge =
      static_cast<std::uint32_t>(std::lround(std::sqrt(inst.procs)));

  // Cost model: characterized itanium for a third of multi-proc
  // instances (enables the simnet oracle), randomized analytic model
  // otherwise.
  inst.characterized = inst.procs > 1 && rng.uniform_int(0, 2) == 0;
  // The characterized machine is the simulated itanium cluster, which
  // is specified as 2 processors per node.
  if (inst.characterized) inst.procs_per_node = 2;
  inst.step_latency_s = std::pow(10.0, rng.uniform_real(-3.0, -1.0));
  inst.proc_bw = std::pow(10.0, rng.uniform_real(6.5, 9.0));

  inst.enable_fusion = rng.uniform_int(0, 9) != 0;
  inst.enable_redistribution = rng.uniform_int(0, 9) != 0;
  inst.replication = rng.uniform_int(0, 3) == 0;
  inst.liveness = rng.uniform_int(0, 3) == 0;

  Gen g{rng, inst, opts, edge, 0, 0};
  const int target =
      static_cast<int>(rng.uniform_int(1, std::max(1, opts.max_nodes)));
  g.fresh_contraction();
  while (static_cast<int>(inst.stmts.size()) < target) {
    const int remaining = target - static_cast<int>(inst.stmts.size());
    const std::int64_t roll = rng.uniform_int(0, 99);
    bool ok = false;
    if (roll < 20 && remaining >= 2) {
      ok = g.join_side();
    } else if (roll < 35) {
      ok = g.reduce_chain(remaining == 1);
    }
    if (!ok) ok = g.extend_chain();
    if (!ok) break;  // chain value too small to grow further
  }

  // Memory limit: unlimited for a third of instances; otherwise a
  // log-uniform factor of what the *unconstrained* optimum actually
  // uses, so limits are meaningfully tight (forcing fusion and
  // higher-cost low-memory plans) yet only occasionally infeasible.
  if (rng.uniform_int(0, 2) != 0) {
    const ContractionTree tree = build_tree(inst);
    const AnalyticModel model = analytic_model_of(inst);
    const OptimizedPlan plan = optimize(tree, model, config_of(inst));
    const std::uint64_t metric = inst.liveness
                                     ? plan.peak_live_bytes_per_proc
                                     : plan.array_bytes_per_proc;
    const double per_node =
        static_cast<double>(
            checked_add(metric, plan.max_msg_bytes_per_proc)) *
        static_cast<double>(inst.procs_per_node);
    const double factor = std::pow(10.0, rng.uniform_real(-0.3, 0.8));
    inst.mem_limit_node_bytes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(per_node * factor));
  }
  return inst;
}

ContractionTree build_tree(const FuzzInstance& inst) {
  return ContractionTree::from_sequence(
      parse_formula_sequence(inst.program()));
}

OptimizerConfig config_of(const FuzzInstance& inst, unsigned threads) {
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = inst.mem_limit_node_bytes;
  cfg.enable_fusion = inst.enable_fusion;
  cfg.enable_redistribution = inst.enable_redistribution;
  cfg.enable_replication_template = inst.replication;
  cfg.liveness_aware = inst.liveness;
  cfg.threads = threads;
  return cfg;
}

AnalyticModel analytic_model_of(const FuzzInstance& inst) {
  AnalyticParams params;
  params.step_latency_s = inst.step_latency_s;
  params.proc_bw = inst.proc_bw;
  return AnalyticModel(ProcGrid::make(inst.procs, inst.procs_per_node),
                       params);
}

std::string corrupt_text(const std::string& text, Rng& rng) {
  static constexpr char kChars[] =
      "abcxyzij01[]=*,+.#; \n\t\"\\-";
  std::string out = text;
  const char c = kChars[rng.uniform_int(
      0, static_cast<std::int64_t>(sizeof kChars) - 2)];
  const auto pos = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(out.size())));
  switch (rng.uniform_int(0, 2)) {
    case 0:  // replace
      if (!out.empty()) {
        out[std::min(pos, out.size() - 1)] = c;
        break;
      }
      [[fallthrough]];
    case 1:  // insert
      out.insert(pos, 1, c);
      break;
    default:  // delete
      if (!out.empty()) out.erase(std::min(pos, out.size() - 1), 1);
      break;
  }
  return out;
}

}  // namespace tce::fuzz
