#include "tce/fuzz/brute.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "tce/common/assert.hpp"
#include "tce/dist/cannon_space.hpp"
#include "tce/costmodel/rotate_cost.hpp"
#include "tce/fusion/fused.hpp"

namespace tce::fuzz {

namespace {

/// One way of obtaining an operand (mirrors the optimizer's Operand).
struct BOperand {
  IndexSet fusion;
  double cost = 0;
  double redist = 0;
  std::uint64_t mem = 0;
  std::uint64_t max_msg = 0;
  std::uint64_t peak = 0;
  std::uint64_t working = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t comm_words = 0;
  IndexSet loop_indices;
};

class Brute {
  using DedupKey =
      std::tuple<Distribution, std::uint64_t, double, std::uint64_t,
                 std::uint64_t, std::uint64_t, std::uint64_t,
                 std::uint64_t, std::uint64_t>;
  using Dedup = std::set<DedupKey>;

 public:
  Brute(const ContractionTree& tree, const MachineModel& model,
        const OptimizerConfig& cfg, std::size_t cap)
      : tree_(tree),
        model_(model),
        cfg_(cfg),
        grid_(model.grid()),
        space_(tree.space()),
        cap_(cap) {
    TCE_EXPECTS(!cfg.enable_replication_template);
  }

  BruteResult run() {
    sols_.assign(tree_.size(), {});
    for (NodeId id : tree_.post_order()) {
      const ContractionNode& n = tree_.node(id);
      switch (n.kind) {
        case ContractionNode::Kind::kInput:
          break;
        case ContractionNode::Kind::kContraction:
          solve_contraction(id);
          break;
        case ContractionNode::Kind::kReduce:
          solve_reduce(id);
          break;
      }
      if (over_cap_) return {.root = {}, .skipped = true};
    }
    BruteResult out;
    for (const BruteSol& s :
         sols_[static_cast<std::size_t>(tree_.root())]) {
      if (feasible(s)) out.root.push_back(s);
    }
    return out;
  }

 private:
  bool feasible(const BruteSol& s) const {
    if (cfg_.mem_limit_node_bytes == 0) return true;
    const std::uint64_t per_node =
        checked_mul(checked_add(s.metric(cfg_.liveness_aware), s.max_msg),
                    grid_.procs_per_node);
    return per_node <= cfg_.mem_limit_node_bytes;
  }

  std::vector<IndexSet> fusion_candidates(NodeId id) const {
    if (cfg_.fixed_fusions.has_value()) {
      auto it = cfg_.fixed_fusions->find(id);
      return {it == cfg_.fixed_fusions->end() ? IndexSet() : it->second};
    }
    if (!cfg_.enable_fusion) return {IndexSet()};
    std::vector<IndexSet> out;
    for_each_subset(fusable_indices(tree_, id),
                    [&](IndexSet f) { out.push_back(f); });
    return out;
  }

  double repeat_factor(IndexSet f_eff) const {
    double r = 1.0;
    for (IndexId j : f_eff) r *= static_cast<double>(space_.extent(j));
    return r;
  }

  /// Integer fused-loop trip count (the word accounting stays exact).
  std::uint64_t trip_count(IndexSet f_eff) const {
    std::uint64_t r = 1;
    for (IndexId j : f_eff) r = checked_mul(r, space_.extent(j));
    return r;
  }

  double duplication_penalty(NodeId id, int split_dims) const {
    double dup = 1.0;
    for (int d = split_dims; d < 2; ++d) {
      dup *= static_cast<double>(grid_.edge);
    }
    if (dup == 1.0) return 0.0;
    const double share = static_cast<double>(tree_.flops(id)) /
                         static_cast<double>(grid_.procs);
    return model_.compute_time(
        static_cast<std::uint64_t>((dup - 1.0) * share));
  }

  /// All ways of obtaining child \p child in distribution \p beta under
  /// the consumer's \p triplet (mirrors the optimizer's ensure_operands).
  std::vector<BOperand> operands(NodeId child, const Distribution& beta,
                                 IndexSet triplet) const {
    const ContractionNode& cn = tree_.node(child);
    std::vector<BOperand> out;
    if (cn.kind == ContractionNode::Kind::kInput) {
      BOperand o;
      o.mem = dist_bytes(cn.tensor, beta, IndexSet(), space_, grid_);
      o.input_bytes = o.mem;
      out.push_back(o);
      return out;
    }
    for (const BruteSol& s : sols_[static_cast<std::size_t>(child)]) {
      if (!(s.fusion & triplet).empty()) continue;
      BOperand o;
      o.fusion = s.fusion;
      o.cost = s.cost;
      o.mem = s.mem;
      o.max_msg = s.max_msg;
      o.peak = s.peak;
      o.working = s.working;
      o.input_bytes = s.input_bytes;
      o.comm_words = s.comm_words;
      o.loop_indices = cn.loop_indices();
      if (s.dist == beta) {
        out.push_back(o);
      } else if (cfg_.enable_redistribution && s.fusion.empty()) {
        o.redist = redistribute_cost(model_, cn.tensor, s.dist, beta,
                                     IndexSet(), space_);
        o.max_msg = std::max(
            o.max_msg,
            dist_bytes(cn.tensor, s.dist, IndexSet(), space_, grid_));
        // The reshuffle moves the source block once.
        o.comm_words = checked_add(
            o.comm_words,
            dist_size(cn.tensor, s.dist, IndexSet(), space_, grid_));
        out.push_back(o);
      }
    }
    return out;
  }

  /// Appends \p s unless an identical solution is already recorded.
  void keep(std::vector<BruteSol>& sols, Dedup& seen, BruteSol s) {
    const auto key = std::make_tuple(s.dist, s.fusion.bits(), s.cost,
                                     s.mem, s.max_msg, s.peak, s.working,
                                     s.input_bytes, s.comm_words);
    if (!seen.insert(key).second) return;
    sols.push_back(std::move(s));
    if (sols.size() > cap_) over_cap_ = true;
  }

  void solve_contraction(NodeId id) {
    const ContractionNode& n = tree_.node(id);
    const auto choices = enumerate_cannon_choices(n);
    const auto fusions = fusion_candidates(id);
    std::vector<BruteSol> sols;
    Dedup seen;

    for (const CannonChoice& c : choices) {
      IndexSet triplet;
      for (IndexId t : {c.i, c.j, c.k}) {
        if (t != kNoIndex) triplet.insert(t);
      }
      const double dup_penalty =
          duplication_penalty(id, static_cast<int>(triplet.count()) - 1);
      const Distribution alpha = c.result_dist();
      const Distribution beta = c.left_dist();
      const Distribution gamma = c.right_dist();
      const auto lopts = operands(n.left, beta, triplet);
      const auto ropts = operands(n.right, gamma, triplet);
      const TensorRef& lref = tree_.node(n.left).tensor;
      const TensorRef& rref = tree_.node(n.right).tensor;

      for (IndexSet f_u : fusions) {
        if (!(f_u & triplet).empty()) continue;
        const std::uint64_t own_mem =
            dist_bytes(n.tensor, alpha, f_u, space_, grid_);
        for (const BOperand& lo : lopts) {
          if (!fusion_nesting_ok(f_u, lo.fusion, lo.loop_indices)) {
            continue;
          }
          for (const BOperand& ro : ropts) {
            if (!fusion_nesting_ok(f_u, ro.fusion, ro.loop_indices)) {
              continue;
            }
            const IndexSet f_eff = f_u | lo.fusion | ro.fusion;
            const double repeat = repeat_factor(f_eff);
            const std::uint64_t trips = trip_count(f_eff);
            const std::uint64_t hops = grid_.edge - 1;

            BruteSol s;
            s.dist = alpha;
            s.fusion = f_u;
            s.comm_words = checked_add(lo.comm_words, ro.comm_words);
            double rot = 0;
            std::uint64_t msg = std::max(lo.max_msg, ro.max_msg);
            if (c.rotates_left()) {
              const std::uint64_t block =
                  dist_bytes(lref, beta, f_eff, space_, grid_);
              rot += repeat * model_.rotate_cost(block, c.left_rot_dim());
              msg = std::max(msg, block);
              s.comm_words = checked_add(
                  s.comm_words,
                  checked_mul(trips, checked_mul(hops, block / 8)));
            }
            if (c.rotates_right()) {
              const std::uint64_t block =
                  dist_bytes(rref, gamma, f_eff, space_, grid_);
              rot += repeat * model_.rotate_cost(block, c.right_rot_dim());
              msg = std::max(msg, block);
              s.comm_words = checked_add(
                  s.comm_words,
                  checked_mul(trips, checked_mul(hops, block / 8)));
            }
            if (c.rotates_result()) {
              const std::uint64_t block =
                  dist_bytes(n.tensor, alpha, f_eff, space_, grid_);
              rot +=
                  repeat * model_.rotate_cost(block, c.result_rot_dim());
              msg = std::max(msg, block);
              s.comm_words = checked_add(
                  s.comm_words,
                  checked_mul(trips, checked_mul(hops, block / 8)));
            }
            s.cost = lo.cost + ro.cost + lo.redist + ro.redist + rot +
                     dup_penalty;
            s.mem = checked_add(checked_add(lo.mem, ro.mem), own_mem);
            s.max_msg = msg;
            s.input_bytes = checked_add(lo.input_bytes, ro.input_bytes);
            s.peak = std::max(
                {lo.peak, checked_add(lo.working, ro.peak),
                 checked_add(checked_add(lo.working, ro.working),
                             own_mem)});
            s.working = own_mem;
            if (!f_u.empty()) {
              s.working = checked_add(
                  s.working, checked_add(lo.working, ro.working));
            }
            keep(sols, seen, std::move(s));
            if (over_cap_) return;
          }
        }
      }
    }
    sols_[static_cast<std::size_t>(id)] = std::move(sols);
  }

  void solve_reduce(NodeId id) {
    const ContractionNode& n = tree_.node(id);
    const NodeId child = n.left;
    const ContractionNode& cn = tree_.node(child);
    const auto fusions = fusion_candidates(id);
    std::vector<BruteSol> sols;
    Dedup seen;

    // Child options: every distribution of a leaf, or the child's own
    // fully materialized (unfused) solutions.
    std::vector<BruteSol> copts;
    if (cn.kind == ContractionNode::Kind::kInput) {
      for (const Distribution& d : enumerate_distributions(cn.tensor)) {
        BruteSol o;
        o.dist = d;
        o.mem = dist_bytes(cn.tensor, d, IndexSet(), space_, grid_);
        o.input_bytes = o.mem;
        copts.push_back(o);
      }
    } else {
      for (const BruteSol& s : sols_[static_cast<std::size_t>(child)]) {
        if (s.fusion.empty()) copts.push_back(s);
      }
    }

    for (const BruteSol& co : copts) {
      auto position = [&](int d) {
        const IndexId i = co.dist.at(d);
        return (i != kNoIndex && n.sum_indices.contains(i)) ? kNoIndex : i;
      };
      const Distribution rdist(position(1), position(2));
      const bool needs_allreduce = rdist != co.dist;

      for (IndexSet f_u : fusions) {
        if (!(f_u & rdist.index_set()).empty()) continue;
        const std::uint64_t own_mem =
            dist_bytes(n.tensor, rdist, f_u, space_, grid_);
        BruteSol s;
        s.dist = rdist;
        s.fusion = f_u;
        std::uint64_t msg = co.max_msg;
        double allreduce = 0;
        s.comm_words = co.comm_words;
        if (needs_allreduce) {
          const std::uint64_t block = own_mem;
          allreduce = repeat_factor(f_u) * model_.redistribute_cost(block);
          msg = std::max(msg, block);
          s.comm_words = checked_add(
              s.comm_words, checked_mul(trip_count(f_u), block / 8));
        }
        s.cost = co.cost + allreduce;
        s.mem = checked_add(co.mem, own_mem);
        s.max_msg = msg;
        s.input_bytes = co.input_bytes;
        s.peak = std::max(co.peak, checked_add(co.working, own_mem));
        s.working = own_mem;
        if (!f_u.empty()) s.working = checked_add(s.working, co.working);
        keep(sols, seen, std::move(s));
        if (over_cap_) return;
      }
    }
    sols_[static_cast<std::size_t>(id)] = std::move(sols);
  }

  const ContractionTree& tree_;
  const MachineModel& model_;
  const OptimizerConfig& cfg_;
  const ProcGrid& grid_;
  const IndexSpace& space_;
  const std::size_t cap_;
  bool over_cap_ = false;
  std::vector<std::vector<BruteSol>> sols_;
};

}  // namespace

BruteResult brute_force(const ContractionTree& tree,
                        const MachineModel& model,
                        const OptimizerConfig& cfg, std::size_t cap) {
  return Brute(tree, model, cfg, cap).run();
}

}  // namespace tce::fuzz
