#pragma once
/// \file generator.hpp
/// Seeded random workload generation for differential fuzzing.
///
/// A FuzzInstance is a complete, self-describing planner problem: a
/// random contraction program (kept in structured form so the shrinker
/// can edit it), a random processor grid, memory limit, optimizer knobs
/// and cost-model choice.  Instances are generated deterministically
/// from a seed — instance i of a fuzz run with base seed S uses seed
/// S+i, so any failure reproduces alone with `tcemin fuzz --seed <seed>
/// --runs 1`.
///
/// The generator grammar (docs/FUZZING.md) grows a single contraction
/// tree bottom-up as a chain of DSL statements: each step either
/// contracts the running intermediate with a fresh input, reduces a
/// subset of its dimensions, or joins it with an independently generated
/// side contraction.  Every intermediate is consumed, so the program
/// always parses into one tree (never a forest).

#include <cstdint>
#include <string>
#include <vector>

#include "tce/common/rng.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/costmodel/analytic.hpp"
#include "tce/expr/contraction.hpp"

namespace tce::fuzz {

/// One statement of the generated program, in structured form.  A
/// contraction has both operands; a reduction has only `left`.
struct FuzzStmt {
  std::string result;
  std::vector<std::string> result_dims;
  std::vector<std::string> sum_dims;
  std::string left;
  std::vector<std::string> left_dims;
  std::string right;  ///< Empty for a reduction statement.
  std::vector<std::string> right_dims;

  bool is_reduce() const { return right.empty(); }
};

/// A complete randomized planner problem.
struct FuzzInstance {
  std::uint64_t seed = 0;

  /// Index declarations (name, extent), in declaration order.
  std::vector<std::pair<std::string, std::uint64_t>> indices;
  std::vector<FuzzStmt> stmts;

  std::uint32_t procs = 4;
  std::uint32_t procs_per_node = 2;
  std::uint64_t mem_limit_node_bytes = 0;  ///< 0 = unlimited.

  bool enable_fusion = true;
  bool enable_redistribution = true;
  bool replication = false;
  bool liveness = false;

  /// True: cost model is the characterized simulated itanium cluster
  /// (enables the simnet oracle); false: a randomized analytic model.
  bool characterized = false;
  double step_latency_s = 0.01;
  double proc_bw = 50e6;

  /// Renders the instance as DSL program text.
  std::string program() const;
  /// One-line summary of grid, limit and flags (for failure reports).
  std::string describe() const;
};

/// Generation knobs.
struct GenOptions {
  int max_nodes = 3;  ///< Max contraction/reduction statements.
  /// Restrict to shapes the distributed executor can run end to end:
  /// nonempty I/J/K at every contraction (full Cannon triplets) and
  /// extents divisible by the grid edge.
  bool exec_friendly = false;
};

/// Deterministically generates one instance from \p seed.
FuzzInstance generate_instance(std::uint64_t seed, const GenOptions& opts);

/// Parses the instance's program into a ContractionTree.
ContractionTree build_tree(const FuzzInstance& inst);

/// The OptimizerConfig the instance describes.
OptimizerConfig config_of(const FuzzInstance& inst, unsigned threads = 1);

/// The analytic model the instance describes (only meaningful when
/// !characterized; characterized instances measure the itanium cluster).
AnalyticModel analytic_model_of(const FuzzInstance& inst);

/// Returns \p text with one random single-character corruption applied
/// (replace, insert, or delete) — the mutation step of the parser
/// robustness fuzz.
std::string corrupt_text(const std::string& text, Rng& rng);

}  // namespace tce::fuzz
