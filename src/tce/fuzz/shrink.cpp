#include "tce/fuzz/shrink.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "tce/common/parse.hpp"

namespace tce::fuzz {

namespace {

/// Removes statements not reachable from the final statement's result,
/// then index declarations no surviving statement mentions.
void garbage_collect(FuzzInstance& inst) {
  if (inst.stmts.empty()) return;
  std::set<std::string> needed = {inst.stmts.back().result};
  std::vector<bool> keep(inst.stmts.size(), false);
  for (std::size_t i = inst.stmts.size(); i-- > 0;) {
    const FuzzStmt& s = inst.stmts[i];
    if (!needed.contains(s.result)) continue;
    keep[i] = true;
    needed.insert(s.left);
    if (!s.right.empty()) needed.insert(s.right);
  }
  std::vector<FuzzStmt> kept;
  for (std::size_t i = 0; i < inst.stmts.size(); ++i) {
    if (keep[i]) kept.push_back(std::move(inst.stmts[i]));
  }
  inst.stmts = std::move(kept);

  std::set<std::string> used;
  for (const FuzzStmt& s : inst.stmts) {
    used.insert(s.result_dims.begin(), s.result_dims.end());
    used.insert(s.sum_dims.begin(), s.sum_dims.end());
    used.insert(s.left_dims.begin(), s.left_dims.end());
    used.insert(s.right_dims.begin(), s.right_dims.end());
  }
  std::erase_if(inst.indices,
                [&](const auto& ix) { return !used.contains(ix.first); });
}

bool is_intermediate(const FuzzInstance& inst, const std::string& name) {
  return std::any_of(inst.stmts.begin(), inst.stmts.end(),
                     [&](const FuzzStmt& s) { return s.result == name; });
}

/// All one-step simplification candidates of \p inst, roughly most
/// aggressive first.
std::vector<FuzzInstance> candidates(const FuzzInstance& inst) {
  std::vector<FuzzInstance> out;

  // Drop the final statement (re-rooting on the previous one).
  if (inst.stmts.size() > 1) {
    FuzzInstance c = inst;
    c.stmts.pop_back();
    garbage_collect(c);
    out.push_back(std::move(c));
  }

  // Cut an intermediate operand loose: replace it with a fresh input of
  // the same shape, orphaning (and collecting) the subtree producing it.
  for (std::size_t i = 0; i < inst.stmts.size(); ++i) {
    for (const bool right : {false, true}) {
      const std::string& name =
          right ? inst.stmts[i].right : inst.stmts[i].left;
      if (name.empty() || !is_intermediate(inst, name)) continue;
      FuzzInstance c = inst;
      const std::string fresh = fresh_input_name(c);
      (right ? c.stmts[i].right : c.stmts[i].left) = fresh;
      garbage_collect(c);
      out.push_back(std::move(c));
    }
  }

  // Shrink the grid.
  if (inst.procs > 4) {
    FuzzInstance c = inst;
    c.procs = 4;
    c.procs_per_node = std::min(c.procs_per_node, 2u);
    out.push_back(std::move(c));
  }
  if (inst.procs > 1) {
    FuzzInstance c = inst;
    c.procs = 1;
    c.procs_per_node = 1;
    c.characterized = false;  // nothing to characterize on one rank
    out.push_back(std::move(c));
  }

  // Clear the memory limit and extension flags.
  if (inst.mem_limit_node_bytes != 0) {
    FuzzInstance c = inst;
    c.mem_limit_node_bytes = 0;
    out.push_back(std::move(c));
  }
  for (bool FuzzInstance::*flag :
       {&FuzzInstance::replication, &FuzzInstance::liveness,
        &FuzzInstance::characterized}) {
    if (inst.*flag) {
      FuzzInstance c = inst;
      c.*flag = false;
      out.push_back(std::move(c));
    }
  }

  // Halve extents (down to 1).
  for (std::size_t i = 0; i < inst.indices.size(); ++i) {
    if (inst.indices[i].second <= 1) continue;
    FuzzInstance c = inst;
    c.indices[i].second = std::max<std::uint64_t>(1, c.indices[i].second / 2);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

std::string fresh_input_name(const FuzzInstance& inst) {
  // Generated inputs are X0, X1, ...; continue past the largest
  // checked-parseable suffix, then step over any remaining clash (a
  // non-numeric or overflowing X-name contributes nothing to `next`
  // but still occupies its spelling).
  std::set<std::string> used;
  std::uint64_t next = 0;
  for (const FuzzStmt& s : inst.stmts) {
    used.insert(s.result);
    for (const std::string* n : {&s.left, &s.right}) {
      if (n->empty()) continue;
      used.insert(*n);
      if ((*n)[0] != 'X') continue;
      const std::optional<std::uint64_t> suffix =
          parse_u64(std::string_view(*n).substr(1));
      if (suffix.has_value() && *suffix != UINT64_MAX) {
        next = std::max(next, *suffix + 1);
      }
    }
  }
  while (used.contains("X" + std::to_string(next))) ++next;
  return "X" + std::to_string(next);
}

FuzzInstance shrink_instance(
    FuzzInstance inst,
    const std::function<bool(const FuzzInstance&)>& still_fails,
    int max_evals) {
  auto fails = [&](const FuzzInstance& c) {
    try {
      return still_fails(c);
    } catch (...) {
      return false;  // a candidate that breaks is not a simplification
    }
  };
  int evals = 0;
  bool improved = true;
  while (improved && evals < max_evals) {
    improved = false;
    for (FuzzInstance& c : candidates(inst)) {
      if (evals >= max_evals) break;
      ++evals;
      if (fails(c)) {
        inst = std::move(c);
        improved = true;
        break;  // restart from the simplified instance
      }
    }
  }
  return inst;
}

}  // namespace tce::fuzz
