#pragma once
/// \file oracles.hpp
/// The differential oracles: independent ways of evaluating a plan (or
/// the planner) that must agree with the DP optimizer.
///
///   brute    exhaustive enumeration (brute.hpp) vs the DP root frontier
///   threads  plans at --threads 1 and --threads 8 are byte-identical
///   verify   every plan passes the rule-based verifier, including after
///            a JSON round trip through the plan codec
///   simnet   the cost model's predicted rotation seconds match the
///            flow-level network simulation (characterized instances)
///   exec     the distributed numeric executor reproduces the dense
///            reference einsum (exec-friendly instances)
///   lint     the static memory-infeasibility prover (tce/lint) is sound:
///            whenever it certifies "no plan fits", the raw DP (fast
///            path disabled) and brute-force enumeration both agree;
///            prover silence claims nothing and is never checked
///   commlb   the static communication lower-bound prover is sound:
///            CommLB(root) ≤ the canonical achieved word count of the
///            DP plan and of every brute-force root solution, and the
///            stats stamped on the DP plan (comm_lb_words,
///            achieved_comm_words) match independent recomputation
///
/// Each oracle returns pass / skip / fail plus a human-readable detail;
/// a skip means the instance is outside the oracle's domain (e.g. a
/// replication instance for brute), never that a check was silently
/// weakened.

#include <string>

#include "tce/costmodel/machine_model.hpp"
#include "tce/expr/contraction.hpp"
#include "tce/fuzz/generator.hpp"
#include "tce/simnet/network.hpp"

namespace tce::fuzz {

enum class OracleStatus { kPass, kSkip, kFail };

struct OracleOutcome {
  OracleStatus status = OracleStatus::kPass;
  std::string detail;  ///< Failure explanation or skip reason.
};

/// Everything an oracle needs about one instance.  `net` is null when
/// the instance needs no network (analytic, non-exec runs).
struct OracleInput {
  const FuzzInstance* inst = nullptr;
  const ContractionTree* tree = nullptr;
  const MachineModel* model = nullptr;
  const Network* net = nullptr;
};

OracleOutcome oracle_brute(const OracleInput& in);
OracleOutcome oracle_threads(const OracleInput& in);
OracleOutcome oracle_verify(const OracleInput& in);
OracleOutcome oracle_simnet(const OracleInput& in);
OracleOutcome oracle_exec(const OracleInput& in);
OracleOutcome oracle_lint(const OracleInput& in);
OracleOutcome oracle_commlb(const OracleInput& in);

/// Runs the named oracle ("brute", "threads", "verify", "simnet",
/// "exec", "lint", "commlb").  Throws ContractViolation on an unknown
/// name.
OracleOutcome run_oracle(const std::string& name, const OracleInput& in);

}  // namespace tce::fuzz
