#pragma once
/// \file brute.hpp
/// Exhaustive reference planner for differential testing.
///
/// Recomputes the optimizer's search space bottom-up with NO Pareto
/// pruning and NO per-node feasibility filtering: every node keeps every
/// (distribution, fusion, cost, memory) combination its subtree admits,
/// deduplicated only on exact equality of all carried metrics.  The
/// memory metric and largest message are monotone nondecreasing from
/// child to parent, so filtering feasibility at the root alone yields
/// exactly the root solutions the pruned DP can reach — which makes the
/// two directly comparable:
///   * the minimum root cost must equal optimize()'s total_comm_s;
///   * every optimize_frontier() plan must exist among the brute root
///     solutions;
///   * every brute root solution must be weakly dominated by some
///     frontier plan.
///
/// The replicate-compute-reduce template is not mirrored here; callers
/// must not use brute_force with enable_replication_template set.
/// Exhaustive enumeration is exponential — brute_force gives up (sets
/// BruteResult::skipped) once any node's solution list exceeds the cap.

#include <vector>

#include "tce/common/checked.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/costmodel/machine_model.hpp"
#include "tce/dist/distribution.hpp"
#include "tce/expr/contraction.hpp"

namespace tce::fuzz {

/// One exhaustive root solution, carrying the same metrics as the
/// optimizer's internal Sol.
struct BruteSol {
  Distribution dist;
  IndexSet fusion;
  double cost = 0;
  std::uint64_t mem = 0;
  std::uint64_t max_msg = 0;
  std::uint64_t peak = 0;
  std::uint64_t working = 0;
  std::uint64_t input_bytes = 0;
  /// Canonical communication volume in words/processor, accumulated
  /// with exactly lint::plan_comm_words' accounting (rotations count
  /// (√P−1) blocks per sweep, redistributions the source block, reduce
  /// allreduces the result block, each times the fused trip count) —
  /// the differential reference for the `commlb` fuzz oracle.
  std::uint64_t comm_words = 0;

  /// The limit-checked memory metric under the given accounting mode.
  std::uint64_t metric(bool liveness) const {
    return liveness ? checked_add(input_bytes, peak) : mem;
  }
};

/// Result of one exhaustive enumeration.
struct BruteResult {
  /// All distinct feasible root solutions (empty = infeasible).
  std::vector<BruteSol> root;
  /// True when the enumeration was abandoned because a node exceeded
  /// \p cap solutions; `root` is then meaningless.
  bool skipped = false;
};

/// Exhaustively enumerates the search space of \p tree under \p cfg.
/// Throws ContractViolation when cfg.enable_replication_template is set.
BruteResult brute_force(const ContractionTree& tree,
                        const MachineModel& model,
                        const OptimizerConfig& cfg,
                        std::size_t cap = 200000);

}  // namespace tce::fuzz
