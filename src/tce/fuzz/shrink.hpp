#pragma once
/// \file shrink.hpp
/// Greedy test-case minimization for fuzz failures.
///
/// Given a failing FuzzInstance and a predicate that re-runs the failing
/// oracle, shrink_instance repeatedly tries structural simplifications —
/// dropping trailing statements, cutting subtrees loose, shrinking the
/// grid, clearing the memory limit and optimizer flags, halving extents
/// — keeping each change only when the failure persists.  The result is
/// the smallest instance this greedy walk reaches, which is what gets
/// reported and what a seed-pinned regression test should encode.

#include <functional>
#include <string>

#include "tce/fuzz/generator.hpp"

namespace tce::fuzz {

/// Returns an input name "X<n>" that no statement of \p inst uses as a
/// result or operand.  Generated inputs are X0, X1, ...; the suffix is
/// parsed with the checked decimal parser (tce/common/parse.hpp), so a
/// malformed or overflowing suffix — which std::atoi silently folds to
/// 0 or an unspecified value, making the shrinker emit colliding names —
/// is skipped, and the candidate is advanced past any remaining clash.
std::string fresh_input_name(const FuzzInstance& inst);

/// Minimizes \p inst under \p still_fails (which must return true for
/// the original instance's failure; candidates that throw are treated as
/// not failing).  At most \p max_evals predicate evaluations are spent.
FuzzInstance shrink_instance(
    FuzzInstance inst,
    const std::function<bool(const FuzzInstance&)>& still_fails,
    int max_evals = 200);

}  // namespace tce::fuzz
