#pragma once
/// \file harness.hpp
/// The fuzzing driver behind `tcemin fuzz` and tests/test_fuzz.cpp.
///
/// run_fuzz generates `runs` instances from consecutive seeds (base,
/// base+1, ...), runs the selected differential oracles on each
/// (oracles.hpp), shrinks any failure to a minimal reproducer
/// (shrink.hpp), and returns a structured report.  Instances alternate
/// between the general shape distribution and the executor-friendly one
/// so every oracle gets coverage; any failing seed reproduces alone via
/// `tcemin fuzz --seed <seed> --runs 1`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tce/common/error.hpp"

namespace tce::fuzz {

/// Knobs of one fuzz run (the `tcemin fuzz` options).
struct FuzzOptions {
  std::uint64_t seed = 1;
  int runs = 100;
  int max_nodes = 3;
  std::string oracle = "all";  ///< "all" or one oracle name.
  bool shrink = true;
};

/// One oracle disagreement, with its shrunk reproducer.
struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string oracle;
  std::string detail;
  std::string config;   ///< FuzzInstance::describe() of the reproducer.
  std::string program;  ///< DSL program of the reproducer.
};

/// Outcome of a whole fuzz run.
struct FuzzReport {
  std::uint64_t base_seed = 0;
  int runs = 0;
  /// Per-oracle counts of instances actually checked / skipped.
  std::map<std::string, int> executed;
  std::map<std::string, int> skipped;
  /// Skip tallies keyed "oracle: reason" (diagnosing oracle coverage).
  std::map<std::string, int> skip_reasons;
  std::vector<FuzzFailure> failures;

  std::string str() const;
};

/// Raised by the CLI when a fuzz run found disagreements (exit code 6).
class FuzzDisagreement : public Error {
 public:
  explicit FuzzDisagreement(const std::string& what) : Error(what) {}
};

/// True for "all" and every individual oracle name.
bool oracle_name_ok(const std::string& name);

/// Runs the campaign; never throws on oracle disagreements (they are
/// returned in the report).
FuzzReport run_fuzz(const FuzzOptions& opts);

}  // namespace tce::fuzz
