#include "tce/fuzz/harness.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "tce/common/assert.hpp"
#include "tce/common/json.hpp"
#include "tce/common/timer.hpp"

#include "tce/costmodel/characterization.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/fuzz/oracles.hpp"
#include "tce/fuzz/shrink.hpp"
#include "tce/obs/log.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/simnet/network.hpp"
#include "tce/simnet/spec.hpp"

namespace tce::fuzz {

namespace {

const std::vector<std::string>& all_oracles() {
  static const std::vector<std::string> names = {
      "brute", "threads", "verify", "simnet", "exec", "lint", "commlb"};
  return names;
}

/// Per-(procs, procs_per_node) characterization tables: characterizing
/// the simulated cluster is by far the most expensive part of a fuzz
/// run, and every instance on the same grid shares the measurement.
using TableCache =
    std::map<std::pair<std::uint32_t, std::uint32_t>, CharacterizationTable>;

/// Everything the oracles need, with owned lifetimes.
struct Built {
  ContractionTree tree;
  std::unique_ptr<Network> net;
  std::unique_ptr<MachineModel> model;

  OracleInput input(const FuzzInstance& inst) const {
    return {&inst, &tree, model.get(), net.get()};
  }
};

Built build(const FuzzInstance& inst, TableCache& tables) {
  Built b{build_tree(inst), nullptr, nullptr};
  ClusterSpec spec =
      ClusterSpec::itanium2003(inst.procs / inst.procs_per_node);
  spec.procs_per_node = inst.procs_per_node;
  b.net = std::make_unique<Network>(spec);
  if (inst.characterized) {
    const auto key = std::make_pair(inst.procs, inst.procs_per_node);
    auto it = tables.find(key);
    if (it == tables.end()) {
      const ProcGrid grid =
          ProcGrid::make(inst.procs, inst.procs_per_node);
      it = tables.emplace(key, characterize(*b.net, grid)).first;
    }
    b.model = std::make_unique<CharacterizedModel>(it->second);
  } else {
    b.model = std::make_unique<AnalyticModel>(analytic_model_of(inst));
  }
  return b;
}

/// Runs one oracle, converting unexpected exceptions into failures —
/// a crash on generated input is a finding, not a harness error.
/// Wall time per oracle call lands in a per-oracle histogram
/// ("fuzz.oracle.<name>.wall_s") so slow oracles show up in p99.
OracleOutcome run_guarded(const std::string& name, const Built& b,
                          const FuzzInstance& inst) {
  const Stopwatch sw;
  OracleOutcome out;
  try {
    out = run_oracle(name, b.input(inst));
  } catch (const std::exception& e) {
    out = {OracleStatus::kFail,
           std::string("unexpected exception: ") + e.what()};
  }
  if (obs::metrics_enabled()) {
    obs::observe("fuzz.oracle." + name + ".wall_s", sw.elapsed_s());
  }
  return out;
}

}  // namespace

std::string FuzzReport::str() const {
  std::string out = "fuzz: base seed " + std::to_string(base_seed) + ", " +
                    std::to_string(runs) + " runs\n";
  for (const auto& [name, ran] : executed) {
    const auto sk = skipped.find(name);
    out += "  " + name + ": " + std::to_string(ran) + " checked, " +
           std::to_string(sk == skipped.end() ? 0 : sk->second) +
           " skipped\n";
  }
  for (const auto& [reason, n] : skip_reasons) {
    out += "    skip " + std::to_string(n) + "x " + reason + "\n";
  }
  out += std::to_string(failures.size()) + " disagreement" +
         (failures.size() == 1 ? "" : "s") + "\n";
  for (const FuzzFailure& f : failures) {
    out += "\nFAIL seed=" + std::to_string(f.seed) + " oracle=" +
           f.oracle + "\n  " + f.config + "\n";
    for (std::size_t start = 0; start < f.program.size();) {
      const std::size_t nl = f.program.find('\n', start);
      const std::size_t end =
          nl == std::string::npos ? f.program.size() : nl;
      out += "  | " + f.program.substr(start, end - start) + "\n";
      start = end + 1;
    }
    out += "  " + f.detail + "\n";
  }
  return out;
}

bool oracle_name_ok(const std::string& name) {
  if (name == "all") return true;
  for (const std::string& n : all_oracles()) {
    if (n == name) return true;
  }
  return false;
}

FuzzReport run_fuzz(const FuzzOptions& opts) {
  TCE_EXPECTS(oracle_name_ok(opts.oracle));
  FuzzReport report;
  report.base_seed = opts.seed;
  report.runs = opts.runs;

  std::vector<std::string> oracles;
  if (opts.oracle == "all") {
    oracles = all_oracles();
  } else {
    oracles = {opts.oracle};
  }

  // Pre-register every selected oracle so an always-skipped oracle still
  // shows up in the report (str() iterates `executed`): a silently
  // absent row would hide a 100% skip rate.
  for (const std::string& name : oracles) {
    report.executed[name];
    report.skipped[name];
  }

  TableCache tables;
  for (int i = 0; i < opts.runs; ++i) {
    const std::uint64_t seed = opts.seed + static_cast<std::uint64_t>(i);
    GenOptions gen;
    gen.max_nodes = opts.max_nodes;
    // The executor needs full triplets and divisible extents; alternate
    // so every oracle sees instances in its domain.
    gen.exec_friendly =
        opts.oracle == "exec" || (opts.oracle == "all" && seed % 2 == 0);

    std::optional<FuzzInstance> inst_opt;
    std::optional<Built> built;
    try {
      inst_opt = generate_instance(seed, gen);
      built.emplace(build(*inst_opt, tables));
    } catch (const std::exception& e) {
      report.failures.push_back(
          {seed, "generate",
           std::string("instance generation failed: ") + e.what(),
           inst_opt ? inst_opt->describe() : std::string("(not generated)"),
           inst_opt ? inst_opt->program() : std::string()});
      if (obs::log_enabled(obs::LogLevel::kError)) {
        obs::log_event(obs::LogLevel::kError, "fuzz", "generate.failed",
                       json::ObjectWriter().field("seed", seed).str());
      }
      continue;
    }
    const FuzzInstance& inst = *inst_opt;

    for (const std::string& name : oracles) {
      OracleOutcome out = run_guarded(name, *built, inst);
      if (out.status == OracleStatus::kSkip) {
        ++report.skipped[name];
        ++report.skip_reasons[name + ": " + out.detail];
        continue;
      }
      ++report.executed[name];
      if (out.status == OracleStatus::kPass) continue;

      FuzzInstance culprit = inst;
      std::string detail = out.detail;
      if (opts.shrink) {
        culprit = shrink_instance(
            std::move(culprit), [&](const FuzzInstance& cand) {
              const Built cb = build(cand, tables);
              const OracleOutcome o = run_guarded(name, cb, cand);
              if (o.status == OracleStatus::kFail) {
                detail = o.detail;
                return true;
              }
              return false;
            });
      }
      report.failures.push_back({seed, name, detail, culprit.describe(),
                                 culprit.program()});
      if (obs::log_enabled(obs::LogLevel::kError)) {
        obs::log_event(obs::LogLevel::kError, "fuzz", "oracle.disagreement",
                       json::ObjectWriter()
                           .field("seed", seed)
                           .field("oracle", name)
                           .str());
      }
    }
  }
  return report;
}

}  // namespace tce::fuzz
