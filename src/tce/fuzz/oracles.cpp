#include "tce/fuzz/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "tce/cannon/executor.hpp"
#include "tce/common/assert.hpp"
#include "tce/common/error.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/core/plan_json.hpp"
#include "tce/core/simulate.hpp"
#include "tce/fuzz/brute.hpp"
#include "tce/lint/lint.hpp"
#include "tce/tensor/einsum.hpp"
#include "tce/tensor/kernel.hpp"
#include "tce/verify/verifier.hpp"

namespace tce::fuzz {

namespace {

OracleOutcome pass() { return {OracleStatus::kPass, ""}; }
OracleOutcome skip(std::string why) {
  return {OracleStatus::kSkip, std::move(why)};
}
OracleOutcome fail(std::string why) {
  return {OracleStatus::kFail, std::move(why)};
}

bool close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max(std::abs(a), std::abs(b)) +
                                1e-12;
}

/// optimize() with InfeasibleError mapped to nullopt.
std::optional<OptimizedPlan> try_optimize(const OracleInput& in,
                                          unsigned threads = 1) {
  try {
    return optimize(*in.tree, *in.model, config_of(*in.inst, threads));
  } catch (const InfeasibleError&) {
    return std::nullopt;
  }
}

}  // namespace

OracleOutcome oracle_brute(const OracleInput& in) {
  if (in.inst->replication) {
    return skip("replication template not mirrored by brute force");
  }
  const OptimizerConfig cfg = config_of(*in.inst);
  const BruteResult br = brute_force(*in.tree, *in.model, cfg);
  if (br.skipped) return skip("search space above brute-force cap");

  std::vector<OptimizedPlan> frontier;
  bool infeasible = false;
  try {
    frontier = optimize_frontier(*in.tree, *in.model, cfg);
  } catch (const InfeasibleError&) {
    infeasible = true;
  }
  if (infeasible != br.root.empty()) {
    return fail(std::string("feasibility disagreement: DP says ") +
                (infeasible ? "infeasible" : "feasible") +
                ", brute force says " +
                (br.root.empty() ? "infeasible" : "feasible"));
  }
  if (infeasible) return pass();

  const bool lv = cfg.liveness_aware;
  double min_cost = br.root.front().cost;
  for (const BruteSol& s : br.root) min_cost = std::min(min_cost, s.cost);
  if (!close(min_cost, frontier.front().total_comm_s)) {
    return fail("optimal cost mismatch: DP " +
                std::to_string(frontier.front().total_comm_s) +
                " vs brute " + std::to_string(min_cost));
  }

  // Every DP frontier plan must be reachable by exhaustive enumeration.
  for (const OptimizedPlan& p : frontier) {
    const bool found = std::any_of(
        br.root.begin(), br.root.end(), [&](const BruteSol& s) {
          return close(s.cost, p.total_comm_s) &&
                 s.mem == p.array_bytes_per_proc &&
                 s.max_msg == p.max_msg_bytes_per_proc &&
                 checked_add(s.input_bytes, s.peak) ==
                     p.peak_live_bytes_per_proc;
        });
    if (!found) {
      return fail("DP frontier plan (cost " +
                  std::to_string(p.total_comm_s) + ", mem " +
                  std::to_string(p.array_bytes_per_proc) +
                  ") not reachable by brute force");
    }
  }

  // Every exhaustive solution must be weakly dominated by some DP plan
  // on (cost, memory metric, largest message) — otherwise the DP pruned
  // a Pareto point it should have kept.
  for (const BruteSol& s : br.root) {
    const std::uint64_t s_metric = s.metric(lv);
    const bool covered = std::any_of(
        frontier.begin(), frontier.end(), [&](const OptimizedPlan& p) {
          const std::uint64_t p_metric =
              lv ? p.peak_live_bytes_per_proc : p.array_bytes_per_proc;
          return (p.total_comm_s <= s.cost || close(p.total_comm_s, s.cost)) &&
                 p_metric <= s_metric &&
                 p.max_msg_bytes_per_proc <= s.max_msg;
        });
    if (!covered) {
      return fail("brute-force solution (cost " + std::to_string(s.cost) +
                  ", metric " + std::to_string(s_metric) + ", msg " +
                  std::to_string(s.max_msg) +
                  ") is not dominated by any DP frontier plan");
    }
  }
  return pass();
}

OracleOutcome oracle_threads(const OracleInput& in) {
  // Wall times are the one documented nondeterminism in a plan; blank
  // them so the comparison covers every decision-carrying field.
  const auto stamp = [&](OptimizedPlan p) {
    p.stats.search_wall_s = 0;
    for (NodeSearchStats& n : p.stats.nodes) n.wall_s = 0;
    return plan_to_json(p, in.tree->space());
  };
  std::optional<std::string> one, eight;
  if (auto p = try_optimize(in, 1)) one = stamp(std::move(*p));
  if (auto p = try_optimize(in, 8)) eight = stamp(std::move(*p));
  if (one.has_value() != eight.has_value()) {
    return fail(std::string("--threads 1 ") +
                (one ? "found a plan" : "was infeasible") +
                " but --threads 8 " +
                (eight ? "found a plan" : "was infeasible"));
  }
  if (one && *one != *eight) {
    std::size_t at = 0;
    while (at < one->size() && at < eight->size() &&
           (*one)[at] == (*eight)[at]) {
      ++at;
    }
    return fail("plan JSON differs between --threads 1 and --threads 8 "
                "(first difference at byte " +
                std::to_string(at) + ")");
  }
  return pass();
}

OracleOutcome oracle_verify(const OracleInput& in) {
  const auto plan = try_optimize(in);
  if (!plan) return skip("infeasible under the memory limit");
  VerifyOptions vo;
  vo.mem_limit_node_bytes = in.inst->mem_limit_node_bytes;
  const VerifyReport report = verify_plan(*in.tree, *in.model, *plan, vo);
  if (!report.ok()) return fail(report.str(*in.tree));

  const std::string json = plan_to_json(*plan, in.tree->space());
  OptimizedPlan back;
  try {
    back = plan_from_json(json, *in.tree);
  } catch (const Error& e) {
    return fail(std::string("plan JSON does not parse back: ") + e.what());
  }
  if (!close(back.total_comm_s, plan->total_comm_s) ||
      back.array_bytes_per_proc != plan->array_bytes_per_proc ||
      back.max_msg_bytes_per_proc != plan->max_msg_bytes_per_proc ||
      back.peak_live_bytes_per_proc != plan->peak_live_bytes_per_proc) {
    return fail("JSON round trip changed the plan totals");
  }
  const VerifyReport again = verify_plan(*in.tree, *in.model, back, vo);
  if (!again.ok()) {
    return fail("plan fails verification after JSON round trip:\n" +
                again.str(*in.tree));
  }
  return pass();
}

OracleOutcome oracle_simnet(const OracleInput& in) {
  if (!in.inst->characterized || in.net == nullptr) {
    return skip("analytic model has no reference network");
  }
  const auto plan = try_optimize(in);
  if (!plan) return skip("infeasible under the memory limit");
  double pred = 0;
  for (const PlanStep& s : plan->steps) {
    pred += s.rot_left_s + s.rot_right_s + s.rot_result_s;
  }
  const double sim =
      simulate_plan_comm(*in.net, in.model->grid(), *in.tree, *plan);
  if (pred <= 1e-9) {
    if (sim > 1e-6) {
      return fail("model predicts no rotation traffic but simulation "
                  "measures " +
                  std::to_string(sim) + " s");
    }
    return pass();
  }
  // Inside the measured block-size range the characterized curves track
  // the simulation closely; when the search had to extrapolate below or
  // above the ladder (tiny or huge blocks) the curve shape is a guess
  // and only the order of magnitude is checked.
  const double tol = plan->stats.extrapolations > 0 ? 1.5 : 0.35;
  const double rel = std::abs(sim - pred) / pred;
  if (rel > tol) {
    return fail("predicted rotation time " + std::to_string(pred) +
                " s vs simulated " + std::to_string(sim) +
                " s (relative error " + std::to_string(rel) +
                ", tolerance " + std::to_string(tol) + ")");
  }
  return pass();
}

OracleOutcome oracle_exec(const OracleInput& in) {
  if (in.net == nullptr) return skip("no network to execute on");
  const auto plan = try_optimize(in);
  if (!plan) return skip("infeasible under the memory limit");

  const ProcGrid& grid = in.model->grid();
  for (const auto& [name, extent] : in.inst->indices) {
    if (extent % grid.edge != 0) {
      return skip("extents not divisible by the grid edge");
    }
  }
  std::map<NodeId, ExecChoice> choices;
  for (const PlanStep& s : plan->steps) {
    ExecChoice ec;
    if (s.tmpl == StepTemplate::kReplicated) {
      ec.replicated = true;
      ec.repl.replicate_right = s.replicate_right;
      ec.repl.stationary_dist =
          s.replicate_right ? s.left_dist : s.right_dist;
      ec.repl.result_dist = s.result_dist;
      ec.repl.reduce_dim = s.reduce_dim;
    } else {
      if (s.choice.i == kNoIndex || s.choice.j == kNoIndex ||
          s.choice.k == kNoIndex) {
        return skip("plan has a partial Cannon triplet");
      }
      ec.cannon = s.choice;
    }
    choices[s.node] = ec;
  }

  Rng rng(in.inst->seed ^ 0xE45C0DEDULL);
  const auto inputs = make_random_inputs(*in.tree, rng);
  // The ground truth is the reference loop nest, pinned explicitly so
  // the oracle never compares the tiled kernel against itself; the
  // executor then runs under *both* kernels, which differentially
  // exercises the TTGT lowering and the tiled GEMM on every fuzzed
  // shape.
  DenseTensor want = [&] {
    ScopedKernelConfig force_ref(KernelKind::kReference);
    return evaluate_tree(*in.tree, inputs);
  }();

  double scale = 1.0;
  for (double v : want.data()) scale = std::max(scale, std::abs(v));
  for (const KernelKind kind :
       {KernelKind::kReference, KernelKind::kTiled}) {
    ScopedKernelConfig force(kind);
    const TreeRunResult got =
        run_tree(*in.net, grid, *in.tree, choices, inputs);
    const double diff = got.result.max_abs_diff(want);
    if (diff > 1e-9 * scale) {
      return fail(std::string("distributed execution (kernel=") +
                  kernel_kind_name(kind) +
                  ") differs from the reference einsum: max |Δ| = " +
                  std::to_string(diff));
    }
  }
  return pass();
}

OracleOutcome oracle_lint(const OracleInput& in) {
  if (in.inst->mem_limit_node_bytes == 0) {
    return skip("no memory limit; nothing for the prover to certify");
  }
  OptimizerConfig cfg = config_of(*in.inst);
  lint::LintConfig lcfg;
  lcfg.mem_limit_node_bytes = cfg.mem_limit_node_bytes;
  lcfg.enable_fusion = cfg.enable_fusion || cfg.fixed_fusions.has_value();
  lcfg.liveness_aware = cfg.liveness_aware;
  const std::optional<lint::InfeasibilityCertificate> cert =
      lint::prove_infeasible(*in.tree, in.model->grid(), lcfg);
  // Prover silence is not a feasibility claim — only a certificate is
  // checkable.
  if (!cert) return pass();

  // The raw DP (fast path disabled, so the comparison is not circular)
  // must also find the instance infeasible.
  cfg.enable_static_prover = false;
  try {
    const OptimizedPlan plan = optimize(*in.tree, *in.model, cfg);
    return fail("prover certified infeasibility (" + cert->str() +
                ") but the DP found a plan using " +
                std::to_string(plan.bytes_per_node()) + " bytes/node");
  } catch (const InfeasibleError&) {
  }

  // So must exhaustive enumeration, inside its domain.
  if (in.inst->replication) return pass();
  const BruteResult br = brute_force(*in.tree, *in.model, cfg);
  if (br.skipped) return pass();
  if (!br.root.empty()) {
    return fail("prover certified infeasibility (" + cert->str() +
                ") but brute force found " +
                std::to_string(br.root.size()) + " feasible solutions");
  }
  return pass();
}

OracleOutcome oracle_commlb(const OracleInput& in) {
  const OptimizerConfig cfg = config_of(*in.inst);
  lint::CommBoundConfig ccfg;
  ccfg.mem_limit_node_bytes = cfg.mem_limit_node_bytes;
  ccfg.enable_fusion = cfg.enable_fusion || cfg.fixed_fusions.has_value();
  ccfg.enable_replication = cfg.enable_replication_template;
  const std::uint64_t lb =
      lint::prove_comm(*in.tree, in.model->grid(), ccfg).root_lb_words;

  bool checked = false;

  // The DP plan: the stamped stats must match independent recomputation
  // and the certified bound must hold.
  if (const auto plan = try_optimize(in)) {
    checked = true;
    if (plan->stats.comm_lb_words != lb) {
      return fail("stamped comm_lb_words " +
                  std::to_string(plan->stats.comm_lb_words) +
                  " != recomputed certificate " + std::to_string(lb));
    }
    const std::uint64_t achieved =
        lint::plan_comm_words(*in.tree, *plan, in.model->grid());
    if (plan->stats.achieved_comm_words != achieved) {
      return fail("stamped achieved_comm_words " +
                  std::to_string(plan->stats.achieved_comm_words) +
                  " != recomputed " + std::to_string(achieved));
    }
    if (lb > achieved) {
      return fail("UNSOUND: certified comm LB " + std::to_string(lb) +
                  " words/proc exceeds the DP plan's achieved " +
                  std::to_string(achieved));
    }
  }

  // Every exhaustive root solution, inside brute force's domain.
  if (!in.inst->replication) {
    const BruteResult br = brute_force(*in.tree, *in.model, cfg);
    if (!br.skipped) {
      for (const BruteSol& s : br.root) {
        checked = true;
        if (lb > s.comm_words) {
          return fail("UNSOUND: certified comm LB " + std::to_string(lb) +
                      " words/proc exceeds a brute-force plan's achieved " +
                      std::to_string(s.comm_words));
        }
      }
    }
  }

  if (!checked) {
    return skip("no feasible plan to compare the certificate against");
  }
  return pass();
}

OracleOutcome run_oracle(const std::string& name, const OracleInput& in) {
  if (name == "brute") return oracle_brute(in);
  if (name == "threads") return oracle_threads(in);
  if (name == "verify") return oracle_verify(in);
  if (name == "simnet") return oracle_simnet(in);
  if (name == "exec") return oracle_exec(in);
  if (name == "lint") return oracle_lint(in);
  if (name == "commlb") return oracle_commlb(in);
  TCE_UNREACHABLE("unknown oracle name");
}

}  // namespace tce::fuzz
