/// \file registry.cpp
/// Registry-drift rules: the hand-maintained identifier registries —
/// lint rule ids, verifier rule ids, tce-check's own rule ids, CLI exit
/// codes, obs metric names, and `tce-*/N` schema strings — are
/// extracted from the code and cross-checked three ways: present in
/// their docs table, referenced by at least one test, and free of
/// duplicates.  The reverse direction is checked too: a docs table may
/// not list an identifier the code does not define (the stale-row /
/// typo class).

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tce/check/internal.hpp"

namespace tce::check::internal {

namespace {

/// One extracted identifier with its defining site.
struct Item {
  std::string id;
  std::string file;
  int line = 0;
};

/// One markdown table cell (first data row cells only carry ids; the
/// extractor skips header rows, separator rows, and `<placeholder>`
/// cells).
struct Cell {
  std::string text;
  int line = 0;
  std::size_t col = 0;
};

void add(std::vector<Finding>& findings, std::string file, int line,
         std::string rule, std::string message) {
  Finding out;
  out.severity = Severity::kError;
  out.file = std::move(file);
  out.line = line;
  out.rule = std::move(rule);
  out.message = std::move(message);
  findings.push_back(std::move(out));
}

std::string trim(std::string s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  s = s.substr(b, e - b);
  if (s.size() >= 2 && s.front() == '`' && s.back() == '`') {
    s = s.substr(1, s.size() - 2);
  }
  return s;
}

bool separator_row(const std::string& line) {
  bool dash = false;
  for (char c : line) {
    if (c == '-') {
      dash = true;
    } else if (c != '|' && c != ':' && c != ' ' && c != '\t' && c != '\r') {
      return false;
    }
  }
  return dash;
}

/// Extracts every data-row cell from every markdown table in \p text.
/// A table row starts with '|'; the row preceding a separator row is a
/// header and is skipped along with the separator itself.
std::vector<Cell> table_cells(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = (eol == std::string::npos) ? text.size() : eol;
    lines.push_back(text.substr(pos, end - pos));
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  std::vector<Cell> out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string row = lines[i];
    std::size_t b = row.find_first_not_of(" \t");
    if (b == std::string::npos || row[b] != '|') continue;
    if (separator_row(row)) continue;
    if (i + 1 < lines.size() && separator_row(lines[i + 1])) continue;  // header
    // Split on '|'; the leading '|' yields an empty first piece.
    std::vector<std::string> cells;
    std::size_t start = b + 1;
    while (start <= row.size()) {
      const std::size_t bar = row.find('|', start);
      const std::size_t end = (bar == std::string::npos) ? row.size() : bar;
      cells.push_back(trim(row.substr(start, end - start)));
      if (bar == std::string::npos) break;
      start = bar + 1;
    }
    if (!cells.empty() && cells.back().empty()) cells.pop_back();
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].empty()) continue;
      if (cells[c].find('<') != std::string::npos) continue;  // placeholder
      Cell cell;
      cell.text = cells[c];
      cell.line = static_cast<int>(i + 1);
      cell.col = c;
      out.push_back(std::move(cell));
    }
  }
  return out;
}

const std::string* find_text(
    const std::vector<std::pair<std::string, std::string>>& files,
    std::string_view path) {
  for (const auto& [p, text] : files) {
    if (p == path) return &text;
  }
  return nullptr;
}

bool tests_reference(const Tree& tree, std::string_view id) {
  for (const auto& [path, text] : tree.tests) {
    (void)path;
    if (text.find(id) != std::string::npos) return true;
  }
  return false;
}

bool family_match(std::string_view id,
                  const std::vector<std::string_view>& families) {
  const std::size_t dot = id.find('.');
  if (dot == std::string_view::npos) return false;
  const std::string_view head = id.substr(0, dot);
  for (std::string_view f : families) {
    if (f == head) return true;
  }
  return false;
}

/// Dotted string literals from sources under \p dir whose first segment
/// is one of \p families, deduplicated to their first occurrence (files
/// are already sorted, so "first" is deterministic).
std::vector<Item> ids_in_dir(const Tree& tree, std::string_view dir,
                             const std::vector<std::string_view>& families) {
  std::vector<Item> out;
  std::set<std::string> seen;
  for (const SourceFile& f : tree.sources) {
    if (f.path.rfind(dir, 0) != 0) continue;
    for (const auto& [id, line] : dotted_literals(f)) {
      if (!family_match(id, families)) continue;
      if (!seen.insert(id).second) continue;
      out.push_back(Item{id, f.path, line});
    }
  }
  return out;
}

/// Metric names: first-argument string literals of `obs::count(`,
/// `obs::gauge(`, `obs::observe(` calls.  Dynamically composed names
/// (`"verify.rule." + id`) are skipped: the literal is not a dotted id
/// and the following token is not ',' or ')'.
std::vector<Item> metric_ids(const Tree& tree) {
  std::vector<Item> out;
  std::set<std::string> seen;
  for (const SourceFile& f : tree.sources) {
    const std::vector<Token>& ts = f.tokens;
    for (std::size_t i = 0; i + 5 < ts.size(); ++i) {
      if (!(ts[i].kind == Tok::kIdent && ts[i].text == "obs")) continue;
      if (!(ts[i + 1].kind == Tok::kPunct && ts[i + 1].text == ":")) continue;
      if (!(ts[i + 2].kind == Tok::kPunct && ts[i + 2].text == ":")) continue;
      const Token& fn = ts[i + 3];
      if (fn.kind != Tok::kIdent ||
          (fn.text != "count" && fn.text != "gauge" && fn.text != "observe")) {
        continue;
      }
      if (!(ts[i + 4].kind == Tok::kPunct && ts[i + 4].text == "(")) continue;
      const Token& name = ts[i + 5];
      if (name.kind != Tok::kString || !is_dotted_id(name.text)) continue;
      if (i + 6 < ts.size() && ts[i + 6].kind == Tok::kPunct &&
          (ts[i + 6].text == "," || ts[i + 6].text == ")")) {
        if (seen.insert(name.text).second) {
          out.push_back(Item{name.text, f.path, name.line});
        }
      }
    }
  }
  return out;
}

/// `tce-<name>/<digits>` schema strings found inside \p text, with the
/// line of each first occurrence.
std::vector<Item> schema_scan(const std::string& text, const std::string& file,
                              std::set<std::string>& seen) {
  std::vector<Item> out;
  int line = 1;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      continue;
    }
    if (text.compare(i, 4, "tce-") != 0) continue;
    std::size_t j = i + 4;
    while (j < text.size() && text[j] >= 'a' && text[j] <= 'z') ++j;
    if (j == i + 4 || j >= text.size() || text[j] != '/') continue;
    std::size_t k = j + 1;
    while (k < text.size() && text[k] >= '0' && text[k] <= '9') ++k;
    if (k == j + 1) continue;
    const std::string id = text.substr(i, k - i);
    if (seen.insert(id).second) out.push_back(Item{id, file, line});
    i = k - 1;
  }
  return out;
}

std::vector<Item> schema_ids_in_sources(const Tree& tree) {
  std::vector<Item> out;
  std::set<std::string> seen;
  for (const SourceFile& f : tree.sources) {
    for (const Token& t : f.tokens) {
      if (t.kind != Tok::kString) continue;
      for (Item& it : schema_scan(t.text, f.path, seen)) {
        it.line = t.line;  // the literal's line, not an offset into it
        out.push_back(std::move(it));
      }
    }
  }
  return out;
}

/// CLI exit codes: parses `enum ExitCode { kExitOk = 0, ... }` from
/// src/tce/cli/cli.hpp at the token level.  Returns (name, value)
/// items; value collisions raise check.registry.duplicate.
std::vector<Item> exit_code_ids(const Tree& tree,
                                std::vector<Finding>& findings) {
  std::vector<Item> out;
  const std::string path = "src/tce/cli/cli.hpp";
  const SourceFile* file = nullptr;
  for (const SourceFile& f : tree.sources) {
    if (f.path == path) file = &f;
  }
  if (file == nullptr) return out;
  const std::vector<Token>& ts = file->tokens;
  std::size_t i = 0;
  for (; i + 1 < ts.size(); ++i) {
    if (ts[i].kind == Tok::kIdent && ts[i].text == "enum" &&
        ((ts[i + 1].kind == Tok::kIdent && ts[i + 1].text == "ExitCode") ||
         (i + 2 < ts.size() && ts[i + 1].kind == Tok::kIdent &&
          ts[i + 1].text == "class" && ts[i + 2].kind == Tok::kIdent &&
          ts[i + 2].text == "ExitCode"))) {
      break;
    }
  }
  while (i < ts.size() && !(ts[i].kind == Tok::kPunct && ts[i].text == "{")) {
    ++i;
  }
  if (i >= ts.size()) return out;
  ++i;
  long next_value = 0;
  std::map<long, std::string> by_value;
  while (i < ts.size() && !(ts[i].kind == Tok::kPunct && ts[i].text == "}")) {
    if (ts[i].kind != Tok::kIdent) {
      ++i;
      continue;
    }
    const std::string name = ts[i].text;
    const int line = ts[i].line;
    long value = next_value;
    if (i + 2 < ts.size() && ts[i + 1].kind == Tok::kPunct &&
        ts[i + 1].text == "=" && ts[i + 2].kind == Tok::kNumber) {
      value = 0;
      for (char c : ts[i + 2].text) {
        if (c >= '0' && c <= '9') value = value * 10 + (c - '0');
      }
      i += 2;
    }
    next_value = value + 1;
    const auto [it, fresh] = by_value.emplace(value, name);
    if (!fresh) {
      add(findings, path, line, "check.registry.duplicate",
          "exit-code enumerators " + it->second + " and " + name +
              " share value " + std::to_string(value));
    }
    out.push_back(Item{name, path, line});
    ++i;
    while (i < ts.size() && !(ts[i].kind == Tok::kPunct && ts[i].text == ",") &&
           !(ts[i].kind == Tok::kPunct && ts[i].text == "}")) {
      ++i;
    }
    if (i < ts.size() && ts[i].kind == Tok::kPunct && ts[i].text == ",") ++i;
  }
  return out;
}

/// One registry cross-check specification.
struct Spec {
  std::string what;                        ///< e.g. "lint rule id".
  std::vector<Item> code;                  ///< Extracted from sources.
  std::vector<std::string> doc_paths;      ///< Id must appear in each.
  std::vector<std::string_view> families;  ///< Filter for doc-side ids.
  bool doc_cells_first_only = true;   ///< Ids live in first table cells.
  bool doc_substring = false;         ///< Presence = substring of doc text
                                      ///< (schema strings in prose).
  bool kexit_cells = false;           ///< Doc ids are `kExit*` cells.
};

bool is_kexit(std::string_view s) {
  if (s.rfind("kExit", 0) != 0 || s.size() <= 5) return false;
  for (char c : s.substr(5)) {
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))) return false;
  }
  return true;
}

void run_spec(const Tree& tree, const Spec& spec,
              std::vector<Finding>& findings, std::uint64_t& rules_checked) {
  std::set<std::string> code_ids;
  for (const Item& it : spec.code) code_ids.insert(it.id);

  for (const std::string& doc_path : spec.doc_paths) {
    const std::string* text = find_text(tree.docs, doc_path);
    if (text == nullptr) {
      add(findings, doc_path, 0, "check.registry.undocumented",
          "registry doc for " + spec.what + " is missing entirely");
      ++rules_checked;
      continue;
    }
    if (spec.doc_substring) {
      for (const Item& it : spec.code) {
        ++rules_checked;
        if (text->find(it.id) == std::string::npos) {
          add(findings, it.file, it.line, "check.registry.undocumented",
              spec.what + " `" + it.id + "` is not described in " + doc_path);
        }
      }
      // Reverse direction: schema-shaped strings in the doc must exist
      // in code.
      std::set<std::string> seen;
      for (const Item& doc_id : schema_scan(*text, doc_path, seen)) {
        ++rules_checked;
        if (code_ids.find(doc_id.id) == code_ids.end()) {
          add(findings, doc_path, doc_id.line, "check.registry.unknown-doc",
              doc_path + " mentions " + spec.what + " `" + doc_id.id +
                  "` which the code does not define");
        }
      }
      continue;
    }
    // Table-based registries.
    std::vector<Cell> doc_ids;
    std::set<std::string> doc_set;
    for (Cell& cell : table_cells(*text)) {
      if (spec.doc_cells_first_only && cell.col != 0) continue;
      const bool match =
          spec.kexit_cells
              ? is_kexit(cell.text)
              : (is_dotted_id(cell.text) &&
                 (spec.families.empty() ||
                  family_match(cell.text, spec.families)));
      if (!match) continue;
      ++rules_checked;
      if (!doc_set.insert(cell.text).second) {
        add(findings, doc_path, cell.line, "check.registry.duplicate",
            doc_path + " lists " + spec.what + " `" + cell.text + "` twice");
      }
      doc_ids.push_back(std::move(cell));
    }
    for (const Item& it : spec.code) {
      ++rules_checked;
      if (doc_set.find(it.id) == doc_set.end()) {
        add(findings, it.file, it.line, "check.registry.undocumented",
            spec.what + " `" + it.id + "` is missing from the " + doc_path +
                " table");
      }
    }
    for (const Cell& cell : doc_ids) {
      ++rules_checked;
      if (code_ids.find(cell.text) == code_ids.end()) {
        add(findings, doc_path, cell.line, "check.registry.unknown-doc",
            doc_path + " lists " + spec.what + " `" + cell.text +
                "` which the code does not define");
      }
    }
  }

  for (const Item& it : spec.code) {
    ++rules_checked;
    if (!tests_reference(tree, it.id)) {
      add(findings, it.file, it.line, "check.registry.untested",
          spec.what + " `" + it.id + "` is referenced by no test under tests/");
    }
  }
}

}  // namespace

void run_registry_rules(const Tree& tree, std::vector<Finding>& findings,
                        std::uint64_t& rules_checked) {
  {
    Spec lint;
    lint.what = "lint rule id";
    lint.families = {"expr", "tree", "model", "mem", "comm"};
    lint.code = ids_in_dir(tree, "src/tce/lint/", lint.families);
    lint.doc_paths = {"docs/LINT.md"};
    run_spec(tree, lint, findings, rules_checked);
  }
  {
    Spec verify;
    verify.what = "verifier rule id";
    verify.families = {"structure", "cannon", "repl", "fusion",
                       "dist",      "reduce", "cost", "mem"};
    verify.code = ids_in_dir(tree, "src/tce/verify/", verify.families);
    verify.doc_paths = {"docs/VERIFIER.md"};
    run_spec(tree, verify, findings, rules_checked);
  }
  {
    // Self-check: tce-check's own rule ids are a registry too.
    Spec self;
    self.what = "check rule id";
    self.families = {"check"};
    self.code = ids_in_dir(tree, "src/tce/check/", self.families);
    self.doc_paths = {"docs/STATIC_ANALYSIS.md", "docs/FORMATS.md"};
    run_spec(tree, self, findings, rules_checked);
  }
  {
    Spec exits;
    exits.what = "exit-code enumerator";
    exits.code = exit_code_ids(tree, findings);
    exits.doc_paths = {"docs/FORMATS.md"};
    exits.doc_cells_first_only = false;
    exits.kexit_cells = true;
    run_spec(tree, exits, findings, rules_checked);
  }
  {
    Spec metrics;
    metrics.what = "metric name";
    metrics.code = metric_ids(tree);
    metrics.doc_paths = {"docs/OBSERVABILITY.md"};
    // Empty family filter: any dotted first cell in OBSERVABILITY.md
    // tables is a claimed metric name, so a stale row whose whole
    // family was renamed away still trips check.registry.unknown-doc.
    run_spec(tree, metrics, findings, rules_checked);
  }
  {
    Spec schemas;
    schemas.what = "schema string";
    schemas.code = schema_ids_in_sources(tree);
    schemas.doc_paths = {"docs/FORMATS.md"};
    schemas.doc_substring = true;
    run_spec(tree, schemas, findings, rules_checked);
  }
}

}  // namespace tce::check::internal
