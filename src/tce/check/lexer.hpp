#pragma once
/// \file lexer.hpp
/// A minimal C++ token scanner for tce-check's source rules.
///
/// This is not a compiler front end: it only separates the things the
/// rules must never confuse — comments, string/character literals
/// (including raw strings), preprocessor directives, identifiers,
/// numbers and punctuation — and records line numbers.  Test fixtures
/// quote banned tokens inside string literals all the time, so getting
/// the literal/comment boundary right is the load-bearing part; the
/// rules themselves then run over the clean token stream.
///
/// Comments are not discarded silently: `tce-check: allow(<rule>)`
/// suppression directives are collected per line so run_checks can
/// drop findings the code explicitly vouches for.

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tce::check {

enum class Tok {
  kIdent,      ///< Identifier or keyword.
  kNumber,     ///< Numeric literal (pp-number, loosely).
  kString,     ///< String literal (text excludes quotes/prefixes).
  kChar,       ///< Character literal.
  kPunct,      ///< One punctuation character.
  kDirective,  ///< A whole preprocessor line (text after '#').
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character.
};

/// One lexed source file.
struct SourceFile {
  std::string path;  ///< Root-relative path.
  std::vector<Token> tokens;
  /// Rules allowed per line: a directive comment on line L suppresses
  /// matching findings on L (trailing comment) and L+1 (line above).
  std::map<int, std::vector<std::string>> allows;
};

/// Lexes \p text.  Never fails: unterminated constructs are closed at
/// end of file (the rules degrade gracefully on malformed input).
SourceFile lex_cpp(std::string path, std::string_view text);

/// True when \p s entirely matches the dotted-identifier pattern
/// `[a-z][a-z0-9_-]*(.[a-z][a-z0-9_-]*)+` (at least two segments, no
/// trailing dot — prefix literals like "verify.rule." do not match).
bool is_dotted_id(std::string_view s);

/// All string-literal tokens of \p file satisfying is_dotted_id, as
/// (text, line) pairs — the raw material for registry extraction.
std::vector<std::pair<std::string, int>> dotted_literals(
    const SourceFile& file);

}  // namespace tce::check
