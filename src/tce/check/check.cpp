/// \file check.cpp
/// tce-check orchestration: tree loading, rule dispatch, suppression,
/// deterministic ordering, and text/JSON rendering.

#include "tce/check/check.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "tce/check/internal.hpp"
#include "tce/common/error.hpp"
#include "tce/common/json.hpp"

namespace tce::check {

namespace internal {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::vector<std::string> list_files(const std::string& root,
                                    const std::string& dir,
                                    const std::vector<std::string>& exts) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  std::error_code ec;
  const fs::path base = fs::path(root) / dir;
  if (!fs::is_directory(base, ec)) return out;
  for (fs::recursive_directory_iterator it(base, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    const std::string ext = p.extension().string();
    bool wanted = false;
    for (const std::string& e : exts) {
      if (ext == e) wanted = true;
    }
    if (!wanted) continue;
    // Root-relative, '/'-separated (generic_string) so findings look
    // the same on every platform and in every checkout.
    const std::string rel =
        fs::relative(p, fs::path(root), ec).generic_string();
    if (!ec) out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Tree load_tree(const std::string& root) {
  Tree tree;
  tree.root = root;
  std::vector<std::string> sources;
  for (const char* dir : {"src", "tools", "bench"}) {
    for (std::string& rel : list_files(root, dir, {".cpp", ".hpp", ".h"})) {
      sources.push_back(std::move(rel));
    }
  }
  std::sort(sources.begin(), sources.end());
  for (const std::string& rel : sources) {
    std::string text;
    if (!read_file(root + "/" + rel, text)) continue;
    tree.sources.push_back(lex_cpp(rel, text));
  }
  std::vector<std::string> docs = list_files(root, "docs", {".md"});
  {
    std::string readme;
    if (read_file(root + "/README.md", readme)) {
      tree.docs.emplace_back("README.md", std::move(readme));
    }
  }
  for (const std::string& rel : docs) {
    std::string text;
    if (read_file(root + "/" + rel, text)) {
      tree.docs.emplace_back(rel, std::move(text));
    }
  }
  std::sort(tree.docs.begin(), tree.docs.end());
  for (const std::string& rel :
       list_files(root, "tests", {".cpp", ".hpp", ".tce"})) {
    std::string text;
    if (read_file(root + "/" + rel, text)) {
      tree.tests.emplace_back(rel, std::move(text));
    }
  }
  std::sort(tree.tests.begin(), tree.tests.end());
  return tree;
}

}  // namespace internal

namespace {

/// Applies `tce-check: allow(<rule>)` comments: a directive on line L
/// suppresses matching findings on L and L+1.
std::uint64_t apply_suppressions(const internal::Tree& tree,
                                 std::vector<Finding>& findings) {
  std::uint64_t suppressed = 0;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    const SourceFile* file = nullptr;
    for (const SourceFile& s : tree.sources) {
      if (s.path == f.file) file = &s;
    }
    bool allow = false;
    if (file != nullptr && f.line > 0) {
      for (int line : {f.line, f.line - 1}) {
        const auto it = file->allows.find(line);
        if (it == file->allows.end()) continue;
        for (const std::string& rule : it->second) {
          if (rule == f.rule) allow = true;
        }
      }
    }
    if (allow) {
      ++suppressed;
    } else {
      kept.push_back(std::move(f));
    }
  }
  findings = std::move(kept);
  return suppressed;
}

}  // namespace

std::string CheckReport::str() const {
  std::string out;
  for (const Finding& f : findings) {
    out += (f.severity == Severity::kError) ? "error " : "warning ";
    out += f.file;
    if (f.line > 0) out += ":" + std::to_string(f.line);
    out += " rule=" + f.rule + ": " + f.message + "\n";
  }
  std::uint64_t errors = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) ++errors;
  }
  out += "tce-check: " + std::to_string(errors) + " error(s), " +
         std::to_string(findings.size() - errors) + " warning(s), " +
         std::to_string(suppressed) + " suppressed; scanned " +
         std::to_string(files_scanned) + " source file(s), " +
         std::to_string(docs_scanned) + " doc(s), " +
         std::to_string(rules_checked) + " rule evaluation(s)\n";
  return out;
}

std::string CheckReport::json() const {
  json::ArrayWriter arr;
  for (const Finding& f : findings) {
    json::ObjectWriter o;
    o.field("severity",
            (f.severity == Severity::kError) ? "error" : "warning")
        .field("file", f.file)
        .field("line", f.line)
        .field("rule", f.rule)
        .field("message", f.message);
    arr.element(o.str());
  }
  json::ObjectWriter out;
  out.field("schema", "tce-check/1")
      .field("ok", ok())
      .raw("findings", arr.str())
      .field("files_scanned", files_scanned)
      .field("docs_scanned", docs_scanned)
      .field("suppressed", suppressed)
      .field("rules_checked", rules_checked);
  return out.str() + "\n";
}

CheckReport run_checks(const CheckConfig& cfg) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(fs::path(cfg.root) / "src", ec)) {
    throw Error("tce-check: " + cfg.root +
                " does not look like a repository root (no src/ directory)");
  }
  internal::Tree tree = internal::load_tree(cfg.root);
  CheckReport rep;
  rep.files_scanned = tree.sources.size();
  rep.docs_scanned = tree.docs.size();
  internal::run_source_rules(tree, rep.findings, rep.rules_checked);
  internal::run_registry_rules(tree, rep.findings, rep.rules_checked);
  if (cfg.include_hygiene) {
    internal::run_include_hygiene(cfg.root, cfg.cxx, rep.findings,
                                  rep.rules_checked);
  }
  rep.suppressed = apply_suppressions(tree, rep.findings);
  std::sort(rep.findings.begin(), rep.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return rep;
}

}  // namespace tce::check
