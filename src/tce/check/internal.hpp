#pragma once
/// \file internal.hpp
/// Shared plumbing between tce-check's rule passes (not installed API).

#include <string>
#include <vector>

#include "tce/check/check.hpp"
#include "tce/check/lexer.hpp"

namespace tce::check::internal {

/// The lexed source tree plus the raw doc texts, loaded once.
struct Tree {
  std::string root;
  std::vector<SourceFile> sources;  ///< Sorted by path.
  /// Raw text per root-relative path for docs and tests (tests are kept
  /// as raw text — reference checks are substring searches, and fixture
  /// snippets inside test literals *should* count as references).
  std::vector<std::pair<std::string, std::string>> docs;   ///< Sorted.
  std::vector<std::pair<std::string, std::string>> tests;  ///< Sorted.
};

/// Reads a whole file; returns false when unreadable.
bool read_file(const std::string& path, std::string& out);

/// Recursively lists files under root/dir whose name matches one of
/// \p exts, as sorted root-relative '/'-paths.  Missing dirs are fine.
std::vector<std::string> list_files(const std::string& root,
                                    const std::string& dir,
                                    const std::vector<std::string>& exts);

/// Loads and lexes the tree (sources from src/tools/bench/examples,
/// docs/*.md + README.md, tests/*.cpp).
Tree load_tree(const std::string& root);

/// Banned-primitive, unchecked-arithmetic and lock-annotation rules.
void run_source_rules(const Tree& tree, std::vector<Finding>& findings,
                      std::uint64_t& rules_checked);

/// Registry-drift rules (rule ids, exit codes, metrics, schemas).
void run_registry_rules(const Tree& tree, std::vector<Finding>& findings,
                        std::uint64_t& rules_checked);

/// Include-hygiene rule: every src/**/*.hpp compiles standalone.
void run_include_hygiene(const std::string& root, const std::string& cxx,
                         std::vector<Finding>& findings,
                         std::uint64_t& rules_checked);

}  // namespace tce::check::internal
