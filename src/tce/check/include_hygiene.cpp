/// \file include_hygiene.cpp
/// check.include.standalone: every public header under src/ must
/// compile as its own translation unit — the rule that replaced
/// tools/check_headers.sh.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "tce/check/internal.hpp"

namespace tce::check::internal {

void run_include_hygiene(const std::string& root, const std::string& cxx,
                         std::vector<Finding>& findings,
                         std::uint64_t& rules_checked) {
  const std::vector<std::string> headers =
      list_files(root, "src", {".hpp", ".h"});
  for (const std::string& rel : headers) {
    ++rules_checked;
    // Same recipe the old shell script used; stdout/stderr are dropped
    // because the finding itself carries the reproduction command.
    const std::string cmd = cxx + " -std=c++20 -fsyntax-only -Wall -Wextra -I" +
                            root + "/src -x c++ " + root + "/" + rel +
                            " >/dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    if (status != 0) {
      Finding f;
      f.severity = Severity::kError;
      f.file = rel;
      f.line = 0;
      f.rule = "check.include.standalone";
      f.message = "header does not compile standalone; reproduce with `" +
                  cxx + " -std=c++20 -fsyntax-only -Wall -Wextra -Isrc -x c++ " +
                  rel + "`";
      findings.push_back(std::move(f));
    }
  }
}

}  // namespace tce::check::internal
