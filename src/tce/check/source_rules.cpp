/// \file source_rules.cpp
/// Token-level rules: banned primitives, unchecked byte/word/extent
/// arithmetic, and lock-annotation hygiene.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tce/check/internal.hpp"

namespace tce::check::internal {

namespace {

bool in_set(std::string_view needle, const std::vector<std::string_view>& set) {
  for (std::string_view s : set) {
    if (s == needle) return true;
  }
  return false;
}

/// snake_case value names: lowercase letters, digits, underscores, with
/// at least one letter.  Type names in this codebase are CamelCase (or
/// *_t aliases, which the type-keyword list below covers), so this is
/// how the arith rule tells `a * b` from a `T* ptr` declaration.
bool is_snake(std::string_view s) {
  bool letter = false;
  for (char c : s) {
    if (c >= 'a' && c <= 'z') {
      letter = true;
    } else if (!((c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return letter;
}

bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

/// An identifier that names a byte/word/extent quantity.
bool sized_name(std::string_view name) {
  return is_snake(name) && (contains(name, "bytes") || contains(name, "words") ||
                            contains(name, "extent"));
}

const std::vector<std::string_view> kStrtolFamily = {
    "strtol", "strtoul", "strtoll", "strtoull", "wcstol", "wcstoul"};
const std::vector<std::string_view> kAtoiFamily = {"atoi", "atol", "atoll",
                                                   "atof"};
const std::vector<std::string_view> kSprintfFamily = {"sprintf", "vsprintf"};

/// Calls whose parenthesized arguments are exempt from the arith rules.
const std::vector<std::string_view> kCheckedFns = {
    "checked_mul",    "checked_add",    "checked_sub",
    "saturating_mul", "saturating_add", "saturating_sub"};

/// Built-in / alias type names that can precede `*` in a declaration.
const std::vector<std::string_view> kTypeWords = {
    "auto",     "bool",     "char",    "const",    "constexpr", "double",
    "float",    "int",      "long",    "short",    "signed",    "size_t",
    "unsigned", "void",     "wchar_t", "int8_t",   "int16_t",   "int32_t",
    "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "uintptr_t",
    "intptr_t", "ptrdiff_t"};

/// Files exempt from the banned-primitive parse rules: the checked
/// parser itself is where a raw parse would be implemented if we ever
/// needed one.
const std::vector<std::string_view> kParseAllowlist = {
    "src/tce/common/parse.cpp", "src/tce/common/parse.hpp"};

/// The annotated wrappers are the one place std::mutex may be spelled.
const std::vector<std::string_view> kLockAllowlist = {
    "src/tce/common/annotations.hpp"};

/// Raw synchronization identifiers that defeat clang's thread-safety
/// analysis when used directly (matched as `std::<name>`).
const std::vector<std::string_view> kRawSync = {
    "mutex",       "recursive_mutex",        "timed_mutex",
    "shared_mutex", "lock_guard",            "unique_lock",
    "scoped_lock", "condition_variable",     "condition_variable_any"};

void add(std::vector<Finding>& findings, const SourceFile& f, int line,
         std::string rule, std::string message) {
  Finding out;
  out.severity = Severity::kError;
  out.file = f.path;
  out.line = line;
  out.rule = std::move(rule);
  out.message = std::move(message);
  findings.push_back(std::move(out));
}

bool is_punct(const Token& t, char c) {
  return t.kind == Tok::kPunct && t.text.size() == 1 && t.text[0] == c;
}

/// Banned-primitive rules over one file's identifier stream.
void ban_rules(const SourceFile& f, std::vector<Finding>& findings) {
  const bool parse_ok = in_set(f.path, kParseAllowlist);
  const bool lock_ok = in_set(f.path, kLockAllowlist);
  const std::vector<Token>& ts = f.tokens;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != Tok::kIdent) continue;
    const std::string& id = ts[i].text;
    const bool after_operator =
        i > 0 && ts[i - 1].kind == Tok::kIdent && ts[i - 1].text == "operator";
    if (!parse_ok && in_set(id, kStrtolFamily)) {
      add(findings, f, ts[i].line, "check.ban.strtol",
          id + " clamps on overflow with errno the only witness; use "
               "tce::parse_u64 (tce/common/parse.hpp)");
    } else if (!parse_ok && in_set(id, kAtoiFamily)) {
      add(findings, f, ts[i].line, "check.ban.atoi",
          id + " reports no errors at all; use tce::parse_u64 "
               "(tce/common/parse.hpp)");
    } else if (in_set(id, kSprintfFamily)) {
      add(findings, f, ts[i].line, "check.ban.sprintf",
          id + " writes unbounded; use std::snprintf");
    } else if (id == "new" && !after_operator) {
      add(findings, f, ts[i].line, "check.ban.raw-new",
          "raw new expression; use std::make_unique or a container");
    } else if (!lock_ok && in_set(id, kRawSync) && i >= 3 &&
               is_punct(ts[i - 1], ':') && is_punct(ts[i - 2], ':') &&
               ts[i - 3].kind == Tok::kIdent && ts[i - 3].text == "std") {
      add(findings, f, ts[i].line, "check.lock.raw-mutex",
          "std::" + id +
              " is invisible to the thread-safety analysis; use "
              "tce::Mutex/MutexLock/CondVar (tce/common/annotations.hpp)");
    }
  }
}

/// Unchecked-arithmetic rules: a raw `*` or `+` whose operands include
/// a byte/word/extent-named identifier, outside checked_* parentheses.
void arith_rules(const SourceFile& f, std::vector<Finding>& findings) {
  const std::vector<Token>& ts = f.tokens;
  int depth = 0;
  std::vector<int> checked_depths;  // '(' depths opened by a checked call
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (is_punct(t, '(')) {
      if (i > 0 && ts[i - 1].kind == Tok::kIdent &&
          in_set(ts[i - 1].text, kCheckedFns)) {
        checked_depths.push_back(depth);
      }
      ++depth;
      continue;
    }
    if (is_punct(t, ')')) {
      --depth;
      if (!checked_depths.empty() && checked_depths.back() == depth) {
        checked_depths.pop_back();
      }
      continue;
    }
    const bool mul = is_punct(t, '*');
    const bool plus = is_punct(t, '+');
    if (!mul && !plus) continue;
    if (!checked_depths.empty()) continue;  // inside checked_*(...)
    if (i == 0 || i + 1 >= ts.size()) continue;
    // Left operand must be a value: an identifier or a number.  This
    // rejects unary contexts (`*p`, `a = -x + y` arrives as punct-`+`).
    const Token& lhs = ts[i - 1];
    if (lhs.kind != Tok::kIdent && lhs.kind != Tok::kNumber) continue;
    // `T* ptr` declarations: a type word or CamelCase name on the left
    // of `*` is a declarator, not a multiply.
    if (mul && lhs.kind == Tok::kIdent &&
        (in_set(lhs.text, kTypeWords) || !is_snake(lhs.text))) {
      continue;
    }
    // `++`, `+=`, `*=`, `**` and friends are not binary arithmetic.
    const Token& next = ts[i + 1];
    if (next.kind == Tok::kPunct &&
        (next.text == "+" || next.text == "*" || next.text == "=")) {
      continue;
    }
    if (next.kind != Tok::kIdent && next.kind != Tok::kNumber) continue;
    // Walk the right-hand member chain (`a.b`, `a->b`) to its final
    // name; a chain ending in `(` is a call, which we leave alone.
    std::size_t j = i + 1;
    std::string rhs_name = (next.kind == Tok::kIdent) ? next.text : "";
    while (j + 2 < ts.size()) {
      if (is_punct(ts[j + 1], '.') && ts[j + 2].kind == Tok::kIdent) {
        rhs_name = ts[j + 2].text;
        j += 2;
        continue;
      }
      if (j + 3 < ts.size() && is_punct(ts[j + 1], '-') &&
          is_punct(ts[j + 2], '>') && ts[j + 3].kind == Tok::kIdent) {
        rhs_name = ts[j + 3].text;
        j += 3;
        continue;
      }
      break;
    }
    if (j + 1 < ts.size() && is_punct(ts[j + 1], '(')) continue;
    const std::string lhs_name = (lhs.kind == Tok::kIdent) ? lhs.text : "";
    if (!sized_name(lhs_name) && !sized_name(rhs_name)) continue;
    const char* rule = mul ? "check.arith.unchecked-mul"
                           : "check.arith.unchecked-add";
    const std::string op(1, mul ? '*' : '+');
    const std::string culprit = sized_name(lhs_name) ? lhs_name : rhs_name;
    add(findings, f, t.line, rule,
        "raw `" + op + "` on size-like quantity `" + culprit +
            "` can overflow silently; route through " +
            (mul ? "checked_mul" : "checked_add") +
            " (tce/common/checked.hpp)");
  }
}

/// Lock-annotation rule: a class that declares a Mutex member must
/// annotate at least one member TCE_GUARDED_BY it.
void lock_rules(const SourceFile& f, std::vector<Finding>& findings) {
  if (in_set(f.path, kLockAllowlist)) return;
  struct ClassCtx {
    std::string name;
    int line = 0;
    int body_depth = 0;
    bool has_mutex = false;
    int mutex_line = 0;
    bool has_guard = false;
  };
  const std::vector<Token>& ts = f.tokens;
  int depth = 0;
  std::vector<ClassCtx> stack;
  bool pending = false;
  ClassCtx pend;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (t.kind == Tok::kIdent && (t.text == "struct" || t.text == "class")) {
      const bool is_enum =
          i > 0 && ts[i - 1].kind == Tok::kIdent && ts[i - 1].text == "enum";
      if (!is_enum && i + 1 < ts.size() && ts[i + 1].kind == Tok::kIdent) {
        pending = true;
        pend = ClassCtx();
        pend.name = ts[i + 1].text;
        pend.line = t.line;
      }
      continue;
    }
    if (pending && is_punct(t, ';')) pending = false;  // forward decl
    if (is_punct(t, '{')) {
      ++depth;
      if (pending) {
        pend.body_depth = depth;
        stack.push_back(pend);
        pending = false;
      }
      continue;
    }
    if (is_punct(t, '}')) {
      if (!stack.empty() && stack.back().body_depth == depth) {
        const ClassCtx& c = stack.back();
        if (c.has_mutex && !c.has_guard) {
          add(findings, f, c.mutex_line, "check.lock.unguarded",
              "class " + c.name +
                  " declares a Mutex member but no member is "
                  "TCE_GUARDED_BY it");
        }
        stack.pop_back();
      }
      --depth;
      continue;
    }
    if (stack.empty() || t.kind != Tok::kIdent) continue;
    ClassCtx& top = stack.back();
    if (t.text == "TCE_GUARDED_BY" || t.text == "TCE_PT_GUARDED_BY") {
      top.has_guard = true;
    } else if ((t.text == "Mutex" || t.text == "mutex") &&
               depth == top.body_depth && i + 2 < ts.size() &&
               ts[i + 1].kind == Tok::kIdent && is_punct(ts[i + 2], ';')) {
      top.has_mutex = true;
      top.mutex_line = t.line;
    }
  }
}

}  // namespace

void run_source_rules(const Tree& tree, std::vector<Finding>& findings,
                      std::uint64_t& rules_checked) {
  for (const SourceFile& f : tree.sources) {
    ban_rules(f, findings);
    arith_rules(f, findings);
    lock_rules(f, findings);
    rules_checked += 3;
  }
}

}  // namespace tce::check::internal
