#pragma once
/// \file check.hpp
/// `tce-check`: project-invariant static analysis over this repository's
/// own sources, docs, and tests.
///
/// The domain-level analyzers (the lint prover, the plan verifier, the
/// comm-bound prover) certify properties of *planner problems and
/// plans*; this module certifies properties of *the codebase itself* —
/// the recurring meta-level bug classes the change history shows being
/// found by hand: raw C-library number parses that silently saturate,
/// overflow-prone raw arithmetic on byte/word/extent quantities,
/// unannotated mutexes invisible to clang's thread-safety analysis,
/// headers that only compile because of include order, and
/// hand-maintained identifier registries (lint/verifier rule ids, exit
/// codes, metric names, schema strings) drifting apart between `src/`,
/// `docs/` and `tests/`.
///
/// Rule identifiers (stable, `check.<family>.<rule>`; used by tests,
/// CI, and suppression comments — append-only):
///
///   check.ban.strtol            strtol/strtoul/strtoll/strtoull called
///                               (end-pointer-less, overflow-clamping);
///                               use tce::parse_u64 (tce/common/parse.hpp)
///   check.ban.atoi              atoi/atol/atoll/atof called (no error
///                               reporting at all); use tce::parse_u64
///   check.ban.sprintf           sprintf/vsprintf called (unbounded
///                               write); use std::snprintf
///   check.ban.raw-new           raw `new` expression; use
///                               std::make_unique or a container
///   check.arith.unchecked-mul   raw `*` between identifiers named like
///                               byte/word/extent quantities outside a
///                               checked_mul/saturating_mul call; route
///                               through tce/common/checked.hpp
///   check.arith.unchecked-add   raw `+` likewise; use checked_add
///   check.lock.raw-mutex        std::mutex spelled outside
///                               tce/common/annotations.hpp — the
///                               thread-safety analysis cannot see
///                               through it; use tce::Mutex/MutexLock
///   check.lock.unguarded        a class declares a Mutex member but
///                               annotates no member TCE_GUARDED_BY it
///   check.registry.undocumented an identifier defined in code is
///                               missing from its docs table
///   check.registry.unknown-doc  a docs table lists an identifier the
///                               code does not define (stale or typo'd
///                               entry — the FNV offset-basis class)
///   check.registry.duplicate    an identifier appears twice in its
///                               docs table (or two exit-code
///                               enumerators share a value)
///   check.registry.untested     a rule id / exit-code enumerator is
///                               referenced by no test under tests/
///   check.include.standalone    a public header does not compile as
///                               its own translation unit
///                               (`$CXX -std=c++20 -fsyntax-only -Isrc`)
///
/// Suppression: a finding is suppressed by a comment on the same line
/// or the line directly above it, of the form
///
///   // tce-check: allow(check.ban.strtol): <rationale>
///
/// The rule id must match exactly; the rationale is free text (please
/// write one).  Suppressed findings are counted but do not fail the
/// run.  Output is deterministic: files are scanned in sorted path
/// order and findings are sorted by (file, line, rule, message), so two
/// runs over the same tree are byte-identical.

#include <cstdint>
#include <string>
#include <vector>

namespace tce::check {

enum class Severity {
  kError,
  kWarning,
};

/// One analyzer finding, anchored to a file and line of the repo.
struct Finding {
  Severity severity = Severity::kError;
  std::string file;     ///< Root-relative path, '/'-separated.
  int line = 0;         ///< 1-based; 0 = file-level finding.
  std::string rule;     ///< Stable rule id (see file comment).
  std::string message;  ///< Human-readable explanation.
};

/// Analyzer configuration.  The defaults describe this repository; the
/// fixture tests point \p root at synthetic trees with the same layout.
struct CheckConfig {
  /// Repository root (the directory holding src/, docs/, tests/).
  std::string root = ".";
  /// Run the include-hygiene rule (compiles every src/**/*.hpp
  /// standalone — slower, needs a compiler on PATH).
  bool include_hygiene = false;
  /// Compiler driver for the include-hygiene rule.
  std::string cxx = "c++";
};

/// The analyzer's verdict.
struct CheckReport {
  /// All unsuppressed findings, sorted by (file, line, rule, message).
  std::vector<Finding> findings;
  std::uint64_t files_scanned = 0;  ///< Source files lexed.
  std::uint64_t docs_scanned = 0;   ///< Markdown docs parsed.
  std::uint64_t suppressed = 0;     ///< Findings dropped by allow().
  std::uint64_t rules_checked = 0;  ///< Rule evaluations performed.

  /// True when no error-severity finding survived suppression.
  bool ok() const {
    for (const Finding& f : findings) {
      if (f.severity == Severity::kError) return false;
    }
    return true;
  }
  /// One line per finding ("error src/x.cpp:12 rule=check.ban.atoi:
  /// ...") plus a summary line.  Deterministic.
  std::string str() const;
  /// The `tce-check/1` JSON document (docs/STATIC_ANALYSIS.md).
  std::string json() const;
};

/// Runs every rule over the tree at \p cfg.root.  Throws tce::Error
/// when the root does not look like a repository (no src/ directory).
CheckReport run_checks(const CheckConfig& cfg);

}  // namespace tce::check
