#include "tce/check/lexer.hpp"

namespace tce::check {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

bool digit(char c) { return c >= '0' && c <= '9'; }

/// Scans a comment body for `tce-check: allow(<rule>)` directives and
/// records them against \p line.
void collect_allows(SourceFile& out, std::string_view body, int line) {
  static constexpr std::string_view kMarker = "tce-check: allow(";
  std::size_t pos = 0;
  while ((pos = body.find(kMarker, pos)) != std::string_view::npos) {
    pos += kMarker.size();
    const std::size_t close = body.find(')', pos);
    if (close == std::string_view::npos) break;
    out.allows[line].push_back(std::string(body.substr(pos, close - pos)));
    pos = close + 1;
  }
}

}  // namespace

SourceFile lex_cpp(std::string path, std::string_view text) {
  SourceFile out;
  out.path = std::move(path);
  std::size_t i = 0;
  const std::size_t n = text.size();
  int line = 1;
  bool at_line_start = true;

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k) {
      if (text[i] == '\n') ++line;
      ++i;
    }
  };

  while (i < n) {
    const char c = text[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t eol = text.find('\n', i);
      const std::size_t end = (eol == std::string_view::npos) ? n : eol;
      collect_allows(out, text.substr(i, end - i), line);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      const std::size_t close = text.find("*/", i + 2);
      const std::size_t end = (close == std::string_view::npos) ? n : close + 2;
      collect_allows(out, text.substr(i, end - i), start_line);
      advance(end - i);
      continue;
    }
    // Preprocessor directive: swallow the whole (continued) line so
    // include paths and macro bodies don't leak into the token stream.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::size_t end = i;
      while (end < n) {
        const std::size_t eol = text.find('\n', end);
        if (eol == std::string_view::npos) {
          end = n;
          break;
        }
        // Backslash-continued directive lines stay one directive.
        std::size_t back = eol;
        while (back > end && (text[back - 1] == '\r')) --back;
        if (back > end && text[back - 1] == '\\') {
          end = eol + 1;
          continue;
        }
        end = eol;
        break;
      }
      Token t;
      t.kind = Tok::kDirective;
      t.text = std::string(text.substr(i, end - i));
      t.line = start_line;
      out.tokens.push_back(std::move(t));
      advance(end - i);
      continue;
    }
    at_line_start = false;
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      const int start_line = line;
      std::size_t d = i + 2;
      while (d < n && text[d] != '(' && text[d] != '"' && d - i < 20) ++d;
      if (d < n && text[d] == '(') {
        const std::string delim(text.substr(i + 2, d - (i + 2)));
        const std::string closer = ")" + delim + "\"";
        const std::size_t close = text.find(closer, d + 1);
        const std::size_t body_end =
            (close == std::string_view::npos) ? n : close;
        Token t;
        t.kind = Tok::kString;
        t.text = std::string(text.substr(d + 1, body_end - (d + 1)));
        t.line = start_line;
        out.tokens.push_back(std::move(t));
        advance(((close == std::string_view::npos) ? n : close + closer.size()) -
                i);
        continue;
      }
    }
    // String / char literal (prefixes like u8"" arrive as an ident
    // token followed by the literal, which is fine for our rules).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      std::size_t j = i + 1;
      std::string body;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j];
          body += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') break;  // unterminated; close at EOL
        body += text[j];
        ++j;
      }
      Token t;
      t.kind = (quote == '"') ? Tok::kString : Tok::kChar;
      t.text = std::move(body);
      t.line = start_line;
      out.tokens.push_back(std::move(t));
      advance((j < n ? j + 1 : n) - i);
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      Token t;
      t.kind = Tok::kIdent;
      t.text = std::string(text.substr(i, j - i));
      t.line = line;
      out.tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Number (loose pp-number: digits plus embedded idents/dots/quotes).
    if (digit(c) || (c == '.' && i + 1 < n && digit(text[i + 1]))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       text[j] == '\'' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      Token t;
      t.kind = Tok::kNumber;
      t.text = std::string(text.substr(i, j - i));
      t.line = line;
      out.tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Punctuation, one character at a time (the rules match single
    // characters like '*', '+', '(', '{' — multi-char operators such as
    // `+=` appear as two tokens, which the rules account for).
    Token t;
    t.kind = Tok::kPunct;
    t.text = std::string(1, c);
    t.line = line;
    out.tokens.push_back(std::move(t));
    ++i;
  }
  return out;
}

bool is_dotted_id(std::string_view s) {
  if (s.empty()) return false;
  bool saw_dot = false;
  bool segment_start = true;
  for (std::size_t k = 0; k < s.size(); ++k) {
    const char c = s[k];
    if (segment_start) {
      if (!(c >= 'a' && c <= 'z')) return false;
      segment_start = false;
      continue;
    }
    if (c == '.') {
      saw_dot = true;
      segment_start = true;
      // A trailing dot (prefix literals like "verify.rule.") leaves an
      // empty final segment, which the check above would miss.
      if (k + 1 == s.size()) return false;
      continue;
    }
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
          c == '-')) {
      return false;
    }
  }
  return saw_dot;
}

std::vector<std::pair<std::string, int>> dotted_literals(
    const SourceFile& file) {
  std::vector<std::pair<std::string, int>> out;
  for (const Token& t : file.tokens) {
    if (t.kind == Tok::kString && is_dotted_id(t.text)) {
      out.emplace_back(t.text, t.line);
    }
  }
  return out;
}

}  // namespace tce::check
