#include "tce/core/frontier.hpp"

#include <algorithm>

namespace tce {

std::vector<std::uint32_t> pareto_min_filter(
    std::vector<FrontierPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.metric != b.metric) return a.metric < b.metric;
              if (a.max_msg != b.max_msg) return a.max_msg < b.max_msg;
              return a.idx < b.idx;
            });
  // Sweep in sorted order.  Every potential dominator of a point sorts
  // before it (lexicographic ≤ on the triple), so a point survives iff
  // no already-kept point has metric ≤ its metric AND max_msg ≤ its
  // max_msg — equality on all three coordinates is the duplicate case
  // and collapses onto the earlier (lower idx) point.  The staircase
  // maps metric → the minimum max_msg among kept points with metric ≤
  // that value; it stays strictly decreasing in max_msg.
  std::map<std::uint64_t, std::uint64_t> staircase;
  std::vector<std::uint32_t> kept;
  kept.reserve(points.size());
  for (const FrontierPoint& p : points) {
    auto it = staircase.upper_bound(p.metric);
    if (it != staircase.begin() && std::prev(it)->second <= p.max_msg) {
      continue;  // dominated, or an exact duplicate of a kept point
    }
    kept.push_back(p.idx);
    // Insert (metric, max_msg) and restore monotonicity: drop kept
    // steps at metric ≥ p.metric whose max_msg is no better.
    auto at = staircase.lower_bound(p.metric);
    while (at != staircase.end() && at->second >= p.max_msg) {
      at = staircase.erase(at);
    }
    staircase.emplace(p.metric, p.max_msg);
  }
  return kept;
}

}  // namespace tce
