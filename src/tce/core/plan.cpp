#include "tce/core/plan.hpp"

#include "tce/common/strings.hpp"
#include "tce/common/table.hpp"
#include "tce/common/units.hpp"

namespace tce {

namespace {

std::string dist_or_na(const std::optional<Distribution>& d,
                       const IndexSpace& space) {
  return d.has_value() ? d->str(space) : "N/A";
}

std::string comm_or_na(const std::optional<double>& s) {
  if (!s.has_value()) return "N/A";
  if (*s == 0.0) return "0";
  return format_seconds_paper(*s);
}

}  // namespace

std::string OptimizerStats::str() const {
  std::string out;
  out += "search statistics:\n";
  out += "  candidates costed:   " + std::to_string(candidates) + "\n";
  out += "  memory-infeasible:   " + std::to_string(infeasible) + "\n";
  out += "  Pareto-dominated:    " + std::to_string(dominated) + "\n";
  out += "  kept (all nodes):    " + std::to_string(kept) + "\n";
  out += "  max frontier/node:   " + std::to_string(max_per_node) + "\n";
  out += "  redistributions:     " + std::to_string(redistributions) + "\n";
  out += "  curve lookups:       " + std::to_string(table_lookups) + " (" +
         std::to_string(extrapolations) + " extrapolated)\n";
  if (prover_lb_node_bytes != 0) {
    out += "  certified LB/node:   " + std::to_string(prover_lb_node_bytes) +
           " bytes\n";
  }
  out += "  comm LB (certified): " + std::to_string(comm_lb_words) +
         " words/proc\n";
  out += "  comm achieved:       " + std::to_string(achieved_comm_words) +
         " words/proc\n";
  out += "  comm gap ratio:      " +
         (comm_gap_ratio == 0.0 ? std::string("N/A (no optimality claim)")
                                : fixed(comm_gap_ratio, 3)) +
         "\n";
  out += "  search wall time:    " + fixed(search_wall_s * 1e3, 2) + " ms\n";
  if (!nodes.empty()) {
    TextTable t({"Node", "Result", "Candidates", "Infeasible", "Dominated",
                 "Kept", "Wall (ms)"});
    for (int c = 2; c <= 6; ++c) t.set_right_aligned(c);
    for (const NodeSearchStats& n : nodes) {
      t.add_row({std::to_string(n.node), n.result_name,
                 std::to_string(n.candidates), std::to_string(n.infeasible),
                 std::to_string(n.dominated), std::to_string(n.kept),
                 fixed(n.wall_s * 1e3, 2)});
    }
    out += t.str();
  }
  return out;
}

std::string OptimizedPlan::table(const IndexSpace& space) const {
  TextTable t({"Full array", "Reduced array", "Initial dist.",
               "Final dist.", "Mem./node", "Comm. (init.)",
               "Comm. (final)"});
  t.set_right_aligned(4);
  t.set_right_aligned(5);
  t.set_right_aligned(6);
  for (const auto& row : arrays) {
    t.add_row({row.full.str(space), row.reduced.str(space),
               dist_or_na(row.initial_dist, space),
               dist_or_na(row.final_dist, space),
               format_bytes_paper(row.mem_per_node_bytes),
               comm_or_na(row.comm_initial_s),
               comm_or_na(row.comm_final_s)});
  }
  return t.str();
}

std::string OptimizedPlan::summary(const IndexSpace& space) const {
  (void)space;
  std::string out;
  out += "total communication: " + fixed(total_comm_s, 1) + " s\n";
  out += "total runtime:       " + fixed(total_runtime_s(), 1) + " s (" +
         fixed(100.0 * comm_fraction(), 1) + "% communication)\n";
  out += "memory per node:     " + format_bytes_paper(bytes_per_node()) +
         " + " + format_bytes_paper(buffer_bytes_per_node()) +
         " send/recv buffer\n";
  if (liveness_aware) {
    out += "peak live per node:  " +
           format_bytes_paper(checked_mul(peak_live_bytes_per_proc,
                                          procs_per_node)) +
           " (liveness-aware accounting)\n";
  }
  return out;
}

}  // namespace tce
