#pragma once
/// \file optimizer.hpp
/// The paper's contribution (§3.3): memory-constrained communication
/// minimization by bottom-up dynamic programming over the contraction
/// tree.
///
/// At every node the optimizer enumerates all generalized-Cannon
/// execution choices (triplet {i,j,k}, orientation, rotation index), all
/// fused index sets between the node and its parent, and all ways of
/// obtaining the operands (child solutions, optionally redistributed).
/// Each combination yields a Solution carrying the produced distribution,
/// the fusion with the parent, the subtree communication cost, and the
/// subtree memory usage; solutions that exceed the memory limit or that
/// are Pareto-dominated within their (distribution, fusion) state are
/// pruned.  At the root, the cheapest feasible solution is extracted into
/// an OptimizedPlan.
///
/// Cost model notes (see DESIGN.md §5 for the exact formulas):
///  * RotateCost(v, α, i, f) = repeat(f_eff) · RCost(DistSize(v,α,f_eff),
///    rot dim), where f_eff is the union of the node's fusion with its
///    parent and its fused children's fusions — every collective at the
///    node sits inside all of those loops.  For a rotated array that does
///    not itself carry a fused index this charges the physically
///    unavoidable re-rotation per iteration (the paper's printed formula
///    would charge it only once; with that literal reading the published
///    Table 2 solution would not be optimal under the paper's own
///    numbers, so we price the repeat).
///  * Fused loop indices are never grid-distributed here (distributions
///    name only Cannon triplet indices), so LoopRange(j ∈ f) = N_j.
///  * Redistribution is allowed only for fully materialized (unfused)
///    intermediates and is hoisted outside fused loops.
///  * Memory = Σ over all arrays of their per-processor block bytes (the
///    paper's accounting in §4) plus the largest message as a
///    send/receive buffer; the limit is checked per node
///    (procs-per-node × per-processor bytes).

#include "tce/core/plan.hpp"
#include "tce/costmodel/machine_model.hpp"
#include "tce/expr/contraction.hpp"

#include <map>
#include <optional>

namespace tce {

/// Optimizer knobs.  The defaults implement the paper's algorithm; the
/// flags carve out the baseline strategies the benchmarks compare
/// against.
struct OptimizerConfig {
  /// Per-node memory limit in bytes (0 = unlimited).
  std::uint64_t mem_limit_node_bytes = 0;
  /// Allow loop fusion (false = unfused plans only).
  bool enable_fusion = true;
  /// Allow redistribution of unfused intermediates between steps.
  bool enable_redistribution = true;
  /// When set, every node's fusion is frozen to the given set (the
  /// "fuse first, then distribute" baseline); nodes absent from the map
  /// are frozen to unfused.
  std::optional<std::map<NodeId, IndexSet>> fixed_fusions;
  /// Extension beyond the paper: additionally consider the
  /// replicate–compute–reduce template at every contraction (allgather
  /// one operand everywhere, keep the other stationary, reduce-scatter
  /// the result partials).  When a contraction pairs a huge array with a
  /// tiny one — exactly the paper's fused T1·C step — replicating the
  /// tiny operand avoids rotating the huge one and can win by an order
  /// of magnitude.  Off by default for paper fidelity.
  bool enable_replication_template = false;
  /// Extension beyond the paper: account memory as the *peak live set*
  /// (inputs stay resident; an intermediate is freed once its consumer
  /// finishes) instead of the paper's sum over all arrays.  Liveness
  /// accounting never reduces the solution quality — it only admits
  /// plans the summed model over-counts — so the optimum under it is at
  /// most the paper-model optimum.
  bool liveness_aware = false;
  /// Run the static memory-infeasibility prover (tce/lint) before the DP
  /// when a memory limit is set: if it certifies that no plan can fit,
  /// the search is skipped and InfeasibleError carries the certificate.
  /// The prover never rejects a satisfiable instance (the fuzz "lint"
  /// oracle cross-checks this), so disabling it only costs time; the
  /// flag exists so differential tests can compare prover and raw DP.
  bool enable_static_prover = true;
  /// Worker threads for the search: independent sibling subtrees solve
  /// concurrently and each node's choice enumeration fans across the
  /// shared pool.  0 = hardware concurrency; 1 = fully sequential (no
  /// pool involvement).  The result — plans, frontier, and every
  /// OptimizerStats counter except wall times — is identical at every
  /// setting; see docs/ALGORITHM.md ("Parallel search").
  unsigned threads = 0;
};

/// Runs the search.  Throws InfeasibleError when no plan fits the memory
/// limit, tce::Error when the tree contains a node the Cannon framework
/// cannot execute (batch indices).
OptimizedPlan optimize(const ContractionTree& tree,
                       const MachineModel& model,
                       const OptimizerConfig& config = {});

/// Runs the search and returns the whole Pareto frontier of root plans
/// over (communication cost, memory metric), sorted by increasing cost —
/// every communication/memory trade-off the tree admits.  The first
/// element equals optimize()'s result.  Used by the forest optimizer to
/// combine trees under a shared memory limit, and useful on its own to
/// inspect the trade-off curve.
std::vector<OptimizedPlan> optimize_frontier(
    const ContractionTree& tree, const MachineModel& model,
    const OptimizerConfig& config = {});

}  // namespace tce
