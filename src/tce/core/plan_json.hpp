#pragma once
/// \file plan_json.hpp
/// Machine-readable plan export.
///
/// Emits an OptimizedPlan as a single JSON object so external tooling
/// (build systems, notebooks, code generators) can consume the
/// optimizer's decisions without parsing the human-oriented tables.
/// Schema (stable; additive changes only):
///
/// {
///   "total_comm_s": 2243.3, "total_compute_s": ..., "comm_fraction": ...,
///   "memory": {"array_bytes_per_node": ..., "buffer_bytes_per_node": ...,
///              "peak_live_bytes_per_node": ..., "liveness_aware": false},
///   "steps": [{"result": "T1", "template": "cannon"|"replicated",
///              "fusion": ["f"], "effective_fused": ["f"],
///              "left_dist": ["b","d"], "right_dist": [null, "e"],
///              "result_dist": [...], "rotation_index": "b"|null,
///              "replicate_right": false, "reduce_dim": 0,
///              "comm_s": {"left": ..., "right": ..., "result": ...,
///                         "redist_left": ..., "redist_right": ...}}],
///   "arrays": [{"name": "D", "dims": [...], "reduced_dims": [...],
///               "kind": "input"|"intermediate"|"output",
///               "initial_dist": [...]|null, "final_dist": [...]|null,
///               "mem_per_node_bytes": ..., "comm_initial_s": ...|null,
///               "comm_final_s": ...|null}]
/// }

#include <string>

#include "tce/core/plan.hpp"

namespace tce {

/// Serializes \p plan; index ids are rendered as names via \p space.
std::string plan_to_json(const OptimizedPlan& plan,
                         const IndexSpace& space);

}  // namespace tce
