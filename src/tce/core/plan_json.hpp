#pragma once
/// \file plan_json.hpp
/// Machine-readable plan export and import.
///
/// Emits an OptimizedPlan as a single JSON object so external tooling
/// (build systems, notebooks, code generators) can consume the
/// optimizer's decisions without parsing the human-oriented tables, and
/// reads the same JSON back into an OptimizedPlan so exported plans can
/// be re-checked by the verifier (`tcemin plan --verify` round-trips
/// every plan through this codec before checking it).  The round trip is
/// lossless for every field the verifier inspects.
/// Schema (stable; additive changes only):
///
/// {
///   "total_comm_s": 2243.3, "total_compute_s": ..., "comm_fraction": ...,
///   "memory": {"array_bytes_per_node": ..., "buffer_bytes_per_node": ...,
///              "peak_live_bytes_per_node": ..., "liveness_aware": false,
///              "array_bytes_per_proc": ..., "max_msg_bytes_per_proc": ...,
///              "peak_live_bytes_per_proc": ..., "procs_per_node": 2},
///   "steps": [{"node": 2, "result": "T1",
///              "template": "cannon"|"replicated",
///              "fusion": ["f"], "effective_fused": ["f"],
///              "left_dist": ["b","d"], "right_dist": [null, "e"],
///              "result_dist": [...],
///              "triplet": ["b", "d", "e"|null], "transposed": false,
///              "rotation_index": "b"|null,
///              "replicate_right": false, "reduce_dim": 0,
///              "comm_s": {"left": ..., "right": ..., "result": ...,
///                         "redist_left": ..., "redist_right": ...}}],
///   "arrays": [{"name": "D", "dims": [...], "reduced_dims": [...],
///               "kind": "input"|"intermediate"|"output",
///               "initial_dist": [...]|null, "final_dist": [...]|null,
///               "mem_per_node_bytes": ..., "comm_initial_s": ...|null,
///               "comm_final_s": ...|null}],
///   "stats": {"candidates": ..., "infeasible": ..., "dominated": ...,
///             "kept": ..., "max_per_node": ...}
/// }

#include <string>

#include "tce/core/plan.hpp"
#include "tce/expr/contraction.hpp"

namespace tce {

/// Serializes \p plan; index ids are rendered as names via \p space.
std::string plan_to_json(const OptimizedPlan& plan,
                         const IndexSpace& space);

/// Parses a plan previously produced by plan_to_json back into an
/// OptimizedPlan.  Index and node references are resolved against
/// \p tree (the same contraction tree the plan was computed for).
/// Throws tce::Error on malformed JSON, unknown index names, or missing
/// required fields; unknown extra fields are ignored (additive schema).
OptimizedPlan plan_from_json(const std::string& json,
                             const ContractionTree& tree);

}  // namespace tce
