#pragma once
/// \file plan.hpp
/// The optimizer's output: a fully specified parallel execution plan plus
/// the per-array accounting needed to reproduce the paper's Tables 1–2.

#include <optional>
#include <string>
#include <vector>

#include "tce/dist/cannon_space.hpp"

namespace tce {

/// How one contraction step executes.
enum class StepTemplate {
  kCannon,      ///< Generalized Cannon rotations (the paper's template).
  kReplicated,  ///< Replicate–compute–reduce (extension): allgather the
                ///< small operand, keep the other stationary, combine
                ///< result partials with a reduce-scatter.
};

/// One contraction step of the plan (post-order over the tree).
struct PlanStep {
  NodeId node = kNoNode;
  std::string result_name;
  StepTemplate tmpl = StepTemplate::kCannon;
  CannonChoice choice;        ///< Triplet/orientation/rotation (kCannon).
  IndexSet fusion;            ///< Result's fused indices with its parent.
  IndexSet effective_fused;   ///< All fused loops enclosing this node's
                              ///< collectives (own + fused children).
  Distribution left_dist;     ///< β — left operand distribution.  For a
                              ///< kReplicated step the replicated side is
                              ///< ⟨·,·⟩ (every rank holds it whole).
  Distribution right_dist;    ///< γ — right operand distribution.
  Distribution result_dist;   ///< α — result distribution.
  bool replicate_right = false;  ///< kReplicated: which side is gathered.
  int reduce_dim = 0;         ///< kReplicated: grid dim of the partial
                              ///< reduction (0 = none needed).
  double rot_left_s = 0;      ///< Comm cost of the left operand here
                              ///< (rotation, or allgather if replicated).
  double rot_right_s = 0;
  double rot_result_s = 0;    ///< Result comm (rotation or reduce).
  double redist_left_s = 0;   ///< Redistribution cost paid for operands.
  double redist_right_s = 0;
};

/// One row of the paper-style array table.
struct ArrayReport {
  TensorRef full;     ///< Declared array.
  TensorRef reduced;  ///< After fusion (equal to full when unfused).
  bool is_input = false;
  bool is_output = false;
  std::optional<Distribution> initial_dist;  ///< At the producing node.
  std::optional<Distribution> final_dist;    ///< At the consuming node.
  std::uint64_t mem_per_node_bytes = 0;
  std::optional<double> comm_initial_s;  ///< Comm at the producing node.
  std::optional<double> comm_final_s;    ///< Comm at the consuming node.
};

/// Search effort at one contraction-tree node.
struct NodeSearchStats {
  NodeId node = kNoNode;
  std::string result_name;       ///< Result tensor of the node.
  std::uint64_t candidates = 0;  ///< Configurations costed here.
  std::uint64_t infeasible = 0;  ///< Dropped by the memory limit.
  std::uint64_t dominated = 0;   ///< Dropped by Pareto dominance.
  std::uint64_t kept = 0;        ///< Frontier size after pruning.
  double wall_s = 0;             ///< Search wall time at this node.
};

/// Search-effort statistics (reproduces the paper's claim that "the
/// pruning is effective in keeping the size of the solution set in each
/// node small" with hard numbers).
struct OptimizerStats {
  std::uint64_t candidates = 0;  ///< Configurations costed.
  std::uint64_t infeasible = 0;  ///< Dropped by the memory limit.
  std::uint64_t dominated = 0;   ///< Dropped by Pareto dominance.
  std::uint64_t kept = 0;        ///< Solutions surviving across all nodes.
  std::uint64_t max_per_node = 0;  ///< Largest per-node solution set.
  /// Redistribution candidates inserted between child result and parent
  /// operand distributions (§3.3's ⟨β,γ⟩-mismatch arcs).
  std::uint64_t redistributions = 0;
  std::uint64_t table_lookups = 0;   ///< Characterization-curve evals.
  std::uint64_t extrapolations = 0;  ///< Evals outside the measured range.
  /// Certified per-node memory lower bound from the static prover
  /// (tce/lint): no plan for this tree can use less.  0 when the prover
  /// did not run (disabled, or no memory limit).  Deterministic — a pure
  /// function of tree, grid and config.
  std::uint64_t prover_lb_node_bytes = 0;
  /// Certified per-processor communication lower bound for the tree
  /// (tce/lint comm prover), in 8-byte words: no plan under this
  /// configuration can move less.  Deterministic — a pure function of
  /// tree, grid and config.
  std::uint64_t comm_lb_words = 0;
  /// This plan's canonical achieved communication volume, in words per
  /// processor (lint::plan_comm_words); always ≥ comm_lb_words.
  std::uint64_t achieved_comm_words = 0;
  /// achieved_comm_words / comm_lb_words — the optimality gap (1.0 =
  /// provably communication-optimal).  When the bound is 0: 1.0 for a
  /// communication-free plan, else 0 (= no optimality claim).
  double comm_gap_ratio = 0;
  double search_wall_s = 0;          ///< Total optimize() wall time.
  std::vector<NodeSearchStats> nodes;  ///< Per-node effort, post-order.

  /// Human-readable multi-line rendering (the CLI's --stats output).
  std::string str() const;
};

/// Historical name; the struct predates the observability layer.
using SearchStats = OptimizerStats;

/// A complete optimized plan.
struct OptimizedPlan {
  double total_comm_s = 0;
  double total_compute_s = 0;  ///< Model compute time (flops / P / rate).
  std::uint64_t array_bytes_per_proc = 0;  ///< Σ per-processor array blocks.
  std::uint64_t max_msg_bytes_per_proc = 0;  ///< Largest single message.
  /// Peak *live* bytes per processor (inputs + live intermediates) — the
  /// liveness-aware accounting; equals at most array_bytes_per_proc.
  std::uint64_t peak_live_bytes_per_proc = 0;
  /// True when the plan was searched under liveness-aware accounting.
  bool liveness_aware = false;
  std::uint32_t procs_per_node = 1;

  std::vector<PlanStep> steps;      ///< Post-order.
  std::vector<ArrayReport> arrays;  ///< Inputs, intermediates, output.
  OptimizerStats stats;             ///< Search-effort accounting.

  double total_runtime_s() const { return total_comm_s + total_compute_s; }
  double comm_fraction() const {
    return total_runtime_s() > 0 ? total_comm_s / total_runtime_s() : 0.0;
  }
  /// Per-node memory including the send/receive buffer, as the paper
  /// accounts it.
  std::uint64_t bytes_per_node() const {
    return checked_mul(array_bytes_per_proc, procs_per_node);
  }
  std::uint64_t buffer_bytes_per_node() const {
    return checked_mul(max_msg_bytes_per_proc, procs_per_node);
  }

  /// Renders the paper-style per-array table (Tables 1–2 format).
  std::string table(const IndexSpace& space) const;
  /// One-paragraph summary (totals, fractions, memory).
  std::string summary(const IndexSpace& space) const;
};

}  // namespace tce
