#pragma once
/// \file simulate.hpp
/// Brute-force flow-level simulation of an optimized plan.
///
/// The optimizer *predicts* communication from the characterization
/// table; this module *executes* the plan's communication patterns —
/// ring-shift phases for Cannon steps (all rotating arrays sharing the
/// network concurrently, once per fused iteration), recursive-doubling
/// allgathers and butterfly reduce-scatters for replicated steps —
/// directly on the cluster simulator.  Comparing the two validates the
/// whole RotateCost/DistSize/MsgFactor accounting against first
/// principles; bench_validate reports agreement within ~1.5 %.

#include "tce/core/plan.hpp"
#include "tce/expr/contraction.hpp"
#include "tce/simnet/network.hpp"

namespace tce {

/// Simulated communication time of one plan step on \p net.
double simulate_step_comm(const Network& net, const ProcGrid& grid,
                          const ContractionTree& tree, const PlanStep& step);

/// Sum over all steps of a plan.
double simulate_plan_comm(const Network& net, const ProcGrid& grid,
                          const ContractionTree& tree,
                          const OptimizedPlan& plan);

}  // namespace tce
