#include "tce/core/plan_json.hpp"

#include <cmath>

#include "tce/common/strings.hpp"

namespace tce {

namespace {

/// Minimal JSON writer: we only emit identifiers, numbers and fixed
/// keys, but escape strings defensively anyway.
std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string jnum(double v) {
  if (!std::isfinite(v)) return "null";
  // Enough digits to round-trip comparisons in tooling.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string jdist(const Distribution& d, const IndexSpace& space) {
  auto pos = [&](int i) {
    const IndexId id = d.at(i);
    return id == kNoIndex ? std::string("null") : jstr(space.name(id));
  };
  return "[" + pos(1) + "," + pos(2) + "]";
}

std::string jindexset(IndexSet s, const IndexSpace& space) {
  std::vector<std::string> parts;
  for (IndexId id : s) parts.push_back(jstr(space.name(id)));
  return "[" + join(parts, ",") + "]";
}

std::string jdims(const std::vector<IndexId>& dims,
                  const IndexSpace& space) {
  std::vector<std::string> parts;
  for (IndexId id : dims) parts.push_back(jstr(space.name(id)));
  return "[" + join(parts, ",") + "]";
}

}  // namespace

std::string plan_to_json(const OptimizedPlan& plan,
                         const IndexSpace& space) {
  std::string out = "{";
  out += "\"total_comm_s\":" + jnum(plan.total_comm_s);
  out += ",\"total_compute_s\":" + jnum(plan.total_compute_s);
  out += ",\"comm_fraction\":" + jnum(plan.comm_fraction());
  out += ",\"memory\":{";
  out += "\"array_bytes_per_node\":" + std::to_string(plan.bytes_per_node());
  out += ",\"buffer_bytes_per_node\":" +
         std::to_string(plan.buffer_bytes_per_node());
  out += ",\"peak_live_bytes_per_node\":" +
         std::to_string(plan.peak_live_bytes_per_proc *
                        plan.procs_per_node);
  out += std::string(",\"liveness_aware\":") +
         (plan.liveness_aware ? "true" : "false");
  out += "}";

  out += ",\"steps\":[";
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& s = plan.steps[i];
    if (i != 0) out += ",";
    out += "{";
    out += "\"result\":" + jstr(s.result_name);
    out += std::string(",\"template\":") +
           (s.tmpl == StepTemplate::kReplicated ? "\"replicated\""
                                                : "\"cannon\"");
    out += ",\"fusion\":" + jindexset(s.fusion, space);
    out += ",\"effective_fused\":" + jindexset(s.effective_fused, space);
    out += ",\"left_dist\":" + jdist(s.left_dist, space);
    out += ",\"right_dist\":" + jdist(s.right_dist, space);
    out += ",\"result_dist\":" + jdist(s.result_dist, space);
    out += ",\"rotation_index\":" +
           (s.tmpl == StepTemplate::kCannon && s.choice.rot != kNoIndex
                ? jstr(space.name(s.choice.rot))
                : std::string("null"));
    out += std::string(",\"replicate_right\":") +
           (s.replicate_right ? "true" : "false");
    out += ",\"reduce_dim\":" + std::to_string(s.reduce_dim);
    out += ",\"comm_s\":{";
    out += "\"left\":" + jnum(s.rot_left_s);
    out += ",\"right\":" + jnum(s.rot_right_s);
    out += ",\"result\":" + jnum(s.rot_result_s);
    out += ",\"redist_left\":" + jnum(s.redist_left_s);
    out += ",\"redist_right\":" + jnum(s.redist_right_s);
    out += "}}";
  }
  out += "]";

  out += ",\"arrays\":[";
  for (std::size_t i = 0; i < plan.arrays.size(); ++i) {
    const ArrayReport& a = plan.arrays[i];
    if (i != 0) out += ",";
    out += "{";
    out += "\"name\":" + jstr(a.full.name);
    out += ",\"dims\":" + jdims(a.full.dims, space);
    out += ",\"reduced_dims\":" + jdims(a.reduced.dims, space);
    out += std::string(",\"kind\":") +
           (a.is_input ? "\"input\""
                       : (a.is_output ? "\"output\"" : "\"intermediate\""));
    out += ",\"initial_dist\":" +
           (a.initial_dist ? jdist(*a.initial_dist, space)
                           : std::string("null"));
    out += ",\"final_dist\":" +
           (a.final_dist ? jdist(*a.final_dist, space)
                         : std::string("null"));
    out += ",\"mem_per_node_bytes\":" +
           std::to_string(a.mem_per_node_bytes);
    out += ",\"comm_initial_s\":" +
           (a.comm_initial_s ? jnum(*a.comm_initial_s)
                             : std::string("null"));
    out += ",\"comm_final_s\":" +
           (a.comm_final_s ? jnum(*a.comm_final_s) : std::string("null"));
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace tce
