#include "tce/core/plan_json.hpp"

#include <utility>

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/common/json.hpp"
#include "tce/common/strings.hpp"

namespace tce {

namespace {

/// The shared JSON helpers (tce/common/json.hpp) under the names this
/// writer has always used.
std::string jstr(const std::string& s) { return json::quote(s); }
std::string jnum(double v) { return json::number(v); }

std::string jdist(const Distribution& d, const IndexSpace& space) {
  auto pos = [&](int i) {
    const IndexId id = d.at(i);
    return id == kNoIndex ? std::string("null") : jstr(space.name(id));
  };
  return "[" + pos(1) + "," + pos(2) + "]";
}

std::string jindexset(IndexSet s, const IndexSpace& space) {
  std::vector<std::string> parts;
  for (IndexId id : s) parts.push_back(jstr(space.name(id)));
  return "[" + join(parts, ",") + "]";
}

std::string jdims(const std::vector<IndexId>& dims,
                  const IndexSpace& space) {
  std::vector<std::string> parts;
  for (IndexId id : dims) parts.push_back(jstr(space.name(id)));
  return "[" + join(parts, ",") + "]";
}

std::string jindex(IndexId id, const IndexSpace& space) {
  return id == kNoIndex ? std::string("null") : jstr(space.name(id));
}

// --------------------------------------------------------------- parsing

/// The parser lives in tce/common/json.hpp; `Json` is its Value type.
using Json = json::Value;

double as_number(const Json& v, const char* what) {
  if (v.kind == Json::Kind::kNull) return 0.0;  // writer's non-finite
  if (v.kind != Json::Kind::kNumber) {
    throw Error(std::string("plan JSON: '") + what + "' is not a number");
  }
  return v.number;
}

std::uint64_t as_u64(const Json& v, const char* what) {
  if (v.kind != Json::Kind::kNumber || !v.is_integer) {
    throw Error(std::string("plan JSON: '") + what +
                "' is not an unsigned integer");
  }
  return v.integer;
}

IndexId as_index(const Json& v, const IndexSpace& space,
                 const char* what) {
  if (v.kind == Json::Kind::kNull) return kNoIndex;
  if (v.kind != Json::Kind::kString) {
    throw Error(std::string("plan JSON: '") + what +
                "' is not an index name");
  }
  return space.id(v.string);
}

Distribution as_dist(const Json& v, const IndexSpace& space,
                     const char* what) {
  if (v.kind != Json::Kind::kArray || v.array.size() != 2) {
    throw Error(std::string("plan JSON: '") + what +
                "' is not a two-position distribution");
  }
  return Distribution(as_index(v.array[0], space, what),
                      as_index(v.array[1], space, what));
}

IndexSet as_indexset(const Json& v, const IndexSpace& space,
                     const char* what) {
  if (v.kind != Json::Kind::kArray) {
    throw Error(std::string("plan JSON: '") + what + "' is not an array");
  }
  IndexSet s;
  for (const Json& e : v.array) s.insert(as_index(e, space, what));
  return s;
}

std::vector<IndexId> as_dims(const Json& v, const IndexSpace& space,
                             const char* what) {
  if (v.kind != Json::Kind::kArray) {
    throw Error(std::string("plan JSON: '") + what + "' is not an array");
  }
  std::vector<IndexId> dims;
  for (const Json& e : v.array) dims.push_back(as_index(e, space, what));
  return dims;
}

}  // namespace

std::string plan_to_json(const OptimizedPlan& plan,
                         const IndexSpace& space) {
  std::string out = "{";
  out += "\"total_comm_s\":" + jnum(plan.total_comm_s);
  out += ",\"total_compute_s\":" + jnum(plan.total_compute_s);
  out += ",\"comm_fraction\":" + jnum(plan.comm_fraction());
  out += ",\"memory\":{";
  out += "\"array_bytes_per_node\":" + std::to_string(plan.bytes_per_node());
  out += ",\"buffer_bytes_per_node\":" +
         std::to_string(plan.buffer_bytes_per_node());
  out += ",\"peak_live_bytes_per_node\":" +
         std::to_string(checked_mul(plan.peak_live_bytes_per_proc,
                                    plan.procs_per_node));
  out += std::string(",\"liveness_aware\":") +
         (plan.liveness_aware ? "true" : "false");
  out += ",\"array_bytes_per_proc\":" +
         std::to_string(plan.array_bytes_per_proc);
  out += ",\"max_msg_bytes_per_proc\":" +
         std::to_string(plan.max_msg_bytes_per_proc);
  out += ",\"peak_live_bytes_per_proc\":" +
         std::to_string(plan.peak_live_bytes_per_proc);
  out += ",\"procs_per_node\":" + std::to_string(plan.procs_per_node);
  out += "}";

  out += ",\"steps\":[";
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& s = plan.steps[i];
    if (i != 0) out += ",";
    out += "{";
    out += "\"node\":" + std::to_string(s.node);
    out += ",\"result\":" + jstr(s.result_name);
    out += std::string(",\"template\":") +
           (s.tmpl == StepTemplate::kReplicated ? "\"replicated\""
                                                : "\"cannon\"");
    out += ",\"fusion\":" + jindexset(s.fusion, space);
    out += ",\"effective_fused\":" + jindexset(s.effective_fused, space);
    out += ",\"left_dist\":" + jdist(s.left_dist, space);
    out += ",\"right_dist\":" + jdist(s.right_dist, space);
    out += ",\"result_dist\":" + jdist(s.result_dist, space);
    out += ",\"triplet\":[" + jindex(s.choice.i, space) + "," +
           jindex(s.choice.j, space) + "," + jindex(s.choice.k, space) +
           "]";
    out += std::string(",\"transposed\":") +
           (s.choice.transposed ? "true" : "false");
    out += ",\"rotation_index\":" +
           (s.tmpl == StepTemplate::kCannon && s.choice.rot != kNoIndex
                ? jstr(space.name(s.choice.rot))
                : std::string("null"));
    out += std::string(",\"replicate_right\":") +
           (s.replicate_right ? "true" : "false");
    out += ",\"reduce_dim\":" + std::to_string(s.reduce_dim);
    out += ",\"comm_s\":{";
    out += "\"left\":" + jnum(s.rot_left_s);
    out += ",\"right\":" + jnum(s.rot_right_s);
    out += ",\"result\":" + jnum(s.rot_result_s);
    out += ",\"redist_left\":" + jnum(s.redist_left_s);
    out += ",\"redist_right\":" + jnum(s.redist_right_s);
    out += "}}";
  }
  out += "]";

  out += ",\"arrays\":[";
  for (std::size_t i = 0; i < plan.arrays.size(); ++i) {
    const ArrayReport& a = plan.arrays[i];
    if (i != 0) out += ",";
    out += "{";
    out += "\"name\":" + jstr(a.full.name);
    out += ",\"dims\":" + jdims(a.full.dims, space);
    out += ",\"reduced_dims\":" + jdims(a.reduced.dims, space);
    out += std::string(",\"kind\":") +
           (a.is_input ? "\"input\""
                       : (a.is_output ? "\"output\"" : "\"intermediate\""));
    out += ",\"initial_dist\":" +
           (a.initial_dist ? jdist(*a.initial_dist, space)
                           : std::string("null"));
    out += ",\"final_dist\":" +
           (a.final_dist ? jdist(*a.final_dist, space)
                         : std::string("null"));
    out += ",\"mem_per_node_bytes\":" +
           std::to_string(a.mem_per_node_bytes);
    out += ",\"comm_initial_s\":" +
           (a.comm_initial_s ? jnum(*a.comm_initial_s)
                             : std::string("null"));
    out += ",\"comm_final_s\":" +
           (a.comm_final_s ? jnum(*a.comm_final_s) : std::string("null"));
    out += "}";
  }
  out += "]";

  out += ",\"stats\":{";
  out += "\"candidates\":" + std::to_string(plan.stats.candidates);
  out += ",\"infeasible\":" + std::to_string(plan.stats.infeasible);
  out += ",\"dominated\":" + std::to_string(plan.stats.dominated);
  out += ",\"kept\":" + std::to_string(plan.stats.kept);
  out += ",\"max_per_node\":" + std::to_string(plan.stats.max_per_node);
  out += ",\"redistributions\":" +
         std::to_string(plan.stats.redistributions);
  out += ",\"table_lookups\":" + std::to_string(plan.stats.table_lookups);
  out += ",\"extrapolations\":" +
         std::to_string(plan.stats.extrapolations);
  out += ",\"prover_lb_node_bytes\":" +
         std::to_string(plan.stats.prover_lb_node_bytes);
  out += ",\"comm_lb_words\":" + std::to_string(plan.stats.comm_lb_words);
  out += ",\"achieved_comm_words\":" +
         std::to_string(plan.stats.achieved_comm_words);
  out += ",\"comm_gap_ratio\":" + jnum(plan.stats.comm_gap_ratio);
  out += ",\"search_wall_s\":" + jnum(plan.stats.search_wall_s);
  out += ",\"nodes\":[";
  for (std::size_t i = 0; i < plan.stats.nodes.size(); ++i) {
    const NodeSearchStats& n = plan.stats.nodes[i];
    if (i != 0) out += ",";
    out += "{";
    out += "\"node\":" + std::to_string(n.node);
    out += ",\"result\":" + jstr(n.result_name);
    out += ",\"candidates\":" + std::to_string(n.candidates);
    out += ",\"infeasible\":" + std::to_string(n.infeasible);
    out += ",\"dominated\":" + std::to_string(n.dominated);
    out += ",\"kept\":" + std::to_string(n.kept);
    out += ",\"wall_s\":" + jnum(n.wall_s);
    out += "}";
  }
  out += "]";
  out += "}}";
  return out;
}

OptimizedPlan plan_from_json(const std::string& json,
                             const ContractionTree& tree) {
  const IndexSpace& space = tree.space();
  const Json root = json::parse(json);
  if (root.kind != Json::Kind::kObject) {
    throw Error("plan JSON: top-level value is not an object");
  }

  OptimizedPlan plan;
  plan.total_comm_s = as_number(root.at("total_comm_s"), "total_comm_s");
  plan.total_compute_s =
      as_number(root.at("total_compute_s"), "total_compute_s");

  const Json& mem = root.at("memory");
  plan.liveness_aware = mem.at("liveness_aware").boolean;
  plan.array_bytes_per_proc =
      as_u64(mem.at("array_bytes_per_proc"), "array_bytes_per_proc");
  plan.max_msg_bytes_per_proc =
      as_u64(mem.at("max_msg_bytes_per_proc"), "max_msg_bytes_per_proc");
  plan.peak_live_bytes_per_proc = as_u64(mem.at("peak_live_bytes_per_proc"),
                                         "peak_live_bytes_per_proc");
  plan.procs_per_node = static_cast<std::uint32_t>(
      as_u64(mem.at("procs_per_node"), "procs_per_node"));

  for (const Json& js : root.at("steps").array) {
    PlanStep s;
    s.node = static_cast<NodeId>(as_u64(js.at("node"), "node"));
    if (s.node < 0 || s.node >= static_cast<NodeId>(tree.size())) {
      throw Error("plan JSON: step node " + std::to_string(s.node) +
                  " is outside the tree");
    }
    s.result_name = js.at("result").string;
    const std::string& tmpl = js.at("template").string;
    if (tmpl == "cannon") {
      s.tmpl = StepTemplate::kCannon;
    } else if (tmpl == "replicated") {
      s.tmpl = StepTemplate::kReplicated;
    } else {
      throw Error("plan JSON: unknown step template '" + tmpl + "'");
    }
    s.fusion = as_indexset(js.at("fusion"), space, "fusion");
    s.effective_fused =
        as_indexset(js.at("effective_fused"), space, "effective_fused");
    s.left_dist = as_dist(js.at("left_dist"), space, "left_dist");
    s.right_dist = as_dist(js.at("right_dist"), space, "right_dist");
    s.result_dist = as_dist(js.at("result_dist"), space, "result_dist");
    const Json& trip = js.at("triplet");
    if (trip.kind != Json::Kind::kArray || trip.array.size() != 3) {
      throw Error("plan JSON: 'triplet' is not a three-element array");
    }
    s.choice.i = as_index(trip.array[0], space, "triplet");
    s.choice.j = as_index(trip.array[1], space, "triplet");
    s.choice.k = as_index(trip.array[2], space, "triplet");
    s.choice.transposed = js.at("transposed").boolean;
    s.choice.rot = as_index(js.at("rotation_index"), space,
                            "rotation_index");
    s.replicate_right = js.at("replicate_right").boolean;
    s.reduce_dim =
        static_cast<int>(as_u64(js.at("reduce_dim"), "reduce_dim"));
    const Json& comm = js.at("comm_s");
    s.rot_left_s = as_number(comm.at("left"), "comm_s.left");
    s.rot_right_s = as_number(comm.at("right"), "comm_s.right");
    s.rot_result_s = as_number(comm.at("result"), "comm_s.result");
    s.redist_left_s =
        as_number(comm.at("redist_left"), "comm_s.redist_left");
    s.redist_right_s =
        as_number(comm.at("redist_right"), "comm_s.redist_right");
    plan.steps.push_back(std::move(s));
  }

  for (const Json& ja : root.at("arrays").array) {
    ArrayReport a;
    a.full.name = ja.at("name").string;
    a.full.dims = as_dims(ja.at("dims"), space, "dims");
    a.reduced.name = a.full.name;
    a.reduced.dims = as_dims(ja.at("reduced_dims"), space, "reduced_dims");
    const std::string& kind = ja.at("kind").string;
    a.is_input = kind == "input";
    a.is_output = kind == "output";
    if (const Json* d = ja.find("initial_dist");
        d != nullptr && d->kind != Json::Kind::kNull) {
      a.initial_dist = as_dist(*d, space, "initial_dist");
    }
    if (const Json* d = ja.find("final_dist");
        d != nullptr && d->kind != Json::Kind::kNull) {
      a.final_dist = as_dist(*d, space, "final_dist");
    }
    a.mem_per_node_bytes =
        as_u64(ja.at("mem_per_node_bytes"), "mem_per_node_bytes");
    if (const Json* c = ja.find("comm_initial_s");
        c != nullptr && c->kind != Json::Kind::kNull) {
      a.comm_initial_s = as_number(*c, "comm_initial_s");
    }
    if (const Json* c = ja.find("comm_final_s");
        c != nullptr && c->kind != Json::Kind::kNull) {
      a.comm_final_s = as_number(*c, "comm_final_s");
    }
    plan.arrays.push_back(std::move(a));
  }

  if (const Json* stats = root.find("stats"); stats != nullptr) {
    plan.stats.candidates = as_u64(stats->at("candidates"), "candidates");
    plan.stats.infeasible = as_u64(stats->at("infeasible"), "infeasible");
    plan.stats.dominated = as_u64(stats->at("dominated"), "dominated");
    plan.stats.kept = as_u64(stats->at("kept"), "kept");
    plan.stats.max_per_node =
        as_u64(stats->at("max_per_node"), "max_per_node");
    // Observability fields (absent in pre-obs plan files).
    if (const Json* v = stats->find("redistributions"); v != nullptr) {
      plan.stats.redistributions = as_u64(*v, "redistributions");
    }
    if (const Json* v = stats->find("table_lookups"); v != nullptr) {
      plan.stats.table_lookups = as_u64(*v, "table_lookups");
    }
    if (const Json* v = stats->find("extrapolations"); v != nullptr) {
      plan.stats.extrapolations = as_u64(*v, "extrapolations");
    }
    if (const Json* v = stats->find("prover_lb_node_bytes"); v != nullptr) {
      plan.stats.prover_lb_node_bytes = as_u64(*v, "prover_lb_node_bytes");
    }
    if (const Json* v = stats->find("comm_lb_words"); v != nullptr) {
      plan.stats.comm_lb_words = as_u64(*v, "comm_lb_words");
    }
    if (const Json* v = stats->find("achieved_comm_words"); v != nullptr) {
      plan.stats.achieved_comm_words = as_u64(*v, "achieved_comm_words");
    }
    if (const Json* v = stats->find("comm_gap_ratio"); v != nullptr) {
      plan.stats.comm_gap_ratio = as_number(*v, "comm_gap_ratio");
    }
    if (const Json* v = stats->find("search_wall_s"); v != nullptr) {
      plan.stats.search_wall_s = as_number(*v, "search_wall_s");
    }
    if (const Json* nodes = stats->find("nodes"); nodes != nullptr) {
      for (const Json& jn : nodes->array) {
        NodeSearchStats n;
        n.node = static_cast<NodeId>(as_u64(jn.at("node"), "node"));
        n.result_name = jn.at("result").string;
        n.candidates = as_u64(jn.at("candidates"), "candidates");
        n.infeasible = as_u64(jn.at("infeasible"), "infeasible");
        n.dominated = as_u64(jn.at("dominated"), "dominated");
        n.kept = as_u64(jn.at("kept"), "kept");
        n.wall_s = as_number(jn.at("wall_s"), "wall_s");
        plan.stats.nodes.push_back(std::move(n));
      }
    }
  }
  return plan;
}

}  // namespace tce
