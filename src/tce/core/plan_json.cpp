#include "tce/core/plan_json.hpp"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "tce/common/error.hpp"
#include "tce/common/strings.hpp"

namespace tce {

namespace {

/// Minimal JSON writer: we only emit identifiers, numbers and fixed
/// keys, but escape strings defensively anyway.
std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string jnum(double v) {
  if (!std::isfinite(v)) return "null";
  // 17 significant digits: doubles survive the round trip exactly.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string jdist(const Distribution& d, const IndexSpace& space) {
  auto pos = [&](int i) {
    const IndexId id = d.at(i);
    return id == kNoIndex ? std::string("null") : jstr(space.name(id));
  };
  return "[" + pos(1) + "," + pos(2) + "]";
}

std::string jindexset(IndexSet s, const IndexSpace& space) {
  std::vector<std::string> parts;
  for (IndexId id : s) parts.push_back(jstr(space.name(id)));
  return "[" + join(parts, ",") + "]";
}

std::string jdims(const std::vector<IndexId>& dims,
                  const IndexSpace& space) {
  std::vector<std::string> parts;
  for (IndexId id : dims) parts.push_back(jstr(space.name(id)));
  return "[" + join(parts, ",") + "]";
}

std::string jindex(IndexId id, const IndexSpace& space) {
  return id == kNoIndex ? std::string("null") : jstr(space.name(id));
}

// --------------------------------------------------------------- parsing

/// A parsed JSON value.  Integers keep their exact uint64 representation
/// alongside the double so byte counts round-trip losslessly.
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::uint64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  const Json& at(const std::string& key) const {
    const Json* v = find(key);
    if (v == nullptr) throw Error("plan JSON: missing key '" + key + "'");
    return *v;
  }
};

/// Recursive-descent parser over the writer's subset of JSON (which is
/// all of JSON minus \uXXXX escapes beyond control characters).
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw Error("plan JSON: trailing characters at offset " +
                  std::to_string(pos_));
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw Error("plan JSON: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw Error(std::string("plan JSON: expected '") + c +
                  "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Json{};
      default:
        return number();
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        throw Error("plan JSON: bad literal at offset " +
                    std::to_string(pos_));
      }
      ++pos_;
    }
  }

  Json boolean() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (text_[pos_] == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  Json number() {
    const std::size_t start = pos_;
    bool floating = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                 c == '-') {
        floating = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      throw Error("plan JSON: bad number at offset " +
                  std::to_string(start));
    }
    const std::string tok = text_.substr(start, pos_ - start);
    Json v;
    v.kind = Json::Kind::kNumber;
    v.number = std::strtod(tok.c_str(), nullptr);
    if (!floating && tok[0] != '-') {
      v.is_integer = true;
      v.integer = std::strtoull(tok.c_str(), nullptr, 10);
    }
    return v;
  }

  Json string_value() {
    expect('"');
    Json v;
    v.kind = Json::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) {
        throw Error("plan JSON: unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          throw Error("plan JSON: unterminated escape");
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            v.string += '"';
            break;
          case '\\':
            v.string += '\\';
            break;
          case 'n':
            v.string += '\n';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw Error("plan JSON: bad \\u escape");
            }
            const unsigned long cp =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            v.string += static_cast<char>(cp);  // writer emits < 0x20 only
            break;
          }
          default:
            throw Error("plan JSON: unsupported escape");
        }
      } else {
        v.string += c;
      }
    }
    return v;
  }

  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::kArray;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      if (consume(']')) break;
      expect(',');
    }
    return v;
  }

  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::kObject;
    if (consume('}')) return v;
    while (true) {
      Json key = string_value();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      if (consume('}')) break;
      expect(',');
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double as_number(const Json& v, const char* what) {
  if (v.kind == Json::Kind::kNull) return 0.0;  // writer's non-finite
  if (v.kind != Json::Kind::kNumber) {
    throw Error(std::string("plan JSON: '") + what + "' is not a number");
  }
  return v.number;
}

std::uint64_t as_u64(const Json& v, const char* what) {
  if (v.kind != Json::Kind::kNumber || !v.is_integer) {
    throw Error(std::string("plan JSON: '") + what +
                "' is not an unsigned integer");
  }
  return v.integer;
}

IndexId as_index(const Json& v, const IndexSpace& space,
                 const char* what) {
  if (v.kind == Json::Kind::kNull) return kNoIndex;
  if (v.kind != Json::Kind::kString) {
    throw Error(std::string("plan JSON: '") + what +
                "' is not an index name");
  }
  return space.id(v.string);
}

Distribution as_dist(const Json& v, const IndexSpace& space,
                     const char* what) {
  if (v.kind != Json::Kind::kArray || v.array.size() != 2) {
    throw Error(std::string("plan JSON: '") + what +
                "' is not a two-position distribution");
  }
  return Distribution(as_index(v.array[0], space, what),
                      as_index(v.array[1], space, what));
}

IndexSet as_indexset(const Json& v, const IndexSpace& space,
                     const char* what) {
  if (v.kind != Json::Kind::kArray) {
    throw Error(std::string("plan JSON: '") + what + "' is not an array");
  }
  IndexSet s;
  for (const Json& e : v.array) s.insert(as_index(e, space, what));
  return s;
}

std::vector<IndexId> as_dims(const Json& v, const IndexSpace& space,
                             const char* what) {
  if (v.kind != Json::Kind::kArray) {
    throw Error(std::string("plan JSON: '") + what + "' is not an array");
  }
  std::vector<IndexId> dims;
  for (const Json& e : v.array) dims.push_back(as_index(e, space, what));
  return dims;
}

}  // namespace

std::string plan_to_json(const OptimizedPlan& plan,
                         const IndexSpace& space) {
  std::string out = "{";
  out += "\"total_comm_s\":" + jnum(plan.total_comm_s);
  out += ",\"total_compute_s\":" + jnum(plan.total_compute_s);
  out += ",\"comm_fraction\":" + jnum(plan.comm_fraction());
  out += ",\"memory\":{";
  out += "\"array_bytes_per_node\":" + std::to_string(plan.bytes_per_node());
  out += ",\"buffer_bytes_per_node\":" +
         std::to_string(plan.buffer_bytes_per_node());
  out += ",\"peak_live_bytes_per_node\":" +
         std::to_string(plan.peak_live_bytes_per_proc *
                        plan.procs_per_node);
  out += std::string(",\"liveness_aware\":") +
         (plan.liveness_aware ? "true" : "false");
  out += ",\"array_bytes_per_proc\":" +
         std::to_string(plan.array_bytes_per_proc);
  out += ",\"max_msg_bytes_per_proc\":" +
         std::to_string(plan.max_msg_bytes_per_proc);
  out += ",\"peak_live_bytes_per_proc\":" +
         std::to_string(plan.peak_live_bytes_per_proc);
  out += ",\"procs_per_node\":" + std::to_string(plan.procs_per_node);
  out += "}";

  out += ",\"steps\":[";
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& s = plan.steps[i];
    if (i != 0) out += ",";
    out += "{";
    out += "\"node\":" + std::to_string(s.node);
    out += ",\"result\":" + jstr(s.result_name);
    out += std::string(",\"template\":") +
           (s.tmpl == StepTemplate::kReplicated ? "\"replicated\""
                                                : "\"cannon\"");
    out += ",\"fusion\":" + jindexset(s.fusion, space);
    out += ",\"effective_fused\":" + jindexset(s.effective_fused, space);
    out += ",\"left_dist\":" + jdist(s.left_dist, space);
    out += ",\"right_dist\":" + jdist(s.right_dist, space);
    out += ",\"result_dist\":" + jdist(s.result_dist, space);
    out += ",\"triplet\":[" + jindex(s.choice.i, space) + "," +
           jindex(s.choice.j, space) + "," + jindex(s.choice.k, space) +
           "]";
    out += std::string(",\"transposed\":") +
           (s.choice.transposed ? "true" : "false");
    out += ",\"rotation_index\":" +
           (s.tmpl == StepTemplate::kCannon && s.choice.rot != kNoIndex
                ? jstr(space.name(s.choice.rot))
                : std::string("null"));
    out += std::string(",\"replicate_right\":") +
           (s.replicate_right ? "true" : "false");
    out += ",\"reduce_dim\":" + std::to_string(s.reduce_dim);
    out += ",\"comm_s\":{";
    out += "\"left\":" + jnum(s.rot_left_s);
    out += ",\"right\":" + jnum(s.rot_right_s);
    out += ",\"result\":" + jnum(s.rot_result_s);
    out += ",\"redist_left\":" + jnum(s.redist_left_s);
    out += ",\"redist_right\":" + jnum(s.redist_right_s);
    out += "}}";
  }
  out += "]";

  out += ",\"arrays\":[";
  for (std::size_t i = 0; i < plan.arrays.size(); ++i) {
    const ArrayReport& a = plan.arrays[i];
    if (i != 0) out += ",";
    out += "{";
    out += "\"name\":" + jstr(a.full.name);
    out += ",\"dims\":" + jdims(a.full.dims, space);
    out += ",\"reduced_dims\":" + jdims(a.reduced.dims, space);
    out += std::string(",\"kind\":") +
           (a.is_input ? "\"input\""
                       : (a.is_output ? "\"output\"" : "\"intermediate\""));
    out += ",\"initial_dist\":" +
           (a.initial_dist ? jdist(*a.initial_dist, space)
                           : std::string("null"));
    out += ",\"final_dist\":" +
           (a.final_dist ? jdist(*a.final_dist, space)
                         : std::string("null"));
    out += ",\"mem_per_node_bytes\":" +
           std::to_string(a.mem_per_node_bytes);
    out += ",\"comm_initial_s\":" +
           (a.comm_initial_s ? jnum(*a.comm_initial_s)
                             : std::string("null"));
    out += ",\"comm_final_s\":" +
           (a.comm_final_s ? jnum(*a.comm_final_s) : std::string("null"));
    out += "}";
  }
  out += "]";

  out += ",\"stats\":{";
  out += "\"candidates\":" + std::to_string(plan.stats.candidates);
  out += ",\"infeasible\":" + std::to_string(plan.stats.infeasible);
  out += ",\"dominated\":" + std::to_string(plan.stats.dominated);
  out += ",\"kept\":" + std::to_string(plan.stats.kept);
  out += ",\"max_per_node\":" + std::to_string(plan.stats.max_per_node);
  out += "}}";
  return out;
}

OptimizedPlan plan_from_json(const std::string& json,
                             const ContractionTree& tree) {
  const IndexSpace& space = tree.space();
  const Json root = JsonReader(json).parse();
  if (root.kind != Json::Kind::kObject) {
    throw Error("plan JSON: top-level value is not an object");
  }

  OptimizedPlan plan;
  plan.total_comm_s = as_number(root.at("total_comm_s"), "total_comm_s");
  plan.total_compute_s =
      as_number(root.at("total_compute_s"), "total_compute_s");

  const Json& mem = root.at("memory");
  plan.liveness_aware = mem.at("liveness_aware").boolean;
  plan.array_bytes_per_proc =
      as_u64(mem.at("array_bytes_per_proc"), "array_bytes_per_proc");
  plan.max_msg_bytes_per_proc =
      as_u64(mem.at("max_msg_bytes_per_proc"), "max_msg_bytes_per_proc");
  plan.peak_live_bytes_per_proc = as_u64(mem.at("peak_live_bytes_per_proc"),
                                         "peak_live_bytes_per_proc");
  plan.procs_per_node = static_cast<std::uint32_t>(
      as_u64(mem.at("procs_per_node"), "procs_per_node"));

  for (const Json& js : root.at("steps").array) {
    PlanStep s;
    s.node = static_cast<NodeId>(as_u64(js.at("node"), "node"));
    if (s.node < 0 || s.node >= static_cast<NodeId>(tree.size())) {
      throw Error("plan JSON: step node " + std::to_string(s.node) +
                  " is outside the tree");
    }
    s.result_name = js.at("result").string;
    const std::string& tmpl = js.at("template").string;
    if (tmpl == "cannon") {
      s.tmpl = StepTemplate::kCannon;
    } else if (tmpl == "replicated") {
      s.tmpl = StepTemplate::kReplicated;
    } else {
      throw Error("plan JSON: unknown step template '" + tmpl + "'");
    }
    s.fusion = as_indexset(js.at("fusion"), space, "fusion");
    s.effective_fused =
        as_indexset(js.at("effective_fused"), space, "effective_fused");
    s.left_dist = as_dist(js.at("left_dist"), space, "left_dist");
    s.right_dist = as_dist(js.at("right_dist"), space, "right_dist");
    s.result_dist = as_dist(js.at("result_dist"), space, "result_dist");
    const Json& trip = js.at("triplet");
    if (trip.kind != Json::Kind::kArray || trip.array.size() != 3) {
      throw Error("plan JSON: 'triplet' is not a three-element array");
    }
    s.choice.i = as_index(trip.array[0], space, "triplet");
    s.choice.j = as_index(trip.array[1], space, "triplet");
    s.choice.k = as_index(trip.array[2], space, "triplet");
    s.choice.transposed = js.at("transposed").boolean;
    s.choice.rot = as_index(js.at("rotation_index"), space,
                            "rotation_index");
    s.replicate_right = js.at("replicate_right").boolean;
    s.reduce_dim =
        static_cast<int>(as_u64(js.at("reduce_dim"), "reduce_dim"));
    const Json& comm = js.at("comm_s");
    s.rot_left_s = as_number(comm.at("left"), "comm_s.left");
    s.rot_right_s = as_number(comm.at("right"), "comm_s.right");
    s.rot_result_s = as_number(comm.at("result"), "comm_s.result");
    s.redist_left_s =
        as_number(comm.at("redist_left"), "comm_s.redist_left");
    s.redist_right_s =
        as_number(comm.at("redist_right"), "comm_s.redist_right");
    plan.steps.push_back(std::move(s));
  }

  for (const Json& ja : root.at("arrays").array) {
    ArrayReport a;
    a.full.name = ja.at("name").string;
    a.full.dims = as_dims(ja.at("dims"), space, "dims");
    a.reduced.name = a.full.name;
    a.reduced.dims = as_dims(ja.at("reduced_dims"), space, "reduced_dims");
    const std::string& kind = ja.at("kind").string;
    a.is_input = kind == "input";
    a.is_output = kind == "output";
    if (const Json* d = ja.find("initial_dist");
        d != nullptr && d->kind != Json::Kind::kNull) {
      a.initial_dist = as_dist(*d, space, "initial_dist");
    }
    if (const Json* d = ja.find("final_dist");
        d != nullptr && d->kind != Json::Kind::kNull) {
      a.final_dist = as_dist(*d, space, "final_dist");
    }
    a.mem_per_node_bytes =
        as_u64(ja.at("mem_per_node_bytes"), "mem_per_node_bytes");
    if (const Json* c = ja.find("comm_initial_s");
        c != nullptr && c->kind != Json::Kind::kNull) {
      a.comm_initial_s = as_number(*c, "comm_initial_s");
    }
    if (const Json* c = ja.find("comm_final_s");
        c != nullptr && c->kind != Json::Kind::kNull) {
      a.comm_final_s = as_number(*c, "comm_final_s");
    }
    plan.arrays.push_back(std::move(a));
  }

  if (const Json* stats = root.find("stats"); stats != nullptr) {
    plan.stats.candidates = as_u64(stats->at("candidates"), "candidates");
    plan.stats.infeasible = as_u64(stats->at("infeasible"), "infeasible");
    plan.stats.dominated = as_u64(stats->at("dominated"), "dominated");
    plan.stats.kept = as_u64(stats->at("kept"), "kept");
    plan.stats.max_per_node =
        as_u64(stats->at("max_per_node"), "max_per_node");
  }
  return plan;
}

}  // namespace tce
