#include "tce/core/simulate.hpp"

#include <algorithm>

#include "tce/common/checked.hpp"
#include "tce/common/json.hpp"
#include "tce/fusion/fused.hpp"
#include "tce/obs/trace.hpp"

namespace tce {

namespace {

/// Brute-force flow simulation of a replicated step: per allgather
/// iteration, recursive-doubling exchange phases of the sliced operand;
/// plus the reduce-scatter butterflies of the result partials.
double simulate_replicated_step(const Network& net, const ProcGrid& grid,
                                const ContractionTree& tree,
                                const PlanStep& s) {
  const IndexSpace& space = tree.space();
  const ContractionNode& n = tree.node(s.node);
  const NodeId repl = s.replicate_right ? n.right : n.left;
  const IndexSet eff = s.effective_fused;
  const bool tracing = obs::trace_enabled();
  const double base = tracing ? obs::sim_now_s() : 0.0;

  // Allgather phases.
  const TensorRef& rref = tree.node(repl).tensor;
  double ag_repeat = 1.0;
  for (IndexId j : eff & rref.index_set()) {
    ag_repeat *= static_cast<double>(space.extent(j));
  }
  const std::uint64_t slice_total = fused_bytes(rref, eff, space);
  const std::uint64_t block =
      std::max<std::uint64_t>(slice_total / grid.procs, 1);
  std::vector<Phase> ag_phases;
  for (std::uint32_t dist = 1; dist < grid.procs; dist *= 2) {
    Phase phase;
    if (tracing) {
      phase.label = s.result_name + " allgather (distance " +
                    std::to_string(dist) + ")";
    }
    for (std::uint32_t r = 0; r < grid.procs; ++r) {
      phase.flows.push_back({r, r ^ dist, checked_mul(block, dist)});
    }
    ag_phases.push_back(std::move(phase));
  }
  double simulated_s = net.run_phases(ag_phases).comm_s;
  double total = ag_repeat * simulated_s;

  // Reduce-scatter phases.
  if (s.reduce_dim != 0) {
    const IndexSet f_red = eff & n.tensor.index_set();
    double red_repeat = 1.0;
    for (IndexId j : f_red) {
      red_repeat *= static_cast<double>(space.extent(j));
    }
    const Distribution partial(
        s.reduce_dim == 2 ? s.result_dist.at(1) : kNoIndex,
        s.reduce_dim == 1 ? s.result_dist.at(2) : kNoIndex);
    const std::uint64_t partial_bytes =
        dist_bytes(n.tensor, partial, f_red, space, grid);
    std::vector<Phase> rs_phases;
    std::uint64_t payload = partial_bytes / 2;
    auto rank_in_line = [&](std::uint32_t line, std::uint32_t pos) {
      return s.reduce_dim == 1 ? grid.rank(pos, line)
                               : grid.rank(line, pos);
    };
    for (std::uint32_t dist = grid.edge / 2; dist >= 1; dist /= 2) {
      Phase phase;
      if (tracing) {
        phase.label = s.result_name + " reduce-scatter (distance " +
                      std::to_string(dist) + ")";
      }
      for (std::uint32_t line = 0; line < grid.edge; ++line) {
        for (std::uint32_t pos = 0; pos < grid.edge; ++pos) {
          phase.flows.push_back({rank_in_line(line, pos),
                                 rank_in_line(line, pos ^ dist),
                                 std::max<std::uint64_t>(payload, 1)});
        }
      }
      rs_phases.push_back(std::move(phase));
      payload /= 2;
    }
    const double rs_s = net.run_phases(rs_phases).comm_s;
    simulated_s += rs_s;
    total += red_repeat * rs_s;
  }
  if (tracing) {
    // One phase set was simulated; the fused-loop repeats beyond it are
    // accounted analytically — advance the clock over the remainder and
    // mark the whole step.
    obs::sim_advance(total - simulated_s);
    obs::trace_sim_complete(
        "step " + s.result_name, "plan", 3, base, total,
        json::ObjectWriter()
            .field("template", "replicated")
            .field("fused_iterations", ag_repeat)
            .str());
  }
  return total;
}

/// Brute-force flow simulation of one plan step: `repeat` iterations of
/// `edge` ring-shift phases in which every rotating array's blocks move
/// concurrently.
double simulate_step_comm_impl(const Network& net, const ProcGrid& grid,
                          const ContractionTree& tree, const PlanStep& s) {
  if (s.tmpl == StepTemplate::kReplicated) {
    return simulate_replicated_step(net, grid, tree, s);
  }
  const IndexSpace& space = tree.space();
  const ContractionNode& n = tree.node(s.node);

  struct Rot {
    std::uint64_t bytes;
    int dim;
  };
  std::vector<Rot> rots;
  const IndexSet eff = s.effective_fused;
  if (s.choice.rotates_left()) {
    rots.push_back({dist_bytes(tree.node(n.left).tensor, s.left_dist, eff,
                               space, grid),
                    s.choice.left_rot_dim()});
  }
  if (s.choice.rotates_right()) {
    rots.push_back({dist_bytes(tree.node(n.right).tensor, s.right_dist,
                               eff, space, grid),
                    s.choice.right_rot_dim()});
  }
  if (s.choice.rotates_result()) {
    rots.push_back({dist_bytes(n.tensor, s.choice.result_dist(), eff,
                               space, grid),
                    s.choice.result_rot_dim()});
  }

  const bool tracing = obs::trace_enabled();
  const double base = tracing ? obs::sim_now_s() : 0.0;
  Phase phase;
  if (tracing) {
    phase.label = s.result_name + " rotate step (one of " +
                  std::to_string(grid.edge) + ")";
  }
  for (std::uint32_t z1 = 0; z1 < grid.edge; ++z1) {
    for (std::uint32_t z2 = 0; z2 < grid.edge; ++z2) {
      for (const Rot& r : rots) {
        const std::uint32_t dst =
            r.dim == 1 ? grid.rank((z1 + 1) % grid.edge, z2)
                       : grid.rank(z1, (z2 + 1) % grid.edge);
        phase.flows.push_back({grid.rank(z1, z2), dst, r.bytes});
      }
    }
  }
  const double per_phase = net.run_phase(phase).comm_s;

  double repeat = 1.0;
  for (IndexId j : eff) repeat *= static_cast<double>(space.extent(j));
  const double total =
      repeat * static_cast<double>(grid.edge) * per_phase;
  if (tracing) {
    // One rotation phase was simulated; the remaining edge−1 rotations
    // × fused repeats are identical by symmetry and accounted
    // analytically — advance the clock and mark the whole step.
    obs::sim_advance(total - per_phase);
    obs::trace_sim_complete(
        "step " + s.result_name, "plan", 3, base, total,
        json::ObjectWriter()
            .field("template", "cannon")
            .field("fused_iterations", repeat)
            .field("rotation_steps", grid.edge)
            .field("per_phase_s", per_phase)
            .str());
  }
  return total;
}

}  // namespace

double simulate_step_comm(const Network& net, const ProcGrid& grid,
                          const ContractionTree& tree,
                          const PlanStep& step) {
  return simulate_step_comm_impl(net, grid, tree, step);
}

double simulate_plan_comm(const Network& net, const ProcGrid& grid,
                          const ContractionTree& tree,
                          const OptimizedPlan& plan) {
  double total = 0;
  for (const PlanStep& s : plan.steps) {
    total += simulate_step_comm(net, grid, tree, s);
  }
  return total;
}

}  // namespace tce
