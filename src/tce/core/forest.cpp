#include "tce/core/forest.hpp"

#include <algorithm>

#include "tce/common/error.hpp"
#include "tce/common/thread_pool.hpp"

namespace tce {

namespace {

/// Per-tree memory summary extracted from a plan.
struct TreeMem {
  std::uint64_t inputs_pp = 0;  ///< Σ input blocks per processor.
  std::uint64_t output_pp = 0;  ///< Root output block per processor.
  std::uint64_t peak_inter_pp = 0;  ///< Live-intermediate peak.
};

TreeMem summarize(const OptimizedPlan& plan) {
  TreeMem m;
  for (const ArrayReport& row : plan.arrays) {
    const std::uint64_t pp = row.mem_per_node_bytes / plan.procs_per_node;
    if (row.is_input) m.inputs_pp += pp;
    if (row.is_output) m.output_pp = pp;
  }
  TCE_ENSURES(plan.peak_live_bytes_per_proc >= m.inputs_pp);
  m.peak_inter_pp = plan.peak_live_bytes_per_proc - m.inputs_pp;
  return m;
}

/// One partial selection over a prefix of the trees.
struct State {
  double cost = 0;
  double compute = 0;
  std::uint64_t mem_sum = 0;     ///< Summed model: Σ array bytes/proc.
  std::uint64_t max_msg = 0;     ///< Largest message anywhere.
  std::uint64_t inputs_sum = 0;  ///< Liveness: Σ inputs/proc, all trees.
  std::uint64_t out_prefix = 0;  ///< Outputs of finished trees.
  std::uint64_t peak = 0;        ///< Max over tree positions (no inputs).
  std::vector<std::size_t> picks;
};

}  // namespace

ForestPlan optimize_forest(const ContractionForest& forest,
                           const MachineModel& model,
                           const OptimizerConfig& config) {
  TCE_EXPECTS(!forest.trees.empty());

  // Per-tree Pareto frontiers (a per-tree InfeasibleError propagates —
  // if one tree cannot fit alone, the program cannot).
  // Trees are independent searches, so they run concurrently on the
  // shared pool; each inner search fans out on the same pool, which
  // caps total parallelism at the configured thread count.
  const unsigned threads = ThreadPool::resolve_threads(config.threads);
  std::vector<std::vector<OptimizedPlan>> frontiers(forest.trees.size());
  ThreadPool::shared().parallel_for(
      forest.trees.size(), threads, [&](std::size_t t) {
        frontiers[t] = optimize_frontier(forest.trees[t], model, config);
      });

  const bool liveness = config.liveness_aware;
  auto metric = [&](const State& s) {
    return liveness ? checked_add(s.inputs_sum, s.peak) : s.mem_sum;
  };

  std::vector<State> states(1);
  for (std::size_t t = 0; t < frontiers.size(); ++t) {
    std::vector<State> next;
    for (const State& base : states) {
      for (std::size_t p = 0; p < frontiers[t].size(); ++p) {
        const OptimizedPlan& plan = frontiers[t][p];
        const TreeMem m = summarize(plan);
        State s = base;
        s.cost += plan.total_comm_s;
        s.compute += plan.total_compute_s;
        s.mem_sum = checked_add(s.mem_sum, plan.array_bytes_per_proc);
        s.max_msg = std::max(s.max_msg, plan.max_msg_bytes_per_proc);
        s.peak = std::max(s.peak,
                          checked_add(s.out_prefix, m.peak_inter_pp));
        s.out_prefix = checked_add(s.out_prefix, m.output_pp);
        s.inputs_sum = checked_add(s.inputs_sum, m.inputs_pp);
        s.picks.push_back(p);
        next.push_back(std::move(s));
      }
    }
    // Pareto prune partial states on (cost, metric, max_msg, out_prefix).
    std::vector<State> pruned;
    for (State& s : next) {
      bool dominated = false;
      for (const State& q : next) {
        if (&q == &s) continue;
        const bool leq = q.cost <= s.cost && metric(q) <= metric(s) &&
                         q.max_msg <= s.max_msg &&
                         q.out_prefix <= s.out_prefix;
        // Ties are broken by position so exactly one of two identical
        // states survives.
        const bool strict = q.cost < s.cost || metric(q) < metric(s) ||
                            q.max_msg < s.max_msg ||
                            q.out_prefix < s.out_prefix || (&q < &s);
        if (leq && strict) {
          dominated = true;
          break;
        }
      }
      if (!dominated) pruned.push_back(std::move(s));
    }
    states = std::move(pruned);
  }

  const State* best = nullptr;
  for (const State& s : states) {
    if (config.mem_limit_node_bytes != 0) {
      const std::uint64_t per_node = checked_mul(
          checked_add(metric(s), s.max_msg),
          model.grid().procs_per_node);
      if (per_node > config.mem_limit_node_bytes) continue;
    }
    if (best == nullptr || s.cost < best->cost) best = &s;
  }
  if (best == nullptr) {
    throw InfeasibleError(
        "no combination of per-tree plans fits the shared memory limit");
  }

  ForestPlan out;
  out.total_comm_s = best->cost;
  out.total_compute_s = best->compute;
  out.bytes_per_node = checked_mul(metric(*best),
                                   model.grid().procs_per_node);
  for (std::size_t t = 0; t < frontiers.size(); ++t) {
    out.plans.push_back(frontiers[t][best->picks[t]]);
  }
  return out;
}

}  // namespace tce
