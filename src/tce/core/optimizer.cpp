#include "tce/core/optimizer.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <unordered_map>

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/common/json.hpp"
#include "tce/common/thread_pool.hpp"
#include "tce/common/timer.hpp"
#include "tce/core/frontier.hpp"
#include "tce/costmodel/characterization.hpp"
#include "tce/costmodel/rotate_cost.hpp"
#include "tce/fusion/fused.hpp"
#include "tce/lint/lint.hpp"
#include "tce/obs/log.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/obs/trace.hpp"
#include "tce/verify/verifier.hpp"

namespace tce {

namespace {

/// One partial solution at a node (§3.3): produced distribution, fusion
/// with the parent, subtree cost and memory, plus provenance for plan
/// extraction.
struct Sol {
  Distribution dist;
  IndexSet fusion;
  double cost = 0;
  std::uint64_t mem = 0;      ///< Per-processor array bytes, subtree (the
                              ///< paper's sum-over-all-arrays model).
  std::uint64_t max_msg = 0;  ///< Per-processor largest message, subtree.
  // Liveness accounting (extension; see OptimizerConfig::liveness_aware):
  std::uint64_t peak = 0;     ///< Peak live intermediate bytes while the
                              ///< subtree executes (inputs excluded).
  std::uint64_t working = 0;  ///< Bytes that must stay live while the
                              ///< parent executes (own array plus fused
                              ///< children's working sets).
  std::uint64_t input_bytes = 0;  ///< Σ input blocks in the subtree.

  /// Position in the node's canonical sequential enumeration order
  /// (work-unit index in the high bits, within-unit counter in the low
  /// bits).  Dominance ties resolve toward the lower seq, which makes
  /// the surviving frontier independent of how the enumeration was
  /// chunked across threads; see frontier.hpp.
  std::uint64_t seq = 0;

  // Provenance.
  bool replicated = false;      ///< Step template: replicate-compute-reduce.
  bool replicate_right = false; ///< Which operand was replicated.
  int reduce_dim = 0;           ///< Grid dim of the partial reduction.
  CannonChoice choice{};
  int left_sol = -1;   ///< Solution index in the child's set; -1 = leaf.
  int right_sol = -1;
  Distribution left_dist{};
  Distribution right_dist{};
  IndexSet eff_fused;
  double rot_left = 0, rot_right = 0, rot_result = 0;
  double redist_left = 0, redist_right = 0;
};

/// Pareto dominance with a deterministic tie-break; the memory metrics
/// compared depend on the accounting mode.  a dominates b when a is
/// weakly ≤ b on every compared metric and either strictly better
/// somewhere or (all-tied) earlier in enumeration order.  That makes
/// the relation a strict partial order, so a frontier's surviving set
/// is its unique maximal set — independent of insertion order — and it
/// coincides with what the former weak-dominance sequential insertion
/// kept.
bool dominates(const Sol& a, const Sol& b, bool liveness) {
  if (a.cost > b.cost || a.max_msg > b.max_msg) return false;
  bool strict = a.cost < b.cost || a.max_msg < b.max_msg;
  if (liveness) {
    // Saturating: these sums are only compared, and a clamped compare
    // stays correct while a wrapped one inverts the dominance.
    const std::uint64_t am = saturating_add(a.input_bytes, a.peak);
    const std::uint64_t bm = saturating_add(b.input_bytes, b.peak);
    if (am > bm || a.working > b.working) return false;
    strict = strict || am < bm || a.working < b.working;
  } else {
    if (a.mem > b.mem) return false;
    strict = strict || a.mem < b.mem;
  }
  return strict || a.seq < b.seq;
}

/// (distribution, fusion) bucket key of the per-node frontier.
using StateKey = std::pair<Distribution, IndexSet>;
using SolFrontier = KeyedFrontier<StateKey, Sol>;

/// One way of obtaining an operand with a required distribution.
struct Operand {
  int sol = -1;           ///< Child solution index; -1 for a leaf.
  IndexSet fusion;        ///< Child's fusion with this node (∅ for leaf).
  double cost = 0;        ///< Child subtree cost, excluding redist.
  double redist = 0;      ///< Redistribution cost paid here.
  std::uint64_t mem = 0;  ///< Child subtree memory (summed model).
  std::uint64_t max_msg = 0;
  std::uint64_t peak = 0;
  std::uint64_t working = 0;
  std::uint64_t input_bytes = 0;
  IndexSet loop_indices;  ///< Child loop nest (for the nesting rule).
};

/// Per-node (and, during the fan-out, per-chunk) search effort.  The
/// chunk accumulators are summed in chunk order, so every total is
/// independent of the thread count; per-node rows and the grand totals
/// in OptimizerStats are rolled up from these in post order.
struct NodeAccum {
  std::uint64_t candidates = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t dominated = 0;
  std::uint64_t kept = 0;
  std::uint64_t redistributions = 0;
  std::uint64_t lookups = 0;         ///< Characterization-curve evals.
  std::uint64_t extrapolations = 0;
  double wall_s = 0;

  void add(const NodeAccum& o) {
    candidates += o.candidates;
    infeasible += o.infeasible;
    dominated += o.dominated;
    redistributions += o.redistributions;
    lookups += o.lookups;
    extrapolations += o.extrapolations;
  }
};

/// Captures the thread-local characterization-curve counters around a
/// contiguous region of work on one thread and credits the delta to a
/// NodeAccum.  Regions never nest (prologue / chunk / reduce bodies).
class CurveScope {
 public:
  explicit CurveScope(NodeAccum& acc)
      : acc_(acc), before_(curve_counters()) {}
  ~CurveScope() {
    const CurveCounters after = curve_counters();
    acc_.lookups += after.lookups - before_.lookups;
    acc_.extrapolations += after.extrapolations - before_.extrapolations;
  }
  CurveScope(const CurveScope&) = delete;
  CurveScope& operator=(const CurveScope&) = delete;

 private:
  NodeAccum& acc_;
  const CurveCounters before_;
};

/// Memoized geometry for the hot inner loops: per-processor block
/// bytes (dist_bytes) keyed by (array, distribution, fusion), total
/// fused-slice bytes (fused_bytes) and fused-loop repeat factors keyed
/// by the fused set.  One instance per work chunk — never shared
/// across threads — so lookups are lock-free; the functions are pure,
/// so caching cannot change any result.
class GeomCache {
 public:
  GeomCache(const IndexSpace& space, const ProcGrid& grid)
      : space_(space), grid_(grid) {}

  std::uint64_t bytes(const TensorRef& v, const Distribution& d,
                      IndexSet fused) {
    const Key k{&v, fused.bits(), pack(d)};
    auto [it, fresh] = bytes_.try_emplace(k, 0);
    if (fresh) it->second = dist_bytes(v, d, fused, space_, grid_);
    return it->second;
  }

  std::uint64_t fused_total(const TensorRef& v, IndexSet fused) {
    const Key k{&v, fused.bits(), kFusedTag};
    auto [it, fresh] = bytes_.try_emplace(k, 0);
    if (fresh) it->second = fused_bytes(v, fused, space_);
    return it->second;
  }

  /// Π N_j over the fused set (fused indices are never distributed).
  double repeat(IndexSet fused) {
    auto [it, fresh] = repeat_.try_emplace(fused.bits(), 0.0);
    if (fresh) {
      double r = 1.0;
      for (IndexId j : fused) r *= static_cast<double>(space_.extent(j));
      it->second = r;
    }
    return it->second;
  }

 private:
  static constexpr std::uint32_t kFusedTag = 0xFFFF0000;

  static std::uint32_t pack(const Distribution& d) {
    return (static_cast<std::uint32_t>(d.at(1)) << 8) |
           static_cast<std::uint32_t>(d.at(2));
  }

  struct Key {
    const void* v;
    std::uint64_t fused;
    std::uint32_t dist;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = reinterpret_cast<std::uintptr_t>(k.v);
      h = (h ^ k.fused) * 0x9E3779B97F4A7C15ull;
      h = (h ^ k.dist) * 0xC2B2AE3D27D4EB4Full;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  const IndexSpace& space_;
  const ProcGrid& grid_;
  std::unordered_map<Key, std::uint64_t, KeyHash> bytes_;
  std::unordered_map<std::uint64_t, double> repeat_;
};

/// One outer work unit of the replicate-compute-reduce enumeration
/// (solve_replicated's four outermost loop variables); the j_pick /
/// fusion / operand nest runs inside the unit.
struct ReplUnit {
  bool repl_right = false;
  IndexId s_r = kNoIndex;
  IndexId s_k = kNoIndex;
  bool tr = false;
};

class Search {
 public:
  Search(const ContractionTree& tree, const MachineModel& model,
         const OptimizerConfig& cfg)
      : tree_(tree),
        model_(model),
        cfg_(cfg),
        grid_(model.grid()),
        space_(tree.space()),
        threads_(ThreadPool::resolve_threads(cfg.threads)) {}

  OptimizedPlan run() {
    solve_all();
    return extract_plan(best_root_sol());
  }

  /// The Pareto frontier of full-tree plans over (cost, memory metric,
  /// largest message): every trade-off the tree admits under the
  /// configuration.  Sorted by increasing cost; exact-triple duplicates
  /// collapse onto the earliest-enumerated representative.
  std::vector<OptimizedPlan> run_frontier() {
    solve_all();
    const auto& root_sols = sols_[static_cast<std::size_t>(tree_.root())];
    // Global Pareto filter across all root solutions, over
    // (cost, memory metric, largest message) — the send/recv transient
    // matters to downstream consumers (forest composition) just like
    // array memory, so it must survive as its own dimension.  The
    // near-linear sweep replaces the former all-pairs scan.
    std::vector<FrontierPoint> points(root_sols.size());
    for (std::size_t i = 0; i < root_sols.size(); ++i) {
      points[i] = {root_sols[i].cost, metric(root_sols[i]),
                   root_sols[i].max_msg, static_cast<std::uint32_t>(i)};
    }
    std::vector<OptimizedPlan> plans;
    for (std::uint32_t idx : pareto_min_filter(std::move(points))) {
      plans.push_back(extract_plan(&root_sols[idx]));
    }
    return plans;
  }

 private:
  // ------------------------------------------------------------ helpers

  void solve_all() {
    const Stopwatch total;
    sols_.assign(tree_.size(), {});
    accums_.assign(tree_.size(), {});
    const std::vector<NodeId> order = tree_.post_order();
    std::vector<NodeId> internal;
    for (NodeId id : order) {
      if (tree_.node(id).kind != ContractionNode::Kind::kInput) {
        internal.push_back(id);
      }
    }

    if (threads_ <= 1 || internal.size() <= 1) {
      for (NodeId id : internal) solve_node(id);
    } else {
      solve_all_parallel(internal);
    }

    // Deterministic roll-up in post order: per-node rows first, then
    // the grand totals.  Chunk/thread scheduling is invisible here.
    for (NodeId id : internal) {
      const NodeAccum& a = accums_[static_cast<std::size_t>(id)];
      NodeSearchStats ns;
      ns.node = id;
      ns.result_name = tree_.node(id).tensor.name;
      ns.candidates = a.candidates;
      ns.infeasible = a.infeasible;
      ns.dominated = a.dominated;
      ns.kept = a.kept;
      ns.wall_s = a.wall_s;
      stats_.nodes.push_back(ns);
      stats_.candidates += a.candidates;
      stats_.infeasible += a.infeasible;
      stats_.dominated += a.dominated;
      stats_.kept += a.kept;
      stats_.max_per_node = std::max(stats_.max_per_node, a.kept);
      stats_.redistributions += a.redistributions;
      stats_.table_lookups += a.lookups;
      stats_.extrapolations += a.extrapolations;
    }
    stats_.search_wall_s = total.elapsed_s();
    if (obs::metrics_enabled()) {
      obs::count("opt.curve.lookups", stats_.table_lookups);
      obs::count("opt.curve.extrapolations", stats_.extrapolations);
      obs::observe("opt.search_wall_s", stats_.search_wall_s);
    }
  }

  /// Dependency-counted scheduling of independent subtrees: a node is
  /// submitted once its internal children are solved, so sibling
  /// subtrees run concurrently on the shared pool.  The frontier each
  /// node produces is thread-count independent, hence so is every
  /// downstream consumer.
  void solve_all_parallel(const std::vector<NodeId>& internal) {
    std::vector<std::atomic<int>> pending(tree_.size());
    auto is_internal_child = [&](NodeId c) {
      return c != kNoNode &&
             tree_.node(c).kind != ContractionNode::Kind::kInput;
    };
    // Snapshot the seed set from the static tree structure BEFORE any
    // task runs: once tasks are in flight they decrement `pending`
    // concurrently, so "pending == 0" no longer distinguishes an
    // initially-ready node from one a finishing child just released
    // (and is about to submit itself) — reading it late double-submits.
    std::vector<NodeId> seeds;
    for (NodeId id : internal) {
      const ContractionNode& n = tree_.node(id);
      const int deps = (is_internal_child(n.left) ? 1 : 0) +
                       (is_internal_child(n.right) ? 1 : 0);
      pending[static_cast<std::size_t>(id)].store(
          deps, std::memory_order_relaxed);
      if (deps == 0) seeds.push_back(id);
    }
    ThreadPool::TaskGroup group(ThreadPool::shared(), threads_);
    std::function<void(NodeId)> submit_node = [&](NodeId id) {
      group.submit([this, &submit_node, &pending, id] {
        solve_node(id);
        const NodeId p = tree_.node(id).parent;
        if (p != kNoNode &&
            pending[static_cast<std::size_t>(p)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          submit_node(p);
        }
      });
    };
    for (NodeId id : seeds) submit_node(id);
    group.wait();
  }

  void solve_node(NodeId id) {
    const ContractionNode& n = tree_.node(id);
    NodeAccum& acc = accums_[static_cast<std::size_t>(id)];
    const Stopwatch watch;
    switch (n.kind) {
      case ContractionNode::Kind::kContraction:
        solve_contraction(id, acc);
        break;
      case ContractionNode::Kind::kReduce:
        solve_reduce(id, acc);
        break;
      case ContractionNode::Kind::kInput:
        return;
    }
    acc.kept = sols_[static_cast<std::size_t>(id)].size();
    acc.wall_s = watch.elapsed_s();
    note_node_done(id, n, acc);
  }

  /// Per-node observability after one solve_* call.  Runs on whichever
  /// thread solved the node; the metrics registry and trace sink are
  /// thread-safe, and counter totals are order-independent.
  void note_node_done(NodeId id, const ContractionNode& n,
                      const NodeAccum& acc) {
    if (obs::metrics_enabled()) {
      obs::count("opt.nodes");
      obs::count("opt.candidates", acc.candidates);
      obs::count("opt.infeasible", acc.infeasible);
      obs::count("opt.dominated", acc.dominated);
      obs::count("opt.kept", acc.kept);
      obs::count("opt.redistributions", acc.redistributions);
      obs::observe("opt.frontier", static_cast<double>(acc.kept));
      obs::observe("opt.node_candidates",
                   static_cast<double>(acc.candidates));
      obs::observe("opt.node_wall_s", acc.wall_s);
    }
    if (obs::trace_enabled()) {
      const std::uint64_t dur_us =
          static_cast<std::uint64_t>(acc.wall_s * 1e6);
      const std::uint64_t now_us = obs::trace_now_us();
      obs::trace_complete(
          "dp.node " + n.tensor.name, "optimizer",
          now_us > dur_us ? now_us - dur_us : 0, dur_us,
          json::ObjectWriter()
              .field("node", static_cast<std::uint64_t>(id))
              .field("result", n.tensor.name)
              .field("candidates", acc.candidates)
              .field("infeasible", acc.infeasible)
              .field("dominated", acc.dominated)
              .field("kept", acc.kept)
              .str());
    }
  }

  /// The memory metric the active accounting mode compares and limits.
  std::uint64_t metric(const Sol& s) const {
    return cfg_.liveness_aware ? checked_add(s.input_bytes, s.peak)
                               : s.mem;
  }

  const Sol* best_root_sol() const {
    const NodeId root = tree_.root();
    if (tree_.node(root).kind == ContractionNode::Kind::kInput) {
      throw Error("optimize: tree is a single input array");
    }
    const auto& root_sols = sols_[static_cast<std::size_t>(root)];
    const Sol* best = nullptr;
    for (const Sol& s : root_sols) {
      if (best == nullptr || s.cost < best->cost) best = &s;
    }
    TCE_ENSURES(best != nullptr);
    return best;
  }

  bool feasible(const Sol& s) const {
    if (cfg_.mem_limit_node_bytes == 0) return true;
    const std::uint64_t per_node = checked_mul(
        checked_add(metric(s), s.max_msg), grid_.procs_per_node);
    return per_node <= cfg_.mem_limit_node_bytes;
  }

  /// Candidate fused sets between node \p id and its parent.
  std::vector<IndexSet> fusion_candidates(NodeId id) const {
    if (cfg_.fixed_fusions.has_value()) {
      auto it = cfg_.fixed_fusions->find(id);
      return {it == cfg_.fixed_fusions->end() ? IndexSet() : it->second};
    }
    if (!cfg_.enable_fusion) return {IndexSet()};
    std::vector<IndexSet> out;
    for_each_subset(fusable_indices(tree_, id),
                    [&](IndexSet f) { out.push_back(f); });
    return out;
  }

  /// Iteration count contributed by the fused loops enclosing a node's
  /// collectives.  Fused indices are never grid-distributed in this
  /// search space, so each contributes its full extent.
  double repeat_factor(IndexSet f_eff) const {
    double r = 1.0;
    for (IndexId j : f_eff) {
      r *= static_cast<double>(space_.extent(j));
    }
    return r;
  }

  // ------------------------------------------------ operand memoization

  /// Key of one memoized operand-options scan: which child, consumed in
  /// which distribution, under which triplet (and whether any stored
  /// layout qualifies — the replicated-operand case).
  struct OperandKey {
    NodeId child = kNoNode;
    std::uint8_t d1 = kNoIndex;
    std::uint8_t d2 = kNoIndex;
    bool any_dist = false;
    std::uint64_t triplet = 0;

    friend bool operator<(const OperandKey& a, const OperandKey& b) {
      if (a.child != b.child) return a.child < b.child;
      if (a.d1 != b.d1) return a.d1 < b.d1;
      if (a.d2 != b.d2) return a.d2 < b.d2;
      if (a.any_dist != b.any_dist) return a.any_dist < b.any_dist;
      return a.triplet < b.triplet;
    }
  };
  /// Concurrency: filled only during the sequential prologue of each
  /// node visit (before the parallel_for fan-out) and passed to the
  /// workers by const reference, so the fan-out reads it without
  /// locking; never mutated concurrently.
  using OperandCache = std::map<OperandKey, std::vector<Operand>>;

  static OperandKey operand_key(NodeId child, const Distribution& beta,
                                IndexSet triplet, bool any_dist) {
    return {child, beta.at(1), beta.at(2), any_dist, triplet.bits()};
  }

  /// Computes (once per key) all ways to obtain the operand rooted at
  /// \p child with distribution \p beta, given the consuming node's
  /// triplet indices.  When \p any_dist is set (the replicated operand
  /// of a replicate-compute-reduce step), the required distribution is
  /// irrelevant — the allgather collects the array from whatever
  /// layout it is in — so every child solution qualifies without
  /// redistribution; \p beta is then only used for a leaf's storage
  /// accounting.  The Cannon choices of one triplet differ only in
  /// rotation index and orientation, so this scan used to repeat per
  /// choice; the cache runs it once.
  const std::vector<Operand>& ensure_operands(OperandCache& cache,
                                              NodeId child,
                                              const Distribution& beta,
                                              IndexSet triplet,
                                              bool any_dist,
                                              NodeAccum& acc) const {
    const OperandKey key = operand_key(child, beta, triplet, any_dist);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;

    const ContractionNode& cn = tree_.node(child);
    std::vector<Operand> out;
    if (cn.kind == ContractionNode::Kind::kInput) {
      // Inputs can be distributed initially in any way at zero cost.
      Operand o;
      o.mem = dist_bytes(cn.tensor, beta, IndexSet(), space_, grid_);
      o.input_bytes = o.mem;  // inputs stay resident throughout
      out.push_back(o);
      return cache.emplace(key, std::move(out)).first->second;
    }
    const auto& sols = sols_[static_cast<std::size_t>(child)];
    for (int i = 0; i < static_cast<int>(sols.size()); ++i) {
      const Sol& s = sols[static_cast<std::size_t>(i)];
      if (!(s.fusion & triplet).empty()) continue;
      Operand o;
      o.sol = i;
      o.fusion = s.fusion;
      o.cost = s.cost;
      o.mem = s.mem;
      o.max_msg = s.max_msg;
      o.peak = s.peak;
      o.working = s.working;
      o.input_bytes = s.input_bytes;
      o.loop_indices = cn.loop_indices();
      if (any_dist || s.dist == beta) {
        out.push_back(o);
      } else if (cfg_.enable_redistribution && s.fusion.empty()) {
        // A fully materialized intermediate can be reshuffled once,
        // outside any fused loops.
        ++acc.redistributions;
        o.redist = redistribute_cost(model_, cn.tensor, s.dist, beta,
                                     IndexSet(), space_);
        o.max_msg = std::max(
            o.max_msg,
            dist_bytes(cn.tensor, s.dist, IndexSet(), space_, grid_));
        out.push_back(o);
      }
    }
    return cache.emplace(key, std::move(out)).first->second;
  }

  /// A compact storage distribution for a leaf (used for the replicated
  /// operand, whose layout before the allgather is arbitrary): split the
  /// first (up to) two dimensions.
  Distribution compact_dist(const TensorRef& ref) const {
    const IndexId d1 = !ref.dims.empty() ? ref.dims[0] : kNoIndex;
    const IndexId d2 = ref.dims.size() > 1 ? ref.dims[1] : kNoIndex;
    return Distribution(d1, d2);
  }

  /// Cost of the computation duplicated across grid dimensions the
  /// node's block decomposition leaves unused: executing with only
  /// \p split_dims of the two grid dimensions splitting work leaves a
  /// factor √P per unused dimension of redundant flops on every
  /// processor.  Fully assigned configurations (all of the paper's
  /// solutions) have zero penalty.
  double duplication_penalty(NodeId id, int split_dims) const {
    TCE_EXPECTS(split_dims >= 0 && split_dims <= 2);
    double dup = 1.0;
    for (int d = split_dims; d < 2; ++d) {
      dup *= static_cast<double>(grid_.edge);
    }
    if (dup == 1.0) return 0.0;
    const double share = static_cast<double>(tree_.flops(id)) /
                         static_cast<double>(grid_.procs);
    return model_.compute_time(
        static_cast<std::uint64_t>((dup - 1.0) * share));
  }

  // ------------------------------------------------------- contraction

  static IndexSet triplet_of(const CannonChoice& c) {
    IndexSet triplet;
    for (IndexId t : {c.i, c.j, c.k}) {
      if (t != kNoIndex) triplet.insert(t);
    }
    return triplet;
  }

  /// The outer replicate-compute-reduce units, in the sequential
  /// enumeration order of the nested loops they replace.
  std::vector<ReplUnit> repl_unit_list(const ContractionNode& n) const {
    std::vector<ReplUnit> units;
    for (bool repl_right : {false, true}) {
      const IndexSet stat_side =
          repl_right ? n.left_indices : n.right_indices;
      for (IndexId s_r : with_none(stat_side)) {
        for (IndexId s_k : with_none(n.sum_indices)) {
          for (bool tr : {false, true}) {
            if (s_r == kNoIndex && s_k == kNoIndex && tr) continue;
            units.push_back({repl_right, s_r, s_k, tr});
          }
        }
      }
    }
    return units;
  }

  static std::vector<IndexId> with_none(IndexSet set) {
    std::vector<IndexId> v;
    for (IndexId i : set) v.push_back(i);
    v.push_back(kNoIndex);
    return v;
  }

  void solve_contraction(NodeId id, NodeAccum& acc) {
    const ContractionNode& n = tree_.node(id);
    const auto choices = enumerate_cannon_choices(n);
    const auto fusions = fusion_candidates(id);
    std::vector<ReplUnit> repl_units;
    if (cfg_.enable_replication_template) {
      repl_units = repl_unit_list(n);
    }

    // Sequential prologue: memoize every operand-options scan the work
    // units will need, so the fan-out below only reads the cache.
    OperandCache opcache;
    {
      const CurveScope cs(acc);
      for (const CannonChoice& c : choices) {
        const IndexSet triplet = triplet_of(c);
        ensure_operands(opcache, n.left, c.left_dist(), triplet,
                        /*any_dist=*/false, acc);
        ensure_operands(opcache, n.right, c.right_dist(), triplet,
                        /*any_dist=*/false, acc);
      }
      for (const ReplUnit& u : repl_units) {
        prefetch_repl_operands(n, u, opcache, acc);
      }
    }

    // Fan the work units (one per Cannon choice, then one per outer
    // replication tuple) across the pool.  Each chunk of consecutive
    // units builds its own frontier and effort counters; merging the
    // chunks in ascending order afterwards reproduces the sequential
    // insertion exactly (see frontier.hpp), so the result is the same
    // at every thread count — including 1, which runs this very loop
    // inline.
    const std::size_t units = choices.size() + repl_units.size();
    const std::size_t chunks =
        threads_ <= 1 ? 1
                      : std::min<std::size_t>(
                            units, static_cast<std::size_t>(threads_) * 4);
    struct ChunkOut {
      SolFrontier frontier;
      NodeAccum acc;
    };
    std::vector<ChunkOut> outs(chunks);
    ThreadPool::shared().parallel_for(
        chunks, threads_, [&](std::size_t ci) {
          ChunkOut& o = outs[ci];
          const CurveScope cs(o.acc);
          GeomCache geom(space_, grid_);
          const std::size_t begin = ci * units / chunks;
          const std::size_t end = (ci + 1) * units / chunks;
          for (std::size_t u = begin; u < end; ++u) {
            if (u < choices.size()) {
              eval_choice(id, n, choices[u], u, fusions, opcache, geom,
                          o.frontier, o.acc);
            } else {
              eval_replicated(id, n, repl_units[u - choices.size()], u,
                              fusions, opcache, geom, o.frontier, o.acc);
            }
          }
        });

    const bool lv = cfg_.liveness_aware;
    const auto dom = [lv](const Sol& a, const Sol& b) {
      return dominates(a, b, lv);
    };
    SolFrontier frontier;
    for (ChunkOut& o : outs) {
      acc.add(o.acc);
      frontier.merge(std::move(o.frontier), dom, acc.dominated);
    }

    if (frontier.empty()) {
      throw InfeasibleError(
          "no feasible solution at node producing '" + n.tensor.name +
          "' under the memory limit");
    }
    sols_[static_cast<std::size_t>(id)] = std::move(frontier).flatten();
  }

  /// All candidates of one generalized-Cannon choice (one work unit).
  void eval_choice(NodeId id, const ContractionNode& n,
                   const CannonChoice& c, std::size_t unit,
                   const std::vector<IndexSet>& fusions,
                   const OperandCache& opcache, GeomCache& geom,
                   SolFrontier& frontier, NodeAccum& acc) const {
    const bool lv = cfg_.liveness_aware;
    const auto dom = [lv](const Sol& a, const Sol& b) {
      return dominates(a, b, lv);
    };
    std::uint64_t local = 0;

    const IndexSet triplet = triplet_of(c);
    const double dup_penalty =
        duplication_penalty(id, static_cast<int>(triplet.count()) - 1);
    const Distribution alpha = c.result_dist();
    const Distribution beta = c.left_dist();
    const Distribution gamma = c.right_dist();

    const auto& lopts = opcache.at(
        operand_key(n.left, beta, triplet, /*any_dist=*/false));
    const auto& ropts = opcache.at(
        operand_key(n.right, gamma, triplet, /*any_dist=*/false));

    const TensorRef& lref = tree_.node(n.left).tensor;
    const TensorRef& rref = tree_.node(n.right).tensor;

    for (IndexSet f_u : fusions) {
      if (!(f_u & triplet).empty()) continue;
      const std::uint64_t own_mem = geom.bytes(n.tensor, alpha, f_u);

      for (const Operand& lo : lopts) {
        if (!fusion_nesting_ok(f_u, lo.fusion, lo.loop_indices)) continue;
        for (const Operand& ro : ropts) {
          if (!fusion_nesting_ok(f_u, ro.fusion, ro.loop_indices)) {
            continue;
          }
          const IndexSet f_eff = f_u | lo.fusion | ro.fusion;
          const double repeat = geom.repeat(f_eff);

          Sol s;
          s.dist = alpha;
          s.fusion = f_u;
          s.choice = c;
          s.left_sol = lo.sol;
          s.right_sol = ro.sol;
          s.left_dist = beta;
          s.right_dist = gamma;
          s.eff_fused = f_eff;
          s.redist_left = lo.redist;
          s.redist_right = ro.redist;
          s.seq = (static_cast<std::uint64_t>(unit) << 32) | local++;

          std::uint64_t msg = std::max(lo.max_msg, ro.max_msg);
          if (c.rotates_left()) {
            const std::uint64_t block = geom.bytes(lref, beta, f_eff);
            s.rot_left =
                repeat * model_.rotate_cost(block, c.left_rot_dim());
            msg = std::max(msg, block);
          }
          if (c.rotates_right()) {
            const std::uint64_t block = geom.bytes(rref, gamma, f_eff);
            s.rot_right =
                repeat * model_.rotate_cost(block, c.right_rot_dim());
            msg = std::max(msg, block);
          }
          if (c.rotates_result()) {
            const std::uint64_t block = geom.bytes(n.tensor, alpha, f_eff);
            s.rot_result =
                repeat * model_.rotate_cost(block, c.result_rot_dim());
            msg = std::max(msg, block);
          }

          s.cost = lo.cost + ro.cost + lo.redist + ro.redist +
                   s.rot_left + s.rot_right + s.rot_result + dup_penalty;
          s.mem = checked_add(checked_add(lo.mem, ro.mem), own_mem);
          s.max_msg = msg;
          // Liveness: left subtree runs, then right (left's working set
          // retained), then this node's loops with both operands and
          // the accumulator live.
          s.input_bytes = checked_add(lo.input_bytes, ro.input_bytes);
          s.peak = std::max(
              {lo.peak, checked_add(lo.working, ro.peak),
               checked_add(checked_add(lo.working, ro.working),
                           own_mem)});
          // A node fused with its parent re-executes inside the
          // parent's loops, so *all* of its operands' working sets
          // stay live alongside its slice buffer; an unfused node is
          // materialized once and its operands are freed.
          s.working = own_mem;
          if (!f_u.empty()) {
            s.working = checked_add(
                s.working, checked_add(lo.working, ro.working));
          }

          ++acc.candidates;
          if (!feasible(s)) {
            ++acc.infeasible;
            continue;
          }
          frontier.insert({s.dist, s.fusion}, std::move(s), dom,
                          acc.dominated);
        }
      }
    }
  }

  // ----------------------------------------- replicate-compute-reduce

  /// Memoizes the operand scans one replication unit will need.
  void prefetch_repl_operands(const ContractionNode& n, const ReplUnit& u,
                              OperandCache& cache, NodeAccum& acc) const {
    const NodeId stat_id = u.repl_right ? n.left : n.right;
    const NodeId repl_id = u.repl_right ? n.right : n.left;
    const TensorRef& repl_ref = tree_.node(repl_id).tensor;
    const IndexSet repl_side =
        u.repl_right ? n.right_indices : n.left_indices;
    Distribution delta(u.s_r, u.s_k);
    if (u.tr) delta = delta.transposed();
    for (IndexId j_pick : with_none(repl_side)) {
      IndexSet triplet;
      if (u.s_r != kNoIndex) triplet.insert(u.s_r);
      if (u.s_k != kNoIndex) triplet.insert(u.s_k);
      if (j_pick != kNoIndex) triplet.insert(j_pick);
      ensure_operands(cache, stat_id, delta, triplet, /*any_dist=*/false,
                      acc);
      ensure_operands(cache, repl_id, compact_dist(repl_ref), triplet,
                      /*any_dist=*/true, acc);
    }
  }

  /// All candidates of one replicate-compute-reduce unit (see
  /// OptimizerConfig::enable_replication_template): one operand is
  /// gathered whole onto every processor, the other stays put in a
  /// ⟨s_r, s_k⟩ block distribution, and the result partials are
  /// combined with a reduce-scatter along the grid dimension holding
  /// s_k, scattered there by j_pick.
  void eval_replicated(NodeId id, const ContractionNode& n,
                       const ReplUnit& u, std::size_t unit,
                       const std::vector<IndexSet>& fusions,
                       const OperandCache& opcache, GeomCache& geom,
                       SolFrontier& frontier, NodeAccum& acc) const {
    const bool lv = cfg_.liveness_aware;
    const auto dom = [lv](const Sol& a, const Sol& b) {
      return dominates(a, b, lv);
    };
    std::uint64_t local = 0;

    const bool repl_right = u.repl_right;
    const NodeId stat_id = repl_right ? n.left : n.right;
    const NodeId repl_id = repl_right ? n.right : n.left;
    const TensorRef& repl_ref = tree_.node(repl_id).tensor;
    const IndexSet repl_side =
        repl_right ? n.right_indices : n.left_indices;
    const IndexId s_r = u.s_r;
    const IndexId s_k = u.s_k;
    const bool tr = u.tr;

    Distribution delta(s_r, s_k);
    if (tr) delta = delta.transposed();
    const int reduce_dim = delta.dim_of(s_k);
    const int split_dims =
        (s_r != kNoIndex ? 1 : 0) + (s_k != kNoIndex ? 1 : 0);
    const double dup_penalty = duplication_penalty(id, split_dims);

    IndexSet stat_triplet;
    if (s_r != kNoIndex) stat_triplet.insert(s_r);
    if (s_k != kNoIndex) stat_triplet.insert(s_k);

    for (IndexId j_pick : with_none(repl_side)) {
      Distribution alpha(s_r, j_pick);
      if (tr) alpha = alpha.transposed();
      // The partial result before the reduce-scatter: only the
      // stationary side's index splits it.
      Distribution partial(s_r, kNoIndex);
      if (tr) partial = partial.transposed();

      IndexSet triplet = stat_triplet;
      if (j_pick != kNoIndex) triplet.insert(j_pick);

      const auto& sopts = opcache.at(
          operand_key(stat_id, delta, triplet, /*any_dist=*/false));
      const auto& ropts = opcache.at(operand_key(
          repl_id, compact_dist(repl_ref), triplet, /*any_dist=*/true));

      for (IndexSet f_u : fusions) {
        if (!(f_u & triplet).empty()) continue;
        const std::uint64_t own_mem = geom.bytes(n.tensor, alpha, f_u);

        for (const Operand& so : sopts) {
          if (!fusion_nesting_ok(f_u, so.fusion, so.loop_indices)) {
            continue;
          }
          for (const Operand& ro : ropts) {
            if (!fusion_nesting_ok(f_u, ro.fusion, ro.loop_indices)) {
              continue;
            }
            const IndexSet f_eff = f_u | so.fusion | ro.fusion;

            // Allgather of the replicated operand: once per iteration
            // of the fused loops that slice it.
            const double ag_repeat =
                geom.repeat(f_eff & repl_ref.index_set());
            const std::uint64_t slice_total =
                geom.fused_total(repl_ref, f_eff);
            const double ag =
                ag_repeat * model_.allgather_cost(slice_total);

            // Reduce-scatter of the result partials: once per
            // iteration of the fused loops that slice the result
            // (partials for other loops accumulate locally and the
            // reduction hoists out).
            const IndexSet f_red = f_eff & n.tensor.index_set();
            const double red_repeat = geom.repeat(f_red);
            const std::uint64_t partial_bytes =
                geom.bytes(n.tensor, partial, f_red);
            double rs = 0;
            if (reduce_dim != 0) {
              rs = red_repeat * model_.reduce_scatter_cost(partial_bytes,
                                                           reduce_dim);
              // Without a scatter index the reduced result must stay
              // replicated along the line: allreduce ≈ 2x.
              if (j_pick == kNoIndex) rs *= 2.0;
            }

            // Transient storage: the gathered slice plus the oversized
            // partial coexist on every rank.
            const std::uint64_t own_block =
                geom.bytes(n.tensor, alpha, f_eff);
            const std::uint64_t transient = checked_add(
                slice_total, partial_bytes > own_block
                                 ? partial_bytes - own_block
                                 : 0);

            Sol s;
            s.dist = alpha;
            s.fusion = f_u;
            s.replicated = true;
            s.replicate_right = repl_right;
            s.reduce_dim = reduce_dim;
            s.left_sol = repl_right ? so.sol : ro.sol;
            s.right_sol = repl_right ? ro.sol : so.sol;
            s.left_dist = repl_right ? delta : Distribution();
            s.right_dist = repl_right ? Distribution() : delta;
            s.eff_fused = f_eff;
            s.redist_left = repl_right ? so.redist : ro.redist;
            s.redist_right = repl_right ? ro.redist : so.redist;
            // Comm attribution: replicated side = allgather,
            // result = reduce.
            s.rot_left = repl_right ? 0 : ag;
            s.rot_right = repl_right ? ag : 0;
            s.rot_result = rs;
            s.seq = (static_cast<std::uint64_t>(unit) << 32) | local++;

            s.cost = so.cost + ro.cost + so.redist + ro.redist + ag +
                     rs + dup_penalty;
            s.mem = checked_add(checked_add(so.mem, ro.mem), own_mem);
            s.max_msg = std::max({so.max_msg, ro.max_msg, transient});
            s.input_bytes = checked_add(so.input_bytes, ro.input_bytes);
            s.peak = std::max(
                {so.peak, checked_add(so.working, ro.peak),
                 checked_add(checked_add(so.working, ro.working),
                             own_mem)});
            s.working = own_mem;
            if (!f_u.empty()) {
              s.working = checked_add(
                  s.working, checked_add(so.working, ro.working));
            }

            ++acc.candidates;
            if (!feasible(s)) {
              ++acc.infeasible;
              continue;
            }
            frontier.insert({s.dist, s.fusion}, std::move(s), dom,
                            acc.dominated);
          }
        }
      }
    }
  }

  // ------------------------------------------------------------ reduce

  void solve_reduce(NodeId id, NodeAccum& acc) {
    const CurveScope cs(acc);
    const ContractionNode& n = tree_.node(id);
    const NodeId child = n.left;
    const ContractionNode& cn = tree_.node(child);
    const auto fusions = fusion_candidates(id);
    const bool lv = cfg_.liveness_aware;
    const auto dom = [lv](const Sol& a, const Sol& b) {
      return dominates(a, b, lv);
    };

    // Child options: every distribution of a leaf, or the child's own
    // (unfused) solutions.
    struct ChildOpt {
      Distribution dist;
      int sol = -1;
      double cost = 0;
      std::uint64_t mem = 0, max_msg = 0;
      std::uint64_t peak = 0, working = 0, input_bytes = 0;
    };
    std::vector<ChildOpt> copts;
    if (cn.kind == ContractionNode::Kind::kInput) {
      for (const Distribution& d : enumerate_distributions(cn.tensor)) {
        ChildOpt o;
        o.dist = d;
        o.mem = dist_bytes(cn.tensor, d, IndexSet(), space_, grid_);
        o.input_bytes = o.mem;
        copts.push_back(o);
      }
    } else {
      const auto& sols = sols_[static_cast<std::size_t>(child)];
      for (int i = 0; i < static_cast<int>(sols.size()); ++i) {
        const Sol& s = sols[static_cast<std::size_t>(i)];
        if (!s.fusion.empty()) continue;  // reduce consumes materialized
        copts.push_back({s.dist, i, s.cost, s.mem, s.max_msg, s.peak,
                         s.working, s.input_bytes});
      }
    }

    SolFrontier frontier;
    std::uint64_t seq = 0;
    for (const ChildOpt& co : copts) {
      // Result distribution: drop reduced indices from the child's pair.
      auto position = [&](int d) {
        const IndexId i = co.dist.at(d);
        return (i != kNoIndex && n.sum_indices.contains(i)) ? kNoIndex : i;
      };
      const Distribution rdist(position(1), position(2));
      const bool needs_allreduce = rdist != co.dist;

      for (IndexSet f_u : fusions) {
        if (!(f_u & rdist.index_set()).empty()) continue;
        Sol s;
        s.dist = rdist;
        s.fusion = f_u;
        s.left_sol = co.sol;
        s.left_dist = co.dist;
        s.eff_fused = f_u;
        s.seq = seq++;
        const std::uint64_t own_mem =
            dist_bytes(n.tensor, rdist, f_u, space_, grid_);
        std::uint64_t msg = co.max_msg;
        if (needs_allreduce) {
          // Partial sums are combined across the grid dimension(s) that
          // held reduced indices; modeled with the redistribution curve.
          const std::uint64_t block =
              dist_bytes(n.tensor, rdist, f_u, space_, grid_);
          s.rot_result =
              repeat_factor(f_u) * model_.redistribute_cost(block);
          msg = std::max(msg, block);
        }
        s.cost = co.cost + s.rot_result;
        s.mem = checked_add(co.mem, own_mem);
        s.max_msg = msg;
        s.input_bytes = co.input_bytes;
        s.peak = std::max(co.peak, checked_add(co.working, own_mem));
        s.working = own_mem;
        if (!f_u.empty()) {
          s.working = checked_add(s.working, co.working);
        }
        ++acc.candidates;
        if (!feasible(s)) {
          ++acc.infeasible;
          continue;
        }
        frontier.insert({s.dist, s.fusion}, std::move(s), dom,
                        acc.dominated);
      }
    }
    if (frontier.empty()) {
      throw InfeasibleError(
          "no feasible solution at reduce node producing '" +
          n.tensor.name + "' under the memory limit");
    }
    sols_[static_cast<std::size_t>(id)] = std::move(frontier).flatten();
  }

  // ----------------------------------------------------- plan extraction

  OptimizedPlan extract_plan(const Sol* best) {
    const NodeId root = tree_.root();

    OptimizedPlan plan;
    plan.total_comm_s = best->cost;
    plan.total_compute_s =
        model_.compute_time(tree_.total_flops() / grid_.procs);
    plan.array_bytes_per_proc = best->mem;
    plan.max_msg_bytes_per_proc = best->max_msg;
    plan.peak_live_bytes_per_proc =
        checked_add(best->input_bytes, best->peak);
    plan.liveness_aware = cfg_.liveness_aware;
    plan.procs_per_node = grid_.procs_per_node;
    plan.stats = stats_;

    // Walk the provenance tree, collecting steps (post-order) and array
    // rows.  Consumer-side info for each child array is attached while
    // visiting the parent.
    struct ConsumerInfo {
      Distribution dist;    ///< As consumed (⟨·,·⟩ = replicated).
      double comm;
      Distribution stored;  ///< Block layout it is *stored* in (differs
                            ///< from `dist` for replicated operands,
                            ///< which are gathered transiently).
    };
    std::map<NodeId, ConsumerInfo> consumed;
    std::map<NodeId, const Sol*> chosen;

    // First pass: resolve the chosen Sol of every visited node.
    walk(root, best, [&](NodeId id, const Sol* s) { chosen[id] = s; });

    // Second pass: steps and consumer info.
    for (NodeId id : tree_.post_order()) {
      auto it = chosen.find(id);
      if (it == chosen.end()) continue;
      const ContractionNode& n = tree_.node(id);
      const Sol* s = it->second;
      if (n.kind == ContractionNode::Kind::kContraction) {
        PlanStep step;
        step.node = id;
        step.result_name = n.tensor.name;
        step.tmpl = s->replicated ? StepTemplate::kReplicated
                                  : StepTemplate::kCannon;
        step.result_dist = s->dist;
        step.replicate_right = s->replicate_right;
        step.reduce_dim = s->reduce_dim;
        step.choice = s->choice;
        step.fusion = s->fusion;
        step.effective_fused = s->eff_fused;
        step.left_dist = s->left_dist;
        step.right_dist = s->right_dist;
        step.rot_left_s = s->rot_left;
        step.rot_right_s = s->rot_right;
        step.rot_result_s = s->rot_result;
        step.redist_left_s = s->redist_left;
        step.redist_right_s = s->redist_right;
        plan.steps.push_back(step);
        Distribution left_stored = s->left_dist;
        Distribution right_stored = s->right_dist;
        if (s->replicated) {
          // The replicated operand is stored block-distributed and only
          // gathered whole for the duration of the step.
          if (s->replicate_right) {
            right_stored = compact_dist(tree_.node(n.right).tensor);
          } else {
            left_stored = compact_dist(tree_.node(n.left).tensor);
          }
        }
        consumed[n.left] = {s->left_dist, s->rot_left + s->redist_left,
                            left_stored};
        consumed[n.right] = {s->right_dist,
                             s->rot_right + s->redist_right,
                             right_stored};
      } else if (n.kind == ContractionNode::Kind::kReduce) {
        consumed[n.left] = {s->left_dist, 0.0, s->left_dist};
      }
    }

    // Array rows: leaves first (tree order), then internal nodes.
    auto add_row = [&](NodeId id) {
      const ContractionNode& n = tree_.node(id);
      ArrayReport row;
      row.full = n.tensor;
      row.is_input = n.kind == ContractionNode::Kind::kInput;
      row.is_output = id == root;
      IndexSet fusion;
      Distribution stored_dist;
      if (row.is_input) {
        auto c = consumed.find(id);
        TCE_ENSURES(c != consumed.end());
        stored_dist = c->second.stored;
        row.final_dist = c->second.dist;
        row.comm_final_s = c->second.comm;
      } else {
        const Sol* s = chosen.at(id);
        fusion = s->fusion;
        stored_dist = s->dist;
        row.initial_dist = s->dist;
        row.comm_initial_s = s->rot_result;
        auto c = consumed.find(id);
        if (c != consumed.end()) {
          row.final_dist = c->second.dist;
          row.comm_final_s = c->second.comm;
        }
      }
      row.reduced = fused_ref(n.tensor, fusion);
      row.mem_per_node_bytes = checked_mul(
          dist_bytes(n.tensor, stored_dist, fusion, space_, grid_),
          grid_.procs_per_node);
      plan.arrays.push_back(std::move(row));
    };
    for (NodeId id : tree_.leaves()) {
      if (consumed.contains(id)) add_row(id);
    }
    for (NodeId id : tree_.post_order()) {
      if (tree_.node(id).kind != ContractionNode::Kind::kInput &&
          chosen.contains(id)) {
        add_row(id);
      }
    }
    return plan;
  }

  /// Visits the chosen solution of every internal node under (id, s).
  template <typename Fn>
  void walk(NodeId id, const Sol* s, Fn&& fn) {
    fn(id, s);
    const ContractionNode& n = tree_.node(id);
    if (n.left != kNoNode && s->left_sol >= 0) {
      walk(n.left,
           &sols_[static_cast<std::size_t>(
               n.left)][static_cast<std::size_t>(s->left_sol)],
           fn);
    }
    if (n.right != kNoNode && s->right_sol >= 0) {
      walk(n.right,
           &sols_[static_cast<std::size_t>(
               n.right)][static_cast<std::size_t>(s->right_sol)],
           fn);
    }
  }

  const ContractionTree& tree_;
  const MachineModel& model_;
  const OptimizerConfig& cfg_;
  const ProcGrid& grid_;
  const IndexSpace& space_;
  const unsigned threads_;
  /// Per-node solved frontiers, indexed by NodeId.  Written once by the
  /// node's (single) solve task; the dependency scheduler orders that
  /// write before any parent read.
  std::vector<std::vector<Sol>> sols_;
  std::vector<NodeAccum> accums_;
  OptimizerStats stats_;
};

/// TCE_VERIFY_PLANS debug mode: re-derive every invariant of \p plan
/// before handing it to the caller.  The verifier shares no search code
/// with the optimizer, so agreement here is a genuine cross-check.
void maybe_verify(const ContractionTree& tree, const MachineModel& model,
                  const OptimizerConfig& config,
                  const OptimizedPlan& plan) {
  if (!verify_plans_enabled()) return;
  VerifyOptions opts;
  opts.mem_limit_node_bytes = config.mem_limit_node_bytes;
  const VerifyReport report = verify_plan(tree, model, plan, opts);
  if (!report.ok()) {
    throw Error("TCE_VERIFY_PLANS: optimizer emitted an invalid plan\n" +
                report.str(tree));
  }
}

/// Static prover fast path (tce/lint): certifies infeasibility before the
/// DP runs and yields the certified root lower bound for the plan stats.
/// Returns 0 without proving anything when the prover is disabled or no
/// limit is set.
std::uint64_t prove_or_throw(const ContractionTree& tree,
                             const MachineModel& model,
                             const OptimizerConfig& config) {
  if (!config.enable_static_prover || config.mem_limit_node_bytes == 0) {
    return 0;
  }
  lint::LintConfig lcfg;
  lcfg.mem_limit_node_bytes = config.mem_limit_node_bytes;
  // Fixed fusions are subsets of the fusable sets, so the fusion-aware
  // (smaller, still sound) bound covers that baseline too.
  lcfg.enable_fusion =
      config.enable_fusion || config.fixed_fusions.has_value();
  lcfg.liveness_aware = config.liveness_aware;
  const lint::ProverResult pr = lint::prove_memory(tree, model.grid(), lcfg);
  if (pr.certificate) {
    obs::count("opt.prover_infeasible");
    obs::trace_instant("prover_infeasible", "optimizer");
    if (obs::log_enabled(obs::LogLevel::kError)) {
      obs::log_event(obs::LogLevel::kError, "optimizer",
                     "prover.infeasible",
                     json::ObjectWriter()
                         .field("node", pr.certificate->node)
                         .field("lower_bound_node_bytes",
                                pr.certificate->lower_bound_node_bytes)
                         .field("mem_limit_node_bytes",
                                pr.certificate->mem_limit_node_bytes)
                         .str());
    }
    throw InfeasibleError("statically infeasible: " + pr.certificate->str());
  }
  return pr.root_lower_bound_node_bytes;
}

/// Stamps the communication-optimality accounting (tce/lint comm
/// prover): the certified lower bound, this plan's canonical achieved
/// words, and their ratio.
void stamp_comm_gap(const ContractionTree& tree, const MachineModel& model,
                    std::uint64_t comm_lb, OptimizedPlan& plan) {
  plan.stats.comm_lb_words = comm_lb;
  plan.stats.achieved_comm_words =
      lint::plan_comm_words(tree, plan, model.grid());
  if (comm_lb != 0) {
    plan.stats.comm_gap_ratio =
        static_cast<double>(plan.stats.achieved_comm_words) /
        static_cast<double>(comm_lb);
  } else {
    // A zero bound makes no optimality claim — unless the plan is also
    // communication-free, in which case it is trivially optimal.
    plan.stats.comm_gap_ratio =
        plan.stats.achieved_comm_words == 0 ? 1.0 : 0.0;
  }
}

/// The communication prover's view of the active configuration.
lint::CommBoundConfig comm_config(const OptimizerConfig& config) {
  lint::CommBoundConfig ccfg;
  ccfg.mem_limit_node_bytes = config.mem_limit_node_bytes;
  ccfg.enable_fusion =
      config.enable_fusion || config.fixed_fusions.has_value();
  ccfg.enable_replication = config.enable_replication_template;
  return ccfg;
}

}  // namespace

OptimizedPlan optimize(const ContractionTree& tree,
                       const MachineModel& model,
                       const OptimizerConfig& config) {
  const obs::TraceSpan span("optimize", "optimizer");
  const std::uint64_t prover_lb = prove_or_throw(tree, model, config);
  const std::uint64_t comm_lb =
      lint::prove_comm(tree, model.grid(), comm_config(config)).root_lb_words;
  Search search(tree, model, config);
  OptimizedPlan plan = search.run();
  plan.stats.prover_lb_node_bytes = prover_lb;
  stamp_comm_gap(tree, model, comm_lb, plan);
  maybe_verify(tree, model, config, plan);
  return plan;
}

std::vector<OptimizedPlan> optimize_frontier(const ContractionTree& tree,
                                             const MachineModel& model,
                                             const OptimizerConfig& config) {
  const obs::TraceSpan span("optimize_frontier", "optimizer");
  const std::uint64_t prover_lb = prove_or_throw(tree, model, config);
  const std::uint64_t comm_lb =
      lint::prove_comm(tree, model.grid(), comm_config(config)).root_lb_words;
  Search search(tree, model, config);
  std::vector<OptimizedPlan> plans = search.run_frontier();
  for (OptimizedPlan& plan : plans) {
    plan.stats.prover_lb_node_bytes = prover_lb;
    stamp_comm_gap(tree, model, comm_lb, plan);
    maybe_verify(tree, model, config, plan);
  }
  return plans;
}

}  // namespace tce
