#include "tce/core/optimizer.hpp"

#include <algorithm>
#include <limits>

#include "tce/common/error.hpp"
#include "tce/common/json.hpp"
#include "tce/common/timer.hpp"
#include "tce/costmodel/characterization.hpp"
#include "tce/costmodel/rotate_cost.hpp"
#include "tce/fusion/fused.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/obs/trace.hpp"
#include "tce/verify/verifier.hpp"

namespace tce {

namespace {

/// One partial solution at a node (§3.3): produced distribution, fusion
/// with the parent, subtree cost and memory, plus provenance for plan
/// extraction.
struct Sol {
  Distribution dist;
  IndexSet fusion;
  double cost = 0;
  std::uint64_t mem = 0;      ///< Per-processor array bytes, subtree (the
                              ///< paper's sum-over-all-arrays model).
  std::uint64_t max_msg = 0;  ///< Per-processor largest message, subtree.
  // Liveness accounting (extension; see OptimizerConfig::liveness_aware):
  std::uint64_t peak = 0;     ///< Peak live intermediate bytes while the
                              ///< subtree executes (inputs excluded).
  std::uint64_t working = 0;  ///< Bytes that must stay live while the
                              ///< parent executes (own array plus fused
                              ///< children's working sets).
  std::uint64_t input_bytes = 0;  ///< Σ input blocks in the subtree.

  // Provenance.
  bool replicated = false;      ///< Step template: replicate-compute-reduce.
  bool replicate_right = false; ///< Which operand was replicated.
  int reduce_dim = 0;           ///< Grid dim of the partial reduction.
  CannonChoice choice{};
  int left_sol = -1;   ///< Solution index in the child's set; -1 = leaf.
  int right_sol = -1;
  Distribution left_dist{};
  Distribution right_dist{};
  IndexSet eff_fused;
  double rot_left = 0, rot_right = 0, rot_result = 0;
  double redist_left = 0, redist_right = 0;
};

/// Weak Pareto dominance; the memory metrics compared depend on the
/// accounting mode.
bool dominates(const Sol& a, const Sol& b, bool liveness) {
  if (a.cost > b.cost || a.max_msg > b.max_msg) return false;
  if (liveness) {
    return a.input_bytes + a.peak <= b.input_bytes + b.peak &&
           a.working <= b.working;
  }
  return a.mem <= b.mem;
}

/// One way of obtaining an operand with a required distribution.
struct Operand {
  int sol = -1;           ///< Child solution index; -1 for a leaf.
  IndexSet fusion;        ///< Child's fusion with this node (∅ for leaf).
  double cost = 0;        ///< Child subtree cost, excluding redist.
  double redist = 0;      ///< Redistribution cost paid here.
  std::uint64_t mem = 0;  ///< Child subtree memory (summed model).
  std::uint64_t max_msg = 0;
  std::uint64_t peak = 0;
  std::uint64_t working = 0;
  std::uint64_t input_bytes = 0;
  IndexSet loop_indices;  ///< Child loop nest (for the nesting rule).
};

class Search {
 public:
  Search(const ContractionTree& tree, const MachineModel& model,
         const OptimizerConfig& cfg)
      : tree_(tree),
        model_(model),
        cfg_(cfg),
        grid_(model.grid()),
        space_(tree.space()) {}

  OptimizedPlan run() {
    solve_all();
    return extract_plan(best_root_sol());
  }

  /// The Pareto frontier of full-tree plans over (cost, memory metric):
  /// every trade-off between communication and memory the tree admits
  /// under the configuration.  Sorted by increasing cost.
  std::vector<OptimizedPlan> run_frontier() {
    solve_all();
    const auto& root_sols = sols_.at(tree_.root());
    // Global Pareto filter across all root solutions, over
    // (cost, memory metric, largest message) — the send/recv transient
    // matters to downstream consumers (forest composition) just like
    // array memory, so it must survive as its own dimension.
    std::vector<const Sol*> frontier;
    for (const Sol& s : root_sols) {
      bool dominated = false;
      for (const Sol& t : root_sols) {
        if (&t == &s) continue;
        const bool leq = t.cost <= s.cost && metric(t) <= metric(s) &&
                         t.max_msg <= s.max_msg;
        const bool strict = t.cost < s.cost || metric(t) < metric(s) ||
                            t.max_msg < s.max_msg;
        if (leq && strict) {
          dominated = true;
          break;
        }
      }
      if (!dominated) frontier.push_back(&s);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&](const Sol* a, const Sol* b) {
                if (a->cost != b->cost) return a->cost < b->cost;
                if (metric(*a) != metric(*b)) {
                  return metric(*a) < metric(*b);
                }
                return a->max_msg < b->max_msg;
              });
    // Drop duplicates (equal on all three coordinates).
    std::vector<OptimizedPlan> plans;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (i > 0 && frontier[i]->cost == frontier[i - 1]->cost &&
          metric(*frontier[i]) == metric(*frontier[i - 1]) &&
          frontier[i]->max_msg == frontier[i - 1]->max_msg) {
        continue;
      }
      plans.push_back(extract_plan(frontier[i]));
    }
    return plans;
  }

 private:
  // ------------------------------------------------------------ helpers

  void solve_all() {
    const Stopwatch total;
    const CurveCounters curves_before = curve_counters();
    for (NodeId id : tree_.post_order()) {
      const ContractionNode& n = tree_.node(id);
      if (n.kind == ContractionNode::Kind::kInput) continue;
      const OptimizerStats before = stats_;
      const Stopwatch node_watch;
      switch (n.kind) {
        case ContractionNode::Kind::kContraction:
          solve_contraction(id);
          break;
        case ContractionNode::Kind::kReduce:
          solve_reduce(id);
          break;
        case ContractionNode::Kind::kInput:
          break;
      }
      note_node_done(id, n, before, node_watch.elapsed_s());
    }
    const CurveCounters curves_after = curve_counters();
    stats_.table_lookups = curves_after.lookups - curves_before.lookups;
    stats_.extrapolations =
        curves_after.extrapolations - curves_before.extrapolations;
    stats_.search_wall_s = total.elapsed_s();
    if (obs::metrics_enabled()) {
      obs::count("opt.curve.lookups", stats_.table_lookups);
      obs::count("opt.curve.extrapolations", stats_.extrapolations);
      obs::observe("opt.search_wall_s", stats_.search_wall_s);
    }
  }

  /// Per-node accounting after one solve_* call: the delta against the
  /// running totals is this node's effort.  Feeds OptimizerStats.nodes,
  /// the metrics registry (opt.*) and a dp.node trace span.
  void note_node_done(NodeId id, const ContractionNode& n,
                      const OptimizerStats& before, double wall_s) {
    NodeSearchStats ns;
    ns.node = id;
    ns.result_name = n.tensor.name;
    ns.candidates = stats_.candidates - before.candidates;
    ns.infeasible = stats_.infeasible - before.infeasible;
    ns.dominated = stats_.dominated - before.dominated;
    ns.kept = stats_.kept - before.kept;
    ns.wall_s = wall_s;
    stats_.nodes.push_back(ns);
    if (obs::metrics_enabled()) {
      obs::count("opt.nodes");
      obs::count("opt.candidates", ns.candidates);
      obs::count("opt.infeasible", ns.infeasible);
      obs::count("opt.dominated", ns.dominated);
      obs::count("opt.kept", ns.kept);
      obs::count("opt.redistributions",
                 stats_.redistributions - before.redistributions);
      obs::observe("opt.frontier", static_cast<double>(ns.kept));
      obs::observe("opt.node_wall_s", wall_s);
    }
    if (obs::trace_enabled()) {
      const std::uint64_t dur_us =
          static_cast<std::uint64_t>(wall_s * 1e6);
      const std::uint64_t now_us = obs::trace_now_us();
      obs::trace_complete(
          "dp.node " + n.tensor.name, "optimizer",
          now_us > dur_us ? now_us - dur_us : 0, dur_us,
          json::ObjectWriter()
              .field("node", static_cast<std::uint64_t>(id))
              .field("result", n.tensor.name)
              .field("candidates", ns.candidates)
              .field("infeasible", ns.infeasible)
              .field("dominated", ns.dominated)
              .field("kept", ns.kept)
              .str());
    }
  }

  /// The memory metric the active accounting mode compares and limits.
  std::uint64_t metric(const Sol& s) const {
    return cfg_.liveness_aware ? checked_add(s.input_bytes, s.peak)
                               : s.mem;
  }

  const Sol* best_root_sol() const {
    const NodeId root = tree_.root();
    if (tree_.node(root).kind == ContractionNode::Kind::kInput) {
      throw Error("optimize: tree is a single input array");
    }
    const auto& root_sols = sols_.at(root);
    const Sol* best = nullptr;
    for (const Sol& s : root_sols) {
      if (best == nullptr || s.cost < best->cost) best = &s;
    }
    TCE_ENSURES(best != nullptr);
    return best;
  }

  bool feasible(const Sol& s) const {
    if (cfg_.mem_limit_node_bytes == 0) return true;
    const std::uint64_t per_node = checked_mul(
        checked_add(metric(s), s.max_msg), grid_.procs_per_node);
    return per_node <= cfg_.mem_limit_node_bytes;
  }

  /// Candidate fused sets between node \p id and its parent.
  std::vector<IndexSet> fusion_candidates(NodeId id) const {
    if (cfg_.fixed_fusions.has_value()) {
      auto it = cfg_.fixed_fusions->find(id);
      return {it == cfg_.fixed_fusions->end() ? IndexSet() : it->second};
    }
    if (!cfg_.enable_fusion) return {IndexSet()};
    std::vector<IndexSet> out;
    for_each_subset(fusable_indices(tree_, id),
                    [&](IndexSet f) { out.push_back(f); });
    return out;
  }

  /// Iteration count contributed by the fused loops enclosing a node's
  /// collectives.  Fused indices are never grid-distributed in this
  /// search space, so each contributes its full extent.
  double repeat_factor(IndexSet f_eff) const {
    double r = 1.0;
    for (IndexId j : f_eff) {
      r *= static_cast<double>(space_.extent(j));
    }
    return r;
  }

  /// All ways to obtain the operand rooted at \p child with distribution
  /// \p beta, given the consuming node's triplet indices.  When
  /// \p any_dist is set (the replicated operand of a
  /// replicate-compute-reduce step), the required distribution is
  /// irrelevant — the allgather collects the array from whatever layout
  /// it is in — so every child solution qualifies without
  /// redistribution; \p beta is then only used for a leaf's storage
  /// accounting.
  std::vector<Operand> operand_options(NodeId child,
                                       const Distribution& beta,
                                       IndexSet triplet,
                                       bool any_dist = false) const {
    const ContractionNode& cn = tree_.node(child);
    std::vector<Operand> out;
    if (cn.kind == ContractionNode::Kind::kInput) {
      // Inputs can be distributed initially in any way at zero cost.
      Operand o;
      o.mem = dist_bytes(cn.tensor, beta, IndexSet(), space_, grid_);
      o.input_bytes = o.mem;  // inputs stay resident throughout
      out.push_back(o);
      return out;
    }
    const auto& sols = sols_.at(child);
    for (int i = 0; i < static_cast<int>(sols.size()); ++i) {
      const Sol& s = sols[static_cast<std::size_t>(i)];
      if (!(s.fusion & triplet).empty()) continue;
      Operand o;
      o.sol = i;
      o.fusion = s.fusion;
      o.cost = s.cost;
      o.mem = s.mem;
      o.max_msg = s.max_msg;
      o.peak = s.peak;
      o.working = s.working;
      o.input_bytes = s.input_bytes;
      o.loop_indices = cn.loop_indices();
      if (any_dist || s.dist == beta) {
        out.push_back(o);
      } else if (cfg_.enable_redistribution && s.fusion.empty()) {
        // A fully materialized intermediate can be reshuffled once,
        // outside any fused loops.
        ++stats_.redistributions;
        o.redist = redistribute_cost(model_, cn.tensor, s.dist, beta,
                                     IndexSet(), space_);
        o.max_msg = std::max(
            o.max_msg,
            dist_bytes(cn.tensor, s.dist, IndexSet(), space_, grid_));
        out.push_back(o);
      }
    }
    return out;
  }

  /// A compact storage distribution for a leaf (used for the replicated
  /// operand, whose layout before the allgather is arbitrary): split the
  /// first (up to) two dimensions.
  Distribution compact_dist(const TensorRef& ref) const {
    const IndexId d1 = ref.dims.size() > 0 ? ref.dims[0] : kNoIndex;
    const IndexId d2 = ref.dims.size() > 1 ? ref.dims[1] : kNoIndex;
    return Distribution(d1, d2);
  }

  /// Cost of the computation duplicated across grid dimensions the
  /// node's block decomposition leaves unused: executing with only
  /// \p split_dims of the two grid dimensions splitting work leaves a
  /// factor √P per unused dimension of redundant flops on every
  /// processor.  Fully assigned configurations (all of the paper's
  /// solutions) have zero penalty.
  double duplication_penalty(NodeId id, int split_dims) const {
    TCE_EXPECTS(split_dims >= 0 && split_dims <= 2);
    double dup = 1.0;
    for (int d = split_dims; d < 2; ++d) {
      dup *= static_cast<double>(grid_.edge);
    }
    if (dup == 1.0) return 0.0;
    const double share = static_cast<double>(tree_.flops(id)) /
                         static_cast<double>(grid_.procs);
    return model_.compute_time(
        static_cast<std::uint64_t>((dup - 1.0) * share));
  }

  /// Insert with in-place Pareto pruning within the (dist, fusion) state.
  void insert_pruned(std::vector<Sol>& sols, Sol s) {
    const bool lv = cfg_.liveness_aware;
    for (const Sol& t : sols) {
      if (t.dist == s.dist && t.fusion == s.fusion && dominates(t, s, lv)) {
        ++stats_.dominated;
        return;
      }
    }
    std::erase_if(sols, [&](const Sol& t) {
      if (t.dist == s.dist && t.fusion == s.fusion &&
          dominates(s, t, lv)) {
        ++stats_.dominated;
        return true;
      }
      return false;
    });
    sols.push_back(std::move(s));
  }

  /// Bookkeeping shared by the solve_* functions after a node completes.
  void note_node_solved(const std::vector<Sol>& sols) {
    stats_.kept += sols.size();
    stats_.max_per_node =
        std::max<std::uint64_t>(stats_.max_per_node, sols.size());
  }

  // ------------------------------------------------------- contraction

  void solve_contraction(NodeId id) {
    const ContractionNode& n = tree_.node(id);
    const auto choices = enumerate_cannon_choices(n);
    const auto fusions = fusion_candidates(id);

    std::vector<Sol> sols;
    for (const CannonChoice& c : choices) {
      IndexSet triplet;
      for (IndexId t : {c.i, c.j, c.k}) {
        if (t != kNoIndex) triplet.insert(t);
      }
      const double dup_penalty = duplication_penalty(
          id, static_cast<int>(triplet.count()) - 1);
      const Distribution alpha = c.result_dist();
      const Distribution beta = c.left_dist();
      const Distribution gamma = c.right_dist();

      const auto lopts = operand_options(n.left, beta, triplet);
      const auto ropts = operand_options(n.right, gamma, triplet);

      for (IndexSet f_u : fusions) {
        if (!(f_u & triplet).empty()) continue;
        const std::uint64_t own_mem =
            dist_bytes(n.tensor, alpha, f_u, space_, grid_);

        for (const Operand& lo : lopts) {
          if (!fusion_nesting_ok(f_u, lo.fusion, lo.loop_indices)) continue;
          for (const Operand& ro : ropts) {
            if (!fusion_nesting_ok(f_u, ro.fusion, ro.loop_indices)) {
              continue;
            }
            const IndexSet f_eff = f_u | lo.fusion | ro.fusion;
            const double repeat = repeat_factor(f_eff);

            const TensorRef& lref = tree_.node(n.left).tensor;
            const TensorRef& rref = tree_.node(n.right).tensor;

            Sol s;
            s.dist = alpha;
            s.fusion = f_u;
            s.choice = c;
            s.left_sol = lo.sol;
            s.right_sol = ro.sol;
            s.left_dist = beta;
            s.right_dist = gamma;
            s.eff_fused = f_eff;
            s.redist_left = lo.redist;
            s.redist_right = ro.redist;

            std::uint64_t msg = std::max(lo.max_msg, ro.max_msg);
            if (c.rotates_left()) {
              const std::uint64_t block =
                  dist_bytes(lref, beta, f_eff, space_, grid_);
              s.rot_left =
                  repeat * model_.rotate_cost(block, c.left_rot_dim());
              msg = std::max(msg, block);
            }
            if (c.rotates_right()) {
              const std::uint64_t block =
                  dist_bytes(rref, gamma, f_eff, space_, grid_);
              s.rot_right =
                  repeat * model_.rotate_cost(block, c.right_rot_dim());
              msg = std::max(msg, block);
            }
            if (c.rotates_result()) {
              const std::uint64_t block =
                  dist_bytes(n.tensor, alpha, f_eff, space_, grid_);
              s.rot_result =
                  repeat * model_.rotate_cost(block, c.result_rot_dim());
              msg = std::max(msg, block);
            }

            s.cost = lo.cost + ro.cost + lo.redist + ro.redist +
                     s.rot_left + s.rot_right + s.rot_result +
                     dup_penalty;
            s.mem = checked_add(checked_add(lo.mem, ro.mem), own_mem);
            s.max_msg = msg;
            // Liveness: left subtree runs, then right (left's working set
            // retained), then this node's loops with both operands and
            // the accumulator live.
            s.input_bytes = checked_add(lo.input_bytes, ro.input_bytes);
            s.peak = std::max(
                {lo.peak, checked_add(lo.working, ro.peak),
                 checked_add(checked_add(lo.working, ro.working),
                             own_mem)});
            // A node fused with its parent re-executes inside the
            // parent's loops, so *all* of its operands' working sets
            // stay live alongside its slice buffer; an unfused node is
            // materialized once and its operands are freed.
            s.working = own_mem;
            if (!f_u.empty()) {
              s.working = checked_add(
                  s.working, checked_add(lo.working, ro.working));
            }

            ++stats_.candidates;
            if (!feasible(s)) {
              ++stats_.infeasible;
              continue;
            }
            insert_pruned(sols, std::move(s));
          }
        }
      }
    }
    if (cfg_.enable_replication_template) {
      solve_replicated(id, fusions, sols);
    }

    if (sols.empty()) {
      throw InfeasibleError(
          "no feasible solution at node producing '" + n.tensor.name +
          "' under the memory limit");
    }
    note_node_solved(sols);
    sols_[id] = std::move(sols);
  }

  // ----------------------------------------- replicate-compute-reduce

  /// Enumerates replicate-compute-reduce executions of node \p id (see
  /// OptimizerConfig::enable_replication_template): one operand is
  /// gathered whole onto every processor, the other stays put in a
  /// ⟨s_r, s_k⟩ block distribution, and the result partials are combined
  /// with a reduce-scatter along the grid dimension holding s_k,
  /// scattered there by j_pick.
  void solve_replicated(NodeId id, const std::vector<IndexSet>& fusions,
                        std::vector<Sol>& sols) {
    const ContractionNode& n = tree_.node(id);
    auto with_none = [](IndexSet set) {
      std::vector<IndexId> v;
      for (IndexId i : set) v.push_back(i);
      v.push_back(kNoIndex);
      return v;
    };

    for (bool repl_right : {false, true}) {
      const NodeId stat_id = repl_right ? n.left : n.right;
      const NodeId repl_id = repl_right ? n.right : n.left;
      const TensorRef& stat_ref = tree_.node(stat_id).tensor;
      const TensorRef& repl_ref = tree_.node(repl_id).tensor;
      const IndexSet stat_side =
          repl_right ? n.left_indices : n.right_indices;
      const IndexSet repl_side =
          repl_right ? n.right_indices : n.left_indices;
      (void)stat_ref;

      for (IndexId s_r : with_none(stat_side)) {
        for (IndexId s_k : with_none(n.sum_indices)) {
          for (bool tr : {false, true}) {
            if (s_r == kNoIndex && s_k == kNoIndex && tr) continue;
            Distribution delta(s_r, s_k);
            if (tr) delta = delta.transposed();
            const int reduce_dim = delta.dim_of(s_k);
            const int split_dims = (s_r != kNoIndex ? 1 : 0) +
                                   (s_k != kNoIndex ? 1 : 0);
            const double dup_penalty = duplication_penalty(id, split_dims);

            const auto stat_opts_base = [&] {
              IndexSet trip;
              if (s_r != kNoIndex) trip.insert(s_r);
              if (s_k != kNoIndex) trip.insert(s_k);
              return trip;
            }();

            for (IndexId j_pick : with_none(repl_side)) {
              Distribution alpha(s_r, j_pick);
              if (tr) alpha = alpha.transposed();
              // The partial result before the reduce-scatter: only the
              // stationary side's index splits it.
              Distribution partial(s_r, kNoIndex);
              if (tr) partial = partial.transposed();

              IndexSet triplet = stat_opts_base;
              if (j_pick != kNoIndex) triplet.insert(j_pick);

              const auto sopts =
                  operand_options(stat_id, delta, triplet);
              const auto ropts = operand_options(
                  repl_id, compact_dist(repl_ref), triplet,
                  /*any_dist=*/true);

              for (IndexSet f_u : fusions) {
                if (!(f_u & triplet).empty()) continue;
                const std::uint64_t own_mem =
                    dist_bytes(n.tensor, alpha, f_u, space_, grid_);

                for (const Operand& so : sopts) {
                  if (!fusion_nesting_ok(f_u, so.fusion,
                                         so.loop_indices)) {
                    continue;
                  }
                  for (const Operand& ro : ropts) {
                    if (!fusion_nesting_ok(f_u, ro.fusion,
                                           ro.loop_indices)) {
                      continue;
                    }
                    const IndexSet f_eff = f_u | so.fusion | ro.fusion;

                    // Allgather of the replicated operand: once per
                    // iteration of the fused loops that slice it.
                    double ag_repeat = 1.0;
                    for (IndexId j : f_eff & repl_ref.index_set()) {
                      ag_repeat *= static_cast<double>(space_.extent(j));
                    }
                    const std::uint64_t slice_total =
                        fused_bytes(repl_ref, f_eff, space_);
                    const double ag =
                        ag_repeat * model_.allgather_cost(slice_total);

                    // Reduce-scatter of the result partials: once per
                    // iteration of the fused loops that slice the
                    // result (partials for other loops accumulate
                    // locally and the reduction hoists out).
                    const IndexSet f_red = f_eff & n.tensor.index_set();
                    double red_repeat = 1.0;
                    for (IndexId j : f_red) {
                      red_repeat *= static_cast<double>(space_.extent(j));
                    }
                    const std::uint64_t partial_bytes = dist_bytes(
                        n.tensor, partial, f_red, space_, grid_);
                    double rs = 0;
                    if (reduce_dim != 0) {
                      rs = red_repeat * model_.reduce_scatter_cost(
                                            partial_bytes, reduce_dim);
                      // Without a scatter index the reduced result must
                      // stay replicated along the line: allreduce ≈ 2x.
                      if (j_pick == kNoIndex) rs *= 2.0;
                    }

                    // Transient storage: the gathered slice plus the
                    // oversized partial coexist on every rank.
                    const std::uint64_t own_block = dist_bytes(
                        n.tensor, alpha, f_eff, space_, grid_);
                    const std::uint64_t transient = checked_add(
                        slice_total,
                        partial_bytes > own_block
                            ? partial_bytes - own_block
                            : 0);

                    Sol s;
                    s.dist = alpha;
                    s.fusion = f_u;
                    s.replicated = true;
                    s.replicate_right = repl_right;
                    s.reduce_dim = reduce_dim;
                    s.left_sol = repl_right ? so.sol : ro.sol;
                    s.right_sol = repl_right ? ro.sol : so.sol;
                    s.left_dist = repl_right ? delta : Distribution();
                    s.right_dist = repl_right ? Distribution() : delta;
                    s.eff_fused = f_eff;
                    s.redist_left = repl_right ? so.redist : ro.redist;
                    s.redist_right = repl_right ? ro.redist : so.redist;
                    // Comm attribution: replicated side = allgather,
                    // result = reduce.
                    s.rot_left = repl_right ? 0 : ag;
                    s.rot_right = repl_right ? ag : 0;
                    s.rot_result = rs;

                    s.cost = so.cost + ro.cost + so.redist + ro.redist +
                             ag + rs + dup_penalty;
                    s.mem = checked_add(checked_add(so.mem, ro.mem),
                                        own_mem);
                    s.max_msg =
                        std::max({so.max_msg, ro.max_msg, transient});
                    s.input_bytes =
                        checked_add(so.input_bytes, ro.input_bytes);
                    s.peak = std::max(
                        {so.peak, checked_add(so.working, ro.peak),
                         checked_add(checked_add(so.working, ro.working),
                                     own_mem)});
                    s.working = own_mem;
                    if (!f_u.empty()) {
                      s.working = checked_add(
                          s.working,
                          checked_add(so.working, ro.working));
                    }

                    ++stats_.candidates;
                    if (!feasible(s)) {
                      ++stats_.infeasible;
                      continue;
                    }
                    insert_pruned(sols, std::move(s));
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  // ------------------------------------------------------------ reduce

  void solve_reduce(NodeId id) {
    const ContractionNode& n = tree_.node(id);
    const NodeId child = n.left;
    const ContractionNode& cn = tree_.node(child);
    const auto fusions = fusion_candidates(id);

    // Child options: every distribution of a leaf, or the child's own
    // (unfused) solutions.
    struct ChildOpt {
      Distribution dist;
      int sol = -1;
      double cost = 0;
      std::uint64_t mem = 0, max_msg = 0;
      std::uint64_t peak = 0, working = 0, input_bytes = 0;
    };
    std::vector<ChildOpt> copts;
    if (cn.kind == ContractionNode::Kind::kInput) {
      for (const Distribution& d : enumerate_distributions(cn.tensor)) {
        ChildOpt o;
        o.dist = d;
        o.mem = dist_bytes(cn.tensor, d, IndexSet(), space_, grid_);
        o.input_bytes = o.mem;
        copts.push_back(o);
      }
    } else {
      const auto& sols = sols_.at(child);
      for (int i = 0; i < static_cast<int>(sols.size()); ++i) {
        const Sol& s = sols[static_cast<std::size_t>(i)];
        if (!s.fusion.empty()) continue;  // reduce consumes materialized
        copts.push_back({s.dist, i, s.cost, s.mem, s.max_msg, s.peak,
                         s.working, s.input_bytes});
      }
    }

    std::vector<Sol> sols;
    for (const ChildOpt& co : copts) {
      // Result distribution: drop reduced indices from the child's pair.
      auto position = [&](int d) {
        const IndexId i = co.dist.at(d);
        return (i != kNoIndex && n.sum_indices.contains(i)) ? kNoIndex : i;
      };
      const Distribution rdist(position(1), position(2));
      const bool needs_allreduce = rdist != co.dist;

      for (IndexSet f_u : fusions) {
        if (!(f_u & rdist.index_set()).empty()) continue;
        Sol s;
        s.dist = rdist;
        s.fusion = f_u;
        s.left_sol = co.sol;
        s.left_dist = co.dist;
        s.eff_fused = f_u;
        const std::uint64_t own_mem =
            dist_bytes(n.tensor, rdist, f_u, space_, grid_);
        std::uint64_t msg = co.max_msg;
        if (needs_allreduce) {
          // Partial sums are combined across the grid dimension(s) that
          // held reduced indices; modeled with the redistribution curve.
          const std::uint64_t block =
              dist_bytes(n.tensor, rdist, f_u, space_, grid_);
          s.rot_result =
              repeat_factor(f_u) * model_.redistribute_cost(block);
          msg = std::max(msg, block);
        }
        s.cost = co.cost + s.rot_result;
        s.mem = checked_add(co.mem, own_mem);
        s.max_msg = msg;
        s.input_bytes = co.input_bytes;
        s.peak = std::max(co.peak, checked_add(co.working, own_mem));
        s.working = own_mem;
        if (!f_u.empty()) {
          s.working = checked_add(s.working, co.working);
        }
        ++stats_.candidates;
        if (!feasible(s)) {
          ++stats_.infeasible;
          continue;
        }
        insert_pruned(sols, std::move(s));
      }
    }
    if (sols.empty()) {
      throw InfeasibleError(
          "no feasible solution at reduce node producing '" +
          n.tensor.name + "' under the memory limit");
    }
    note_node_solved(sols);
    sols_[id] = std::move(sols);
  }

  // ----------------------------------------------------- plan extraction

  OptimizedPlan extract_plan(const Sol* best) {
    const NodeId root = tree_.root();

    OptimizedPlan plan;
    plan.total_comm_s = best->cost;
    plan.total_compute_s =
        model_.compute_time(tree_.total_flops() / grid_.procs);
    plan.array_bytes_per_proc = best->mem;
    plan.max_msg_bytes_per_proc = best->max_msg;
    plan.peak_live_bytes_per_proc =
        checked_add(best->input_bytes, best->peak);
    plan.liveness_aware = cfg_.liveness_aware;
    plan.procs_per_node = grid_.procs_per_node;
    plan.stats = stats_;

    // Walk the provenance tree, collecting steps (post-order) and array
    // rows.  Consumer-side info for each child array is attached while
    // visiting the parent.
    struct ConsumerInfo {
      Distribution dist;    ///< As consumed (⟨·,·⟩ = replicated).
      double comm;
      Distribution stored;  ///< Block layout it is *stored* in (differs
                            ///< from `dist` for replicated operands,
                            ///< which are gathered transiently).
    };
    std::map<NodeId, ConsumerInfo> consumed;
    std::map<NodeId, const Sol*> chosen;

    // First pass: resolve the chosen Sol of every visited node.
    walk(root, best, [&](NodeId id, const Sol* s) { chosen[id] = s; });

    // Second pass: steps and consumer info.
    for (NodeId id : tree_.post_order()) {
      auto it = chosen.find(id);
      if (it == chosen.end()) continue;
      const ContractionNode& n = tree_.node(id);
      const Sol* s = it->second;
      if (n.kind == ContractionNode::Kind::kContraction) {
        PlanStep step;
        step.node = id;
        step.result_name = n.tensor.name;
        step.tmpl = s->replicated ? StepTemplate::kReplicated
                                  : StepTemplate::kCannon;
        step.result_dist = s->dist;
        step.replicate_right = s->replicate_right;
        step.reduce_dim = s->reduce_dim;
        step.choice = s->choice;
        step.fusion = s->fusion;
        step.effective_fused = s->eff_fused;
        step.left_dist = s->left_dist;
        step.right_dist = s->right_dist;
        step.rot_left_s = s->rot_left;
        step.rot_right_s = s->rot_right;
        step.rot_result_s = s->rot_result;
        step.redist_left_s = s->redist_left;
        step.redist_right_s = s->redist_right;
        plan.steps.push_back(step);
        Distribution left_stored = s->left_dist;
        Distribution right_stored = s->right_dist;
        if (s->replicated) {
          // The replicated operand is stored block-distributed and only
          // gathered whole for the duration of the step.
          if (s->replicate_right) {
            right_stored = compact_dist(tree_.node(n.right).tensor);
          } else {
            left_stored = compact_dist(tree_.node(n.left).tensor);
          }
        }
        consumed[n.left] = {s->left_dist, s->rot_left + s->redist_left,
                            left_stored};
        consumed[n.right] = {s->right_dist,
                             s->rot_right + s->redist_right,
                             right_stored};
      } else if (n.kind == ContractionNode::Kind::kReduce) {
        consumed[n.left] = {s->left_dist, 0.0, s->left_dist};
      }
    }

    // Array rows: leaves first (tree order), then internal nodes.
    auto add_row = [&](NodeId id) {
      const ContractionNode& n = tree_.node(id);
      ArrayReport row;
      row.full = n.tensor;
      row.is_input = n.kind == ContractionNode::Kind::kInput;
      row.is_output = id == root;
      IndexSet fusion;
      Distribution stored_dist;
      if (row.is_input) {
        auto c = consumed.find(id);
        TCE_ENSURES(c != consumed.end());
        stored_dist = c->second.stored;
        row.final_dist = c->second.dist;
        row.comm_final_s = c->second.comm;
      } else {
        const Sol* s = chosen.at(id);
        fusion = s->fusion;
        stored_dist = s->dist;
        row.initial_dist = s->dist;
        row.comm_initial_s = s->rot_result;
        auto c = consumed.find(id);
        if (c != consumed.end()) {
          row.final_dist = c->second.dist;
          row.comm_final_s = c->second.comm;
        }
      }
      row.reduced = fused_ref(n.tensor, fusion);
      row.mem_per_node_bytes = checked_mul(
          dist_bytes(n.tensor, stored_dist, fusion, space_, grid_),
          grid_.procs_per_node);
      plan.arrays.push_back(std::move(row));
    };
    for (NodeId id : tree_.leaves()) {
      if (consumed.count(id) != 0) add_row(id);
    }
    for (NodeId id : tree_.post_order()) {
      if (tree_.node(id).kind != ContractionNode::Kind::kInput &&
          chosen.count(id) != 0) {
        add_row(id);
      }
    }
    return plan;
  }

  /// Visits the chosen solution of every internal node under (id, s).
  template <typename Fn>
  void walk(NodeId id, const Sol* s, Fn&& fn) {
    fn(id, s);
    const ContractionNode& n = tree_.node(id);
    if (n.left != kNoNode && s->left_sol >= 0) {
      walk(n.left,
           &sols_.at(n.left)[static_cast<std::size_t>(s->left_sol)], fn);
    }
    if (n.right != kNoNode && s->right_sol >= 0) {
      walk(n.right,
           &sols_.at(n.right)[static_cast<std::size_t>(s->right_sol)], fn);
    }
  }

  const ContractionTree& tree_;
  const MachineModel& model_;
  const OptimizerConfig& cfg_;
  const ProcGrid& grid_;
  const IndexSpace& space_;
  std::map<NodeId, std::vector<Sol>> sols_;
  /// Mutable: operand_options (const) counts redistribution candidates.
  mutable OptimizerStats stats_;
};

/// TCE_VERIFY_PLANS debug mode: re-derive every invariant of \p plan
/// before handing it to the caller.  The verifier shares no search code
/// with the optimizer, so agreement here is a genuine cross-check.
void maybe_verify(const ContractionTree& tree, const MachineModel& model,
                  const OptimizerConfig& config,
                  const OptimizedPlan& plan) {
  if (!verify_plans_enabled()) return;
  VerifyOptions opts;
  opts.mem_limit_node_bytes = config.mem_limit_node_bytes;
  const VerifyReport report = verify_plan(tree, model, plan, opts);
  if (!report.ok()) {
    throw Error("TCE_VERIFY_PLANS: optimizer emitted an invalid plan\n" +
                report.str(tree));
  }
}

}  // namespace

OptimizedPlan optimize(const ContractionTree& tree,
                       const MachineModel& model,
                       const OptimizerConfig& config) {
  const obs::TraceSpan span("optimize", "optimizer");
  Search search(tree, model, config);
  OptimizedPlan plan = search.run();
  maybe_verify(tree, model, config, plan);
  return plan;
}

std::vector<OptimizedPlan> optimize_frontier(const ContractionTree& tree,
                                             const MachineModel& model,
                                             const OptimizerConfig& config) {
  const obs::TraceSpan span("optimize_frontier", "optimizer");
  Search search(tree, model, config);
  std::vector<OptimizedPlan> plans = search.run_frontier();
  for (const OptimizedPlan& plan : plans) {
    maybe_verify(tree, model, config, plan);
  }
  return plans;
}

}  // namespace tce
