#pragma once
/// \file forest.hpp
/// Joint optimization of multi-output programs (extension beyond the
/// paper).
///
/// The trees of a forest execute sequentially and share the machine's
/// memory, so their plans cannot be chosen independently: a tree that
/// takes a cheap, memory-hungry plan forces its siblings into expensive
/// fused plans.  The forest optimizer therefore asks each tree for its
/// full (cost, memory) Pareto frontier and combines the frontiers with a
/// running Pareto product, minimizing total communication subject to the
/// shared per-node limit.
///
/// Memory accounting across trees:
///  * summed model (the paper's): all arrays of all trees counted, plus
///    the largest single message as the send/recv buffer;
///  * liveness model: every tree's inputs stay resident for the whole
///    program, a finished tree leaves only its output behind, and the
///    running tree adds its live intermediates — the program peak is the
///    max over tree positions.  Trees run in program order.

#include "tce/core/plan.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/expr/forest.hpp"

namespace tce {

/// A complete plan for a multi-output program.
struct ForestPlan {
  std::vector<OptimizedPlan> plans;  ///< One per tree, program order.
  double total_comm_s = 0;
  double total_compute_s = 0;
  /// Per-node memory under the active accounting (see file comment).
  std::uint64_t bytes_per_node = 0;

  double total_runtime_s() const { return total_comm_s + total_compute_s; }
  double comm_fraction() const {
    return total_runtime_s() > 0 ? total_comm_s / total_runtime_s() : 0.0;
  }
};

/// Optimizes all trees jointly under the shared memory limit.  Throws
/// InfeasibleError when no combination fits.
ForestPlan optimize_forest(const ContractionForest& forest,
                           const MachineModel& model,
                           const OptimizerConfig& config = {});

}  // namespace tce
