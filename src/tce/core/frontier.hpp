#pragma once
/// \file frontier.hpp
/// Pareto-frontier data structures for the DP search.
///
/// KeyedFrontier replaces the optimizer's former flat per-node
/// std::vector<Sol>: partial solutions only ever compete for dominance
/// within the same (distribution, fusion) state, so the frontier keeps
/// one small vector per state key and an insert scans a handful of
/// same-key entries instead of every solution at the node.
///
/// Determinism contract.  Each entry carries a *sequence number* — its
/// position in the canonical sequential enumeration order of the node.
/// Dominance ties (entries equal on every compared metric) are resolved
/// toward the lower sequence number.  That makes the surviving set the
/// unique maximal set of a strict partial order, so it is independent
/// of insertion grouping: building per-chunk frontiers in parallel and
/// merging them in ascending chunk order yields bit-identical survivors
/// to a flat sequential pass.  flatten() returns survivors sorted by
/// sequence number — exactly the vector the sequential search built.
///
/// pareto_min_filter is the root-level global filter over
/// (cost, memory metric, largest message): a sort plus a monotone
/// staircase sweep, O(n log n) instead of the former all-pairs scan,
/// with exact-triple duplicates collapsed onto the lowest-index
/// representative (the former post-sort adjacent collapse kept an
/// unspecified one — std::sort is not stable).

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace tce {

/// Bucketed Pareto frontier; see file comment.  Key must be
/// strict-weak-ordered; Entry must expose `std::uint64_t seq`.
/// Dominance is supplied per call: dom(a, b) must return true when a
/// weakly dominates b (ties allowed) and be transitive.
///
/// Concurrency: not thread-safe, deliberately — instances are
/// thread-confined by construction.  The parallel search builds one
/// frontier per work chunk inside its worker, then merge_from()s the
/// chunks in ascending order on the coordinating thread after the
/// parallel_for barrier (optimizer.cpp), so no two threads ever touch
/// the same instance and no lock is needed.  Shared mutable state
/// lives behind annotated mutexes instead (tce/common/annotations.hpp).
template <typename Key, typename Entry>
class KeyedFrontier {
 public:
  /// Inserts \p e unless an existing same-key entry weakly dominates
  /// it; otherwise erases same-key entries it strictly-or-tie beats.
  /// Callers must insert in ascending seq order (existing entries win
  /// ties, so earlier seq must already be present).  Every rejection
  /// and eviction increments *\p dominated once.
  template <typename Dom>
  void insert(const Key& key, Entry e, const Dom& dom,
              std::uint64_t& dominated) {
    std::vector<Entry>& bucket = buckets_[key];
    for (const Entry& t : bucket) {
      if (dom(t, e)) {
        ++dominated;
        return;
      }
    }
    std::erase_if(bucket, [&](const Entry& t) {
      if (dom(e, t)) {
        ++dominated;
        return true;
      }
      return false;
    });
    bucket.push_back(std::move(e));
  }

  /// Folds \p other in (bucket by bucket; entries of one bucket are
  /// re-inserted in their stored order).  Correct when every entry of
  /// \p other has a higher seq than every entry already present in the
  /// same bucket — i.e. merge chunk frontiers in ascending chunk
  /// order.
  template <typename Dom>
  void merge(KeyedFrontier&& other, const Dom& dom,
             std::uint64_t& dominated) {
    for (auto& [key, bucket] : other.buckets_) {
      auto it = buckets_.find(key);
      if (it == buckets_.end()) {
        buckets_.emplace(key, std::move(bucket));
        continue;
      }
      for (Entry& e : bucket) {
        insert(key, std::move(e), dom, dominated);
      }
    }
    other.buckets_.clear();
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& [key, bucket] : buckets_) n += bucket.size();
    return n;
  }

  bool empty() const { return buckets_.empty(); }

  /// All survivors in ascending seq order — the canonical per-node
  /// solution vector (identical to what sequential flat insertion in
  /// seq order would have left, in the same order).
  std::vector<Entry> flatten() && {
    std::vector<Entry> out;
    out.reserve(size());
    for (auto& [key, bucket] : buckets_) {
      for (Entry& e : bucket) out.push_back(std::move(e));
    }
    buckets_.clear();
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
    return out;
  }

 private:
  std::map<Key, std::vector<Entry>> buckets_;
};

/// One point of the root frontier, in filter coordinates.  `idx` is the
/// point's position in the caller's array (= enumeration order there).
struct FrontierPoint {
  double cost = 0;
  std::uint64_t metric = 0;
  std::uint64_t max_msg = 0;
  std::uint32_t idx = 0;
};

/// Minimizing Pareto filter over (cost, metric, max_msg) with duplicate
/// collapse: returns the indices of points not weakly dominated by a
/// distinct point (strict in at least one coordinate), keeping exactly
/// one representative — the lowest idx — of every exactly-equal triple.
/// Output is sorted by (cost, metric, max_msg, idx) ascending.
/// O(n log n).
std::vector<std::uint32_t> pareto_min_filter(
    std::vector<FrontierPoint> points);

}  // namespace tce
