#pragma once
/// \file distribution.hpp
/// Array distributions ⟨i,j⟩ and the memory/communication bookkeeping
/// formulas of §3.2.
///
/// A distribution α is a pair of positions, α[1] and α[2], one per
/// processor dimension; each position names the array index distributed
/// along that dimension, or is empty (the array is not split along that
/// processor dimension — its data is replicated across it).  The paper's
/// notation ⟨b,f⟩ means: dimension b of the array split across processor
/// rows, dimension f across processor columns.

#include <cstdint>
#include <optional>
#include <string>

#include "tce/dist/grid.hpp"
#include "tce/expr/tensor_ref.hpp"

namespace tce {

/// Sentinel for an undistributed position in a Distribution.
inline constexpr IndexId kNoIndex = 0xFF;

/// A two-position distribution ⟨α[1], α[2]⟩.
class Distribution {
 public:
  constexpr Distribution() = default;
  constexpr Distribution(IndexId d1, IndexId d2) : d1_(d1), d2_(d2) {
    // The same index cannot be split along both grid dimensions.
    if (d1 != kNoIndex && d1 == d2) {
      TCE_UNREACHABLE("distribution repeats an index");
    }
  }

  /// Position along processor dimension \p d (1 or 2).
  constexpr IndexId at(int d) const {
    TCE_EXPECTS(d == 1 || d == 2);
    return d == 1 ? d1_ : d2_;
  }

  /// True when index \p i occupies one of the two positions.
  constexpr bool contains(IndexId i) const {
    return i != kNoIndex && (d1_ == i || d2_ == i);
  }

  /// Grid dimension (1 or 2) holding index \p i; 0 when absent.
  constexpr int dim_of(IndexId i) const {
    if (i == kNoIndex) return 0;
    if (d1_ == i) return 1;
    if (d2_ == i) return 2;
    return 0;
  }

  /// The distributed indices as a set.
  IndexSet index_set() const {
    IndexSet s;
    if (d1_ != kNoIndex) s.insert(d1_);
    if (d2_ != kNoIndex) s.insert(d2_);
    return s;
  }

  /// True when neither position is assigned.
  constexpr bool undistributed() const {
    return d1_ == kNoIndex && d2_ == kNoIndex;
  }

  /// The transposed distribution ⟨α[2], α[1]⟩.
  constexpr Distribution transposed() const {
    return Distribution(d2_, d1_);
  }

  /// Renders as "<b,f>"; empty positions render as "·".
  std::string str(const IndexSpace& space) const;

  friend constexpr bool operator==(Distribution a, Distribution b) {
    return a.d1_ == b.d1_ && a.d2_ == b.d2_;
  }
  friend constexpr bool operator!=(Distribution a, Distribution b) {
    return !(a == b);
  }
  friend constexpr bool operator<(Distribution a, Distribution b) {
    return a.d1_ != b.d1_ ? a.d1_ < b.d1_ : a.d2_ < b.d2_;
  }

 private:
  IndexId d1_ = kNoIndex;
  IndexId d2_ = kNoIndex;
};

/// DistRange(i, v, α, f) — §3.2(i): the per-processor extent of dimension
/// \p i of an array distributed as \p alpha with fusion \p fused:
///   1        if i is fused away,
///   N_i/√P   if i is distributed (rounded up when not divisible),
///   N_i      otherwise.
std::uint64_t dist_range(IndexId i, const Distribution& alpha,
                         IndexSet fused, const IndexSpace& space,
                         const ProcGrid& grid);

/// DistSize(v, α, f) — per-processor element count of array \p v.
std::uint64_t dist_size(const TensorRef& v, const Distribution& alpha,
                        IndexSet fused, const IndexSpace& space,
                        const ProcGrid& grid);

/// Per-processor bytes of a double-precision array.
inline std::uint64_t dist_bytes(const TensorRef& v,
                                const Distribution& alpha, IndexSet fused,
                                const IndexSpace& space,
                                const ProcGrid& grid) {
  return checked_mul(dist_size(v, alpha, fused, space, grid),
                     sizeof(double));
}

/// LoopRange(j, v, α, f) — §3.3: the iteration count contributed by
/// dimension \p j to the number of communication start-ups:
///   1        if j is not fused,
///   N_j/√P   if j is fused and distributed,
///   N_j      if j is fused and not distributed.
std::uint64_t loop_range(IndexId j, const Distribution& alpha,
                         IndexSet fused, const IndexSpace& space,
                         const ProcGrid& grid);

/// MsgFactor(v, α, f) — §3.3: product of LoopRange over the array's
/// dimensions; multiplies the rotation cost when the collective sits
/// inside fused loops.
std::uint64_t msg_factor(const TensorRef& v, const Distribution& alpha,
                         IndexSet fused, const IndexSpace& space,
                         const ProcGrid& grid);

/// §3.2(iii): a loop with index \p i can be fused across two nodes only
/// when its range agrees on both sides — undistributed at both, or
/// distributed (onto the same √P-way split) at both.  With a single
/// common grid all splits are √P-way, so the condition reduces to
/// "distributed at both or at neither".
bool fusion_compatible(IndexId i, const Distribution& a,
                       const Distribution& b);

/// A distribution is valid for array \p v when every assigned position
/// names one of v's dimensions.
bool distribution_valid_for(const Distribution& alpha, const TensorRef& v);

/// All distributions valid for array \p v: every ordered pair of distinct
/// dimensions, every single-position distribution, and the fully
/// replicated ⟨·,·⟩.
std::vector<Distribution> enumerate_distributions(const TensorRef& v);

}  // namespace tce
