#include "tce/dist/cannon_space.hpp"

#include "tce/common/error.hpp"

namespace tce {

namespace {

/// Candidate assignments for one triplet position: every member of \p s
/// plus the unassigned sentinel.  Leaving a position unassigned
/// replicates the affected arrays across that grid dimension — never
/// cheaper communication-wise, but sometimes the only option when loop
/// fusion has consumed every index of the set (a fully fused intermediate
/// has no dimensions left to distribute).
std::vector<IndexId> candidates(IndexSet s) {
  std::vector<IndexId> v;
  for (IndexId id : s) v.push_back(id);
  v.push_back(kNoIndex);
  return v;
}

}  // namespace

std::vector<CannonChoice> enumerate_cannon_choices(
    const ContractionNode& node) {
  if (node.kind != ContractionNode::Kind::kContraction) {
    throw Error("Cannon choices requested for a non-contraction node");
  }
  if (!node.batch_indices.empty()) {
    throw Error(
        "contraction has batch indices (an index shared by both operands "
        "and the result); not representable by the generalized Cannon "
        "algorithm");
  }
  if (node.left_indices.empty() && node.right_indices.empty() &&
      node.sum_indices.empty()) {
    throw Error("degenerate contraction: all index sets empty");
  }

  std::vector<CannonChoice> out;
  for (IndexId i : candidates(node.left_indices)) {
    for (IndexId j : candidates(node.right_indices)) {
      for (IndexId k : candidates(node.sum_indices)) {
        for (bool transposed : {false, true}) {
          for (IndexId rot : {i, j, k}) {
            if (rot == kNoIndex) continue;
            CannonChoice c;
            c.i = i;
            c.j = j;
            c.k = k;
            c.transposed = transposed;
            c.rot = rot;
            out.push_back(c);
          }
        }
      }
    }
  }
  TCE_ENSURES(!out.empty());
  return out;
}

}  // namespace tce
