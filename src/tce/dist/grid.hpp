#pragma once
/// \file grid.hpp
/// The two-dimensional logical processor grid of §3.1.
///
/// P processors are viewed as a √P×√P grid; every array is distributed
/// along the two processor dimensions.  The paper's testbed packs 2
/// processors per node, and memory limits are stated per *node*, so the
/// grid also carries the procs-per-node factor used for memory accounting.

#include <cstdint>
#include <string>

#include "tce/common/checked.hpp"

namespace tce {

/// Logical √P×√P processor grid.
struct ProcGrid {
  std::uint32_t procs = 1;           ///< P; must be a perfect square.
  std::uint32_t edge = 1;            ///< √P.
  std::uint32_t procs_per_node = 1;  ///< For per-node memory accounting.

  /// Builds a grid, validating that \p p is a perfect square and divisible
  /// into nodes.
  static ProcGrid make(std::uint32_t p, std::uint32_t per_node = 2) {
    TCE_EXPECTS(p >= 1);
    TCE_EXPECTS(per_node >= 1);
    TCE_EXPECTS_MSG(p % per_node == 0,
                    "processor count must be a multiple of procs per node");
    ProcGrid g;
    g.procs = p;
    g.edge = exact_isqrt(p);
    g.procs_per_node = per_node;
    return g;
  }

  std::uint32_t nodes() const { return procs / procs_per_node; }

  /// Rank of grid position (z1, z2), row-major.
  std::uint32_t rank(std::uint32_t z1, std::uint32_t z2) const {
    TCE_EXPECTS(z1 < edge && z2 < edge);
    return z1 * edge + z2;
  }
  std::uint32_t row(std::uint32_t rank) const { return rank / edge; }
  std::uint32_t col(std::uint32_t rank) const { return rank % edge; }

  /// Node housing a given rank (ranks are packed onto nodes in order).
  std::uint32_t node_of(std::uint32_t rank) const {
    TCE_EXPECTS(rank < procs);
    return rank / procs_per_node;
  }

  std::string str() const {
    return std::to_string(edge) + "x" + std::to_string(edge) + " (" +
           std::to_string(procs) + " procs, " + std::to_string(nodes()) +
           " nodes)";
  }
};

}  // namespace tce
