#include "tce/dist/distribution.hpp"

namespace tce {

std::string Distribution::str(const IndexSpace& space) const {
  auto pos = [&](IndexId id) -> std::string {
    return id == kNoIndex ? "·" : space.name(id);
  };
  return "<" + pos(d1_) + "," + pos(d2_) + ">";
}

std::uint64_t dist_range(IndexId i, const Distribution& alpha,
                         IndexSet fused, const IndexSpace& space,
                         const ProcGrid& grid) {
  if (fused.contains(i)) return 1;
  if (alpha.contains(i)) return ceil_div(space.extent(i), grid.edge);
  return space.extent(i);
}

std::uint64_t dist_size(const TensorRef& v, const Distribution& alpha,
                        IndexSet fused, const IndexSpace& space,
                        const ProcGrid& grid) {
  TCE_EXPECTS_MSG(distribution_valid_for(alpha, v),
                  "distribution names an index absent from the array");
  std::uint64_t size = 1;
  for (IndexId i : v.dims) {
    size = checked_mul(size, dist_range(i, alpha, fused, space, grid));
  }
  return size;
}

std::uint64_t loop_range(IndexId j, const Distribution& alpha,
                         IndexSet fused, const IndexSpace& space,
                         const ProcGrid& grid) {
  if (!fused.contains(j)) return 1;
  if (alpha.contains(j)) return ceil_div(space.extent(j), grid.edge);
  return space.extent(j);
}

std::uint64_t msg_factor(const TensorRef& v, const Distribution& alpha,
                         IndexSet fused, const IndexSpace& space,
                         const ProcGrid& grid) {
  std::uint64_t factor = 1;
  for (IndexId j : v.dims) {
    factor = checked_mul(factor, loop_range(j, alpha, fused, space, grid));
  }
  return factor;
}

bool fusion_compatible(IndexId i, const Distribution& a,
                       const Distribution& b) {
  return a.contains(i) == b.contains(i);
}

std::vector<Distribution> enumerate_distributions(const TensorRef& v) {
  std::vector<IndexId> slots(v.dims);
  slots.push_back(kNoIndex);
  std::vector<Distribution> out;
  for (IndexId d1 : slots) {
    for (IndexId d2 : slots) {
      if (d1 == d2 && d1 != kNoIndex) continue;
      out.emplace_back(d1, d2);
    }
  }
  return out;
}

bool distribution_valid_for(const Distribution& alpha, const TensorRef& v) {
  const IndexSet dims = v.index_set();
  for (int d : {1, 2}) {
    const IndexId i = alpha.at(d);
    if (i != kNoIndex && !dims.contains(i)) return false;
  }
  return true;
}

}  // namespace tce
