#pragma once
/// \file cannon_space.hpp
/// Enumeration of generalized Cannon execution choices for one contraction
/// (§3.1).
///
/// A contraction C(I,J) += A(I,K)·B(K,J) is executed by picking a triplet
/// {i,j,k} with i∈I, j∈J, k∈K, which fixes the distributions
///   α = ⟨i,j⟩ for the result C,
///   β = ⟨i,k⟩ for the left operand A,
///   γ = ⟨k,j⟩ for the right operand B,
/// plus a *rotation index* (one of i, j, k): the two arrays containing the
/// rotation index in their index sets are rotated around the grid in √P
/// steps while the third stays fixed.  The paper counts 3·NI·NJ·NK
/// distinct communication patterns; we additionally enumerate the
/// transposed orientation (grid dimensions swapped — the paper's own
/// Table 1 solution uses it), giving 2·3·NI·NJ·NK candidates.
///
/// Index sets may be empty (matrix–vector or outer-product shapes); the
/// corresponding position is left unassigned and the rotation index is
/// restricted to assigned positions.

#include <vector>

#include "tce/dist/distribution.hpp"
#include "tce/expr/contraction.hpp"

namespace tce {

/// One fully specified generalized-Cannon execution choice.
struct CannonChoice {
  IndexId i = kNoIndex;  ///< Chosen index from I (left-only).
  IndexId j = kNoIndex;  ///< Chosen index from J (right-only).
  IndexId k = kNoIndex;  ///< Chosen index from K (summation).
  bool transposed = false;  ///< Swap the two grid dimensions.
  IndexId rot = kNoIndex;   ///< Rotation index: one of {i, j, k}.

  /// α — distribution of the result array.
  Distribution result_dist() const {
    Distribution d(i, j);
    return transposed ? d.transposed() : d;
  }
  /// β — distribution of the left operand.
  Distribution left_dist() const {
    Distribution d(i, k);
    return transposed ? d.transposed() : d;
  }
  /// γ — distribution of the right operand.
  Distribution right_dist() const {
    Distribution d(k, j);
    return transposed ? d.transposed() : d;
  }

  /// An array rotates iff it holds the rotation index.
  bool rotates_left() const { return rot == i || rot == k; }
  bool rotates_right() const { return rot == k || rot == j; }
  bool rotates_result() const { return rot == i || rot == j; }

  /// Grid dimension (1 or 2) along which the left operand's blocks move;
  /// 0 when it does not rotate.  A rotating array shifts along the grid
  /// dimension *opposite* to the one where its shared (non-rotating)
  /// coordinate is pinned by the fixed array, so that the shared
  /// coordinates of the blocks meeting at a processor always match.  In
  /// the canonical orientation this resolves to: a rotating left operand
  /// moves along dim 2, a rotating right operand along dim 1, and a
  /// rotating result along dim 1 for rot = i or dim 2 for rot = j.  The
  /// transposed orientation flips the dimensions.
  int left_rot_dim() const {
    if (!rotates_left()) return 0;
    return flip(2);
  }
  int right_rot_dim() const {
    if (!rotates_right()) return 0;
    return flip(1);
  }
  int result_rot_dim() const {
    if (!rotates_result()) return 0;
    return flip(rot == i ? 1 : 2);
  }

 private:
  int flip(int dim) const { return transposed ? 3 - dim : dim; }
};

/// All Cannon choices for a contraction node.  Throws tce::Error when the
/// node is not Cannon-representable (batch indices present) or when all
/// three index sets are empty.
std::vector<CannonChoice> enumerate_cannon_choices(
    const ContractionNode& node);

}  // namespace tce
