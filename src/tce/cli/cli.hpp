#pragma once
/// \file cli.hpp
/// The `tcemin` command-line interface, as a library so it is testable.
///
/// Subcommands:
///   plan <program>        optimize a contraction program for a machine
///   opmin <program>       operation-minimize a multi-term product
///   characterize          measure a (simulated) machine -> table file
///
/// `tcemin help` prints the full usage text.  Program files use the DSL
/// of tce/expr/parser.hpp; machine files use the characterization format
/// of tce/costmodel/characterization.hpp.

#include <string>
#include <vector>

namespace tce {

/// Outcome of one CLI invocation.
struct CliResult {
  int exit_code = 0;
  std::string output;  ///< What would go to stdout.
  std::string error;   ///< What would go to stderr (empty on success).
};

/// Runs the CLI on \p args (argv[1..]); never throws — errors are
/// reported through exit_code/error.
CliResult run_cli(const std::vector<std::string>& args);

/// Parses a byte-size argument: plain bytes ("1000000"), or with a
/// KB/MB/GB suffix (decimal, e.g. "4GB" = 4e9).  Throws tce::Error on
/// malformed input.
std::uint64_t parse_byte_size(const std::string& text);

}  // namespace tce
