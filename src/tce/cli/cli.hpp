#pragma once
/// \file cli.hpp
/// The `tcemin` command-line interface, as a library so it is testable.
///
/// Subcommands:
///   plan <program>        optimize a contraction program for a machine
///   lint <program>        static analysis of a program (no search)
///   opmin <program>       operation-minimize a multi-term product
///   characterize          measure a (simulated) machine -> table file
///   fuzz                  differential fuzzing of the planner (oracles)
///
/// `tcemin help` prints the full usage text.  Program files use the DSL
/// of tce/expr/parser.hpp; machine files use the characterization format
/// of tce/costmodel/characterization.hpp.

#include <string>
#include <vector>

#include "tce/common/error.hpp"

namespace tce {

/// Exit codes returned by run_cli.  Every failure path maps to exactly
/// one of these (documented in `tcemin help`):
///   0  success
///   1  usage error (unknown command/flag, missing or malformed option)
///   2  no plan fits the memory limit (InfeasibleError)
///   3  I/O error (a file could not be opened, read or written)
///   4  input error (program / machine / plan file failed to parse or
///      is semantically invalid, e.g. a --machine procs mismatch)
///   5  plan verification failed (--verify found diagnostics)
///   6  fuzzing found an oracle disagreement
///   7  internal error (contract violation or unexpected exception)
///   8  lint found diagnostics of error severity (`tcemin lint`)
enum ExitCode : int {
  kExitOk = 0,
  kExitUsage = 1,
  kExitInfeasible = 2,
  kExitIo = 3,
  kExitInput = 4,
  kExitVerify = 5,
  kExitFuzz = 6,
  kExitInternal = 7,
  kExitLint = 8,
};

/// Raised on malformed command lines (unknown flag, missing value, ...).
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Raised when `--verify` finds diagnostics; carries the full listing.
class VerifyFailedError : public Error {
 public:
  explicit VerifyFailedError(const std::string& what) : Error(what) {}
};

/// Raised when `tcemin lint` finds error-severity diagnostics; carries
/// the full report (the report is also printed to stdout).
class LintFindingsError : public Error {
 public:
  explicit LintFindingsError(const std::string& what) : Error(what) {}
};

/// Outcome of one CLI invocation.
struct CliResult {
  int exit_code = 0;
  std::string output;  ///< What would go to stdout.
  std::string error;   ///< What would go to stderr (empty on success).
};

/// Runs the CLI on \p args (argv[1..]); never throws — errors are
/// reported through exit_code/error.
CliResult run_cli(const std::vector<std::string>& args);

/// Parses a byte-size argument: plain bytes ("1000000"), or with a
/// KB/MB/GB suffix (decimal, e.g. "4GB" = 4e9).  Throws tce::Error on
/// malformed input.
std::uint64_t parse_byte_size(const std::string& text);

}  // namespace tce
