#include "tce/cli/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "tce/codegen/codegen.hpp"
#include "tce/common/assert.hpp"
#include "tce/common/error.hpp"
#include "tce/common/json.hpp"
#include "tce/common/parse.hpp"
#include "tce/core/forest.hpp"
#include "tce/fuzz/harness.hpp"
#include "tce/lint/lint.hpp"
#include "tce/core/plan_json.hpp"
#include "tce/core/simulate.hpp"
#include "tce/common/strings.hpp"
#include "tce/common/units.hpp"
#include "tce/common/timer.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/obs/exporters.hpp"
#include "tce/obs/log.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/obs/trace.hpp"
#include "tce/opmin/opmin.hpp"
#include "tce/serve/server.hpp"
#include "tce/tensor/kernel.hpp"
#include "tce/verify/verifier.hpp"

namespace tce {

namespace {

constexpr const char* kUsage = R"(tcemin — memory-constrained communication minimization for tensor
contraction expressions (Cociorva et al., IPPS 2003)

usage:
  tcemin plan <program-file> [options]
      Optimize the contraction program for a parallel machine and print
      the per-array plan table, totals, and (optionally) pseudocode.
        --procs N            processors, a perfect square (default 16)
        --procs-per-node N   processors per node (default 2)
        --mem-limit SIZE     per-node limit, e.g. 4GB (default unlimited)
        --threads N          planner worker threads; 0 = all hardware
                             threads (default), 1 = sequential.  The
                             plan is identical at every setting.
        --machine FILE       characterization file for the target machine
                             (default: measure the bundled simulated
                             itanium-2003 cluster)
        --no-fusion          disallow loop fusion
        --no-redistribution  disallow redistribution between steps
        --replication        also consider the replicate-compute-reduce
                             template (extension; see README)
        --liveness           liveness-aware memory accounting (extension)
        --pseudocode         also print the generated program
        --json               print the plan as JSON instead of tables
        --stats              also print search statistics (candidates,
                             pruned, kept, per-node effort) and the
                             metrics registry (docs/OBSERVABILITY.md)
        --trace FILE         write a Chrome/Perfetto trace-event JSON
                             timeline of the run (DP node spans, simnet
                             phases and flows); open at
                             https://ui.perfetto.dev
                             (env: TCE_TRACE=FILE does the same)
        --metrics FILE       write the metrics registry when the command
                             finishes: Prometheus text exposition, or
                             the "tce-metrics/1" JSON snapshot when
                             FILE ends in .json (docs/FORMATS.md).
                             (env: TCE_METRICS=FILE does the same for
                             every subcommand)
        --verify             round-trip each plan through the JSON codec
                             and re-check every invariant with the
                             independent verifier; fails (exit 1) with
                             one "error node=... rule=...: ..." line per
                             violation (see docs/VERIFIER.md)
        --kernel NAME        local GEMM kernel for any numeric execution:
                             auto (default; per-block size cutoff), ref,
                             or tiled (docs/KERNELS.md).  Plans are
                             identical under every setting.
        --opmin              binarize multi-factor statements first

  tcemin lint <program-file> [options]
      Statically analyze a contraction program without running the
      search: structural rules (indices, arities, tree shape), model
      interactions (grid tiling, characterization-curve coverage) and a
      memory-infeasibility prover that can certify "no plan fits the
      limit" with a machine-readable certificate (docs/LINT.md).  Every
      independent finding is reported, tagged with a stable rule id, in
      a deterministic order.  Exits 8 when error-severity findings
      exist, 0 otherwise (warnings and infos alone do not fail).
        --procs N            processors, a perfect square (default 16)
        --procs-per-node N   processors per node (default 2)
        --mem-limit SIZE     per-node limit for the infeasibility prover
                             (default unlimited = prover off)
        --machine FILE       characterization file (default: measure the
                             bundled simulated itanium-2003 cluster)
        --no-fusion          analyze without loop fusion
        --liveness           liveness-aware memory accounting (extension)
        --comm-bounds        also run the communication lower-bound
                             prover: per-node certified bound table
                             (rule comm.lb-certificate, info) and a
                             warning when the memory limit, not the
                             template geometry, dominates the bound
                             (rule comm.limit-dominated)
        --replication        assume the replicate-compute-reduce
                             template is available (shrinks the
                             communication bound)
        --json               machine-readable diagnostics ("tce-lint/1",
                             docs/FORMATS.md) instead of text; exit
                             codes are unchanged

  tcemin opmin <program-file>
      Operation-minimize every multi-factor statement and print the
      binarized sequence with naive/optimal operation counts.

  tcemin validate <program-file> [options]
      Optimize (single-tree programs) and compare the predicted
      communication cost against a brute-force flow simulation of the
      plan on the simulated cluster.  Accepts the same options as plan
      (except --machine: validation needs the simulator itself);
      --trace FILE records the simulated flows as a timeline, and
      --kernel NAME selects the local GEMM kernel as in plan.

  tcemin characterize [options]
      Measure a simulated cluster and print a characterization file.
        --procs N            processors (default 16)
        --procs-per-node N   processors per node (default 2)
        --nic-bw B/S         NIC bandwidth, e.g. 27MB (default 27MB)
        --latency SECONDS    per-message start-up (default 0.06)
        --flops F/S          per-processor flop rate (default 615000000)

  tcemin serve [options]
      Run the planner as a long-lived service (docs/SERVING.md):
      tce-serve/1 requests in (problem JSON), plan JSON +
      OptimizerStats out, with repeats answered from an LRU plan cache
      keyed by a renaming-invariant canonical hash of (tree shape,
      extents, grid, model, memory limit).  Cache hits are
      byte-identical to fresh searches.  Certified-infeasible requests
      are rejected by the lint prover before any search, with the rule
      id and certificate in the reply.  An HTTP `GET /metrics` on the
      same socket answers a Prometheus scrape of the metrics registry.
        --socket PATH        listen on a Unix-domain socket at PATH
        --stdio              serve stdin/stdout instead (tests, pipes)
        --cache-capacity N   LRU plan-cache entries (default 256;
                             0 disables caching)
        --threads N          planner worker threads per search, as in
                             plan (default 0 = all hardware threads)
        --verify-cache       debug mode: re-run the search on every
                             cache hit and fail the request if the
                             cached bytes differ from the fresh ones
        --metrics FILE       write the metrics registry when the
                             daemon exits, as in plan

  tcemin fuzz [options]
      Differentially fuzz the planner: generate random contraction
      programs, machines and memory limits, then cross-check the DP
      optimizer against independent oracles (docs/FUZZING.md).
        --seed N             base seed (default 1); instance i uses
                             seed N+i, so a failure at seed S reproduces
                             alone with --seed S --runs 1
        --runs N             number of random instances (default 100)
        --max-nodes N        max contraction/reduction nodes per tree
                             (default 3; brute-force oracle caps at 3)
        --oracle NAME        all (default), brute, threads, verify,
                             simnet, exec, lint, or commlb
        --no-shrink          report failures without minimizing them

  tcemin help
      Show this text.

exit codes:
    0  success
    1  usage error (unknown command/flag, malformed option value)
    2  no plan fits the memory limit
    3  I/O error (file could not be opened, read or written)
    4  input error (program/machine file failed to parse or is invalid)
    5  plan verification failed (--verify)
    6  fuzzing found an oracle disagreement
    7  internal error
    8  lint found error-severity diagnostics (tcemin lint)

environment:
    TCE_TRACE=FILE      capture a trace-event timeline for any subcommand
    TCE_METRICS=FILE    capture the metrics registry for any subcommand
    TCE_LOG=FILE        append structured tce-log/1 event lines;
                        TCE_LOG_LEVEL=debug|info|warn|error filters
                        the file (default info)
    TCE_KERNEL=NAME     local GEMM kernel (auto | ref | tiled), as
                        --kernel but for every subcommand
    TCE_TILE_MC=N       cache-blocking overrides for both kernels
    TCE_TILE_KC=N       (positive integers in [8, 1048576]); defaults
    TCE_TILE_NC=N       128/256/3072 (docs/KERNELS.md)
    TCE_KERNEL_THREADS=N  worker threads for the tiled GEMM's MC loop
                        (0 = hardware); results are bitwise identical
                        at every setting
    TCE_SERVE_CACHE_CAPACITY=N  default for serve --cache-capacity
    TCE_SERVE_THREADS=N         default for serve --threads
    TCE_SERVE_VERIFY_CACHE=1    as serve --verify-cache

Every run buffers its structured events in an in-memory flight
recorder; on any nonzero exit the buffered tail is dumped to stderr
after the error message (docs/OBSERVABILITY.md).

Program files use the DSL:
    index a, b = 480
    index i = 32
    T[a,b] = sum[i] X[a,i] * Y[i,b]
)";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Applies --kernel NAME (auto | ref | tiled) to the process-wide
/// local-GEMM configuration.  Planning itself never reads it — plans
/// are identical under every setting — but the flag pins the kernel for
/// any numeric execution the command performs and is echoed into
/// metrics/logs.  Malformed names throw KernelUsageError (exit 1).
void apply_kernel_flag(const std::string& name) {
  if (name.empty()) return;
  KernelConfig cfg = kernel_config();
  cfg.kind = parse_kernel_kind(name);
  set_kernel_config(cfg);
}

/// Minimal flag cursor over argv-style arguments.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : args_(std::move(args)) {}

  bool take_flag(const std::string& name) {
    for (auto it = args_.begin(); it != args_.end(); ++it) {
      if (*it == name) {
        args_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::string take_option(const std::string& name,
                          const std::string& fallback) {
    for (auto it = args_.begin(); it != args_.end(); ++it) {
      if (*it == name) {
        auto val = it + 1;
        if (val == args_.end()) {
          throw UsageError("option " + name + " needs a value");
        }
        std::string v = *val;
        args_.erase(it, val + 1);
        return v;
      }
    }
    return fallback;
  }

  /// Takes the next positional argument.
  std::string take_positional(const std::string& what) {
    for (auto it = args_.begin(); it != args_.end(); ++it) {
      if (!it->starts_with("--")) {
        std::string v = *it;
        args_.erase(it);
        return v;
      }
    }
    throw UsageError("missing " + what);
  }

  void expect_empty() const {
    if (!args_.empty()) {
      throw UsageError("unexpected argument '" + args_.front() + "'");
    }
  }

  /// Takes an option that must parse as an unsigned integer (checked:
  /// all digits, no overflow — see tce/common/parse.hpp).
  std::uint64_t take_uint(const std::string& name,
                          const std::string& fallback) {
    const std::string text = take_option(name, fallback);
    const std::optional<std::uint64_t> v = parse_u64(text);
    if (!v.has_value()) {
      throw UsageError("option " + name + " needs a number, got '" +
                       text + "'");
    }
    return *v;
  }

  /// Takes a byte-size option (e.g. "4GB"); empty fallback -> 0.
  std::uint64_t take_size(const std::string& name,
                          const std::string& fallback) {
    const std::string text = take_option(name, fallback);
    if (text.empty()) return 0;
    try {
      return parse_byte_size(text);
    } catch (const Error& e) {
      throw UsageError("option " + name + ": " + e.what());
    }
  }

 private:
  std::vector<std::string> args_;
};

double parse_double_option(const std::string& name,
                           const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw UsageError("option " + name + " needs a number, got '" + text +
                     "'");
  }
}

CharacterizedModel load_or_measure(Args& args, std::uint32_t procs,
                                   std::uint32_t per_node) {
  const std::string machine = args.take_option("--machine", "");
  if (!machine.empty()) {
    std::ifstream in(machine);
    if (!in) throw IoError("cannot open machine file '" + machine + "'");
    CharacterizationTable t = CharacterizationTable::load(in);
    if (t.grid.procs != procs) {
      throw Error("machine file is for " + std::to_string(t.grid.procs) +
                  " processors, but --procs is " + std::to_string(procs));
    }
    return CharacterizedModel(std::move(t));
  }
  const ProcGrid grid = ProcGrid::make(procs, per_node);
  Network net(ClusterSpec::itanium2003(grid.nodes()));
  return CharacterizedModel(characterize(net, grid));
}

/// `--trace FILE`: starts the trace emitter for the command's scope and
/// writes the file when the command finishes (including on error).
/// Does not interfere with a TCE_TRACE env capture already running.
class TraceGuard {
 public:
  explicit TraceGuard(const std::string& path) : started_(!path.empty()) {
    if (started_) obs::trace_start(path);
  }
  ~TraceGuard() {
    if (started_) obs::trace_stop();
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  bool started_;
};

/// `--metrics FILE`: enables the metrics registry for the command's
/// scope and writes the exposition file when the command finishes
/// (including on error, so infeasible runs still leave their numbers).
/// Format follows the extension — see obs::write_metrics_file.
class MetricsGuard {
 public:
  explicit MetricsGuard(std::string path) : path_(std::move(path)) {
    if (path_.empty()) return;
    obs::metrics_reset();
    obs::metrics_enable(true);
  }
  ~MetricsGuard() {
    if (path_.empty()) return;
    std::string err;
    if (!obs::write_metrics_file(path_, &err)) {
      obs::log_event(obs::LogLevel::kError, "cli", "metrics.write_failed",
                     json::ObjectWriter().field("error", err).str());
    }
  }
  MetricsGuard(const MetricsGuard&) = delete;
  MetricsGuard& operator=(const MetricsGuard&) = delete;

 private:
  std::string path_;
};

/// `--verify`: exports \p plan to JSON, reads it back, and re-derives
/// every invariant.  The round trip is deliberate — it checks the codec
/// is lossless for every verifier-checked field, not just the in-memory
/// plan.  Throws with the full diagnostic listing on any violation.
void verify_or_throw(const ContractionTree& tree, const MachineModel& model,
                     const OptimizedPlan& plan,
                     std::uint64_t mem_limit_node_bytes) {
  const OptimizedPlan reread =
      plan_from_json(plan_to_json(plan, tree.space()), tree);
  VerifyOptions opts;
  opts.mem_limit_node_bytes = mem_limit_node_bytes;
  const VerifyReport report = verify_plan(tree, model, reread, opts);
  if (!report.ok()) {
    throw VerifyFailedError("plan verification failed\n" +
                            report.str(tree));
  }
}

/// Renders lint diagnostics in the verifier's one-line style.
std::string render_diagnostics(const std::vector<lint::Diagnostic>& diags) {
  std::string out;
  for (const lint::Diagnostic& d : diags) {
    switch (d.severity) {
      case lint::Severity::kError: out += "  error"; break;
      case lint::Severity::kWarning: out += "  warning"; break;
      case lint::Severity::kInfo: out += "  info"; break;
    }
    if (!d.node.empty()) out += " node=" + d.node;
    out += " rule=" + d.rule + ": " + d.message + "\n";
  }
  return out;
}

/// Converts a first-error-wins validation failure into the batched lint
/// listing when the linter pins down two or more independent structural
/// errors; rethrows the original exception otherwise.  Must be called
/// from inside a catch handler.
[[noreturn]] void rethrow_batched(const ParsedProgram& program) {
  const std::vector<lint::Diagnostic> errs =
      lint::structural_errors(program);
  if (errs.size() < 2) throw;
  throw Error("program has " + std::to_string(errs.size()) +
              " structural errors:\n" + render_diagnostics(errs));
}

/// Renders a LintReport as the stable "tce-lint/1" JSON document
/// (docs/FORMATS.md): every diagnostic with its rule id, plus both
/// machine-readable certificate families.
std::string lint_report_json(const lint::LintReport& report) {
  json::ArrayWriter diags;
  for (const lint::Diagnostic& d : report.diagnostics) {
    const char* sev = d.severity == lint::Severity::kError     ? "error"
                      : d.severity == lint::Severity::kWarning ? "warning"
                                                               : "info";
    diags.element(json::ObjectWriter()
                      .field("severity", sev)
                      .field("node", d.node)
                      .field("rule", d.rule)
                      .field("message", d.message)
                      .str());
  }
  json::ObjectWriter out;
  out.field("schema", "tce-lint/1")
      .field("ok", report.ok())
      .field("rules_checked", report.rules_checked)
      .raw("diagnostics", diags.str());
  if (report.certificate.has_value()) {
    const lint::InfeasibilityCertificate& c = *report.certificate;
    out.raw("mem_certificate",
            json::ObjectWriter()
                .field("rule", "mem.infeasible")
                .field("node", c.node)
                .field("lower_bound_node_bytes", c.lower_bound_node_bytes)
                .field("mem_limit_node_bytes", c.mem_limit_node_bytes)
                .str());
  }
  if (!report.comm_certificates.empty()) {
    json::ArrayWriter certs;
    for (const lint::CommBoundResult& cb : report.comm_certificates) {
      json::ArrayWriter nodes;
      for (const lint::NodeCommBound& nb : cb.nodes) {
        nodes.element(json::ObjectWriter()
                          .field("node", nb.node)
                          .field("lb_words", nb.lb_words)
                          .field("lb_struct_words", nb.lb_struct_words)
                          .field("lb_mem_words", nb.lb_mem_words)
                          .field("limit_dominated", nb.limit_dominated)
                          .str());
      }
      certs.element(json::ObjectWriter()
                        .field("rule", "comm.lb-certificate")
                        .field("root", cb.root)
                        .field("comm_lb_words", cb.root_lb_words)
                        .raw("nodes", nodes.str())
                        .str());
    }
    out.raw("comm_certificates", certs.str());
  }
  return out.str() + "\n";
}

std::string cmd_lint(Args args) {
  const auto procs =
      static_cast<std::uint32_t>(args.take_uint("--procs", "16"));
  const auto per_node =
      static_cast<std::uint32_t>(args.take_uint("--procs-per-node", "2"));
  const std::uint64_t mem_limit = args.take_size("--mem-limit", "");
  const bool no_fusion = args.take_flag("--no-fusion");
  const bool liveness = args.take_flag("--liveness");
  const bool comm_bounds = args.take_flag("--comm-bounds");
  const bool replication = args.take_flag("--replication");
  const bool json_out = args.take_flag("--json");
  CharacterizedModel model = load_or_measure(args, procs, per_node);
  // Positionals are taken only after every option is consumed, so an
  // option value ("--metrics out.prom file.tce") is never mistaken for
  // the program file.
  const std::string path = args.take_positional("program file");
  args.expect_empty();

  const ParsedProgram program = parse_program(read_file(path));
  lint::LintConfig cfg;
  cfg.mem_limit_node_bytes = mem_limit;
  cfg.enable_fusion = !no_fusion;
  cfg.liveness_aware = liveness;
  cfg.comm_bounds = comm_bounds;
  cfg.enable_replication = replication;
  const lint::LintReport report = lint::lint_program(
      program, ProcGrid::make(procs, per_node), &model.table(), cfg);
  const std::string rendered =
      json_out ? lint_report_json(report) : report.str();
  if (!report.ok()) throw LintFindingsError(rendered);
  return rendered;
}

std::string cmd_plan(Args args) {
  const auto procs =
      static_cast<std::uint32_t>(args.take_uint("--procs", "16"));
  const auto per_node =
      static_cast<std::uint32_t>(args.take_uint("--procs-per-node", "2"));
  const std::uint64_t mem_limit = args.take_size("--mem-limit", "");
  const auto threads =
      static_cast<unsigned>(args.take_uint("--threads", "0"));
  const bool no_fusion = args.take_flag("--no-fusion");
  const bool no_redist = args.take_flag("--no-redistribution");
  const bool replication = args.take_flag("--replication");
  const bool liveness = args.take_flag("--liveness");
  const bool pseudocode = args.take_flag("--pseudocode");
  const bool json = args.take_flag("--json");
  const bool verify = args.take_flag("--verify");
  const bool opmin = args.take_flag("--opmin");
  const bool stats = args.take_flag("--stats");
  apply_kernel_flag(args.take_option("--kernel", ""));
  const TraceGuard trace(args.take_option("--trace", ""));
  const MetricsGuard metrics(args.take_option("--metrics", ""));
  if (stats && !obs::metrics_enabled()) {
    obs::metrics_reset();
    obs::metrics_enable(true);
  }
  CharacterizedModel model = load_or_measure(args, procs, per_node);
  const std::string path = args.take_positional("program file");
  args.expect_empty();

  const std::string text = read_file(path);
  ParsedProgram program = parse_program(text);

  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = mem_limit;
  cfg.enable_fusion = !no_fusion;
  cfg.enable_redistribution = !no_redist;
  cfg.enable_replication_template = replication;
  cfg.liveness_aware = liveness;
  cfg.threads = threads;

  // A multi-output program is planned jointly as a forest.  On a
  // validation failure, re-diagnose with the batched linter so every
  // independent structural error is reported, not just the first.
  ContractionForest forest;
  try {
    FormulaSequence seq =
        opmin ? binarize_program(program)
              : to_formula_sequence(program, /*allow_forest=*/true);
    forest = ContractionForest::from_sequence(seq);
  } catch (const Error&) {
    rethrow_batched(program);
  }
  if (forest.trees.size() == 1) {
    const ContractionTree& tree = forest.trees[0];
    const Stopwatch plan_sw;
    OptimizedPlan plan = optimize(tree, model, cfg);
    obs::observe("plan.latency_s", plan_sw.elapsed_s());
    if (verify) {
      verify_or_throw(tree, model, plan, cfg.mem_limit_node_bytes);
    }
    if (json) return plan_to_json(plan, tree.space()) + "\n";
    std::string out = plan.table(tree.space()) + "\n" +
                      plan.summary(tree.space());
    if (stats) {
      out += "\n" + plan.stats.str();
      out += "metrics:\n" + obs::metrics_table();
    }
    if (pseudocode) {
      out += "\n" + generate_pseudocode(tree, plan, model.grid().edge);
    }
    return out;
  }

  const Stopwatch plan_sw;
  ForestPlan fp = optimize_forest(forest, model, cfg);
  obs::observe("plan.latency_s", plan_sw.elapsed_s());
  if (verify) {
    // Forest planning splits the node limit across trees, so each tree
    // is checked against the invariants alone (limit rechecked jointly
    // by the forest optimizer itself).
    for (std::size_t t = 0; t < forest.trees.size(); ++t) {
      verify_or_throw(forest.trees[t], model, fp.plans[t],
                      /*mem_limit_node_bytes=*/0);
    }
  }
  if (json) {
    std::string out = "[";
    for (std::size_t t = 0; t < forest.trees.size(); ++t) {
      if (t != 0) out += ",";
      out += plan_to_json(fp.plans[t], forest.trees[t].space());
    }
    out += "]\n";
    return out;
  }
  std::string out;
  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    const ContractionTree& tree = forest.trees[t];
    out += "output " + tree.node(tree.root()).tensor.name + ":\n";
    out += fp.plans[t].table(tree.space()) + "\n";
    if (pseudocode) {
      out += generate_pseudocode(tree, fp.plans[t], model.grid().edge) +
             "\n";
    }
  }
  out += "total communication: " + fixed(fp.total_comm_s, 1) + " s\n";
  out += "total runtime:       " + fixed(fp.total_runtime_s(), 1) +
         " s (" + fixed(100.0 * fp.comm_fraction(), 1) +
         "% communication)\n";
  out += "memory per node:     " + format_bytes_paper(fp.bytes_per_node) +
         "\n";
  if (stats) {
    for (std::size_t t = 0; t < forest.trees.size(); ++t) {
      out += "\noutput " +
             forest.trees[t].node(forest.trees[t].root()).tensor.name +
             " " + fp.plans[t].stats.str();
    }
    out += "metrics:\n" + obs::metrics_table();
  }
  return out;
}

std::string cmd_opmin(Args args) {
  const std::string path = args.take_positional("program file");
  args.expect_empty();
  ParsedProgram program = parse_program(read_file(path));

  std::string out;
  for (const auto& stmt : program.statements) {
    if (stmt.factors.size() < 3) continue;
    OpMinResult r = minimize_operations(OpMinInput::from_statement(stmt),
                                        program.space);
    out += "statement producing " + stmt.result.name + ":\n";
    out += "  naive:   " + std::to_string(r.naive_flops) + " flops\n";
    out += "  optimal: " + std::to_string(r.flops) + " flops\n";
    out += r.sequence.str();
  }
  if (out.empty()) {
    out = "no multi-factor statements; nothing to binarize\n";
  } else {
    FormulaSequence seq = binarize_program(program);
    out += "full binarized program:\n" + seq.str();
  }
  return out;
}

std::string cmd_validate(Args args) {
  const auto procs =
      static_cast<std::uint32_t>(args.take_uint("--procs", "16"));
  const auto per_node =
      static_cast<std::uint32_t>(args.take_uint("--procs-per-node", "2"));
  const std::uint64_t mem_limit = args.take_size("--mem-limit", "");
  const auto threads =
      static_cast<unsigned>(args.take_uint("--threads", "0"));
  const bool replication = args.take_flag("--replication");
  const bool liveness = args.take_flag("--liveness");
  const bool opmin = args.take_flag("--opmin");
  apply_kernel_flag(args.take_option("--kernel", ""));
  const TraceGuard trace(args.take_option("--trace", ""));
  const std::string path = args.take_positional("program file");
  args.expect_empty();

  const ProcGrid grid = ProcGrid::make(procs, per_node);
  Network net(ClusterSpec::itanium2003(grid.nodes()));
  CharacterizedModel model(characterize(net, grid));

  ParsedProgram program = parse_program(read_file(path));
  FormulaSequence seq = opmin ? binarize_program(program)
                              : to_formula_sequence(program);
  ContractionTree tree = ContractionTree::from_sequence(seq);

  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = mem_limit;
  cfg.enable_replication_template = replication;
  cfg.liveness_aware = liveness;
  cfg.threads = threads;
  OptimizedPlan plan = optimize(tree, model, cfg);

  std::string out;
  double pred_total = 0, sim_total = 0;
  for (const PlanStep& step : plan.steps) {
    const double pred =
        step.rot_left_s + step.rot_right_s + step.rot_result_s;
    const double sim = simulate_step_comm(net, grid, tree, step);
    pred_total += pred;
    sim_total += sim;
    out += step.result_name + ": predicted " + fixed(pred, 2) +
           " s, simulated " + fixed(sim, 2) + " s\n";
  }
  const double err =
      sim_total > 0 ? 100.0 * (pred_total - sim_total) / sim_total : 0.0;
  out += "TOTAL: predicted " + fixed(pred_total, 2) + " s, simulated " +
         fixed(sim_total, 2) + " s (" + fixed(err, 1) + "% error)\n";
  return out;
}

std::string cmd_characterize(Args args) {
  const auto procs =
      static_cast<std::uint32_t>(args.take_uint("--procs", "16"));
  const auto per_node =
      static_cast<std::uint32_t>(args.take_uint("--procs-per-node", "2"));
  const std::uint64_t nic = args.take_size("--nic-bw", "27MB");
  const std::string latency = args.take_option("--latency", "0.06");
  const std::string flops = args.take_option("--flops", "615000000");
  args.expect_empty();

  const ProcGrid grid = ProcGrid::make(procs, per_node);
  ClusterSpec spec;
  spec.nodes = grid.nodes();
  spec.procs_per_node = per_node;
  spec.nic_bw = static_cast<double>(nic);
  spec.mem_bw = spec.nic_bw * 15.0;
  spec.latency_s = parse_double_option("--latency", latency);
  spec.flops_per_proc = parse_double_option("--flops", flops);
  Network net(spec);
  return characterize(net, grid).save_string();
}

/// Checked TCE_SERVE_* numeric environment lookup: unset/empty uses the
/// fallback, garbage fails loudly (exit 1) naming the variable — same
/// policy as kernel.cpp's env_tile/env_threads.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::optional<std::uint64_t> v = parse_u64(raw);
  if (!v.has_value()) {
    throw UsageError(std::string(name) +
                     " must be a non-negative integer, got '" + raw + "'");
  }
  return *v;
}

std::string cmd_serve(Args args) {
  const std::string socket_path = args.take_option("--socket", "");
  const bool stdio = args.take_flag("--stdio");
  const std::uint64_t capacity = args.take_uint(
      "--cache-capacity",
      std::to_string(env_u64("TCE_SERVE_CACHE_CAPACITY", 256)));
  const auto threads = static_cast<unsigned>(
      args.take_uint("--threads",
                     std::to_string(env_u64("TCE_SERVE_THREADS", 0))));
  const bool verify_cache = args.take_flag("--verify-cache") ||
                            env_u64("TCE_SERVE_VERIFY_CACHE", 0) != 0;
  const TraceGuard trace(args.take_option("--trace", ""));
  const MetricsGuard metrics(args.take_option("--metrics", ""));
  args.expect_empty();
  if (stdio == !socket_path.empty()) {
    throw UsageError("serve needs exactly one of --socket PATH or --stdio");
  }

  // The daemon always records metrics: they are a served surface
  // (GET /metrics, the "metrics" op), not just an exit artifact.
  if (!obs::metrics_enabled()) {
    obs::metrics_reset();
    obs::metrics_enable(true);
  }
  serve::ServeOptions opts;
  opts.cache_capacity = static_cast<std::size_t>(capacity);
  opts.threads = threads;
  opts.verify_cache = verify_cache;
  serve::Server server(opts);
  obs::log_event(obs::LogLevel::kInfo, "serve", "start",
                 json::ObjectWriter()
                     .field("cache_capacity", capacity)
                     .field("verify_cache", verify_cache)
                     .field("transport", stdio ? "stdio" : "unix")
                     .str());
  if (stdio) {
    serve::serve_loop(server, std::cin, std::cout);
  } else {
    serve::serve_unix_socket(server, socket_path);
  }
  return "";
}

std::string cmd_fuzz(Args args) {
  fuzz::FuzzOptions opts;
  opts.seed = args.take_uint("--seed", "1");
  opts.runs = static_cast<int>(args.take_uint("--runs", "100"));
  opts.max_nodes = static_cast<int>(args.take_uint("--max-nodes", "3"));
  opts.oracle = args.take_option("--oracle", "all");
  opts.shrink = !args.take_flag("--no-shrink");
  args.expect_empty();
  if (!fuzz::oracle_name_ok(opts.oracle)) {
    throw UsageError("unknown oracle '" + opts.oracle +
                     "'; expected all, brute, threads, verify, simnet, "
                     "exec, lint or commlb");
  }
  const fuzz::FuzzReport report = fuzz::run_fuzz(opts);
  if (!report.failures.empty()) {
    throw fuzz::FuzzDisagreement(report.str());
  }
  return report.str();
}

/// The one shutdown path every CLI exit routes through: logs the
/// terminal event (so the flight recorder is never empty), appends the
/// recorded tail to the stderr text on any nonzero exit, and disarms
/// the recorder.  Early returns and every catch arm in run_cli reach
/// the caller only through here.
CliResult finish_cli(CliResult result) {
  const bool failed = result.exit_code != kExitOk;
  obs::log_event(
      failed ? obs::LogLevel::kError : obs::LogLevel::kInfo, "cli", "exit",
      json::ObjectWriter().field("code", result.exit_code).str());
  if (failed) {
    const std::string tail = obs::flight_recorder_dump();
    if (!tail.empty()) {
      result.error += "flight recorder (tce-log/1, oldest first):\n" + tail;
    }
  }
  obs::flight_recorder_enable(false);
  return result;
}

}  // namespace

std::uint64_t parse_byte_size(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) ||
          text[i] == '.')) {
    ++i;
  }
  if (i == 0) throw Error("bad size '" + text + "'");
  const double value = std::stod(text.substr(0, i));
  std::string suffix(trim(text.substr(i)));
  for (auto& c : suffix) c = static_cast<char>(std::toupper(c));
  double scale = 1;
  if (suffix == "KB") {
    scale = 1e3;
  } else if (suffix == "MB") {
    scale = 1e6;
  } else if (suffix == "GB") {
    scale = 1e9;
  } else if (suffix == "TB") {
    scale = 1e12;
  } else if (!suffix.empty() && suffix != "B") {
    throw Error("bad size suffix '" + suffix + "'");
  }
  if (value < 0) throw Error("negative size");
  // Guard the double->uint64 cast: above ~1.8e19 the conversion is UB.
  if (value * scale >= 18.4e18) {
    throw Error("size '" + text + "' is out of range");
  }
  return static_cast<std::uint64_t>(value * scale);
}

CliResult run_cli(const std::vector<std::string>& args) {
  obs::flight_recorder_clear();
  obs::flight_recorder_enable(true);
  CliResult result;
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      result.output = kUsage;
      return finish_cli(std::move(result));
    }
    const std::string cmd = args[0];
    // Validate TCE_KERNEL / TCE_TILE_* / TCE_KERNEL_THREADS up front so
    // a malformed environment fails loudly on every subcommand, not
    // only on the ones that happen to execute a kernel.
    kernel_config();
    Args rest(std::vector<std::string>(args.begin() + 1, args.end()));
    if (cmd == "plan") {
      result.output = cmd_plan(std::move(rest));
    } else if (cmd == "lint") {
      result.output = cmd_lint(std::move(rest));
    } else if (cmd == "opmin") {
      result.output = cmd_opmin(std::move(rest));
    } else if (cmd == "validate") {
      result.output = cmd_validate(std::move(rest));
    } else if (cmd == "characterize") {
      result.output = cmd_characterize(std::move(rest));
    } else if (cmd == "fuzz") {
      result.output = cmd_fuzz(std::move(rest));
    } else if (cmd == "serve") {
      result.output = cmd_serve(std::move(rest));
    } else {
      throw UsageError("unknown command '" + cmd + "'; try 'tcemin help'");
    }
  } catch (const InfeasibleError& e) {
    result.exit_code = kExitInfeasible;
    result.error = std::string("infeasible: ") + e.what() + "\n";
  } catch (const UsageError& e) {
    result.exit_code = kExitUsage;
    result.error = std::string("error: ") + e.what() + "\n";
  } catch (const KernelUsageError& e) {
    // Malformed --kernel / TCE_KERNEL / TCE_TILE_* settings are usage
    // errors, even though the tensor layer cannot name UsageError.
    result.exit_code = kExitUsage;
    result.error = std::string("error: ") + e.what() + "\n";
  } catch (const IoError& e) {
    result.exit_code = kExitIo;
    result.error = std::string("error: ") + e.what() + "\n";
  } catch (const VerifyFailedError& e) {
    result.exit_code = kExitVerify;
    result.error = std::string("error: ") + e.what() + "\n";
  } catch (const LintFindingsError& e) {
    // The report (diagnostics + summary) is the command's output; the
    // exit code alone signals the failure.
    result.exit_code = kExitLint;
    result.output = e.what();
  } catch (const fuzz::FuzzDisagreement& e) {
    result.exit_code = kExitFuzz;
    result.error = std::string("fuzz: ") + e.what() + "\n";
  } catch (const Error& e) {
    result.exit_code = kExitInput;
    result.error = std::string("error: ") + e.what() + "\n";
  } catch (const ContractViolation& e) {
    result.exit_code = kExitInternal;
    result.error = std::string("internal error: ") + e.what() + "\n";
  } catch (const std::exception& e) {
    result.exit_code = kExitInternal;
    result.error = std::string("internal error: ") + e.what() + "\n";
  }
  return finish_cli(std::move(result));
}

}  // namespace tce
