#pragma once
/// \file canonical.hpp
/// Renaming-invariant canonicalization of planner problems, for the
/// cross-request plan cache (tce/serve/cache.hpp).
///
/// Two requests that differ only in what their index variables and
/// tensors are *called* — or in the order indices were declared — pose
/// the same optimization problem: the DP search sees extents, tree
/// shape and the machine model, never names.  canonicalize_program maps
/// a parsed program onto a canonical spelling in which indices are
/// renamed i0, i1, ... and tensors t0, t1, ... in order of first
/// appearance over a fixed traversal (statements in order; within a
/// statement the result's dimension list, then each factor's dimension
/// list).  Alpha-variants — including programs that declare the same
/// indices in a different order, group declarations differently, or
/// declare extra unused indices — render to byte-identical canonical
/// text and therefore hash to the same cache key, while any change to
/// extents, tree shape or arity changes the text.
///
/// The returned rename table (canonical name → request name) lets the
/// server translate a plan computed for (or cached under) the canonical
/// problem back into the request's vocabulary: plan JSON mentions names
/// only as whole quoted strings, and the canonical alphabet {iN, tN} is
/// disjoint from the schema's enum words ("cannon", "input", ...), so
/// rename_quoted substitutes exactly the name tokens and nothing else.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tce/expr/parser.hpp"

namespace tce::serve {

/// A canonicalized problem: the canonical program text plus the rename
/// table mapping canonical names back to the request's names.
struct CanonicalProblem {
  /// Canonical DSL text: one `index iN = extent` line per used index in
  /// first-appearance order, then the statements with canonical names.
  std::string text;
  /// (canonical name, request name) pairs — indices (iN) and tensors
  /// (tN) together; the two families cannot collide.
  std::vector<std::pair<std::string, std::string>> renames;
};

/// Canonicalizes \p program (see file comment).  Works for any parsed
/// program, forests included; unused declared indices are dropped (they
/// cannot affect a plan).
CanonicalProblem canonicalize_program(const ParsedProgram& program);

/// FNV-1a 64-bit hash of \p text (the cache's key-digest primitive).
std::uint64_t fnv1a64(std::string_view text) noexcept;

/// \p value as 16 lowercase hex digits.
std::string hex64(std::uint64_t value);

/// Replaces every *whole* double-quoted string in \p json that equals a
/// canonical name in \p renames with its request name, leaving all
/// other bytes (numbers included) untouched.  Substitution is
/// single-pass per token, so swap-shaped tables ("i0"→"i1", "i1"→"i0")
/// behave correctly.  Escape sequences inside strings are skipped over,
/// not interpreted — name tokens are plain identifiers.
std::string rename_quoted(
    std::string_view json,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// Replaces every *whole* identifier token ([A-Za-z0-9_]+ runs) in the
/// plain-text \p text that equals a canonical name in \p renames with
/// its request name — the error-message counterpart of rename_quoted,
/// so diagnostics produced from the canonical tree never leak i0/t0
/// names the client did not write.  Single-pass per token, so
/// swap-shaped tables behave correctly.
std::string rename_text(
    std::string_view text,
    const std::vector<std::pair<std::string, std::string>>& renames);

}  // namespace tce::serve
