#include "tce/serve/canonical.hpp"

#include <map>

namespace tce::serve {

namespace {

/// Assigns canonical names in first-appearance order.
class Renamer {
 public:
  explicit Renamer(char prefix) : prefix_(prefix) {}

  const std::string& canonical(const std::string& request_name) {
    auto it = map_.find(request_name);
    if (it == map_.end()) {
      it = map_.emplace(request_name,
                        prefix_ + std::to_string(map_.size()))
               .first;
      order_.emplace_back(it->second, request_name);
    }
    return it->second;
  }

  /// True when \p request_name has been assigned already.
  bool seen(const std::string& request_name) const {
    return map_.contains(request_name);
  }

  /// (canonical, request) pairs, in assignment order.
  void append_renames(
      std::vector<std::pair<std::string, std::string>>& out) const {
    out.insert(out.end(), order_.begin(), order_.end());
  }

 private:
  char prefix_;
  std::map<std::string, std::string> map_;
  /// (canonical, request) in the order canonical names were handed out,
  /// so append_renames honours its assignment-order contract.
  std::vector<std::pair<std::string, std::string>> order_;
};

}  // namespace

CanonicalProblem canonicalize_program(const ParsedProgram& program) {
  Renamer indices('i');
  Renamer tensors('t');
  const IndexSpace& space = program.space;

  // First pass assigns names over the fixed traversal and remembers
  // each index's extent at first appearance.
  std::vector<std::pair<std::string, std::uint64_t>> decls;
  auto visit_index = [&](IndexId id) {
    const std::string& name = space.name(id);
    if (!indices.seen(name)) {
      decls.emplace_back(indices.canonical(name), space.extent(id));
    }
  };
  for (const ParsedStatement& stmt : program.statements) {
    tensors.canonical(stmt.result.name);
    for (IndexId id : stmt.result.dims) visit_index(id);
    for (const TensorRef& factor : stmt.factors) {
      tensors.canonical(factor.name);
      for (IndexId id : factor.dims) visit_index(id);
    }
  }

  // Second pass renders the canonical text.  The sum[...] list is
  // rendered in canonical-name numeric order (IndexSet has no order of
  // its own, and request declaration order must not leak into the
  // canonical bytes); canonical index names sort correctly as numbers
  // because they are generated densely from 0 and compared below by
  // their numeric suffix position in the decls list.
  CanonicalProblem out;
  for (const auto& [name, extent] : decls) {
    out.text += "index " + name + " = " + std::to_string(extent) + "\n";
  }
  auto render_tensor = [&](const TensorRef& ref) {
    std::string t = tensors.canonical(ref.name) + "[";
    for (std::size_t i = 0; i < ref.dims.size(); ++i) {
      if (i != 0) t += ",";
      t += indices.canonical(space.name(ref.dims[i]));
    }
    return t + "]";
  };
  for (const ParsedStatement& stmt : program.statements) {
    out.text += render_tensor(stmt.result) + " =";
    if (!stmt.sum_indices.empty()) {
      // Order the sum set by canonical assignment: map each member to
      // its canonical name, then sort by the dense numeric suffix.
      std::map<std::uint64_t, std::string> ordered;
      for (IndexId id : stmt.sum_indices) {
        const std::string& canon = indices.canonical(space.name(id));
        ordered.emplace(std::stoull(canon.substr(1)), canon);
      }
      out.text += " sum[";
      bool first = true;
      for (const auto& entry : ordered) {
        if (!first) out.text += ",";
        out.text += entry.second;
        first = false;
      }
      out.text += "]";
    }
    for (std::size_t f = 0; f < stmt.factors.size(); ++f) {
      out.text += f == 0 ? " " : " * ";
      out.text += render_tensor(stmt.factors[f]);
    }
    out.text += "\n";
  }

  indices.append_renames(out.renames);
  tensors.append_renames(out.renames);
  return out;
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string hex64(std::uint64_t value) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[value & 0xF];
    value >>= 4;
  }
  return out;
}

namespace {

bool ident_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

std::string rename_text(
    std::string_view text,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  std::map<std::string_view, const std::string*> table;
  for (const auto& [canon, request] : renames) {
    table.emplace(canon, &request);
  }
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (!ident_char(text[i])) {
      out += text[i];
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < text.size() && ident_char(text[j])) ++j;
    const std::string_view token = text.substr(i, j - i);
    const auto it = table.find(token);
    if (it != table.end()) {
      out += *it->second;
    } else {
      out += token;
    }
    i = j;
  }
  return out;
}

std::string rename_quoted(
    std::string_view json,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  std::map<std::string_view, const std::string*> table;
  for (const auto& [canon, request] : renames) {
    table.emplace(canon, &request);
  }
  std::string out;
  out.reserve(json.size());
  std::size_t i = 0;
  while (i < json.size()) {
    const char c = json[i];
    if (c != '"') {
      out += c;
      ++i;
      continue;
    }
    // Scan the quoted string (skipping escapes) to find its end.
    std::size_t j = i + 1;
    bool escaped = false;
    while (j < json.size() && (escaped || json[j] != '"')) {
      escaped = !escaped && json[j] == '\\';
      ++j;
    }
    // j is the closing quote (or end of malformed input).
    const std::string_view body = json.substr(i + 1, j - (i + 1));
    const auto it = table.find(body);
    out += '"';
    if (it != table.end()) {
      out += *it->second;
    } else {
      out += body;
    }
    out += '"';
    i = j < json.size() ? j + 1 : j;
  }
  return out;
}

}  // namespace tce::serve
