#pragma once
/// \file cache.hpp
/// The cross-request plan cache of the `tcemin serve` daemon.
///
/// Keys are the full canonical key strings built by the server
/// (canonical program text + grid + memory limit + optimizer flags +
/// model fingerprint — see docs/SERVING.md); values are the plan JSON
/// computed for the *canonical* problem.  Storing canonical-space plans
/// is what makes alpha-renamed requests share one entry: the server
/// renames the cached JSON into each request's vocabulary on the way
/// out, so a hit and a fresh search produce byte-identical replies by
/// construction (both render the same canonical bytes through the same
/// rename table).
///
/// Eviction is strict LRU over a fixed entry capacity.  Lookups and
/// inserts are O(1) amortized (hash map over intrusive list) and
/// thread-safe behind one mutex — the critical section moves strings
/// and splices list nodes only, never plans or searches.  Hit / miss /
/// eviction totals are kept locally (exact, monotone) and mirrored into
/// the metrics registry as serve.cache.{hit,miss,evict} counters when
/// metrics are enabled.

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "tce/common/annotations.hpp"

namespace tce::serve {

/// LRU map from canonical key strings to canonical plan JSON.
class PlanCache {
 public:
  /// \p capacity = max resident entries; 0 disables caching entirely
  /// (every lookup misses, inserts are dropped).
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached plan JSON and refreshes the entry's recency;
  /// std::nullopt on miss.  Counts serve.cache.hit / serve.cache.miss.
  std::optional<std::string> get(const std::string& key);

  /// Inserts (or refreshes) \p key → \p plan_json, evicting the least
  /// recently used entry when over capacity (serve.cache.evict).
  void put(const std::string& key, std::string plan_json);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    std::string plan_json;
  };

  std::size_t capacity_;
  mutable Mutex mu_;
  /// Most recently used at the front.
  std::list<Entry> lru_ TCE_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      TCE_GUARDED_BY(mu_);
  std::uint64_t hits_ TCE_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ TCE_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ TCE_GUARDED_BY(mu_) = 0;
};

}  // namespace tce::serve
