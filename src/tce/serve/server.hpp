#pragma once
/// \file server.hpp
/// Planner-as-a-service: the long-running request loop behind
/// `tcemin serve` (docs/SERVING.md).
///
/// A Server turns `tce-serve/1` request documents (problem JSON in)
/// into reply documents (plan JSON + OptimizerStats out), answering
/// repeats from the cross-request PlanCache:
///
///   1. the request program is parsed and canonicalized
///      (tce/serve/canonical.hpp) into a renaming-invariant key over
///      (tree shape, extents, grid, model curves, memory limit,
///      optimizer flags);
///   2. a cache hit returns the stored canonical plan, renamed into
///      the request's vocabulary — byte-identical to what a fresh
///      search would reply, because misses travel the same
///      canonical-solve + rename path before being stored;
///   3. a miss first passes admission control — the lint memory
///      prover (tce/lint) rejects certified-infeasible requests with
///      the rule id and machine-readable certificate *before* any
///      search is spent — then runs the §3 DP (on the shared thread
///      pool, OptimizerConfig::threads) and stores the result.
///
/// handle() is thread-safe: concurrent requests share the cache and
/// model table behind mutexes while their searches batch onto the
/// process-wide pool.  The request loops (stdio for tests and pipes, a
/// Unix-domain socket for daemons, with an HTTP `GET /metrics`
/// Prometheus scrape escape hatch) live in this header too; framing is
/// length-prefixed JSONL (docs/FORMATS.md, "tce-serve/1").

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "tce/common/annotations.hpp"
#include "tce/costmodel/characterization.hpp"
#include "tce/serve/cache.hpp"

namespace tce::serve {

/// Daemon knobs (CLI flags / TCE_SERVE_* env; docs/SERVING.md).
struct ServeOptions {
  /// Plan-cache capacity in entries (TCE_SERVE_CACHE_CAPACITY).
  std::size_t cache_capacity = 256;
  /// Planner threads per search, as OptimizerConfig::threads
  /// (TCE_SERVE_THREADS): 0 = all hardware threads, 1 = sequential.
  unsigned threads = 0;
  /// Debug mode (--verify-cache / TCE_SERVE_VERIFY_CACHE=1): every
  /// cache hit re-runs the full search and fails the request if the
  /// cached bytes differ from the fresh ones.  Expensive by design —
  /// it exists to *prove* hit/fresh byte-identity under suspicion.
  bool verify_cache = false;
};

/// One serving instance: plan cache + model table + counters.
class Server {
 public:
  explicit Server(ServeOptions options);

  /// Handles one tce-serve/1 request document and returns the reply
  /// document (no trailing newline).  Never throws: every failure
  /// becomes an `"ok":false` reply with a stable error code.
  std::string handle(const std::string& request_json);

  /// True once a "shutdown" request has been accepted.
  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  const ServeOptions& options() const noexcept { return options_; }
  PlanCache& cache() noexcept { return cache_; }

 private:
  std::string handle_plan(const struct PlanRequest& req);
  /// The post-canonicalization half of handle_plan: cache lookup,
  /// admission control, search.  Errors it throws may carry canonical
  /// names; handle_plan renames them back before they escape.
  std::string plan_canonical(const struct PlanRequest& req,
                             const struct CanonicalProblem& canon);
  std::shared_ptr<const CharacterizedModel> model_for(
      const std::string& machine_text, std::uint32_t procs,
      std::uint32_t per_node, std::string* fingerprint);

  ServeOptions options_;
  PlanCache cache_;
  std::atomic<bool> shutdown_{false};
  Mutex model_mu_;
  /// fingerprint → model; characterizing the bundled cluster (or
  /// loading a request-supplied table) happens once per fingerprint.
  std::map<std::string, std::shared_ptr<const CharacterizedModel>>
      models_ TCE_GUARDED_BY(model_mu_);
};

/// Drives \p server over one request stream until EOF, a shutdown
/// request, or a Prometheus scrape (which answers and ends the
/// stream).  Frames: `<decimal length>\n<payload>\n`, or bare JSONL
/// lines starting with `{` — replies mirror the request's framing.
/// Returns the CLI exit code (0 on clean EOF/shutdown).
int serve_loop(Server& server, std::istream& in, std::ostream& out);

/// Binds a Unix-domain stream socket at \p path (replacing any stale
/// socket file) and serves until a shutdown request; each connection
/// runs serve_loop on its own thread while searches share the process
/// pool.  Throws IoError when the socket cannot be created or bound.
/// Returns the CLI exit code.
int serve_unix_socket(Server& server, const std::string& path);

}  // namespace tce::serve
