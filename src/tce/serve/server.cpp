#include "tce/serve/server.hpp"

#include <cerrno>
#include <cstring>
#include <istream>
#include <list>
#include <memory>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "tce/common/error.hpp"
#include "tce/common/json.hpp"
#include "tce/common/parse.hpp"
#include "tce/common/timer.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/core/plan_json.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"
#include "tce/lint/lint.hpp"
#include "tce/obs/exporters.hpp"
#include "tce/obs/log.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/serve/canonical.hpp"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace tce::serve {

/// One decoded "plan" request (docs/FORMATS.md, tce-serve/1).
struct PlanRequest {
  std::string id;
  std::string program;
  std::uint32_t procs = 16;
  std::uint32_t per_node = 2;
  std::uint64_t mem_limit_bytes = 0;
  bool fusion = true;
  bool redistribution = true;
  bool replication = false;
  bool liveness = false;
  /// Characterization-file text; empty = measure the bundled simulated
  /// itanium-2003 cluster for the requested grid.
  std::string machine;
};

namespace {

constexpr const char* kSchema = "tce-serve/1";
/// Largest accepted length-prefixed frame.
constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;
/// Resident model table cap (each entry owns seven cost curves; the
/// table is cleared wholesale when a request-supplied machine churn
/// would otherwise grow it without bound).
constexpr std::size_t kMaxResidentModels = 64;

/// Malformed request *documents* (bad JSON, wrong types, unknown op) —
/// reply code "usage", as distinct from problems with the contraction
/// program itself (tce::Error → "input").
class RequestError : public Error {
 public:
  using Error::Error;
};

/// TCE_SERVE_VERIFY_CACHE found a cached plan whose bytes differ from a
/// fresh search — a serving bug by definition, reply code "internal".
class VerifyCacheError : public Error {
 public:
  using Error::Error;
};

std::string get_string(const json::Value& doc, const char* key,
                       const std::string& fallback) {
  const json::Value* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (v->kind == json::Value::Kind::kString) return v->string;
  if (v->kind == json::Value::Kind::kNumber && v->is_integer) {
    return std::to_string(v->integer);  // numeric request ids are fine
  }
  throw RequestError(std::string("request field '") + key +
                     "' must be a string");
}

std::uint64_t get_u64(const json::Value& doc, const char* key,
                      std::uint64_t fallback) {
  const json::Value* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != json::Value::Kind::kNumber || !v->is_integer) {
    throw RequestError(std::string("request field '") + key +
                       "' must be a non-negative integer");
  }
  return v->integer;
}

std::uint32_t get_u32(const json::Value& doc, const char* key,
                      std::uint32_t fallback) {
  const std::uint64_t v = get_u64(doc, key, fallback);
  if (v > UINT32_MAX) {
    throw RequestError(std::string("request field '") + key +
                       "' is out of range");
  }
  return static_cast<std::uint32_t>(v);
}

bool get_bool(const json::Value& doc, const char* key, bool fallback) {
  const json::Value* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != json::Value::Kind::kBool) {
    throw RequestError(std::string("request field '") + key +
                       "' must be a boolean");
  }
  return v->boolean;
}

/// The shared reply envelope prefix: schema, ok, op, and the echoed id.
json::ObjectWriter reply_base(bool ok, const std::string& op,
                              const std::string& id) {
  json::ObjectWriter out;
  out.field("schema", kSchema).field("ok", ok).field("op", op);
  if (!id.empty()) out.field("id", id);
  return out;
}

std::string error_reply(const std::string& op, const std::string& id,
                        const char* code, const std::string& message,
                        const std::string& rule = std::string(),
                        const std::string& certificate_raw = std::string()) {
  json::ObjectWriter err;
  err.field("code", code);
  if (!rule.empty()) err.field("rule", rule);
  err.field("message", message);
  if (!certificate_raw.empty()) err.raw("certificate", certificate_raw);
  json::ObjectWriter out = reply_base(false, op, id);
  out.raw("error", err.str());
  return out.str();
}

/// Canonical name → request name (identity for names outside the
/// table, e.g. when the prover blames a node the request also calls t0).
const std::string& rename_back(
    const std::string& canonical,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  for (const auto& [canon, request] : renames) {
    if (canon == canonical) return request;
  }
  return canonical;
}

ContractionTree build_canonical_tree(const std::string& canonical_text) {
  const ParsedProgram program = parse_program(canonical_text);
  // Single-output programs only: a forest has no single plan document
  // to cache (to_formula_sequence without allow_forest rejects it with
  // an explanatory Error → reply code "input").
  return ContractionTree::from_sequence(to_formula_sequence(program));
}

OptimizerConfig optimizer_config(const PlanRequest& req, unsigned threads) {
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = req.mem_limit_bytes;
  cfg.enable_fusion = req.fusion;
  cfg.enable_redistribution = req.redistribution;
  cfg.enable_replication_template = req.replication;
  cfg.liveness_aware = req.liveness;
  cfg.threads = threads;
  return cfg;
}

/// Runs the search on the canonical tree and renders the canonical plan
/// JSON.  Wall-clock stats (search_wall_s, per-node wall_s) are zeroed
/// first: they are the only nondeterministic bytes in the plan document,
/// and the serve contract is that a cache hit is byte-identical to a
/// fresh search — timing lives in the serve.request_s histograms
/// instead (docs/SERVING.md).
std::string solve_canonical(const ContractionTree& tree,
                            const CharacterizedModel& model,
                            const PlanRequest& req, unsigned threads) {
  OptimizedPlan plan = optimize(tree, model, optimizer_config(req, threads));
  plan.stats.search_wall_s = 0;
  for (NodeSearchStats& n : plan.stats.nodes) n.wall_s = 0;
  return plan_to_json(plan, tree.space());
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(options), cache_(options.cache_capacity) {}

std::shared_ptr<const CharacterizedModel> Server::model_for(
    const std::string& machine_text, std::uint32_t procs,
    std::uint32_t per_node, std::string* fingerprint) {
  // The fingerprint is part of the cache key: it must pin the *curves*,
  // so request-supplied tables carry their full text verbatim (FNV-1a
  // is not collision-resistant, and two colliding tables must never
  // share a resident model or a plan-cache fingerprint — this mirrors
  // how the canonical program text is used verbatim as the cache key)
  // while the bundled cluster, a pure function of the grid, is named by
  // the grid alone.  The compact hex digest echoed in replies is
  // derived from the whole cache key afterwards.
  std::string key;
  if (machine_text.empty()) {
    key = "itanium2003/" + std::to_string(procs) + "/" +
          std::to_string(per_node);
  } else {
    key = "table/";
    key += machine_text;
  }
  *fingerprint = key;

  MutexLock lock(model_mu_);
  const auto it = models_.find(key);
  if (it != models_.end()) return it->second;
  std::shared_ptr<const CharacterizedModel> model;
  if (machine_text.empty()) {
    const ProcGrid grid = ProcGrid::make(procs, per_node);
    ClusterSpec spec = ClusterSpec::itanium2003(grid.nodes());
    spec.procs_per_node = per_node;
    Network net(spec);
    model = std::make_shared<const CharacterizedModel>(
        characterize(net, grid));
  } else {
    CharacterizationTable table =
        CharacterizationTable::load_string(machine_text);
    if (table.grid.procs != procs) {
      throw Error("machine table is for " +
                  std::to_string(table.grid.procs) +
                  " processors, but the request asks for " +
                  std::to_string(procs));
    }
    model = std::make_shared<const CharacterizedModel>(std::move(table));
  }
  if (models_.size() >= kMaxResidentModels) models_.clear();
  models_.emplace(key, model);
  return model;
}

std::string Server::handle_plan(const PlanRequest& req) {
  const ParsedProgram program = parse_program(req.program);
  const CanonicalProblem canon = canonicalize_program(program);
  // Errors raised past this point — InfeasibleError from the DP search,
  // parse/validation errors from the canonical tree — may be phrased in
  // canonical names (t0, i0) the client never wrote: translate them
  // back into the request's vocabulary before they escape.  (The
  // admission-control path renames its certificate via rename_back.)
  try {
    return plan_canonical(req, canon);
  } catch (const VerifyCacheError&) {
    throw;  // names only the key digest — nothing to rename
  } catch (const InfeasibleError& e) {
    throw InfeasibleError(rename_text(e.what(), canon.renames));
  } catch (const Error& e) {
    // Collapses Error subtypes, which is fine: handle() maps every
    // subtype that can reach here to the same "input" reply code.
    throw Error(rename_text(e.what(), canon.renames));
  }
}

std::string Server::plan_canonical(const PlanRequest& req,
                                   const CanonicalProblem& canon) {
  std::string fingerprint;
  const std::shared_ptr<const CharacterizedModel> model =
      model_for(req.machine, req.procs, req.per_node, &fingerprint);

  // The full key: canonical program text plus everything else the
  // search depends on.  OptimizerConfig::threads is deliberately
  // absent — plans are identical at every thread count (see
  // optimizer.hpp), so a daemon restarted with different parallelism
  // still hits.  The cache map keys on the whole string; the 64-bit
  // digest is only the compact name echoed in replies and logs.
  std::string key = canon.text;
  key += "procs=" + std::to_string(req.procs);
  key += " ppn=" + std::to_string(req.per_node);
  key += " mem=" + std::to_string(req.mem_limit_bytes);
  key += " fusion=" + std::to_string(req.fusion ? 1 : 0);
  key += " redist=" + std::to_string(req.redistribution ? 1 : 0);
  key += " repl=" + std::to_string(req.replication ? 1 : 0);
  key += " live=" + std::to_string(req.liveness ? 1 : 0);
  key += " model=" + fingerprint;
  const std::string digest = hex64(fnv1a64(key));

  const Stopwatch sw;
  const std::optional<std::string> cached = cache_.get(key);
  if (cached.has_value()) {
    if (options_.verify_cache) {
      const ContractionTree tree = build_canonical_tree(canon.text);
      const std::string fresh =
          solve_canonical(tree, *model, req, options_.threads);
      if (fresh != *cached) {
        obs::count("serve.verify.mismatch");
        obs::log_event(obs::LogLevel::kError, "serve",
                       "verify_cache.mismatch",
                       json::ObjectWriter().field("key", digest).str());
        throw VerifyCacheError(
            "cached plan differs from a fresh search for key " + digest +
            " (cached " + std::to_string(cached->size()) + " bytes, fresh " +
            std::to_string(fresh.size()) + " bytes)");
      }
      obs::count("serve.verify.ok");
    }
    const std::string plan = rename_quoted(*cached, canon.renames);
    obs::observe("serve.request.hit_s", sw.elapsed_s());
    json::ObjectWriter out = reply_base(true, "plan", req.id);
    out.field("cache", "hit").field("key", digest).raw("plan", plan);
    return out.str();
  }

  const ContractionTree tree = build_canonical_tree(canon.text);

  // Admission control: before spending a search, ask the lint prover
  // whether the memory limit is *certifiably* unsatisfiable.  A
  // certificate short-circuits the request with the rule id and the
  // binding node (translated back into the request's vocabulary).
  if (req.mem_limit_bytes > 0) {
    lint::LintConfig lcfg;
    lcfg.mem_limit_node_bytes = req.mem_limit_bytes;
    lcfg.enable_fusion = req.fusion;
    lcfg.liveness_aware = req.liveness;
    const std::optional<lint::InfeasibilityCertificate> cert =
        lint::prove_infeasible(tree, model->grid(), lcfg);
    if (cert.has_value()) {
      obs::count("serve.rejected");
      const std::string node = rename_back(cert->node, canon.renames);
      obs::log_event(obs::LogLevel::kWarn, "serve", "admission.reject",
                     json::ObjectWriter()
                         .field("key", digest)
                         .field("node", node)
                         .field("lower_bound_node_bytes",
                                cert->lower_bound_node_bytes)
                         .str());
      return error_reply(
          "plan", req.id, "infeasible",
          "rejected before search: no plan can satisfy the per-node "
          "memory limit (binding node " +
              node + ", certified lower bound " +
              std::to_string(cert->lower_bound_node_bytes) + " > limit " +
              std::to_string(cert->mem_limit_node_bytes) + " bytes)",
          "mem.infeasible",
          json::ObjectWriter()
              .field("node", node)
              .field("lower_bound_node_bytes", cert->lower_bound_node_bytes)
              .field("mem_limit_node_bytes", cert->mem_limit_node_bytes)
              .str());
    }
  }

  const std::string canonical_plan =
      solve_canonical(tree, *model, req, options_.threads);
  cache_.put(key, canonical_plan);
  obs::gauge("serve.cache.size", static_cast<double>(cache_.size()));
  const std::string plan = rename_quoted(canonical_plan, canon.renames);
  obs::observe("serve.request.miss_s", sw.elapsed_s());
  json::ObjectWriter out = reply_base(true, "plan", req.id);
  out.field("cache", "miss").field("key", digest).raw("plan", plan);
  return out.str();
}

std::string Server::handle(const std::string& request_json) {
  const Stopwatch sw;
  obs::count("serve.requests");
  std::string op = "plan";
  std::string id;
  std::string reply;
  try {
    json::Value doc;
    try {
      doc = json::parse(request_json);
    } catch (const Error& e) {
      throw RequestError(std::string("malformed request JSON: ") + e.what());
    }
    if (doc.kind != json::Value::Kind::kObject) {
      throw RequestError("request must be a JSON object");
    }
    if (const json::Value* s = doc.find("schema")) {
      if (s->kind != json::Value::Kind::kString || s->string != kSchema) {
        throw RequestError(std::string("unsupported schema; expected \"") +
                           kSchema + "\"");
      }
    }
    id = get_string(doc, "id", "");
    op = get_string(doc, "op", "plan");
    if (op == "plan") {
      PlanRequest req;
      req.id = id;
      const json::Value* prog = doc.find("program");
      if (prog == nullptr || prog->kind != json::Value::Kind::kString ||
          prog->string.empty()) {
        throw RequestError(
            "request field 'program' (the contraction program text) is "
            "required");
      }
      req.program = prog->string;
      req.procs = get_u32(doc, "procs", req.procs);
      req.per_node = get_u32(doc, "procs_per_node", req.per_node);
      req.mem_limit_bytes =
          get_u64(doc, "mem_limit_bytes", req.mem_limit_bytes);
      req.fusion = get_bool(doc, "fusion", req.fusion);
      req.redistribution = get_bool(doc, "redistribution",
                                    req.redistribution);
      req.replication = get_bool(doc, "replication", req.replication);
      req.liveness = get_bool(doc, "liveness", req.liveness);
      req.machine = get_string(doc, "machine", "");
      reply = handle_plan(req);
    } else if (op == "ping") {
      json::ObjectWriter out = reply_base(true, op, id);
      out.raw("cache", json::ObjectWriter()
                           .field("size", cache_.size())
                           .field("capacity", cache_.capacity())
                           .field("hits", cache_.hits())
                           .field("misses", cache_.misses())
                           .field("evictions", cache_.evictions())
                           .str());
      reply = out.str();
    } else if (op == "metrics") {
      json::ObjectWriter out = reply_base(true, op, id);
      out.raw("metrics", obs::metrics_json());
      reply = out.str();
    } else if (op == "shutdown") {
      shutdown_.store(true, std::memory_order_relaxed);
      obs::log_event(obs::LogLevel::kInfo, "serve", "shutdown", "");
      reply = reply_base(true, op, id).str();
    } else {
      throw RequestError("unknown op '" + op +
                         "'; expected plan, ping, metrics or shutdown");
    }
  } catch (const RequestError& e) {
    obs::count("serve.errors");
    reply = error_reply(op, id, "usage", e.what());
  } catch (const VerifyCacheError& e) {
    obs::count("serve.errors");
    reply = error_reply(op, id, "internal", e.what(), "serve.verify-cache");
  } catch (const InfeasibleError& e) {
    // The DP exhausted the search under the limit without the prover
    // having certified it upfront — infeasible, but with no certificate.
    obs::count("serve.infeasible");
    reply = error_reply(op, id, "infeasible", e.what());
  } catch (const Error& e) {
    obs::count("serve.errors");
    reply = error_reply(op, id, "input", e.what());
  } catch (const std::exception& e) {
    obs::count("serve.errors");
    reply = error_reply(op, id, "internal", e.what());
  }
  obs::observe("serve.request_s", sw.elapsed_s());
  return reply;
}

int serve_loop(Server& server, std::istream& in, std::ostream& out) {
  std::string line;
  while (!server.shutdown_requested() && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.starts_with("GET ")) {
      // A Prometheus scrape (or curl --unix-socket).  Drain the request
      // headers, answer with plain HTTP, and end the stream — scrape
      // connections are one-shot.
      std::string header;
      while (std::getline(in, header) && !header.empty() &&
             header != "\r") {
      }
      const bool metrics = line.starts_with("GET /metrics");
      const std::string body =
          metrics ? obs::metrics_prometheus() : std::string("not found\n");
      out << "HTTP/1.0 " << (metrics ? "200 OK" : "404 Not Found")
          << "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
          << "\r\nContent-Length: " << body.size()
          << "\r\nConnection: close\r\n\r\n"
          << body;
      out.flush();
      return 0;
    }
    std::string payload;
    bool framed = false;
    if (line[0] == '{') {
      payload = line;  // bare JSONL
    } else {
      // Length-prefixed frame: this line is the decimal payload size.
      const std::optional<std::uint64_t> len =
          parse_u64_in(line, 1, kMaxFrameBytes);
      if (!len.has_value()) {
        out << error_reply("", "", "usage",
                           "bad frame: expected a decimal payload length "
                           "or a JSON object line, got '" +
                               line + "'")
            << "\n";
        out.flush();
        return 0;  // framing is desynchronized; close the stream
      }
      framed = true;
      payload.resize(static_cast<std::size_t>(*len));
      in.read(payload.data(), static_cast<std::streamsize>(*len));
      if (static_cast<std::uint64_t>(in.gcount()) != *len) {
        out << error_reply("", "", "usage",
                           "bad frame: stream ended inside a payload of " +
                               std::to_string(*len) + " bytes")
            << "\n";
        out.flush();
        return 0;
      }
      // Consume the payload's trailing newline (tolerating \r\n).
      int c = in.get();
      if (c == '\r') c = in.get();
      if (c != '\n' && c != std::char_traits<char>::eof()) in.unget();
    }
    const std::string reply = server.handle(payload);
    if (framed) {
      out << reply.size() << "\n" << reply << "\n";
    } else {
      out << reply << "\n";
    }
    out.flush();
  }
  return 0;
}

#ifndef _WIN32

namespace {

/// Minimal read/write streambuf over a connected socket fd, so the
/// socket path reuses serve_loop verbatim.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, in_, sizeof(in_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_put() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_put(); }

 private:
  int flush_put() {
    const char* p = pbase();
    std::size_t left = static_cast<std::size_t>(pptr() - pbase());
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace

int serve_unix_socket(Server& server, const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw IoError("socket path '" + path + "' is empty or too long (max " +
                  std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw IoError(std::string("cannot create unix socket: ") +
                  std::strerror(errno));
  }
  ::unlink(path.c_str());  // replace a stale socket file from a dead daemon
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    throw IoError("cannot listen on '" + path + "': " + why);
  }
  obs::log_event(obs::LogLevel::kInfo, "serve", "listening",
                 json::ObjectWriter().field("socket", path).str());

  struct Conn {
    std::thread thread;
    int fd;
    /// Set by the handler thread as its last action, so the accept loop
    /// can join-and-close without blocking on a live connection.
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::list<Conn> conns;
  // Join the threads of connections whose serve_loop has returned and
  // close their fds.  Called on every accept-loop wakeup (the 200 ms
  // poll timeout bounds staleness): scrape connections are one-shot by
  // design, so without reaping a long-lived daemon would leak one fd
  // plus one thread stack per scrape until accept() dies with EMFILE.
  const auto reap = [&conns] {
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        ::close(it->fd);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  };
  while (!server.shutdown_requested()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    // The poll timeout bounds how stale a shutdown can go unnoticed
    // when no new connection arrives to deliver it.
    const int r = ::poll(&pfd, 1, 200);
    if (r < 0 && errno != EINTR) break;
    reap();
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    obs::count("serve.connections");
    auto done = std::make_shared<std::atomic<bool>>(false);
    conns.push_back(Conn{std::thread([&server, fd, done] {
                           FdStreamBuf buf(fd);
                           std::istream in(&buf);
                           std::ostream out(&buf);
                           serve_loop(server, in, out);
                           ::shutdown(fd, SHUT_RDWR);
                           done->store(true, std::memory_order_release);
                         }),
                         fd, done});
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  for (Conn& c : conns) {
    // Unblock any connection still parked in read(); the fd itself is
    // closed only after the join, so the descriptor cannot be reused
    // under a live thread.
    ::shutdown(c.fd, SHUT_RDWR);
    c.thread.join();
    ::close(c.fd);
  }
  obs::log_event(obs::LogLevel::kInfo, "serve", "stopped", "");
  return 0;
}

#else  // _WIN32

int serve_unix_socket(Server&, const std::string&) {
  throw IoError(
      "unix-domain sockets are unavailable on this platform; use --stdio");
}

#endif

}  // namespace tce::serve
