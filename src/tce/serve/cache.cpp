#include "tce/serve/cache.hpp"

#include "tce/obs/metrics.hpp"

namespace tce::serve {

std::optional<std::string> PlanCache::get(const std::string& key) {
  {
    MutexLock lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      std::string plan = it->second->plan_json;
      obs::count("serve.cache.hit");
      return plan;
    }
    ++misses_;
  }
  obs::count("serve.cache.miss");
  return std::nullopt;
}

void PlanCache::put(const std::string& key, std::string plan_json) {
  if (capacity_ == 0) return;
  std::uint64_t evicted = 0;
  {
    MutexLock lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      // Refresh: same canonical problem solved concurrently by two
      // requests — the plans are identical (the search is
      // deterministic), keep the newer bytes and the recency bump.
      it->second->plan_json = std::move(plan_json);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(Entry{key, std::move(plan_json)});
    index_.emplace(key, lru_.begin());
    while (index_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
      ++evicted;
    }
  }
  if (evicted > 0) obs::count("serve.cache.evict", evicted);
}

std::size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return index_.size();
}

std::uint64_t PlanCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

std::uint64_t PlanCache::evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

}  // namespace tce::serve
