// Tests for tce/serve: renaming-invariant canonicalization, the LRU
// plan cache, the tce-serve/1 request handler (admission control,
// hit/fresh byte-identity, the verify-cache debug mode) and the
// stdio/framed request loop.  The concurrent storm tests run under
// TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "tce/common/json.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/serve/cache.hpp"
#include "tce/serve/canonical.hpp"
#include "tce/serve/server.hpp"

namespace tce::serve {
namespace {

// ------------------------------------------------------ canonicalization

constexpr const char* kChain =
    "index a, b = 480\n"
    "index a2 = 480\n"
    "index i = 32\n"
    "T[a,b] = sum[i] X[a,i] * Y[i,b]\n"
    "S[a,a2] = sum[b] T[a,b] * Z[b,a2]\n";

std::string canonical_text(const char* program) {
  return canonicalize_program(parse_program(program)).text;
}

TEST(ServeCanonical, AlphaRenamedProgramsCanonicalizeIdentically) {
  // Same problem: every index and tensor renamed, declarations
  // regrouped and reordered, plus an extra unused index.
  const char* renamed =
      "index unused = 7\n"
      "index k = 32\n"
      "index p = 480\n"
      "index q, r = 480\n"
      "Mid[p,q] = sum[k] Left[p,k] * Right[k,q]\n"
      "Out[p,r] = sum[q] Mid[p,q] * Other[q,r]\n";
  EXPECT_EQ(canonical_text(kChain), canonical_text(renamed));
}

TEST(ServeCanonical, ExtentChangesTheCanonicalText) {
  const char* bigger =
      "index a, b = 480\n"
      "index a2 = 480\n"
      "index i = 64\n"  // 32 -> 64
      "T[a,b] = sum[i] X[a,i] * Y[i,b]\n"
      "S[a,a2] = sum[b] T[a,b] * Z[b,a2]\n";
  EXPECT_NE(canonical_text(kChain), canonical_text(bigger));
}

TEST(ServeCanonical, TreeShapeChangesTheCanonicalText) {
  const char* single =
      "index a, b = 480\n"
      "index i = 32\n"
      "T[a,b] = sum[i] X[a,i] * Y[i,b]\n";
  EXPECT_NE(canonical_text(kChain), canonical_text(single));
}

TEST(ServeCanonical, CanonicalTextIsAFixpoint) {
  const std::string once = canonical_text(kChain);
  EXPECT_EQ(once, canonicalize_program(parse_program(once)).text);
}

TEST(ServeCanonical, SumOrderDoesNotLeakIntoCanonicalText) {
  // sum[e,l] vs sum[l,e] is the same IndexSet; spelling order in the
  // request must not split the cache key.
  const char* ab =
      "index a, b, e, l = 16\n"
      "R[a,b] = sum[e,l] P[a,e,l] * Q[e,l,b]\n";
  const char* ba =
      "index a, b, e, l = 16\n"
      "R[a,b] = sum[l,e] P[a,e,l] * Q[e,l,b]\n";
  EXPECT_EQ(canonical_text(ab), canonical_text(ba));
}

TEST(ServeCanonical, RenameQuotedSubstitutesWholeTokensOnly) {
  const std::vector<std::pair<std::string, std::string>> renames = {
      {"i0", "a"}, {"t0", "Total"}};
  // "i0" renames; "i01" and the unquoted i0 do not; schema words and
  // numbers are untouched.
  EXPECT_EQ(rename_quoted(R"({"x":"i0","y":"i01","t":"t0","k":10})",
                          renames),
            R"({"x":"a","y":"i01","t":"Total","k":10})");
}

TEST(ServeCanonical, RenameQuotedHandlesSwaps) {
  const std::vector<std::pair<std::string, std::string>> swap = {
      {"i0", "i1"}, {"i1", "i0"}};
  EXPECT_EQ(rename_quoted(R"(["i0","i1","i0"])", swap),
            R"(["i1","i0","i1"])");
}

TEST(ServeCanonical, RenameTextSubstitutesWholeTokensOnly) {
  const std::vector<std::pair<std::string, std::string>> renames = {
      {"i0", "a"}, {"t0", "Total"}};
  // Whole identifier tokens rename; "i01" and "xt0" do not.
  EXPECT_EQ(rename_text("intermediate 't0' uses i0, not i01 or xt0",
                        renames),
            "intermediate 'Total' uses a, not i01 or xt0");
}

TEST(ServeCanonical, RenameTextHandlesSwaps) {
  const std::vector<std::pair<std::string, std::string>> swap = {
      {"i0", "i1"}, {"i1", "i0"}};
  EXPECT_EQ(rename_text("i0 < i1", swap), "i1 < i0");
}

TEST(ServeCanonical, RenamesAreInAssignmentOrder) {
  // Request names chosen so lexicographic order disagrees with
  // first-appearance order: the contract is assignment order.
  const char* prog =
      "index z, a, q = 8\n"
      "C[z,a] = sum[q] B[z,q] * A[q,a]\n";
  const CanonicalProblem canon =
      canonicalize_program(parse_program(prog));
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"i0", "z"}, {"i1", "a"}, {"i2", "q"},
      {"t0", "C"}, {"t1", "B"}, {"t2", "A"}};
  EXPECT_EQ(canon.renames, expected);
}

TEST(ServeCanonical, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(hex64(0xcbf29ce484222325ull), "cbf29ce484222325");
}

// ------------------------------------------------------------- LRU cache

TEST(ServePlanCache, EvictsLeastRecentlyUsedAtCapacity) {
  PlanCache cache(2);
  cache.put("k1", "p1");
  cache.put("k2", "p2");
  ASSERT_TRUE(cache.get("k1").has_value());  // k1 now most recent
  cache.put("k3", "p3");                     // evicts k2, not k1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.get("k1").has_value());
  EXPECT_FALSE(cache.get("k2").has_value());
  EXPECT_TRUE(cache.get("k3").has_value());
}

TEST(ServePlanCache, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  cache.put("k", "p");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get("k").has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ServePlanCache, RefreshKeepsOneEntryPerKey) {
  PlanCache cache(4);
  cache.put("k", "p1");
  cache.put("k", "p2");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get("k"), "p2");
}

// ---------------------------------------------------------------- server

std::string plan_request(const std::string& program,
                         const std::string& id = "t",
                         std::uint64_t mem_limit = 0) {
  json::ObjectWriter req;
  req.field("schema", "tce-serve/1")
      .field("op", "plan")
      .field("id", id)
      .field("program", program)
      .field("procs", 16);
  if (mem_limit > 0) req.field("mem_limit_bytes", mem_limit);
  return req.str();
}

json::Value handle(Server& server, const std::string& request) {
  return json::parse(server.handle(request));
}

/// The reply's "plan" member re-rendered; byte-stable because
/// ObjectWriter renders deterministically.
std::string plan_bytes(const std::string& reply) {
  const std::size_t at = reply.find("\"plan\":");
  EXPECT_NE(at, std::string::npos) << reply;
  // "plan" is the last member: strip the envelope's closing brace.
  return reply.substr(at + 7, reply.size() - (at + 7) - 1);
}

ServeOptions small_options() {
  ServeOptions o;
  o.threads = 1;  // keep unit tests cheap; plans are thread-invariant
  return o;
}

TEST(ServeServer, AlphaRenamedRequestHitsAndRepliesInRequestNames) {
  Server server(small_options());
  const json::Value miss = handle(server, plan_request(kChain, "m"));
  ASSERT_TRUE(miss.at("ok").boolean);
  EXPECT_EQ(miss.at("cache").string, "miss");

  const char* renamed =
      "index k = 32\n"
      "index p, q, r = 480\n"
      "Mid[p,q] = sum[k] Lf[p,k] * Rt[k,q]\n"
      "Out[p,r] = sum[q] Mid[p,q] * Ot[q,r]\n";
  const std::string reply = server.handle(plan_request(renamed, "h"));
  const json::Value hit = json::parse(reply);
  ASSERT_TRUE(hit.at("ok").boolean);
  EXPECT_EQ(hit.at("cache").string, "hit");
  EXPECT_EQ(hit.at("key").string, miss.at("key").string);
  // The cached canonical plan must come back in *this* request's
  // vocabulary, with no canonical names leaking.
  EXPECT_NE(reply.find("\"Mid\""), std::string::npos);
  EXPECT_NE(reply.find("\"Out\""), std::string::npos);
  EXPECT_EQ(reply.find("\"t0\""), std::string::npos);
  EXPECT_EQ(reply.find("\"i0\""), std::string::npos);
}

TEST(ServeServer, HitIsByteIdenticalToFreshSearch) {
  const char* renamed =
      "index k = 32\n"
      "index p, q, r = 480\n"
      "Mid[p,q] = sum[k] Lf[p,k] * Rt[k,q]\n"
      "Out[p,r] = sum[q] Mid[p,q] * Ot[q,r]\n";
  // Server A answers `renamed` from the cache (warmed by the
  // alpha-equivalent kChain); server B searches it fresh.
  Server warmed(small_options());
  ASSERT_TRUE(handle(warmed, plan_request(kChain)).at("ok").boolean);
  const std::string via_hit = warmed.handle(plan_request(renamed, "x"));
  Server fresh(small_options());
  const std::string via_search = fresh.handle(plan_request(renamed, "x"));
  EXPECT_EQ(json::parse(via_hit).at("cache").string, "hit");
  EXPECT_EQ(json::parse(via_search).at("cache").string, "miss");
  EXPECT_EQ(plan_bytes(via_hit), plan_bytes(via_search));
}

TEST(ServeServer, KeyDependsOnGridModelLimitAndFlags) {
  Server server(small_options());
  const auto key_of = [&](std::string extra_fields) {
    json::ObjectWriter req;
    req.field("op", "plan").field("program", kChain);
    std::string text = req.str();
    if (!extra_fields.empty()) {
      text.insert(text.size() - 1, "," + extra_fields);
    }
    const json::Value reply = handle(server, text);
    EXPECT_TRUE(reply.at("ok").boolean) << server.handle(text);
    return reply.at("key").string;
  };
  const std::string base = key_of("");
  EXPECT_NE(base, key_of("\"procs\":64"));
  EXPECT_NE(base, key_of("\"procs_per_node\":4"));
  EXPECT_NE(base, key_of("\"mem_limit_bytes\":40000000000"));
  EXPECT_NE(base, key_of("\"fusion\":false"));
  EXPECT_NE(base, key_of("\"redistribution\":false"));
  EXPECT_NE(base, key_of("\"replication\":true"));
  EXPECT_NE(base, key_of("\"liveness\":true"));
  // A request-supplied characterization table is a different model
  // fingerprint even when it describes the same grid.
  const std::string machine = characterize_itanium(16).save_string();
  EXPECT_NE(base, key_of("\"machine\":" + json::quote(machine)));
  // Same settings spelled explicitly → same key (and a cache hit).
  EXPECT_EQ(base, key_of("\"procs\":16,\"fusion\":true"));
}

TEST(ServeServer, AdmissionControlRejectsWithCertificate) {
  Server server(small_options());
  const json::Value reply =
      handle(server, plan_request(kChain, "r", /*mem_limit=*/1000));
  ASSERT_FALSE(reply.at("ok").boolean);
  const json::Value& err = reply.at("error");
  EXPECT_EQ(err.at("code").string, "infeasible");
  EXPECT_EQ(err.at("rule").string, "mem.infeasible");
  const json::Value& cert = err.at("certificate");
  EXPECT_GT(cert.at("lower_bound_node_bytes").integer, 1000u);
  EXPECT_EQ(cert.at("mem_limit_node_bytes").integer, 1000u);
  // The binding node is reported in the request's vocabulary.
  const std::string node = cert.at("node").string;
  EXPECT_TRUE(node == "X" || node == "Y" || node == "Z" || node == "T" ||
              node == "S")
      << node;
  // Rejected before any search: nothing was cached.
  EXPECT_EQ(server.cache().size(), 0u);
}

TEST(ServeServer, ErrorCodesAreStable) {
  Server server(small_options());
  EXPECT_EQ(handle(server, "not json").at("error").at("code").string,
            "usage");
  EXPECT_EQ(handle(server, "[1,2]").at("error").at("code").string,
            "usage");
  EXPECT_EQ(handle(server, R"({"op":"nope"})")
                .at("error")
                .at("code")
                .string,
            "usage");
  EXPECT_EQ(handle(server, R"({"op":"plan"})")
                .at("error")
                .at("code")
                .string,
            "usage");
  EXPECT_EQ(
      handle(server,
             R"({"op":"plan","program":"index a = 4\nT[a] = X[a"})")
          .at("error")
          .at("code")
          .string,
      "input");
  EXPECT_EQ(handle(server, R"({"schema":"tce-serve/2","op":"ping"})")
                .at("error")
                .at("code")
                .string,
            "usage");
}

TEST(ServeServer, ErrorsFromTheCanonicalTreeUseRequestNames) {
  Server server(small_options());
  // Parses and canonicalizes fine, but T is consumed twice, so the
  // error ("intermediate consumed 2 times") is raised only while
  // building the *canonical* tree — it blames t0 and must come back
  // as 'T', the name the client actually wrote.
  const char* dag =
      "index a, b, i = 8\n"
      "T[a,b] = sum[i] X[a,i] * Y[i,b]\n"
      "S[a,b] = T[a,b] * T[a,b]\n";
  const json::Value reply = handle(server, plan_request(dag, "e"));
  ASSERT_FALSE(reply.at("ok").boolean);
  EXPECT_EQ(reply.at("error").at("code").string, "input");
  const std::string msg = reply.at("error").at("message").string;
  EXPECT_NE(msg.find("intermediate 'T' consumed"), std::string::npos)
      << msg;
  EXPECT_EQ(msg.find("t0"), std::string::npos) << msg;
}

TEST(ServeServer, LruEvictionForcesAReSearch) {
  ServeOptions options = small_options();
  options.cache_capacity = 1;
  Server server(options);
  const char* other =
      "index a, b = 64\n"
      "index i = 16\n"
      "R[a,b] = sum[i] P[a,i] * Q[i,b]\n";
  EXPECT_EQ(handle(server, plan_request(kChain)).at("cache").string,
            "miss");
  EXPECT_EQ(handle(server, plan_request(other)).at("cache").string,
            "miss");  // evicts kChain
  EXPECT_EQ(handle(server, plan_request(kChain)).at("cache").string,
            "miss");  // had been evicted
  EXPECT_EQ(handle(server, plan_request(kChain)).at("cache").string,
            "hit");
  EXPECT_EQ(server.cache().evictions(), 2u);
}

TEST(ServeServer, VerifyCacheModePassesOnHonestHits) {
  ServeOptions options = small_options();
  options.verify_cache = true;
  Server server(options);
  obs::ScopedMetrics metrics;
  EXPECT_EQ(handle(server, plan_request(kChain)).at("cache").string,
            "miss");
  EXPECT_EQ(handle(server, plan_request(kChain)).at("cache").string,
            "hit");
  EXPECT_EQ(obs::counter_value("serve.verify.ok"), 1u);
  EXPECT_EQ(obs::counter_value("serve.verify.mismatch"), 0u);
}

TEST(ServeServer, PingAndMetricsAndShutdownOps) {
  Server server(small_options());
  obs::ScopedMetrics metrics;
  ASSERT_TRUE(handle(server, plan_request(kChain)).at("ok").boolean);
  const json::Value ping = handle(server, R"({"op":"ping","id":"7"})");
  EXPECT_TRUE(ping.at("ok").boolean);
  EXPECT_EQ(ping.at("id").string, "7");
  EXPECT_EQ(ping.at("cache").at("misses").integer, 1u);
  const json::Value m = handle(server, R"({"op":"metrics"})");
  EXPECT_TRUE(m.at("metrics").find("serve.cache.miss") != nullptr);
  EXPECT_FALSE(server.shutdown_requested());
  EXPECT_TRUE(handle(server, R"({"op":"shutdown"})").at("ok").boolean);
  EXPECT_TRUE(server.shutdown_requested());
}

// ----------------------------------------------------- concurrent storms

TEST(ServeServer, ConcurrentHitMissStormRepliesAreByteIdentical) {
  Server server(small_options());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 6;
  // Two distinct problems, each with per-thread alpha-renamed
  // spellings, all in flight at once: every reply for the same
  // (problem, spelling) must be byte-identical no matter which thread
  // won the search and which ones hit the cache.
  const auto spelling = [](int problem, int t) {
    const std::string ix = "x" + std::to_string(t);
    const std::string iy = "y" + std::to_string(t);
    const std::string ik = "k" + std::to_string(t);
    const std::string extent = problem == 0 ? "64" : "96";
    return "index " + ix + ", " + iy + " = " + extent + "\nindex " + ik +
           " = 16\nR" + std::to_string(t) + "[" + ix + "," + iy +
           "] = sum[" + ik + "] P" + std::to_string(t) + "[" + ix + "," +
           ik + "] * Q" + std::to_string(t) + "[" + ik + "," + iy + "]\n";
  };
  std::vector<std::vector<std::string>> replies(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int q = 0; q < kPerThread; ++q) {
        replies[t].push_back(
            server.handle(plan_request(spelling(q % 2, t), "c")));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int q = 0; q < kPerThread; ++q) {
      ASSERT_TRUE(json::parse(replies[t][q]).at("ok").boolean)
          << replies[t][q];
      // Same (problem, spelling) → byte-identical plan, hit or miss.
      EXPECT_EQ(plan_bytes(replies[t][q]),
                plan_bytes(replies[t][q % 2]));
    }
  }
  // Exactly two searches happened; everything else hit.
  EXPECT_EQ(server.cache().size(), 2u);
  EXPECT_EQ(server.cache().hits() + server.cache().misses(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ServePlanCache, ConcurrentGetPutIsRaceFree) {
  PlanCache cache(8);
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> found{0};
  workers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 12);
        if (cache.get(key).has_value()) {
          found.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.put(key, "plan-" + key);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.hits(), found.load());
}

// ------------------------------------------------------------ serve_loop

TEST(ServeLoop, BareJsonLinesAndShutdown) {
  Server server(small_options());
  std::istringstream in(R"({"op":"ping"})"
                        "\n"
                        R"({"op":"shutdown"})"
                        "\n"
                        R"({"op":"ping","id":"after"})"
                        "\n");
  std::ostringstream out;
  EXPECT_EQ(serve_loop(server, in, out), 0);
  const std::string text = out.str();
  // The ping and the shutdown got replies; the loop ended before the
  // third request.
  EXPECT_NE(text.find("\"op\":\"ping\""), std::string::npos);
  EXPECT_NE(text.find("\"op\":\"shutdown\""), std::string::npos);
  EXPECT_EQ(text.find("after"), std::string::npos);
}

TEST(ServeLoop, LengthPrefixedFramesMirrorTheFraming) {
  Server server(small_options());
  const std::string payload = R"({"op":"ping"})";
  std::istringstream in(std::to_string(payload.size()) + "\n" + payload +
                        "\n");
  std::ostringstream out;
  EXPECT_EQ(serve_loop(server, in, out), 0);
  // Framed request → framed reply: "<len>\n<payload>\n".
  const std::string text = out.str();
  const std::size_t nl = text.find('\n');
  ASSERT_NE(nl, std::string::npos);
  const std::size_t len = std::stoul(text.substr(0, nl));
  ASSERT_EQ(text.size(), nl + 1 + len + 1);
  const json::Value reply = json::parse(text.substr(nl + 1, len));
  EXPECT_TRUE(reply.at("ok").boolean);
}

TEST(ServeLoop, BadFrameLengthAnswersUsageAndCloses) {
  Server server(small_options());
  std::istringstream in("zzz\n{\"op\":\"ping\"}\n");
  std::ostringstream out;
  EXPECT_EQ(serve_loop(server, in, out), 0);
  const json::Value reply =
      json::parse(out.str().substr(0, out.str().find('\n')));
  EXPECT_FALSE(reply.at("ok").boolean);
  EXPECT_EQ(reply.at("error").at("code").string, "usage");
  // The stream closed on desync: the trailing ping was never answered.
  EXPECT_EQ(out.str().find("\"op\":\"ping\""), std::string::npos);
}

TEST(ServeLoop, MetricsScrapeAnswersPrometheusAndCloses) {
  Server server(small_options());
  obs::ScopedMetrics metrics;
  ASSERT_TRUE(handle(server, plan_request(kChain)).at("ok").boolean);
  std::istringstream in(
      "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
      "{\"op\":\"ping\"}\n");
  std::ostringstream out;
  EXPECT_EQ(serve_loop(server, in, out), 0);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("HTTP/1.0 200 OK", 0), 0u) << text;
  EXPECT_NE(text.find("tce_serve_cache_miss_total"), std::string::npos);
  // Scrape connections are one-shot.
  EXPECT_EQ(text.find("\"op\":\"ping\""), std::string::npos);
}

TEST(ServeLoop, UnknownHttpPathIs404) {
  Server server(small_options());
  std::istringstream in("GET /other HTTP/1.1\r\n\r\n");
  std::ostringstream out;
  EXPECT_EQ(serve_loop(server, in, out), 0);
  EXPECT_EQ(out.str().rfind("HTTP/1.0 404 Not Found", 0), 0u);
}

// ------------------------------------------------------------ unix socket

#ifdef __linux__

std::size_t open_fd_count() {
  std::size_t n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

/// Connects to \p path, writes \p payload, drains the reply until the
/// server ends the stream, and closes the client fd.
void one_shot(const std::string& path, const std::string& payload) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  ASSERT_EQ(::write(fd, payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  char buf[4096];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
  ::close(fd);
}

TEST(ServeSocket, OneShotConnectionsAreReaped) {
  // Regression: the accept loop must join finished connection threads
  // and close their fds as it goes — Prometheus scrapes are one-shot,
  // so a daemon that only reaps at shutdown leaks one fd per scrape
  // until accept() dies with EMFILE.
  Server server(small_options());
  const std::string path = ::testing::TempDir() + "tce_serve_reap.sock";
  std::thread daemon([&] { serve_unix_socket(server, path); });
  // Wait for the socket file to be bound.
  for (int i = 0; i < 500 && ::access(path.c_str(), F_OK) != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::string scrape = "GET /metrics HTTP/1.0\r\n\r\n";
  one_shot(path, scrape);  // warm any lazily opened descriptors
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::size_t baseline = open_fd_count();
  ASSERT_GT(baseline, 0u);
  constexpr int kScrapes = 32;
  for (int i = 0; i < kScrapes; ++i) one_shot(path, scrape);
  // Reaping rides the accept loop's poll wakeups (≤ 200 ms apart);
  // give it a bounded moment to drain.
  std::size_t now = open_fd_count();
  for (int i = 0; i < 500 && now > baseline + 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    now = open_fd_count();
  }
  EXPECT_LE(now, baseline + 2) << "leaked ~" << (now - baseline)
                               << " fds over " << kScrapes << " scrapes";
  one_shot(path, "{\"op\":\"shutdown\"}\n");
  daemon.join();
}

#endif  // __linux__

}  // namespace
}  // namespace tce::serve
