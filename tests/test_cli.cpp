// Tests for tce/cli: argument handling, size parsing, and the three
// subcommands end to end (against temp files).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tce/cli/cli.hpp"
#include "tce/common/error.hpp"

namespace tce {
namespace {

class TempFile {
 public:
  TempFile(const std::string& name, const std::string& contents)
      : path_(std::string(::testing::TempDir()) + name) {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr const char* kSmallProgram = R"(
  index a, b, c = 64
  C[a,c] = sum[b] X[a,b] * Y[b,c]
)";

// ----------------------------------------------------------- byte sizes

TEST(ParseByteSize, AcceptsSuffixes) {
  EXPECT_EQ(parse_byte_size("1000"), 1000u);
  EXPECT_EQ(parse_byte_size("4GB"), 4'000'000'000u);
  EXPECT_EQ(parse_byte_size("1.5MB"), 1'500'000u);
  EXPECT_EQ(parse_byte_size("27MB"), 27'000'000u);
  EXPECT_EQ(parse_byte_size("2 KB"), 2'000u);
  EXPECT_EQ(parse_byte_size("10B"), 10u);
}

TEST(ParseByteSize, RejectsGarbage) {
  EXPECT_THROW(parse_byte_size("GB"), Error);
  EXPECT_THROW(parse_byte_size("12XB"), Error);
}

// ------------------------------------------------------------------- CLI

TEST(Cli, HelpPrintsUsage) {
  for (auto args : {std::vector<std::string>{},
                    std::vector<std::string>{"help"},
                    std::vector<std::string>{"--help"}}) {
    CliResult r = run_cli(args);
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
  }
}

TEST(Cli, UnknownCommandFails) {
  CliResult r = run_cli({"frobnicate"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("unknown command"), std::string::npos);
}

TEST(Cli, PlanSmallProgram) {
  TempFile f("cli_small.tce", kSmallProgram);
  CliResult r = run_cli({"plan", f.path(), "--procs", "4"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("C[a,c]"), std::string::npos);
  EXPECT_NE(r.output.find("total communication"), std::string::npos);
}

TEST(Cli, PlanWithPseudocodeAndLimit) {
  TempFile f("cli_small2.tce", kSmallProgram);
  CliResult r = run_cli({"plan", f.path(), "--procs", "4", "--mem-limit",
                         "4GB", "--pseudocode"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("cannon"), std::string::npos);
}

TEST(Cli, PlanVerifyAcceptsOptimizerOutput) {
  TempFile f("cli_verify.tce", kSmallProgram);
  CliResult r = run_cli({"plan", f.path(), "--procs", "4", "--mem-limit",
                         "4GB", "--verify"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("total communication"), std::string::npos);
}

TEST(Cli, PlanVerifyCoversForests) {
  TempFile f("cli_verify_forest.tce", R"(
    index a, b, c = 64
    index i, j = 32
    X[a,b] = sum[i] P[a,i] * Q[i,b]
    Y[a,c] = sum[j] U[a,j] * R[j,c]
  )");
  CliResult r = run_cli({"plan", f.path(), "--procs", "4", "--verify"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("output X"), std::string::npos);
}

TEST(Cli, PlanStatsPrintsSearchCounters) {
  TempFile f("cli_stats.tce", kSmallProgram);
  CliResult r = run_cli({"plan", f.path(), "--procs", "4", "--stats"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("search statistics:"), std::string::npos);
  EXPECT_NE(r.output.find("candidates"), std::string::npos);
  EXPECT_NE(r.output.find("opt.candidates"), std::string::npos)
      << "metrics table should follow the stats block";
}

TEST(Cli, PlanTraceWritesLoadableTraceEvents) {
  TempFile f("cli_trace.tce", kSmallProgram);
  const std::string trace =
      std::string(::testing::TempDir()) + "cli_trace_out.json";
  CliResult r = run_cli(
      {"plan", f.path(), "--procs", "4", "--trace", trace});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  std::ifstream in(trace);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::remove(trace.c_str());
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("dp.node"), std::string::npos);
}

TEST(Cli, PlanInfeasibleReturnsCode2) {
  TempFile f("cli_small3.tce", kSmallProgram);
  CliResult r = run_cli(
      {"plan", f.path(), "--procs", "4", "--mem-limit", "1KB"});
  EXPECT_EQ(r.exit_code, kExitInfeasible);
  EXPECT_NE(r.error.find("infeasible"), std::string::npos);
}

TEST(Cli, PlanRejectsUnknownFlag) {
  TempFile f("cli_small4.tce", kSmallProgram);
  CliResult r = run_cli({"plan", f.path(), "--bogus"});
  EXPECT_EQ(r.exit_code, kExitUsage);
  EXPECT_NE(r.error.find("unexpected argument"), std::string::npos);
}

TEST(Cli, PlanMissingFileIsAnIoError) {
  CliResult r = run_cli({"plan", "/nonexistent/x.tce"});
  EXPECT_EQ(r.exit_code, kExitIo);
  EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

TEST(Cli, MalformedProgramIsAnInputError) {
  TempFile f("cli_garbage.tce", "index a = ; nonsense [[");
  CliResult r = run_cli({"plan", f.path()});
  EXPECT_EQ(r.exit_code, kExitInput);
}

TEST(Cli, ExitCodeValuesArePinned) {
  // docs/FORMATS.md documents the numeric values; the enum is
  // append-only, so these must never move.
  EXPECT_EQ(kExitOk, 0);
  EXPECT_EQ(kExitUsage, 1);
  EXPECT_EQ(kExitInfeasible, 2);
  EXPECT_EQ(kExitIo, 3);
  EXPECT_EQ(kExitInput, 4);
  EXPECT_EQ(kExitVerify, 5);
  EXPECT_EQ(kExitFuzz, 6);
  EXPECT_EQ(kExitInternal, 7);
  EXPECT_EQ(kExitLint, 8);
}

TEST(Cli, OpminBinarizes) {
  TempFile f("cli_opmin.tce", R"(
    index a, b, c, d = 8
    S[a,d] = sum[b,c] X[a,b] * Y[b,c] * Z[c,d]
  )");
  CliResult r = run_cli({"opmin", f.path()});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("optimal:"), std::string::npos);
  EXPECT_NE(r.output.find("full binarized program:"), std::string::npos);
}

TEST(Cli, OpminNothingToDo) {
  TempFile f("cli_opmin2.tce", kSmallProgram);
  CliResult r = run_cli({"opmin", f.path()});
  ASSERT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("nothing to binarize"), std::string::npos);
}

TEST(Cli, CharacterizeEmitsLoadableFile) {
  CliResult r = run_cli({"characterize", "--procs", "16"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("tce-characterization 3"), std::string::npos);

  // Feed the characterization back into plan via --machine.
  TempFile machine("cli_machine.txt", r.output);
  TempFile f("cli_small5.tce", kSmallProgram);
  CliResult p = run_cli(
      {"plan", f.path(), "--procs", "16", "--machine", machine.path()});
  EXPECT_EQ(p.exit_code, 0) << p.error;
}

TEST(Cli, MachineFileProcsMismatchIsRejected) {
  CliResult c = run_cli({"characterize", "--procs", "16"});
  TempFile machine("cli_machine2.txt", c.output);
  TempFile f("cli_small6.tce", kSmallProgram);
  CliResult p = run_cli(
      {"plan", f.path(), "--procs", "4", "--machine", machine.path()});
  EXPECT_EQ(p.exit_code, 4);
  EXPECT_NE(p.error.find("16 processors"), std::string::npos);
}

TEST(Cli, ExtensionFlagsAreAccepted) {
  TempFile f("cli_ext.tce", kSmallProgram);
  CliResult r = run_cli({"plan", f.path(), "--procs", "4",
                         "--replication", "--liveness"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("total communication"), std::string::npos);
  EXPECT_NE(r.output.find("liveness-aware"), std::string::npos);
}

TEST(Cli, ValidateComparesPredictedAndSimulated) {
  TempFile f("cli_val.tce", kSmallProgram);
  CliResult r = run_cli({"validate", f.path(), "--procs", "4"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("predicted"), std::string::npos);
  EXPECT_NE(r.output.find("simulated"), std::string::npos);
  EXPECT_NE(r.output.find("TOTAL"), std::string::npos);
}

TEST(Cli, PlanHandlesMultiOutputPrograms) {
  TempFile f("cli_forest.tce", R"(
    index a, b, c, d = 64
    index i, j, k = 32
    T[a,c] = sum[b] X[a,b] * Y[b,c]
    R1[a,d] = sum[c] T[a,c] * Z[c,d]
    R2[i,k] = sum[j] P[i,j] * Q[j,k]
  )");
  CliResult r = run_cli({"plan", f.path(), "--procs", "4"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("output R1:"), std::string::npos);
  EXPECT_NE(r.output.find("output R2:"), std::string::npos);
  EXPECT_NE(r.output.find("total communication"), std::string::npos);
}

TEST(Cli, PlanWithOpminFlagHandlesMultiFactor) {
  TempFile f("cli_multi.tce", R"(
    index a, b, c, d = 16
    S[a,d] = sum[b,c] X[a,b] * Y[b,c] * Z[c,d]
  )");
  CliResult r = run_cli({"plan", f.path(), "--procs", "4", "--opmin"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("S[a,d]"), std::string::npos);
}

// ------------------------------------------------------------------ fuzz

TEST(Cli, FuzzSmokeRunsClean) {
  CliResult r = run_cli(
      {"fuzz", "--runs", "10", "--seed", "1", "--max-nodes", "2"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("0 disagreements"), std::string::npos);
  EXPECT_NE(r.output.find("base seed 1"), std::string::npos);
}

TEST(Cli, FuzzSingleOracleIsSelectable) {
  CliResult r = run_cli(
      {"fuzz", "--runs", "5", "--seed", "3", "--oracle", "verify"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("verify:"), std::string::npos);
  EXPECT_EQ(r.output.find("brute:"), std::string::npos);
}

TEST(Cli, FuzzRejectsUnknownOracle) {
  CliResult r = run_cli({"fuzz", "--oracle", "astrology"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("unknown oracle"), std::string::npos);
}

TEST(Cli, FuzzRejectsMalformedCount) {
  CliResult r = run_cli({"fuzz", "--runs", "many"});
  EXPECT_EQ(r.exit_code, 1);
}

// ------------------------------------------------------------------ lint

TEST(Cli, LintCleanProgramExitsZero) {
  TempFile f("cli_lint_clean.tce", kSmallProgram);
  CliResult r = run_cli({"lint", f.path(), "--procs", "4"});
  ASSERT_EQ(r.exit_code, kExitOk) << r.error;
  EXPECT_NE(r.output.find("0 diagnostics"), std::string::npos);
  EXPECT_NE(r.output.find("rules checked"), std::string::npos);
}

TEST(Cli, LintWarningsDoNotFail) {
  TempFile f("cli_lint_warn.tce", R"(
    index a, b, c = 64
    index unused = 8
    C[a,c] = sum[b] X[a,b] * Y[b,c]
  )");
  CliResult r = run_cli({"lint", f.path(), "--procs", "4"});
  ASSERT_EQ(r.exit_code, kExitOk) << r.error;
  EXPECT_NE(r.output.find("warning rule=expr.unused-index"),
            std::string::npos);
}

TEST(Cli, LintErrorsExitEight) {
  TempFile f("cli_lint_err.tce", R"(
    index i, j, k = 16
    C[i,j] = sum[k] A[i,k] * B[i,k,j]
  )");
  CliResult r = run_cli({"lint", f.path(), "--procs", "4"});
  EXPECT_EQ(r.exit_code, kExitLint);
  EXPECT_NE(r.output.find("error node=C rule=tree.batch-indices"),
            std::string::npos);
}

TEST(Cli, LintInfeasibilityCertificateExitsEight) {
  TempFile f("cli_lint_mem.tce", R"(
    index a, b, k = 8192
    S[a,b] = sum[k] A[a,k] * B[k,b]
  )");
  CliResult r = run_cli(
      {"lint", f.path(), "--mem-limit", "100MB"});
  EXPECT_EQ(r.exit_code, kExitLint);
  EXPECT_NE(r.output.find("certificate rule=mem.infeasible node=S"),
            std::string::npos);
  EXPECT_NE(r.output.find("lower_bound_node_bytes="), std::string::npos);
}

TEST(Cli, LintOutputIsDeterministic) {
  TempFile f("cli_lint_det.tce", R"(
    index a, b, c = 64
    index s = 1
    C[a,c] = sum[b] X[a,b] * Y[b,c]
  )");
  CliResult one = run_cli({"lint", f.path(), "--procs", "4"});
  CliResult two = run_cli({"lint", f.path(), "--procs", "4"});
  EXPECT_EQ(one.exit_code, two.exit_code);
  EXPECT_EQ(one.output, two.output);
}

TEST(Cli, LintMissingFileIsAnIoError) {
  CliResult r = run_cli({"lint", "/no/such/file.tce"});
  EXPECT_EQ(r.exit_code, kExitIo);
}

TEST(Cli, HelpDocumentsLintAndExitEight) {
  CliResult r = run_cli({"help"});
  EXPECT_NE(r.output.find("tcemin lint"), std::string::npos);
  EXPECT_NE(r.output.find("8  lint found"), std::string::npos);
}

TEST(Cli, PlanReportsAllStructuralErrorsBatched) {
  // Two independent structural errors: plan's validation failure is
  // upgraded to the full batched listing instead of first-error-wins.
  TempFile f("cli_plan_batched.tce", R"(
    index a, b, c, z = 16
    R[a,b] = sum[c] X[a,c] * Y[c,c]
    Q[a] = sum[z] X[a,c] * W[c]
  )");
  CliResult r = run_cli({"plan", f.path(), "--procs", "4"});
  EXPECT_EQ(r.exit_code, kExitInput);
  EXPECT_NE(r.error.find("structural errors"), std::string::npos);
  EXPECT_NE(r.error.find("rule=expr.repeated-dim"), std::string::npos);
  EXPECT_NE(r.error.find("rule=expr.sum-not-in-factors"),
            std::string::npos);
}

TEST(Cli, FuzzLintOracleIsSelectable) {
  CliResult r = run_cli(
      {"fuzz", "--runs", "5", "--seed", "2", "--oracle", "lint"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("lint:"), std::string::npos);
}

// ----------------------------------------- metrics + flight recorder

TEST(Cli, PlanMetricsWritesPrometheusExposition) {
  TempFile f("cli_metrics.tce", kSmallProgram);
  const std::string metrics =
      std::string(::testing::TempDir()) + "cli_metrics_out.prom";
  // Flag before the program file, as the docs show — option values must
  // not be mistaken for the positional.
  CliResult r = run_cli(
      {"plan", "--metrics", metrics, f.path(), "--procs", "4"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  std::ifstream in(metrics);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::remove(metrics.c_str());
  EXPECT_NE(doc.find("# TYPE tce_plan_latency_s histogram"),
            std::string::npos);
  EXPECT_NE(doc.find("# HELP tce_plan_latency_s plan.latency_s"),
            std::string::npos);
  EXPECT_NE(doc.find("tce_plan_latency_s_bucket{le="), std::string::npos);
  EXPECT_NE(doc.find("tce_plan_latency_s_count 1"), std::string::npos);
  EXPECT_NE(doc.find("tce_opt_candidates_total"), std::string::npos);
}

TEST(Cli, PlanMetricsJsonExtensionWritesSnapshotSchema) {
  TempFile f("cli_metrics_json.tce", kSmallProgram);
  const std::string metrics =
      std::string(::testing::TempDir()) + "cli_metrics_out.json";
  CliResult r = run_cli(
      {"plan", f.path(), "--procs", "4", "--metrics", metrics});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  std::ifstream in(metrics);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::remove(metrics.c_str());
  EXPECT_NE(doc.find("\"schema\":\"tce-metrics/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"plan.latency_s\""), std::string::npos);
  EXPECT_NE(doc.find("\"p99\""), std::string::npos);
}

TEST(Cli, NonzeroExitDumpsFlightRecorderTail) {
  // A lint-certified infeasible instance (exit 8): the stderr text must
  // carry the tce-log/1 tail including the certificate event.
  TempFile f("cli_fr_lint.tce", R"(
    index a, b, k = 8192
    S[a,b] = sum[k] A[a,k] * B[k,b]
  )");
  CliResult r = run_cli({"lint", f.path(), "--mem-limit", "100MB"});
  EXPECT_EQ(r.exit_code, kExitLint);
  EXPECT_NE(r.error.find("flight recorder"), std::string::npos);
  EXPECT_NE(r.error.find("\"schema\":\"tce-log/1\""), std::string::npos);
  EXPECT_NE(r.error.find("\"event\":\"mem.infeasible\""),
            std::string::npos);
  EXPECT_NE(r.error.find("\"event\":\"exit\""), std::string::npos);
}

TEST(Cli, InfeasiblePlanDumpsProverEvent) {
  TempFile f("cli_fr_plan.tce", kSmallProgram);
  CliResult r = run_cli(
      {"plan", f.path(), "--procs", "4", "--mem-limit", "1KB"});
  EXPECT_EQ(r.exit_code, kExitInfeasible);
  EXPECT_NE(r.error.find("flight recorder"), std::string::npos);
  EXPECT_NE(r.error.find("\"component\":\"optimizer\""),
            std::string::npos);
  EXPECT_NE(r.error.find("\"event\":\"prover.infeasible\""),
            std::string::npos);
}

TEST(Cli, SuccessfulRunDumpsNothing) {
  TempFile f("cli_fr_ok.tce", kSmallProgram);
  CliResult r = run_cli({"plan", f.path(), "--procs", "4"});
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_EQ(r.error.find("flight recorder"), std::string::npos);
}

TEST(Cli, UsageErrorsAlsoCarryTheTail) {
  CliResult r = run_cli({"frobnicate"});
  EXPECT_EQ(r.exit_code, kExitUsage);
  EXPECT_NE(r.error.find("\"event\":\"exit\""), std::string::npos);
  EXPECT_NE(r.error.find("\"code\":1"), std::string::npos);
}

// ------------------------------------------------------------------ serve

TEST(Cli, ServeNeedsExactlyOneTransport) {
  CliResult none = run_cli({"serve"});
  EXPECT_EQ(none.exit_code, kExitUsage);
  EXPECT_NE(none.error.find("--socket PATH or --stdio"),
            std::string::npos);
  CliResult both = run_cli({"serve", "--stdio", "--socket", "/tmp/x.sock"});
  EXPECT_EQ(both.exit_code, kExitUsage);
}

TEST(Cli, ServeRejectsMalformedNumericOptions) {
  for (const char* flag : {"--cache-capacity", "--threads"}) {
    CliResult r = run_cli({"serve", "--stdio", flag, "garbage"});
    EXPECT_EQ(r.exit_code, kExitUsage) << flag;
    EXPECT_NE(r.error.find("garbage"), std::string::npos) << flag;
  }
}

TEST(Cli, ServeRejectsMalformedEnvironment) {
  ::setenv("TCE_SERVE_CACHE_CAPACITY", "lots", 1);
  CliResult r = run_cli({"serve", "--stdio"});
  ::unsetenv("TCE_SERVE_CACHE_CAPACITY");
  EXPECT_EQ(r.exit_code, kExitUsage);
  EXPECT_NE(r.error.find("TCE_SERVE_CACHE_CAPACITY"), std::string::npos);
  EXPECT_NE(r.error.find("lots"), std::string::npos);
}

TEST(Cli, HelpDocumentsServe) {
  CliResult r = run_cli({"help"});
  ASSERT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("tcemin serve"), std::string::npos);
  EXPECT_NE(r.output.find("--verify-cache"), std::string::npos);
  EXPECT_NE(r.output.find("TCE_SERVE_CACHE_CAPACITY"), std::string::npos);
}

}  // namespace
}  // namespace tce
