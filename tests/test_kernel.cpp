// Tests for the local contraction kernels: the tiled packing GEMM must
// match the reference kernel (and a naive triple loop) on every shape,
// stay bitwise deterministic across thread counts, honor the
// kernel-selection layer and its TCE_TILE_* validation, cover the TTGT
// edge cases, keep plans/pseudocode byte-identical under every kernel
// setting, and emit its observability metrics.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "tce/codegen/codegen.hpp"
#include "tce/common/rng.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/core/plan_json.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/tensor/einsum.hpp"
#include "tce/tensor/kernel.hpp"
#include "tce/tensor/matmul.hpp"
#include "tce/tensor/ttgt.hpp"

#include "paper_workload.hpp"

namespace tce {
namespace {

using ::tce::testing::kPaperProgram;

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform_real(-1.0, 1.0);
  return v;
}

/// Naive ground truth: C += A·B with no blocking at all.
void gemm_naive(const std::vector<double>& a, const std::vector<double>& b,
                std::vector<double>& c, std::size_t m, std::size_t k,
                std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a[i * k + p];
      for (std::size_t j = 0; j < n; ++j) c[i * n + j] += av * b[p * n + j];
    }
  }
}

void expect_gemms_agree(std::size_t m, std::size_t k, std::size_t n,
                        const TileConfig& tiles) {
  const std::vector<double> a = random_vec(m * k, 1);
  const std::vector<double> b = random_vec(k * n, 2);
  std::vector<double> want = random_vec(m * n, 3);
  std::vector<double> got_ref = want;
  std::vector<double> got_tiled = want;
  gemm_naive(a, b, want, m, k, n);
  gemm_ref(a, b, got_ref, m, k, n, tiles);
  gemm_tiled(a, b, got_tiled, m, k, n, tiles, /*threads=*/1);
  // |Δ| grows with the K-sum length; operands are in [-1, 1).
  const double tol = 1e-13 * static_cast<double>(k == 0 ? 1 : k);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got_ref[i], want[i], tol)
        << "ref " << m << "x" << k << "x" << n << " at " << i;
    ASSERT_NEAR(got_tiled[i], want[i], tol)
        << "tiled " << m << "x" << k << "x" << n << " at " << i;
  }
}

TEST(Gemm, TiledMatchesNaiveAcrossShapes) {
  const TileConfig tiles;
  // Exercise partial micro-tiles (m % 8, n % 6), single rows/columns,
  // k = 1 (outer product), and shapes spanning the MC/KC/NC edges.
  const std::size_t shapes[][3] = {
      {1, 1, 1},   {1, 7, 1},    {8, 6, 6},     {7, 5, 5},
      {9, 3, 7},   {17, 1, 13},  {64, 64, 64},  {37, 129, 61},
      {130, 257, 70}, {1, 300, 1}, {256, 9, 2},  {3, 40, 200},
  };
  for (const auto& s : shapes) expect_gemms_agree(s[0], s[1], s[2], tiles);
}

TEST(Gemm, TinyTilesStillCorrect) {
  // Pathologically small blocking forces many partial panels.
  TileConfig tiles;
  tiles.mc = 8;
  tiles.kc = 8;
  tiles.nc = 12;
  expect_gemms_agree(33, 29, 31, tiles);
}

TEST(Gemm, BitwiseDeterministicAcrossThreadCounts) {
  const std::size_t m = 300, k = 150, n = 100;
  const std::vector<double> a = random_vec(m * k, 4);
  const std::vector<double> b = random_vec(k * n, 5);
  const TileConfig tiles;
  std::vector<double> c1(m * n, 0.5);
  gemm_tiled(a, b, c1, m, k, n, tiles, 1);
  for (unsigned threads : {2u, 3u, 8u, 0u}) {
    std::vector<double> ct(m * n, 0.5);
    gemm_tiled(a, b, ct, m, k, n, tiles, threads);
    for (std::size_t i = 0; i < c1.size(); ++i) {
      ASSERT_EQ(c1[i], ct[i]) << "threads=" << threads << " at " << i;
    }
  }
}

TEST(Kernel, SelectKernelResolvesAuto) {
  EXPECT_EQ(select_kernel(KernelKind::kAuto, kAutoCutoffElems - 1),
            KernelKind::kReference);
  EXPECT_EQ(select_kernel(KernelKind::kAuto, kAutoCutoffElems),
            KernelKind::kTiled);
  // Explicit kinds pass through regardless of size.
  EXPECT_EQ(select_kernel(KernelKind::kReference, 1u << 30),
            KernelKind::kReference);
  EXPECT_EQ(select_kernel(KernelKind::kTiled, 1), KernelKind::kTiled);
}

TEST(Kernel, ParseKernelKind) {
  EXPECT_EQ(parse_kernel_kind("auto"), KernelKind::kAuto);
  EXPECT_EQ(parse_kernel_kind("ref"), KernelKind::kReference);
  EXPECT_EQ(parse_kernel_kind("reference"), KernelKind::kReference);
  EXPECT_EQ(parse_kernel_kind("tiled"), KernelKind::kTiled);
  EXPECT_THROW(parse_kernel_kind("fast"), KernelUsageError);
  EXPECT_THROW(parse_kernel_kind(""), KernelUsageError);
}

/// Restores the prior kernel config and TCE_TILE_MC on scope exit.
class EnvGuard {
 public:
  EnvGuard() : saved_(kernel_config()) {}
  ~EnvGuard() {
    ::unsetenv("TCE_TILE_MC");
    ::unsetenv("TCE_KERNEL");
    set_kernel_config(saved_);
  }

 private:
  KernelConfig saved_;
};

TEST(Kernel, TileEnvOverrideApplies) {
  EnvGuard guard;
  ::setenv("TCE_TILE_MC", "64", 1);
  reset_kernel_config_from_env();
  EXPECT_EQ(kernel_config().tiles.mc, 64u);
}

TEST(Kernel, MalformedTileEnvThrowsUsageError) {
  EnvGuard guard;
  for (const char* bad : {"0", "7", "2097152", "abc", "-8", "128x"}) {
    ::setenv("TCE_TILE_MC", bad, 1);
    reset_kernel_config_from_env();
    EXPECT_THROW(kernel_config(), KernelUsageError) << "TCE_TILE_MC=" << bad;
  }
}

TEST(Kernel, MalformedKernelEnvThrowsUsageError) {
  EnvGuard guard;
  ::setenv("TCE_KERNEL", "turbo", 1);
  reset_kernel_config_from_env();
  EXPECT_THROW(kernel_config(), KernelUsageError);
}

TEST(Kernel, ModelEfficiencyInUnitRange) {
  for (std::uint64_t n : {1ull, 8ull, 64ull, 1024ull, 16384ull}) {
    const double e = gemm_model_efficiency(n, n, n);
    EXPECT_GT(e, 0.0) << n;
    EXPECT_LE(e, 1.0) << n;
  }
  // Larger blocks amortize pack overhead: efficiency is monotone here.
  EXPECT_LT(gemm_model_efficiency(8, 8, 8),
            gemm_model_efficiency(1024, 1024, 1024));
}

// ------------------------------------------------------------- TTGT

TEST(Ttgt, ClassifiesGroups) {
  // C[a,c] = Σ_b A[a,b]·B[b,c]: a→M, c→N, b→K, no batch.
  DenseTensor a({0, 1}, {3, 4}), b({1, 2}, {4, 5});
  const TtgtGroups g = classify_ttgt(a, b, {0, 2}, IndexSet::single(1));
  EXPECT_TRUE(g.covered);
  EXPECT_TRUE(g.batch.empty());
  EXPECT_EQ(g.m, std::vector<IndexId>{0});
  EXPECT_EQ(g.n, std::vector<IndexId>{2});
  EXPECT_EQ(g.k, std::vector<IndexId>{1});
  EXPECT_EQ(g.m_elems, 3u);
  EXPECT_EQ(g.n_elems, 5u);
  EXPECT_EQ(g.k_elems, 4u);
}

TEST(Ttgt, BatchAndOneOperandSums) {
  // C[a] = Σ_{b,c,d} A[a,b,c]·B[a,b,d]: a→batch, b→K, c/d pre-reduced.
  DenseTensor a({0, 1, 2}, {2, 3, 4}), b({0, 1, 3}, {2, 3, 5});
  const TtgtGroups g =
      classify_ttgt(a, b, {0}, IndexSet::of({1, 2, 3}));
  EXPECT_TRUE(g.covered);
  EXPECT_EQ(g.batch, std::vector<IndexId>{0});
  EXPECT_EQ(g.k, std::vector<IndexId>{1});
  EXPECT_EQ(g.a_only_sum, std::vector<IndexId>{2});
  EXPECT_EQ(g.b_only_sum, std::vector<IndexId>{3});
}

void expect_ttgt_matches_einsum(const DenseTensor& a, const DenseTensor& b,
                                const std::vector<IndexId>& result_dims,
                                IndexSet sums) {
  const DenseTensor want = [&] {
    ScopedKernelConfig ref(KernelKind::kReference);
    return einsum_pair(a, b, result_dims, sums);
  }();
  std::vector<std::uint64_t> extents;
  for (IndexId d : result_dims) {
    extents.push_back(a.has_dim(d) ? a.extent_of(d) : b.extent_of(d));
  }
  DenseTensor got(result_dims, extents);
  ttgt_contract_acc(a, b, sums, got);
  EXPECT_LE(got.max_abs_diff(want), 1e-12);
}

TEST(Ttgt, RankZeroOperands) {
  // scalar · scalar → scalar, via a 1×1×1 GEMM.
  DenseTensor a, b;
  a.data()[0] = 3.0;
  b.data()[0] = -2.0;
  DenseTensor c;
  ttgt_contract_acc(a, b, IndexSet{}, c);
  EXPECT_DOUBLE_EQ(c.data()[0], -6.0);
  // Accumulates, not overwrites.
  ttgt_contract_acc(a, b, IndexSet{}, c);
  EXPECT_DOUBLE_EQ(c.data()[0], -12.0);
}

TEST(Ttgt, RankOneDotAndAxpy) {
  Rng rng(7);
  DenseTensor x({0}, {9}), y({0}, {9});
  x.fill_random(rng);
  y.fill_random(rng);
  // Dot product: everything is K.
  expect_ttgt_matches_einsum(x, y, {}, IndexSet::single(0));
  // Scale: shared index kept in the result (batch of 9, 1×1×1 GEMMs).
  expect_ttgt_matches_einsum(x, y, {0}, IndexSet{});
}

TEST(Ttgt, OuterProductHasEmptyK) {
  Rng rng(8);
  DenseTensor x({0}, {6}), y({1}, {5});
  x.fill_random(rng);
  y.fill_random(rng);
  const TtgtGroups g = classify_ttgt(x, y, {0, 1}, IndexSet{});
  EXPECT_TRUE(g.k.empty());
  EXPECT_EQ(g.k_elems, 1u);
  expect_ttgt_matches_einsum(x, y, {0, 1}, IndexSet{});
}

TEST(Ttgt, ExtentOneDimensions) {
  Rng rng(9);
  DenseTensor a({0, 1, 2}, {1, 5, 1}), b({1, 3}, {5, 1});
  a.fill_random(rng);
  b.fill_random(rng);
  expect_ttgt_matches_einsum(a, b, {0, 2, 3}, IndexSet::single(1));
}

TEST(Ttgt, PermutedOperandsMatchReference) {
  Rng rng(10);
  // Batched, transposed layouts: C[b,m,n] = Σ_k A[k,b,m]·B[n,k,b].
  DenseTensor a({3, 0, 1}, {6, 4, 5}), b({2, 3, 0}, {7, 6, 4});
  a.fill_random(rng);
  b.fill_random(rng);
  expect_ttgt_matches_einsum(a, b, {0, 1, 2}, IndexSet::single(3));
}

TEST(Einsum, KernelsAgreeOnFuzzedContractions) {
  Rng rng(11);
  for (int iter = 0; iter < 30; ++iter) {
    // Up to 4 labels split between A-only / B-only / shared; shared
    // labels are summed or kept at random.
    std::vector<IndexId> adims, bdims, result;
    IndexSet sums;
    for (IndexId l = 0; l < 4; ++l) {
      const std::int64_t role = rng.uniform_int(0, 5);
      const bool in_a = role == 0 || role >= 3;
      const bool in_b = role == 1 || role >= 3;
      if (in_a) adims.push_back(l);
      if (in_b) bdims.push_back(l);
      if (!in_a && !in_b) continue;
      if (role == 4 || (role < 3 && rng.uniform_int(0, 2) == 0)) {
        sums.insert(l);
      } else {
        result.push_back(l);
      }
    }
    std::vector<std::uint64_t> aext, bext, ext(4);
    for (auto& e : ext)
      e = static_cast<std::uint64_t>(rng.uniform_int(1, 5));
    for (IndexId l : adims) aext.push_back(ext[l]);
    for (IndexId l : bdims) bext.push_back(ext[l]);
    DenseTensor a(adims, aext), b(bdims, bext);
    a.fill_random(rng);
    b.fill_random(rng);
    DenseTensor ref_out, tiled_out;
    {
      ScopedKernelConfig force(KernelKind::kReference);
      ref_out = einsum_pair(a, b, result, sums);
    }
    {
      ScopedKernelConfig force(KernelKind::kTiled);
      tiled_out = einsum_pair(a, b, result, sums);
    }
    ASSERT_LE(tiled_out.max_abs_diff(ref_out), 1e-12) << "iter " << iter;
  }
}

TEST(Matmul, ContractBlocksAgreesAcrossKernels) {
  Rng rng(12);
  const std::uint64_t n = 40;
  DenseTensor a({0, 1}, {n, n}), b({1, 2}, {n, n});
  a.fill_random(rng);
  b.fill_random(rng);
  DenseTensor c_ref({0, 2}, {n, n}), c_tiled({0, 2}, {n, n});
  {
    ScopedKernelConfig force(KernelKind::kReference);
    contract_blocks_acc(a, b, IndexSet::single(1), c_ref);
  }
  {
    ScopedKernelConfig force(KernelKind::kTiled);
    contract_blocks_acc(a, b, IndexSet::single(1), c_tiled);
  }
  EXPECT_LE(c_tiled.max_abs_diff(c_ref), 1e-11);
}

// ---------------------------------------- planning is kernel-agnostic

/// Zeroes the search wall-clock fields — the only legitimately
/// nondeterministic part of a serialized plan.  (No std::regex: its
/// libstdc++ internals trip -Wmaybe-uninitialized under the sanitized
/// -Werror build.)
std::string strip_wall_times(std::string json) {
  std::size_t pos = 0;
  while ((pos = json.find("wall_s\":", pos)) != std::string::npos) {
    const std::size_t start = pos + 8;
    std::size_t end = start;
    while (end < json.size() &&
           std::string("0123456789.eE+-").find(json[end]) !=
               std::string::npos) {
      ++end;
    }
    json.replace(start, end - start, "0");
    pos = start;
  }
  return json;
}

TEST(Kernel, PlansAndPseudocodeIdenticalUnderEveryKernelSetting) {
  ContractionTree tree =
      ContractionTree::from_sequence(parse_formula_sequence(kPaperProgram));
  CharacterizedModel model(characterize_itanium(64));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = 4ull * 1000 * 1000 * 1000;

  std::string base_plan, base_code;
  for (const KernelKind kind :
       {KernelKind::kAuto, KernelKind::kReference, KernelKind::kTiled}) {
    ScopedKernelConfig force(kind);
    const OptimizedPlan plan = optimize(tree, model, cfg);
    const std::string plan_json =
        strip_wall_times(plan_to_json(plan, tree.space()));
    const std::string code =
        generate_pseudocode(tree, plan, model.grid().edge);
    if (base_plan.empty()) {
      base_plan = plan_json;
      base_code = code;
      // The annotation itself must be present when a grid edge is given.
      EXPECT_NE(code.find("kern="), std::string::npos) << code;
    } else {
      EXPECT_EQ(plan_json, base_plan) << kernel_kind_name(kind);
      EXPECT_EQ(code, base_code) << kernel_kind_name(kind);
    }
  }
}

// ------------------------------------------------------ observability

TEST(Kernel, TiledGemmEmitsMetrics) {
  obs::ScopedMetrics scoped;
  const std::size_t n = 64;
  const std::vector<double> a = random_vec(n * n, 13);
  const std::vector<double> b = random_vec(n * n, 14);
  std::vector<double> c(n * n, 0.0);
  gemm_tiled(a, b, c, n, n, n, TileConfig{}, 1);
  const auto snap = obs::metrics_snapshot();
  ASSERT_TRUE(snap.contains("kernel.gemm_s"));
  EXPECT_GE(snap.at("kernel.gemm_s").count, 1u);
  ASSERT_TRUE(snap.contains("kernel.pack_bytes"));
  EXPECT_GE(snap.at("kernel.pack_bytes").total,
            n * n * 2 * sizeof(double));
  ASSERT_TRUE(snap.contains("kernel.tiled_calls"));
}

}  // namespace
}  // namespace tce
