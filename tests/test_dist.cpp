// Tests for tce/dist: processor grids, distributions, the §3.2
// DistSize/MsgFactor formulas (checked against numbers worked out in the
// paper), and Cannon choice enumeration.

#include <gtest/gtest.h>

#include <set>

#include "tce/common/error.hpp"
#include "tce/dist/cannon_space.hpp"
#include "tce/expr/parser.hpp"

#include "paper_workload.hpp"

namespace tce {
namespace {

using ::tce::testing::kNodeLimit4GB;
using ::tce::testing::kPaperProgram;
using ::tce::testing::paper_tree;


class DistFixture : public ::testing::Test {
 protected:
  DistFixture()
      : seq_(parse_formula_sequence(kPaperProgram)), sp_(seq_.space()) {}

  TensorRef tensor(const std::string& name) const {
    for (const auto& t : seq_.inputs()) {
      if (t.name == name) return t;
    }
    for (const auto& f : seq_.formulas()) {
      if (f.result.name == name) return f.result;
    }
    throw Error("no tensor " + name);
  }

  IndexId id(const char* n) const { return sp_.id(n); }

  FormulaSequence seq_;
  const IndexSpace& sp_;
};

// -------------------------------------------------------------------- Grid

TEST(ProcGrid, BuildsSquareGrids) {
  ProcGrid g = ProcGrid::make(64, 2);
  EXPECT_EQ(g.edge, 8u);
  EXPECT_EQ(g.nodes(), 32u);
  EXPECT_EQ(g.rank(2, 3), 19u);
  EXPECT_EQ(g.row(19), 2u);
  EXPECT_EQ(g.col(19), 3u);
  EXPECT_EQ(g.node_of(19), 9u);
}

TEST(ProcGrid, RejectsNonSquare) {
  EXPECT_THROW(ProcGrid::make(12, 2), ContractViolation);
}

TEST(ProcGrid, RejectsBadNodePacking) {
  EXPECT_THROW(ProcGrid::make(9, 2), ContractViolation);
}

// ---------------------------------------------------------- Distribution

TEST(Distribution, BasicsAndRendering) {
  IndexSpace sp;
  IndexId b = sp.add("b", 480);
  IndexId f = sp.add("f", 64);
  Distribution d(b, f);
  EXPECT_TRUE(d.contains(b));
  EXPECT_TRUE(d.contains(f));
  EXPECT_EQ(d.dim_of(b), 1);
  EXPECT_EQ(d.dim_of(f), 2);
  EXPECT_EQ(d.str(sp), "<b,f>");
  EXPECT_EQ(d.transposed().str(sp), "<f,b>");
  Distribution half(b, kNoIndex);
  EXPECT_EQ(half.str(sp), "<b,·>");
  EXPECT_FALSE(half.contains(f));
  EXPECT_TRUE(Distribution().undistributed());
}

TEST(Distribution, RejectsRepeatedIndex) {
  EXPECT_THROW(Distribution(3, 3), ContractViolation);
}

// §3.2(i) worked example: with P = 16 and the paper's extents, T1(b,c,d,f)
// distributed <b,f> and fused {c} has per-processor size
// N_b/4 · 1 · N_d · N_f/4 = 120·1·480·16 = 921,600 elements (7.2 MB).
TEST_F(DistFixture, PaperWorkedDistSizeExample) {
  ProcGrid g = ProcGrid::make(16, 2);
  TensorRef t1 = tensor("T1");
  Distribution alpha(id("b"), id("f"));
  IndexSet fused = IndexSet::single(id("c"));
  EXPECT_EQ(dist_size(t1, alpha, fused, sp_, g), 921'600u);
  EXPECT_EQ(dist_bytes(t1, alpha, fused, sp_, g), 921'600u * 8);
}

TEST_F(DistFixture, DistSizeFullyDistributedUnfusedIsTotalOverP) {
  // When two dims are distributed and nothing is fused, per-proc size is
  // total/P for extents divisible by √P.
  ProcGrid g = ProcGrid::make(64, 2);
  TensorRef d = tensor("D");
  Distribution alpha(id("d"), id("e"));
  EXPECT_EQ(dist_size(d, alpha, IndexSet(), sp_, g),
            d.num_elements(sp_) / 64);
}

TEST_F(DistFixture, DistSizeUndistributedUnfusedIsFullArray) {
  ProcGrid g = ProcGrid::make(16, 2);
  TensorRef d = tensor("D");
  EXPECT_EQ(dist_size(d, Distribution(), IndexSet(), sp_, g),
            d.num_elements(sp_));
}

TEST_F(DistFixture, DistRangeRoundsUpNonDivisibleExtents) {
  IndexSpace sp;
  IndexId x = sp.add("x", 10);
  ProcGrid g = ProcGrid::make(9, 3);  // edge 3; 10/3 -> 4
  EXPECT_EQ(dist_range(x, Distribution(x, kNoIndex), IndexSet(), sp, g),
            4u);
}

TEST_F(DistFixture, FusedDimensionContributesOne) {
  ProcGrid g = ProcGrid::make(16, 2);
  TensorRef t1 = tensor("T1");
  // Fuse everything: size collapses to 1 (a scalar per processor).
  EXPECT_EQ(dist_size(t1, Distribution(), t1.index_set(), sp_, g), 1u);
}

TEST_F(DistFixture, DistributionMustNameArrayDims) {
  ProcGrid g = ProcGrid::make(16, 2);
  TensorRef t1 = tensor("T1");  // dims b,c,d,f
  Distribution bad(id("a"), id("b"));
  EXPECT_FALSE(distribution_valid_for(bad, t1));
  EXPECT_THROW(dist_size(t1, bad, IndexSet(), sp_, g), ContractViolation);
}

// ------------------------------------------------------------- MsgFactor

TEST_F(DistFixture, MsgFactorIsOneWhenUnfused) {
  ProcGrid g = ProcGrid::make(16, 2);
  TensorRef b = tensor("B");
  EXPECT_EQ(msg_factor(b, Distribution(id("e"), id("b")), IndexSet(), sp_,
                       g),
            1u);
}

// §3.2(ii): fusing index t multiplies message count by N_t when t is not
// distributed, and by N_t/√P when it is.
TEST_F(DistFixture, MsgFactorCountsFusedLoopIterations) {
  ProcGrid g = ProcGrid::make(16, 2);
  TensorRef b = tensor("B");  // B[b,e,f,l]
  IndexSet fuse_f = IndexSet::single(id("f"));
  // f undistributed in <e,b>: factor N_f = 64.
  EXPECT_EQ(msg_factor(b, Distribution(id("e"), id("b")), fuse_f, sp_, g),
            64u);
  // f distributed in <e,f>: factor N_f/4 = 16.
  EXPECT_EQ(msg_factor(b, Distribution(id("e"), id("f")), fuse_f, sp_, g),
            16u);
}

TEST_F(DistFixture, MsgFactorMultipliesOverFusedDims) {
  ProcGrid g = ProcGrid::make(16, 2);
  TensorRef t1 = tensor("T1");  // T1[b,c,d,f]
  IndexSet fused = IndexSet::of({id("c"), id("f")});
  // With <b,d>: c and f both undistributed -> 480 * 64.
  EXPECT_EQ(msg_factor(t1, Distribution(id("b"), id("d")), fused, sp_, g),
            480u * 64u);
}

// ------------------------------------------------- Fusion compatibility

TEST_F(DistFixture, FusionCompatibilityRequiresMatchingSplit) {
  Distribution u(id("b"), id("f"));
  Distribution v(id("b"), id("c"));
  // b distributed at both: fusable.
  EXPECT_TRUE(fusion_compatible(id("b"), u, v));
  // f distributed at u only: not fusable.
  EXPECT_FALSE(fusion_compatible(id("f"), u, v));
  // d distributed at neither: fusable.
  EXPECT_TRUE(fusion_compatible(id("d"), u, v));
}

// ------------------------------------------------------- Cannon choices

TEST_F(DistFixture, EnumeratesPaperPatternCount) {
  ContractionTree t = ContractionTree::from_sequence(seq_);
  // Root: S = sum_ck T2 * A with NI = NJ = NK = 2.
  const ContractionNode& root = t.node(t.root());
  auto choices = enumerate_cannon_choices(root);
  // Paper counts 3·NI·NJ·NK fully-assigned patterns; we additionally
  // enumerate the transposed orientation and unassigned (replicated)
  // positions.  With NI = NJ = NK = 2: per orientation, 8 full triples
  // with 3 rotation indices each, 12 two-assigned triples with 2, and 6
  // one-assigned with 1 → 54; doubled for orientation → 108.
  EXPECT_EQ(choices.size(), 108u);
  std::size_t fully_assigned = 0;
  for (const auto& c : choices) {
    if (c.i != kNoIndex && c.j != kNoIndex && c.k != kNoIndex) {
      ++fully_assigned;
    }
  }
  EXPECT_EQ(fully_assigned, 2u * 3u * 2u * 2u * 2u);
}

TEST_F(DistFixture, ChoiceDistributionsAreConsistent) {
  ContractionTree t = ContractionTree::from_sequence(seq_);
  const ContractionNode& root = t.node(t.root());
  for (const auto& c : enumerate_cannon_choices(root)) {
    // Exactly two of the three arrays rotate.
    int rotations = static_cast<int>(c.rotates_left()) +
                    static_cast<int>(c.rotates_right()) +
                    static_cast<int>(c.rotates_result());
    EXPECT_EQ(rotations, 2);
    // The rotation index is one of the chosen triplet.
    EXPECT_TRUE(c.rot == c.i || c.rot == c.j || c.rot == c.k);
    // The two rotating arrays move along opposite grid dimensions (their
    // shared coordinates with the fixed array are pinned on opposite
    // dims).
    std::vector<int> dims;
    if (c.rotates_left()) dims.push_back(c.left_rot_dim());
    if (c.rotates_right()) dims.push_back(c.right_rot_dim());
    if (c.rotates_result()) dims.push_back(c.result_rot_dim());
    ASSERT_EQ(dims.size(), 2u);
    EXPECT_EQ(dims[0] + dims[1], 3);  // {1,2} in some order
    // Distribution index sets match the roles.
    EXPECT_TRUE(c.left_dist().index_set().subset_of(
        root.left_indices | root.sum_indices));
    EXPECT_TRUE(c.right_dist().index_set().subset_of(
        root.right_indices | root.sum_indices));
    EXPECT_TRUE(c.result_dist().index_set().subset_of(
        root.tensor.index_set()));
  }
}

TEST(CannonChoices, HandlesEmptyIndexSets) {
  // Matrix–vector: y[i] = sum[k] M[i,k] * x[k]; J is empty.
  FormulaSequence seq = parse_formula_sequence(
      "index i = 16; index k = 8\ny[i] = sum[k] M[i,k] * x[k]");
  ContractionTree t = ContractionTree::from_sequence(seq);
  auto choices = enumerate_cannon_choices(t.node(t.root()));
  // Candidates: i ∈ {i, ·}, j ∈ {·}, k ∈ {k, ·}.  Per orientation:
  // (i,·,k) → 2 rots, (i,·,·) → 1, (·,·,k) → 1; doubled → 8.
  EXPECT_EQ(choices.size(), 8u);
  for (const auto& c : choices) {
    EXPECT_EQ(c.j, kNoIndex);
    EXPECT_NE(c.rot, kNoIndex);
  }
}

TEST(CannonChoices, RejectsBatchContractions) {
  FormulaSequence seq = parse_formula_sequence(R"(
    index i, j, t = 8
    S[i,j,t] = A[i,t] * B[j,t]
  )");
  ContractionTree t = ContractionTree::from_sequence(seq);
  EXPECT_THROW(enumerate_cannon_choices(t.node(t.root())), Error);
}

}  // namespace
}  // namespace tce
