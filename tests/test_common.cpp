// Tests for tce/common: contracts, checked/saturating arithmetic,
// strings, tables, and byte-unit formatting (including the paper's table
// convention).

#include <gtest/gtest.h>

#include <limits>

#include "tce/common/checked.hpp"
#include "tce/common/rng.hpp"
#include "tce/common/strings.hpp"
#include "tce/common/table.hpp"
#include "tce/common/units.hpp"

namespace tce {
namespace {

// ---------------------------------------------------------------- checked

TEST(Checked, MulAndAddPassThrough) {
  EXPECT_EQ(checked_mul(480, 480), 230'400u);
  EXPECT_EQ(checked_add(1, 2), 3u);
  EXPECT_EQ(checked_mul(0, std::numeric_limits<std::uint64_t>::max()), 0u);
}

TEST(Checked, MulOverflowThrows) {
  const std::uint64_t big = std::uint64_t{1} << 63;
  EXPECT_THROW(checked_mul(big, 2), ContractViolation);
  EXPECT_THROW(checked_add(std::numeric_limits<std::uint64_t>::max(), 1),
               ContractViolation);
}

TEST(Checked, SaturatingClampsInsteadOfThrowing) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(saturating_mul(max, 2), max);
  EXPECT_EQ(saturating_add(max, 1), max);
  EXPECT_EQ(saturating_mul(3, 4), 12u);
}

TEST(Checked, ExactIsqrt) {
  EXPECT_EQ(exact_isqrt(0), 0u);
  EXPECT_EQ(exact_isqrt(1), 1u);
  EXPECT_EQ(exact_isqrt(64), 8u);
  EXPECT_EQ(exact_isqrt(65536), 256u);
  EXPECT_THROW(exact_isqrt(63), ContractViolation);
}

TEST(Checked, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_THROW(ceil_div(1, 0), ContractViolation);
}

// ---------------------------------------------------------------- strings

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(split("a, b ,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_nonempty("a,,b", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("T1"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("1T"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Strings, JoinAndFixed) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(98.04, 1), "98.0");
}

// ------------------------------------------------------------------ units

TEST(Units, PaperConventionMatchesPublishedEntries) {
  // Exact entries from the paper's Tables 1-2.
  EXPECT_EQ(format_bytes_paper(117'964'800), "115.2MB");
  EXPECT_EQ(format_bytes_paper(1'769'472'000), "1.728GB");
  EXPECT_EQ(format_bytes_paper(110'592'000), "108.0MB");
  EXPECT_EQ(format_bytes_paper(58'982'400), "57.6MB");
}

TEST(Units, SiFormatting) {
  EXPECT_EQ(format_bytes_si(999), "999 B");
  EXPECT_EQ(format_bytes_si(1'500), "1.50 KB");
  EXPECT_EQ(format_bytes_si(2'000'000'000), "2.00 GB");
}

TEST(Units, SecondsPaperStyle) {
  EXPECT_EQ(format_seconds_paper(98.0), "98.0 sec.");
}

// ------------------------------------------------------------------ table

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"});
  t.set_right_aligned(1);
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.str();
  // All lines equal width up to trailing content.
  EXPECT_NE(s.find("name       value"), std::string::npos);
  EXPECT_NE(s.find("a              1"), std::string::npos);
  EXPECT_NE(s.find("long-name  12345"), std::string::npos);
}

TEST(Table, RejectsBadRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(t.set_right_aligned(5), ContractViolation);
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformRealInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(-1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace tce
