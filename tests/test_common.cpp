// Tests for tce/common: contracts, checked/saturating arithmetic,
// strings, tables, and byte-unit formatting (including the paper's table
// convention).

#include <gtest/gtest.h>

#include <limits>

#include "tce/common/checked.hpp"
#include "tce/common/error.hpp"
#include "tce/common/json.hpp"
#include "tce/common/parse.hpp"
#include "tce/common/rng.hpp"
#include "tce/common/strings.hpp"
#include "tce/common/table.hpp"
#include "tce/common/units.hpp"

namespace tce {
namespace {

// ---------------------------------------------------------------- checked

TEST(Checked, MulAndAddPassThrough) {
  EXPECT_EQ(checked_mul(480, 480), 230'400u);
  EXPECT_EQ(checked_add(1, 2), 3u);
  EXPECT_EQ(checked_mul(0, std::numeric_limits<std::uint64_t>::max()), 0u);
}

TEST(Checked, MulOverflowThrows) {
  const std::uint64_t big = std::uint64_t{1} << 63;
  EXPECT_THROW(checked_mul(big, 2), ContractViolation);
  EXPECT_THROW(checked_add(std::numeric_limits<std::uint64_t>::max(), 1),
               ContractViolation);
}

TEST(Checked, SaturatingClampsInsteadOfThrowing) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(saturating_mul(max, 2), max);
  EXPECT_EQ(saturating_add(max, 1), max);
  EXPECT_EQ(saturating_mul(3, 4), 12u);
}

TEST(Checked, ExactIsqrt) {
  EXPECT_EQ(exact_isqrt(0), 0u);
  EXPECT_EQ(exact_isqrt(1), 1u);
  EXPECT_EQ(exact_isqrt(64), 8u);
  EXPECT_EQ(exact_isqrt(65536), 256u);
  EXPECT_THROW(exact_isqrt(63), ContractViolation);
}

TEST(Checked, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_THROW(ceil_div(1, 0), ContractViolation);
}

// ------------------------------------------------------------------ parse

TEST(Parse, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Parse, RejectsGarbageEmptyAndPartialNumbers) {
  // Every shape strtoul/atoi silently folds to 0 (or truncates at the
  // first bad character) must come back nullopt instead.
  EXPECT_EQ(parse_u64(""), std::nullopt);
  EXPECT_EQ(parse_u64("garbage"), std::nullopt);
  EXPECT_EQ(parse_u64("12abc"), std::nullopt);
  EXPECT_EQ(parse_u64(" 12"), std::nullopt);
  EXPECT_EQ(parse_u64("12 "), std::nullopt);
  EXPECT_EQ(parse_u64("-1"), std::nullopt);
  EXPECT_EQ(parse_u64("+1"), std::nullopt);
  EXPECT_EQ(parse_u64("0x10"), std::nullopt);
  EXPECT_EQ(parse_u64("1.5"), std::nullopt);
}

TEST(Parse, RejectsOverflow) {
  EXPECT_EQ(parse_u64("18446744073709551616"), std::nullopt);  // max+1
  EXPECT_EQ(parse_u64("99999999999999999999999"), std::nullopt);
}

TEST(Parse, RangeCheckedVariant) {
  EXPECT_EQ(parse_u64_in("8", 8, 64), 8u);
  EXPECT_EQ(parse_u64_in("64", 8, 64), 64u);
  EXPECT_EQ(parse_u64_in("7", 8, 64), std::nullopt);
  EXPECT_EQ(parse_u64_in("65", 8, 64), std::nullopt);
  EXPECT_EQ(parse_u64_in("junk", 0, 100), std::nullopt);
}

// ---------------------------------------------------------------- strings

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(split("a, b ,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_nonempty("a,,b", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("T1"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("1T"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Strings, JoinAndFixed) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(98.04, 1), "98.0");
}

// ------------------------------------------------------------------ units

TEST(Units, PaperConventionMatchesPublishedEntries) {
  // Exact entries from the paper's Tables 1-2.
  EXPECT_EQ(format_bytes_paper(117'964'800), "115.2MB");
  EXPECT_EQ(format_bytes_paper(1'769'472'000), "1.728GB");
  EXPECT_EQ(format_bytes_paper(110'592'000), "108.0MB");
  EXPECT_EQ(format_bytes_paper(58'982'400), "57.6MB");
}

TEST(Units, SiFormatting) {
  EXPECT_EQ(format_bytes_si(999), "999 B");
  EXPECT_EQ(format_bytes_si(1'500), "1.50 KB");
  EXPECT_EQ(format_bytes_si(2'000'000'000), "2.00 GB");
}

TEST(Units, SecondsPaperStyle) {
  EXPECT_EQ(format_seconds_paper(98.0), "98.0 sec.");
}

// ------------------------------------------------------------------ table

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"});
  t.set_right_aligned(1);
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.str();
  // All lines equal width up to trailing content.
  EXPECT_NE(s.find("name       value"), std::string::npos);
  EXPECT_NE(s.find("a              1"), std::string::npos);
  EXPECT_NE(s.find("long-name  12345"), std::string::npos);
}

TEST(Table, RejectsBadRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(t.set_right_aligned(5), ContractViolation);
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformRealInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(-1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

// ------------------------------------------------------------------ json

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  // RFC 8259 §7: \uXXXX escapes, including a surrogate pair for a
  // codepoint beyond the BMP (U+1D11E, musical G clef).
  const json::Value v =
      json::parse("\"aA\\u00e9\\u4e2d\\ud834\\udd1e\"");
  EXPECT_EQ(v.string,
            "aA\xC3\xA9\xE4\xB8\xAD\xF0\x9D\x84\x9E");
}

TEST(Json, LoneOrMalformedSurrogatesAreRejected) {
  EXPECT_THROW(json::parse(R"("\ud834")"), Error);        // high, no low
  EXPECT_THROW(json::parse(R"("\ud834A")"), Error);  // high + non-low
  EXPECT_THROW(json::parse(R"("\udd1e")"), Error);        // bare low
  EXPECT_THROW(json::parse(R"("\uZZZZ")"), Error);        // not hex
  EXPECT_THROW(json::parse(R"("\u12")"), Error);          // truncated
}

TEST(Json, OversizedIntegerLiteralIsRejectedNotClamped) {
  // Regression: the integer branch used to re-parse the token with raw
  // strtoull, which clamps to UINT64_MAX on overflow with errno the
  // only witness.  A 21-digit literal must be a parse error, never a
  // silently clamped value.
  EXPECT_THROW(json::parse("123456789012345678901"), Error);
  EXPECT_THROW(json::parse("{\"bytes\": 999999999999999999999}"), Error);
  // The largest representable value still parses exactly.
  const json::Value v = json::parse("18446744073709551615");
  EXPECT_TRUE(v.is_integer);
  EXPECT_EQ(v.integer, 18446744073709551615ULL);
}

TEST(Json, ControlCharactersEscapeOnWriteAndRoundTrip) {
  // Raw control characters are illegal inside JSON strings; quote()
  // must emit escapes for all of 0x00..0x1F and the parser must map
  // them back to the identical bytes.
  std::string all;
  for (int c = 1; c < 0x20; ++c) all.push_back(static_cast<char>(c));
  all += "\"\\ plain";
  const std::string quoted = json::quote(all);
  for (char c : quoted) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << quoted;
  }
  EXPECT_EQ(json::parse(quoted).string, all);
}

TEST(Json, NonBmpStringSurvivesWriteParseWrite) {
  // UTF-8 payloads pass through quote() byte-identically, and escaped
  // and literal spellings of the same text parse to the same value.
  const std::string text = "caf\xC3\xA9 \xF0\x9D\x84\x9E end";
  const json::Value direct = json::parse(json::quote(text));
  EXPECT_EQ(direct.string, text);
  const json::Value escaped =
      json::parse("\"caf\\u00e9 \\ud834\\udd1e end\"");
  EXPECT_EQ(escaped.string, text);
}

}  // namespace
}  // namespace tce
