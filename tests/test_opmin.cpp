// Tests for tce/opmin: the operation-minimization subset DP must
// reproduce the paper's §2 operation counts and produce valid,
// numerically correct formula sequences.

#include <gtest/gtest.h>

#include "tce/common/error.hpp"
#include "tce/opmin/opmin.hpp"
#include "tce/tensor/einsum.hpp"

namespace tce {
namespace {

// The §2 example: S_abij = Σ_cdefkl A_acik B_befl C_dfjk D_cdel.
ParsedProgram paper_product(std::uint64_t n) {
  const std::string ns = std::to_string(n);
  return parse_program(
      "index a, b, c, d, e, f, i, j, k, l = " + ns +
      "\n"
      "S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k] * B[b,e,f,l] * "
      "C[d,f,j,k] * D[c,d,e,l]");
}

TEST(OpMin, PaperExampleSixNToTheSix) {
  const std::uint64_t n = 10;
  ParsedProgram p = paper_product(n);
  OpMinResult r = minimize_operations(
      OpMinInput::from_statement(p.statements[0]), p.space);
  const std::uint64_t n6 = n * n * n * n * n * n;
  const std::uint64_t n10 = n6 * n * n * n * n;
  EXPECT_EQ(r.flops, 6 * n6);        // paper: "only requires 6N^6"
  EXPECT_EQ(r.naive_flops, 4 * n10); // paper: "4N^10"
  EXPECT_EQ(r.sequence.formulas().size(), 3u);
}

TEST(OpMin, PaperExtentsChooseBDFirst) {
  // With the paper's §4 extents the optimal order is
  // ((B·D)·C)·A — the formula sequence of Fig. 2(a).
  ParsedProgram p = parse_program(R"(
    index a, b, c, d = 480
    index e, f = 64
    index i, j, k, l = 32
    S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k] * B[b,e,f,l] * C[d,f,j,k] * D[c,d,e,l]
  )");
  OpMinResult r = minimize_operations(
      OpMinInput::from_statement(p.statements[0]), p.space);
  ASSERT_EQ(r.sequence.formulas().size(), 3u);
  const Formula& first = r.sequence.formulas()[0];
  std::set<std::string> ops{first.lhs.name, first.rhs->name};
  EXPECT_EQ(ops, (std::set<std::string>{"B", "D"}));
  const Formula& last = r.sequence.formulas()[2];
  EXPECT_EQ(last.result.name, "S");
  // The optimal count matches the Fig. 2 flop budget.
  const std::uint64_t n480 = 480ull * 480 * 480;
  EXPECT_EQ(r.flops, 2 * n480 * 64 * 64 * 32 + 2 * n480 * 64 * 32 * 32 +
                         2 * n480 * 32 * 32 * 32);
}

TEST(OpMin, FigureOnePreReductionCounts) {
  // §2: S(t) = Σ_ijk A(i,j,t)·B(j,k,t) costs 2·Ni·Nj·Nk·Nt directly but
  // only Ni·Nj·Nt + Nj·Nk·Nt + 2·Nj·Nt after factoring.
  ParsedProgram p = parse_program(R"(
    index i = 10
    index j = 20
    index k = 30
    index t = 5
    S[t] = sum[i,j,k] A[i,j,t] * B[j,k,t]
  )");
  OpMinResult r = minimize_operations(
      OpMinInput::from_statement(p.statements[0]), p.space);
  EXPECT_EQ(r.flops, 10u * 20 * 5 + 20u * 30 * 5 + 2u * 20 * 5);
  EXPECT_EQ(r.naive_flops, 2u * 10 * 20 * 30 * 5);
  // Structure: two pre-reductions plus one batch contraction.
  ASSERT_EQ(r.sequence.formulas().size(), 3u);
  EXPECT_EQ(r.sequence.formulas()[0].kind, Formula::Kind::kSum);
  EXPECT_EQ(r.sequence.formulas()[1].kind, Formula::Kind::kSum);
  EXPECT_EQ(r.sequence.formulas()[2].kind, Formula::Kind::kContract);
}

TEST(OpMin, BinarizedSequenceEvaluatesCorrectly) {
  // The optimal order must compute the same values as direct evaluation.
  ParsedProgram p = paper_product(4);
  OpMinResult r = minimize_operations(
      OpMinInput::from_statement(p.statements[0]), p.space);
  ContractionTree tree = ContractionTree::from_sequence(r.sequence);
  Rng rng(99);
  auto inputs = make_random_inputs(tree, rng);
  DenseTensor got = evaluate_tree(tree, inputs);

  // Direct evaluation: one einsum over all four factors, pairwise without
  // dropping any index until the end.
  const IndexSpace& sp = p.space;
  auto dim = [&](const char* nm) { return sp.id(nm); };
  DenseTensor ab = einsum_pair(inputs.at("A"), inputs.at("B"),
                               {dim("a"), dim("c"), dim("i"), dim("k"),
                                dim("b"), dim("e"), dim("f"), dim("l")},
                               IndexSet());
  DenseTensor abc = einsum_pair(ab, inputs.at("C"),
                                {dim("a"), dim("c"), dim("i"), dim("k"),
                                 dim("b"), dim("e"), dim("f"), dim("l"),
                                 dim("d"), dim("j")},
                                IndexSet());
  DenseTensor want = einsum_pair(
      abc, inputs.at("D"), {dim("a"), dim("b"), dim("i"), dim("j")},
      IndexSet::of({dim("c"), dim("d"), dim("e"), dim("f"), dim("k"),
                    dim("l")}));
  EXPECT_LT(want.max_abs_diff(got), 1e-8);
}

TEST(OpMin, TreeFlopsMatchReportedFlops) {
  ParsedProgram p = paper_product(6);
  OpMinResult r = minimize_operations(
      OpMinInput::from_statement(p.statements[0]), p.space);
  ContractionTree tree = ContractionTree::from_sequence(r.sequence);
  EXPECT_EQ(tree.total_flops(), r.flops);
}

TEST(OpMin, OptimalNeverWorseThanAnyLeftDeepOrder) {
  // Property: the DP result is ≤ the cost of every left-deep
  // permutation, computed independently.
  ParsedProgram p = parse_program(R"(
    index a = 12
    index b = 7
    index c = 19
    index d = 4
    index e = 9
    S[a,e] = sum[b,c,d] W[a,b] * X[b,c] * Y[c,d] * Z[d,e]
  )");
  OpMinResult r = minimize_operations(
      OpMinInput::from_statement(p.statements[0]), p.space);

  const auto& stmt = p.statements[0];
  std::vector<int> perm{0, 1, 2, 3};
  const IndexSet result_set = stmt.result.index_set();
  std::uint64_t best_manual = ~0ull;
  do {
    // Cost of contracting factors in this left-deep order, summing an
    // index as soon as no remaining factor or the result needs it.
    IndexSet acc = stmt.factors[static_cast<size_t>(perm[0])].index_set();
    std::uint64_t cost = 0;
    for (std::size_t step = 1; step < perm.size(); ++step) {
      IndexSet rest;
      for (std::size_t t = step + 1; t < perm.size(); ++t) {
        rest = rest |
               stmt.factors[static_cast<size_t>(perm[t])].index_set();
      }
      const IndexSet rhs =
          stmt.factors[static_cast<size_t>(perm[step])].index_set();
      const IndexSet loop = acc | rhs;
      cost += 2 * loop.extent_product(p.space);
      acc = loop & (result_set | rest);
    }
    best_manual = std::min(best_manual, cost);
  } while (std::next_permutation(perm.begin(), perm.end()));

  EXPECT_LE(r.flops, best_manual);
}

TEST(OpMin, RejectsIllFormedInput) {
  ParsedProgram p = paper_product(4);
  OpMinInput in = OpMinInput::from_statement(p.statements[0]);
  OpMinInput bad = in;
  bad.sum_indices.insert(p.space.id("a"));  // a is a result index
  EXPECT_THROW(minimize_operations(bad, p.space), Error);
  OpMinInput empty = in;
  empty.factors.clear();
  EXPECT_THROW(minimize_operations(empty, p.space), Error);
}

TEST(OpMin, BinarizeProgramMixesStatementKinds) {
  ParsedProgram p = parse_program(R"(
    index a, b, c, d = 6
    T[a,c] = sum[b] X[a,b] * Y[b,c]
    U[a] = sum[c,d] T[a,c] * V[c,d] * W[d]
  )");
  FormulaSequence seq = binarize_program(p);
  // Statement 2 binarizes into 2 formulas; total 3.
  EXPECT_EQ(seq.formulas().size(), 3u);
  EXPECT_EQ(seq.output().name, "U");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  EXPECT_GT(tree.total_flops(), 0u);
}

TEST(OpMin, SingleFactorReduction) {
  ParsedProgram p =
      parse_program("index i, j = 8\nS[j] = sum[i] A[i,j]");
  OpMinResult r = minimize_operations(
      OpMinInput::from_statement(p.statements[0]), p.space);
  EXPECT_EQ(r.flops, 64u);
  EXPECT_EQ(r.sequence.formulas().size(), 1u);
}

TEST(OpMin, RepeatedInputWithSameBindingIsSupported) {
  // The same input used twice with identical index lists stays a tree
  // (two leaves).  Different bindings of one name (T[i,j]·T[j,k]) are
  // rejected by validation — rename the second use.
  ParsedProgram p = parse_program(
      "index i, j = 6\nS[] = sum[i,j] T[i,j] * T[i,j]");
  FormulaSequence seq = binarize_program(p);
  ContractionTree tree = ContractionTree::from_sequence(seq);
  EXPECT_EQ(tree.leaves().size(), 2u);

  EXPECT_THROW(
      binarize_program(parse_program(
          "index i, j, k = 6\nS[i,k] = sum[j] T[i,j] * T[j,k]")),
      Error);
}

}  // namespace
}  // namespace tce
