// Tests for tce/codegen: the emitted pseudocode must reflect the plan's
// fusion structure, distributions, and rotation choices.

#include <gtest/gtest.h>

#include "tce/codegen/codegen.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"

#include "paper_workload.hpp"

namespace tce {
namespace {

using ::tce::testing::kNodeLimit4GB;
using ::tce::testing::kPaperProgram;
using ::tce::testing::paper_tree;


TEST(Codegen, UnfusedPlanHasNoLoops) {
  ContractionTree tree =
      ContractionTree::from_sequence(parse_formula_sequence(kPaperProgram));
  CharacterizedModel model(characterize_itanium(64));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = 4ull * 1000 * 1000 * 1000;
  OptimizedPlan plan = optimize(tree, model, cfg);
  const std::string code = generate_pseudocode(tree, plan);
  EXPECT_EQ(code.find("for f ="), std::string::npos) << code;
  EXPECT_NE(code.find("cannon"), std::string::npos);
  // Three contractions, three cannon lines.
  std::size_t count = 0, pos = 0;
  while ((pos = code.find("cannon", pos)) != std::string::npos) {
    ++count;
    pos += 6;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Codegen, FusedPlanNestsTheFLoop) {
  ContractionTree tree =
      ContractionTree::from_sequence(parse_formula_sequence(kPaperProgram));
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = 4ull * 1000 * 1000 * 1000;
  OptimizedPlan plan = optimize(tree, model, cfg);
  const std::string code = generate_pseudocode(tree, plan);
  // The f loop is fused: a loop header plus the reduced T1 slice.
  EXPECT_NE(code.find("for f = 0 .. 63:"), std::string::npos) << code;
  EXPECT_NE(code.find("T1[b,c,d]"), std::string::npos) << code;
  EXPECT_NE(code.find("(fused from T1[b,c,d,f])"), std::string::npos);
  // Operand slices pin the fused index.
  EXPECT_NE(code.find("f=fixed"), std::string::npos) << code;
  // Input declarations carry their distributions.
  EXPECT_NE(code.find("input  D[c,d,e,l] dist"), std::string::npos);
}

TEST(Codegen, ReplicatedStepsRender) {
  ContractionTree tree =
      ContractionTree::from_sequence(parse_formula_sequence(kPaperProgram));
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = 4ull * 1000 * 1000 * 1000;
  cfg.enable_replication_template = true;
  OptimizedPlan plan = optimize(tree, model, cfg);
  bool any = false;
  for (const auto& s : plan.steps) {
    any = any || s.tmpl == StepTemplate::kReplicated;
  }
  ASSERT_TRUE(any);  // the 4.9x scenario uses replication
  const std::string code = generate_pseudocode(tree, plan);
  EXPECT_NE(code.find("replicated"), std::string::npos) << code;
  EXPECT_NE(code.find("allgather"), std::string::npos) << code;
}

TEST(Codegen, ReduceNodesRender) {
  FormulaSequence seq = parse_formula_sequence(R"(
    index i, j, k = 64
    C[i,j] = sum[k] A[i,k] * B[k,j]
    s[] = sum[i,j] C[i,j]
  )");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  CharacterizedModel model(characterize_itanium(16));
  OptimizedPlan plan = optimize(tree, model);
  const std::string code = generate_pseudocode(tree, plan);
  EXPECT_NE(code.find("reduce{i,j}"), std::string::npos) << code;
}

}  // namespace
}  // namespace tce
