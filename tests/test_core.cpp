// Tests for tce/core: the memory-constrained communication minimization
// DP, checked against first-principles costs, invariants, and the
// paper's published Tables 1 and 2.

#include <gtest/gtest.h>

#include "tce/common/assert.hpp"
#include "tce/common/error.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/core/simulate.hpp"
#include "tce/costmodel/analytic.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"

#include "paper_workload.hpp"
#include "tce/fusion/memmin.hpp"

namespace tce {
namespace {

using ::tce::testing::kNodeLimit4GB;
using ::tce::testing::kPaperProgram;
using ::tce::testing::paper_tree;


const ArrayReport& row(const OptimizedPlan& plan, const std::string& name) {
  for (const auto& r : plan.arrays) {
    if (r.full.name == name) return r;
  }
  throw Error("no array row " + name);
}

// -------------------------------------------------- single contraction

TEST(Optimizer, SingleMatmulCostFromFirstPrinciples) {
  // C[i,j] = sum[k] A[i,k] B[k,j], square N=64, P=16 (edge 4).  All three
  // arrays have equal blocks; the optimum rotates two of them, each a
  // full rotation of N²/P-element blocks.
  FormulaSequence seq = parse_formula_sequence(
      "index i, j, k = 64\nC[i,j] = sum[k] A[i,k] * B[k,j]");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  AnalyticParams p;
  p.step_latency_s = 0.5;
  p.proc_bw = 1e6;
  AnalyticModel model(ProcGrid::make(16, 2), p);
  OptimizedPlan plan = optimize(tree, model);

  const double block_bytes = 64.0 * 64.0 / 16.0 * 8.0;
  const double one_rotation = 4.0 * (0.5 + block_bytes / 1e6);
  EXPECT_NEAR(plan.total_comm_s, 2.0 * one_rotation, 1e-9);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_TRUE(plan.steps[0].fusion.empty());
}

TEST(Optimizer, SingleMatmulKeepsLargestArrayFixed) {
  // Rectangular: k tiny -> A and B are small, C is huge; the optimizer
  // must rotate A and B (rot = k) and keep C fixed.
  FormulaSequence seq = parse_formula_sequence(
      "index i, j = 256; index k = 4\nC[i,j] = sum[k] A[i,k] * B[k,j]");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  AnalyticModel model(ProcGrid::make(4, 2), AnalyticParams{});
  OptimizedPlan plan = optimize(tree, model);
  ASSERT_EQ(plan.steps.size(), 1u);
  const PlanStep& s = plan.steps[0];
  EXPECT_EQ(s.choice.rot, s.choice.k);
  EXPECT_EQ(s.rot_result_s, 0.0);
  EXPECT_GT(s.rot_left_s, 0.0);
  EXPECT_GT(s.rot_right_s, 0.0);
}

// --------------------------------------------------------- invariants

TEST(Optimizer, FusionNeverHelpsWithoutMemoryPressure) {
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(64));
  OptimizerConfig with_fusion;
  OptimizerConfig no_fusion;
  no_fusion.enable_fusion = false;
  const double a = optimize(tree, model, with_fusion).total_comm_s;
  const double b = optimize(tree, model, no_fusion).total_comm_s;
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Optimizer, CostIsMonotoneInMemoryLimit) {
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(16));
  double prev = std::numeric_limits<double>::infinity();
  for (std::uint64_t gb : {2, 3, 4, 6, 10, 100}) {
    OptimizerConfig cfg;
    cfg.mem_limit_node_bytes = gb * 1'000'000'000ull;
    const double cost = optimize(tree, model, cfg).total_comm_s;
    EXPECT_LE(cost, prev * (1 + 1e-12)) << "limit " << gb << " GB";
    prev = cost;
  }
}

TEST(Optimizer, ReportedMemoryRespectsTheLimit) {
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = kNodeLimit4GB;
  OptimizedPlan plan = optimize(tree, model, cfg);
  EXPECT_LE(plan.bytes_per_node() + plan.buffer_bytes_per_node(),
            cfg.mem_limit_node_bytes);
}

TEST(Optimizer, InfeasibleLimitThrows) {
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = 100'000'000;  // 100 MB/node: hopeless
  EXPECT_THROW(optimize(tree, model, cfg), InfeasibleError);
}

TEST(Optimizer, FrozenMemMinFusionsCostAtLeastIntegrated) {
  // The "fuse first (for memory), then distribute" baseline can never
  // beat the integrated search under the same memory limit.  It may also
  // be infeasible outright: memory-minimal fusion collapses every
  // intermediate, leaving no index for the Cannon triplets — exactly the
  // interaction the paper's §2 warns about.  Both outcomes support the
  // paper's argument; a cheaper baseline would refute it.
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(16));

  OptimizerConfig integrated;
  integrated.mem_limit_node_bytes = kNodeLimit4GB;
  const double best = optimize(tree, model, integrated).total_comm_s;

  MemMinResult mm = minimize_memory(tree);
  OptimizerConfig frozen;
  frozen.mem_limit_node_bytes = kNodeLimit4GB;
  frozen.fixed_fusions = mm.fusions;
  try {
    const double baseline = optimize(tree, model, frozen).total_comm_s;
    EXPECT_GE(baseline, best * (1 - 1e-12));
  } catch (const InfeasibleError&) {
    SUCCEED();
  }
}

TEST(Optimizer, MemMinFusionCollapsesEverything) {
  // Sanity on the baseline itself: sequential memory minimization fuses
  // every intermediate completely (all fusable dims), shrinking T1 and T2
  // to scalars; total memory becomes just the inputs + output.
  ContractionTree tree = paper_tree();
  MemMinResult mm = minimize_memory(tree);
  std::uint64_t io_bytes = 0;
  for (NodeId id : tree.leaves()) {
    io_bytes += tensor_bytes(tree.node(id).tensor, tree.space());
  }
  io_bytes += tensor_bytes(tree.node(tree.root()).tensor, tree.space());
  EXPECT_LT(mm.total_bytes, io_bytes + 1024);
}

TEST(Optimizer, RejectsBatchContractionTrees) {
  ContractionTree tree = ContractionTree::from_sequence(parse_formula_sequence(R"(
    index i, j, t = 8
    S[i,j,t] = A[i,t] * B[j,t]
  )"));
  CharacterizedModel model(characterize_itanium(16));
  EXPECT_THROW(optimize(tree, model), Error);
}

TEST(Optimizer, HandlesReduceNodes) {
  // Contraction followed by a pure reduction.
  ContractionTree tree = ContractionTree::from_sequence(parse_formula_sequence(R"(
    index i, j, k = 64
    C[i,j] = sum[k] A[i,k] * B[k,j]
    s[] = sum[i,j] C[i,j]
  )"));
  AnalyticModel model(ProcGrid::make(16, 2), AnalyticParams{});
  OptimizedPlan plan = optimize(tree, model);
  EXPECT_GT(plan.total_comm_s, 0.0);
  // The reduce result is a scalar.
  EXPECT_EQ(row(plan, "s").full.rank(), 0u);
}

TEST(Simulate, AgreesWithPredictionAtPaperScale) {
  // The flow-level replay of the plan's communication must track the
  // characterized prediction closely at bandwidth-dominated sizes.
  ContractionTree tree = paper_tree();
  const ProcGrid grid = ProcGrid::make(16, 2);
  Network net(ClusterSpec::itanium2003(8));
  CharacterizedModel model(characterize(net, grid));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = kNodeLimit4GB;
  OptimizedPlan plan = optimize(tree, model, cfg);
  const double sim = simulate_plan_comm(net, grid, tree, plan);
  EXPECT_NEAR(sim, plan.total_comm_s, 0.05 * plan.total_comm_s);
}

TEST(Simulate, StatsAreAccountedConsistently) {
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = kNodeLimit4GB;
  OptimizedPlan plan = optimize(tree, model, cfg);
  const SearchStats& st = plan.stats;
  EXPECT_GT(st.candidates, 1000u);
  EXPECT_EQ(st.candidates, st.infeasible + st.dominated + st.kept);
  EXPECT_LE(st.max_per_node, st.kept);
  EXPECT_GT(st.dominated, st.kept);  // pruning is doing real work
}

// ------------------------------------------------ Table 1 reproduction

class Table1 : public ::testing::Test {
 protected:
  static const OptimizedPlan& plan() {
    static const OptimizedPlan p = [] {
      ContractionTree tree = paper_tree();
      static CharacterizedModel model(characterize_itanium(64));
      OptimizerConfig cfg;
      cfg.mem_limit_node_bytes = kNodeLimit4GB;
      return optimize(tree, model, cfg);
    }();
    return p;
  }
};

TEST_F(Table1, NoFusionIsNeeded) {
  for (const auto& s : plan().steps) {
    EXPECT_TRUE(s.fusion.empty()) << s.result_name;
  }
  for (const auto& r : plan().arrays) {
    EXPECT_EQ(r.reduced.dims, r.full.dims);
  }
}

TEST_F(Table1, MemoryPerNodeMatchesPaperExactly) {
  // All arrays fully distributed: Σ bytes / 32 nodes = 2,087,976,960 B,
  // the paper's "≈ 2.04GB/node".
  EXPECT_EQ(plan().bytes_per_node(), 2'087'976'960u);
  // Per-array rows (paper values, 1 MB = 1,024,000 B).
  EXPECT_EQ(row(plan(), "D").mem_per_node_bytes, 117'964'800u);  // 115.2MB
  EXPECT_EQ(row(plan(), "B").mem_per_node_bytes, 15'728'640u);   // 15.4MB
  EXPECT_EQ(row(plan(), "C").mem_per_node_bytes, 7'864'320u);    // 7.7MB
  EXPECT_EQ(row(plan(), "A").mem_per_node_bytes, 58'982'400u);   // 57.6MB
  EXPECT_EQ(row(plan(), "T1").mem_per_node_bytes,
            1'769'472'000u);                                     // 1.728GB
  EXPECT_EQ(row(plan(), "T2").mem_per_node_bytes, 58'982'400u);  // 57.6MB
  EXPECT_EQ(row(plan(), "S").mem_per_node_bytes, 58'982'400u);   // 57.6MB
}

TEST_F(Table1, SendBufferMatchesPaperLargestMessage) {
  // Largest message: D's 59 MB per-processor block (115.2 paper-MB per
  // node).
  EXPECT_EQ(plan().buffer_bytes_per_node(), 117'964'800u);
}

TEST_F(Table1, LargestIntermediateIsNeverCommunicated) {
  const ArrayReport& t1 = row(plan(), "T1");
  ASSERT_TRUE(t1.comm_initial_s.has_value());
  ASSERT_TRUE(t1.comm_final_s.has_value());
  EXPECT_EQ(*t1.comm_initial_s, 0.0);
  EXPECT_EQ(*t1.comm_final_s, 0.0);
  // And its produced distribution is reused unchanged (no redistribution).
  EXPECT_EQ(*t1.initial_dist, *t1.final_dist);
}

TEST_F(Table1, TotalCommunicationNearPaper) {
  // Paper: 98.0 s total communication, 7.0% of 1403.4 s.
  EXPECT_NEAR(plan().total_comm_s, 98.0, 15.0);
  EXPECT_NEAR(plan().comm_fraction(), 0.070, 0.015);
  EXPECT_NEAR(plan().total_runtime_s(), 1403.4, 150.0);
}

TEST_F(Table1, PerArrayCommunicationNearPaper) {
  EXPECT_NEAR(*row(plan(), "D").comm_final_s, 35.7, 6.0);
  EXPECT_NEAR(*row(plan(), "B").comm_final_s, 4.9, 1.5);
  EXPECT_NEAR(*row(plan(), "C").comm_final_s, 2.8, 1.0);
  // In the final step all three arrays have equal blocks; the paper notes
  // "any 2 arrays can be rotated for the same cost, and we choose A and
  // T2".  Our optimizer may pick any pair, so check the step total
  // (paper: 18.3 + 18.5 = 36.8 s).
  const PlanStep& last = plan().steps.back();
  EXPECT_EQ(last.result_name, "S");
  const double step3 =
      last.rot_left_s + last.rot_right_s + last.rot_result_s;
  EXPECT_NEAR(step3, 36.8, 7.0);
}

// ------------------------------------------------ Table 2 reproduction

class Table2 : public ::testing::Test {
 protected:
  static const OptimizedPlan& plan() {
    static const OptimizedPlan p = [] {
      ContractionTree tree = paper_tree();
      static CharacterizedModel model(characterize_itanium(16));
      OptimizerConfig cfg;
      cfg.mem_limit_node_bytes = kNodeLimit4GB;
      return optimize(tree, model, cfg);
    }();
    return p;
  }
};

TEST_F(Table2, FusesExactlyTheFLoopOnT1) {
  const IndexSpace& sp = [] {
    static FormulaSequence seq = parse_formula_sequence(kPaperProgram);
    return std::cref(seq.space());
  }();
  const ArrayReport& t1 = row(plan(), "T1");
  // Reduced to T1(b,c,d): the f dimension is fused away.
  EXPECT_EQ(t1.reduced.rank(), 3u);
  IndexSet reduced_set = t1.reduced.index_set();
  EXPECT_TRUE(reduced_set.contains(sp.id("b")));
  EXPECT_TRUE(reduced_set.contains(sp.id("c")));
  EXPECT_TRUE(reduced_set.contains(sp.id("d")));
  EXPECT_FALSE(reduced_set.contains(sp.id("f")));
  // The other arrays stay full.
  for (const char* name : {"A", "B", "C", "D", "T2", "S"}) {
    EXPECT_EQ(row(plan(), name).reduced.dims, row(plan(), name).full.dims)
        << name;
  }
}

TEST_F(Table2, MemoryPerNodeMatchesPaperExactly) {
  // Σ per-node: 460.8 + 61.44 + 30.72 + 230.4 + 108 + 230.4 + 230.4
  // paper-MB = 1,384,611,840 B (the paper's ≈1.35 GB/node).
  EXPECT_EQ(plan().bytes_per_node(), 1'384'611'840u);
  EXPECT_EQ(row(plan(), "T1").mem_per_node_bytes, 110'592'000u);  // 108MB
  EXPECT_EQ(row(plan(), "D").mem_per_node_bytes, 471'859'200u);   // 460.8MB
  EXPECT_EQ(row(plan(), "A").mem_per_node_bytes, 235'929'600u);   // 230.4MB
}

TEST_F(Table2, FixedArraysAreNotCommunicated) {
  // Paper: D is kept fixed in step 1 and T2 in step 2.
  EXPECT_EQ(*row(plan(), "D").comm_final_s, 0.0);
  EXPECT_EQ(*row(plan(), "T2").comm_initial_s, 0.0);
}

TEST_F(Table2, FusedT1RotationDominatesCommunication) {
  const ArrayReport& t1 = row(plan(), "T1");
  EXPECT_GT(*t1.comm_initial_s, 700.0);
  EXPECT_GT(*t1.comm_final_s, 700.0);
  const double t1_comm = *t1.comm_initial_s + *t1.comm_final_s;
  EXPECT_GT(t1_comm / plan().total_comm_s, 0.80);
}

TEST_F(Table2, TotalCommunicationNearPaper) {
  // Paper: 1907.8 s, 27.3% of 6983.8 s.  Communication is ~20x Table 1.
  EXPECT_NEAR(plan().total_comm_s, 1907.8, 450.0);
  EXPECT_NEAR(plan().comm_fraction(), 0.273, 0.06);
  EXPECT_NEAR(plan().total_runtime_s(), 6983.8, 900.0);
}

TEST_F(Table2, CounterIntuitiveTrendHolds) {
  // Fewer processors -> more fusion -> *more* communication (both in
  // absolute seconds and as a fraction of runtime).
  ContractionTree tree = paper_tree();
  CharacterizedModel m64(characterize_itanium(64));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = kNodeLimit4GB;
  OptimizedPlan p64 = optimize(tree, m64, cfg);
  EXPECT_GT(plan().total_comm_s, 10.0 * p64.total_comm_s);
  EXPECT_GT(plan().comm_fraction(), 2.5 * p64.comm_fraction());
}

TEST_F(Table2, TableRendersAllRows) {
  FormulaSequence seq = parse_formula_sequence(kPaperProgram);
  const std::string table = plan().table(seq.space());
  for (const char* name : {"A", "B", "C", "D", "T1", "T2", "S"}) {
    EXPECT_NE(table.find(name), std::string::npos) << table;
  }
  EXPECT_NE(table.find("108.0MB"), std::string::npos) << table;
}

// ------------------------------------------------- overflow hardening

TEST(Optimizer, PaperScaleExtentsProduceExactByteCounts) {
  // 480^4-class rank-4 arrays on one processor: ~425 GB each.  Every
  // byte counter must come out exact — a silent 64-bit wrap anywhere in
  // the size math would be off by orders of magnitude here.
  FormulaSequence seq = parse_formula_sequence(
      "index a, b, c, d, e, f = 480\n"
      "T[a,b,e,f] = sum[c,d] X[a,b,c,d] * Y[c,d,e,f]");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  AnalyticModel model(ProcGrid::make(1, 1), AnalyticParams{});
  OptimizedPlan plan = optimize(tree, model);
  const std::uint64_t arr = 480ull * 480 * 480 * 480 * 8;
  EXPECT_EQ(plan.array_bytes_per_proc, 3 * arr);  // X, Y and T resident
  EXPECT_GE(plan.peak_live_bytes_per_proc, 3 * arr);
}

TEST(Optimizer, OverflowingSizesThrowInsteadOfWrapping) {
  // Four indices of 2^16 multiply out to exactly 2^64 elements: one
  // past what fits.  The search must surface the overflow as a contract
  // violation, never wrap to a tiny (and feasible-looking) size.
  const auto run = [] {
    FormulaSequence seq = parse_formula_sequence(
        "index a, b, c, d, e, f = 65536\n"
        "T[a,b,e,f] = sum[c,d] X[a,b,c,d] * Y[c,d,e,f]");
    ContractionTree tree = ContractionTree::from_sequence(seq);
    AnalyticModel model(ProcGrid::make(1, 1), AnalyticParams{});
    optimize(tree, model);
  };
  EXPECT_THROW(run(), ContractViolation);
}

}  // namespace
}  // namespace tce
