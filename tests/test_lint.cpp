// Tests for tce/lint: the static analyzer's rule catalog (one fixture
// per rule id), the memory-infeasibility prover's exact boundary
// behavior on hand-computed instances, the prover/optimizer fast-path
// agreement, and the prover's soundness over the pinned fuzz window.

#include <gtest/gtest.h>

#include <algorithm>

#include "tce/core/optimizer.hpp"
#include "tce/core/plan_json.hpp"
#include "tce/costmodel/analytic.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"
#include "tce/fuzz/harness.hpp"
#include "tce/lint/lint.hpp"

#include "paper_workload.hpp"

namespace tce {
namespace {

using lint::Diagnostic;
using lint::LintConfig;
using lint::LintReport;
using lint::ProverResult;
using lint::Severity;

bool has_rule(const LintReport& r, const std::string& rule) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

int count_errors(const LintReport& r) {
  int n = 0;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

LintReport lint_text(const std::string& text,
                     const CharacterizationTable* table = nullptr,
                     LintConfig cfg = {}, std::uint32_t procs = 16) {
  return lint::lint_program(parse_program(text),
                            ProcGrid::make(procs, 2), table, cfg);
}

// ----------------------------------------------------- structural rules

TEST(LintRules, CleanProgramHasNoDiagnostics) {
  const LintReport r = lint_text(testing::kPaperProgram);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.diagnostics.empty()) << r.str();
  EXPECT_GT(r.rules_checked, 0u);
}

TEST(LintRules, ResultIndices) {
  const LintReport r = lint_text(R"(
    index a, b, c = 8
    R[a,b] = sum[c] X[a,c] * Y[c,b]
    W[a,c] = sum[b] X[a,b] * Y[b,b]
  )");
  // W's unsummed factor indices are {a,b} (Y[b,b] contributes b), not
  // {a,c}; Y[b,b] additionally repeats a dimension.
  EXPECT_TRUE(has_rule(r, "expr.result-indices"));
  EXPECT_TRUE(has_rule(r, "expr.repeated-dim"));
  EXPECT_FALSE(r.ok());
}

TEST(LintRules, SumNotInFactors) {
  const LintReport r = lint_text(R"(
    index a, b, z = 8
    R[a] = sum[b,z] X[a,b] * Y[b]
  )");
  EXPECT_TRUE(has_rule(r, "expr.sum-not-in-factors"));
}

TEST(LintRules, InconsistentArity) {
  const LintReport r = lint_text(R"(
    index a, b, c = 8
    R[a,c] = sum[b] X[a,b] * Y[b,c]
    Q[a,b] = sum[c] X[a,c] * Z[c,b]
  )");
  // X is used as X[a,b] and as X[a,c] — different index lists.
  EXPECT_TRUE(has_rule(r, "expr.inconsistent-arity"));
}

TEST(LintRules, RedefinitionAndReconsumption) {
  const LintReport r = lint_text(R"(
    index a, b, c, d = 8
    T[a,c] = sum[b] X[a,b] * Y[b,c]
    T[a,c] = sum[d] X[a,d] * Z[d,c]
    R[a] = sum[c] T[a,c] * u[c]
    Q[a] = sum[c] T[a,c] * v[c]
  )");
  EXPECT_TRUE(has_rule(r, "expr.redefinition"));
  EXPECT_TRUE(has_rule(r, "expr.reconsumed"));
}

TEST(LintRules, NeedsBinarizationIsAWarningOnly) {
  const LintReport r = lint_text(R"(
    index a, b, c, d = 8
    R[a,d] = sum[b,c] X[a,b] * Y[b,c] * Z[c,d]
  )");
  EXPECT_TRUE(has_rule(r, "expr.needs-binarization"));
  EXPECT_TRUE(r.ok());  // a warning, not an error
}

TEST(LintRules, HygieneWarnings) {
  const LintReport r = lint_text(R"(
    index a, b = 8
    index s = 1
    index u = 16
    R[a,s] = sum[b] X[a,b] * Y[b,s]
  )");
  EXPECT_TRUE(has_rule(r, "expr.unused-index"));
  EXPECT_TRUE(has_rule(r, "expr.extent-one-index"));
  EXPECT_TRUE(r.ok());
}

TEST(LintRules, NameShadowing) {
  // Built programmatically: a tensor deliberately named like an index.
  ParsedProgram p;
  const IndexId a = p.space.add("a", 8);
  const IndexId b = p.space.add("b", 8);
  ParsedStatement st;
  st.result = TensorRef{"R", {a}};
  st.sum_indices = IndexSet::single(b);
  st.factors = {TensorRef{"a", {a, b}}, TensorRef{"Y", {b}}};
  p.statements.push_back(st);
  const LintReport r =
      lint::lint_program(p, ProcGrid::make(16, 2), nullptr, {});
  EXPECT_TRUE(has_rule(r, "expr.name-shadowing"));
}

// ----------------------------------------------------------- tree rules

TEST(LintRules, BatchIndicesIsAnError) {
  const LintReport r = lint_text(R"(
    index i, j, k = 8
    C[i,j] = sum[k] A[i,k] * B[i,k,j]
  )");
  EXPECT_TRUE(has_rule(r, "tree.batch-indices"));
  EXPECT_FALSE(r.ok());
}

TEST(LintRules, RankInflationAndDegenerateSum) {
  const LintReport r = lint_text(R"(
    index a, b, c, d = 8
    index s = 1
    T[a,b,c,d] = sum[s] P[a,b,s] * Q[c,d,s]
    R[a,c] = sum[b,d] T[a,b,c,d] * V[b,d]
  )");
  EXPECT_TRUE(has_rule(r, "tree.rank-inflation"));
  EXPECT_TRUE(has_rule(r, "tree.degenerate-sum-index"));
  EXPECT_TRUE(r.ok());
}

// ---------------------------------------------------------- model rules

TEST(LintRules, GridUntileable) {
  const CharacterizationTable table = characterize_itanium(16);
  const LintReport r = lint_text(R"(
    index a, b, c = 2
    R[a,c] = sum[b] X[a,b] * Y[b,c]
  )", &table);
  // Extent 2 < grid edge 4: no dimension can cover the grid.
  EXPECT_TRUE(has_rule(r, "model.grid-untileable"));
  EXPECT_TRUE(r.ok());
}

TEST(LintRules, CurveExtrapolationWhenSamplesAreDisjoint) {
  CharacterizationTable table;
  table.grid = ProcGrid::make(16, 2);
  // Sampled only in the terabyte range; an 8^2-extent program's blocks
  // are thousands of bytes, so every query extrapolates.
  table.rotate_dim1.add_sample(1'000'000'000'000ull, 1.0);
  table.rotate_dim1.add_sample(2'000'000'000'000ull, 2.0);
  const LintReport r = lint_text(R"(
    index a, b, c = 8
    R[a,c] = sum[b] X[a,b] * Y[b,c]
  )", &table);
  EXPECT_TRUE(has_rule(r, "model.curve-extrapolation"));

  const CharacterizationTable sane = characterize_itanium(16);
  const LintReport ok = lint_text(testing::kPaperProgram, &sane);
  EXPECT_FALSE(has_rule(ok, "model.curve-extrapolation")) << ok.str();
}

// ------------------------------------------------- batched determinism

TEST(LintReporting, AllIndependentErrorsInOneRun) {
  const std::string text = R"(
    index a, b, c, z = 8
    R[a,b] = sum[c] X[a,c] * Y[c,c]
    Q[a] = sum[z] X[a,c] * W[c]
  )";
  const LintReport r = lint_text(text);
  // One run reports the repeated dim, the result mismatch AND the dead
  // summation index — not just the first failure.
  EXPECT_TRUE(has_rule(r, "expr.repeated-dim"));
  EXPECT_TRUE(has_rule(r, "expr.result-indices"));
  EXPECT_TRUE(has_rule(r, "expr.sum-not-in-factors"));
  EXPECT_GE(count_errors(r), 3);

  // Deterministic: same input, same report, byte for byte.
  EXPECT_EQ(r.str(), lint_text(text).str());
}

TEST(LintReporting, StructuralErrorsHelperIsErrorsOnly) {
  const std::vector<Diagnostic> errs = lint::structural_errors(
      parse_program(R"(
        index a, b, c = 8
        R[a,b] = sum[c] X[a,c] * Y[c,c]
      )"));
  ASSERT_FALSE(errs.empty());
  for (const Diagnostic& d : errs) {
    EXPECT_EQ(d.severity, Severity::kError);
  }
}

// ------------------------------------------------------------ prover

// One 8192^2 matrix contraction on a 4x4 grid, 2 procs/node: each of
// the three arrays is at best (8192/4)^2 * 8 = 32 MiB per processor,
// and neither the inputs nor the root can be fused away, so the bound
// is exactly 3 * 32 MiB * 2 = 201326592 bytes per node.
constexpr const char* kMatmul8k = R"(
  index a, b, k = 8192
  S[a,b] = sum[k] A[a,k] * B[k,b]
)";
constexpr std::uint64_t kMatmul8kBound = 201'326'592ull;

ContractionTree matmul8k_tree() {
  return ContractionTree::from_sequence(parse_formula_sequence(kMatmul8k));
}

TEST(LintProver, ExactBoundOnHandComputedInstance) {
  const ContractionTree tree = matmul8k_tree();
  LintConfig cfg;
  cfg.mem_limit_node_bytes = 1;  // anything nonzero; bound is limit-free
  const ProverResult r =
      lint::prove_memory(tree, ProcGrid::make(16, 2), cfg);
  EXPECT_EQ(r.root_lower_bound_node_bytes, kMatmul8kBound);
}

TEST(LintProver, BoundaryLimitExactlyAtBoundIsNotCertified) {
  // The prover's comparison is strict: a limit equal to the bound gets
  // no certificate (silence — which promises nothing about the search).
  const ContractionTree tree = matmul8k_tree();
  LintConfig cfg;
  cfg.mem_limit_node_bytes = kMatmul8kBound;
  EXPECT_FALSE(
      lint::prove_infeasible(tree, ProcGrid::make(16, 2), cfg).has_value());
}

TEST(LintProver, BoundaryOneByteUnderIsCertified) {
  const ContractionTree tree = matmul8k_tree();
  LintConfig cfg;
  cfg.mem_limit_node_bytes = kMatmul8kBound - 1;
  const auto cert =
      lint::prove_infeasible(tree, ProcGrid::make(16, 2), cfg);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->node, "S");
  EXPECT_EQ(cert->lower_bound_node_bytes, kMatmul8kBound);
  EXPECT_EQ(cert->mem_limit_node_bytes, kMatmul8kBound - 1);
  EXPECT_NE(cert->str().find("rule=mem.infeasible"), std::string::npos);
  EXPECT_NE(cert->str().find("node=S"), std::string::npos);
}

TEST(LintProver, FusionShrinksTheIntermediateTerm) {
  // Chain of two contractions, extents 64, 4x4 grid: every 2-D array is
  // at best (64/4)^2 * 8 = 2048 bytes/processor.  Unfused, the summed
  // bound is 5 arrays * 2048; with fusion the intermediate U (both of
  // whose dims recur in the parent's loops) collapses to one element.
  const std::string chain = R"(
    index a, b, c, d = 64
    U[a,c] = sum[b] A[a,b] * B[b,c]
    R[a,d] = sum[c] U[a,c] * C[c,d]
  )";
  const ContractionTree tree =
      ContractionTree::from_sequence(parse_formula_sequence(chain));
  const ProcGrid grid = ProcGrid::make(16, 2);

  LintConfig unfused;
  unfused.mem_limit_node_bytes = 1;
  unfused.enable_fusion = false;
  EXPECT_EQ(lint::prove_memory(tree, grid, unfused)
                .root_lower_bound_node_bytes,
            5 * 2048ull * 2);

  LintConfig fused = unfused;
  fused.enable_fusion = true;
  EXPECT_EQ(
      lint::prove_memory(tree, grid, fused).root_lower_bound_node_bytes,
      (4 * 2048ull + 8) * 2);

  // Liveness accounting: leaves (3 * 2048) + the largest single
  // internal array (2048 unfused).
  LintConfig live = unfused;
  live.liveness_aware = true;
  EXPECT_EQ(
      lint::prove_memory(tree, grid, live).root_lower_bound_node_bytes,
      (3 * 2048ull + 2048) * 2);
}

TEST(LintProver, CertificateAgreesWithRawSearch) {
  // When the prover certifies infeasibility, the DP with the fast path
  // disabled must independently reach the same verdict.
  const ContractionTree tree = matmul8k_tree();
  const CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = kMatmul8kBound - 1;
  cfg.enable_static_prover = false;
  EXPECT_THROW(optimize(tree, model, cfg), InfeasibleError);

  cfg.enable_static_prover = true;
  try {
    optimize(tree, model, cfg);
    FAIL() << "expected InfeasibleError";
  } catch (const InfeasibleError& e) {
    EXPECT_NE(std::string(e.what()).find("statically infeasible"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("mem.infeasible"),
              std::string::npos);
  }
}

TEST(LintProver, BoundIsStampedIntoStatsAndJson) {
  const ContractionTree tree = testing::paper_tree();
  const CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = testing::kNodeLimit4GB;
  const OptimizedPlan plan = optimize(tree, model, cfg);
  EXPECT_GT(plan.stats.prover_lb_node_bytes, 0u);
  // The certified bound can never exceed what the chosen plan spends.
  EXPECT_LE(plan.stats.prover_lb_node_bytes, plan.bytes_per_node());

  const OptimizedPlan back =
      plan_from_json(plan_to_json(plan, tree.space()), tree);
  EXPECT_EQ(back.stats.prover_lb_node_bytes,
            plan.stats.prover_lb_node_bytes);

  // Prover off (or no limit): no bound is claimed.
  OptimizerConfig off = cfg;
  off.enable_static_prover = false;
  EXPECT_EQ(optimize(tree, model, off).stats.prover_lb_node_bytes, 0u);
}

TEST(LintProver, NeverRejectsAFeasibleInstanceOnPinnedWindow) {
  // The soundness property the fuzz oracle enforces, pinned to the
  // documented CI window: seeds 1..200, lint oracle only.
  fuzz::FuzzOptions opts;
  opts.seed = 1;
  opts.runs = 200;
  opts.oracle = "lint";
  const fuzz::FuzzReport report = fuzz::run_fuzz(opts);
  EXPECT_TRUE(report.failures.empty()) << report.str();
  EXPECT_GT(report.executed.at("lint"), 0);
}

// ------------------------------------------- communication lower bounds

// One 8x8x8 matmul on a 2x2 grid: every array is 64 words, every
// rotation pair moves (edge-1)*(wX+wY)/P = 1*128/4 = 32 words/proc.
constexpr const char* kMatmul8 = R"(
  index i, j, k = 8
  C[i,j] = sum[k] A[i,k] * B[k,j]
)";

ContractionTree tree_of(const char* text) {
  return ContractionTree::from_sequence(parse_formula_sequence(text));
}

TEST(CommProver, ExactStructuralBoundOnMatmul) {
  const ContractionTree tree = tree_of(kMatmul8);
  const lint::CommBoundResult r =
      lint::prove_comm(tree, ProcGrid::make(4, 2), {});
  EXPECT_EQ(r.root_lb_words, 32u);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_EQ(r.nodes[0].lb_struct_words, 32u);
  EXPECT_EQ(r.nodes[0].lb_mem_words, 0u);
  EXPECT_FALSE(r.nodes[0].limit_dominated);
  EXPECT_NE(r.str().find("certificate rule=comm.lb-certificate"),
            std::string::npos);
}

TEST(CommProver, ExtentOneIndexShrinksTheCheapestRotationPair) {
  // i has extent 1: A and C collapse to 8 words each, so the i-rotation
  // pair (A,C) costs (8+8)/4 = 4 words/proc — the bound must pick it.
  const ContractionTree tree = tree_of(R"(
    index i = 1
    index j, k = 8
    C[i,j] = sum[k] A[i,k] * B[k,j]
  )");
  const lint::CommBoundResult r =
      lint::prove_comm(tree, ProcGrid::make(4, 2), {});
  EXPECT_EQ(r.root_lb_words, 4u);
}

TEST(CommProver, ReplicationEscapeHatchShrinksTheBound) {
  // wA = 4, wB = wC = 64: the best rotation pair costs (4+64)/4 = 17,
  // but allgathering the small operand costs only (P-1)*4/P = 3.  The
  // relaxation must honor the cheaper template when it is available —
  // and must NOT assume it when it is not.
  const ContractionTree tree = tree_of(R"(
    index i, k = 2
    index j = 32
    C[i,j] = sum[k] A[i,k] * B[k,j]
  )");
  const ProcGrid grid = ProcGrid::make(4, 2);
  EXPECT_EQ(lint::prove_comm(tree, grid, {}).root_lb_words, 17u);
  lint::CommBoundConfig cfg;
  cfg.enable_replication = true;
  EXPECT_EQ(lint::prove_comm(tree, grid, cfg).root_lb_words, 3u);
}

TEST(CommProver, MemoryTermDominatesUnderTightCap) {
  // 32^3 matmul, P = 16, M = 16 bytes / (8 * 2 procs/node) = 1 word:
  // the pair-counting term gives 32768/(4*16*1) - 1 = 511 words/proc,
  // above the structural 3*(1024+1024)/16 = 384 — the cap, not the
  // geometry, dominates.
  const ContractionTree tree = tree_of(R"(
    index i, j, k = 32
    C[i,j] = sum[k] A[i,k] * B[k,j]
  )");
  lint::CommBoundConfig cfg;
  cfg.mem_limit_node_bytes = 16;
  const lint::CommBoundResult r =
      lint::prove_comm(tree, ProcGrid::make(16, 2), cfg);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_EQ(r.nodes[0].lb_struct_words, 384u);
  EXPECT_EQ(r.nodes[0].lb_mem_words, 511u);
  EXPECT_EQ(r.root_lb_words, 511u);
  EXPECT_TRUE(r.nodes[0].limit_dominated);
}

TEST(CommProver, LimitDominatedLintWarningCoOccursWithInfeasibility) {
  LintConfig cfg;
  cfg.mem_limit_node_bytes = 16;
  cfg.comm_bounds = true;
  const LintReport r = lint_text(R"(
    index i, j, k = 32
    C[i,j] = sum[k] A[i,k] * B[k,j]
  )", nullptr, cfg);
  EXPECT_TRUE(has_rule(r, "mem.infeasible"));
  EXPECT_TRUE(has_rule(r, "comm.lb-certificate"));
  EXPECT_TRUE(has_rule(r, "comm.limit-dominated"));
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == "comm.lb-certificate") {
      EXPECT_EQ(d.severity, Severity::kInfo);
    }
    if (d.rule == "comm.limit-dominated") {
      EXPECT_EQ(d.severity, Severity::kWarning);
    }
  }
  ASSERT_EQ(r.comm_certificates.size(), 1u);
  EXPECT_EQ(r.comm_certificates[0].root_lb_words, 511u);
}

TEST(CommProver, ForestGetsOneCertificatePerTree) {
  LintConfig cfg;
  cfg.comm_bounds = true;
  const LintReport r = lint_text(R"(
    index a, b, c = 8
    index d, e, f = 8
    R[a,b] = sum[c] X[a,c] * Y[c,b]
    S[d,e] = sum[f] U[d,f] * V[f,e]
  )", nullptr, cfg);
  ASSERT_EQ(r.comm_certificates.size(), 2u);
  EXPECT_EQ(r.comm_certificates[0].root, "R");
  EXPECT_EQ(r.comm_certificates[1].root, "S");
  EXPECT_GT(r.comm_certificates[0].root_lb_words, 0u);
  EXPECT_GT(r.comm_certificates[1].root_lb_words, 0u);
}

TEST(CommProver, GapIsExactlyOneOnOptimalMatmul) {
  // The DP's optimal 8^3 matmul plan rotates two 16-word blocks once
  // around the 2x2 grid — 32 words/proc, meeting the certified bound
  // exactly: the certificate proves this plan communication-optimal.
  const ContractionTree tree = tree_of(kMatmul8);
  const AnalyticModel model(ProcGrid::make(4, 2), AnalyticParams{});
  const OptimizedPlan plan = optimize(tree, model);
  EXPECT_EQ(plan.stats.comm_lb_words, 32u);
  EXPECT_EQ(plan.stats.achieved_comm_words, 32u);
  EXPECT_DOUBLE_EQ(plan.stats.comm_gap_ratio, 1.0);
}

TEST(CommProver, BoundIsInvariantUnderMemoryAccountingMode) {
  // Liveness-aware vs summed accounting changes which plans fit, never
  // the certificate: the bound relaxes distribution and fusion choices
  // identically under both modes.
  const ContractionTree tree = testing::paper_tree();
  const CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = testing::kNodeLimit4GB;
  const OptimizedPlan summed = optimize(tree, model, cfg);
  cfg.liveness_aware = true;
  const OptimizedPlan live = optimize(tree, model, cfg);
  EXPECT_GT(summed.stats.comm_lb_words, 0u);
  EXPECT_EQ(summed.stats.comm_lb_words, live.stats.comm_lb_words);
  EXPECT_LE(summed.stats.comm_lb_words, summed.stats.achieved_comm_words);
  EXPECT_LE(live.stats.comm_lb_words, live.stats.achieved_comm_words);
}

TEST(CommProver, ReplicatedPlansRespectTheBound) {
  // With the replicate-compute-reduce template enabled the bound uses
  // the allgather relaxation; the stamped stats must still satisfy
  // LB <= achieved and match an independent recomputation.
  const ContractionTree tree = testing::paper_tree();
  const CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = testing::kNodeLimit4GB;
  cfg.enable_replication_template = true;
  const OptimizedPlan plan = optimize(tree, model, cfg);
  EXPECT_LE(plan.stats.comm_lb_words, plan.stats.achieved_comm_words);
  EXPECT_EQ(plan.stats.achieved_comm_words,
            lint::plan_comm_words(tree, plan, model.grid()));
}

// ------------------------------------------------------- report format

TEST(LintReporting, MemInfeasibleDiagnosticCarriesCertificate) {
  LintConfig cfg;
  cfg.mem_limit_node_bytes = kMatmul8kBound - 1;
  const LintReport r = lint_text(kMatmul8k, nullptr, cfg);
  EXPECT_TRUE(has_rule(r, "mem.infeasible"));
  ASSERT_TRUE(r.certificate.has_value());
  EXPECT_EQ(r.certificate->lower_bound_node_bytes, kMatmul8kBound);
  EXPECT_NE(r.str().find("certificate rule=mem.infeasible"),
            std::string::npos);
  EXPECT_NE(r.str().find("rules checked"), std::string::npos);
}

}  // namespace
}  // namespace tce
