// Tests for tce/verify: the independent plan verifier must accept every
// plan the optimizer emits (zero diagnostics) and reject hand-corrupted
// plans with the specific rule that was violated.

#include <gtest/gtest.h>

#include <cstdlib>

#include "tce/core/optimizer.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"
#include "tce/obs/metrics.hpp"
#include "tce/verify/verifier.hpp"

#include "paper_workload.hpp"

namespace tce {
namespace {

using ::tce::testing::kNodeLimit4GB;
using ::tce::testing::paper_tree;

/// One optimization of the paper's workload on 16 processors (Table 2's
/// setting, which exercises fusion), shared across the corruption tests.
struct Paper16 {
  ContractionTree tree = paper_tree();
  CharacterizedModel model{characterize_itanium(16)};
  OptimizedPlan plan;

  Paper16() {
    OptimizerConfig cfg;
    cfg.mem_limit_node_bytes = kNodeLimit4GB;
    plan = optimize(tree, model, cfg);
  }
};

Paper16& paper16() {
  static Paper16 p;
  return p;
}

VerifyReport verify16(const OptimizedPlan& plan,
                      std::uint64_t limit = kNodeLimit4GB) {
  VerifyOptions opts;
  opts.mem_limit_node_bytes = limit;
  return verify_plan(paper16().tree, paper16().model, plan, opts);
}

bool has_rule(const VerifyReport& r, const std::string& rule) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == rule && d.severity == Severity::kError) return true;
  }
  return false;
}

PlanStep& fused_step(OptimizedPlan& plan) {
  for (PlanStep& s : plan.steps) {
    if (!s.fusion.empty()) return s;
  }
  ADD_FAILURE() << "paper plan at 16 procs has no fused step";
  return plan.steps.front();
}

// ------------------------------------------------------------ clean plans

TEST(Verify, PaperPlanHasZeroDiagnostics) {
  const VerifyReport r = verify16(paper16().plan);
  EXPECT_TRUE(r.ok()) << r.str(paper16().tree);
  EXPECT_TRUE(r.diagnostics.empty()) << r.str(paper16().tree);
  EXPECT_GT(r.rules_checked, 30u);  // every family of rules actually ran
}

TEST(Verify, PopulatesPerRuleCountersWhenMetricsAreLive) {
  obs::ScopedMetrics scoped;
  const VerifyReport r = verify16(paper16().plan);
  EXPECT_EQ(obs::counter_value("verify.runs"), 1u);
  std::uint64_t per_rule = 0;
  for (const auto& [name, metric] : obs::metrics_snapshot()) {
    if (name.rfind("verify.rule.", 0) == 0) per_rule += metric.total;
  }
  EXPECT_EQ(per_rule, r.rules_checked)
      << "per-rule counters must sum to the report's rules_checked";
}

TEST(Verify, Table1SettingVerifiesClean) {
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(64));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = kNodeLimit4GB;
  OptimizedPlan plan = optimize(tree, model, cfg);
  VerifyOptions opts;
  opts.mem_limit_node_bytes = kNodeLimit4GB;
  const VerifyReport r = verify_plan(tree, model, plan, opts);
  EXPECT_TRUE(r.diagnostics.empty()) << r.str(tree);
}

TEST(Verify, ReplicationPlanVerifiesClean) {
  ContractionTree tree = paper_tree();
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = kNodeLimit4GB;
  cfg.enable_replication_template = true;
  OptimizedPlan plan = optimize(tree, paper16().model, cfg);
  VerifyOptions opts;
  opts.mem_limit_node_bytes = kNodeLimit4GB;
  const VerifyReport r = verify_plan(tree, paper16().model, plan, opts);
  EXPECT_TRUE(r.diagnostics.empty()) << r.str(tree);
}

TEST(Verify, LivenessPlanVerifiesClean) {
  ContractionTree tree = paper_tree();
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = kNodeLimit4GB;
  cfg.liveness_aware = true;
  OptimizedPlan plan = optimize(tree, paper16().model, cfg);
  VerifyOptions opts;
  opts.mem_limit_node_bytes = kNodeLimit4GB;
  const VerifyReport r = verify_plan(tree, paper16().model, plan, opts);
  EXPECT_TRUE(r.diagnostics.empty()) << r.str(tree);
}

TEST(Verify, FrontierPlansVerifyClean) {
  ContractionTree tree = paper_tree();
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = kNodeLimit4GB;
  for (const OptimizedPlan& plan :
       optimize_frontier(tree, paper16().model, cfg)) {
    const VerifyReport r = verify_plan(tree, paper16().model, plan);
    EXPECT_TRUE(r.diagnostics.empty()) << r.str(tree);
  }
}

TEST(Verify, ReduceNodesVerifyClean) {
  // Single-operand summations become reduce nodes, which have no
  // PlanStep; the verifier reconstructs them from the array rows.
  CharacterizedModel model(characterize_itanium(4));
  for (const char* program : {
           "index i, j = 8\nS[j] = sum[i] A[i,j]",
           R"(
             index i, j, k, l = 16
             V[j,k] = sum[i] A[i,j,k]
             W[l] = sum[j,k] V[j,k] * B[j,k,l]
           )",
       }) {
    ContractionTree tree =
        ContractionTree::from_sequence(parse_formula_sequence(program));
    OptimizedPlan plan = optimize(tree, model, {});
    const VerifyReport r = verify_plan(tree, model, plan);
    EXPECT_TRUE(r.diagnostics.empty()) << program << "\n" << r.str(tree);
  }
}

// ------------------------------------------------------- corrupted plans

TEST(Verify, SwappedTripletIndexIsRejected) {
  OptimizedPlan plan = paper16().plan;
  PlanStep* victim = nullptr;
  for (PlanStep& s : plan.steps) {
    if (s.tmpl == StepTemplate::kCannon && s.choice.i != kNoIndex &&
        s.choice.j != kNoIndex) {
      victim = &s;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  std::swap(victim->choice.i, victim->choice.j);  // i ∉ I and j ∉ J now
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "cannon.triplet")) << r.str(paper16().tree);
}

TEST(Verify, DistributedFusedIndexIsRejected) {
  OptimizedPlan plan = paper16().plan;
  PlanStep& s = fused_step(plan);
  // Grid-distribute one of the step's fused indices: §3.2(iii) requires
  // the fused loop ranges to agree, which the library guarantees by
  // never distributing fused indices.
  const IndexId f = *s.fusion.begin();
  s.result_dist = Distribution(f, s.result_dist.at(2));
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "dist.fused-undistributed"))
      << r.str(paper16().tree);
}

TEST(Verify, BrokenDistributionAgreementIsRejected) {
  OptimizedPlan plan = paper16().plan;
  // The fused intermediate must be consumed exactly as produced; making
  // the consumer read it in a different layout breaks §3.2(iii).
  PlanStep& producer = fused_step(plan);
  for (PlanStep& s : plan.steps) {
    if (&s == &producer || s.tmpl != StepTemplate::kCannon) continue;
    if (s.left_dist == producer.result_dist) {
      s.choice.transposed = !s.choice.transposed;
      s.left_dist = s.choice.left_dist();
      s.right_dist = s.choice.right_dist();
      s.result_dist = s.choice.result_dist();
      break;
    }
  }
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "dist.operand-agreement"))
      << r.str(paper16().tree);
}

TEST(Verify, IllegalFusionNestingIsRejected) {
  OptimizedPlan plan = paper16().plan;
  // The consumer of the fused intermediate gets a fusion of its own that
  // spans the producer's loop nest without being fused through it.
  const PlanStep& producer = fused_step(plan);
  const ContractionTree& tree = paper16().tree;
  for (PlanStep& s : plan.steps) {
    bool consumes = tree.node(s.node).left == producer.node ||
                    tree.node(s.node).right == producer.node;
    if (!consumes) continue;
    const ContractionNode& pn = tree.node(producer.node);
    for (IndexId v : pn.loop_indices() & tree.node(s.node).dimens()) {
      if (!producer.fusion.contains(v)) {
        s.fusion.insert(v);
        s.effective_fused.insert(v);
        break;
      }
    }
  }
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "fusion.nesting")) << r.str(paper16().tree);
}

TEST(Verify, InflatedArrayBytesIsRejected) {
  OptimizedPlan plan = paper16().plan;
  plan.array_bytes_per_proc += 4096;
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "mem.array-total")) << r.str(paper16().tree);
  EXPECT_FALSE(has_rule(r, "mem.peak-live"));  // only the lie is flagged
}

TEST(Verify, UnderstatedCommTotalIsRejected) {
  OptimizedPlan plan = paper16().plan;
  plan.total_comm_s *= 0.5;
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "cost.total")) << r.str(paper16().tree);
}

TEST(Verify, PhantomRedistributionIsRejected) {
  OptimizedPlan plan = paper16().plan;
  // Charge a redistribution on an operand consumed as produced.
  fused_step(plan).redist_left_s += 7.0;
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "cost.redistribution"))
      << r.str(paper16().tree);
}

TEST(Verify, WrongRotationCostIsRejected) {
  OptimizedPlan plan = paper16().plan;
  PlanStep& s = fused_step(plan);
  s.rot_left_s = s.rot_left_s * 3.0 + 1.0;
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "cost.rotation")) << r.str(paper16().tree);
}

TEST(Verify, DroppedStepIsRejected) {
  OptimizedPlan plan = paper16().plan;
  plan.steps.pop_back();
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "structure.steps")) << r.str(paper16().tree);
}

TEST(Verify, RenamedResultIsRejected) {
  OptimizedPlan plan = paper16().plan;
  plan.steps.front().result_name = "bogus";
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "structure.result-name"))
      << r.str(paper16().tree);
}

TEST(Verify, WrongRotationIndexIsRejected) {
  OptimizedPlan plan = paper16().plan;
  for (PlanStep& s : plan.steps) {
    if (s.tmpl == StepTemplate::kCannon) {
      s.choice.rot = kNoIndex;
      break;
    }
  }
  const VerifyReport r = verify16(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "cannon.rotation")) << r.str(paper16().tree);
}

TEST(Verify, MemoryLimitViolationIsRejected) {
  // The clean plan respects 4 GB/node but not 1 GB/node; verifying
  // against the tighter limit must flag mem.limit (and nothing else).
  const VerifyReport r =
      verify16(paper16().plan, /*limit=*/1'000'000'000);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "mem.limit")) << r.str(paper16().tree);
  EXPECT_EQ(r.diagnostics.size(), 1u) << r.str(paper16().tree);
}

TEST(Verify, ZeroLimitSkipsTheLimitRule) {
  const VerifyReport r = verify16(paper16().plan, /*limit=*/0);
  EXPECT_TRUE(r.diagnostics.empty()) << r.str(paper16().tree);
}

TEST(Verify, ReportRendersRuleAndNodeNames) {
  OptimizedPlan plan = paper16().plan;
  plan.array_bytes_per_proc += 1;
  const VerifyReport r = verify16(plan);
  const std::string text = r.str(paper16().tree);
  EXPECT_NE(text.find("rule=mem.array-total"), std::string::npos) << text;
  EXPECT_NE(text.find("rules checked"), std::string::npos) << text;
}

TEST(Verify, EnvToggleParsesCommonSpellings) {
  // Not set / empty / "0" = off, anything else = on.
  unsetenv("TCE_VERIFY_PLANS");
  EXPECT_FALSE(verify_plans_enabled());
  setenv("TCE_VERIFY_PLANS", "", 1);
  EXPECT_FALSE(verify_plans_enabled());
  setenv("TCE_VERIFY_PLANS", "0", 1);
  EXPECT_FALSE(verify_plans_enabled());
  setenv("TCE_VERIFY_PLANS", "1", 1);
  EXPECT_TRUE(verify_plans_enabled());
  unsetenv("TCE_VERIFY_PLANS");
}

}  // namespace
}  // namespace tce
