// Tests for tce/cannon: the distributed generalized Cannon executor must
// produce results identical to the reference einsum for every rotation
// choice and orientation, with sensible simulated timings.

#include <gtest/gtest.h>

#include "tce/cannon/executor.hpp"
#include "tce/common/error.hpp"
#include "tce/expr/parser.hpp"

namespace tce {
namespace {

// Small version of the paper's workload: same structure, grid-divisible
// extents that are cheap to evaluate numerically.
constexpr const char* kSmallPaper = R"(
  index a, b, c, d = 8
  index e, f = 4
  index i, j, k, l = 4
  T1[b,c,d,f] = sum[e,l] B[b,e,f,l] * D[c,d,e,l]
  T2[b,c,j,k] = sum[d,f] T1[b,c,d,f] * C[d,f,j,k]
  S[a,b,i,j]  = sum[c,k] T2[b,c,j,k] * A[a,c,i,k]
)";

class CannonFixture : public ::testing::Test {
 protected:
  CannonFixture()
      : tree_(ContractionTree::from_sequence(
            parse_formula_sequence(kSmallPaper))),
        grid_(ProcGrid::make(16, 2)),
        net_(ClusterSpec::itanium2003(8)),
        rng_(123),
        inputs_(make_random_inputs(tree_, rng_)) {}

  const ContractionNode& first_contraction() const {
    for (NodeId id : tree_.post_order()) {
      if (tree_.node(id).kind == ContractionNode::Kind::kContraction) {
        return tree_.node(id);
      }
    }
    throw Error("no contraction");
  }

  ContractionTree tree_;
  ProcGrid grid_;
  Network net_;
  Rng rng_;
  std::map<std::string, DenseTensor> inputs_;
};

TEST_F(CannonFixture, MatchesReferenceForEveryChoice) {
  const ContractionNode& n = first_contraction();
  const DenseTensor& b = inputs_.at("B");
  const DenseTensor& d = inputs_.at("D");
  const DenseTensor want =
      einsum_pair(b, d, n.tensor.dims, n.sum_indices);

  // All fully-assigned choices must give the same result (the summation
  // order within a block is fixed; across blocks the partial sums are
  // added in ring order, so allow roundoff).
  for (const auto& choice : enumerate_cannon_choices(n)) {
    if (choice.i == kNoIndex || choice.j == kNoIndex ||
        choice.k == kNoIndex) {
      continue;  // the numeric executor requires a full triplet
    }
    CannonRunResult r = run_cannon(net_, grid_, tree_.space(), n, choice,
                                   b, d);
    EXPECT_LT(want.max_abs_diff(r.result), 1e-10)
        << "choice i=" << int(choice.i) << " j=" << int(choice.j)
        << " k=" << int(choice.k) << " rot=" << int(choice.rot)
        << " transposed=" << choice.transposed;
    EXPECT_GT(r.timing.comm_s, 0.0);
    EXPECT_GT(r.timing.compute_s, 0.0);
    EXPECT_GT(r.peak_rank_bytes, 0u);
  }
}

TEST_F(CannonFixture, WholeTreeMatchesReference) {
  TreeRunResult r =
      run_tree(net_, grid_, tree_, std::map<NodeId, CannonChoice>{}, inputs_);
  DenseTensor want = evaluate_tree(tree_, inputs_);
  EXPECT_LT(want.max_abs_diff(r.result), 1e-9);
  EXPECT_GT(r.timing.comm_s, 0.0);
}

TEST_F(CannonFixture, TimingScalesWithRotatedVolume) {
  // Rotating the two small arrays must beat rotating a big one.  For the
  // first contraction (T1 = B·D), T1 is by far the largest array; choices
  // that keep T1 fixed (rot = k) should communicate less.
  const ContractionNode& n = first_contraction();
  double best_fixed_t1 = 1e300, best_rotating_t1 = 1e300;
  for (const auto& choice : enumerate_cannon_choices(n)) {
    if (choice.i == kNoIndex || choice.j == kNoIndex ||
        choice.k == kNoIndex) {
      continue;
    }
    CannonRunResult r = run_cannon(net_, grid_, tree_.space(), n, choice,
                                   inputs_.at("B"), inputs_.at("D"));
    if (choice.rotates_result()) {
      best_rotating_t1 = std::min(best_rotating_t1, r.timing.comm_s);
    } else {
      best_fixed_t1 = std::min(best_fixed_t1, r.timing.comm_s);
    }
  }
  EXPECT_LT(best_fixed_t1, best_rotating_t1);
}

TEST_F(CannonFixture, ComputeTimeMatchesFlopModel) {
  const ContractionNode& n = first_contraction();
  const CannonChoice choice = enumerate_cannon_choices(n).front();
  CannonRunResult r = run_cannon(net_, grid_, tree_.space(), n, choice,
                                 inputs_.at("B"), inputs_.at("D"));
  // Total flops split evenly across P ranks, perfectly parallel.
  const double want = static_cast<double>(tree_.flops(
                          [&] {
                            for (NodeId id : tree_.post_order()) {
                              if (&tree_.node(id) == &n) return id;
                            }
                            return kNoNode;
                          }())) /
                      grid_.procs / net_.spec().flops_per_proc;
  EXPECT_NEAR(r.timing.compute_s, want, 1e-9 * want);
}

TEST_F(CannonFixture, RejectsPartialTriplet) {
  // Matrix-vector contraction has an empty J set -> no full triplet.
  FormulaSequence seq = parse_formula_sequence(
      "index i = 16; index k = 16\ny[i] = sum[k] M[i,k] * x[k]");
  ContractionTree t = ContractionTree::from_sequence(seq);
  const ContractionNode& n = t.node(t.root());
  auto choices = enumerate_cannon_choices(n);
  Rng rng(5);
  auto ins = make_random_inputs(t, rng);
  EXPECT_THROW(run_cannon(net_, grid_, t.space(), n, choices.front(),
                          ins.at("M"), ins.at("x")),
               Error);
}

TEST_F(CannonFixture, RejectsNonDividingExtents) {
  FormulaSequence seq = parse_formula_sequence(
      "index i, j = 6; index k = 8\nC[i,j] = sum[k] A[i,k] * B[k,j]");
  ContractionTree t = ContractionTree::from_sequence(seq);
  Rng rng(5);
  auto ins = make_random_inputs(t, rng);
  const ContractionNode& n = t.node(t.root());
  // 6 does not divide edge 4.
  EXPECT_THROW(
      run_tree(net_, grid_, t, std::map<NodeId, CannonChoice>{}, ins),
      Error);
  (void)n;
}

// Parameterized sweep over random contraction shapes and grids: the
// executor must agree with the reference evaluator everywhere.
struct SweepCase {
  std::uint32_t procs;
  std::uint64_t seed;
};

class CannonSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CannonSweep, RandomShapesMatchReference) {
  const SweepCase param = GetParam();
  Rng rng(param.seed);
  const ProcGrid grid = ProcGrid::make(param.procs, 1);
  ClusterSpec spec = ClusterSpec::itanium2003(param.procs);
  spec.procs_per_node = 1;
  spec.nodes = param.procs;
  Network net(spec);

  // Random contraction: ranks 2-3 per operand, extents multiples of edge.
  IndexSpace space;
  const std::uint32_t e = grid.edge;
  auto ext = [&] {
    return e * static_cast<std::uint64_t>(rng.uniform_int(1, 3));
  };
  IndexId i0 = space.add("i0", ext());
  IndexId i1 = space.add("i1", ext());
  IndexId j0 = space.add("j0", ext());
  IndexId j1 = space.add("j1", ext());
  IndexId k0 = space.add("k0", ext());
  IndexId k1 = space.add("k1", ext());

  TensorRef aref{"Aop", {i0, k0, i1, k1}};
  TensorRef bref{"Bop", {j0, k0, j1, k1}};
  TensorRef cref{"Cres", {i0, i1, j0, j1}};

  ContractionNode node;
  node.kind = ContractionNode::Kind::kContraction;
  node.tensor = cref;
  node.sum_indices = IndexSet::of({k0, k1});
  node.left_indices = IndexSet::of({i0, i1});
  node.right_indices = IndexSet::of({j0, j1});

  DenseTensor a = make_tensor(aref, space);
  DenseTensor b = make_tensor(bref, space);
  a.fill_random(rng);
  b.fill_random(rng);
  DenseTensor want = einsum_pair(a, b, cref.dims, node.sum_indices);

  // Try a handful of random fully-assigned choices.
  std::vector<CannonChoice> choices;
  for (const auto& c : enumerate_cannon_choices(node)) {
    if (c.i != kNoIndex && c.j != kNoIndex && c.k != kNoIndex) {
      choices.push_back(c);
    }
  }
  for (int t = 0; t < 4; ++t) {
    const auto& choice = choices[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(choices.size()) - 1))];
    CannonRunResult r = run_cannon(net, grid, space, node, choice, a, b);
    EXPECT_LT(want.max_abs_diff(r.result), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndSeeds, CannonSweep,
    ::testing::Values(SweepCase{1, 1}, SweepCase{4, 2}, SweepCase{4, 3},
                      SweepCase{9, 4}, SweepCase{9, 5}, SweepCase{16, 6},
                      SweepCase{16, 7}, SweepCase{25, 8}));

}  // namespace
}  // namespace tce
