// Tests for the JSON plan export: structural validity (balanced,
// expected keys, proper escaping) and value fidelity against the plan.

#include <gtest/gtest.h>

#include "tce/cli/cli.hpp"
#include "tce/common/error.hpp"
#include "tce/core/plan_json.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"
#include "tce/verify/verifier.hpp"

namespace tce {
namespace {

OptimizedPlan table2_plan(const char** space_out_name,
                          FormulaSequence& seq_out) {
  (void)space_out_name;
  seq_out = parse_formula_sequence(R"(
    index a, b, c, d = 480
    index e, f = 64
    index i, j, k, l = 32
    T1[b,c,d,f] = sum[e,l] B[b,e,f,l] * D[c,d,e,l]
    T2[b,c,j,k] = sum[d,f] T1[b,c,d,f] * C[d,f,j,k]
    S[a,b,i,j]  = sum[c,k] T2[b,c,j,k] * A[a,c,i,k]
  )");
  ContractionTree tree = ContractionTree::from_sequence(seq_out);
  static CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = 4'000'000'000;
  return optimize(tree, model, cfg);
}

bool balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(PlanJson, StructurallyValidAndComplete) {
  FormulaSequence seq;
  OptimizedPlan plan = table2_plan(nullptr, seq);
  const std::string json = plan_to_json(plan, seq.space());
  EXPECT_TRUE(balanced(json)) << json;
  for (const char* key :
       {"\"total_comm_s\"", "\"memory\"", "\"steps\"", "\"arrays\"",
        "\"template\":\"cannon\"", "\"fusion\":[\"f\"]",
        "\"name\":\"T1\"", "\"kind\":\"input\"", "\"kind\":\"output\"",
        "\"rotation_index\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The fused T1 row exposes its reduced dims (b,c,d — no f).
  EXPECT_NE(json.find("\"reduced_dims\":[\"b\",\"c\",\"d\"]"),
            std::string::npos)
      << json;
}

TEST(PlanJson, ValuesMatchThePlan) {
  FormulaSequence seq;
  OptimizedPlan plan = table2_plan(nullptr, seq);
  const std::string json = plan_to_json(plan, seq.space());
  // Memory values are integers and must appear verbatim.
  EXPECT_NE(json.find("\"array_bytes_per_node\":" +
                      std::to_string(plan.bytes_per_node())),
            std::string::npos);
  EXPECT_NE(json.find("\"buffer_bytes_per_node\":" +
                      std::to_string(plan.buffer_bytes_per_node())),
            std::string::npos);
}

TEST(PlanJson, CliJsonFlagEmitsParseableOutput) {
  // Smoke via the CLI path (single tree).
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "json_prog.tce";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("index a, b, c = 64\nC[a,c] = sum[b] X[a,b] * Y[b,c]\n",
               f);
    std::fclose(f);
  }
  CliResult r = run_cli({"plan", path, "--procs", "4", "--json"});
  std::remove(path.c_str());
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_TRUE(balanced(r.output)) << r.output;
  EXPECT_EQ(r.output.front(), '{');
}

/// Field-by-field equality over everything the verifier inspects.
void expect_same_plan(const OptimizedPlan& a, const OptimizedPlan& b) {
  EXPECT_DOUBLE_EQ(a.total_comm_s, b.total_comm_s);
  EXPECT_DOUBLE_EQ(a.total_compute_s, b.total_compute_s);
  EXPECT_EQ(a.array_bytes_per_proc, b.array_bytes_per_proc);
  EXPECT_EQ(a.max_msg_bytes_per_proc, b.max_msg_bytes_per_proc);
  EXPECT_EQ(a.peak_live_bytes_per_proc, b.peak_live_bytes_per_proc);
  EXPECT_EQ(a.procs_per_node, b.procs_per_node);
  EXPECT_EQ(a.liveness_aware, b.liveness_aware);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    const PlanStep& s = a.steps[i];
    const PlanStep& t = b.steps[i];
    EXPECT_EQ(s.node, t.node);
    EXPECT_EQ(s.result_name, t.result_name);
    EXPECT_EQ(s.tmpl, t.tmpl);
    EXPECT_EQ(s.fusion, t.fusion);
    EXPECT_EQ(s.effective_fused, t.effective_fused);
    EXPECT_EQ(s.left_dist, t.left_dist);
    EXPECT_EQ(s.right_dist, t.right_dist);
    EXPECT_EQ(s.result_dist, t.result_dist);
    EXPECT_EQ(s.choice.i, t.choice.i);
    EXPECT_EQ(s.choice.j, t.choice.j);
    EXPECT_EQ(s.choice.k, t.choice.k);
    EXPECT_EQ(s.choice.rot, t.choice.rot);
    EXPECT_EQ(s.choice.transposed, t.choice.transposed);
    EXPECT_EQ(s.replicate_right, t.replicate_right);
    EXPECT_EQ(s.reduce_dim, t.reduce_dim);
    EXPECT_DOUBLE_EQ(s.rot_left_s, t.rot_left_s);
    EXPECT_DOUBLE_EQ(s.rot_right_s, t.rot_right_s);
    EXPECT_DOUBLE_EQ(s.rot_result_s, t.rot_result_s);
    EXPECT_DOUBLE_EQ(s.redist_left_s, t.redist_left_s);
    EXPECT_DOUBLE_EQ(s.redist_right_s, t.redist_right_s);
  }
  ASSERT_EQ(a.arrays.size(), b.arrays.size());
  for (std::size_t i = 0; i < a.arrays.size(); ++i) {
    const ArrayReport& x = a.arrays[i];
    const ArrayReport& y = b.arrays[i];
    EXPECT_EQ(x.full, y.full);
    EXPECT_EQ(x.reduced, y.reduced);
    EXPECT_EQ(x.is_input, y.is_input);
    EXPECT_EQ(x.is_output, y.is_output);
    EXPECT_EQ(x.initial_dist, y.initial_dist);
    EXPECT_EQ(x.final_dist, y.final_dist);
    EXPECT_EQ(x.mem_per_node_bytes, y.mem_per_node_bytes);
    EXPECT_EQ(x.comm_initial_s, y.comm_initial_s);
    EXPECT_EQ(x.comm_final_s, y.comm_final_s);
  }
}

TEST(PlanJson, RoundTripIsLosslessAndVerifies) {
  FormulaSequence seq;
  OptimizedPlan plan = table2_plan(nullptr, seq);
  ContractionTree tree = ContractionTree::from_sequence(seq);
  const std::string json = plan_to_json(plan, tree.space());
  OptimizedPlan reread = plan_from_json(json, tree);
  expect_same_plan(plan, reread);
  // Serializing the reread plan reproduces the bytes exactly.
  EXPECT_EQ(plan_to_json(reread, tree.space()), json);

  // The communication-gap stats survive the codec.
  EXPECT_GT(plan.stats.comm_lb_words, 0u);
  EXPECT_EQ(reread.stats.comm_lb_words, plan.stats.comm_lb_words);
  EXPECT_EQ(reread.stats.achieved_comm_words,
            plan.stats.achieved_comm_words);
  EXPECT_DOUBLE_EQ(reread.stats.comm_gap_ratio,
                   plan.stats.comm_gap_ratio);

  // The reread plan passes the full verifier, like the original.
  CharacterizedModel model(characterize_itanium(16));
  VerifyOptions opts;
  opts.mem_limit_node_bytes = 4'000'000'000;
  const VerifyReport r = verify_plan(tree, model, reread, opts);
  EXPECT_TRUE(r.diagnostics.empty()) << r.str(tree);
}

TEST(PlanJson, RoundTripPreservesReplicatedSteps) {
  FormulaSequence seq = parse_formula_sequence(R"(
    index i = 2048
    index j = 4
    index k = 2048
    C[i,j] = sum[k] A[i,k] * B[k,j]
  )");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.enable_replication_template = true;
  OptimizedPlan plan = optimize(tree, model, cfg);
  OptimizedPlan reread =
      plan_from_json(plan_to_json(plan, tree.space()), tree);
  expect_same_plan(plan, reread);
  const VerifyReport r = verify_plan(tree, model, reread);
  EXPECT_TRUE(r.diagnostics.empty()) << r.str(tree);
}

TEST(PlanJson, MalformedInputIsATypedError) {
  FormulaSequence seq;
  OptimizedPlan plan = table2_plan(nullptr, seq);
  ContractionTree tree = ContractionTree::from_sequence(seq);
  const std::string json = plan_to_json(plan, tree.space());
  EXPECT_THROW(plan_from_json("", tree), Error);
  EXPECT_THROW(plan_from_json("[1, 2]", tree), Error);
  EXPECT_THROW(plan_from_json("{\"steps\": []}", tree), Error);
  EXPECT_THROW(plan_from_json(json.substr(0, json.size() / 2), tree),
               Error);
  // Unknown index names are rejected, not silently dropped.
  std::string bad = json;
  const std::string from = "\"fusion\":[\"f\"]";
  const auto at = bad.find(from);
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, from.size(), "\"fusion\":[\"zz\"]");
  EXPECT_THROW(plan_from_json(bad, tree), Error);
}

TEST(PlanJson, ReplicatedStepsAreLabeled) {
  FormulaSequence seq = parse_formula_sequence(R"(
    index i = 2048
    index j = 4
    index k = 2048
    C[i,j] = sum[k] A[i,k] * B[k,j]
  )");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.enable_replication_template = true;
  OptimizedPlan plan = optimize(tree, model, cfg);
  const std::string json = plan_to_json(plan, seq.space());
  EXPECT_TRUE(balanced(json));
  if (plan.steps[0].tmpl == StepTemplate::kReplicated) {
    EXPECT_NE(json.find("\"template\":\"replicated\""),
              std::string::npos);
    EXPECT_NE(json.find("\"rotation_index\":null"), std::string::npos);
  }
}

}  // namespace
}  // namespace tce
