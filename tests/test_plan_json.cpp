// Tests for the JSON plan export: structural validity (balanced,
// expected keys, proper escaping) and value fidelity against the plan.

#include <gtest/gtest.h>

#include "tce/cli/cli.hpp"
#include "tce/core/plan_json.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"

namespace tce {
namespace {

OptimizedPlan table2_plan(const char** space_out_name,
                          FormulaSequence& seq_out) {
  (void)space_out_name;
  seq_out = parse_formula_sequence(R"(
    index a, b, c, d = 480
    index e, f = 64
    index i, j, k, l = 32
    T1[b,c,d,f] = sum[e,l] B[b,e,f,l] * D[c,d,e,l]
    T2[b,c,j,k] = sum[d,f] T1[b,c,d,f] * C[d,f,j,k]
    S[a,b,i,j]  = sum[c,k] T2[b,c,j,k] * A[a,c,i,k]
  )");
  ContractionTree tree = ContractionTree::from_sequence(seq_out);
  static CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = 4'000'000'000;
  return optimize(tree, model, cfg);
}

bool balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(PlanJson, StructurallyValidAndComplete) {
  FormulaSequence seq;
  OptimizedPlan plan = table2_plan(nullptr, seq);
  const std::string json = plan_to_json(plan, seq.space());
  EXPECT_TRUE(balanced(json)) << json;
  for (const char* key :
       {"\"total_comm_s\"", "\"memory\"", "\"steps\"", "\"arrays\"",
        "\"template\":\"cannon\"", "\"fusion\":[\"f\"]",
        "\"name\":\"T1\"", "\"kind\":\"input\"", "\"kind\":\"output\"",
        "\"rotation_index\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The fused T1 row exposes its reduced dims (b,c,d — no f).
  EXPECT_NE(json.find("\"reduced_dims\":[\"b\",\"c\",\"d\"]"),
            std::string::npos)
      << json;
}

TEST(PlanJson, ValuesMatchThePlan) {
  FormulaSequence seq;
  OptimizedPlan plan = table2_plan(nullptr, seq);
  const std::string json = plan_to_json(plan, seq.space());
  // Memory values are integers and must appear verbatim.
  EXPECT_NE(json.find("\"array_bytes_per_node\":" +
                      std::to_string(plan.bytes_per_node())),
            std::string::npos);
  EXPECT_NE(json.find("\"buffer_bytes_per_node\":" +
                      std::to_string(plan.buffer_bytes_per_node())),
            std::string::npos);
}

TEST(PlanJson, CliJsonFlagEmitsParseableOutput) {
  // Smoke via the CLI path (single tree).
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "json_prog.tce";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("index a, b, c = 64\nC[a,c] = sum[b] X[a,b] * Y[b,c]\n",
               f);
    std::fclose(f);
  }
  CliResult r = run_cli({"plan", path, "--procs", "4", "--json"});
  std::remove(path.c_str());
  ASSERT_EQ(r.exit_code, 0) << r.error;
  EXPECT_TRUE(balanced(r.output)) << r.output;
  EXPECT_EQ(r.output.front(), '{');
}

TEST(PlanJson, ReplicatedStepsAreLabeled) {
  FormulaSequence seq = parse_formula_sequence(R"(
    index i = 2048
    index j = 4
    index k = 2048
    C[i,j] = sum[k] A[i,k] * B[k,j]
  )");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.enable_replication_template = true;
  OptimizedPlan plan = optimize(tree, model, cfg);
  const std::string json = plan_to_json(plan, seq.space());
  EXPECT_TRUE(balanced(json));
  if (plan.steps[0].tmpl == StepTemplate::kReplicated) {
    EXPECT_NE(json.find("\"template\":\"replicated\""),
              std::string::npos);
    EXPECT_NE(json.find("\"rotation_index\":null"), std::string::npos);
  }
}

}  // namespace
}  // namespace tce
