// Tests for the replicate–compute–reduce template extension.

#include <gtest/gtest.h>

#include "tce/cannon/executor.hpp"
#include "tce/common/error.hpp"
#include "tce/core/optimizer.hpp"
#include "tce/costmodel/analytic.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"

#include "paper_workload.hpp"

namespace tce {
namespace {

using ::tce::testing::kNodeLimit4GB;
using ::tce::testing::kPaperProgram;
using ::tce::testing::paper_tree;


// ----------------------------------------------------- collective costs

TEST(Collectives, AllgatherScalesWithTotalBytes) {
  // The measured curve is monotone and eventually bandwidth-bound.  It
  // sits *below* the naive analytic bound because recursive-doubling
  // partners at node-multiple distances land intra-node and ride the
  // fast memory path — a genuine topology effect of the simulated
  // machine that real measurements would show too.
  CharacterizedModel m(characterize_itanium(16));
  const double small = m.allgather_cost(1 << 20);
  const double large = m.allgather_cost(64u << 20);
  EXPECT_GT(large, 5 * small);
  AnalyticModel a(ProcGrid::make(16, 2), AnalyticParams{});
  for (std::uint64_t b : {4ull << 20, 64ull << 20, 256ull << 20}) {
    EXPECT_LE(m.allgather_cost(b), a.allgather_cost(b) * 1.1) << b;
    EXPECT_GE(m.allgather_cost(b), a.allgather_cost(b) * 0.3) << b;
  }
}

TEST(Collectives, ReduceScatterCurvesAreSaneBothDims) {
  // The butterfly interacts with the cyclic rank→node layout, so the
  // two grid dimensions legitimately differ (unlike ring rotations,
  // which are symmetric); both curves must still be positive, monotone,
  // and within a small factor of each other.
  CharacterizedModel m(characterize_itanium(16));
  for (int dim : {1, 2}) {
    double prev = 0;
    for (std::uint64_t b :
         {1ull << 18, 1ull << 20, 1ull << 23, 1ull << 26}) {
      const double v = m.reduce_scatter_cost(b, dim);
      EXPECT_GT(v, 0.0);
      EXPECT_GE(v, prev);
      prev = v;
    }
  }
  for (std::uint64_t b : {1ull << 20, 32ull << 20}) {
    const double r1 = m.reduce_scatter_cost(b, 1);
    const double r2 = m.reduce_scatter_cost(b, 2);
    EXPECT_LT(std::max(r1, r2) / std::min(r1, r2), 3.0);
  }
}

TEST(Collectives, V2FileRoundTripsNewCurves) {
  CharacterizationTable t = characterize_itanium(16);
  CharacterizationTable u =
      CharacterizationTable::load_string(t.save_string());
  CharacterizedModel m(std::move(u));
  CharacterizedModel orig(std::move(t));
  EXPECT_DOUBLE_EQ(m.allgather_cost(5 << 20), orig.allgather_cost(5 << 20));
  EXPECT_DOUBLE_EQ(m.reduce_scatter_cost(5 << 20, 1),
                   orig.reduce_scatter_cost(5 << 20, 1));
}

// ------------------------------------------------------------ optimizer

TEST(Replication, OffByDefaultKeepsPaperPlans) {
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = 4'000'000'000;
  OptimizedPlan plan = optimize(tree, model, cfg);
  for (const PlanStep& s : plan.steps) {
    EXPECT_EQ(s.tmpl, StepTemplate::kCannon);
  }
}

TEST(Replication, NeverWorseThanCannonOnly) {
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(16));
  for (std::uint64_t limit : {0ull, 4'000'000'000ull}) {
    OptimizerConfig base;
    base.mem_limit_node_bytes = limit;
    OptimizerConfig ext = base;
    ext.enable_replication_template = true;
    EXPECT_LE(optimize(tree, model, ext).total_comm_s,
              optimize(tree, model, base).total_comm_s * (1 + 1e-12));
  }
}

TEST(Replication, BeatsCannonOnTheFusedPaperWorkload) {
  // The paper's Table 2 scenario: the fused T1·C step rotates the huge
  // reduced T1 per f iteration under Cannon; replicating the tiny C
  // slices keeps T1 stationary and cuts total communication by a large
  // factor.
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig base;
  base.mem_limit_node_bytes = 4'000'000'000;
  OptimizerConfig ext = base;
  ext.enable_replication_template = true;
  const double cannon = optimize(tree, model, base).total_comm_s;
  OptimizedPlan plan = optimize(tree, model, ext);
  EXPECT_LT(plan.total_comm_s, 0.5 * cannon);
  // At least one step chose the replicated template.
  bool used = false;
  for (const PlanStep& s : plan.steps) {
    used = used || s.tmpl == StepTemplate::kReplicated;
  }
  EXPECT_TRUE(used);
  // Still within the memory budget.
  EXPECT_LE(plan.bytes_per_node() + plan.buffer_bytes_per_node(),
            base.mem_limit_node_bytes);
}

TEST(Replication, ReplicatedOperandReportsNoDistribution) {
  // On a skewed single contraction (huge A, tiny x-ish B), the extension
  // should replicate the small operand; its consumed "distribution" is
  // the replicated ⟨·,·⟩.
  ContractionTree tree = ContractionTree::from_sequence(parse_formula_sequence(R"(
    index i = 2048
    index j = 4
    index k = 2048
    C[i,j] = sum[k] A[i,k] * B[k,j]
  )"));
  AnalyticModel model(ProcGrid::make(16, 2), AnalyticParams{});
  OptimizerConfig cfg;
  cfg.enable_replication_template = true;
  OptimizedPlan plan = optimize(tree, model, cfg);
  ASSERT_EQ(plan.steps.size(), 1u);
  const PlanStep& s = plan.steps[0];
  if (s.tmpl == StepTemplate::kReplicated) {
    EXPECT_TRUE(s.replicate_right);
    EXPECT_TRUE(s.right_dist.undistributed());
    EXPECT_GT(s.rot_right_s, 0.0);  // allgather cost on B
    EXPECT_EQ(s.rot_left_s, 0.0);   // A stationary
  } else {
    // Cannon keeping A fixed is also defensible; it must then rotate the
    // two small arrays.
    EXPECT_EQ(s.rot_left_s, 0.0);
  }
}

// ----------------------------------------------------- numeric executor

TEST(ReplicationExecutor, MatchesReferenceForAllSpecs) {
  // C[i0,i1,j0] = Σ_{k0,k1} A[i0,k0,i1,k1] · B[j0,k0,k1] on a 2x2 grid:
  // every stationary-distribution / reduce-dim / side combination must
  // reproduce the reference einsum.
  IndexSpace space;
  IndexId i0 = space.add("i0", 4), i1 = space.add("i1", 6),
          j0 = space.add("j0", 4), k0 = space.add("k0", 4),
          k1 = space.add("k1", 2);
  ContractionNode node;
  node.kind = ContractionNode::Kind::kContraction;
  node.tensor = TensorRef{"C", {i0, i1, j0}};
  node.sum_indices = IndexSet::of({k0, k1});
  node.left_indices = IndexSet::of({i0, i1});
  node.right_indices = IndexSet::single(j0);

  Rng rng(17);
  DenseTensor a = make_tensor(TensorRef{"A", {i0, k0, i1, k1}}, space);
  DenseTensor b = make_tensor(TensorRef{"B", {j0, k0, k1}}, space);
  a.fill_random(rng);
  b.fill_random(rng);
  DenseTensor want = einsum_pair(a, b, node.tensor.dims,
                                 node.sum_indices);

  const ProcGrid grid = ProcGrid::make(4, 2);
  Network net(ClusterSpec::itanium2003(2));

  int combos = 0;
  for (bool repl_right : {false, true}) {
    // s_r comes from the stationary operand's result-side indices:
    // stationary = left (A) when the right side is replicated, and vice
    // versa.
    const std::vector<IndexId> side =
        repl_right ? std::vector<IndexId>{i0, i1, kNoIndex}
                   : std::vector<IndexId>{j0, kNoIndex};
    for (IndexId s_r : side) {
      for (IndexId s_k : {k0, k1, kNoIndex}) {
        for (bool tr : {false, true}) {
          ReplicatedSpec spec;
          spec.replicate_right = repl_right;
          Distribution delta(s_r, s_k);
          if (tr) delta = delta.transposed();
          spec.stationary_dist = delta;
          spec.reduce_dim = delta.dim_of(s_k);
          // Scatter position: pick the first replicated-side result
          // index, or none.
          const IndexId j_pick = repl_right ? j0 : i0;
          Distribution alpha(s_r, spec.reduce_dim != 0 ? j_pick
                                                       : kNoIndex);
          if (tr) alpha = alpha.transposed();
          spec.result_dist = alpha;

          CannonRunResult r =
              run_replicated(net, grid, space, node, spec, a, b);
          EXPECT_LT(want.max_abs_diff(r.result), 1e-11)
              << "repl_right=" << repl_right << " s_r=" << int(s_r)
              << " s_k=" << int(s_k) << " tr=" << tr;
          EXPECT_GE(r.timing.comm_s, 0.0);
          ++combos;
        }
      }
    }
  }
  EXPECT_GT(combos, 20);
}

TEST(ReplicationExecutor, WholeTreeWithMixedTemplates) {
  // Execute the scaled paper tree with the extension enabled: the plan
  // mixes replicated and Cannon steps; numerics must still match.
  FormulaSequence seq = parse_formula_sequence(R"(
    index a, b, c, d = 16
    index e, f = 8
    index i, j, k, l = 4
    T1[b,c,d,f] = sum[e,l] B[b,e,f,l] * D[c,d,e,l]
    T2[b,c,j,k] = sum[d,f] T1[b,c,d,f] * C[d,f,j,k]
    S[a,b,i,j]  = sum[c,k] T2[b,c,j,k] * A[a,c,i,k]
  )");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  const ProcGrid grid = ProcGrid::make(16, 2);
  Network net(ClusterSpec::itanium2003(8));
  CharacterizedModel model(characterize(net, grid));

  OptimizerConfig cfg;
  cfg.enable_replication_template = true;
  OptimizedPlan plan = optimize(tree, model, cfg);

  std::map<NodeId, ExecChoice> exec;
  bool any_replicated = false;
  for (const PlanStep& s : plan.steps) {
    ExecChoice e;
    if (s.tmpl == StepTemplate::kReplicated) {
      e.replicated = true;
      e.repl.replicate_right = s.replicate_right;
      e.repl.stationary_dist =
          s.replicate_right ? s.left_dist : s.right_dist;
      e.repl.result_dist = s.result_dist;
      e.repl.reduce_dim = s.reduce_dim;
      any_replicated = true;
    } else {
      e.cannon = s.choice;
    }
    exec[s.node] = e;
  }

  Rng rng(31);
  auto inputs = make_random_inputs(tree, rng);
  TreeRunResult run = run_tree(net, grid, tree, exec, inputs);
  DenseTensor want = evaluate_tree(tree, inputs);
  EXPECT_LT(want.max_abs_diff(run.result), 1e-9);
  // This workload's optimum at this scale may or may not replicate;
  // either way the execution must be correct.
  (void)any_replicated;
}

TEST(Replication, DuplicationPenaltyChargesIdleGridDims) {
  // With the penalty in place, a partially assigned configuration can
  // only win when memory forces it; unconstrained optima always use
  // fully assigned triplets on this workload.
  ContractionTree tree = paper_tree();
  CharacterizedModel model(characterize_itanium(16));
  OptimizerConfig cfg;
  cfg.enable_replication_template = true;
  OptimizedPlan plan = optimize(tree, model, cfg);
  for (const PlanStep& s : plan.steps) {
    if (s.tmpl == StepTemplate::kCannon) {
      EXPECT_NE(s.choice.i, kNoIndex);
      EXPECT_NE(s.choice.j, kNoIndex);
      EXPECT_NE(s.choice.k, kNoIndex);
    } else {
      EXPECT_NE(s.result_dist.at(1) == kNoIndex &&
                    s.result_dist.at(2) == kNoIndex,
                true);
    }
  }
}

}  // namespace
}  // namespace tce
