// Tests for tce/tensor: dense tensors, reference einsum, the matmul fast
// path, and distributed block geometry.

#include <gtest/gtest.h>

#include "tce/common/error.hpp"
#include "tce/expr/parser.hpp"
#include "tce/tensor/block.hpp"
#include "tce/tensor/einsum.hpp"
#include "tce/tensor/matmul.hpp"

namespace tce {
namespace {

// ------------------------------------------------------------- DenseTensor

TEST(DenseTensor, StridesAreRowMajor) {
  DenseTensor t({0, 1, 2}, {2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.stride(0), 12u);
  EXPECT_EQ(t.stride(1), 4u);
  EXPECT_EQ(t.stride(2), 1u);
  std::vector<std::uint64_t> idx{1, 2, 3};
  t.at(idx) = 7.5;
  EXPECT_EQ(t.data()[23], 7.5);
}

TEST(DenseTensor, ScalarHasOneElement) {
  DenseTensor s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.size(), 1u);
  std::vector<std::uint64_t> idx{};
  s.at(idx) = 3.0;
  EXPECT_EQ(s.data()[0], 3.0);
}

TEST(DenseTensor, LabelLookups) {
  DenseTensor t({5, 9}, {4, 6});
  EXPECT_TRUE(t.has_dim(5));
  EXPECT_FALSE(t.has_dim(3));
  EXPECT_EQ(t.pos_of(9), 1u);
  EXPECT_EQ(t.extent_of(9), 6u);
  EXPECT_THROW(t.pos_of(3), Error);
}

TEST(DenseTensor, RejectsDuplicateLabels) {
  EXPECT_THROW(DenseTensor({1, 1}, {2, 2}), ContractViolation);
}

TEST(DenseTensor, MaxAbsDiffRequiresSameShape) {
  DenseTensor a({0}, {3}), b({0}, {3}), c({0}, {4});
  a.fill(1.0);
  b.fill(1.5);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
  EXPECT_THROW(a.max_abs_diff(c), ContractViolation);
}

TEST(MultiIndexTest, CountsAndAdvances) {
  std::vector<std::uint64_t> e{2, 3};
  MultiIndex mi(e);
  EXPECT_EQ(mi.count(), 6u);
  int n = 0;
  do {
    ++n;
  } while (mi.advance());
  EXPECT_EQ(n, 6);
}

// ------------------------------------------------------------------ Einsum

TEST(Einsum, MatrixMultiplyMatchesManual) {
  // C[i,j] = sum_k A[i,k] B[k,j] on 2x2.
  DenseTensor a({0, 2}, {2, 2}), b({2, 1}, {2, 2});
  a.data()[0] = 1;
  a.data()[1] = 2;
  a.data()[2] = 3;
  a.data()[3] = 4;
  b.data()[0] = 5;
  b.data()[1] = 6;
  b.data()[2] = 7;
  b.data()[3] = 8;
  DenseTensor c = einsum_pair(a, b, {0, 1}, IndexSet::single(2));
  EXPECT_DOUBLE_EQ(c.data()[0], 19);
  EXPECT_DOUBLE_EQ(c.data()[1], 22);
  EXPECT_DOUBLE_EQ(c.data()[2], 43);
  EXPECT_DOUBLE_EQ(c.data()[3], 50);
}

TEST(Einsum, BatchProductKeepsSharedIndex) {
  // C[t] = A[t] * B[t] (Hadamard).
  DenseTensor a({0}, {3}), b({0}, {3});
  for (int i = 0; i < 3; ++i) {
    a.data()[static_cast<size_t>(i)] = i + 1;
    b.data()[static_cast<size_t>(i)] = 10.0 * (i + 1);
  }
  DenseTensor c = einsum_pair(a, b, {0}, IndexSet());
  EXPECT_DOUBLE_EQ(c.data()[1], 40.0);
}

TEST(Einsum, ReduceSumsMissingDims) {
  DenseTensor a({0, 1}, {2, 3});
  a.fill(1.0);
  DenseTensor r = einsum_reduce(a, {0});
  EXPECT_DOUBLE_EQ(r.data()[0], 3.0);
  DenseTensor s = einsum_reduce(a, {});
  EXPECT_DOUBLE_EQ(s.data()[0], 6.0);
}

TEST(Einsum, RejectsExtentMismatch) {
  DenseTensor a({0, 1}, {2, 3}), b({1, 2}, {4, 5});
  EXPECT_THROW(einsum_pair(a, b, {0, 2}, IndexSet::single(1)), Error);
}

TEST(Einsum, RejectsSummedLabelInResult) {
  DenseTensor a({0, 1}, {2, 3}), b({1, 2}, {3, 5});
  EXPECT_THROW(einsum_pair(a, b, {0, 1}, IndexSet::single(1)), Error);
}

TEST(EvaluateTree, FigureOneNumerics) {
  // S(t) = sum_j (sum_i A(i,j,t)) * (sum_k B(j,k,t)) on small extents.
  FormulaSequence seq = parse_formula_sequence(R"(
    index i = 3; index j = 4; index k = 5; index t = 2
    T1[j,t] = sum[i] A[i,j,t]
    T2[j,t] = sum[k] B[j,k,t]
    T3[j,t] = T1[j,t] * T2[j,t]
    S[t] = sum[j] T3[j,t]
  )");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  Rng rng(42);
  auto inputs = make_random_inputs(tree, rng);
  DenseTensor s = evaluate_tree(tree, inputs);

  // Manual evaluation.
  const IndexSpace& sp = tree.space();
  const auto I = sp.extent(sp.id("i")), J = sp.extent(sp.id("j")),
             K = sp.extent(sp.id("k")), T = sp.extent(sp.id("t"));
  const DenseTensor& A = inputs.at("A");
  const DenseTensor& B = inputs.at("B");
  for (std::uint64_t t = 0; t < T; ++t) {
    double want = 0;
    for (std::uint64_t j = 0; j < J; ++j) {
      double t1 = 0, t2 = 0;
      for (std::uint64_t i = 0; i < I; ++i) {
        t1 += A.at(std::vector<std::uint64_t>{i, j, t});
      }
      for (std::uint64_t k = 0; k < K; ++k) {
        t2 += B.at(std::vector<std::uint64_t>{j, k, t});
      }
      want += t1 * t2;
    }
    EXPECT_NEAR(s.at(std::vector<std::uint64_t>{t}), want, 1e-10);
  }
}

TEST(EvaluateTree, MissingInputThrows) {
  ContractionTree tree = ContractionTree::from_sequence(
      parse_formula_sequence("index i, j = 3\nS[j] = sum[i] A[i,j]"));
  EXPECT_THROW(evaluate_tree(tree, {}), Error);
}

// ------------------------------------------------------------------ Matmul

TEST(Matmul, AgreesWithEinsumOnRandomShapes) {
  Rng rng(7);
  for (int iter = 0; iter < 10; ++iter) {
    const auto m = static_cast<std::uint64_t>(rng.uniform_int(1, 9));
    const auto k = static_cast<std::uint64_t>(rng.uniform_int(1, 9));
    const auto n = static_cast<std::uint64_t>(rng.uniform_int(1, 9));
    DenseTensor a({0, 1}, {m, k}), b({1, 2}, {k, n});
    a.fill_random(rng);
    b.fill_random(rng);
    DenseTensor want = einsum_pair(a, b, {0, 2}, IndexSet::single(1));
    DenseTensor got({0, 2}, {m, n});
    contract_blocks_acc(a, b, IndexSet::single(1), got);
    EXPECT_LT(want.max_abs_diff(got), 1e-12);
  }
}

TEST(Matmul, MultiDimGroupsAgreeWithEinsum) {
  // C[a,b,c,d] = sum_{e,f} A[a,e,b,f] B[f,c,e,d] — interleaved dims force
  // nontrivial packing.
  Rng rng(11);
  DenseTensor a({0, 4, 1, 5}, {2, 3, 4, 2});
  DenseTensor b({5, 2, 4, 3}, {2, 3, 3, 2});
  a.fill_random(rng);
  b.fill_random(rng);
  IndexSet sum = IndexSet::of({4, 5});
  DenseTensor want = einsum_pair(a, b, {0, 1, 2, 3}, sum);
  DenseTensor got({0, 1, 2, 3}, {2, 4, 3, 2});
  contract_blocks_acc(a, b, sum, got);
  EXPECT_LT(want.max_abs_diff(got), 1e-12);
}

TEST(Matmul, AccumulatesIntoExistingResult) {
  Rng rng(3);
  DenseTensor a({0, 1}, {3, 3}), b({1, 2}, {3, 3});
  a.fill_random(rng);
  b.fill_random(rng);
  DenseTensor c({0, 2}, {3, 3});
  c.fill(1.0);
  contract_blocks_acc(a, b, IndexSet::single(1), c);
  DenseTensor want = einsum_pair(a, b, {0, 2}, IndexSet::single(1));
  for (std::size_t i = 0; i < want.data().size(); ++i) {
    EXPECT_NEAR(c.data()[i], want.data()[i] + 1.0, 1e-12);
  }
}

TEST(Matmul, BatchLabelsContractPerSlice) {
  // Label 0 appears in a, b, and c: a TTGT batch dimension.  Each batch
  // slice is an independent dot product over label 1.
  Rng rng(13);
  DenseTensor a({0, 1}, {2, 3}), b({0, 1}, {2, 3});
  a.fill_random(rng);
  b.fill_random(rng);
  DenseTensor c({0}, {2});
  contract_blocks_acc(a, b, IndexSet::single(1), c);
  for (std::uint64_t i = 0; i < 2; ++i) {
    double want = 0;
    for (std::uint64_t j = 0; j < 3; ++j) {
      const std::vector<std::uint64_t> ij{i, j};
      want += a.at(ij) * b.at(ij);
    }
    EXPECT_NEAR(c.at(std::vector<std::uint64_t>{i}), want, 1e-12);
  }
}

TEST(Matmul, PackUnpackRoundTrip) {
  Rng rng(5);
  DenseTensor t({3, 7, 9}, {2, 3, 4});
  t.fill_random(rng);
  std::vector<double> m;
  std::uint64_t rows = 0, cols = 0;
  pack_matrix(t, {7}, {9, 3}, m, rows, cols);
  EXPECT_EQ(rows, 3u);
  EXPECT_EQ(cols, 8u);
  DenseTensor u({3, 7, 9}, {2, 3, 4});
  unpack_matrix_acc(m, {7}, {9, 3}, u);
  EXPECT_LT(t.max_abs_diff(u), 1e-15);
}

// ------------------------------------------------------------------ Blocks

class BlockFixture : public ::testing::Test {
 protected:
  BlockFixture() {
    a_ = space_.add("a", 8);
    b_ = space_.add("b", 8);
    c_ = space_.add("c", 6);
    ref_.name = "T";
    ref_.dims = {a_, b_, c_};
  }
  IndexSpace space_;
  IndexId a_{}, b_{}, c_{};
  TensorRef ref_;
  ProcGrid grid_ = ProcGrid::make(4, 2);
};

TEST_F(BlockFixture, RangeForDistributedDims) {
  BlockRange r =
      block_range(ref_, Distribution(a_, b_), space_, grid_, 1, 0);
  EXPECT_EQ(r.lo, (std::vector<std::uint64_t>{4, 0, 0}));
  EXPECT_EQ(r.hi, (std::vector<std::uint64_t>{8, 4, 6}));
  EXPECT_EQ(r.size(), 4u * 4u * 6u);
}

TEST_F(BlockFixture, UndistributedDimsAreWhole) {
  BlockRange r = block_range(ref_, Distribution(c_, kNoIndex), space_,
                             grid_, 1, 1);
  EXPECT_EQ(r.lo, (std::vector<std::uint64_t>{0, 0, 3}));
  EXPECT_EQ(r.hi, (std::vector<std::uint64_t>{8, 8, 6}));
}

TEST_F(BlockFixture, RejectsNonDividingExtent) {
  IndexSpace sp;
  IndexId x = sp.add("x", 7);  // 7 % 2 != 0
  TensorRef t;
  t.name = "T";
  t.dims = {x};
  EXPECT_THROW(block_range(t, Distribution(x, kNoIndex), sp, grid_, 0, 0),
               Error);
}

TEST_F(BlockFixture, ExtractPlaceRoundTripCoversArray) {
  DenseTensor full = make_tensor(ref_, space_);
  Rng rng(1);
  full.fill_random(rng);
  DenseTensor rebuilt = make_tensor(ref_, space_);
  Distribution alpha(a_, c_);
  for (std::uint32_t z1 = 0; z1 < grid_.edge; ++z1) {
    for (std::uint32_t z2 = 0; z2 < grid_.edge; ++z2) {
      BlockRange r = block_range(ref_, alpha, space_, grid_, z1, z2);
      DenseTensor blk = extract_block(full, r);
      place_block(blk, r, rebuilt);
    }
  }
  EXPECT_LT(full.max_abs_diff(rebuilt), 1e-15);
}

TEST_F(BlockFixture, AccumulateAddsReplicas) {
  DenseTensor full = make_tensor(ref_, space_);
  DenseTensor ones = make_tensor(ref_, space_);
  ones.fill(1.0);
  // Place the same all-ones "replica" twice with accumulation: every
  // element becomes 2.
  BlockRange whole =
      block_range(ref_, Distribution(), space_, grid_, 0, 0);
  accumulate_block(ones, whole, full);
  accumulate_block(ones, whole, full);
  DenseTensor twos = make_tensor(ref_, space_);
  twos.fill(2.0);
  EXPECT_LT(full.max_abs_diff(twos), 1e-15);
}

}  // namespace
}  // namespace tce
