// Asymmetric machines: with the blocked rank layout, ring shifts along
// grid dimension 2 run partly intra-node and are cheaper than shifts
// along dimension 1.  The characterization captures the asymmetry and
// the optimizer exploits it through its orientation / rotation-index
// choices.

#include <gtest/gtest.h>

#include "tce/core/optimizer.hpp"
#include "tce/costmodel/characterize.hpp"
#include "tce/expr/parser.hpp"

namespace tce {
namespace {

ClusterSpec blocked_spec() {
  ClusterSpec s = ClusterSpec::itanium2003(8);
  s.layout = RankLayout::kBlocked;
  return s;
}

TEST(Asymmetric, BlockedLayoutMakesDim2RotationsCheaper) {
  const ProcGrid grid = ProcGrid::make(16, 2);
  Network net(blocked_spec());
  CharacterizationTable t = characterize(net, grid);
  CharacterizedModel m(std::move(t));
  // Along dim 2, every other hop (even column to odd column) is
  // intra-node; along dim 1 every hop crosses nodes.
  for (std::uint64_t b : {4ull << 20, 55ull << 20}) {
    EXPECT_LT(m.rotate_cost(b, 2), 0.85 * m.rotate_cost(b, 1)) << b;
  }
}

TEST(Asymmetric, CyclicLayoutStaysSymmetric) {
  CharacterizedModel m(characterize_itanium(16));
  for (std::uint64_t b : {4ull << 20, 55ull << 20}) {
    EXPECT_NEAR(m.rotate_cost(b, 1), m.rotate_cost(b, 2),
                0.02 * m.rotate_cost(b, 1));
  }
}

TEST(Asymmetric, OptimizerExploitsTheCheapDimension) {
  // On the asymmetric machine the optimizer must do at least as well as
  // on a hypothetical machine where every rotation pays the expensive
  // dim-1 price — and strictly better on this workload, by routing
  // rotations through dimension 2.
  FormulaSequence seq = parse_formula_sequence(R"(
    index a, b, c, d = 480
    index e, f = 64
    index i, j, k, l = 32
    T1[b,c,d,f] = sum[e,l] B[b,e,f,l] * D[c,d,e,l]
    T2[b,c,j,k] = sum[d,f] T1[b,c,d,f] * C[d,f,j,k]
    S[a,b,i,j]  = sum[c,k] T2[b,c,j,k] * A[a,c,i,k]
  )");
  ContractionTree tree = ContractionTree::from_sequence(seq);
  const ProcGrid grid = ProcGrid::make(16, 2);
  Network net(blocked_spec());
  CharacterizationTable t = characterize(net, grid);

  // The worst-case symmetric machine: both dims priced at dim-1 cost.
  CharacterizationTable worst = t;
  worst.rotate_dim2 = worst.rotate_dim1;
  worst.reduce_dim2 = worst.reduce_dim1;

  CharacterizedModel real(std::move(t));
  CharacterizedModel pessimistic(std::move(worst));

  OptimizerConfig cfg;
  cfg.mem_limit_node_bytes = 4'000'000'000;
  const double with_asym = optimize(tree, real, cfg).total_comm_s;
  const double without = optimize(tree, pessimistic, cfg).total_comm_s;
  EXPECT_LT(with_asym, without * 0.98);
}

}  // namespace
}  // namespace tce
